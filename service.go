package dance

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"github.com/dance-db/dance/internal/search"
)

// This file is the danced service layer: the versioned JSON/HTTP API that
// serves DANCE acquisitions to remote shoppers. AcquireHandler wraps a
// Middleware; AcquireClient is the matching client. The v1 endpoints:
//
//	POST /v1/acquire        {request…}            → {plan}
//	POST /v1/topk           {request…, k, weights} → {options: [{plan, score}]}
//	POST /v1/execute        {plan_id}             → {purchase summary}
//	GET  /v1/plans/{id}                           → {plan}
//	GET  /v1/ledger                               → {entries, total}
//
// Plans are stored server-side under opaque IDs so Execute can buy exactly
// what Acquire recommended. Request deadlines map onto contexts: the HTTP
// request context (client disconnect) always applies, and an optional
// timeout_ms field adds a server-enforced deadline. Errors use the same
// {"error": …} payload as the marketplace wire protocol.

// AcquireRequest is the v1 wire form of a data-acquisition request.
type AcquireRequest struct {
	SourceAttrs  []string `json:"source_attrs,omitempty"`
	TargetAttrs  []string `json:"target_attrs"`
	Budget       float64  `json:"budget,omitempty"`
	Alpha        float64  `json:"alpha,omitempty"`
	Beta         float64  `json:"beta,omitempty"`
	Iterations   int      `json:"iterations,omitempty"`
	Eta          int      `json:"eta,omitempty"`
	ResampleRate float64  `json:"resample_rate,omitempty"`
	Landmarks    int      `json:"landmarks,omitempty"`
	MaxCovers    int      `json:"max_covers,omitempty"`
	MaxIGraphs   int      `json:"max_igraphs,omitempty"`
	Seed         int64    `json:"seed,omitempty"`
	Workers      int      `json:"workers,omitempty"`
	Greedy       bool     `json:"greedy,omitempty"`
	// TimeoutMS bounds the server-side search; 0 means no extra deadline
	// beyond the HTTP request context.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

func (r AcquireRequest) toRequest() Request {
	return Request{
		SourceAttrs:  r.SourceAttrs,
		TargetAttrs:  r.TargetAttrs,
		Budget:       r.Budget,
		Alpha:        r.Alpha,
		Beta:         r.Beta,
		Iterations:   r.Iterations,
		Eta:          r.Eta,
		ResampleRate: r.ResampleRate,
		Landmarks:    r.Landmarks,
		MaxCovers:    r.MaxCovers,
		MaxIGraphs:   r.MaxIGraphs,
		Seed:         r.Seed,
		Workers:      r.Workers,
		Greedy:       r.Greedy,
	}
}

// MetricsInfo is the v1 wire form of the four search metrics.
type MetricsInfo struct {
	Correlation float64 `json:"correlation"`
	Quality     float64 `json:"quality"`
	Weight      float64 `json:"weight"`
	Price       float64 `json:"price"`
}

func metricsInfo(m search.Metrics) MetricsInfo {
	return MetricsInfo{Correlation: m.Correlation, Quality: m.Quality, Weight: m.Weight, Price: m.Price}
}

// PlanQuery is one projection purchase of a plan.
type PlanQuery struct {
	Instance string   `json:"instance"`
	Attrs    []string `json:"attrs"`
	SQL      string   `json:"sql"`
}

// PlanInfo is the v1 wire form of an acquisition plan.
type PlanInfo struct {
	ID      string      `json:"id"`
	Queries []PlanQuery `json:"queries"`
	Est     MetricsInfo `json:"est"`
}

// RankedPlanInfo is one scored top-k option.
type RankedPlanInfo struct {
	Plan  PlanInfo `json:"plan"`
	Score float64  `json:"score"`
}

// PurchaseTableInfo summarizes one bought projection.
type PurchaseTableInfo struct {
	Name string `json:"name"`
	Rows int    `json:"rows"`
}

// PurchaseInfo is the v1 wire form of an executed plan.
type PurchaseInfo struct {
	PlanID     string              `json:"plan_id"`
	TotalPrice float64             `json:"total_price"`
	JoinedRows int                 `json:"joined_rows"`
	Realized   MetricsInfo         `json:"realized"`
	Tables     []PurchaseTableInfo `json:"tables"`
}

// ServiceLedgerEntry is one charge the service incurred on behalf of its
// shoppers: offline sample purchases (complete samples and incremental
// sample deltas, reported separately so escalation spend is auditable) and
// plan executions.
type ServiceLedgerEntry struct {
	// Kind is "sample" (complete-sample purchases), "sample_delta"
	// (incremental escalation top-ups) or "purchase" (plan executions).
	Kind   string `json:"kind"`
	PlanID string `json:"plan_id,omitempty"`
	// FromRate/ToRate bracket the sampling rates of a sample round
	// (absent on purchases).
	FromRate float64 `json:"from_rate,omitempty"`
	ToRate   float64 `json:"to_rate,omitempty"`
	Amount   float64 `json:"amount"`
}

// LedgerInfo is the v1 wire form of the service ledger.
type LedgerInfo struct {
	Entries []ServiceLedgerEntry `json:"entries"`
	Total   float64              `json:"total"`
}

type topkWireRequest struct {
	AcquireRequest
	K       int           `json:"k,omitempty"`
	Weights *ScoreWeights `json:"weights,omitempty"`
}

type topkWireResponse struct {
	Options []RankedPlanInfo `json:"options"`
}

type executeWireRequest struct {
	PlanID    string `json:"plan_id"`
	TimeoutMS int64  `json:"timeout_ms,omitempty"`
}

type serviceError struct {
	Error string `json:"error"`
}

// acquireServer is the state behind AcquireHandler: the middleware, the
// plan store, and the service ledger.
type acquireServer struct {
	mw *Middleware

	mu         sync.Mutex
	plans      map[string]*Plan
	planInfos  map[string]PlanInfo
	ledger     []ServiceLedgerEntry
	seenRounds int
}

// AcquireHandler serves a Middleware over the versioned JSON/HTTP v1 API
// described above. The handler is safe for concurrent use; plans live in
// memory for the life of the handler.
func AcquireHandler(mw *Middleware) http.Handler {
	s := &acquireServer{
		mw:        mw,
		plans:     make(map[string]*Plan),
		planInfos: make(map[string]PlanInfo),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/acquire", s.handleAcquire)
	mux.HandleFunc("POST /v1/topk", s.handleTopK)
	mux.HandleFunc("POST /v1/execute", s.handleExecute)
	mux.HandleFunc("GET /v1/plans/{id}", s.handlePlan)
	mux.HandleFunc("GET /v1/ledger", s.handleLedger)
	return mux
}

func writeServiceJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// writeServiceErr maps an error to the wire: the {"error"} payload of the
// marketplace protocol plus a status that tells deadline (504), infeasible
// (422) and not-found (404) apart from generic failures.
func writeServiceErr(w http.ResponseWriter, code int, err error) {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		code = http.StatusGatewayTimeout
	}
	writeServiceJSON(w, code, serviceError{Error: err.Error()})
}

// newPlanID mints an opaque identifier. IDs carry no meaning; the store is
// the only way to resolve them.
func newPlanID() string {
	var b [9]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("dance: plan id entropy: %v", err)) // crypto/rand does not fail on supported platforms
	}
	return "pl_" + hex.EncodeToString(b[:])
}

// requestCtx derives the working context: the HTTP request context plus the
// optional server-enforced timeout.
func requestCtx(r *http.Request, timeoutMS int64) (context.Context, context.CancelFunc) {
	if timeoutMS > 0 {
		return context.WithTimeout(r.Context(), time.Duration(timeoutMS)*time.Millisecond)
	}
	return r.Context(), func() {}
}

// recordSampleSpendLocked appends ledger entries for any offline sample
// rounds since the last check, splitting complete-sample purchases from
// delta top-ups so escalations are visibly billed at the difference.
// Caller holds s.mu.
func (s *acquireServer) recordSampleSpendLocked() {
	rounds := s.mw.SampleRounds()
	for _, r := range rounds[s.seenRounds:] {
		if r.FullCost > 0 {
			s.ledger = append(s.ledger, ServiceLedgerEntry{
				Kind: "sample", FromRate: r.FromRate, ToRate: r.ToRate, Amount: r.FullCost,
			})
		}
		if r.DeltaCost > 0 {
			s.ledger = append(s.ledger, ServiceLedgerEntry{
				Kind: "sample_delta", FromRate: r.FromRate, ToRate: r.ToRate, Amount: r.DeltaCost,
			})
		}
	}
	s.seenRounds = len(rounds)
}

// storePlan registers a plan under a fresh opaque ID and returns its wire
// form; it also settles sample spending into the ledger.
func (s *acquireServer) storePlan(plan *Plan) PlanInfo {
	info := PlanInfo{ID: newPlanID(), Est: metricsInfo(plan.Est)}
	for _, q := range plan.Queries {
		info.Queries = append(info.Queries, PlanQuery{Instance: q.Instance, Attrs: q.Attrs, SQL: q.String()})
	}
	s.mu.Lock()
	s.plans[info.ID] = plan
	s.planInfos[info.ID] = info
	s.recordSampleSpendLocked()
	s.mu.Unlock()
	return info
}

// statusFor distinguishes infeasible acquisitions (the request's
// constraints admit no plan — the shopper's problem) from server failures.
func statusFor(err error) int {
	if errors.Is(err, ErrInfeasible) {
		return http.StatusUnprocessableEntity
	}
	return http.StatusInternalServerError
}

func (s *acquireServer) handleAcquire(w http.ResponseWriter, r *http.Request) {
	var req AcquireRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeServiceErr(w, http.StatusBadRequest, err)
		return
	}
	ctx, cancel := requestCtx(r, req.TimeoutMS)
	defer cancel()
	plan, err := s.mw.Acquire(ctx, req.toRequest())
	if err != nil {
		writeServiceErr(w, statusFor(err), err)
		return
	}
	writeServiceJSON(w, http.StatusOK, s.storePlan(plan))
}

func (s *acquireServer) handleTopK(w http.ResponseWriter, r *http.Request) {
	var req topkWireRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeServiceErr(w, http.StatusBadRequest, err)
		return
	}
	ctx, cancel := requestCtx(r, req.TimeoutMS)
	defer cancel()
	weights := DefaultScoreWeights()
	if req.Weights != nil {
		weights = *req.Weights
	}
	options, err := s.mw.AcquireTopK(ctx, req.toRequest(), req.K, weights)
	if err != nil {
		writeServiceErr(w, statusFor(err), err)
		return
	}
	resp := topkWireResponse{Options: make([]RankedPlanInfo, len(options))}
	for i, o := range options {
		resp.Options[i] = RankedPlanInfo{Plan: s.storePlan(o.Plan), Score: o.Score}
	}
	writeServiceJSON(w, http.StatusOK, resp)
}

func (s *acquireServer) handleExecute(w http.ResponseWriter, r *http.Request) {
	var req executeWireRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeServiceErr(w, http.StatusBadRequest, err)
		return
	}
	s.mu.Lock()
	plan, ok := s.plans[req.PlanID]
	s.mu.Unlock()
	if !ok {
		writeServiceErr(w, http.StatusNotFound, fmt.Errorf("dance: no plan %q", req.PlanID))
		return
	}
	ctx, cancel := requestCtx(r, req.TimeoutMS)
	defer cancel()
	purchase, err := s.mw.Execute(ctx, plan)
	if err != nil {
		// A failed execution may still have bought (and been charged for)
		// some projections; the ledger must not lose that spend.
		if purchase != nil && purchase.TotalPrice > 0 {
			s.mu.Lock()
			s.ledger = append(s.ledger, ServiceLedgerEntry{Kind: "purchase", PlanID: req.PlanID, Amount: purchase.TotalPrice})
			s.mu.Unlock()
		}
		writeServiceErr(w, statusFor(err), err)
		return
	}
	info := PurchaseInfo{
		PlanID:     req.PlanID,
		TotalPrice: purchase.TotalPrice,
		JoinedRows: purchase.Joined.NumRows(),
		Realized:   metricsInfo(purchase.Realized),
	}
	for _, t := range purchase.Tables {
		info.Tables = append(info.Tables, PurchaseTableInfo{Name: t.Name, Rows: t.NumRows()})
	}
	s.mu.Lock()
	s.ledger = append(s.ledger, ServiceLedgerEntry{Kind: "purchase", PlanID: req.PlanID, Amount: purchase.TotalPrice})
	s.mu.Unlock()
	writeServiceJSON(w, http.StatusOK, info)
}

func (s *acquireServer) handlePlan(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	info, ok := s.planInfos[id]
	s.mu.Unlock()
	if !ok {
		writeServiceErr(w, http.StatusNotFound, fmt.Errorf("dance: no plan %q", id))
		return
	}
	writeServiceJSON(w, http.StatusOK, info)
}

func (s *acquireServer) handleLedger(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	s.recordSampleSpendLocked()
	out := LedgerInfo{Entries: append([]ServiceLedgerEntry(nil), s.ledger...)}
	s.mu.Unlock()
	for _, e := range out.Entries {
		out.Total += e.Amount
	}
	writeServiceJSON(w, http.StatusOK, out)
}

// DefaultAcquireClientTimeout caps one danced round trip when the caller
// supplies no context deadline of its own. Acquisitions search sample
// joins and can legitimately run for minutes; a hung service still must
// not block a shopper forever. Caller deadlines — shorter or longer —
// always win.
const DefaultAcquireClientTimeout = 10 * time.Minute

// AcquireClient talks to a danced service (AcquireHandler / cmd/danced).
// Every call honors its context: cancellation and deadlines abort the
// in-flight HTTP request.
type AcquireClient struct {
	BaseURL string
	// HTTP is the underlying client; replace it to tune the transport.
	HTTP *http.Client
	// Timeout bounds one round trip when the caller's context carries no
	// deadline; a caller deadline of any length takes precedence.
	// NewAcquireClient sets DefaultAcquireClientTimeout; zero or negative
	// disables the fallback.
	Timeout time.Duration
}

// NewAcquireClient returns a client for the danced service at baseURL.
func NewAcquireClient(baseURL string) *AcquireClient {
	return &AcquireClient{
		BaseURL: strings.TrimRight(baseURL, "/"),
		HTTP:    &http.Client{},
		Timeout: DefaultAcquireClientTimeout,
	}
}

func (c *AcquireClient) do(ctx context.Context, method, path string, in, out interface{}) error {
	if _, ok := ctx.Deadline(); !ok && c.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.Timeout)
		defer cancel()
	}
	var body io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return fmt.Errorf("dance client: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		// Map the service's status contract back onto sentinel errors so
		// remote shoppers can errors.Is-distinguish "your request admits no
		// plan" (422) and server-enforced deadlines (504) from transient
		// failures.
		var sentinel error
		switch resp.StatusCode {
		case http.StatusUnprocessableEntity:
			sentinel = ErrInfeasible
		case http.StatusGatewayTimeout:
			sentinel = context.DeadlineExceeded
		}
		var e serviceError
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			if sentinel != nil {
				// The server message usually already ends with the sentinel
				// text; don't print it twice.
				msg := strings.TrimSuffix(strings.TrimSuffix(e.Error, sentinel.Error()), ": ")
				if msg == "" {
					return fmt.Errorf("dance client: %w", sentinel)
				}
				return fmt.Errorf("dance client: %s: %w", msg, sentinel)
			}
			return fmt.Errorf("dance client: %s", e.Error)
		}
		if sentinel != nil {
			return fmt.Errorf("dance client: status %d: %w", resp.StatusCode, sentinel)
		}
		return fmt.Errorf("dance client: status %d", resp.StatusCode)
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

// deadlineMS converts a context deadline into a timeout_ms wire value so
// the server enforces the shopper's deadline too, instead of relying only
// on disconnect propagation. Returns 0 when ctx has no deadline.
func deadlineMS(ctx context.Context) int64 {
	d, ok := ctx.Deadline()
	if !ok {
		return 0
	}
	ms := time.Until(d).Milliseconds()
	if ms < 1 {
		ms = 1
	}
	return ms
}

// Acquire asks the service for one acquisition plan. A context deadline is
// forwarded as timeout_ms (unless the request sets its own), so the server
// stops searching when the shopper's deadline expires.
func (c *AcquireClient) Acquire(ctx context.Context, req AcquireRequest) (*PlanInfo, error) {
	if req.TimeoutMS == 0 {
		req.TimeoutMS = deadlineMS(ctx)
	}
	var out PlanInfo
	if err := c.do(ctx, http.MethodPost, "/v1/acquire", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// AcquireTopK asks the service for up to k scored acquisition options. A
// nil weights uses the service defaults. Context deadlines forward as in
// Acquire.
func (c *AcquireClient) AcquireTopK(ctx context.Context, req AcquireRequest, k int, weights *ScoreWeights) ([]RankedPlanInfo, error) {
	if req.TimeoutMS == 0 {
		req.TimeoutMS = deadlineMS(ctx)
	}
	var out topkWireResponse
	in := topkWireRequest{AcquireRequest: req, K: k, Weights: weights}
	if err := c.do(ctx, http.MethodPost, "/v1/topk", in, &out); err != nil {
		return nil, err
	}
	return out.Options, nil
}

// Execute buys a previously returned plan by ID. A context deadline is
// forwarded as timeout_ms so the server bounds the purchase too.
func (c *AcquireClient) Execute(ctx context.Context, planID string) (*PurchaseInfo, error) {
	var out PurchaseInfo
	in := executeWireRequest{PlanID: planID, TimeoutMS: deadlineMS(ctx)}
	if err := c.do(ctx, http.MethodPost, "/v1/execute", in, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Plan fetches a stored plan by ID.
func (c *AcquireClient) Plan(ctx context.Context, planID string) (*PlanInfo, error) {
	var out PlanInfo
	if err := c.do(ctx, http.MethodGet, "/v1/plans/"+planID, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Ledger fetches the service's charge record.
func (c *AcquireClient) Ledger(ctx context.Context) (*LedgerInfo, error) {
	var out LedgerInfo
	if err := c.do(ctx, http.MethodGet, "/v1/ledger", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}
