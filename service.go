package dance

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/dance-db/dance/internal/persist"
	"github.com/dance-db/dance/internal/policy"
	"github.com/dance-db/dance/internal/safekey"
	"github.com/dance-db/dance/internal/search"
)

// This file is the danced service layer: the versioned JSON/HTTP API that
// serves DANCE acquisitions to remote shoppers. AcquireHandler wraps a
// Middleware; AcquireClient is the matching client. The v1 endpoints:
//
//	POST /v1/acquire        {request…}            → {plan}
//	POST /v1/topk           {request…, k, weights} → {options: [{plan, score}]}
//	POST /v1/execute        {plan_id}             → {purchase summary}
//	GET  /v1/plans/{id}                           → {plan}
//	GET  /v1/ledger                               → {entries, total}
//	GET  /v1/policies                             → {policies: [{name, doc, params}]}
//
// Plans are stored server-side under opaque IDs so Execute can buy exactly
// what Acquire recommended. Request deadlines map onto contexts: the HTTP
// request context (client disconnect) always applies, and an optional
// timeout_ms field adds a server-enforced deadline. Errors use the same
// {"error": …} payload as the marketplace wire protocol.

// AcquireRequest is the v1 wire form of a data-acquisition request.
type AcquireRequest struct {
	SourceAttrs  []string `json:"source_attrs,omitempty"`
	TargetAttrs  []string `json:"target_attrs"`
	Budget       float64  `json:"budget,omitempty"`
	Alpha        float64  `json:"alpha,omitempty"`
	Beta         float64  `json:"beta,omitempty"`
	Iterations   int      `json:"iterations,omitempty"`
	Eta          int      `json:"eta,omitempty"`
	ResampleRate float64  `json:"resample_rate,omitempty"`
	Landmarks    int      `json:"landmarks,omitempty"`
	MaxCovers    int      `json:"max_covers,omitempty"`
	MaxIGraphs   int      `json:"max_igraphs,omitempty"`
	Seed         int64    `json:"seed,omitempty"`
	Workers      int      `json:"workers,omitempty"`
	Greedy       bool     `json:"greedy,omitempty"`
	// Policy names the acquisition policy to plan under; omitted or empty
	// selects the server's default (the paper's own "dance" search, unless
	// the server was configured otherwise). GET /v1/policies lists the
	// choices. PolicyParams tune the chosen policy per request.
	Policy       string             `json:"policy,omitempty"`
	PolicyParams map[string]float64 `json:"policy_params,omitempty"`
	// TimeoutMS bounds the server-side search; 0 means no extra deadline
	// beyond the HTTP request context.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

func (r AcquireRequest) toRequest() Request {
	return Request{
		SourceAttrs:  r.SourceAttrs,
		TargetAttrs:  r.TargetAttrs,
		Budget:       r.Budget,
		Alpha:        r.Alpha,
		Beta:         r.Beta,
		Iterations:   r.Iterations,
		Eta:          r.Eta,
		ResampleRate: r.ResampleRate,
		Landmarks:    r.Landmarks,
		MaxCovers:    r.MaxCovers,
		MaxIGraphs:   r.MaxIGraphs,
		Seed:         r.Seed,
		Workers:      r.Workers,
		Greedy:       r.Greedy,
		Policy:       r.Policy,
		PolicyParams: r.PolicyParams,
	}
}

// MetricsInfo is the v1 wire form of the four search metrics.
type MetricsInfo struct {
	Correlation float64 `json:"correlation"`
	Quality     float64 `json:"quality"`
	Weight      float64 `json:"weight"`
	Price       float64 `json:"price"`
}

func metricsInfo(m search.Metrics) MetricsInfo {
	return MetricsInfo{Correlation: m.Correlation, Quality: m.Quality, Weight: m.Weight, Price: m.Price}
}

// PlanQuery is one projection purchase of a plan.
type PlanQuery struct {
	Instance string   `json:"instance"`
	Attrs    []string `json:"attrs"`
	SQL      string   `json:"sql"`
}

// PlanInfo is the v1 wire form of an acquisition plan.
type PlanInfo struct {
	ID      string      `json:"id"`
	Queries []PlanQuery `json:"queries"`
	Est     MetricsInfo `json:"est"`
	// Policy echoes the acquisition policy that produced the plan.
	Policy string `json:"policy,omitempty"`
	// Evals counts the metric evaluations the producing search spent.
	Evals int `json:"evals,omitempty"`
}

// RankedPlanInfo is one scored top-k option.
type RankedPlanInfo struct {
	Plan  PlanInfo `json:"plan"`
	Score float64  `json:"score"`
}

// PurchaseTableInfo summarizes one bought projection.
type PurchaseTableInfo struct {
	Name string `json:"name"`
	Rows int    `json:"rows"`
}

// PurchaseInfo is the v1 wire form of an executed plan.
type PurchaseInfo struct {
	PlanID     string              `json:"plan_id"`
	TotalPrice float64             `json:"total_price"`
	JoinedRows int                 `json:"joined_rows"`
	Realized   MetricsInfo         `json:"realized"`
	Tables     []PurchaseTableInfo `json:"tables"`
}

// ServiceLedgerEntry is one charge the service incurred on behalf of its
// shoppers: offline sample purchases (complete samples and incremental
// sample deltas, reported separately so escalation spend is auditable) and
// plan executions.
type ServiceLedgerEntry struct {
	// Kind is "sample" (complete-sample purchases), "sample_delta"
	// (incremental escalation top-ups) or "purchase" (plan executions).
	Kind   string `json:"kind"`
	PlanID string `json:"plan_id,omitempty"`
	// FromRate/ToRate bracket the sampling rates of a sample round
	// (absent on purchases).
	FromRate float64 `json:"from_rate,omitempty"`
	ToRate   float64 `json:"to_rate,omitempty"`
	Amount   float64 `json:"amount"`
	// Policy attributes the charge to the acquisition policy that incurred
	// it: sample entries carry the policy whose request triggered the round
	// ("" for explicit offline refreshes), purchase entries the policy that
	// produced the executed plan.
	Policy string `json:"policy,omitempty"`
}

// LedgerInfo is the v1 wire form of the service ledger.
type LedgerInfo struct {
	Entries []ServiceLedgerEntry `json:"entries"`
	Total   float64              `json:"total"`
}

// PolicyParamInfo describes one tunable of an acquisition policy.
type PolicyParamInfo struct {
	Name    string  `json:"name"`
	Default float64 `json:"default"`
	Doc     string  `json:"doc,omitempty"`
}

// PolicyInfo is the v1 wire form of one registered acquisition policy.
type PolicyInfo struct {
	Name string `json:"name"`
	Doc  string `json:"doc,omitempty"`
	// Default marks the policy requests run under when they name none.
	Default bool              `json:"default,omitempty"`
	Params  []PolicyParamInfo `json:"params,omitempty"`
}

// PoliciesInfo is the v1 wire form of GET /v1/policies.
type PoliciesInfo struct {
	Policies []PolicyInfo `json:"policies"`
}

type topkWireRequest struct {
	AcquireRequest
	K       int           `json:"k,omitempty"`
	Weights *ScoreWeights `json:"weights,omitempty"`
}

type topkWireResponse struct {
	Options []RankedPlanInfo `json:"options"`
}

type executeWireRequest struct {
	PlanID    string `json:"plan_id"`
	TimeoutMS int64  `json:"timeout_ms,omitempty"`
}

type serviceError struct {
	Error string `json:"error"`
}

// StatsInfo is the v1 wire form of the service's concurrency counters.
type StatsInfo struct {
	// Searches counts searches actually executed (coalesced requests share
	// one).
	Searches int64 `json:"searches"`
	// Coalesced counts requests served by joining another request's
	// in-flight search instead of starting their own.
	Coalesced int64 `json:"coalesced"`
	// Shed counts requests rejected with 429 because every search slot was
	// busy.
	Shed int64 `json:"shed"`
	// InFlight is the number of searches running right now.
	InFlight int `json:"in_flight"`
}

// flight is one in-flight coalesced search. info and err are written before
// done is closed and read only after it, so waiters never see a torn result.
// refs counts the waiters still interested; it is touched only with the
// server's flightMu held, and the last waiter to leave cancels the search.
type flight struct {
	done   chan struct{}
	cancel context.CancelFunc
	refs   int
	info   PlanInfo
	err    error
}

// acquireServer is the state behind a Service: the middleware, the plan
// store, the service ledger, and the single-flight/admission machinery.
type acquireServer struct {
	mw         *Middleware
	persist    persist.Store
	retryAfter time.Duration
	// sem bounds concurrent searches: a slot is held for the lifetime of
	// each search (acquire or topk). Leaders that cannot take a slot
	// without blocking are shed with 429 + Retry-After.
	sem chan struct{}

	mu         sync.Mutex             // lockorder: leaf
	plans      map[string]*PlanRecord // guarded by mu
	planInfos  map[string]PlanInfo    // guarded by mu
	ledger     []ServiceLedgerEntry   // guarded by mu
	seenRounds int                    // guarded by mu

	flightMu  sync.Mutex         // lockorder: leaf
	flights   map[string]*flight // guarded by flightMu
	searches  int64              // guarded by flightMu
	coalesced int64              // guarded by flightMu
	shed      int64              // guarded by flightMu
}

// ServiceOptions configure NewService.
type ServiceOptions struct {
	// Persist journals plans and ledger entries durably and restores them
	// on construction. Pass the same store to Config.Persist so the sample
	// state is durable too. Nil keeps everything in memory.
	Persist persist.Store
	// MaxInFlightSearches bounds concurrently executing searches; further
	// acquire/topk requests that cannot coalesce onto an in-flight search
	// are rejected with 429 + Retry-After. 0 or negative means twice
	// GOMAXPROCS.
	MaxInFlightSearches int
	// RetryAfter is the backoff hint sent with 429 responses (default 1s).
	RetryAfter time.Duration
}

// Service serves a Middleware over the versioned JSON/HTTP v1 API with
// single-flight coalescing of identical acquisitions, bounded in-flight
// searches, and (optionally) durable plans and ledger. Construct with
// NewService, serve Handler(), and Close() on shutdown to flush the journal.
type Service struct {
	s *acquireServer
}

// NewService builds a service around mw. With opts.Persist it restores the
// plans and ledger a previous process journaled, so a restarted danced
// resumes with the same ledger total and can still execute old plan IDs.
func NewService(mw *Middleware, opts ServiceOptions) (*Service, error) {
	if opts.MaxInFlightSearches <= 0 {
		opts.MaxInFlightSearches = 2 * runtime.GOMAXPROCS(0)
	}
	if opts.RetryAfter <= 0 {
		opts.RetryAfter = time.Second
	}
	s := &acquireServer{
		mw:         mw,
		persist:    opts.Persist,
		retryAfter: opts.RetryAfter,
		sem:        make(chan struct{}, opts.MaxInFlightSearches),
		plans:      make(map[string]*PlanRecord),
		planInfos:  make(map[string]PlanInfo),
		flights:    make(map[string]*flight),
	}
	if opts.Persist != nil {
		st, err := opts.Persist.Load()
		if err != nil {
			return nil, fmt.Errorf("dance: restoring service state: %w", err)
		}
		for _, e := range st.Ledger {
			s.ledger = append(s.ledger, ServiceLedgerEntry{
				Kind: e.Kind, PlanID: e.PlanID, FromRate: e.FromRate, ToRate: e.ToRate,
				Amount: e.Amount, Policy: e.Policy,
			})
		}
		for _, p := range st.Plans {
			rec := fromPersistPlan(p)
			s.plans[p.ID] = rec
			s.planInfos[p.ID] = planInfoOf(p.ID, rec)
		}
	}
	return &Service{s: s}, nil
}

// Handler returns the v1 API handler.
func (svc *Service) Handler() http.Handler {
	s := svc.s
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/acquire", s.handleAcquire)
	mux.HandleFunc("POST /v1/topk", s.handleTopK)
	mux.HandleFunc("POST /v1/execute", s.handleExecute)
	mux.HandleFunc("GET /v1/plans/{id}", s.handlePlan)
	mux.HandleFunc("GET /v1/ledger", s.handleLedger)
	mux.HandleFunc("GET /v1/policies", s.handlePolicies)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	return mux
}

// Stats snapshots the coalescing/admission counters.
func (svc *Service) Stats() StatsInfo {
	s := svc.s
	s.flightMu.Lock()
	defer s.flightMu.Unlock()
	return StatsInfo{Searches: s.searches, Coalesced: s.coalesced, Shed: s.shed, InFlight: len(s.sem)}
}

// Close settles outstanding sample spend into the ledger and flushes and
// closes the persist journal (a no-op without one). Call it after the HTTP
// server has drained so every billed cent is on disk before exit.
func (svc *Service) Close() error {
	s := svc.s
	s.mu.Lock()
	err := s.recordSampleSpendLocked()
	s.mu.Unlock()
	if s.persist != nil {
		if ferr := s.persist.Flush(); err == nil {
			err = ferr
		}
		if cerr := s.persist.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// AcquireHandler serves a Middleware over the versioned JSON/HTTP v1 API
// described above with default service options and no durability. The
// handler is safe for concurrent use; plans live in memory for the life of
// the handler. Use NewService to configure persistence and admission.
func AcquireHandler(mw *Middleware) http.Handler {
	svc, err := NewService(mw, ServiceOptions{})
	if err != nil {
		panic(err) // unreachable: no persist store, nothing to restore
	}
	return svc.Handler()
}

func writeServiceJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// writeServiceErr maps an error to the wire: the {"error"} payload of the
// marketplace protocol plus a status that tells deadline (504), infeasible
// (422) and not-found (404) apart from generic failures.
func writeServiceErr(w http.ResponseWriter, code int, err error) {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		code = http.StatusGatewayTimeout
	}
	writeServiceJSON(w, code, serviceError{Error: err.Error()})
}

// newPlanID mints an opaque identifier. IDs carry no meaning; the store is
// the only way to resolve them.
func newPlanID() string {
	var b [9]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("dance: plan id entropy: %v", err)) // crypto/rand does not fail on supported platforms
	}
	return "pl_" + hex.EncodeToString(b[:])
}

// requestCtx derives the working context: the HTTP request context plus the
// optional server-enforced timeout.
func requestCtx(r *http.Request, timeoutMS int64) (context.Context, context.CancelFunc) {
	if timeoutMS > 0 {
		return context.WithTimeout(r.Context(), time.Duration(timeoutMS)*time.Millisecond)
	}
	return r.Context(), func() {}
}

// appendLedgerLocked records one charge in memory and in the journal.
// Caller holds s.mu.
func (s *acquireServer) appendLedgerLocked(e ServiceLedgerEntry) error {
	s.ledger = append(s.ledger, e)
	if s.persist == nil {
		return nil
	}
	if err := s.persist.AppendLedger(persist.LedgerRecord{
		Kind: e.Kind, PlanID: e.PlanID, FromRate: e.FromRate, ToRate: e.ToRate,
		Amount: e.Amount, Policy: e.Policy,
	}); err != nil {
		return fmt.Errorf("dance: journaling ledger entry: %w", err)
	}
	return nil
}

// recordSampleSpendLocked appends ledger entries for any offline sample
// rounds since the last check, splitting complete-sample purchases from
// delta top-ups so escalations are visibly billed at the difference.
// Caller holds s.mu.
func (s *acquireServer) recordSampleSpendLocked() error {
	rounds := s.mw.SampleRounds()
	var err error
	for _, r := range rounds[s.seenRounds:] {
		if r.FullCost > 0 {
			if e := s.appendLedgerLocked(ServiceLedgerEntry{
				Kind: "sample", FromRate: r.FromRate, ToRate: r.ToRate, Amount: r.FullCost, Policy: r.Policy,
			}); err == nil {
				err = e
			}
		}
		if r.DeltaCost > 0 {
			if e := s.appendLedgerLocked(ServiceLedgerEntry{
				Kind: "sample_delta", FromRate: r.FromRate, ToRate: r.ToRate, Amount: r.DeltaCost, Policy: r.Policy,
			}); err == nil {
				err = e
			}
		}
	}
	s.seenRounds = len(rounds)
	return err
}

// planInfoOf builds the wire form of a stored plan record.
func planInfoOf(id string, rec *PlanRecord) PlanInfo {
	info := PlanInfo{ID: id, Est: metricsInfo(rec.Est), Policy: rec.Request.Policy, Evals: rec.Evals}
	for _, q := range rec.Queries {
		info.Queries = append(info.Queries, PlanQuery{Instance: q.Instance, Attrs: q.Attrs, SQL: q.String()})
	}
	return info
}

// toPersistPlan flattens a stored plan into its journal record.
func toPersistPlan(id string, rec *PlanRecord) persist.PlanRecord {
	p := persist.PlanRecord{
		ID:     id,
		Weight: rec.Weight,
		FDs:    rec.FDs,
		Evals:  rec.Evals,
		Est: persist.MetricsRecord{
			Correlation: rec.Est.Correlation, Quality: rec.Est.Quality,
			Weight: rec.Est.Weight, Price: rec.Est.Price,
		},
		Request: persist.RequestRecord{
			SourceAttrs:  rec.Request.SourceAttrs,
			TargetAttrs:  rec.Request.TargetAttrs,
			Budget:       rec.Request.Budget,
			Alpha:        rec.Request.Alpha,
			Beta:         rec.Request.Beta,
			Iterations:   rec.Request.Iterations,
			Eta:          rec.Request.Eta,
			ResampleRate: rec.Request.ResampleRate,
			Landmarks:    rec.Request.Landmarks,
			MaxCovers:    rec.Request.MaxCovers,
			MaxIGraphs:   rec.Request.MaxIGraphs,
			Seed:         rec.Request.Seed,
			Greedy:       rec.Request.Greedy,
			Policy:       rec.Request.Policy,
			PolicyParams: rec.Request.PolicyParams,
		},
	}
	for _, q := range rec.Queries {
		p.Queries = append(p.Queries, persist.QueryRecord{Instance: q.Instance, Attrs: q.Attrs})
	}
	for _, st := range rec.Steps {
		p.Steps = append(p.Steps, persist.JoinStepRecord{Table: st.Table, On: st.On})
	}
	return p
}

// fromPersistPlan rebuilds a stored plan from its journal record.
func fromPersistPlan(p persist.PlanRecord) *PlanRecord {
	rec := &PlanRecord{
		Weight: p.Weight,
		FDs:    p.FDs,
		Evals:  p.Evals,
		Est: Metrics{
			Correlation: p.Est.Correlation, Quality: p.Est.Quality,
			Weight: p.Est.Weight, Price: p.Est.Price,
		},
		Request: Request{
			SourceAttrs:  p.Request.SourceAttrs,
			TargetAttrs:  p.Request.TargetAttrs,
			Budget:       p.Request.Budget,
			Alpha:        p.Request.Alpha,
			Beta:         p.Request.Beta,
			Iterations:   p.Request.Iterations,
			Eta:          p.Request.Eta,
			ResampleRate: p.Request.ResampleRate,
			Landmarks:    p.Request.Landmarks,
			MaxCovers:    p.Request.MaxCovers,
			MaxIGraphs:   p.Request.MaxIGraphs,
			Seed:         p.Request.Seed,
			Greedy:       p.Request.Greedy,
			Policy:       p.Request.Policy,
			PolicyParams: p.Request.PolicyParams,
		},
	}
	for _, q := range p.Queries {
		rec.Queries = append(rec.Queries, Query{Instance: q.Instance, Attrs: q.Attrs})
	}
	for _, st := range p.Steps {
		rec.Steps = append(rec.Steps, JoinStep{Table: st.Table, On: st.On})
	}
	return rec
}

// storePlan flattens and registers a plan under a fresh opaque ID, returns
// its wire form, journals it, and settles sample spending into the ledger.
func (s *acquireServer) storePlan(plan *Plan) (PlanInfo, error) {
	rec, err := plan.Record()
	if err != nil {
		return PlanInfo{}, err
	}
	info := planInfoOf(newPlanID(), rec)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.plans[info.ID] = rec
	s.planInfos[info.ID] = info
	if err := s.recordSampleSpendLocked(); err != nil {
		return PlanInfo{}, err
	}
	if s.persist != nil {
		if err := s.persist.SavePlan(toPersistPlan(info.ID, rec)); err != nil {
			return PlanInfo{}, fmt.Errorf("dance: journaling plan: %w", err)
		}
	}
	return info, nil
}

// statusFor distinguishes infeasible acquisitions (the request's
// constraints admit no plan — the shopper's problem) from server failures.
func statusFor(err error) int {
	if errors.Is(err, ErrInfeasible) {
		return http.StatusUnprocessableEntity
	}
	return http.StatusInternalServerError
}

// acquireFingerprint identifies the search an acquire request will run.
// Requests with equal fingerprints produce identical plans (the search is
// seeded), so concurrent duplicates can share one in-flight search. Workers
// and TimeoutMS are excluded: they change how a search runs, not what it
// computes.
func acquireFingerprint(req AcquireRequest) string {
	parts := []string{"acquire", strconv.Itoa(len(req.SourceAttrs))}
	parts = append(parts, req.SourceAttrs...)
	parts = append(parts, strconv.Itoa(len(req.TargetAttrs)))
	parts = append(parts, req.TargetAttrs...)
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	parts = append(parts,
		f(req.Budget), f(req.Alpha), f(req.Beta),
		strconv.Itoa(req.Iterations), strconv.Itoa(req.Eta), f(req.ResampleRate),
		strconv.Itoa(req.Landmarks), strconv.Itoa(req.MaxCovers), strconv.Itoa(req.MaxIGraphs),
		strconv.FormatInt(req.Seed, 10), strconv.FormatBool(req.Greedy),
	)
	// Policy selection changes what a search computes, so it is part of the
	// identity; params are keyed in sorted order for a canonical form.
	parts = append(parts, req.Policy, strconv.Itoa(len(req.PolicyParams)))
	keys := make([]string, 0, len(req.PolicyParams))
	for k := range req.PolicyParams {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		parts = append(parts, k, f(req.PolicyParams[k]))
	}
	return safekey.Join(parts...)
}

// writeOverloaded sheds a request: 429 plus a Retry-After hint.
func (s *acquireServer) writeOverloaded(w http.ResponseWriter) {
	secs := int((s.retryAfter + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeServiceJSON(w, http.StatusTooManyRequests, serviceError{Error: ErrOverloaded.Error()})
}

// runSearch executes one coalesced search as its leader: it owns a
// semaphore slot, publishes the result into the flight, and wakes every
// waiter. The search context is detached from the leader's HTTP request —
// the flight must survive its leader disconnecting while followers wait —
// and is canceled by the last waiter to leave.
func (s *acquireServer) runSearch(key string, f *flight, ctx context.Context, req AcquireRequest) {
	defer func() { <-s.sem }()
	plan, err := s.mw.Acquire(ctx, req.toRequest())
	var info PlanInfo
	if err == nil {
		info, err = s.storePlan(plan)
	}
	f.info, f.err = info, err
	s.flightMu.Lock()
	delete(s.flights, key)
	s.flightMu.Unlock()
	close(f.done)
}

// awaitFlight parks one request on a flight until the search finishes or
// the request's own deadline expires. Each waiter holds a reference; the
// last to give up cancels the search so an abandoned flight does not burn
// a slot.
func (s *acquireServer) awaitFlight(w http.ResponseWriter, r *http.Request, timeoutMS int64, f *flight) {
	ctx, cancel := requestCtx(r, timeoutMS)
	defer cancel()
	select {
	case <-f.done:
		if f.err != nil {
			writeServiceErr(w, statusFor(f.err), f.err)
			return
		}
		writeServiceJSON(w, http.StatusOK, f.info)
	case <-ctx.Done():
		s.flightMu.Lock()
		f.refs--
		abandoned := f.refs == 0
		s.flightMu.Unlock()
		if abandoned {
			f.cancel()
		}
		writeServiceErr(w, http.StatusInternalServerError, ctx.Err())
	}
}

func (s *acquireServer) handleAcquire(w http.ResponseWriter, r *http.Request) {
	var req AcquireRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeServiceErr(w, http.StatusBadRequest, err)
		return
	}
	key := acquireFingerprint(req)
	s.flightMu.Lock()
	if f, ok := s.flights[key]; ok {
		f.refs++
		s.coalesced++
		s.flightMu.Unlock()
		s.awaitFlight(w, r, req.TimeoutMS, f)
		return
	}
	select {
	case s.sem <- struct{}{}:
	default:
		s.shed++
		s.flightMu.Unlock()
		s.writeOverloaded(w)
		return
	}
	f := &flight{done: make(chan struct{}), refs: 1}
	searchCtx, searchCancel := context.WithCancel(context.WithoutCancel(r.Context()))
	f.cancel = searchCancel
	s.flights[key] = f
	s.searches++
	s.flightMu.Unlock()
	go s.runSearch(key, f, searchCtx, req)
	s.awaitFlight(w, r, req.TimeoutMS, f)
}

func (s *acquireServer) handleTopK(w http.ResponseWriter, r *http.Request) {
	var req topkWireRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeServiceErr(w, http.StatusBadRequest, err)
		return
	}
	// Top-k searches are admission-controlled like acquires (they are at
	// least as expensive) but not coalesced: k and weights multiply the
	// variants too far to be worth fingerprinting.
	select {
	case s.sem <- struct{}{}:
		defer func() { <-s.sem }()
	default:
		s.flightMu.Lock()
		s.shed++
		s.flightMu.Unlock()
		s.writeOverloaded(w)
		return
	}
	ctx, cancel := requestCtx(r, req.TimeoutMS)
	defer cancel()
	weights := DefaultScoreWeights()
	if req.Weights != nil {
		weights = *req.Weights
	}
	options, err := s.mw.AcquireTopK(ctx, req.toRequest(), req.K, weights)
	if err != nil {
		writeServiceErr(w, statusFor(err), err)
		return
	}
	resp := topkWireResponse{Options: make([]RankedPlanInfo, len(options))}
	for i, o := range options {
		info, err := s.storePlan(o.Plan)
		if err != nil {
			writeServiceErr(w, http.StatusInternalServerError, err)
			return
		}
		resp.Options[i] = RankedPlanInfo{Plan: info, Score: o.Score}
	}
	writeServiceJSON(w, http.StatusOK, resp)
}

// policiesInfo flattens the policy registry into its wire form.
func policiesInfo() PoliciesInfo {
	var out PoliciesInfo
	for _, name := range policy.Names() {
		p, err := policy.Get(name)
		if err != nil {
			continue // unreachable: Names() only lists registered policies
		}
		info := PolicyInfo{Name: name, Doc: p.Doc(), Default: name == policy.DefaultName}
		for _, ps := range p.Params() {
			info.Params = append(info.Params, PolicyParamInfo{Name: ps.Name, Default: ps.Default, Doc: ps.Doc})
		}
		out.Policies = append(out.Policies, info)
	}
	return out
}

func (s *acquireServer) handlePolicies(w http.ResponseWriter, r *http.Request) {
	writeServiceJSON(w, http.StatusOK, policiesInfo())
}

func (s *acquireServer) handleStats(w http.ResponseWriter, r *http.Request) {
	s.flightMu.Lock()
	st := StatsInfo{Searches: s.searches, Coalesced: s.coalesced, Shed: s.shed, InFlight: len(s.sem)}
	s.flightMu.Unlock()
	writeServiceJSON(w, http.StatusOK, st)
}

func (s *acquireServer) handleExecute(w http.ResponseWriter, r *http.Request) {
	var req executeWireRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeServiceErr(w, http.StatusBadRequest, err)
		return
	}
	s.mu.Lock()
	rec, ok := s.plans[req.PlanID]
	s.mu.Unlock()
	if !ok {
		writeServiceErr(w, http.StatusNotFound, fmt.Errorf("dance: no plan %q", req.PlanID))
		return
	}
	ctx, cancel := requestCtx(r, req.TimeoutMS)
	defer cancel()
	purchase, err := s.mw.ExecuteRecord(ctx, rec)
	if err != nil {
		// A failed execution may still have bought (and been charged for)
		// some projections; the ledger must not lose that spend.
		if purchase != nil && purchase.TotalPrice > 0 {
			s.mu.Lock()
			s.appendLedgerLocked(ServiceLedgerEntry{
				Kind: "purchase", PlanID: req.PlanID, Amount: purchase.TotalPrice, Policy: rec.Request.Policy,
			})
			s.mu.Unlock()
		}
		writeServiceErr(w, statusFor(err), err)
		return
	}
	info := PurchaseInfo{
		PlanID:     req.PlanID,
		TotalPrice: purchase.TotalPrice,
		JoinedRows: purchase.Joined.NumRows(),
		Realized:   metricsInfo(purchase.Realized),
	}
	for _, t := range purchase.Tables {
		info.Tables = append(info.Tables, PurchaseTableInfo{Name: t.Name, Rows: t.NumRows()})
	}
	s.mu.Lock()
	// Journal failures do not fail the response: the purchase already
	// happened and the shopper has the data. The error resurfaces on the
	// next /v1/ledger read instead.
	s.appendLedgerLocked(ServiceLedgerEntry{
		Kind: "purchase", PlanID: req.PlanID, Amount: purchase.TotalPrice, Policy: rec.Request.Policy,
	})
	s.mu.Unlock()
	writeServiceJSON(w, http.StatusOK, info)
}

func (s *acquireServer) handlePlan(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	info, ok := s.planInfos[id]
	s.mu.Unlock()
	if !ok {
		writeServiceErr(w, http.StatusNotFound, fmt.Errorf("dance: no plan %q", id))
		return
	}
	writeServiceJSON(w, http.StatusOK, info)
}

func (s *acquireServer) handleLedger(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	err := s.recordSampleSpendLocked()
	out := LedgerInfo{Entries: append([]ServiceLedgerEntry(nil), s.ledger...)}
	s.mu.Unlock()
	if err != nil {
		writeServiceErr(w, http.StatusInternalServerError, err)
		return
	}
	for _, e := range out.Entries {
		out.Total += e.Amount
	}
	writeServiceJSON(w, http.StatusOK, out)
}

// ErrOverloaded marks acquisitions the service shed because every search
// slot was busy and the request could not coalesce onto an in-flight
// search. It is transient by construction: test with errors.Is, read the
// server's backoff hint with RetryAfter, and retry.
var ErrOverloaded = errors.New("dance: service overloaded; retry later")

// overloadedError carries the server's Retry-After hint while remaining
// errors.Is-matchable against ErrOverloaded via Unwrap.
type overloadedError struct {
	retryAfter time.Duration
}

func (e *overloadedError) Error() string {
	if e.retryAfter > 0 {
		return fmt.Sprintf("%v (retry after %v)", ErrOverloaded, e.retryAfter)
	}
	return ErrOverloaded.Error()
}

func (e *overloadedError) Unwrap() error { return ErrOverloaded }

// RetryAfter extracts the service's backoff hint from an ErrOverloaded
// error chain. ok is false when err carries no hint.
func RetryAfter(err error) (d time.Duration, ok bool) {
	var oe *overloadedError
	if errors.As(err, &oe) {
		return oe.retryAfter, true
	}
	return 0, false
}

// DefaultAcquireClientTimeout caps one danced round trip when the caller
// supplies no context deadline of its own. Acquisitions search sample
// joins and can legitimately run for minutes; a hung service still must
// not block a shopper forever. Caller deadlines — shorter or longer —
// always win.
const DefaultAcquireClientTimeout = 10 * time.Minute

// AcquireClient talks to a danced service (AcquireHandler / cmd/danced).
// Every call honors its context: cancellation and deadlines abort the
// in-flight HTTP request.
type AcquireClient struct {
	BaseURL string
	// HTTP is the underlying client; replace it to tune the transport.
	HTTP *http.Client
	// Timeout bounds one round trip when the caller's context carries no
	// deadline; a caller deadline of any length takes precedence.
	// NewAcquireClient sets DefaultAcquireClientTimeout; zero or negative
	// disables the fallback.
	Timeout time.Duration
}

// NewAcquireClient returns a client for the danced service at baseURL.
func NewAcquireClient(baseURL string) *AcquireClient {
	return &AcquireClient{
		BaseURL: strings.TrimRight(baseURL, "/"),
		HTTP:    &http.Client{},
		Timeout: DefaultAcquireClientTimeout,
	}
}

func (c *AcquireClient) do(ctx context.Context, method, path string, in, out interface{}) error {
	if _, ok := ctx.Deadline(); !ok && c.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.Timeout)
		defer cancel()
	}
	var body io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return fmt.Errorf("dance client: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		// Map the service's status contract back onto sentinel errors so
		// remote shoppers can errors.Is-distinguish "your request admits no
		// plan" (422) and server-enforced deadlines (504) from transient
		// failures.
		var sentinel error
		switch resp.StatusCode {
		case http.StatusUnprocessableEntity:
			sentinel = ErrInfeasible
		case http.StatusGatewayTimeout:
			sentinel = context.DeadlineExceeded
		case http.StatusTooManyRequests:
			secs, _ := strconv.Atoi(resp.Header.Get("Retry-After"))
			sentinel = &overloadedError{retryAfter: time.Duration(secs) * time.Second}
		}
		var e serviceError
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			if sentinel != nil {
				// The server message usually already ends with the sentinel
				// text; don't print it twice. Overloaded errors wrap
				// ErrOverloaded with a local retry hint, so trim the base
				// sentinel text the server actually sent.
				base := sentinel.Error()
				if errors.Is(sentinel, ErrOverloaded) {
					base = ErrOverloaded.Error()
				}
				msg := strings.TrimSuffix(strings.TrimSuffix(e.Error, base), ": ")
				if msg == "" {
					return fmt.Errorf("dance client: %w", sentinel)
				}
				return fmt.Errorf("dance client: %s: %w", msg, sentinel)
			}
			return fmt.Errorf("dance client: %s", e.Error)
		}
		if sentinel != nil {
			return fmt.Errorf("dance client: status %d: %w", resp.StatusCode, sentinel)
		}
		return fmt.Errorf("dance client: status %d", resp.StatusCode)
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

// deadlineMS converts a context deadline into a timeout_ms wire value so
// the server enforces the shopper's deadline too, instead of relying only
// on disconnect propagation. Returns 0 when ctx has no deadline.
func deadlineMS(ctx context.Context) int64 {
	d, ok := ctx.Deadline()
	if !ok {
		return 0
	}
	ms := time.Until(d).Milliseconds()
	if ms < 1 {
		ms = 1
	}
	return ms
}

// Acquire asks the service for one acquisition plan. A context deadline is
// forwarded as timeout_ms (unless the request sets its own), so the server
// stops searching when the shopper's deadline expires.
func (c *AcquireClient) Acquire(ctx context.Context, req AcquireRequest) (*PlanInfo, error) {
	if req.TimeoutMS == 0 {
		req.TimeoutMS = deadlineMS(ctx)
	}
	var out PlanInfo
	if err := c.do(ctx, http.MethodPost, "/v1/acquire", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// AcquireTopK asks the service for up to k scored acquisition options. A
// nil weights uses the service defaults. Context deadlines forward as in
// Acquire.
func (c *AcquireClient) AcquireTopK(ctx context.Context, req AcquireRequest, k int, weights *ScoreWeights) ([]RankedPlanInfo, error) {
	if req.TimeoutMS == 0 {
		req.TimeoutMS = deadlineMS(ctx)
	}
	var out topkWireResponse
	in := topkWireRequest{AcquireRequest: req, K: k, Weights: weights}
	if err := c.do(ctx, http.MethodPost, "/v1/topk", in, &out); err != nil {
		return nil, err
	}
	return out.Options, nil
}

// Execute buys a previously returned plan by ID. A context deadline is
// forwarded as timeout_ms so the server bounds the purchase too.
func (c *AcquireClient) Execute(ctx context.Context, planID string) (*PurchaseInfo, error) {
	var out PurchaseInfo
	in := executeWireRequest{PlanID: planID, TimeoutMS: deadlineMS(ctx)}
	if err := c.do(ctx, http.MethodPost, "/v1/execute", in, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Plan fetches a stored plan by ID.
func (c *AcquireClient) Plan(ctx context.Context, planID string) (*PlanInfo, error) {
	var out PlanInfo
	if err := c.do(ctx, http.MethodGet, "/v1/plans/"+planID, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Ledger fetches the service's charge record.
func (c *AcquireClient) Ledger(ctx context.Context) (*LedgerInfo, error) {
	var out LedgerInfo
	if err := c.do(ctx, http.MethodGet, "/v1/ledger", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Policies fetches the service's registered acquisition policies and their
// tunable parameters. Pass a listed name as AcquireRequest.Policy.
func (c *AcquireClient) Policies(ctx context.Context) (*PoliciesInfo, error) {
	var out PoliciesInfo
	if err := c.do(ctx, http.MethodGet, "/v1/policies", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Stats fetches the service's coalescing and admission counters.
func (c *AcquireClient) Stats(ctx context.Context) (*StatsInfo, error) {
	var out StatsInfo
	if err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}
