// Benchmarks regenerating every table and figure of the paper's evaluation
// (Sec 6) plus the ablations of DESIGN.md, at bench-friendly scales, and
// micro-benchmarks of the load-bearing primitives.
//
//	go test -bench=. -benchmem
//
// cmd/dancebench runs the same experiments at larger scales with full
// sweeps and renders the tables for EXPERIMENTS.md.
package dance_test

import (
	"context"
	"net/http/httptest"
	"sync"
	"testing"

	dance "github.com/dance-db/dance"
	"github.com/dance-db/dance/internal/core"
	"github.com/dance-db/dance/internal/experiments"
	"github.com/dance-db/dance/internal/fd"
	"github.com/dance-db/dance/internal/infotheory"
	"github.com/dance-db/dance/internal/joingraph"
	"github.com/dance-db/dance/internal/marketplace"
	"github.com/dance-db/dance/internal/pricing"
	"github.com/dance-db/dance/internal/relation"
	"github.com/dance-db/dance/internal/sampling"
	"github.com/dance-db/dance/internal/search"
	"github.com/dance-db/dance/internal/tpch"
	"github.com/dance-db/dance/internal/workload"
)

// --- One bench per paper table/figure -------------------------------------

func BenchmarkTable5DatasetDescription(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table5(context.Background(), experiments.Table5Options{Scale: 1, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSec61FDCounts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.FDCounts(context.Background(), "tpch", experiments.Table5Options{Scale: 1, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4TimeVsInstances(b *testing.B) {
	opts := experiments.Fig4Options{Scale: 1, Seed: 1, Rate: 0.6, Ns: []int{5, 8}, Iterations: 30}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig4(context.Background(), opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5aTPCEScalability(b *testing.B) {
	opts := experiments.Fig5Options{Scale: 1, Seed: 1, Rate: 0.6, Ns: []int{10, 29}, Iterations: 20}
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.Fig5ab(context.Background(), opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5cBudgetSweep(b *testing.B) {
	opts := experiments.Fig5Options{Scale: 1, Seed: 1, Rate: 0.6,
		Ratios: []float64{0.04, 0.12, 1.0}, Iterations: 20}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig5c(context.Background(), opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6CorrelationDifference(b *testing.B) {
	opts := experiments.Fig6Options{Scale: 1, Seed: 1, Rates: []float64{0.5, 1.0}, Iterations: 20}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig6(context.Background(), opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7CorrelationVsBudget(b *testing.B) {
	opts := experiments.Fig7Options{Scale: 1, Seed: 1, Rate: 0.6,
		Ratios: []float64{0.5, 1.0}, Iterations: 20}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig7(context.Background(), opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8Resampling(b *testing.B) {
	opts := experiments.Fig8Options{Scale: 1, Seed: 1, Rate: 0.7,
		ResampleRates: []float64{0.5}, Eta: 200, Iterations: 20}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig8(context.Background(), opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable6DanceVsDirect(b *testing.B) {
	opts := experiments.Table6Options{Scale: 1, Seed: 1, Rate: 0.6, BudgetRatio: 0.8, Iterations: 20}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table6(context.Background(), opts); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations (design choices called out in DESIGN.md) --------------------

func BenchmarkAblationSteiner(b *testing.B) {
	opts := experiments.AblationOptions{Scale: 1, Seed: 1, Rate: 0.6, Iterations: 15}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationSteiner(context.Background(), opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationMCMC(b *testing.B) {
	opts := experiments.AblationOptions{Scale: 1, Seed: 1, Rate: 0.6, Iterations: 15}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationMCMC(context.Background(), opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationPricing(b *testing.B) {
	opts := experiments.AblationOptions{Scale: 1, Seed: 1, Rate: 0.6, Iterations: 15}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationPricing(context.Background(), opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationEta(b *testing.B) {
	opts := experiments.AblationOptions{Scale: 1, Seed: 1, Rate: 0.6, Iterations: 15}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationEta(context.Background(), opts); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Micro-benchmarks of the load-bearing primitives -----------------------

func benchDataset(b *testing.B) *tpch.Dataset {
	b.Helper()
	return tpch.Generate(tpch.Config{Scale: 4, Seed: 1, DirtyFraction: 0.3})
}

func BenchmarkEquiJoin(b *testing.B) {
	d := benchDataset(b)
	orders, customer := d.Table("orders"), d.Table("customer")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := relation.EquiJoin(orders, customer, []string{"custkey"}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFullOuterJoinPairCounts(b *testing.B) {
	d := benchDataset(b)
	orders, customer := d.Table("orders"), d.Table("customer")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := relation.OuterJoinPairCounts(orders, customer, []string{"custkey"}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCorrelation(b *testing.B) {
	d := benchDataset(b)
	j, err := relation.EquiJoin(d.Table("orders"), d.Table("customer"), []string{"custkey"})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := infotheory.Correlation(j, []string{"totalprice"}, []string{"nationkey"}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkJoinInformativeness(b *testing.B) {
	d := benchDataset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := infotheory.JoinInformativeness(d.Table("orders"), d.Table("customer"), []string{"custkey"}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQualitySet(b *testing.B) {
	d := benchDataset(b)
	j, err := relation.EquiJoin(d.Table("orders"), d.Table("customer"), []string{"custkey"})
	if err != nil {
		b.Fatal(err)
	}
	fds := append(d.FDs["orders"], d.FDs["customer"]...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fd.QualitySet(j, fds); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFDDiscovery(b *testing.B) {
	d := benchDataset(b)
	orders := d.Table("orders")
	opts := fd.DiscoveryOptions{MaxError: 0.1, MaxLHS: 2, MaxRows: 300}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fd.Discover(orders, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCorrelatedSample(b *testing.B) {
	d := benchDataset(b)
	lineitem := d.Table("lineitem")
	h := sampling.NewHasher(7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sampling.CorrelatedSample(lineitem, []string{"orderkey"}, 0.5, h); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkJoinGraphBuild(b *testing.B) {
	d := benchDataset(b)
	model := pricing.Cached(pricing.DefaultEntropyModel())
	quoter := benchQuoter{model: model, d: d}
	var instances []*joingraph.Instance
	for _, t := range d.Tables {
		instances = append(instances, &joingraph.Instance{
			Name: t.Name, Sample: t, FullRows: t.NumRows(), FDs: d.FDs[t.Name],
		})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := joingraph.Build(instances, joingraph.Config{MaxJoinAttrs: 2, Quoter: quoter}); err != nil {
			b.Fatal(err)
		}
	}
}

type benchQuoter struct {
	model pricing.Model
	d     *tpch.Dataset
}

func (q benchQuoter) QuoteProjection(_ context.Context, name string, attrs []string) (float64, error) {
	return q.model.PriceProjection(q.d.Table(name), attrs)
}

func BenchmarkHeuristicSearch(b *testing.B) {
	env, err := experiments.NewEnv(experiments.EnvConfig{Dataset: "tpch", Scale: 2, Seed: 1, Rate: 0.5})
	if err != nil {
		b.Fatal(err)
	}
	q := experiments.TPCHQueries()[1]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := env.Request(q, int64(i))
		req.Iterations = 40
		if _, err := search.NewSearcher(env.Sampled).Heuristic(bg, req); err != nil {
			b.Fatal(err)
		}
	}
}

// benchTPCEHeuristic runs the two-step search over the TPC-E join graph
// (the paper's largest workload, Q3's length-8 spine) at a fixed worker
// count. A fresh Searcher per iteration keeps the evaluator cache cold, so
// serial and parallel runs do the same work; the found target graph is
// identical for every worker count, only wall-clock changes.
func benchTPCEHeuristic(b *testing.B, workers int) {
	env, err := experiments.NewEnv(experiments.EnvConfig{Dataset: "tpce", Scale: 1, Seed: 1, Rate: 0.6, NumInstances: 10})
	if err != nil {
		b.Fatal(err)
	}
	q := experiments.TPCEQueries()[2]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := env.Request(q, 7)
		req.Iterations = 40
		req.MaxIGraphs = 8 // widen the Step 1 pool: one chain per candidate
		req.Workers = workers
		if _, err := search.NewSearcher(env.Sampled).Heuristic(bg, req); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHeuristicTPCESerial(b *testing.B)   { benchTPCEHeuristic(b, 1) }
func BenchmarkHeuristicTPCEParallel(b *testing.B) { benchTPCEHeuristic(b, 0) }

func BenchmarkEndToEndAcquisition(b *testing.B) {
	tables, fds := dance.GenerateTPCH(2, 1, -1)
	market := dance.NewMarketplace(nil)
	for _, t := range tables {
		market.Register(t, fds[t.Name])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mw := dance.New(market, dance.Config{SampleRate: 0.5, SampleSeed: uint64(i)})
		plan, err := mw.Acquire(bg, dance.Request{
			SourceAttrs: []string{"totalprice"},
			TargetAttrs: []string{"nname"},
			Iterations:  30,
			Seed:        int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := mw.Execute(bg, plan); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Incremental escalation vs. the seed-era full rebuild ------------------

// benchEscalationServer hosts a TPC-H marketplace over a real HTTP listener:
// the escalation scenario is I/O-shaped (samples cross the wire as CSV), so
// the delta path's smaller transfers and merge-instead-of-reencode are
// measured where they matter.
func benchEscalationServer(b *testing.B) *httptest.Server {
	b.Helper()
	tables, fds := dance.GenerateTPCH(2, 1, -1)
	market := dance.NewMarketplace(nil)
	for _, t := range tables {
		market.Register(t, fds[t.Name])
	}
	srv := httptest.NewServer(dance.Handler(market))
	b.Cleanup(srv.Close)
	return srv
}

var escalationLadder = []float64{0.1, 0.2, 0.4, 0.8, 1}

// BenchmarkEscalationIncremental is a long-lived session escalating through
// the rate ladder: one middleware, delta purchases, copy-on-write merges,
// version-keyed caches.
func BenchmarkEscalationIncremental(b *testing.B) {
	srv := benchEscalationServer(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := core.New(marketplace.NewClient(srv.URL), core.Config{
			SampleRate: escalationLadder[0], SampleSeed: 1, RateGrowth: 2,
		})
		if err := d.Offline(bg); err != nil {
			b.Fatal(err)
		}
		for range escalationLadder[1:] {
			if _, err := d.Escalate(bg); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkEscalationFullRebuild is the seed-era baseline: every rate of
// the same ladder re-buys complete samples and rebuilds the offline state
// from scratch (a fresh middleware per round, exactly what the old
// Dance.rebuild did on every escalation).
func BenchmarkEscalationFullRebuild(b *testing.B) {
	srv := benchEscalationServer(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, rate := range escalationLadder {
			d := core.New(marketplace.NewClient(srv.URL), core.Config{
				SampleRate: rate, SampleSeed: 1,
			})
			if err := d.Offline(bg); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkFigXTPCHBudgetTime(b *testing.B) {
	opts := experiments.Fig5Options{Scale: 1, Seed: 1, Rate: 0.6,
		Ratios: []float64{0.5, 1.0}, Iterations: 20}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.FigTPCHBudgetTime(context.Background(), opts); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Synthetic-workload acquisitions (the scenario generator's headline) ---

// benchWorkload runs full acquisitions (offline sampling, search, purchase)
// against one pre-generated synthetic marketplace. Generation runs outside
// the timer; a larger-than-default spec keeps the join work meaningful.
func benchWorkload(b *testing.B, specStr string) {
	b.Helper()
	spec, err := workload.ParseSpec(specStr)
	if err != nil {
		b.Fatal(err)
	}
	w, err := workload.Generate(spec, 17)
	if err != nil {
		b.Fatal(err)
	}
	market := w.Marketplace()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mw := core.New(market, core.Config{SampleRate: 0.5, SampleSeed: uint64(i) + 1})
		plan, err := mw.Acquire(bg, search.Request{
			TargetAttrs: []string{w.Truth.X, w.Truth.Y},
			Iterations:  30,
			Seed:        int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := mw.Execute(bg, plan); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWorkloadChain(b *testing.B) {
	benchWorkload(b, "chain:4,rows=2000,keys=64,decoys=4,attrs=2")
}

func BenchmarkWorkloadStar(b *testing.B) {
	benchWorkload(b, "star:4,rows=2000,keys=64,decoys=2,attrs=2,kinds=mixed")
}

// --- Million-row tier -------------------------------------------------------

// workload1MSpec is the million-row chain: a 1,000,000-row base listing
// joined through two bridges to the terminal, plus decoys. Generated once
// and shared across the 1M benchmarks (generation alone joins the planted
// path at full scale to measure ρ).
const workload1MSpec = "chain:3,rows=1000000,keys=512,decoys=2,attrs=1"

var workload1M struct {
	once sync.Once
	w    *workload.Workload
	err  error
}

func workload1MShared(b *testing.B) *workload.Workload {
	b.Helper()
	workload1M.once.Do(func() {
		spec, err := workload.ParseSpec(workload1MSpec)
		if err != nil {
			workload1M.err = err
			return
		}
		workload1M.w, workload1M.err = workload.Generate(spec, 17)
	})
	if workload1M.err != nil {
		b.Fatal(workload1M.err)
	}
	return workload1M.w
}

type listings1M []*relation.Table

func (l listings1M) table(name string) *relation.Table {
	for _, t := range l {
		if t.Name == name {
			return t
		}
	}
	return nil
}

// benchWorkload1M runs full acquisitions — offline sampling, segmented
// search, plan — against the shared million-row marketplace at a fixed
// worker count. Sampling at 0.2 keeps every join intermediate under the
// prefix cache's per-entry row budget, so the search exercises the cache
// instead of bypassing it. The found plan is bit-identical for every worker
// count (pinned by TestMillionRowDeterministicAcrossWorkers); the
// Serial/Parallel pair feeds CI's ≥2× ratio gate on multicore runners.
func benchWorkload1M(b *testing.B, workers int) {
	w := workload1MShared(b)
	market := w.Marketplace()
	// One untimed warmup: the workload's pricing model caches projection
	// quotes, and whichever worker count runs first would otherwise pay the
	// entropy pricing of every candidate plan for both.
	warm := core.New(market, core.Config{SampleRate: 0.2, SampleSeed: 1})
	if _, err := warm.Acquire(bg, search.Request{
		TargetAttrs: []string{w.Truth.X, w.Truth.Y}, Iterations: 30, Seed: 7,
	}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mw := core.New(market, core.Config{SampleRate: 0.2, SampleSeed: 1, Workers: workers})
		plan, err := mw.Acquire(bg, search.Request{
			TargetAttrs: []string{w.Truth.X, w.Truth.Y},
			Iterations:  30,
			Seed:        7,
			Workers:     workers,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(plan.Queries) == 0 {
			b.Fatal("empty plan")
		}
	}
}

func BenchmarkWorkloadChain1MSerial(b *testing.B)   { benchWorkload1M(b, 1) }
func BenchmarkWorkloadChain1MParallel(b *testing.B) { benchWorkload1M(b, 0) }

// join1MInputs returns the million-row base listing, the first bridge, and
// their shared key, columnar-encoded (encoding runs outside the timer).
func join1MInputs(b *testing.B) (base, bridge *relation.Columnar, on []string) {
	w := workload1MShared(b)
	l := listings1M(w.Listings)
	bt := l.table(w.Truth.Path[0])
	br := l.table(w.Truth.Path[1])
	on = relation.SharedAttrs(bt.Schema, br.Schema)
	return relation.ToColumnar(bt), relation.ToColumnar(br), on
}

func benchEquiJoinColumnar1M(b *testing.B, workers int) {
	base, bridge, on := join1MInputs(b)
	idx, err := bridge.BuildJoinIndex(on...)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := relation.EquiJoinColumnarOpts(base, bridge, on, idx, relation.JoinOptions{Workers: workers}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEquiJoinColumnar1MSerial(b *testing.B)   { benchEquiJoinColumnar1M(b, 1) }
func BenchmarkEquiJoinColumnar1MParallel(b *testing.B) { benchEquiJoinColumnar1M(b, 0) }

func BenchmarkCorrelationColumnar1M(b *testing.B) {
	w := workload1MShared(b)
	l := listings1M(w.Listings)
	acc := relation.ToColumnar(l.table(w.Truth.Path[0]))
	for i := 1; i < len(w.Truth.Path); i++ {
		cur := l.table(w.Truth.Path[i])
		on := relation.SharedAttrs(acc.Schema(), cur.Schema)
		j, err := relation.EquiJoinColumnarOpts(acc, relation.ToColumnar(cur), on, nil, relation.JoinOptions{})
		if err != nil {
			b.Fatal(err)
		}
		acc = j
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := infotheory.CorrelationColumnar(acc, []string{w.Truth.X}, []string{w.Truth.Y}); err != nil {
			b.Fatal(err)
		}
	}
}
