package dance_test

import (
	"context"
	"math/rand"
	"net/http/httptest"
	"testing"

	dance "github.com/dance-db/dance"
)

var bg = context.Background()

// marketFixture builds a small two-hop marketplace plus the shopper's own
// table, exercising only the public API.
func marketFixture(seed int64) (*dance.InMemoryMarket, *dance.Table) {
	rng := rand.New(rand.NewSource(seed))

	own := dance.NewTable("own", dance.NewSchema(
		dance.Cat("zip", dance.KindInt),
		dance.Num("income", dance.KindFloat),
	))
	bridge := dance.NewTable("bridge", dance.NewSchema(
		dance.Cat("zip", dance.KindInt),
		dance.Cat("county", dance.KindInt),
	))
	stats := dance.NewTable("stats", dance.NewSchema(
		dance.Cat("county", dance.KindInt),
		dance.Cat("riskband", dance.KindString),
	))
	for i := 0; i < 300; i++ {
		z := int64(rng.Intn(20))
		own.AppendValues(dance.IntValue(z), dance.FloatValue(float64(z)*1000+rng.Float64()*50))
	}
	for z := int64(0); z < 20; z++ {
		bridge.AppendValues(dance.IntValue(z), dance.IntValue(z%5))
	}
	for c := int64(0); c < 5; c++ {
		stats.AppendValues(dance.IntValue(c), dance.StringValue(string(rune('A'+c))))
	}
	m := dance.NewMarketplace(nil)
	m.Register(bridge, []dance.FD{dance.NewFD("county", "zip")})
	m.Register(stats, []dance.FD{dance.NewFD("riskband", "county")})
	return m, own
}

func TestPublicAPIEndToEnd(t *testing.T) {
	market, own := marketFixture(1)
	mw := dance.New(market, dance.Config{SampleRate: 0.9, SampleSeed: 4})
	mw.AddSource(own, nil)

	plan, err := mw.Acquire(bg, dance.Request{
		SourceAttrs: []string{"income"},
		TargetAttrs: []string{"riskband"},
		Budget:      1e9,
		Iterations:  40,
		Seed:        2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Queries) == 0 {
		t.Fatal("no queries planned")
	}
	purchase, err := mw.Execute(bg, plan)
	if err != nil {
		t.Fatal(err)
	}
	if purchase.Joined.NumRows() == 0 {
		t.Fatal("empty purchase join")
	}
	if purchase.Realized.Correlation <= 0 {
		t.Fatalf("realized correlation = %v", purchase.Realized.Correlation)
	}
}

func TestPublicAPIOverHTTP(t *testing.T) {
	market, own := marketFixture(2)
	srv := httptest.NewServer(dance.Handler(market))
	defer srv.Close()

	mw := dance.New(dance.NewMarketClient(srv.URL), dance.Config{SampleRate: 0.9, SampleSeed: 4})
	mw.AddSource(own, nil)
	plan, err := mw.Acquire(bg, dance.Request{
		SourceAttrs: []string{"income"},
		TargetAttrs: []string{"riskband"},
		Budget:      1e9,
		Iterations:  30,
		Seed:        3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mw.Execute(bg, plan); err != nil {
		t.Fatal(err)
	}
}

func TestPublicMeasures(t *testing.T) {
	_, own := marketFixture(3)
	// Correlation of income with zip is high by construction.
	corr, err := dance.Correlation(own, []string{"income"}, []string{"zip"})
	if err != nil || corr <= 0 {
		t.Fatalf("Correlation = %v, %v", corr, err)
	}
	q, err := dance.Quality(own, []dance.FD{dance.NewFD("income", "zip")})
	if err != nil || q <= 0 {
		t.Fatalf("Quality = %v, %v", q, err)
	}
	fds, err := dance.DiscoverFDs(own, 0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(fds) == 0 {
		t.Fatal("no FDs discovered")
	}
	f, err := dance.ParseFD("zip -> county")
	if err != nil || f.RHS != "county" {
		t.Fatalf("ParseFD = %v, %v", f, err)
	}
}

func TestPublicJoins(t *testing.T) {
	market, own := marketFixture(4)
	_ = market
	bridge := dance.NewTable("b", dance.NewSchema(
		dance.Cat("zip", dance.KindInt), dance.Cat("county", dance.KindInt)))
	for z := int64(0); z < 20; z++ {
		bridge.AppendValues(dance.IntValue(z), dance.IntValue(z%5))
	}
	j, err := dance.EquiJoin(own, bridge, []string{"zip"})
	if err != nil || j.NumRows() == 0 {
		t.Fatalf("EquiJoin: %v rows, err %v", j.NumRows(), err)
	}
	ji, err := dance.JoinInformativeness(own, bridge, []string{"zip"})
	if err != nil || ji < 0 || ji > 1 {
		t.Fatalf("JI = %v, %v", ji, err)
	}
	j2, err := dance.JoinPath([]dance.PathStep{{Table: own}, {Table: bridge, On: []string{"zip"}}})
	if err != nil || j2.NumRows() != j.NumRows() {
		t.Fatalf("JoinPath mismatch: %v vs %v (%v)", j2.NumRows(), j.NumRows(), err)
	}
}

func TestFacadeGeneratorsAndHelpers(t *testing.T) {
	tables, fds := dance.GenerateTPCH(1, 1, 0)
	if len(tables) != 8 {
		t.Fatalf("TPC-H tables = %d", len(tables))
	}
	if len(fds["orders"]) == 0 {
		t.Fatal("TPC-H FDs missing")
	}
	etables, efds := dance.GenerateTPCE(1, 1, -1)
	if len(etables) != 29 {
		t.Fatalf("TPC-E tables = %d", len(etables))
	}
	if len(efds["customer"]) == 0 {
		t.Fatal("TPC-E FDs missing")
	}
	if !dance.Null().IsNull() {
		t.Fatal("Null not null")
	}
	model := dance.CachedPricing(dance.DefaultEntropyPricing())
	p, err := model.PriceProjection(tables[0], []string{tables[0].Schema.Column(0).Name})
	if err != nil || p <= 0 {
		t.Fatalf("facade pricing = %v, %v", p, err)
	}
	w := dance.DefaultScoreWeights()
	if w.Correlation <= 0 {
		t.Fatal("score weights degenerate")
	}
}

// The context-first methods cover the full offline → acquire → execute →
// top-k round trip through the root package (the deprecated context-free
// package functions are gone as of the policy API redesign).
func TestMiddlewareRoundTrip(t *testing.T) {
	ctx := context.Background()
	market, own := marketFixture(5)
	mw := dance.New(market, dance.Config{SampleRate: 0.9, SampleSeed: 4})
	mw.AddSource(own, nil)
	if err := mw.Offline(ctx); err != nil {
		t.Fatal(err)
	}
	req := dance.Request{
		SourceAttrs: []string{"income"},
		TargetAttrs: []string{"riskband"},
		Budget:      1e9,
		Iterations:  30,
		Seed:        2,
	}
	plan, err := mw.Acquire(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mw.Execute(ctx, plan); err != nil {
		t.Fatal(err)
	}
	options, err := mw.AcquireTopK(ctx, req, 2, dance.DefaultScoreWeights())
	if err != nil || len(options) == 0 {
		t.Fatalf("AcquireTopK = %v, %v", options, err)
	}
}
