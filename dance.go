// Package dance is the public API of DANCE — a Data Acquisition framework
// on oNline data markets for CorrElation analysis — reproducing Li, Sun,
// Dong & Wang, "Cost-efficient Data Acquisition on Online Data Marketplaces
// for Correlation Analysis" (VLDB 2018).
//
// A data shopper holds source attributes AS (optionally in their own table)
// and wants to buy target attributes AT from a marketplace so that the
// correlation CORR(AS, AT) on the joined data is maximized, subject to a
// purchase budget, a data-quality floor, and a join-informativeness cap.
//
// The API is context-first: marketplaces are online services, so every
// marketplace call and every acquisition takes a context.Context whose
// deadline or cancellation aborts in-flight HTTP requests and stops the
// MCMC search mid-chain. Typical use:
//
//	market := dance.NewMarketplace(nil)
//	market.Register(table, fds)              // the seller side
//
//	ctx := context.Background()              // or a deadline/cancel context
//	mw := dance.New(market, dance.Config{SampleRate: 0.3})
//	mw.AddSource(myTable, nil)               // the shopper's own data
//	plan, err := mw.Acquire(ctx, dance.Request{
//	        SourceAttrs: []string{"totalprice"},
//	        TargetAttrs: []string{"rname"},
//	        Budget:      100,
//	})
//	purchase, err := mw.Execute(ctx, plan)   // buys and joins
//
// The middleware is safe for concurrent use: simultaneous Acquire calls
// share the offline sample state, and sample-rate escalation is
// serialized.
//
// The marketplace can be served over HTTP (Handler / NewMarketClient), and
// the middleware itself can be served to remote shoppers with
// AcquireHandler / AcquireClient (see cmd/danced) — the versioned v1 JSON
// API with plan storage, deadlines and a charge ledger.
package dance

import (
	"net/http"

	"github.com/dance-db/dance/internal/core"
	"github.com/dance-db/dance/internal/fd"
	"github.com/dance-db/dance/internal/infotheory"
	"github.com/dance-db/dance/internal/joingraph"
	"github.com/dance-db/dance/internal/marketplace"
	"github.com/dance-db/dance/internal/persist"
	"github.com/dance-db/dance/internal/pricing"
	"github.com/dance-db/dance/internal/relation"
	"github.com/dance-db/dance/internal/search"
	"github.com/dance-db/dance/internal/tpce"
	"github.com/dance-db/dance/internal/tpch"
)

// Relational substrate.
type (
	// Table is an in-memory relation.
	Table = relation.Table
	// Schema describes a table's columns.
	Schema = relation.Schema
	// Column is one attribute of a schema.
	Column = relation.Column
	// Value is a single relational value (string/int/float/NULL).
	Value = relation.Value
	// Kind enumerates value types.
	Kind = relation.Kind
	// PathStep is one hop of a multi-way join.
	PathStep = relation.PathStep
)

// Value kinds.
const (
	KindNull   = relation.KindNull
	KindString = relation.KindString
	KindInt    = relation.KindInt
	KindFloat  = relation.KindFloat
)

// Dependencies and pricing.
type (
	// FD is a functional dependency LHS → RHS.
	FD = fd.FD
	// PricingModel prices projection queries.
	PricingModel = pricing.Model
	// EntropyPricing is the arbitrage-free entropy-based model.
	EntropyPricing = pricing.EntropyModel
	// FlatPricing is the per-attribute baseline model.
	FlatPricing = pricing.FlatModel
	// Query is a SQL projection query π_Attrs(Instance).
	Query = pricing.Query
)

// Marketplace.
type (
	// Market is the full marketplace API DANCE consumes.
	Market = marketplace.Market
	// InMemoryMarket is the reference marketplace implementation.
	InMemoryMarket = marketplace.InMemory
	// MarketClient talks to a remote HTTP marketplace.
	MarketClient = marketplace.Client
	// DatasetInfo is free schema-level listing metadata.
	DatasetInfo = marketplace.DatasetInfo
	// Ledger records marketplace charges.
	Ledger = marketplace.Ledger
)

// Middleware and search.
type (
	// Middleware is the DANCE middleware (offline + online phases).
	Middleware = core.Dance
	// Config controls the middleware.
	Config = core.Config
	// Plan is a recommended acquisition (queries + estimates).
	Plan = core.Plan
	// Purchase is an executed plan.
	Purchase = core.Purchase
	// Request is a data-acquisition request.
	Request = search.Request
	// Metrics bundles correlation, quality, weight and price.
	Metrics = search.Metrics
	// JoinGraph is the two-layer join graph (Sec 4 of the paper).
	JoinGraph = joingraph.Graph
	// ScoreWeights combine the four metrics for top-k ranking.
	ScoreWeights = search.ScoreWeights
	// RankedPlan is one scored acquisition option from AcquireTopK.
	RankedPlan = core.RankedPlan
	// PlanRecord is a plan flattened to plain data: it can be journaled,
	// restored, and executed (ExecuteRecord) without the in-memory join
	// graph that produced it.
	PlanRecord = core.PlanRecord
	// JoinStep is one flattened hop of a PlanRecord's join path.
	JoinStep = core.JoinStep
)

// Durability.
type (
	// PersistStore journals ledger entries, plans, and offline sample state
	// durably; pass one to Config.Persist and ServiceOptions.Persist.
	PersistStore = persist.Store
	// PersistOptions configure OpenPersist.
	PersistOptions = persist.Options
)

// OpenPersist opens (or creates) a durable journal rooted at dir. Pass the
// returned store to both Config.Persist and ServiceOptions.Persist so one
// journal covers sample state, plans, and the service ledger.
func OpenPersist(dir string, opts PersistOptions) (PersistStore, error) {
	return persist.Open(dir, opts)
}

// ErrInfeasible marks acquisition failures caused by the request itself
// (constraints admit no plan, or attributes nobody sells) rather than by
// the marketplace or infrastructure. Test with errors.Is; the danced
// service maps it to HTTP 422.
var ErrInfeasible = search.ErrInfeasible

// DefaultScoreWeights are the balanced top-k ranking weights.
func DefaultScoreWeights() ScoreWeights { return search.DefaultScoreWeights() }

// NewTable returns an empty table with the given name and schema.
func NewTable(name string, schema *Schema) *Table { return relation.NewTable(name, schema) }

// NewSchema builds a schema from columns.
func NewSchema(cols ...Column) *Schema { return relation.NewSchema(cols...) }

// Cat declares a categorical column (Shannon-entropy treatment).
func Cat(name string, kind Kind) Column { return relation.Cat(name, kind) }

// Num declares a numerical column (cumulative-entropy treatment).
func Num(name string, kind Kind) Column { return relation.Num(name, kind) }

// StringValue wraps a string.
func StringValue(s string) Value { return relation.StringValue(s) }

// IntValue wraps an int64.
func IntValue(i int64) Value { return relation.IntValue(i) }

// FloatValue wraps a float64.
func FloatValue(f float64) Value { return relation.FloatValue(f) }

// Null returns the NULL value.
func Null() Value { return relation.Null() }

// NewFD builds a functional dependency lhs → rhs.
func NewFD(rhs string, lhs ...string) FD { return fd.New(rhs, lhs...) }

// ParseFD parses "A,B -> C".
func ParseFD(s string) (FD, error) { return fd.Parse(s) }

// NewMarketplace creates an in-memory marketplace. A nil model uses the
// cached entropy-based pricing of the paper's experiments.
func NewMarketplace(model PricingModel) *InMemoryMarket {
	return marketplace.NewInMemory(model)
}

// Handler serves a marketplace over JSON/HTTP.
func Handler(m Market) http.Handler { return marketplace.Handler(m) }

// NewMarketClient connects to a marketplace served by Handler.
func NewMarketClient(baseURL string) *MarketClient { return marketplace.NewClient(baseURL) }

// New creates the DANCE middleware bound to a marketplace.
func New(market Market, cfg Config) *Middleware { return core.New(market, cfg) }

// DefaultEntropyPricing returns the experiments' pricing configuration.
func DefaultEntropyPricing() EntropyPricing { return pricing.DefaultEntropyModel() }

// CachedPricing memoizes a pricing model (tables assumed immutable).
func CachedPricing(m PricingModel) PricingModel { return pricing.Cached(m) }

// Correlation computes CORR(X, Y) of Def 2.5 on a table: Shannon mutual
// information for categorical X, cumulative-entropy correlation for numeric
// X, in bits.
func Correlation(t *Table, x, y []string) (float64, error) {
	return infotheory.Correlation(t, x, y)
}

// JoinInformativeness computes JI(a, b) of Def 2.4 over the full outer join
// on the given attributes; lower is a more informative join.
func JoinInformativeness(a, b *Table, on []string) (float64, error) {
	return infotheory.JoinInformativeness(a, b, on)
}

// Quality computes Q of Defs 2.2/2.3: the fraction of rows consistent with
// every applicable FD.
func Quality(t *Table, fds []FD) (float64, error) {
	return fd.QualitySet(t, fds)
}

// DiscoverFDs mines approximate FDs (TANE-style) with g3 error ≤ maxErr.
func DiscoverFDs(t *Table, maxErr float64, maxLHS int) ([]FD, error) {
	return fd.Discover(t, fd.DiscoveryOptions{MaxError: maxErr, MaxLHS: maxLHS})
}

// EquiJoin joins two tables on the named shared attributes.
func EquiJoin(a, b *Table, on []string) (*Table, error) { return relation.EquiJoin(a, b, on) }

// JoinPath joins a sequence of tables left to right.
func JoinPath(steps []PathStep) (*Table, error) { return relation.JoinPath(steps) }

// GenerateTPCH returns the scaled TPC-H-like benchmark dataset used by the
// paper's evaluation: tables in canonical order plus declared AFDs per
// table. dirtyFraction < 0 uses the paper's default (0.3 on six tables).
func GenerateTPCH(scale int, seed int64, dirtyFraction float64) ([]*Table, map[string][]FD) {
	cfg := tpch.Config{Scale: scale, Seed: seed, DirtyFraction: 0.3}
	if dirtyFraction >= 0 {
		cfg.DirtyFraction = dirtyFraction
	}
	d := tpch.Generate(cfg)
	return d.Tables, d.FDs
}

// GenerateTPCE returns the scaled 29-table TPC-E-like benchmark dataset
// (paper default dirt: 0.2 on twenty tables).
func GenerateTPCE(scale int, seed int64, dirtyFraction float64) ([]*Table, map[string][]FD) {
	cfg := tpce.Config{Scale: scale, Seed: seed, DirtyFraction: 0.2}
	if dirtyFraction >= 0 {
		cfg.DirtyFraction = dirtyFraction
	}
	d := tpce.Generate(cfg)
	return d.Tables, d.FDs
}
