package dance_test

import (
	"context"
	"errors"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	dance "github.com/dance-db/dance"
)

// persistedService wires the durable topology: an httptest marketplace, a
// middleware and service sharing one persist journal rooted at dir. The
// caller owns the marketplace server (it survives danced "crashes").
func persistedService(t *testing.T, marketURL, dir string, own *dance.Table) (*dance.AcquireClient, *dance.Service) {
	t.Helper()
	store, err := dance.OpenPersist(dir, dance.PersistOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mw := dance.New(dance.NewMarketClient(marketURL), dance.Config{
		SampleRate: 0.9, SampleSeed: 4, Persist: store,
	})
	mw.AddSource(own, nil)
	svc, err := dance.NewService(mw, dance.ServiceOptions{Persist: store})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(srv.Close)
	return dance.NewAcquireClient(srv.URL), svc
}

// Acceptance (tentpole): kill -9 and restart. A danced process acquires and
// executes a plan, then dies without any shutdown hook — no Close, no flush
// beyond the journal's own per-append durability. A fresh process pointed at
// the same directory resumes with the identical ledger, can fetch and
// execute the old plan ID, and its offline refresh re-buys nothing from the
// marketplace.
func TestDancedCrashRestartRecovers(t *testing.T) {
	market, own := marketFixture(1)
	marketSrv := httptest.NewServer(dance.Handler(market))
	t.Cleanup(marketSrv.Close)
	dir := t.TempDir()
	ctx := context.Background()
	req := dance.AcquireRequest{
		SourceAttrs: []string{"income"},
		TargetAttrs: []string{"riskband"},
		Budget:      1e9,
		Iterations:  40,
		Seed:        2,
	}

	// Process one: acquire, execute, read the books — then "crash". The
	// store is deliberately never Closed; abandoning it models SIGKILL.
	client1, _ := persistedService(t, marketSrv.URL, dir, own)
	plan1, err := client1.Acquire(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client1.Execute(ctx, plan1.ID); err != nil {
		t.Fatal(err)
	}
	ledger1, err := client1.Ledger(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if ledger1.Total <= 0 {
		t.Fatal("first process billed nothing; the test proves nothing")
	}
	sampleSpend := market.Ledger().TotalByKind("sample") + market.Ledger().TotalByKind("sample_delta")

	// Process two: same directory, fresh everything else.
	client2, _ := persistedService(t, marketSrv.URL, dir, own)

	ledger2, err := client2.Ledger(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if ledger2.Total != ledger1.Total {
		t.Fatalf("restart lost the books: ledger %v, want %v", ledger2.Total, ledger1.Total)
	}
	if len(ledger2.Entries) != len(ledger1.Entries) {
		t.Fatalf("restart has %d ledger entries, want %d", len(ledger2.Entries), len(ledger1.Entries))
	}

	// The crashed process's plan ID still resolves and still executes.
	fetched, err := client2.Plan(ctx, plan1.ID)
	if err != nil {
		t.Fatalf("restart lost plan %s: %v", plan1.ID, err)
	}
	if len(fetched.Queries) != len(plan1.Queries) || fetched.Est != plan1.Est {
		t.Fatalf("restored plan %+v != original %+v", fetched, plan1)
	}
	purchase, err := client2.Execute(ctx, plan1.ID)
	if err != nil {
		t.Fatalf("restored plan does not execute: %v", err)
	}
	if purchase.JoinedRows == 0 || purchase.Realized.Correlation <= 0 {
		t.Fatalf("restored execution degenerate: %+v", purchase)
	}

	// A fresh acquisition of the same request reuses the restored samples:
	// identical estimates, zero new sample spend at the marketplace.
	plan2, err := client2.Acquire(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(plan2.Est.Correlation-plan1.Est.Correlation) > 1e-12 ||
		math.Abs(plan2.Est.Price-plan1.Est.Price) > 1e-12 {
		t.Fatalf("restored samples produced a different plan: %+v vs %+v", plan2.Est, plan1.Est)
	}
	if got := market.Ledger().TotalByKind("sample") + market.Ledger().TotalByKind("sample_delta"); got != sampleSpend {
		t.Fatalf("restart re-bought samples: marketplace sample spend %v, want %v", got, sampleSpend)
	}
}

// slowBy delays every request through next — here, to hold the offline
// phase (marketplace round trips) open long enough for concurrency tests to
// observe an in-flight search deterministically.
func slowBy(d time.Duration, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(d)
		next.ServeHTTP(w, r)
	})
}

// coalescingFixture serves a middleware whose marketplace answers slowly,
// so the first acquisition holds its search slot for a while.
func coalescingFixture(t *testing.T, opts dance.ServiceOptions) (*dance.AcquireClient, *dance.Service) {
	t.Helper()
	market, own := marketFixture(1)
	marketSrv := httptest.NewServer(slowBy(150*time.Millisecond, dance.Handler(market)))
	t.Cleanup(marketSrv.Close)
	mw := dance.New(dance.NewMarketClient(marketSrv.URL), dance.Config{SampleRate: 0.9, SampleSeed: 4})
	mw.AddSource(own, nil)
	svc, err := dance.NewService(mw, opts)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(srv.Close)
	return dance.NewAcquireClient(srv.URL), svc
}

// waitStats polls until cond holds or the deadline passes.
func waitStats(t *testing.T, svc *dance.Service, cond func(dance.StatsInfo) bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond(svc.Stats()) {
		if time.Now().After(deadline) {
			t.Fatalf("stats never reached the expected state: %+v", svc.Stats())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// Acceptance (tentpole): N concurrent identical acquires run exactly one
// search and everyone receives the same stored plan.
func TestDancedCoalescesIdenticalAcquires(t *testing.T) {
	client, svc := coalescingFixture(t, dance.ServiceOptions{})
	ctx := context.Background()
	req := dance.AcquireRequest{
		SourceAttrs: []string{"income"},
		TargetAttrs: []string{"riskband"},
		Budget:      1e9,
		Iterations:  40,
		Seed:        2,
	}

	const n = 8
	ids := make([]string, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	run := func(i int) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			plan, err := client.Acquire(ctx, req)
			if err == nil {
				ids[i] = plan.ID
			}
			errs[i] = err
		}()
	}
	run(0)
	// The leader registers its flight before searching; once the stats show
	// it, every follower below is guaranteed to coalesce (the slow
	// marketplace keeps the flight open far longer than the fan-out takes).
	waitStats(t, svc, func(st dance.StatsInfo) bool { return st.Searches == 1 })
	for i := 1; i < n; i++ {
		run(i)
	}
	wg.Wait()

	for i := range errs {
		if errs[i] != nil {
			t.Fatalf("acquire %d: %v", i, errs[i])
		}
		if ids[i] != ids[0] {
			t.Fatalf("request %d got plan %s, leader got %s — not coalesced", i, ids[i], ids[0])
		}
	}
	st := svc.Stats()
	if st.Searches != 1 || st.Coalesced != n-1 || st.Shed != 0 {
		t.Fatalf("stats = %+v, want exactly 1 search, %d coalesced, 0 shed", st, n-1)
	}
	if st.InFlight != 0 {
		t.Fatalf("search slot leaked: %+v", st)
	}
}

// Acceptance (tentpole): with every search slot busy, a non-coalescable
// request is shed as 429 + Retry-After, surfaces client-side as
// ErrOverloaded with the server's backoff hint, and succeeds on retry once
// the slot frees.
func TestDancedShedsOverloadWith429(t *testing.T) {
	client, svc := coalescingFixture(t, dance.ServiceOptions{
		MaxInFlightSearches: 1,
		RetryAfter:          3 * time.Second,
	})
	ctx := context.Background()
	busy := dance.AcquireRequest{
		SourceAttrs: []string{"income"},
		TargetAttrs: []string{"riskband"},
		Budget:      1e9,
		Iterations:  40,
		Seed:        2,
	}
	other := busy
	other.Seed = 3 // different fingerprint: cannot coalesce

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := client.Acquire(ctx, busy); err != nil {
			t.Errorf("leader: %v", err)
		}
	}()
	waitStats(t, svc, func(st dance.StatsInfo) bool { return st.InFlight == 1 })

	_, err := client.Acquire(ctx, other)
	if !errors.Is(err, dance.ErrOverloaded) {
		t.Fatalf("err = %v, want dance.ErrOverloaded", err)
	}
	if d, ok := dance.RetryAfter(err); !ok || d != 3*time.Second {
		t.Fatalf("RetryAfter = %v, %v; want the server's 3s hint", d, ok)
	}
	if st := svc.Stats(); st.Shed != 1 {
		t.Fatalf("stats = %+v, want exactly one shed request", st)
	}

	// Topk is admission-gated by the same semaphore.
	if _, err := client.AcquireTopK(ctx, other, 2, nil); !errors.Is(err, dance.ErrOverloaded) {
		t.Fatalf("topk err = %v, want dance.ErrOverloaded", err)
	}

	wg.Wait() // slot freed
	if _, err := client.Acquire(ctx, other); err != nil {
		t.Fatalf("retry after backoff failed: %v", err)
	}
}
