module github.com/dance-db/dance

go 1.22
