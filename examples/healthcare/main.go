// Healthcare: the paper's running example (Sec 1, Table 1). Data scientist
// Adam owns DS(age, zipcode, population) and wants the marketplace data
// whose join with DS best correlates age groups with diseases in NJ.
//
// Five instances are on sale, echoing the paper's D1–D5:
//
//	D1 zip_state(zipcode, state)           — FD zipcode → state, one dirty row
//	D2 disease_by_state(state, disease, cases)
//	D3 disease_by_gender(gender, race, disease, cases)
//	D4 census(age, gender, race, population)
//	D5 insurance(age, address, insurance, disease) — INDIVIDUAL ages, so the
//	   join with DS's age *groups* barely matches: the meaningless
//	   aggregation-vs-individual join of the paper's Option 4.
//
// DANCE picks the D1→D2 chain (the paper's Option 1) because the D5 route
// yields an (almost) empty, uninformative join.
//
//	go run ./examples/healthcare
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	dance "github.com/dance-db/dance"
)

var ageGroups = []string{"[20,25]", "[35,40]", "[55,60]", "[30,35]", "[45,50]"}
var diseases = []string{"Flu", "Lyme disease", "Diabetes", "AIDS", "Asthma"}
var states = []string{"NJ", "NY", "MA", "CA", "FL"}

func main() {
	rng := rand.New(rand.NewSource(42))

	// Adam's source instance DS: age group, zipcode, population.
	ds := dance.NewTable("DS", dance.NewSchema(
		dance.Cat("age", dance.KindString),
		dance.Cat("zipcode", dance.KindInt),
		dance.Num("population", dance.KindInt),
	))
	for i := 0; i < 400; i++ {
		zip := int64(7000 + rng.Intn(40))
		age := ageGroups[int(zip)%len(ageGroups)]
		ds.AppendValues(
			dance.StringValue(age),
			dance.IntValue(zip),
			dance.IntValue(int64(1000+rng.Intn(7000))),
		)
	}

	// D1: zipcode → state (with a little inconsistency, like the paper).
	d1 := dance.NewTable("zip_state", dance.NewSchema(
		dance.Cat("zipcode", dance.KindInt),
		dance.Cat("state", dance.KindString),
	))
	for zip := int64(7000); zip < 7040; zip++ {
		st := states[int(zip)%len(states)]
		if rng.Float64() < 0.05 {
			st = states[rng.Intn(len(states))] // dirty rows
		}
		d1.AppendValues(dance.IntValue(zip), dance.StringValue(st))
	}

	// D2: disease stats by state; disease skews by state (the signal: age
	// groups cluster by zip, zips map to states, states to diseases).
	d2 := dance.NewTable("disease_by_state", dance.NewSchema(
		dance.Cat("state", dance.KindString),
		dance.Cat("disease", dance.KindString),
		dance.Num("cases", dance.KindInt),
	))
	for si, st := range states {
		for rep := 0; rep < 6; rep++ {
			d2.AppendValues(
				dance.StringValue(st),
				dance.StringValue(diseases[(si+rep/4)%len(diseases)]),
				dance.IntValue(int64(40+rng.Intn(400))),
			)
		}
	}

	// D3/D4: the gender/race route (the paper's Option 2/3).
	d3 := dance.NewTable("disease_by_gender", dance.NewSchema(
		dance.Cat("gender", dance.KindString),
		dance.Cat("race", dance.KindString),
		dance.Cat("disease", dance.KindString),
		dance.Num("cases", dance.KindInt),
	))
	d4 := dance.NewTable("census", dance.NewSchema(
		dance.Cat("age", dance.KindString),
		dance.Cat("gender", dance.KindString),
		dance.Cat("race", dance.KindString),
		dance.Num("population", dance.KindInt),
	))
	genders := []string{"M", "F"}
	races := []string{"White", "Asian", "Hispanic"}
	for _, g := range genders {
		for _, r := range races {
			d3.AppendValues(dance.StringValue(g), dance.StringValue(r),
				dance.StringValue(diseases[rng.Intn(len(diseases))]),
				dance.IntValue(int64(30+rng.Intn(300))))
			for _, a := range ageGroups {
				d4.AppendValues(dance.StringValue(a), dance.StringValue(g), dance.StringValue(r),
					dance.IntValue(int64(10000+rng.Intn(400000))))
			}
		}
	}

	// D5: insurance records with INDIVIDUAL ages ("37"), not groups —
	// joining them with DS.age is the meaningless join the paper warns
	// about; it simply never matches.
	d5 := dance.NewTable("insurance", dance.NewSchema(
		dance.Cat("age", dance.KindString),
		dance.Cat("address", dance.KindString),
		dance.Cat("insurance", dance.KindString),
		dance.Cat("disease", dance.KindString),
	))
	for i := 0; i < 60; i++ {
		d5.AppendValues(
			dance.StringValue(fmt.Sprint(20+rng.Intn(50))),
			dance.StringValue(fmt.Sprintf("%d Main St.", 1+rng.Intn(99))),
			dance.StringValue([]string{"UnitedHealthCare", "MedLife"}[rng.Intn(2)]),
			dance.StringValue(diseases[rng.Intn(len(diseases))]),
		)
	}

	market := dance.NewMarketplace(nil)
	market.Register(d1, []dance.FD{dance.NewFD("state", "zipcode")})
	market.Register(d2, nil)
	market.Register(d3, nil)
	market.Register(d4, nil)
	market.Register(d5, nil)

	mw := dance.New(market, dance.Config{SampleRate: 0.8, SampleSeed: 3, DiscoverFDs: true})
	mw.AddSource(ds, nil)

	// Context-first v1 API: the deadline bounds the marketplace I/O and the
	// MCMC search end to end (an in-process run finishes in milliseconds;
	// against a remote marketplace the same code cancels cleanly).
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	plan, err := mw.Acquire(ctx, dance.Request{
		SourceAttrs: []string{"age"},
		TargetAttrs: []string{"disease"},
		Budget:      400,
		Beta:        0.3, // tolerate some inconsistency, not garbage
		Iterations:  80,
		Seed:        4,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Adam should purchase:")
	for _, q := range plan.Queries {
		fmt.Printf("  %s\n", q)
	}
	fmt.Printf("estimates: correlation=%.3f quality=%.3f price=%.2f\n\n",
		plan.Est.Correlation, plan.Est.Quality, plan.Est.Price)

	purchase, err := mw.Execute(ctx, plan)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("purchased for %.2f; CORR(age; disease) on the joined data = %.3f (quality %.3f)\n",
		purchase.TotalPrice, purchase.Realized.Correlation, purchase.Realized.Quality)
	fmt.Println("\nnote: the insurance table (individual ages) was avoided — its join")
	fmt.Println("with DS's age groups is the meaningless aggregation-vs-individual join")
	fmt.Println("of the paper's Option 4.")
}
