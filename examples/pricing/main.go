// Pricing: demonstrates the query-based, arbitrage-free entropy pricing of
// the marketplace — quotes are free, information is what costs money, and
// splitting a query into pieces can never undercut the bundle price.
//
//	go run ./examples/pricing
package main

import (
	"context"
	"fmt"
	"log"

	dance "github.com/dance-db/dance"
)

func main() {
	tables, fds := dance.GenerateTPCH(2, 1, 0)
	market := dance.NewMarketplace(nil)
	var customer *dance.Table
	for _, t := range tables {
		market.Register(t, fds[t.Name])
		if t.Name == "customer" {
			customer = t
		}
	}

	fmt.Println("== free quotes (query-based pricing) ==")
	quote := func(attrs ...string) float64 {
		p, err := market.QuoteProjection(context.Background(), "customer", attrs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  SELECT %v FROM customer  →  %.2f\n", attrs, p)
		return p
	}
	pKey := quote("custkey")
	pSeg := quote("mktsegment")
	pBoth := quote("custkey", "mktsegment")
	pAll := quote(customer.Schema.Names()...)

	fmt.Println("\n== arbitrage-freeness ==")
	fmt.Printf("  bundle %.2f ≤ parts %.2f + %.2f: %v (subadditive)\n",
		pBoth, pKey, pSeg, pBoth <= pKey+pSeg)
	fmt.Printf("  full table %.2f ≥ any projection: %v (monotone)\n", pAll, pAll >= pBoth)

	fmt.Println("\n== information is the price driver ==")
	// A high-cardinality key carries more bits than a 5-value segment.
	fmt.Printf("  custkey (unique ids):  %.2f\n", pKey)
	fmt.Printf("  mktsegment (5 values): %.2f\n", pSeg)

	fmt.Println("\n== samples are discounted by rate ==")
	for _, rate := range []float64{0.1, 0.5, 1.0} {
		_, price, err := market.Sample(context.Background(), "customer", []string{"custkey"}, rate, 7)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  rate %.1f sample: %.2f\n", rate, price)
	}

	fmt.Println("\n== the ledger records every charge ==")
	for _, e := range market.Ledger().Entries() {
		fmt.Printf("  %-7s %-10s %v: %.2f\n", e.Kind, e.Dataset, e.Attrs, e.Amount)
	}
	fmt.Printf("  total: %.2f\n", market.Ledger().Total())
}
