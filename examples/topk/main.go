// Top-k: the paper's future-work extension — instead of the single
// correlation-best plan, rank several acquisition options by a combined
// score of correlation, quality, join informativeness, and price, and let
// the shopper choose.
//
//	go run ./examples/topk
package main

import (
	"context"
	"fmt"
	"log"

	dance "github.com/dance-db/dance"
)

func main() {
	tables, fds := dance.GenerateTPCH(3, 42, -1)
	market := dance.NewMarketplace(nil)
	for _, t := range tables {
		market.Register(t, fds[t.Name])
	}
	mw := dance.New(market, dance.Config{SampleRate: 0.5, SampleSeed: 9})

	ctx := context.Background()
	options, err := mw.AcquireTopK(ctx, dance.Request{
		SourceAttrs: []string{"totalprice"},
		TargetAttrs: []string{"nname"},
		Budget:      400,
		Iterations:  80,
		Seed:        5,
	}, 3, dance.DefaultScoreWeights())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("top %d acquisition options:\n\n", len(options))
	for i, o := range options {
		fmt.Printf("option %d — score %.4f\n", i+1, o.Score)
		fmt.Printf("  estimated: correlation=%.4f quality=%.4f join-informativeness=%.4f price=%.2f\n",
			o.Plan.Est.Correlation, o.Plan.Est.Quality, o.Plan.Est.Weight, o.Plan.Est.Price)
		for _, q := range o.Plan.Queries {
			fmt.Printf("  %s\n", q)
		}
		fmt.Println()
	}

	// Execute the cheapest of the top options.
	cheapest := options[0]
	for _, o := range options[1:] {
		if o.Plan.Est.Price < cheapest.Plan.Est.Price {
			cheapest = o
		}
	}
	purchase, err := mw.Execute(ctx, cheapest.Plan)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("executed the cheapest option for %.2f; realized correlation %.4f\n",
		purchase.TotalPrice, purchase.Realized.Correlation)
}
