// Quickstart: sell two datasets on an in-memory marketplace, then acquire
// the attribute combination that best correlates with data the shopper
// already owns.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	dance "github.com/dance-db/dance"
)

func main() {
	rng := rand.New(rand.NewSource(7))

	// The shopper's own data: household income per zip code.
	own := dance.NewTable("households", dance.NewSchema(
		dance.Cat("zip", dance.KindInt),
		dance.Num("income", dance.KindFloat),
	))
	for i := 0; i < 500; i++ {
		zip := int64(rng.Intn(25))
		own.AppendValues(
			dance.IntValue(zip),
			dance.FloatValue(30000+float64(zip)*2500+rng.Float64()*4000),
		)
	}

	// Marketplace listings: a zip→county bridge and county-level health
	// stats. Counties are contiguous zip ranges and risk bands contiguous
	// county ranges, so income (which grows with zip) genuinely predicts
	// the risk band.
	bridge := dance.NewTable("geo_bridge", dance.NewSchema(
		dance.Cat("zip", dance.KindInt),
		dance.Cat("county", dance.KindInt),
	))
	for zip := int64(0); zip < 25; zip++ {
		bridge.AppendValues(dance.IntValue(zip), dance.IntValue(zip/5))
	}
	health := dance.NewTable("health_stats", dance.NewSchema(
		dance.Cat("county", dance.KindInt),
		dance.Cat("riskband", dance.KindString),
		dance.Num("cases", dance.KindInt),
	))
	for county := int64(0); county < 5; county++ {
		for w := 0; w < 4; w++ {
			health.AppendValues(
				dance.IntValue(county),
				dance.StringValue(string(rune('A'+county/2))),
				dance.IntValue(100*county+int64(rng.Intn(40))),
			)
		}
	}

	market := dance.NewMarketplace(nil)
	market.Register(bridge, []dance.FD{dance.NewFD("county", "zip")})
	market.Register(health, []dance.FD{dance.NewFD("riskband", "county")})

	// DANCE: sample offline, search online, buy.
	mw := dance.New(market, dance.Config{SampleRate: 0.6, SampleSeed: 11})
	mw.AddSource(own, nil)

	ctx := context.Background()
	plan, err := mw.Acquire(ctx, dance.Request{
		SourceAttrs: []string{"income"},
		TargetAttrs: []string{"riskband"},
		Budget:      500,
		Iterations:  60,
		Seed:        1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("recommended purchase:")
	for _, q := range plan.Queries {
		fmt.Printf("  %s\n", q)
	}
	fmt.Printf("estimated: correlation=%.3f quality=%.3f price=%.2f (samples cost %.2f)\n",
		plan.Est.Correlation, plan.Est.Quality, plan.Est.Price, mw.SampleCost())

	purchase, err := mw.Execute(ctx, plan)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bought %d projections for %.2f; joined result: %d rows\n",
		len(purchase.Tables), purchase.TotalPrice, purchase.Joined.NumRows())
	fmt.Printf("realized correlation(income; riskband) = %.3f, quality = %.3f\n",
		purchase.Realized.Correlation, purchase.Realized.Quality)
}
