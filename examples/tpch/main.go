// TPC-H budget sweep: list the scaled TPC-H benchmark on a marketplace and
// watch the achievable correlation grow with the purchase budget — the
// shopper-facing view of the paper's Figure 7.
//
//	go run ./examples/tpch
package main

import (
	"context"
	"fmt"
	"log"

	dance "github.com/dance-db/dance"
)

func main() {
	tables, fds := dance.GenerateTPCH(3, 42, -1)
	market := dance.NewMarketplace(nil)
	for _, t := range tables {
		market.Register(t, fds[t.Name])
	}

	// No owned data: the shopper buys both sides of the correlation
	// (the paper's source-less acquisition).
	mw := dance.New(market, dance.Config{SampleRate: 0.5, SampleSeed: 9})

	// How strongly does order value correlate with the customer's nation?
	req := dance.Request{
		SourceAttrs: []string{"totalprice"},
		TargetAttrs: []string{"nname"},
		Iterations:  80,
		Seed:        5,
	}

	fmt.Println("budget  price_paid  est_correlation  queries")
	for _, budget := range []float64{40, 80, 160, 320, 640} {
		req.Budget = budget
		plan, err := mw.Acquire(context.Background(), req)
		if err != nil {
			fmt.Printf("%6.0f  %10s  %15s  (not affordable)\n", budget, "-", "-")
			continue
		}
		fmt.Printf("%6.0f  %10.2f  %15.4f  %d\n",
			budget, plan.Est.Price, plan.Est.Correlation, len(plan.Queries))
	}

	// Execute the final (richest) plan.
	req.Budget = 640
	plan, err := mw.Acquire(context.Background(), req)
	if err != nil {
		log.Fatal(err)
	}
	purchase, err := mw.Execute(context.Background(), plan)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfinal purchase (budget 640):\n")
	for _, q := range plan.Queries {
		fmt.Printf("  %s\n", q)
	}
	fmt.Printf("real correlation on purchased data: %.4f (join of %d rows, paid %.2f)\n",
		purchase.Realized.Correlation, purchase.Joined.NumRows(), purchase.TotalPrice)
}
