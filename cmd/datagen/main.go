// Command datagen generates the TPC-H-like or TPC-E-like benchmark dataset
// as CSV files (one per table, typed headers) plus a .fds file listing each
// table's declared approximate functional dependencies.
//
// Usage:
//
//	datagen -dataset tpch -scale 25 -out ./data/tpch
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"github.com/dance-db/dance/internal/fd"
	"github.com/dance-db/dance/internal/relation"
	"github.com/dance-db/dance/internal/tpce"
	"github.com/dance-db/dance/internal/tpch"
)

func main() {
	var (
		dataset = flag.String("dataset", "tpch", "tpch or tpce")
		scale   = flag.Int("scale", 10, "scale factor")
		seed    = flag.Int64("seed", 42, "PRNG seed")
		dirty   = flag.Float64("dirty", -1, "dirty fraction (-1 = dataset default)")
		out     = flag.String("out", "data", "output directory")
	)
	flag.Parse()

	var tables []*relation.Table
	var fds map[string][]fd.FD
	switch *dataset {
	case "tpch":
		cfg := tpch.Config{Scale: *scale, Seed: *seed, DirtyFraction: 0.3}
		if *dirty >= 0 {
			cfg.DirtyFraction = *dirty
		}
		d := tpch.Generate(cfg)
		tables, fds = d.Tables, d.FDs
	case "tpce":
		cfg := tpce.Config{Scale: *scale, Seed: *seed, DirtyFraction: 0.2}
		if *dirty >= 0 {
			cfg.DirtyFraction = *dirty
		}
		d := tpce.Generate(cfg)
		tables, fds = d.Tables, d.FDs
	default:
		log.Fatalf("unknown dataset %q (want tpch or tpce)", *dataset)
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}
	for _, t := range tables {
		path := filepath.Join(*out, t.Name+".csv")
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		if err := t.WriteCSV(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %d rows, %d attrs\n", path, t.NumRows(), t.NumCols())
	}
	var lines []string
	for _, t := range tables {
		for _, f := range fds[t.Name] {
			lines = append(lines, t.Name+": "+strings.Join(f.LHS, ",")+" -> "+f.RHS)
		}
	}
	fdPath := filepath.Join(*out, *dataset+".fds")
	if err := os.WriteFile(fdPath, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d declared FDs\n", fdPath, len(lines))
}
