// Command datagen generates a benchmark dataset as CSV files (one per
// table, typed headers) plus a .fds file listing each table's declared
// approximate functional dependencies — the directory layout marketd serves
// with -dir. Three generators are available: the TPC-H-like and TPC-E-like
// datasets of the paper's evaluation, and synthetic workloads with planted
// correlations (-workload), which additionally emit a workload.json
// ground-truth record (planted ρ, cheapest correct plan, its cost).
//
// Usage:
//
//	datagen -dataset tpch -scale 25 -out ./data/tpch
//	datagen -workload chain:3,kinds=mixed,null=0.05 -seed 7 -out ./data/wl
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"github.com/dance-db/dance/internal/cli"
	"github.com/dance-db/dance/internal/datadir"
	"github.com/dance-db/dance/internal/fd"
	"github.com/dance-db/dance/internal/relation"
	"github.com/dance-db/dance/internal/tpce"
	"github.com/dance-db/dance/internal/tpch"
	"github.com/dance-db/dance/internal/workload"
)

// errFlagParse marks a flag-parse failure the FlagSet has already reported
// on stderr, so main must not print it a second time.
var errFlagParse = errors.New("flag parse error")

func main() {
	ctx, stop := cli.RootContext()
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		if !errors.Is(err, errFlagParse) {
			fmt.Fprintln(os.Stderr, err)
		}
		os.Exit(1)
	}
}

// run is the testable body of the command. The context is part of the
// uniform cmd/ entry-point shape; generation is local and runs to
// completion, so it is currently unobserved.
func run(_ context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("datagen", flag.ContinueOnError)
	var (
		dataset = fs.String("dataset", "tpch", "tpch or tpce")
		wl      = fs.String("workload", "", "synthetic workload spec (e.g. chain:3,rows=600); overrides -dataset")
		scale   = fs.Int("scale", 10, "scale factor (tpch/tpce)")
		seed    = fs.Int64("seed", 42, "PRNG seed")
		dirty   = fs.Float64("dirty", -1, "dirty fraction for tpch/tpce (-1 = dataset default)")
		out     = fs.String("out", "data", "output directory")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -h prints usage and exits cleanly
		}
		return errFlagParse
	}

	if *wl != "" {
		spec, err := workload.ParseSpec(*wl)
		if err != nil {
			return err
		}
		w, err := workload.Generate(spec, *seed)
		if err != nil {
			return err
		}
		if err := w.WriteDir(*out); err != nil {
			return err
		}
		for _, t := range w.Listings {
			fmt.Fprintf(stdout, "%s: %d rows, %d attrs\n", filepath.Join(*out, t.Name+".csv"), t.NumRows(), t.NumCols())
		}
		fmt.Fprintf(stdout, "%s: planted ρ=%.4f over path %s, cheapest plan %.2f\n",
			filepath.Join(*out, "workload.json"), w.Truth.Rho, strings.Join(w.Truth.Path, "→"), w.Truth.PlanCost)
		return nil
	}

	var tables []*relation.Table
	var fds map[string][]fd.FD
	switch *dataset {
	case "tpch":
		cfg := tpch.Config{Scale: *scale, Seed: *seed, DirtyFraction: 0.3}
		if *dirty >= 0 {
			cfg.DirtyFraction = *dirty
		}
		d := tpch.Generate(cfg)
		tables, fds = d.Tables, d.FDs
	case "tpce":
		cfg := tpce.Config{Scale: *scale, Seed: *seed, DirtyFraction: 0.2}
		if *dirty >= 0 {
			cfg.DirtyFraction = *dirty
		}
		d := tpce.Generate(cfg)
		tables, fds = d.Tables, d.FDs
	default:
		return fmt.Errorf("unknown dataset %q (want tpch or tpce)", *dataset)
	}

	nFDs, err := datadir.WriteTables(*out, tables, fds, *dataset)
	if err != nil {
		return err
	}
	for _, t := range tables {
		fmt.Fprintf(stdout, "%s: %d rows, %d attrs\n", filepath.Join(*out, t.Name+".csv"), t.NumRows(), t.NumCols())
	}
	fmt.Fprintf(stdout, "%s: %d declared FDs\n", filepath.Join(*out, *dataset+".fds"), nFDs)
	return nil
}
