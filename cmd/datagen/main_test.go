package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/dance-db/dance/internal/relation"
	"github.com/dance-db/dance/internal/workload"
)

func TestRunErrorExits(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-dataset", "nosuch", "-out", t.TempDir()}, &out); err == nil {
		t.Fatal("unknown dataset must error")
	}
	if err := run(context.Background(), []string{"-workload", "ring:3", "-out", t.TempDir()}, &out); err == nil {
		t.Fatal("malformed workload spec must error")
	}
	if err := run(context.Background(), []string{"-bogusflag"}, &out); err == nil {
		t.Fatal("unknown flag must error")
	}
}

func TestRunTPCHWritesLayout(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-dataset", "tpch", "-scale", "1", "-out", dir}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"region.csv", "lineitem.csv", "tpch.fds"} {
		if _, err := os.Stat(filepath.Join(dir, want)); err != nil {
			t.Errorf("missing %s: %v", want, err)
		}
	}
	if !strings.Contains(out.String(), "declared FDs") {
		t.Errorf("output missing FD summary: %q", out.String())
	}
}

// TestRunWorkloadRoundTrip checks the -workload path end to end: the CSVs
// parse back into the exact tables the generator produced (the layout
// marketd -dir serves), and the ground-truth file round-trips.
func TestRunWorkloadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	spec := "chain:2,kinds=mixed,null=0.05"
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-workload", spec, "-seed", "9", "-out", dir}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "planted ρ=") {
		t.Errorf("output missing planted summary: %q", out.String())
	}

	parsed, err := workload.ParseSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	w, err := workload.Generate(parsed, 9)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range w.Listings {
		f, err := os.Open(filepath.Join(dir, want.Name+".csv"))
		if err != nil {
			t.Fatalf("listing not written: %v", err)
		}
		got, err := relation.ReadCSV(want.Name, f)
		f.Close()
		if err != nil {
			t.Fatal(err)
		}
		if got.NumRows() != want.NumRows() || !got.Schema.Equal(want.Schema) {
			t.Errorf("%s: round-trip mismatch (%d rows vs %d)", want.Name, got.NumRows(), want.NumRows())
		}
	}
	gotSpec, seed, truth, err := workload.ReadTruth(filepath.Join(dir, "workload.json"))
	if err != nil {
		t.Fatal(err)
	}
	if gotSpec != parsed || seed != 9 || truth.Rho != w.Truth.Rho {
		t.Errorf("truth round-trip mismatch: %+v seed %d", gotSpec, seed)
	}
	fds, err := os.ReadFile(filepath.Join(dir, "workload.fds"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(fds), "goal: ") {
		t.Errorf("workload.fds missing terminal FD: %q", string(fds))
	}
}
