package main

import (
	"bufio"
	"context"
	"strings"
	"testing"
)

func TestParseBenchOutput(t *testing.T) {
	in := `goos: linux
goarch: amd64
pkg: github.com/dance-db/dance
BenchmarkCorrelation-8   	  126180	     19071 ns/op	   18344 B/op	      50 allocs/op
BenchmarkHeuristicTPCESerial 	    1716	   1439719.5 ns/op	 1316721 B/op	    5163 allocs/op
BenchmarkNoMem-4         	     100	      1234 ns/op
PASS
`
	got, err := parse(context.Background(), bufio.NewScanner(strings.NewReader(in)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %v", len(got), got)
	}
	c := got["BenchmarkCorrelation"]
	if c.NsPerOp != 19071 || c.BytesPerOp != 18344 || c.AllocsPerOp != 50 {
		t.Fatalf("BenchmarkCorrelation = %+v", c)
	}
	h := got["BenchmarkHeuristicTPCESerial"]
	if h.NsPerOp != 1439719.5 || h.AllocsPerOp != 5163 {
		t.Fatalf("BenchmarkHeuristicTPCESerial = %+v", h)
	}
	n := got["BenchmarkNoMem"]
	if n.NsPerOp != 1234 || n.BytesPerOp != 0 || n.AllocsPerOp != 0 {
		t.Fatalf("BenchmarkNoMem = %+v", n)
	}
}

func TestCheckFaster(t *testing.T) {
	results := map[string]Result{
		"BenchmarkIncremental": {NsPerOp: 100},
		"BenchmarkFull":        {NsPerOp: 250},
	}
	if err := checkFaster(results, "BenchmarkIncremental<BenchmarkFull"); err != nil {
		t.Fatalf("valid ordering rejected: %v", err)
	}
	if err := checkFaster(results, "BenchmarkFull<BenchmarkIncremental"); err == nil {
		t.Fatal("inverted ordering must fail")
	}
	if err := checkFaster(results, "BenchmarkIncremental<BenchmarkMissing"); err == nil {
		t.Fatal("missing benchmark must fail")
	}
	if err := checkFaster(results, "garbage"); err == nil {
		t.Fatal("malformed pair must fail")
	}
	if err := checkFaster(results, " BenchmarkIncremental < BenchmarkFull , "); err != nil {
		t.Fatalf("whitespace/trailing comma should be tolerated: %v", err)
	}
}

// Chained or one-sided pairs must be rejected as malformed, not half-read:
// a SplitN-based parse used to fold "B<C" into the second operand and
// report a misleading "missing from input" for specs that were never valid.
func TestCheckFasterMalformed(t *testing.T) {
	results := map[string]Result{
		"BenchmarkA": {NsPerOp: 1},
		"BenchmarkB": {NsPerOp: 2},
		"BenchmarkC": {NsPerOp: 3},
	}
	for _, spec := range []string{
		"BenchmarkA<BenchmarkB<BenchmarkC", // chained
		"<BenchmarkB",                      // empty left side
		"BenchmarkA<",                      // empty right side
		"BenchmarkA<BenchmarkB,<",          // valid pair then malformed
	} {
		err := checkFaster(results, spec)
		if err == nil {
			t.Errorf("checkFaster(%q) accepted a malformed spec", spec)
			continue
		}
		if !strings.Contains(err.Error(), "malformed") {
			t.Errorf("checkFaster(%q) = %v, want a malformed-spec error", spec, err)
		}
	}
}

func TestCheckRatio(t *testing.T) {
	results := map[string]Result{
		"BenchmarkSerial":   {NsPerOp: 1000},
		"BenchmarkParallel": {NsPerOp: 400},
		"BenchmarkZero":     {NsPerOp: 0},
	}
	if err := checkRatio(results, "BenchmarkSerial/BenchmarkParallel>=2.0", 0); err != nil {
		t.Fatalf("2.5× speedup rejected against a 2.0 floor: %v", err)
	}
	if err := checkRatio(results, "BenchmarkSerial/BenchmarkParallel>=3.0", 0); err == nil {
		t.Fatal("2.5× speedup must fail a strict 3.0 floor")
	}
	// Slack discounts the floor: 3.0×(1−0.25) = 2.25 ≤ 2.5 passes.
	if err := checkRatio(results, "BenchmarkSerial/BenchmarkParallel>=3.0", 0.25); err != nil {
		t.Fatalf("2.5× speedup rejected against a 3.0 floor with 25%% slack: %v", err)
	}
	if err := checkRatio(results, "BenchmarkSerial/BenchmarkMissing>=2.0", 0); err == nil {
		t.Fatal("missing benchmark must fail")
	}
	if err := checkRatio(results, "BenchmarkSerial/BenchmarkZero>=2.0", 0); err == nil {
		t.Fatal("zero-ns/op denominator must fail")
	}
	if err := checkRatio(results, " BenchmarkSerial / BenchmarkParallel >= 2.0 , ", 0); err != nil {
		t.Fatalf("whitespace/trailing comma should be tolerated: %v", err)
	}
	if err := checkRatio(results, "BenchmarkSerial/BenchmarkParallel>=2.0", 1.5); err == nil {
		t.Fatal("slack outside [0, 1) must fail")
	}
}

// Malformed ratio specs are CI configuration bugs: they must be rejected
// loudly, never half-parsed into a gate that silently checks nothing.
func TestCheckRatioMalformed(t *testing.T) {
	results := map[string]Result{
		"BenchmarkA": {NsPerOp: 10},
		"BenchmarkB": {NsPerOp: 5},
	}
	for _, spec := range []string{
		"BenchmarkA/BenchmarkB",               // no floor
		"BenchmarkA>=2.0",                     // no ratio pair
		"BenchmarkA/BenchmarkB/BenchmarkC>=2", // chained division
		"BenchmarkA/BenchmarkB>=2>=3",         // chained floors
		"/BenchmarkB>=2.0",                    // empty numerator
		"BenchmarkA/>=2.0",                    // empty denominator
		"BenchmarkA/BenchmarkB>=fast",         // non-numeric floor
		"BenchmarkA/BenchmarkB>=-1",           // non-positive floor
		"BenchmarkA/BenchmarkB>=0",            // zero floor
		"BenchmarkA/BenchmarkB>=2.0,garbage",  // valid spec then malformed
	} {
		err := checkRatio(results, spec, 0)
		if err == nil {
			t.Errorf("checkRatio(%q) accepted a malformed spec", spec)
			continue
		}
		if !strings.Contains(err.Error(), "malformed") {
			t.Errorf("checkRatio(%q) = %v, want a malformed-spec error", spec, err)
		}
	}
}

func TestMarshalStable(t *testing.T) {
	m := map[string]Result{
		"BenchmarkB": {NsPerOp: 2},
		"BenchmarkA": {NsPerOp: 1},
	}
	out, err := marshalStable(m)
	if err != nil {
		t.Fatal(err)
	}
	s := string(out)
	if !strings.Contains(s, "BenchmarkA") || strings.Index(s, "BenchmarkA") > strings.Index(s, "BenchmarkB") {
		t.Fatalf("keys not sorted: %s", s)
	}
}
