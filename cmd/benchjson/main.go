// benchjson converts `go test -bench -benchmem` output into a stable JSON
// map (benchmark name → ns/op, B/op, allocs/op) and gates benchmarks against
// a committed baseline. It anchors the repo's performance trajectory: each
// perf PR checks in a BENCH_<n>.json emitted by this tool, and CI fails when
// a gated benchmark regresses past the tolerance against the baseline.
//
// Emit (reads bench output from stdin):
//
//	go test -run '^$' -bench . -benchmem . | go run ./cmd/benchjson -out BENCH_3.json
//
// Gate (reads bench output from stdin, compares ns/op against a baseline):
//
//	go test -run '^$' -bench BenchmarkHeuristicTPCEParallel -benchmem . |
//	    go run ./cmd/benchjson -baseline BENCH_3.json \
//	        -check BenchmarkHeuristicTPCEParallel -max-regress 0.20
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"github.com/dance-db/dance/internal/cli"
)

// Result is one benchmark's measurements.
type Result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// benchLine matches `BenchmarkName-8   123   456.7 ns/op   89 B/op   10 allocs/op`.
// The -N GOMAXPROCS suffix is stripped so names are stable across machines.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

func parse(ctx context.Context, r *bufio.Scanner) (map[string]Result, error) {
	out := map[string]Result{}
	for r.Scan() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		m := benchLine.FindStringSubmatch(r.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("benchjson: bad ns/op in %q: %w", r.Text(), err)
		}
		res := Result{NsPerOp: ns}
		if m[3] != "" {
			res.BytesPerOp, _ = strconv.ParseInt(m[3], 10, 64)
		}
		if m[4] != "" {
			res.AllocsPerOp, _ = strconv.ParseInt(m[4], 10, 64)
		}
		out[m[1]] = res
	}
	return out, r.Err()
}

func main() {
	ctx, stop := cli.RootContext()
	defer stop()
	out := flag.String("out", "", "write parsed results as JSON to this file ('-' for stdout)")
	baseline := flag.String("baseline", "", "committed baseline JSON to gate against")
	check := flag.String("check", "", "comma-separated benchmark names to gate (ns/op)")
	maxRegress := flag.Float64("max-regress", 0.20, "allowed fractional ns/op regression vs the baseline")
	calibrate := flag.String("calibrate", "", "benchmark used as a machine-speed anchor: gated ns/op are divided by this benchmark's ns/op in both the current run and the baseline, so a baseline measured on different hardware still gates relative regressions")
	requireFaster := flag.String("require-faster", "", "comma-separated 'A<B' pairs asserting benchmark A's ns/op is below B's in the current input — ordering invariants (e.g. the incremental escalation beating the full rebuild) that must hold on any machine")
	requireRatio := flag.String("require-ratio", "", "comma-separated 'A/B>=R' specs asserting benchmark A's ns/op is at least R times B's in the current input — speedup floors (e.g. the serial 1M search costing ≥ 2× the parallel one), discounted by -ratio-slack")
	ratioSlack := flag.Float64("ratio-slack", 0, "fractional discount on every -require-ratio floor: a spec 'A/B>=R' passes when A/B ≥ R×(1−slack). Smoke runs with -benchtime=1x are noisy, so CI gates them with slack while the nightly full-size run gates strict (slack 0)")
	flag.Parse()

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	results, err := parse(ctx, sc)
	if err != nil {
		fatal(err)
	}
	if len(results) == 0 {
		fatal(fmt.Errorf("benchjson: no benchmark lines on stdin"))
	}

	if *out != "" {
		enc, err := marshalStable(results)
		if err != nil {
			fatal(err)
		}
		if *out == "-" {
			fmt.Println(string(enc))
		} else if err := os.WriteFile(*out, append(enc, '\n'), 0o644); err != nil {
			fatal(err)
		}
	}

	if *requireFaster != "" {
		if err := checkFaster(results, *requireFaster); err != nil {
			fatal(err)
		}
	}

	if *requireRatio != "" {
		if err := checkRatio(results, *requireRatio, *ratioSlack); err != nil {
			fatal(err)
		}
	}

	if *baseline != "" && *check != "" {
		raw, err := os.ReadFile(*baseline)
		if err != nil {
			fatal(err)
		}
		var base map[string]Result
		if err := json.Unmarshal(raw, &base); err != nil {
			fatal(fmt.Errorf("benchjson: parse baseline %s: %w", *baseline, err))
		}
		// With -calibrate, both sides are expressed as multiples of the
		// anchor benchmark's ns/op on their own machine, cancelling raw
		// machine speed (CI runners vs the laptop that emitted the
		// baseline).
		curScale, baseScale, unit := 1.0, 1.0, "ns/op"
		if *calibrate != "" {
			cb, ok := base[*calibrate]
			if !ok || cb.NsPerOp <= 0 {
				fatal(fmt.Errorf("benchjson: calibration benchmark %s missing from baseline", *calibrate))
			}
			cc, ok := results[*calibrate]
			if !ok || cc.NsPerOp <= 0 {
				fatal(fmt.Errorf("benchjson: calibration benchmark %s missing from input", *calibrate))
			}
			curScale, baseScale, unit = cc.NsPerOp, cb.NsPerOp, "×"+*calibrate
		}
		failed := false
		for _, name := range strings.Split(*check, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			b, ok := base[name]
			if !ok {
				// "once one exists": a baseline without the benchmark does
				// not gate it.
				fmt.Printf("benchjson: %s absent from baseline, skipping gate\n", name)
				continue
			}
			cur, ok := results[name]
			if !ok {
				fatal(fmt.Errorf("benchjson: gated benchmark %s missing from input", name))
			}
			got, ref := cur.NsPerOp/curScale, b.NsPerOp/baseScale
			limit := ref * (1 + *maxRegress)
			if got > limit {
				fmt.Printf("benchjson: FAIL %s: %.4g %s exceeds baseline %.4g %s by more than %.0f%%\n",
					name, got, unit, ref, unit, *maxRegress*100)
				failed = true
			} else {
				fmt.Printf("benchjson: ok %s: %.4g %s (baseline %.4g, limit %.4g)\n",
					name, got, unit, ref, limit)
			}
		}
		if failed {
			os.Exit(1)
		}
	}
}

// checkFaster enforces 'A<B' ordering invariants on the parsed results.
func checkFaster(results map[string]Result, spec string) error {
	for _, pair := range strings.Split(spec, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		// A full Split (not SplitN) rejects chained specs like "A<B<C"
		// outright: SplitN would silently fold the tail into the second
		// operand and report it as a missing benchmark instead of the
		// malformed spec it is.
		parts := strings.Split(pair, "<")
		if len(parts) != 2 {
			return fmt.Errorf("benchjson: malformed -require-faster pair %q (want exactly one 'A<B')", pair)
		}
		a, b := strings.TrimSpace(parts[0]), strings.TrimSpace(parts[1])
		if a == "" || b == "" {
			return fmt.Errorf("benchjson: malformed -require-faster pair %q (empty benchmark name)", pair)
		}
		ra, ok := results[a]
		if !ok {
			return fmt.Errorf("benchjson: -require-faster benchmark %s missing from input", a)
		}
		rb, ok := results[b]
		if !ok {
			return fmt.Errorf("benchjson: -require-faster benchmark %s missing from input", b)
		}
		if ra.NsPerOp >= rb.NsPerOp {
			return fmt.Errorf("benchjson: FAIL %s (%.4g ns/op) is not faster than %s (%.4g ns/op)",
				a, ra.NsPerOp, b, rb.NsPerOp)
		}
		fmt.Printf("benchjson: ok %s (%.4g ns/op) < %s (%.4g ns/op)\n", a, ra.NsPerOp, b, rb.NsPerOp)
	}
	return nil
}

// checkRatio enforces 'A/B>=R' speedup floors on the parsed results,
// discounted by slack: A/B must be at least R×(1−slack). Specs are
// validated strictly — a malformed spec is a CI configuration bug and must
// fail loudly, not silently gate nothing.
func checkRatio(results map[string]Result, spec string, slack float64) error {
	if slack < 0 || slack >= 1 {
		return fmt.Errorf("benchjson: -ratio-slack %g out of range [0, 1)", slack)
	}
	for _, one := range strings.Split(spec, ",") {
		one = strings.TrimSpace(one)
		if one == "" {
			continue
		}
		sides := strings.Split(one, ">=")
		if len(sides) != 2 {
			return fmt.Errorf("benchjson: malformed -require-ratio spec %q (want exactly one 'A/B>=R')", one)
		}
		names := strings.Split(sides[0], "/")
		if len(names) != 2 {
			return fmt.Errorf("benchjson: malformed -require-ratio spec %q (want exactly one 'A/B' on the left)", one)
		}
		a, b := strings.TrimSpace(names[0]), strings.TrimSpace(names[1])
		if a == "" || b == "" {
			return fmt.Errorf("benchjson: malformed -require-ratio spec %q (empty benchmark name)", one)
		}
		want, err := strconv.ParseFloat(strings.TrimSpace(sides[1]), 64)
		if err != nil || want <= 0 {
			return fmt.Errorf("benchjson: malformed -require-ratio spec %q (ratio must be a positive number)", one)
		}
		ra, ok := results[a]
		if !ok {
			return fmt.Errorf("benchjson: -require-ratio benchmark %s missing from input", a)
		}
		rb, ok := results[b]
		if !ok {
			return fmt.Errorf("benchjson: -require-ratio benchmark %s missing from input", b)
		}
		if rb.NsPerOp <= 0 {
			return fmt.Errorf("benchjson: -require-ratio benchmark %s has non-positive ns/op", b)
		}
		got := ra.NsPerOp / rb.NsPerOp
		floor := want * (1 - slack)
		if got < floor {
			return fmt.Errorf("benchjson: FAIL %s/%s = %.3f, below the required %.3g (%.3g after %.0f%% slack)",
				a, b, got, want, floor, slack*100)
		}
		fmt.Printf("benchjson: ok %s/%s = %.3f ≥ %.3g (floor %.3g after slack)\n", a, b, got, want, floor)
	}
	return nil
}

// marshalStable renders the map with sorted keys so emitted files diff
// cleanly between runs.
func marshalStable(results map[string]Result) ([]byte, error) {
	names := make([]string, 0, len(results))
	for n := range results {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteString("{\n")
	for i, n := range names {
		enc, err := json.Marshal(results[n])
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(&b, "  %q: %s", n, enc)
		if i < len(names)-1 {
			b.WriteByte(',')
		}
		b.WriteByte('\n')
	}
	b.WriteString("}")
	return []byte(b.String()), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
