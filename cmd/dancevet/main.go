// Command dancevet runs DANCE's project-specific static-analysis suite —
// the invariants PRs 1–4 paid for in debugging time, made mechanical. See
// DESIGN.md "Invariants & static analysis" for the analyzer ↔ historical
// bug mapping.
//
// Usage:
//
//	go run ./cmd/dancevet [-tags tags] [-tests=false] [-run names] [-json] [packages...]
//	go run ./cmd/dancevet -write-schema api/v1.schema.json [packages...]
//
// Exit status is 1 when any diagnostic survives suppression, 2 on usage or
// load errors. Suppress an intentional exception in source with
// `//dancevet:ignore <analyzer> <reason>`. -json emits one finding per line
// as {"file","line","col","analyzer","message","suppressible"} for CI
// tooling; -write-schema regenerates the wirecompat golden instead of
// analyzing.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/dance-db/dance/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonFinding is the -json wire form of one finding.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	// Suppressible is false for the "suppress" pseudo-analyzer: a malformed
	// directive cannot itself be suppressed away.
	Suppressible bool `json:"suppressible"`
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("dancevet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	tags := fs.String("tags", "", "comma-separated build tags forwarded to go list")
	tests := fs.Bool("tests", true, "also analyze test files (test-variant packages)")
	runOnly := fs.String("run", "", "comma-separated analyzer names to run (default all)")
	list := fs.Bool("list", false, "print the analyzer suite and exit")
	dir := fs.String("C", "", "directory to run in (module root)")
	jsonOut := fs.Bool("json", false, "emit findings as JSON lines instead of text")
	writeSchema := fs.String("write-schema", "", "write the wirecompat golden schema to this path and exit")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if *list {
		for _, a := range analysis.All() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	analyzers := analysis.All()
	if *runOnly != "" {
		analyzers = nil
		for _, name := range strings.Split(*runOnly, ",") {
			a := analysis.ByName(name)
			if a == nil {
				fmt.Fprintf(stderr, "dancevet: unknown analyzer %q\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}
	patterns := fs.Args()
	pkgs, err := analysis.Load(analysis.LoadConfig{Dir: *dir, Tags: *tags, Tests: *tests}, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "dancevet: %v\n", err)
		return 2
	}
	if *writeSchema != "" {
		schema := analysis.ExtractWireSchema(pkgs)
		data, err := json.MarshalIndent(schema, "", "  ")
		if err != nil {
			fmt.Fprintf(stderr, "dancevet: %v\n", err)
			return 2
		}
		if err := os.WriteFile(*writeSchema, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(stderr, "dancevet: %v\n", err)
			return 2
		}
		fmt.Fprintf(stderr, "dancevet: wrote %d wire types to %s\n", len(schema.Types), *writeSchema)
		return 0
	}
	findings, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "dancevet: %v\n", err)
		return 2
	}
	enc := json.NewEncoder(stdout)
	for _, f := range findings {
		if *jsonOut {
			if err := enc.Encode(jsonFinding{
				File:         f.Pos.Filename,
				Line:         f.Pos.Line,
				Col:          f.Pos.Column,
				Analyzer:     f.Analyzer,
				Message:      f.Message,
				Suppressible: f.Analyzer != "suppress",
			}); err != nil {
				fmt.Fprintf(stderr, "dancevet: %v\n", err)
				return 2
			}
			continue
		}
		fmt.Fprintln(stdout, f.String())
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "dancevet: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}
