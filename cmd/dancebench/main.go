// Command dancebench regenerates the tables and figures of the paper's
// evaluation (Sec 6) and the ablations documented in DESIGN.md.
//
// Usage:
//
//	dancebench -exp all                 # everything (slow)
//	dancebench -exp fig4 -scale 3       # one experiment at a larger scale
//	dancebench -list                    # show available experiments
//
// Output is aligned text, one block per paper artifact, suitable for
// side-by-side comparison with the paper (EXPERIMENTS.md records this).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"github.com/dance-db/dance/internal/cli"
	"github.com/dance-db/dance/internal/experiments"
)

var experimentNames = []string{
	"table5", "fdcount", "fig4", "fig5a", "fig5b", "fig5c",
	"fig6", "fig7", "fig8", "table6", "figx-tpch-budget-time",
	"ablation-steiner", "ablation-mcmc", "ablation-pricing", "ablation-eta",
	"recovery", "bakeoff",
}

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment id or 'all' (see -list)")
		scale    = flag.Int("scale", 2, "dataset scale factor")
		seed     = flag.Int64("seed", 42, "PRNG seed")
		rate     = flag.Float64("rate", 0.5, "offline correlated-sampling rate")
		iters    = flag.Int("iters", 80, "MCMC iterations ℓ")
		workers  = flag.Int("workers", 0, "concurrent MCMC chains per search (0 = one per CPU, 1 = serial)")
		seeds    = flag.Int("seeds", 0, "seeds per spec for the recovery/bakeoff sweeps (0 = experiment default)")
		policies = flag.String("policies", "", "comma-separated acquisition policies for the bakeoff sweep (empty = all registered)")
		jsonOut  = flag.String("json", "", "also write the bakeoff results as JSON to this file")
		list     = flag.Bool("list", false, "list experiments and exit")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the selected experiments to this file (go tool pprof)")
		memProf  = flag.String("memprofile", "", "write a heap profile taken after the selected experiments to this file")
	)
	flag.Parse()
	ctx, stop := cli.RootContext()
	defer stop()
	experiments.DefaultWorkers = *workers
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle allocations so the profile shows live heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
		}()
	}
	if *list {
		fmt.Println(strings.Join(experimentNames, "\n"))
		return
	}
	selected := map[string]bool{}
	if *exp == "all" {
		for _, n := range experimentNames {
			selected[n] = true
		}
	} else {
		for _, n := range strings.Split(*exp, ",") {
			selected[strings.TrimSpace(n)] = true
		}
	}

	start := time.Now()
	run := func(name string, f func() ([]experiments.Table, error)) {
		if !selected[name] {
			return
		}
		t0 := time.Now()
		tabs, err := f()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", name, err)
			os.Exit(1)
		}
		for _, tab := range tabs {
			fmt.Println(tab.Render())
		}
		fmt.Printf("(%s took %.1fs)\n\n", name, time.Since(t0).Seconds())
	}
	one := func(f func() (experiments.Table, error)) func() ([]experiments.Table, error) {
		return func() ([]experiments.Table, error) {
			t, err := f()
			return []experiments.Table{t}, err
		}
	}

	run("table5", one(func() (experiments.Table, error) {
		return experiments.Table5(ctx, experiments.Table5Options{Scale: *scale, Seed: *seed})
	}))
	run("fdcount", func() ([]experiments.Table, error) {
		h, err := experiments.FDCounts(ctx, "tpch", experiments.Table5Options{Scale: *scale, Seed: *seed})
		if err != nil {
			return nil, err
		}
		e, err := experiments.FDCounts(ctx, "tpce", experiments.Table5Options{Scale: *scale, Seed: *seed})
		if err != nil {
			return nil, err
		}
		return []experiments.Table{h, e}, nil
	})
	run("fig4", func() ([]experiments.Table, error) {
		return experiments.Fig4(ctx, experiments.Fig4Options{Scale: *scale, Seed: *seed, Rate: *rate, Iterations: *iters})
	})
	run("fig5a", func() ([]experiments.Table, error) {
		a, _, err := experiments.Fig5ab(ctx, experiments.Fig5Options{Scale: *scale, Seed: *seed, Rate: *rate, Iterations: *iters})
		return []experiments.Table{a}, err
	})
	run("fig5b", func() ([]experiments.Table, error) {
		_, b, err := experiments.Fig5ab(ctx, experiments.Fig5Options{Scale: *scale, Seed: *seed, Rate: *rate, Iterations: *iters})
		return []experiments.Table{b}, err
	})
	run("fig5c", one(func() (experiments.Table, error) {
		return experiments.Fig5c(ctx, experiments.Fig5Options{Scale: *scale, Seed: *seed, Rate: *rate, Iterations: *iters})
	}))
	run("fig6", func() ([]experiments.Table, error) {
		return experiments.Fig6(ctx, experiments.Fig6Options{Scale: *scale, Seed: *seed, Iterations: *iters})
	})
	run("fig7", func() ([]experiments.Table, error) {
		return experiments.Fig7(ctx, experiments.Fig7Options{Scale: *scale, Seed: *seed, Rate: *rate, Iterations: *iters})
	})
	run("fig8", func() ([]experiments.Table, error) {
		return experiments.Fig8(ctx, experiments.Fig8Options{Scale: *scale, Seed: *seed, Rate: *rate, Iterations: *iters})
	})
	run("table6", one(func() (experiments.Table, error) {
		return experiments.Table6(ctx, experiments.Table6Options{Scale: *scale, Seed: *seed, Rate: *rate, Iterations: *iters})
	}))
	run("figx-tpch-budget-time", one(func() (experiments.Table, error) {
		return experiments.FigTPCHBudgetTime(ctx, experiments.Fig5Options{Scale: *scale, Seed: *seed, Rate: *rate, Iterations: *iters})
	}))
	run("recovery", one(func() (experiments.Table, error) {
		_, tab, err := experiments.Recovery(ctx, experiments.RecoveryOptions{
			Seeds: *seeds, BaseSeed: *seed, Rate: *rate, Iterations: *iters, Workers: *workers,
		})
		return tab, err
	}))
	run("bakeoff", one(func() (experiments.Table, error) {
		var names []string
		if *policies != "" {
			for _, n := range strings.Split(*policies, ",") {
				names = append(names, strings.TrimSpace(n))
			}
		}
		results, tab, err := experiments.Bakeoff(ctx, experiments.BakeoffOptions{
			RecoveryOptions: experiments.RecoveryOptions{
				Seeds: *seeds, BaseSeed: *seed, Rate: *rate, Iterations: *iters, Workers: *workers,
			},
			Policies: names,
		})
		if err == nil && *jsonOut != "" {
			buf, merr := json.MarshalIndent(results, "", "  ")
			if merr == nil {
				merr = os.WriteFile(*jsonOut, append(buf, '\n'), 0o644)
			}
			if merr != nil {
				err = fmt.Errorf("writing %s: %w", *jsonOut, merr)
			}
		}
		return tab, err
	}))
	abl := experiments.AblationOptions{Scale: *scale, Seed: *seed, Rate: *rate, Iterations: *iters}
	run("ablation-steiner", one(func() (experiments.Table, error) { return experiments.AblationSteiner(ctx, abl) }))
	run("ablation-mcmc", one(func() (experiments.Table, error) { return experiments.AblationMCMC(ctx, abl) }))
	run("ablation-pricing", one(func() (experiments.Table, error) { return experiments.AblationPricing(ctx, abl) }))
	run("ablation-eta", one(func() (experiments.Table, error) { return experiments.AblationEta(ctx, abl) }))

	fmt.Printf("total: %.1fs\n", time.Since(start).Seconds())
}
