package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Smoke: a small run under light chaos completes, recovers everything the
// injector disturbed, coalesces duplicate requests, and writes a parseable
// JSON artifact.
func TestDanceloadSmoke(t *testing.T) {
	dir := t.TempDir()
	artifact := filepath.Join(dir, "report.json")
	var out bytes.Buffer
	err := run(context.Background(), []string{
		"-spec", "chain:1",
		"-seed", "1",
		"-shoppers", "4",
		"-requests", "12",
		"-variants", "2",
		"-iterations", "20",
		"-chaos", "light",
		"-json", artifact,
	}, &out)
	if err != nil {
		t.Fatalf("danceload: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "spend $") {
		t.Fatalf("missing spend line:\n%s", out.String())
	}

	data, err := os.ReadFile(artifact)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("artifact not JSON: %v\n%s", err, data)
	}
	if rep.Requests != 12 || rep.Failed != 0 {
		t.Fatalf("report = %+v, want 12 requests and zero hard failures", rep)
	}
	if rep.RecoveryRate < 0.9 {
		t.Fatalf("recovery rate %v < 0.9: %+v", rep.RecoveryRate, rep)
	}
	if rep.AcquireP50MS <= 0 || rep.AcquireP99MS < rep.AcquireP50MS {
		t.Fatalf("latency percentiles degenerate: %+v", rep)
	}
	if rep.SpendTotal <= 0 {
		t.Fatalf("no spend recorded: %+v", rep)
	}
	// Two variants across 12 requests: duplicates must exist; under load
	// they either coalesce or run separate (sequential) searches, but the
	// search count can never exceed the request count.
	if rep.Searches > int64(rep.Requests) {
		t.Fatalf("more searches than requests: %+v", rep)
	}
}

func TestDanceloadRejectsUnknownChaos(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-chaos", "apocalyptic"}, &out); err == nil {
		t.Fatal("unknown chaos level must error")
	}
}
