// Command danceload is a load and chaos harness for danced: it generates a
// synthetic marketplace (internal/workload), serves it over HTTP with
// seeded fault injection (internal/marketplace/chaos), runs a danced
// service on top, and hammers it with concurrent shoppers. It reports
// acquire/execute latency percentiles, dollar spend by kind, the
// coalescing hit rate, shed load, and the recovery rate — the fraction of
// disturbed calls (shed or transiently failed) that ultimately succeeded.
//
// Usage:
//
//	danceload -spec chain:2 -shoppers 8 -requests 40 -chaos light
//	danceload -spec star:3 -chaos heavy -json report.json
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"github.com/dance-db/dance/internal/cli"
	"github.com/dance-db/dance/internal/marketplace/chaos"
	"github.com/dance-db/dance/internal/workload"

	dance "github.com/dance-db/dance"
)

func main() {
	ctx, stop := cli.RootContext()
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// Report is the harness's machine-readable output (the -json artifact).
type Report struct {
	Spec     string `json:"spec"`
	Seed     int64  `json:"seed"`
	Chaos    string `json:"chaos"`
	Shoppers int    `json:"shoppers"`
	Requests int    `json:"requests"`

	AcquireP50MS float64 `json:"acquire_p50_ms"`
	AcquireP99MS float64 `json:"acquire_p99_ms"`
	ExecuteP50MS float64 `json:"execute_p50_ms"`
	ExecuteP99MS float64 `json:"execute_p99_ms"`

	Searches        int64   `json:"searches"`
	Coalesced       int64   `json:"coalesced"`
	Shed            int64   `json:"shed"`
	CoalesceHitRate float64 `json:"coalesce_hit_rate"`

	Disturbed    int     `json:"disturbed"`
	Recovered    int     `json:"recovered"`
	Failed       int     `json:"failed"`
	RecoveryRate float64 `json:"recovery_rate"`

	SpendTotal     float64 `json:"spend_total"`
	SpendSamples   float64 `json:"spend_samples"`
	SpendDeltas    float64 `json:"spend_deltas"`
	SpendPurchases float64 `json:"spend_purchases"`

	InjectedFaults map[string]int `json:"injected_faults,omitempty"`
}

// chaosProbs maps the -chaos level to injection weights. Heavy leans on the
// billing-dangerous faults (partial deliveries) to stress idempotency.
func chaosProbs(level string) (chaos.Probabilities, error) {
	switch level {
	case "off":
		return chaos.Probabilities{}, nil
	case "light":
		return chaos.Light(), nil
	case "heavy":
		return chaos.Probabilities{Err5xx: 0.15, Reset: 0.1, Partial: 0.15, Slow: 0.1}, nil
	default:
		return chaos.Probabilities{}, fmt.Errorf("danceload: unknown -chaos %q (want off, light or heavy)", level)
	}
}

// serveOn serves h on a loopback listener and returns its base URL and a
// shutdown func.
func serveOn(h http.Handler) (string, func(), error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: h, ReadHeaderTimeout: 10 * time.Second}
	go srv.Serve(ln)
	return "http://" + ln.Addr().String(), func() { srv.Close() }, nil
}

// metrics collects shopper-side observations.
type metrics struct {
	mu        sync.Mutex
	acquireMS []float64
	executeMS []float64
	disturbed int
	recovered int
	failed    int
}

func (m *metrics) observe(kind string, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ms := float64(d) / float64(time.Millisecond)
	if kind == "acquire" {
		m.acquireMS = append(m.acquireMS, ms)
	} else {
		m.executeMS = append(m.executeMS, ms)
	}
}

// percentile returns the p-th percentile (0 < p ≤ 1) of xs, 0 when empty.
func percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	i := int(p*float64(len(s))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(s) {
		i = len(s) - 1
	}
	return s[i]
}

// acquireWithRecovery runs one acquire, retrying shed (429) and transient
// failures with the server's backoff hint. It reports whether the call was
// disturbed and whether it ultimately succeeded.
func acquireWithRecovery(ctx context.Context, client *dance.AcquireClient, req dance.AcquireRequest) (plan *dance.PlanInfo, disturbed bool, err error) {
	const maxTries = 8
	for try := 0; try < maxTries; try++ {
		plan, err = client.Acquire(ctx, req)
		if err == nil {
			return plan, disturbed, nil
		}
		if errors.Is(err, dance.ErrInfeasible) || ctx.Err() != nil {
			return nil, disturbed, err
		}
		disturbed = true
		backoff := 25 * time.Millisecond
		if hint, ok := dance.RetryAfter(err); ok && hint > 0 && hint < time.Second {
			backoff = hint
		}
		select {
		case <-ctx.Done():
			return nil, disturbed, ctx.Err()
		case <-time.After(backoff):
		}
	}
	return nil, disturbed, err
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("danceload", flag.ContinueOnError)
	var (
		specStr    = fs.String("spec", "chain:2", "workload spec (see internal/workload)")
		seed       = fs.Int64("seed", 1, "workload, sampling, chaos and shopper seed")
		shoppers   = fs.Int("shoppers", 8, "concurrent shopper goroutines")
		requests   = fs.Int("requests", 40, "total acquire calls across all shoppers")
		variants   = fs.Int("variants", 4, "distinct request variants (fewer variants → more coalescing)")
		iterations = fs.Int("iterations", 30, "MCMC iterations per acquire")
		rate       = fs.Float64("rate", 0.5, "offline sampling rate")
		chaosLevel = fs.String("chaos", "light", "fault injection level: off, light or heavy")
		inflight   = fs.Int("max-inflight", 0, "danced search slots (0 = twice GOMAXPROCS)")
		execEvery  = fs.Int("execute-every", 5, "execute every n-th successful acquisition's plan (0 = never)")
		jsonPath   = fs.String("json", "", "write the report as JSON to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	spec, err := workload.ParseSpec(*specStr)
	if err != nil {
		return err
	}
	probs, err := chaosProbs(*chaosLevel)
	if err != nil {
		return err
	}
	w, err := workload.Generate(spec, *seed)
	if err != nil {
		return err
	}

	// Marketplace behind chaos; the shopper owns the base listing.
	injector := chaos.NewInjector(chaos.Config{Seed: uint64(*seed), Probs: probs, SlowFor: 20 * time.Millisecond})
	market := w.MarketplaceWithoutBase()
	marketURL, stopMarket, err := serveOn(chaos.Middleware(dance.Handler(market), injector))
	if err != nil {
		return err
	}
	defer stopMarket()

	mw := dance.New(dance.NewMarketClient(marketURL), dance.Config{
		SampleRate: *rate,
		SampleSeed: uint64(*seed),
	})
	mw.AddSource(w.Base(), w.FDs[w.Base().Name])
	svc, err := dance.NewService(mw, dance.ServiceOptions{
		MaxInFlightSearches: *inflight,
		RetryAfter:          50 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	defer svc.Close()
	dancedURL, stopDanced, err := serveOn(svc.Handler())
	if err != nil {
		return err
	}
	defer stopDanced()

	var m metrics
	var wg sync.WaitGroup
	perShopper := (*requests + *shoppers - 1) / *shoppers
	nv := *variants
	if nv < 1 {
		nv = 1
	}
	fmt.Fprintf(out, "danceload: %s seed=%d chaos=%s — %d shoppers × %d requests, %d variants\n",
		spec, *seed, *chaosLevel, *shoppers, perShopper, nv)

	issued := 0
	for s := 0; s < *shoppers && issued < *requests; s++ {
		n := perShopper
		if issued+n > *requests {
			n = *requests - issued
		}
		issued += n
		wg.Add(1)
		go func(shopper, n int) {
			defer wg.Done()
			client := dance.NewAcquireClient(dancedURL)
			for i := 0; i < n; i++ {
				req := dance.AcquireRequest{
					SourceAttrs: []string{w.Truth.X},
					TargetAttrs: []string{w.Truth.Y},
					Budget:      1e9,
					Iterations:  *iterations,
					Seed:        *seed + int64((shopper*n+i)%nv),
				}
				start := time.Now()
				plan, disturbed, err := acquireWithRecovery(ctx, client, req)
				m.mu.Lock()
				if disturbed {
					m.disturbed++
					if err == nil {
						m.recovered++
					}
				}
				if err != nil {
					m.failed++
				}
				m.mu.Unlock()
				if err != nil {
					continue
				}
				m.observe("acquire", time.Since(start))
				if *execEvery > 0 && i%*execEvery == 0 {
					start = time.Now()
					if _, err := client.Execute(ctx, plan.ID); err == nil {
						m.observe("execute", time.Since(start))
					} else if ctx.Err() == nil {
						m.mu.Lock()
						m.failed++
						m.mu.Unlock()
					}
				}
			}
		}(s, n)
	}
	wg.Wait()
	if ctx.Err() != nil {
		return ctx.Err()
	}

	ledger, err := dance.NewAcquireClient(dancedURL).Ledger(ctx)
	if err != nil {
		return err
	}
	st := svc.Stats()

	rep := Report{
		Spec:         spec.String(),
		Seed:         *seed,
		Chaos:        *chaosLevel,
		Shoppers:     *shoppers,
		Requests:     issued,
		AcquireP50MS: percentile(m.acquireMS, 0.50),
		AcquireP99MS: percentile(m.acquireMS, 0.99),
		ExecuteP50MS: percentile(m.executeMS, 0.50),
		ExecuteP99MS: percentile(m.executeMS, 0.99),
		Searches:     st.Searches,
		Coalesced:    st.Coalesced,
		Shed:         st.Shed,
		Disturbed:    m.disturbed,
		Recovered:    m.recovered,
		Failed:       m.failed,
		RecoveryRate: 1,
		SpendTotal:   ledger.Total,
	}
	if joined := st.Searches + st.Coalesced; joined > 0 {
		rep.CoalesceHitRate = float64(st.Coalesced) / float64(joined)
	}
	if m.disturbed > 0 {
		rep.RecoveryRate = float64(m.recovered) / float64(m.disturbed)
	}
	for _, e := range ledger.Entries {
		switch e.Kind {
		case "sample":
			rep.SpendSamples += e.Amount
		case "sample_delta":
			rep.SpendDeltas += e.Amount
		case "purchase":
			rep.SpendPurchases += e.Amount
		}
	}
	if *chaosLevel != "off" {
		rep.InjectedFaults = injector.Counts()
	}

	fmt.Fprintf(out, "acquire  p50 %.1fms  p99 %.1fms   execute  p50 %.1fms  p99 %.1fms\n",
		rep.AcquireP50MS, rep.AcquireP99MS, rep.ExecuteP50MS, rep.ExecuteP99MS)
	fmt.Fprintf(out, "searches %d  coalesced %d (hit rate %.0f%%)  shed %d\n",
		rep.Searches, rep.Coalesced, 100*rep.CoalesceHitRate, rep.Shed)
	fmt.Fprintf(out, "disturbed %d  recovered %d (recovery %.0f%%)  failed %d\n",
		rep.Disturbed, rep.Recovered, 100*rep.RecoveryRate, rep.Failed)
	fmt.Fprintf(out, "spend $%.2f  (samples %.2f, deltas %.2f, purchases %.2f)\n",
		rep.SpendTotal, rep.SpendSamples, rep.SpendDeltas, rep.SpendPurchases)
	if rep.InjectedFaults != nil {
		fmt.Fprintf(out, "injected: %v\n", rep.InjectedFaults)
	}

	if *jsonPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "report written to %s\n", *jsonPath)
	}
	return nil
}
