package main

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"github.com/dance-db/dance/internal/marketplace"
	"github.com/dance-db/dance/internal/relation"
	"github.com/dance-db/dance/internal/workload"
)

func TestLoadDirRoundTrip(t *testing.T) {
	dir := t.TempDir()

	tab := relation.NewTable("alpha", relation.NewSchema(
		relation.Cat("k", relation.KindInt),
		relation.Cat("v", relation.KindString),
	))
	tab.AppendValues(relation.IntValue(1), relation.StringValue("x"))
	tab.AppendValues(relation.IntValue(2), relation.StringValue("y"))
	f, err := os.Create(filepath.Join(dir, "alpha.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.WriteCSV(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := os.WriteFile(filepath.Join(dir, "demo.fds"), []byte("alpha: k -> v\n\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	m := marketplace.NewInMemory(nil)
	if err := loadDir(m, dir); err != nil {
		t.Fatal(err)
	}
	cat, err := m.Catalog(context.Background())
	if err != nil || len(cat) != 1 || cat[0].Name != "alpha" || cat[0].Rows != 2 {
		t.Fatalf("catalog = %+v, %v", cat, err)
	}
	fds, err := m.DatasetFDs(context.Background(), "alpha")
	if err != nil || len(fds) != 1 || fds[0].RHS != "v" {
		t.Fatalf("fds = %v, %v", fds, err)
	}
}

func TestLoadDirMalformedFDs(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "bad.fds"), []byte("no colon here\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := loadDir(marketplace.NewInMemory(nil), dir); err == nil {
		t.Fatal("malformed FD file should error")
	}
}

func TestLoadDirMissing(t *testing.T) {
	if err := loadDir(marketplace.NewInMemory(nil), "/nonexistent-dir-xyz"); err == nil {
		t.Fatal("missing directory should error")
	}
}

// A served workload directory must quote prices under the price family the
// generator recorded, or the ground truth written next to the CSVs (plan
// cost, budget-pinned recovery) would be unreachable on the wire.
func TestPriceModelForWorkloadDir(t *testing.T) {
	spec, err := workload.ParseSpec("chain:2,price=flat")
	if err != nil {
		t.Fatal(err)
	}
	w, err := workload.Generate(spec, 3)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := w.WriteDir(dir); err != nil {
		t.Fatal(err)
	}

	m := marketplace.NewInMemory(priceModelFor(dir))
	if err := loadDir(m, dir); err != nil {
		t.Fatal(err)
	}
	q := w.Truth.Queries[0]
	got, err := m.QuoteProjection(context.Background(), q.Instance, q.Attrs)
	if err != nil {
		t.Fatal(err)
	}
	want, err := w.PricingModel().PriceProjection(w.Base(), q.Attrs)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("served quote %v != recorded model price %v (flat family not honored)", got, want)
	}
	if priceModelFor("") != nil || priceModelFor(t.TempDir()) != nil {
		t.Fatal("non-workload directories must keep the default model")
	}
}
