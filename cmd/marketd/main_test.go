package main

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"github.com/dance-db/dance/internal/marketplace"
	"github.com/dance-db/dance/internal/relation"
)

func TestLoadDirRoundTrip(t *testing.T) {
	dir := t.TempDir()

	tab := relation.NewTable("alpha", relation.NewSchema(
		relation.Cat("k", relation.KindInt),
		relation.Cat("v", relation.KindString),
	))
	tab.AppendValues(relation.IntValue(1), relation.StringValue("x"))
	tab.AppendValues(relation.IntValue(2), relation.StringValue("y"))
	f, err := os.Create(filepath.Join(dir, "alpha.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.WriteCSV(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := os.WriteFile(filepath.Join(dir, "demo.fds"), []byte("alpha: k -> v\n\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	m := marketplace.NewInMemory(nil)
	if err := loadDir(m, dir); err != nil {
		t.Fatal(err)
	}
	cat, err := m.Catalog(context.Background())
	if err != nil || len(cat) != 1 || cat[0].Name != "alpha" || cat[0].Rows != 2 {
		t.Fatalf("catalog = %+v, %v", cat, err)
	}
	fds, err := m.DatasetFDs(context.Background(), "alpha")
	if err != nil || len(fds) != 1 || fds[0].RHS != "v" {
		t.Fatalf("fds = %v, %v", fds, err)
	}
}

func TestLoadDirMalformedFDs(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "bad.fds"), []byte("no colon here\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := loadDir(marketplace.NewInMemory(nil), dir); err == nil {
		t.Fatal("malformed FD file should error")
	}
}

func TestLoadDirMissing(t *testing.T) {
	if err := loadDir(marketplace.NewInMemory(nil), "/nonexistent-dir-xyz"); err == nil {
		t.Fatal("missing directory should error")
	}
}
