// Command marketd serves an online data marketplace over JSON/HTTP,
// populated either with a generated benchmark dataset or with CSV files
// produced by datagen.
//
// Usage:
//
//	marketd -addr :8080 -dataset tpch -scale 10
//	marketd -addr :8080 -dir ./data/tpch
//
// Endpoints: GET /catalog, GET /fds?name=…, POST /quote, POST /sample,
// POST /query (see internal/marketplace).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"github.com/dance-db/dance/internal/cli"
	"github.com/dance-db/dance/internal/fd"
	"github.com/dance-db/dance/internal/marketplace"
	"github.com/dance-db/dance/internal/pricing"
	"github.com/dance-db/dance/internal/relation"
	"github.com/dance-db/dance/internal/tpce"
	"github.com/dance-db/dance/internal/tpch"
	"github.com/dance-db/dance/internal/workload"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		dataset = flag.String("dataset", "tpch", "tpch or tpce (ignored with -dir)")
		scale   = flag.Int("scale", 5, "scale factor")
		seed    = flag.Int64("seed", 42, "PRNG seed")
		dir     = flag.String("dir", "", "load CSV tables from this directory instead of generating")
	)
	flag.Parse()

	market := marketplace.NewInMemory(priceModelFor(*dir))
	switch {
	case *dir != "":
		if err := loadDir(market, *dir); err != nil {
			log.Fatal(err)
		}
	case *dataset == "tpch":
		d := tpch.Generate(tpch.Config{Scale: *scale, Seed: *seed, DirtyFraction: 0.3})
		for _, t := range d.Tables {
			market.Register(t, d.FDs[t.Name])
		}
	case *dataset == "tpce":
		d := tpce.Generate(tpce.Config{Scale: *scale, Seed: *seed, DirtyFraction: 0.2})
		for _, t := range d.Tables {
			market.Register(t, d.FDs[t.Name])
		}
	default:
		log.Fatalf("unknown dataset %q", *dataset)
	}

	ctx, stop := cli.RootContext()
	defer stop()
	infos, err := market.Catalog(ctx)
	if err != nil {
		log.Fatal(err)
	}
	for _, info := range infos {
		fmt.Printf("listing %s: %d rows, %d attrs\n", info.Name, info.Rows, len(info.Attrs))
	}
	fmt.Printf("marketplace listening on %s\n", *addr)
	if err := serve(ctx, *addr, marketplace.Handler(market)); err != nil {
		log.Fatal(err)
	}
}

// serve runs an http.Server with sane timeouts (a bare ListenAndServe
// leaks slow-loris connections) and drains in-flight purchases when ctx is
// cancelled (SIGINT/SIGTERM) before exiting.
func serve(ctx context.Context, addr string, h http.Handler) error {
	srv := &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		WriteTimeout:      5 * time.Minute, // full-table projections can be large
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Println("shutting down: draining in-flight requests")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// priceModelFor picks the pricing model for a served directory. A workload
// directory written by `datagen -workload` records the spec's price family
// in workload.json; honoring it keeps the marketplace's quotes consistent
// with the ground-truth plan cost recorded next to the data (a tiered or
// flat workload served under the default entropy model would make the
// recorded optimum unreachable). Everything else — generated datasets and
// plain CSV directories — uses the default entropy model (nil).
func priceModelFor(dir string) pricing.Model {
	if dir == "" {
		return nil
	}
	spec, _, _, err := workload.ReadTruth(filepath.Join(dir, "workload.json"))
	if err != nil {
		return nil // not a workload directory
	}
	fmt.Printf("pricing listings with the recorded %q model\n", spec.PriceFamily)
	return workload.PriceModel(spec.PriceFamily)
}

// loadDir registers every .csv in dir; an optional *.fds file declares FDs
// as "table: A,B -> C" lines.
func loadDir(m *marketplace.InMemory, dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	fds := map[string][]fd.FD{}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".fds") {
			data, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				return err
			}
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if line == "" {
					continue
				}
				parts := strings.SplitN(line, ":", 2)
				if len(parts) != 2 {
					return fmt.Errorf("malformed FD line %q", line)
				}
				f, err := fd.Parse(parts[1])
				if err != nil {
					return err
				}
				name := strings.TrimSpace(parts[0])
				fds[name] = append(fds[name], f)
			}
		}
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".csv") {
			continue
		}
		name := strings.TrimSuffix(e.Name(), ".csv")
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			return err
		}
		t, err := relation.ReadCSV(name, f)
		f.Close()
		if err != nil {
			return fmt.Errorf("loading %s: %w", e.Name(), err)
		}
		m.Register(t, fds[name])
	}
	return nil
}
