package main

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

var bg = context.Background()

func TestRunFlagErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run(bg, []string{"-local", "tpch"}, &out); err == nil || !strings.Contains(err.Error(), "-target") {
		t.Fatalf("missing -target must error, got %v", err)
	}
	if err := run(bg, []string{"-target", "y"}, &out); err == nil || !strings.Contains(err.Error(), "provide -market") {
		t.Fatalf("no marketplace selection must error, got %v", err)
	}
	if err := run(bg, []string{"-target", "y", "-local", "nosuch"}, &out); err == nil {
		t.Fatal("unknown -local dataset must error")
	}
	if err := run(bg, []string{"-target", "x,y", "-workload", "ring:2"}, &out); err == nil {
		t.Fatal("malformed -workload spec must error")
	}
	if err := run(bg, []string{"-nosuchflag"}, &out); err == nil {
		t.Fatal("unknown flag must error")
	}
}

// TestRunWorkloadBuy drives the full main path: plan, report, buy, realized
// metrics — against a generated workload marketplace whose planted
// correlation the output must echo.
func TestRunWorkloadBuy(t *testing.T) {
	var out bytes.Buffer
	err := run(bg, []string{
		"-workload", "chain:2", "-seed", "4", "-target", "x,y",
		"-rate", "0.6", "-iters", "50", "-buy",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"planted ρ=", "recommended purchase:", "SELECT", "estimates:", "bought", "realized:",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunWorkloadTopK(t *testing.T) {
	var out bytes.Buffer
	err := run(bg, []string{
		"-workload", "star:2", "-seed", "6", "-target", "x,y",
		"-rate", "0.6", "-iters", "40", "-topk", "2",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "option 1") {
		t.Errorf("top-k output missing options:\n%s", out.String())
	}
}

func TestRunInfeasibleRequestFails(t *testing.T) {
	var out bytes.Buffer
	err := run(bg, []string{
		"-workload", "chain:2", "-target", "x,no_such_attr", "-rate", "0.5", "-iters", "10",
	}, &out)
	if err == nil || !strings.Contains(err.Error(), "acquisition failed") {
		t.Fatalf("unknown attribute must fail the acquisition, got %v", err)
	}
}
