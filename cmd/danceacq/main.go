// Command danceacq runs a data acquisition against a marketplace — remote
// (marketd) or locally generated — and prints the recommended purchase plan.
// With -buy it executes the plan and reports realized metrics.
//
// Usage:
//
//	danceacq -market http://localhost:8080 \
//	         -source totalprice -target rname -budget 120 -buy
//	danceacq -local tpch -source totalprice -target nname
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"github.com/dance-db/dance/internal/core"
	"github.com/dance-db/dance/internal/marketplace"
	"github.com/dance-db/dance/internal/search"
	"github.com/dance-db/dance/internal/tpce"
	"github.com/dance-db/dance/internal/tpch"
)

func main() {
	var (
		marketURL = flag.String("market", "", "remote marketplace base URL (e.g. http://localhost:8080)")
		local     = flag.String("local", "", "serve a local generated marketplace instead: tpch or tpce")
		scale     = flag.Int("scale", 5, "scale for -local")
		seed      = flag.Int64("seed", 42, "PRNG seed")
		source    = flag.String("source", "", "comma-separated source attributes AS")
		target    = flag.String("target", "", "comma-separated target attributes AT (required)")
		budget    = flag.Float64("budget", 0, "purchase budget B (0 = unbounded)")
		alpha     = flag.Float64("alpha", 0, "join informativeness cap α (0 = unbounded)")
		beta      = flag.Float64("beta", 0, "quality floor β")
		rate      = flag.Float64("rate", 0.3, "offline sampling rate")
		iters     = flag.Int("iters", 100, "MCMC iterations ℓ")
		buy       = flag.Bool("buy", false, "execute the plan (spend the budget)")
		topk      = flag.Int("topk", 0, "recommend the k best-scored options instead of one plan")
		workers   = flag.Int("workers", 0, "concurrent sample fetches and MCMC chains (0 = one per CPU, 1 = serial)")
		timeout   = flag.Duration("timeout", 0, "overall deadline for the acquisition (e.g. 90s; 0 = none)")
	)
	flag.Parse()
	if *target == "" {
		log.Fatal("-target is required")
	}

	var market marketplace.Market
	switch {
	case *marketURL != "":
		market = marketplace.NewClient(*marketURL)
	case *local == "tpch":
		m := marketplace.NewInMemory(nil)
		d := tpch.Generate(tpch.Config{Scale: *scale, Seed: *seed, DirtyFraction: 0.3})
		for _, t := range d.Tables {
			m.Register(t, d.FDs[t.Name])
		}
		market = m
	case *local == "tpce":
		m := marketplace.NewInMemory(nil)
		d := tpce.Generate(tpce.Config{Scale: *scale, Seed: *seed, DirtyFraction: 0.2})
		for _, t := range d.Tables {
			m.Register(t, d.FDs[t.Name])
		}
		market = m
	default:
		log.Fatal("provide -market URL or -local tpch|tpce")
	}

	// Ctrl-C cancels the acquisition mid-search; -timeout adds a deadline.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	mw := core.New(market, core.Config{SampleRate: *rate, SampleSeed: uint64(*seed), DiscoverFDs: true, Workers: *workers})
	req := search.Request{
		SourceAttrs: splitList(*source),
		TargetAttrs: splitList(*target),
		Budget:      *budget,
		Alpha:       *alpha,
		Beta:        *beta,
		Iterations:  *iters,
		Seed:        *seed,
		Workers:     *workers,
	}
	if *topk > 0 {
		options, err := mw.AcquireTopK(ctx, req, *topk, search.DefaultScoreWeights())
		if err != nil {
			log.Fatalf("acquisition failed: %v", err)
		}
		for i, o := range options {
			fmt.Printf("option %d (score %.4f): correlation=%.4f quality=%.4f price=%.2f\n",
				i+1, o.Score, o.Plan.Est.Correlation, o.Plan.Est.Quality, o.Plan.Est.Price)
			for _, q := range o.Plan.Queries {
				fmt.Printf("    %s\n", q)
			}
		}
		return
	}

	plan, err := mw.Acquire(ctx, req)
	if err != nil {
		log.Fatalf("acquisition failed: %v", err)
	}
	fmt.Printf("sample cost so far: %.2f (rate %.2f)\n\n", mw.SampleCost(), mw.SampleRate())
	fmt.Println("recommended purchase:")
	for _, q := range plan.Queries {
		fmt.Printf("  %s\n", q)
	}
	fmt.Printf("\nestimates: correlation=%.4f quality=%.4f join-informativeness=%.4f price=%.2f\n",
		plan.Est.Correlation, plan.Est.Quality, plan.Est.Weight, plan.Est.Price)

	if !*buy {
		fmt.Println("\n(re-run with -buy to execute)")
		return
	}
	purchase, err := mw.Execute(ctx, plan)
	if err != nil {
		log.Fatalf("purchase failed: %v", err)
	}
	fmt.Printf("\nbought %d projections for %.2f; join has %d rows\n",
		len(purchase.Tables), purchase.TotalPrice, purchase.Joined.NumRows())
	fmt.Printf("realized: correlation=%.4f quality=%.4f\n",
		purchase.Realized.Correlation, purchase.Realized.Quality)
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
