// Command danceacq runs a data acquisition against a marketplace — remote
// (marketd), locally generated (tpch/tpce), or a synthetic workload with a
// planted correlation — and prints the recommended purchase plan. With -buy
// it executes the plan and reports realized metrics.
//
// Usage:
//
//	danceacq -market http://localhost:8080 \
//	         -source totalprice -target rname -budget 120 -buy
//	danceacq -local tpch -source totalprice -target nname
//	danceacq -workload chain:3 -target x,y -buy
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"github.com/dance-db/dance/internal/cli"

	"github.com/dance-db/dance/internal/core"
	"github.com/dance-db/dance/internal/marketplace"
	"github.com/dance-db/dance/internal/search"
	"github.com/dance-db/dance/internal/tpce"
	"github.com/dance-db/dance/internal/tpch"
	"github.com/dance-db/dance/internal/workload"
)

// errFlagParse marks a flag-parse failure the FlagSet has already reported
// on stderr, so main must not print it a second time.
var errFlagParse = errors.New("flag parse error")

func main() {
	// Ctrl-C cancels the acquisition mid-search.
	ctx, stop := cli.RootContext()
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		if !errors.Is(err, errFlagParse) {
			fmt.Fprintln(os.Stderr, err)
		}
		os.Exit(1)
	}
}

// run is the testable body of the command.
func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("danceacq", flag.ContinueOnError)
	var (
		marketURL = fs.String("market", "", "remote marketplace base URL (e.g. http://localhost:8080)")
		local     = fs.String("local", "", "serve a local generated marketplace instead: tpch or tpce")
		wl        = fs.String("workload", "", "serve a local synthetic-workload marketplace (spec, e.g. chain:3)")
		scale     = fs.Int("scale", 5, "scale for -local")
		seed      = fs.Int64("seed", 42, "PRNG seed")
		source    = fs.String("source", "", "comma-separated source attributes AS")
		target    = fs.String("target", "", "comma-separated target attributes AT (required)")
		budget    = fs.Float64("budget", 0, "purchase budget B (0 = unbounded)")
		alpha     = fs.Float64("alpha", 0, "join informativeness cap α (0 = unbounded)")
		beta      = fs.Float64("beta", 0, "quality floor β")
		rate      = fs.Float64("rate", 0.3, "offline sampling rate")
		iters     = fs.Int("iters", 100, "MCMC iterations ℓ")
		buy       = fs.Bool("buy", false, "execute the plan (spend the budget)")
		topk      = fs.Int("topk", 0, "recommend the k best-scored options instead of one plan")
		workers   = fs.Int("workers", 0, "concurrent sample fetches and MCMC chains (0 = one per CPU, 1 = serial)")
		timeout   = fs.Duration("timeout", 0, "overall deadline for the acquisition (e.g. 90s; 0 = none)")
		policyFl  = fs.String("policy", "", "acquisition policy (empty = dance; see core.Policies: "+strings.Join(core.Policies(), ", ")+")")
		params    = fs.String("policy-params", "", "comma-separated policy tunables, e.g. pilot_rate=0.1,rounds=3")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -h prints usage and exits cleanly
		}
		return errFlagParse
	}
	if *target == "" {
		return fmt.Errorf("-target is required")
	}

	var market marketplace.Market
	switch {
	case *marketURL != "":
		market = marketplace.NewClient(*marketURL)
	case *wl != "":
		spec, err := workload.ParseSpec(*wl)
		if err != nil {
			return err
		}
		w, err := workload.Generate(spec, *seed)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "workload %s: planted ρ=%.4f, cheapest correct plan %.2f\n\n",
			spec.String(), w.Truth.Rho, w.Truth.PlanCost)
		market = w.Marketplace()
	case *local == "tpch":
		m := marketplace.NewInMemory(nil)
		d := tpch.Generate(tpch.Config{Scale: *scale, Seed: *seed, DirtyFraction: 0.3})
		for _, t := range d.Tables {
			m.Register(t, d.FDs[t.Name])
		}
		market = m
	case *local == "tpce":
		m := marketplace.NewInMemory(nil)
		d := tpce.Generate(tpce.Config{Scale: *scale, Seed: *seed, DirtyFraction: 0.2})
		for _, t := range d.Tables {
			m.Register(t, d.FDs[t.Name])
		}
		market = m
	default:
		return fmt.Errorf("provide -market URL, -local tpch|tpce, or -workload spec")
	}

	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	policyParams, err := parseParams(*params)
	if err != nil {
		return err
	}
	mw := core.New(market, core.Config{SampleRate: *rate, SampleSeed: uint64(*seed), DiscoverFDs: true, Workers: *workers})
	req := search.Request{
		SourceAttrs:  splitList(*source),
		TargetAttrs:  splitList(*target),
		Budget:       *budget,
		Alpha:        *alpha,
		Beta:         *beta,
		Iterations:   *iters,
		Seed:         *seed,
		Workers:      *workers,
		Policy:       *policyFl,
		PolicyParams: policyParams,
	}
	if *topk > 0 {
		options, err := mw.AcquireTopK(ctx, req, *topk, search.DefaultScoreWeights())
		if err != nil {
			return fmt.Errorf("acquisition failed: %w", err)
		}
		for i, o := range options {
			fmt.Fprintf(stdout, "option %d (score %.4f): correlation=%.4f quality=%.4f price=%.2f\n",
				i+1, o.Score, o.Plan.Est.Correlation, o.Plan.Est.Quality, o.Plan.Est.Price)
			for _, q := range o.Plan.Queries {
				fmt.Fprintf(stdout, "    %s\n", q)
			}
		}
		return nil
	}

	plan, err := mw.Acquire(ctx, req)
	if err != nil {
		return fmt.Errorf("acquisition failed: %w", err)
	}
	fmt.Fprintf(stdout, "sample cost so far: %.2f (rate %.2f)\n\n", mw.SampleCost(), mw.SampleRate())
	fmt.Fprintln(stdout, "recommended purchase:")
	for _, q := range plan.Queries {
		fmt.Fprintf(stdout, "  %s\n", q)
	}
	fmt.Fprintf(stdout, "\nestimates: correlation=%.4f quality=%.4f join-informativeness=%.4f price=%.2f\n",
		plan.Est.Correlation, plan.Est.Quality, plan.Est.Weight, plan.Est.Price)

	if !*buy {
		fmt.Fprintln(stdout, "\n(re-run with -buy to execute)")
		return nil
	}
	purchase, err := mw.Execute(ctx, plan)
	if err != nil {
		return fmt.Errorf("purchase failed: %w", err)
	}
	fmt.Fprintf(stdout, "\nbought %d projections for %.2f; join has %d rows\n",
		len(purchase.Tables), purchase.TotalPrice, purchase.Joined.NumRows())
	fmt.Fprintf(stdout, "realized: correlation=%.4f quality=%.4f\n",
		purchase.Realized.Correlation, purchase.Realized.Quality)
	return nil
}

// parseParams parses "k=v,k=v" policy tunables.
func parseParams(s string) (map[string]float64, error) {
	if s == "" {
		return nil, nil
	}
	out := map[string]float64{}
	for _, kv := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return nil, fmt.Errorf("-policy-params: %q is not key=value", kv)
		}
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return nil, fmt.Errorf("-policy-params %s: %w", k, err)
		}
		out[k] = f
	}
	return out, nil
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
