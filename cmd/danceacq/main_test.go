package main

import "testing"

func TestSplitList(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"", nil},
		{"a", []string{"a"}},
		{"a,b", []string{"a", "b"}},
		{" a , b ,", []string{"a", "b"}},
		{",,", nil},
	}
	for _, c := range cases {
		got := splitList(c.in)
		if len(got) != len(c.want) {
			t.Fatalf("splitList(%q) = %v, want %v", c.in, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("splitList(%q) = %v, want %v", c.in, got, c.want)
			}
		}
	}
}
