package main

import (
	"context"
	"io"
	"net"
	"net/http"
	"sync"
	"testing"
	"time"
)

// TestServeDrainsInFlightRequests pins the shutdown contract: cancelling
// the root context stops accepting, lets the in-flight request finish and
// receive its full response, and only then runs the onDrained hook (where
// danced flushes the persist journal).
func TestServeDrainsInFlightRequests(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var mu sync.Mutex
	var order []string
	mark := func(s string) {
		mu.Lock()
		order = append(order, s)
		mu.Unlock()
	}
	started := make(chan struct{})
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mark("request-start")
		close(started)
		time.Sleep(200 * time.Millisecond) // still running when shutdown begins
		mark("request-end")
		w.Write([]byte("done"))
	})

	serveErr := make(chan error, 1)
	go func() {
		serveErr <- serve(ctx, ln, h, func() error { mark("drained"); return nil })
	}()

	respErr := make(chan error, 1)
	go func() {
		resp, err := http.Get("http://" + ln.Addr().String() + "/")
		if err != nil {
			respErr <- err
			return
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err == nil && string(body) != "done" {
			t.Errorf("body = %q, want full response through shutdown", body)
		}
		respErr <- err
	}()

	<-started
	cancel() // the SIGTERM path

	if err := <-serveErr; err != nil {
		t.Fatalf("serve: %v", err)
	}
	if err := <-respErr; err != nil {
		t.Fatalf("in-flight request dropped during drain: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	want := []string{"request-start", "request-end", "drained"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v (journal must flush only after the drain)", order, want)
		}
	}
}
