// Command danced serves DANCE acquisitions to remote shoppers over the
// versioned JSON/HTTP v1 API: the middleware runs server-side against a
// marketplace (remote marketd or locally generated) and shoppers POST
// acquisition requests, execute stored plans by ID, and read the charge
// ledger.
//
// Usage:
//
//	danced -addr :9090 -market http://localhost:8080
//	danced -addr :9090 -local tpch -scale 5
//
// Endpoints:
//
//	POST /v1/acquire   POST /v1/topk   POST /v1/execute
//	GET  /v1/plans/{id}   GET /v1/ledger
//
// Request deadlines: the client's HTTP context cancels server-side work,
// and a timeout_ms request field adds a server-enforced deadline.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"github.com/dance-db/dance/internal/cli"

	dance "github.com/dance-db/dance"
)

func main() {
	var (
		addr        = flag.String("addr", ":9090", "listen address")
		marketURL   = flag.String("market", "", "remote marketplace base URL (e.g. http://localhost:8080)")
		local       = flag.String("local", "", "serve against a locally generated marketplace instead: tpch or tpce")
		scale       = flag.Int("scale", 5, "scale for -local")
		seed        = flag.Int64("seed", 42, "PRNG seed")
		rate        = flag.Float64("rate", 0.3, "offline sampling rate")
		workers     = flag.Int("workers", 0, "concurrent sample fetches and MCMC chains (0 = one per CPU)")
		offline     = flag.Bool("offline", true, "run the offline phase (sample purchases) at startup instead of lazily on the first request")
		discoverFDs = flag.Bool("discover-fds", true, "mine approximate FDs on samples for datasets that publish none (danceacq does the same; without it the quality floor β is vacuous on FD-less datasets)")
	)
	flag.Parse()

	var market dance.Market
	switch {
	case *marketURL != "":
		market = dance.NewMarketClient(*marketURL)
	case *local == "tpch":
		m := dance.NewMarketplace(nil)
		tables, fds := dance.GenerateTPCH(*scale, *seed, -1)
		for _, t := range tables {
			m.Register(t, fds[t.Name])
		}
		market = m
	case *local == "tpce":
		m := dance.NewMarketplace(nil)
		tables, fds := dance.GenerateTPCE(*scale, *seed, -1)
		for _, t := range tables {
			m.Register(t, fds[t.Name])
		}
		market = m
	default:
		log.Fatal("provide -market URL or -local tpch|tpce")
	}

	mw := dance.New(market, dance.Config{
		SampleRate:  *rate,
		SampleSeed:  uint64(*seed),
		Workers:     *workers,
		DiscoverFDs: *discoverFDs,
	})
	ctx, stop := cli.RootContext()
	defer stop()
	if *offline {
		fmt.Println("running offline phase (buying correlated samples)…")
		if err := mw.Offline(ctx); err != nil {
			log.Fatalf("offline phase: %v", err)
		}
		fmt.Printf("offline done: %d instances, sample cost %.2f\n",
			len(mw.Graph().Instances), mw.SampleCost())
	}

	fmt.Printf("danced listening on %s\n", *addr)
	if err := serve(ctx, *addr, dance.AcquireHandler(mw)); err != nil {
		log.Fatal(err)
	}
}

// serve runs an http.Server with sane timeouts and drains in-flight
// acquisitions on SIGINT/SIGTERM before exiting. Write timeouts are long:
// an acquisition legitimately searches for minutes; clients bound their
// own wait with deadlines.
func serve(ctx context.Context, addr string, h http.Handler) error {
	srv := &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		WriteTimeout:      15 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Println("shutting down: draining in-flight acquisitions")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
