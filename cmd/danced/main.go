// Command danced serves DANCE acquisitions to remote shoppers over the
// versioned JSON/HTTP v1 API: the middleware runs server-side against a
// marketplace (remote marketd or locally generated) and shoppers POST
// acquisition requests, execute stored plans by ID, and read the charge
// ledger.
//
// Usage:
//
//	danced -addr :9090 -market http://localhost:8080
//	danced -addr :9090 -local tpch -scale 5 -persist /var/lib/danced
//
// Endpoints:
//
//	POST /v1/acquire   POST /v1/topk   POST /v1/execute
//	GET  /v1/plans/{id}   GET /v1/ledger   GET /v1/stats
//
// Request deadlines: the client's HTTP context cancels server-side work,
// and a timeout_ms request field adds a server-enforced deadline.
//
// With -persist, plans, the charge ledger, and the offline sample state
// are journaled to the given directory; a restarted danced resumes from
// disk without re-buying samples and still resolves old plan IDs. Identical
// concurrent acquisitions coalesce onto one search, and -max-inflight
// bounds concurrently executing searches (excess load is shed with 429 +
// Retry-After).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on DefaultServeMux for -pprof
	"time"

	"github.com/dance-db/dance/internal/cli"

	dance "github.com/dance-db/dance"
)

func main() {
	var (
		addr        = flag.String("addr", ":9090", "listen address")
		marketURL   = flag.String("market", "", "remote marketplace base URL (e.g. http://localhost:8080)")
		local       = flag.String("local", "", "serve against a locally generated marketplace instead: tpch or tpce")
		scale       = flag.Int("scale", 5, "scale for -local")
		seed        = flag.Int64("seed", 42, "PRNG seed")
		rate        = flag.Float64("rate", 0.3, "offline sampling rate")
		workers     = flag.Int("workers", 0, "concurrent sample fetches and MCMC chains (0 = one per CPU)")
		offline     = flag.Bool("offline", true, "run the offline phase (sample purchases) at startup instead of lazily on the first request")
		discoverFDs = flag.Bool("discover-fds", true, "mine approximate FDs on samples for datasets that publish none (danceacq does the same; without it the quality floor β is vacuous on FD-less datasets)")
		persistDir  = flag.String("persist", "", "journal directory for durable state (plans, ledger, offline samples); empty keeps everything in memory")
		maxInflight = flag.Int("max-inflight", 0, "max concurrently executing searches; non-coalescable excess is shed with 429 (0 = twice GOMAXPROCS)")
		pprofAddr   = flag.String("pprof", "", "serve net/http/pprof on this side address (e.g. localhost:6060); empty disables profiling")
	)
	flag.Parse()

	if *pprofAddr != "" {
		// A separate listener keeps the profiling surface off the public
		// API address: bind it to localhost (or a firewalled port) — the
		// pprof handlers expose heap contents and must never face shoppers.
		// The handlers register on http.DefaultServeMux via the pprof
		// import; the v1 API below uses its own mux and is unaffected.
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			log.Fatalf("pprof listener: %v", err)
		}
		fmt.Printf("pprof listening on http://%s/debug/pprof/\n", pln.Addr())
		go func() {
			if err := http.Serve(pln, nil); err != nil {
				log.Printf("pprof server: %v", err)
			}
		}()
	}

	var market dance.Market
	switch {
	case *marketURL != "":
		market = dance.NewMarketClient(*marketURL)
	case *local == "tpch":
		m := dance.NewMarketplace(nil)
		tables, fds := dance.GenerateTPCH(*scale, *seed, -1)
		for _, t := range tables {
			m.Register(t, fds[t.Name])
		}
		market = m
	case *local == "tpce":
		m := dance.NewMarketplace(nil)
		tables, fds := dance.GenerateTPCE(*scale, *seed, -1)
		for _, t := range tables {
			m.Register(t, fds[t.Name])
		}
		market = m
	default:
		log.Fatal("provide -market URL or -local tpch|tpce")
	}

	var store dance.PersistStore
	if *persistDir != "" {
		var err error
		store, err = dance.OpenPersist(*persistDir, dance.PersistOptions{})
		if err != nil {
			log.Fatalf("opening persist journal: %v", err)
		}
		fmt.Printf("journaling durable state under %s\n", *persistDir)
	}

	mw := dance.New(market, dance.Config{
		SampleRate:  *rate,
		SampleSeed:  uint64(*seed),
		Workers:     *workers,
		DiscoverFDs: *discoverFDs,
		Persist:     store,
	})
	svc, err := dance.NewService(mw, dance.ServiceOptions{
		Persist:             store,
		MaxInFlightSearches: *maxInflight,
	})
	if err != nil {
		log.Fatalf("restoring service state: %v", err)
	}
	ctx, stop := cli.RootContext()
	defer stop()
	if *offline {
		fmt.Println("running offline phase (buying correlated samples)…")
		if err := mw.Offline(ctx); err != nil {
			log.Fatalf("offline phase: %v", err)
		}
		fmt.Printf("offline done: %d instances, sample cost %.2f\n",
			len(mw.Graph().Instances), mw.SampleCost())
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("danced listening on %s\n", ln.Addr())
	if err := serve(ctx, ln, svc.Handler(), svc.Close); err != nil {
		log.Fatal(err)
	}
}

// serve runs an http.Server on ln with sane timeouts. When ctx ends
// (SIGINT/SIGTERM via cli.RootContext) it drains in-flight acquisitions
// with http.Server.Shutdown and only then calls onDrained — the hook that
// settles outstanding spend and flushes the persist journal, so every
// response already sent is also on disk before the process exits. Write
// timeouts are long: an acquisition legitimately searches for minutes;
// clients bound their own wait with deadlines.
func serve(ctx context.Context, ln net.Listener, h http.Handler, onDrained func() error) error {
	srv := &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		WriteTimeout:      15 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Println("shutting down: draining in-flight acquisitions")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	if onDrained != nil {
		if err := onDrained(); err != nil {
			return fmt.Errorf("flushing journal after drain: %w", err)
		}
	}
	return nil
}
