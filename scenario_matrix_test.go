//go:build scenario

package dance_test

import (
	"errors"
	"fmt"
	"math"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/dance-db/dance/internal/core"
	"github.com/dance-db/dance/internal/experiments"
	"github.com/dance-db/dance/internal/marketplace"
	"github.com/dance-db/dance/internal/marketplace/chaos"
	"github.com/dance-db/dance/internal/search"
	"github.com/dance-db/dance/internal/workload"
)

// scenarioSpecs is the CI matrix: every topology crossed with the noise
// axes the generator supports — decoys, mixed key types, NULL-ridden keys,
// Zipf skew, fanout duplicates, and all three price families.
var scenarioSpecs = []string{
	"chain:1",
	"chain:2",
	"chain:3,decoys=3",
	"chain:4,kinds=mixed",
	"chain:2,null=0.1,skew=1.4",
	"chain:3,fanout=2,price=tiered",
	"star:2",
	"star:3,kinds=mixed,null=0.05",
	"star:4,price=flat,skew=1.2",
	"snowflake:2",
	"snowflake:3,kinds=mixed",
	"snowflake:2,null=0.08,fanout=2,price=tiered",
}

// ownedSpecs additionally run the owned-source variant: the shopper holds
// the base table locally (AddSource) and buys only the rest of the path.
var ownedSpecs = map[string]bool{
	"chain:2":     true,
	"snowflake:2": true,
}

func envInt(name string, def int) int {
	if v := os.Getenv(name); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return def
}

// scenarioMarket returns the market the middleware shops at. With
// SCENARIO_CHAOS set (the nightly chaos leg), the marketplace is served
// over real HTTP behind seeded fault injection and consumed through the
// retrying client — so every recovery and delta-only-billing bar below is
// proven to hold across a lossy wire, not just in-process. Repricing stays
// off: the cost bars compare against exact ground-truth prices.
func scenarioMarket(t *testing.T, m marketplace.Market, seed int64) marketplace.Market {
	t.Helper()
	if os.Getenv("SCENARIO_CHAOS") == "" {
		return m
	}
	in := chaos.NewInjector(chaos.Config{
		Seed:    uint64(seed),
		Probs:   chaos.Light(),
		SlowFor: 5 * time.Millisecond,
	})
	srv := httptest.NewServer(chaos.Middleware(marketplace.Handler(m), in))
	t.Cleanup(srv.Close)
	c := marketplace.NewClient(srv.URL)
	c.Retry = marketplace.RetryPolicy{
		MaxAttempts: 6,
		BaseDelay:   2 * time.Millisecond,
		MaxDelay:    50 * time.Millisecond,
		PerTry:      30 * time.Second,
		Seed:        uint64(seed),
	}
	return c
}

// scenarioOutcome is one end-to-end run's verdict. err flags infrastructure
// failures (offline, escalation, execution) that fail the suite outright;
// note records a search that found no feasible plan, which only counts
// against the recovery rate.
type scenarioOutcome struct {
	spec, variant  string
	seed           int64
	rho, realized  float64
	price, costBar float64
	recovered      bool
	note           string
	err            error
}

// runScenario drives one full acquisition: offline at a low rate, an
// explicit incremental escalation (the PR 4 delta path — asserted to bill
// deltas only), the online search, and the purchase. Recovery means the
// realized correlation is within 2% (relative) of the planted ρ and the
// plan price does not exceed the ground-truth cheapest correct plan.
func runScenario(t *testing.T, w *workload.Workload, seed int64, owned bool) scenarioOutcome {
	t.Helper()
	out := scenarioOutcome{spec: w.Spec.String(), seed: seed, rho: w.Truth.Rho, variant: "sourceless"}

	market := w.Marketplace()
	costBar := w.Truth.PlanCost
	req := search.Request{
		TargetAttrs: []string{w.Truth.X, w.Truth.Y},
		Iterations:  60,
		Seed:        seed + 13,
	}
	if owned {
		out.variant = "owned"
		market = w.MarketplaceWithoutBase()
		costBar = w.Truth.PlanCostOwned
		req = search.Request{
			SourceAttrs: []string{w.Truth.X},
			TargetAttrs: []string{w.Truth.Y},
			Iterations:  60,
			Seed:        seed + 13,
		}
	}
	out.costBar = costBar
	// Budget pinned to the ground-truth optimum: the search objective only
	// maximizes correlation subject to B, so with B unbounded an
	// equal-correlation plan routed through a decoy would be a legitimate
	// answer. At B = cheapest-correct-cost, recovery means DANCE found
	// that cheapest plan. Tolerances are shared with the Recovery
	// experiment so the CI gate and the nightly table measure one bar.
	req.Budget = costBar * (1 + experiments.BudgetSlack)

	mw := core.New(scenarioMarket(t, market, seed), core.Config{SampleRate: 0.35, SampleSeed: uint64(seed) + 77})
	if owned {
		mw.AddSource(w.Base(), nil)
	}
	if err := mw.Offline(bg); err != nil {
		out.err = fmt.Errorf("offline: %w", err)
		return out
	}
	// Incremental escalation: the second round must bill only sample
	// deltas (rate 0.35 → 0.7), never re-buy full samples.
	if _, err := mw.Escalate(bg); err != nil {
		out.err = fmt.Errorf("escalate: %w", err)
		return out
	}
	rounds := mw.SampleRounds()
	if len(rounds) != 2 {
		out.err = fmt.Errorf("expected 2 sample rounds, got %d", len(rounds))
		return out
	}
	if last := rounds[len(rounds)-1]; last.DeltaCost <= 0 || last.FullCost != 0 {
		out.err = fmt.Errorf("escalation was not delta-only: %+v", last)
		return out
	}

	plan, err := mw.Acquire(bg, req)
	if err != nil {
		// Only a request-infeasible search is a legitimate non-recovery;
		// anything else is an engine failure the suite must flag.
		if errors.Is(err, search.ErrInfeasible) {
			out.note = fmt.Sprintf("no feasible plan within the optimum budget: %v", err)
		} else {
			out.err = fmt.Errorf("acquire: %w", err)
		}
		return out
	}
	out.price = plan.Est.Price
	purchase, err := mw.Execute(bg, plan)
	if err != nil {
		out.err = fmt.Errorf("execute: %w", err)
		return out
	}
	out.realized = purchase.Realized.Correlation
	corrOK := math.Abs(out.realized-out.rho) <= experiments.RecoveryEpsilon*math.Max(1, out.rho)
	costOK := out.price <= costBar*(1+1e-9)
	out.recovered = corrOK && costOK
	return out
}

// TestScenarioMatrix proves DANCE finds planted correlations across the
// generated marketplace matrix: ≥ 90% of (spec, seed, variant) runs must
// recover the planted correlation at the ground-truth cost, and no run may
// error. SCENARIO_SEEDS widens the per-spec sweep (the nightly uses this);
// SCENARIO_REPORT writes the per-run report to a file for CI artifacts.
func TestScenarioMatrix(t *testing.T) {
	seeds := envInt("SCENARIO_SEEDS", 2)
	var outcomes []scenarioOutcome
	for _, specStr := range scenarioSpecs {
		specStr := specStr
		t.Run(specStr, func(t *testing.T) {
			spec, err := workload.ParseSpec(specStr)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < seeds; i++ {
				seed := int64(1000 + 31*i)
				w, err := workload.Generate(spec, seed)
				if err != nil {
					t.Fatal(err)
				}
				out := runScenario(t, w, seed, false)
				if out.err != nil {
					t.Errorf("seed %d sourceless: %v", seed, out.err)
				}
				outcomes = append(outcomes, out)
				if ownedSpecs[specStr] {
					out := runScenario(t, w, seed, true)
					if out.err != nil {
						t.Errorf("seed %d owned: %v", seed, out.err)
					}
					outcomes = append(outcomes, out)
				}
			}
		})
	}

	recovered := 0
	var report strings.Builder
	fmt.Fprintf(&report, "%-46s %-10s %6s %9s %9s %9s %9s %s\n",
		"spec", "variant", "seed", "planted", "realized", "price", "cost bar", "recovered")
	for _, o := range outcomes {
		if o.recovered {
			recovered++
		}
		status := fmt.Sprintf("%v", o.recovered)
		if o.note != "" {
			status = "false (" + o.note + ")"
		}
		if o.err != nil {
			status = "error: " + o.err.Error()
		}
		fmt.Fprintf(&report, "%-46s %-10s %6d %9.4f %9.4f %9.2f %9.2f %s\n",
			o.spec, o.variant, o.seed, o.rho, o.realized, o.price, o.costBar, status)
	}
	rate := float64(recovered) / float64(len(outcomes))
	ownedRuns := len(outcomes) - len(scenarioSpecs)*seeds
	fmt.Fprintf(&report, "\nrecovered %d/%d (%.1f%%) over %d specs × %d seeds + %d owned-variant runs\n",
		recovered, len(outcomes), rate*100, len(scenarioSpecs), seeds, ownedRuns)
	t.Logf("scenario matrix:\n%s", report.String())
	if path := os.Getenv("SCENARIO_REPORT"); path != "" {
		if err := os.WriteFile(path, []byte(report.String()), 0o644); err != nil {
			t.Errorf("writing report: %v", err)
		}
	}
	if rate < 0.90 {
		t.Fatalf("recovery rate %.1f%% below the 90%% bar", rate*100)
	}
}
