package dance_test

import (
	"testing"

	"github.com/dance-db/dance/internal/core"
	"github.com/dance-db/dance/internal/search"
	"github.com/dance-db/dance/internal/workload"
)

// The million-row path must keep the engine's tentpole guarantee: for a
// fixed seed, Workers changes wall-clock time only. Intra-chain MCMC
// segmentation, the parallel columnar join/grouping kernels, and the
// offline sampling fan-out are all worker-independent by construction;
// this test pins that end to end — same plan queries, same estimated
// metrics, bit for bit — at Workers ∈ {1, 2, 8} on the 1M-row chain spec
// the benchmarks use. Short mode downscales to 60k rows (same topology) so
// `go test -short ./...` stays quick; the full size runs in CI.
func TestMillionRowDeterministicAcrossWorkers(t *testing.T) {
	specStr := "chain:3,rows=1000000,keys=512,decoys=2,attrs=1"
	if testing.Short() {
		specStr = "chain:3,rows=60000,keys=512,decoys=2,attrs=1"
	}
	spec, err := workload.ParseSpec(specStr)
	if err != nil {
		t.Fatal(err)
	}
	w, err := workload.Generate(spec, 17)
	if err != nil {
		t.Fatal(err)
	}
	market := w.Marketplace()

	run := func(workers int) (string, search.Metrics) {
		mw := core.New(market, core.Config{SampleRate: 0.2, SampleSeed: 1, Workers: workers})
		plan, err := mw.Acquire(bg, search.Request{
			TargetAttrs: []string{w.Truth.X, w.Truth.Y},
			Iterations:  30,
			Seed:        7,
			Workers:     workers,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var queries string
		for _, q := range plan.Queries {
			queries += q.String() + "\n"
		}
		return queries, plan.Est
	}

	qSerial, estSerial := run(1)
	for _, workers := range []int{2, 8} {
		q, est := run(workers)
		if q != qSerial {
			t.Fatalf("workers=%d: plan differs from serial:\n%s\nvs\n%s", workers, q, qSerial)
		}
		if est != estSerial {
			t.Fatalf("workers=%d: estimates differ: %+v vs %+v", workers, est, estSerial)
		}
	}
}
