package marketplace

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// postStatus drives the handler directly so the raw HTTP status contract is
// pinned, not just the client's interpretation of it.
func postStatus(t *testing.T, h http.Handler, path, body string) (int, errorResponse) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var e errorResponse
	if rec.Code != http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil {
			t.Fatalf("%s: non-JSON error body %q (status %d)", path, rec.Body.String(), rec.Code)
		}
	}
	return rec.Code, e
}

func TestHandlerErrorStatuses(t *testing.T) {
	h := Handler(demoMarket())

	// Unknown dataset → 404 with the machine code.
	code, e := postStatus(t, h, "/sample", `{"name":"ghost","join_attrs":["k"],"rate":0.5,"seed":1}`)
	if code != http.StatusNotFound || e.Code != "unknown_dataset" {
		t.Fatalf("unknown dataset: status %d code %q", code, e.Code)
	}
	code, e = postStatus(t, h, "/sample_delta", `{"name":"ghost","join_attrs":["k"],"from_rate":0.1,"to_rate":0.5,"seed":1}`)
	if code != http.StatusNotFound || e.Code != "unknown_dataset" {
		t.Fatalf("unknown dataset (delta): status %d code %q", code, e.Code)
	}
	code, e = postStatus(t, h, "/query", `{"name":"ghost","attrs":["k"]}`)
	if code != http.StatusNotFound || e.Code != "unknown_dataset" {
		t.Fatalf("unknown dataset (query): status %d code %q", code, e.Code)
	}

	// Out-of-range rates → 400 with the machine code — even when the
	// dataset is unknown too (the caller's input error wins).
	code, e = postStatus(t, h, "/sample", `{"name":"alpha","join_attrs":["k"],"rate":1.5,"seed":1}`)
	if code != http.StatusBadRequest || e.Code != "bad_rate" {
		t.Fatalf("bad rate: status %d code %q", code, e.Code)
	}
	code, e = postStatus(t, h, "/sample", `{"name":"ghost","join_attrs":["k"],"rate":0,"seed":1}`)
	if code != http.StatusBadRequest || e.Code != "bad_rate" {
		t.Fatalf("bad rate on unknown dataset: status %d code %q", code, e.Code)
	}
	code, e = postStatus(t, h, "/sample_delta", `{"name":"alpha","join_attrs":["k"],"from_rate":0.7,"to_rate":0.2,"seed":1}`)
	if code != http.StatusBadRequest || e.Code != "bad_rate" {
		t.Fatalf("bad delta range: status %d code %q", code, e.Code)
	}

	// Malformed JSON → 400, no machine code (there is no marketplace error
	// class for a request that never parsed).
	for _, path := range []string{"/sample", "/sample_delta", "/quote", "/query"} {
		code, e = postStatus(t, h, path, `{"name": nope}`)
		if code != http.StatusBadRequest || e.Code != "" {
			t.Fatalf("%s malformed JSON: status %d code %q", path, code, e.Code)
		}
	}

	// Marketplace-internal failures (unknown attribute in a quote) → 500.
	code, _ = postStatus(t, h, "/quote", `{"name":"alpha","attrs":["no-such-attr"]}`)
	if code != http.StatusInternalServerError {
		t.Fatalf("internal failure: status %d", code)
	}

	// GET /fds with an unknown dataset → 404.
	req := httptest.NewRequest(http.MethodGet, "/fds?name=ghost", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("fds unknown dataset: status %d", rec.Code)
	}
}
