// Package chaos injects deterministic faults into a marketplace's HTTP
// surface so the client's retry, idempotency, and recovery machinery can be
// exercised under test and load. An Injector draws faults from a seeded
// stream — the same seed and arrival order reproduce the same faults — and
// Middleware applies them around a marketplace Handler:
//
//   - err5xx: answer 503 with a plain-text body before the marketplace runs
//     (no billing happened; the client retries).
//   - reset: abort the connection before the marketplace runs.
//   - stall: hold the request for StallFor, then abort — a hung upstream
//     that trips the client's per-try timeout.
//   - partial: let the marketplace run (billing happens), then deliver only
//     half the response and abort — the retried request must not bill again,
//     which is exactly what the Idempotency-Key replay guarantees.
//   - slow: deliver the complete response after an extra SlowFor.
//
// WrapMarket additionally injects transient repricing into QuoteProjection,
// modeling marketplaces whose quotes wobble between calls.
//
// Middleware must wrap OUTSIDE marketplace.Handler: the idempotency cache
// inside the handler then records the complete response before chaos
// truncates it on the wire, so a replayed retry delivers the full body.
package chaos

import (
	"context"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"github.com/dance-db/dance/internal/marketplace"
	"github.com/dance-db/dance/internal/pricing"
	"github.com/dance-db/dance/internal/relation"
)

// Probabilities weights each fault class per request. At most one fault
// fires per request; the sum of the first five must be ≤ 1. Reprice draws
// independently, per quote call.
type Probabilities struct {
	Err5xx  float64
	Reset   float64
	Stall   float64
	Partial float64
	Slow    float64
	Reprice float64
}

// Light is a mild mix suitable for CI: roughly one request in four is
// disturbed, every disturbance recoverable by the default retry policy.
func Light() Probabilities {
	return Probabilities{Err5xx: 0.08, Reset: 0.05, Partial: 0.05, Slow: 0.07}
}

// Config configures an Injector.
type Config struct {
	// Seed drives the fault stream; the same seed and request arrival order
	// reproduce the same faults.
	Seed uint64
	// Probs weights the fault classes.
	Probs Probabilities
	// StallFor is how long a stalled request hangs before the connection
	// aborts (default 5s). Keep it above the client's per-try timeout to
	// model a hang, below it to model a slow failure.
	StallFor time.Duration
	// SlowFor delays a slow response (default 200ms).
	SlowFor time.Duration
	// RepriceAmp bounds transient repricing: a repriced quote is scaled by
	// a factor in [1-amp, 1+amp] (default 0.2).
	RepriceAmp float64
}

// Injector draws faults deterministically from a seeded stream and counts
// what it injected, per fault class plus "none".
type Injector struct {
	cfg Config

	mu     sync.Mutex     // lockorder: leaf
	rng    *rand.Rand     // guarded by mu
	counts map[string]int // guarded by mu
}

// NewInjector returns an injector for the config, applying defaults.
func NewInjector(cfg Config) *Injector {
	if cfg.StallFor <= 0 {
		cfg.StallFor = 5 * time.Second
	}
	if cfg.SlowFor <= 0 {
		cfg.SlowFor = 200 * time.Millisecond
	}
	if cfg.RepriceAmp <= 0 {
		cfg.RepriceAmp = 0.2
	}
	return &Injector{
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(int64(cfg.Seed) ^ 0x63686f73)),
		counts: make(map[string]int),
	}
}

// draw picks this request's fault (or "none") and counts it.
func (in *Injector) draw() string {
	in.mu.Lock()
	defer in.mu.Unlock()
	u := in.rng.Float64()
	p := in.cfg.Probs
	fault := "none"
	switch {
	case u < p.Err5xx:
		fault = "err5xx"
	case u < p.Err5xx+p.Reset:
		fault = "reset"
	case u < p.Err5xx+p.Reset+p.Stall:
		fault = "stall"
	case u < p.Err5xx+p.Reset+p.Stall+p.Partial:
		fault = "partial"
	case u < p.Err5xx+p.Reset+p.Stall+p.Partial+p.Slow:
		fault = "slow"
	}
	in.counts[fault]++
	return fault
}

// repriceFactor draws the transient quote scaling for one call (1 = none).
func (in *Injector) repriceFactor() float64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.rng.Float64() >= in.cfg.Probs.Reprice {
		return 1
	}
	in.counts["reprice"]++
	return 1 + in.cfg.RepriceAmp*(2*in.rng.Float64()-1)
}

// Counts returns a copy of the per-fault injection counts ("none" included).
func (in *Injector) Counts() map[string]int {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[string]int, len(in.counts))
	for k, v := range in.counts {
		out[k] = v
	}
	return out
}

// sleepOrDone waits d unless ctx ends first.
func sleepOrDone(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

// replay buffers a handler's response for delayed or truncated delivery.
type replay struct {
	status int
	header http.Header
	body   []byte
}

func record(next http.Handler, r *http.Request) replay {
	w := &recorderWriter{header: make(http.Header), status: http.StatusOK}
	next.ServeHTTP(w, r)
	return replay{status: w.status, header: w.header, body: w.body}
}

type recorderWriter struct {
	header http.Header
	status int
	body   []byte
}

func (w *recorderWriter) Header() http.Header  { return w.header }
func (w *recorderWriter) WriteHeader(code int) { w.status = code }
func (w *recorderWriter) Write(p []byte) (int, error) {
	w.body = append(w.body, p...)
	return len(p), nil
}

func (rp replay) writeTo(w http.ResponseWriter, truncate bool) {
	for k, vs := range rp.header {
		w.Header()[k] = vs
	}
	w.WriteHeader(rp.status)
	if truncate {
		w.Write(rp.body[:len(rp.body)/2])
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		panic(http.ErrAbortHandler)
	}
	w.Write(rp.body)
}

// Middleware wraps next with fault injection. Wrap it around (outside)
// marketplace.Handler — see the package comment.
func Middleware(next http.Handler, in *Injector) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch in.draw() {
		case "err5xx":
			// Plain text on purpose: a payload-less 5xx is the
			// infrastructure failing, which the client treats as transient.
			http.Error(w, "chaos: injected 5xx", http.StatusServiceUnavailable)
		case "reset":
			panic(http.ErrAbortHandler)
		case "stall":
			sleepOrDone(r.Context(), in.cfg.StallFor)
			panic(http.ErrAbortHandler)
		case "partial":
			// The marketplace runs to completion (and bills); only the
			// delivery is cut short.
			record(next, r).writeTo(w, true)
		case "slow":
			rp := record(next, r)
			sleepOrDone(r.Context(), in.cfg.SlowFor)
			rp.writeTo(w, false)
		default:
			next.ServeHTTP(w, r)
		}
	})
}

// market injects transient repricing around an inner Market.
type market struct {
	marketplace.Market
	in *Injector
}

// WrapMarket returns m with QuoteProjection prices transiently scaled per
// the injector's Reprice probability. Samples and executed queries bill
// their true prices — repricing models quote wobble, not billing faults.
func WrapMarket(m marketplace.Market, in *Injector) marketplace.Market {
	return market{Market: m, in: in}
}

func (m market) QuoteProjection(ctx context.Context, name string, attrs []string) (float64, error) {
	price, err := m.Market.QuoteProjection(ctx, name, attrs)
	if err != nil {
		return price, err
	}
	return price * m.in.repriceFactor(), nil
}

// Interface conformance for the forwarded methods.
var _ marketplace.Market = market{}

// ExecuteProjection forwards unchanged; declared so the embedding is
// explicit about what chaos does NOT touch.
func (m market) ExecuteProjection(ctx context.Context, q pricing.Query) (*relation.Table, float64, error) {
	return m.Market.ExecuteProjection(ctx, q)
}
