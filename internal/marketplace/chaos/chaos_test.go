package chaos

import (
	"context"
	"math"
	"math/rand"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"github.com/dance-db/dance/internal/marketplace"
	"github.com/dance-db/dance/internal/pricing"
	"github.com/dance-db/dance/internal/relation"
)

var bg = context.Background()

func demoMarket(seed int64) *marketplace.InMemory {
	rng := rand.New(rand.NewSource(seed))
	t := relation.NewTable("alpha", relation.NewSchema(
		relation.Cat("k", relation.KindInt),
		relation.Num("v", relation.KindFloat),
	))
	for i := 0; i < 120; i++ {
		t.AppendValues(relation.IntValue(int64(rng.Intn(10))), relation.FloatValue(rng.Float64()))
	}
	m := marketplace.NewInMemory(nil)
	m.Register(t, nil)
	return m
}

func chaoticClient(t *testing.T, m marketplace.Market, cfg Config) (*marketplace.Client, *Injector) {
	t.Helper()
	in := NewInjector(cfg)
	srv := httptest.NewServer(Middleware(marketplace.Handler(m), in))
	t.Cleanup(srv.Close)
	c := marketplace.NewClient(srv.URL)
	c.Retry = marketplace.RetryPolicy{
		MaxAttempts: 6,
		BaseDelay:   time.Millisecond,
		MaxDelay:    20 * time.Millisecond,
		PerTry:      300 * time.Millisecond,
		Seed:        1,
	}
	return c, in
}

// TestInjectorDeterministic: same seed, same arrival order, same faults.
func TestInjectorDeterministic(t *testing.T) {
	draw := func() []string {
		in := NewInjector(Config{Seed: 5, Probs: Probabilities{Err5xx: 0.2, Reset: 0.2, Stall: 0.1, Partial: 0.2, Slow: 0.2}})
		var out []string
		for i := 0; i < 64; i++ {
			out = append(out, in.draw())
		}
		return out
	}
	a, b := draw(), draw()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("fault streams diverge:\n%v\n%v", a, b)
	}
	classes := map[string]bool{}
	for _, f := range a {
		classes[f] = true
	}
	for _, want := range []string{"err5xx", "reset", "partial", "slow", "none"} {
		if !classes[want] {
			t.Errorf("64 draws at these weights should include %q: %v", want, classes)
		}
	}
}

// TestRecoveryThroughChaos: under every injectable fault class, the retrying
// client still completes its calls, and billing endpoints bill exactly once
// per logical call despite retried partial deliveries.
func TestRecoveryThroughChaos(t *testing.T) {
	m := demoMarket(3)
	c, in := chaoticClient(t, m, Config{
		Seed:     7,
		Probs:    Probabilities{Err5xx: 0.15, Reset: 0.1, Stall: 0.05, Partial: 0.15, Slow: 0.1},
		StallFor: 2 * time.Second, // past PerTry: a real hang
		SlowFor:  5 * time.Millisecond,
	})

	want, wantPrice, err := m.ExecuteProjection(bg, pricing.Query{Instance: "alpha", Attrs: []string{"k", "v"}})
	if err != nil {
		t.Fatal(err)
	}
	billedBefore := m.Ledger().Total()

	const calls = 25
	for i := 0; i < calls; i++ {
		got, price, err := c.ExecuteProjection(bg, pricing.Query{Instance: "alpha", Attrs: []string{"k", "v"}})
		if err != nil {
			t.Fatalf("call %d failed through chaos: %v (injected: %v)", i, err, in.Counts())
		}
		if got.NumRows() != want.NumRows() || price != wantPrice {
			t.Fatalf("call %d corrupted: %d rows price %v, want %d rows price %v",
				i, got.NumRows(), price, want.NumRows(), wantPrice)
		}
	}
	// Exactly one billing per logical call: retries of partially-delivered
	// responses replayed the idempotency cache instead of re-purchasing.
	if got := m.Ledger().Total() - billedBefore; math.Abs(got-float64(calls)*wantPrice) > 1e-6 {
		t.Fatalf("chaos broke single-billing: billed %v for %d calls of %v each (injected: %v)",
			got, calls, wantPrice, in.Counts())
	}
	counts := in.Counts()
	if counts["err5xx"] == 0 || counts["partial"] == 0 {
		t.Fatalf("chaos too quiet to prove anything: %v", counts)
	}
}

// TestWrapMarketReprices: quotes wobble within the configured amplitude;
// samples and executed queries stay exact.
func TestWrapMarketReprices(t *testing.T) {
	m := demoMarket(4)
	in := NewInjector(Config{Seed: 2, Probs: Probabilities{Reprice: 1}, RepriceAmp: 0.2})
	w := WrapMarket(m, in)

	base, err := m.QuoteProjection(bg, "alpha", []string{"k"})
	if err != nil {
		t.Fatal(err)
	}
	repriced, err := w.QuoteProjection(bg, "alpha", []string{"k"})
	if err != nil {
		t.Fatal(err)
	}
	if repriced == base {
		t.Fatal("reprice probability 1 left the quote unchanged")
	}
	if repriced < 0.8*base-1e-12 || repriced > 1.2*base+1e-12 {
		t.Fatalf("reprice %v outside ±20%% of %v", repriced, base)
	}
	_, price, err := w.ExecuteProjection(bg, pricing.Query{Instance: "alpha", Attrs: []string{"k"}})
	if err != nil {
		t.Fatal(err)
	}
	if price != base {
		t.Fatalf("executed price %v must stay the true %v", price, base)
	}
	if in.Counts()["reprice"] == 0 {
		t.Fatal("reprice not counted")
	}
}
