package marketplace

import (
	"net/http/httptest"
	"sync"
	"testing"

	"github.com/dance-db/dance/internal/fd"
	"github.com/dance-db/dance/internal/pricing"
)

// Regression: dataset names are seller-controlled free text. The client
// used to build "/fds?name="+name raw, so a name with a space, '&' or '#'
// corrupted the query string and the lookup silently hit the wrong (or no)
// dataset.
func TestDatasetFDsHostileName(t *testing.T) {
	const hostile = "weird name&rate=1#frag"
	m := NewInMemory(nil)
	m.Register(demoTable(hostile, 50, 1), []fd.FD{fd.New("state", "k")})
	srv := httptest.NewServer(Handler(m))
	defer srv.Close()

	c := NewClient(srv.URL)
	fds, err := c.DatasetFDs(hostile)
	if err != nil {
		t.Fatalf("DatasetFDs(%q): %v", hostile, err)
	}
	if len(fds) != 1 || fds[0].String() != "k → state" {
		t.Fatalf("fds = %v", fds)
	}
	if _, err := c.DatasetFDs("still missing&name=" + hostile); err == nil {
		t.Fatal("unknown hostile name should error, not alias an existing dataset")
	}
}

// The HTTP stack must tolerate concurrent shoppers end to end: many Client
// goroutines against one Handler over a live listener. Run with -race for
// full value.
func TestConcurrentHandlerAndClient(t *testing.T) {
	srv := httptest.NewServer(Handler(demoMarket()))
	defer srv.Close()

	const shoppers = 12
	var wg sync.WaitGroup
	errs := make(chan error, shoppers*5)
	for i := 0; i < shoppers; i++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			c := NewClient(srv.URL)
			if _, err := c.Catalog(); err != nil {
				errs <- err
			}
			if _, err := c.DatasetFDs("alpha"); err != nil {
				errs <- err
			}
			if _, err := c.QuoteProjection("alpha", []string{"k", "state"}); err != nil {
				errs <- err
			}
			if _, _, err := c.Sample("beta", []string{"k"}, 0.5, seed); err != nil {
				errs <- err
			}
			if _, _, err := c.ExecuteProjection(pricing.Query{Instance: "alpha", Attrs: []string{"k"}}); err != nil {
				errs <- err
			}
		}(uint64(i))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
