package marketplace

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"github.com/dance-db/dance/internal/fd"
	"github.com/dance-db/dance/internal/pricing"
)

// Regression: dataset names are seller-controlled free text. The client
// used to build "/fds?name="+name raw, so a name with a space, '&' or '#'
// corrupted the query string and the lookup silently hit the wrong (or no)
// dataset.
func TestDatasetFDsHostileName(t *testing.T) {
	const hostile = "weird name&rate=1#frag"
	m := NewInMemory(nil)
	m.Register(demoTable(hostile, 50, 1), []fd.FD{fd.New("state", "k")})
	srv := httptest.NewServer(Handler(m))
	defer srv.Close()

	c := NewClient(srv.URL)
	fds, err := c.DatasetFDs(bg, hostile)
	if err != nil {
		t.Fatalf("DatasetFDs(%q): %v", hostile, err)
	}
	if len(fds) != 1 || fds[0].String() != "k → state" {
		t.Fatalf("fds = %v", fds)
	}
	if _, err := c.DatasetFDs(bg, "still missing&name="+hostile); err == nil {
		t.Fatal("unknown hostile name should error, not alias an existing dataset")
	}
}

// The HTTP stack must tolerate concurrent shoppers end to end: many Client
// goroutines against one Handler over a live listener. Run with -race for
// full value.
func TestConcurrentHandlerAndClient(t *testing.T) {
	srv := httptest.NewServer(Handler(demoMarket()))
	defer srv.Close()

	const shoppers = 12
	var wg sync.WaitGroup
	errs := make(chan error, shoppers*5)
	for i := 0; i < shoppers; i++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			c := NewClient(srv.URL)
			if _, err := c.Catalog(bg); err != nil {
				errs <- err
			}
			if _, err := c.DatasetFDs(bg, "alpha"); err != nil {
				errs <- err
			}
			if _, err := c.QuoteProjection(bg, "alpha", []string{"k", "state"}); err != nil {
				errs <- err
			}
			if _, _, err := c.Sample(bg, "beta", []string{"k"}, 0.5, seed); err != nil {
				errs <- err
			}
			if _, _, err := c.ExecuteProjection(bg, pricing.Query{Instance: "alpha", Attrs: []string{"k"}}); err != nil {
				errs <- err
			}
		}(uint64(i))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// A pre-cancelled context must fail fast against the in-memory market too,
// so the Market contract is uniform across implementations.
func TestInMemoryHonorsCancelledContext(t *testing.T) {
	m := demoMarket()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.Catalog(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Catalog err = %v", err)
	}
	if _, _, err := m.Sample(ctx, "alpha", []string{"k"}, 0.5, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("Sample err = %v", err)
	}
	if _, _, err := m.ExecuteProjection(ctx, pricing.Query{Instance: "alpha", Attrs: []string{"k"}}); !errors.Is(err, context.Canceled) {
		t.Fatalf("ExecuteProjection err = %v", err)
	}
}

// Regression: the client used to ship with http.DefaultClient (no timeout),
// so a hung marketplace blocked an acquisition forever. Deadline-less calls
// now fall back to Client.Timeout, and per-call context deadlines abort
// in-flight calls.
func TestClientDefaultTimeoutAndContextDeadline(t *testing.T) {
	if NewClient("http://example.invalid").Timeout != DefaultClientTimeout {
		t.Fatal("NewClient must install a default timeout")
	}

	release := make(chan struct{})
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-release:
		case <-r.Context().Done():
		}
	}))
	// LIFO: release the handlers first, then Close can drain them.
	defer slow.Close()
	defer close(release)

	c := NewClient(slow.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Catalog(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline took %v to bite", elapsed)
	}

	ctx2, cancel2 := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel2()
	}()
	if _, _, err := c.Sample(ctx2, "alpha", []string{"k"}, 0.5, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("Sample err = %v, want context.Canceled", err)
	}

	// Deadline-less calls fall back to Client.Timeout against a hung server…
	c.Timeout = 30 * time.Millisecond
	if _, err := c.Catalog(context.Background()); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("fallback timeout err = %v, want context.DeadlineExceeded", err)
	}
	// …but a caller deadline longer than Client.Timeout takes precedence.
	ctx3, cancel3 := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel3()
	done := make(chan error, 1)
	go func() {
		_, err := c.Catalog(ctx3)
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("call with a 10s caller deadline ended early: %v (Client.Timeout must not override it)", err)
	case <-time.After(200 * time.Millisecond):
		// Still in flight well past Client.Timeout: the caller deadline won.
		cancel3()
		<-done
	}
}
