package marketplace

import (
	"bytes"
	"context"
	cryptorand "crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/dance-db/dance/internal/fd"
	"github.com/dance-db/dance/internal/pricing"
	"github.com/dance-db/dance/internal/relation"
	"github.com/dance-db/dance/internal/safekey"
	"github.com/dance-db/dance/internal/sampling"
)

// Wire representations. Tables travel as CSV (the typed header encoding of
// relation.WriteCSV round-trips kinds and categorical flags exactly).

type wireColumn struct {
	Name        string `json:"name"`
	Kind        string `json:"kind"`
	Categorical bool   `json:"categorical"`
}

type wireDatasetInfo struct {
	Name  string       `json:"name"`
	Rows  int          `json:"rows"`
	Attrs []wireColumn `json:"attrs"`
}

type wireTableResponse struct {
	CSV   string  `json:"csv"`
	Price float64 `json:"price"`
}

type sampleRequest struct {
	Name      string   `json:"name"`
	JoinAttrs []string `json:"join_attrs"`
	Rate      float64  `json:"rate"`
	Seed      uint64   `json:"seed"`
}

type sampleDeltaRequest struct {
	Name      string   `json:"name"`
	JoinAttrs []string `json:"join_attrs"`
	FromRate  float64  `json:"from_rate"`
	ToRate    float64  `json:"to_rate"`
	Seed      uint64   `json:"seed"`
}

type quoteRequest struct {
	Name  string   `json:"name"`
	Attrs []string `json:"attrs"`
}

type quoteResponse struct {
	Price float64 `json:"price"`
}

type errorResponse struct {
	Error string `json:"error"`
	// Code carries the machine-readable error class ("unknown_dataset",
	// "bad_rate") so clients can restore the typed sentinels across the
	// wire. Absent on old servers and on errors with no class.
	Code string `json:"code,omitempty"`
}

// errCode maps an error to its wire code and HTTP status. Unknown datasets
// are 404, caller input errors 400; anything else stays with the caller's
// fallback status.
func errCode(err error, fallback int) (string, int) {
	switch {
	case errors.Is(err, ErrUnknownDataset):
		return "unknown_dataset", http.StatusNotFound
	case errors.Is(err, ErrBadRate):
		return "bad_rate", http.StatusBadRequest
	}
	return "", fallback
}

// Handler serves a Market over JSON/HTTP:
//
//	GET  /catalog            → []DatasetInfo
//	GET  /fds?name=…         → []string (FDs, "A,B -> C" syntax)
//	POST /quote {name,attrs} → {price}
//	POST /sample {…}         → {csv, price}
//	POST /sample_delta {…}   → {csv, price} (rows in (from_rate, to_rate])
//	POST /query {name,attrs} → {csv, price}
//
// Errors use the {"error", "code"} payload: unknown datasets answer 404
// with code "unknown_dataset", invalid sampling rates 400 with "bad_rate",
// malformed request JSON 400, and everything else 500 — so clients can tell
// their own mistakes from marketplace failures.
//
// Each marketplace call runs under the request's context, so a client that
// disconnects (or whose deadline expires) stops the work server-side.
func Handler(m Market) http.Handler {
	mux := http.NewServeMux()

	writeErr := func(w http.ResponseWriter, code int, err error) {
		wireCode, mapped := errCode(err, code)
		code = mapped
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			code = http.StatusGatewayTimeout
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		json.NewEncoder(w).Encode(errorResponse{Error: err.Error(), Code: wireCode})
	}
	writeJSON := func(w http.ResponseWriter, v interface{}) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(v)
	}
	tableResponse := func(w http.ResponseWriter, t *relation.Table, price float64) {
		var buf bytes.Buffer
		if err := t.WriteCSV(&buf); err != nil {
			writeErr(w, http.StatusInternalServerError, err)
			return
		}
		writeJSON(w, wireTableResponse{CSV: buf.String(), Price: price})
	}

	mux.HandleFunc("GET /catalog", func(w http.ResponseWriter, r *http.Request) {
		infos, err := m.Catalog(r.Context())
		if err != nil {
			writeErr(w, http.StatusInternalServerError, err)
			return
		}
		out := make([]wireDatasetInfo, len(infos))
		for i, info := range infos {
			wi := wireDatasetInfo{Name: info.Name, Rows: info.Rows}
			for _, c := range info.Attrs {
				wi.Attrs = append(wi.Attrs, wireColumn{Name: c.Name, Kind: c.Kind.String(), Categorical: c.Categorical})
			}
			out[i] = wi
		}
		writeJSON(w, out)
	})

	mux.HandleFunc("GET /fds", func(w http.ResponseWriter, r *http.Request) {
		fds, err := m.DatasetFDs(r.Context(), r.URL.Query().Get("name"))
		if err != nil {
			writeErr(w, http.StatusInternalServerError, err)
			return
		}
		out := make([]string, len(fds))
		for i, f := range fds {
			out[i] = strings.Join(f.LHS, ",") + " -> " + f.RHS
		}
		writeJSON(w, out)
	})

	mux.HandleFunc("POST /quote", func(w http.ResponseWriter, r *http.Request) {
		var req quoteRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		price, err := m.QuoteProjection(r.Context(), req.Name, req.Attrs)
		if err != nil {
			writeErr(w, http.StatusInternalServerError, err)
			return
		}
		writeJSON(w, quoteResponse{Price: price})
	})

	// Billing endpoints honor Idempotency-Key: a retried purchase replays
	// the recorded response instead of billing again (see idempotency.go).
	idem := newIdempotencyCache()

	mux.HandleFunc("POST /sample", idem.wrap(func(w http.ResponseWriter, r *http.Request) {
		var req sampleRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		t, price, err := m.Sample(r.Context(), req.Name, req.JoinAttrs, req.Rate, req.Seed)
		if err != nil {
			writeErr(w, http.StatusInternalServerError, err)
			return
		}
		tableResponse(w, t, price)
	}))

	mux.HandleFunc("POST /sample_delta", idem.wrap(func(w http.ResponseWriter, r *http.Request) {
		var req sampleDeltaRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		t, price, err := m.SampleDelta(r.Context(), req.Name, req.JoinAttrs, req.FromRate, req.ToRate, req.Seed)
		if err != nil {
			writeErr(w, http.StatusInternalServerError, err)
			return
		}
		tableResponse(w, t, price)
	}))

	mux.HandleFunc("POST /query", idem.wrap(func(w http.ResponseWriter, r *http.Request) {
		var req quoteRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		t, price, err := m.ExecuteProjection(r.Context(), pricing.Query{Instance: req.Name, Attrs: req.Attrs})
		if err != nil {
			writeErr(w, http.StatusInternalServerError, err)
			return
		}
		tableResponse(w, t, price)
	}))

	return mux
}

// DefaultClientTimeout caps a single marketplace round trip when the caller
// supplies no context deadline of its own. Full-table projections on large
// marketplaces are slow but finite; a hung remote must never block an
// acquisition forever. Caller deadlines — shorter or longer — always win.
const DefaultClientTimeout = 2 * time.Minute

// Client is a Market backed by a remote HTTP marketplace. Every call honors
// its context: deadlines and cancellation abort the in-flight HTTP request.
// Transient failures are retried per the Retry policy; billing calls carry
// idempotency keys so retries never purchase twice (see RetryPolicy).
type Client struct {
	BaseURL string
	// HTTP is the underlying client. Replace it to tune the transport.
	HTTP *http.Client
	// Timeout bounds one whole call — all retry attempts together — when
	// the caller's context carries no deadline; a caller deadline of any
	// length takes precedence. NewClient sets DefaultClientTimeout; zero or
	// negative disables the fallback.
	Timeout time.Duration
	// Retry governs transparent retries. The zero value disables them (one
	// attempt, no backoff); NewClient installs DefaultRetryPolicy.
	Retry RetryPolicy

	// rng drives backoff jitter, lazily seeded from Retry.Seed.
	rngMu sync.Mutex // lockorder: leaf
	rng   *rand.Rand // guarded by rngMu

	// idemNonce and idemSeq mint per-logical-call idempotency keys: the
	// nonce separates client instances, the sequence separates calls, and
	// retries of one call share the key.
	idemOnce  sync.Once
	idemNonce string
	idemSeq   atomic.Uint64

	// The /sample_delta capability probe. Exactly one caller probes a
	// not-yet-classified server; concurrent SampleDelta calls wait on
	// probeDone instead of racing duplicate probes (each of which would
	// fall back to a full-price Sample on an old server).
	probeMu    sync.Mutex    // lockorder: leaf
	probeState int           // guarded by probeMu
	probeDone  chan struct{} // guarded by probeMu
}

// Probe states for Client.probeState.
const (
	probeUnknown     = iota // never probed (or last probe failed transiently)
	probeInFlight           // one caller is probing now
	probeSupported          // server answers /sample_delta
	probeUnsupported        // routing-layer 404/405: pre-delta server
)

var _ Market = (*Client)(nil)

// NewClient returns a client for the marketplace at baseURL with a sane
// default timeout for deadline-less calls (DefaultClientTimeout) and the
// default retry policy.
func NewClient(baseURL string) *Client {
	return &Client{
		BaseURL: strings.TrimRight(baseURL, "/"),
		HTTP:    &http.Client{},
		Timeout: DefaultClientTimeout,
		Retry:   DefaultRetryPolicy(),
	}
}

// idemKey mints the idempotency key for one logical billing call. All retry
// attempts of the call share it; distinct calls — even with identical
// parameters — get distinct keys, so deliberate repeat purchases still bill.
func (c *Client) idemKey(op string, params ...string) string {
	c.idemOnce.Do(func() {
		var b [16]byte
		if _, err := cryptorand.Read(b[:]); err == nil {
			c.idemNonce = hex.EncodeToString(b[:])
		}
	})
	parts := append([]string{c.idemNonce, strconv.FormatUint(c.idemSeq.Add(1), 10), op}, params...)
	sum := sha256.Sum256([]byte(safekey.Join(parts...)))
	return hex.EncodeToString(sum[:16])
}

// callCtx applies the fallback timeout to contexts without a deadline.
func (c *Client) callCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if _, ok := ctx.Deadline(); !ok && c.Timeout > 0 {
		return context.WithTimeout(ctx, c.Timeout)
	}
	return ctx, func() {}
}

func (c *Client) get(ctx context.Context, path string, out interface{}) error {
	return c.do(ctx, http.MethodGet, path, "", nil, out)
}

func (c *Client) post(ctx context.Context, path string, in, out interface{}) error {
	return c.postIdem(ctx, path, "", in, out)
}

// postIdem posts with an idempotency key attached to every retry attempt.
// Billing endpoints must use it; an empty key degrades to a plain post.
func (c *Client) postIdem(ctx context.Context, path, idemKey string, in, out interface{}) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	return c.do(ctx, http.MethodPost, path, idemKey, body, out)
}

// errEndpointUnsupported marks responses that came from the HTTP routing
// layer rather than the marketplace itself — a 404/405 without the JSON
// error payload — i.e. the server predates the endpoint. Client.SampleDelta
// uses it as its capability probe.
var errEndpointUnsupported = errors.New("endpoint unsupported by server")

func decodeResponse(resp *http.Response, out interface{}) error {
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		// Mid-body connection resets surface here; the response is lost but
		// the round trip is repeatable.
		return &transientError{fmt.Errorf("marketplace client: reading response: %w", err)}
	}
	if resp.StatusCode != http.StatusOK {
		var e errorResponse
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			// Restore the typed sentinels from the wire code so remote and
			// in-memory marketplaces fail identically under errors.Is. A
			// JSON error payload is the marketplace speaking — retrying
			// would repeat the same answer — so none of these is transient.
			switch e.Code {
			case "unknown_dataset":
				return fmt.Errorf("marketplace client: %s: %w", e.Error, ErrUnknownDataset)
			case "bad_rate":
				return fmt.Errorf("marketplace client: %s: %w", e.Error, ErrBadRate)
			}
			return fmt.Errorf("marketplace client: %s", e.Error)
		}
		if resp.StatusCode == http.StatusNotFound || resp.StatusCode == http.StatusMethodNotAllowed {
			return fmt.Errorf("marketplace client: status %d: %w", resp.StatusCode, errEndpointUnsupported)
		}
		err := fmt.Errorf("marketplace client: status %d", resp.StatusCode)
		if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode >= 500 {
			// Payload-less 5xx/429: the infrastructure, not the
			// marketplace, refused — retry.
			return &transientError{err}
		}
		return err
	}
	if err := json.Unmarshal(data, out); err != nil {
		// A 200 with undecodable JSON is a truncated or garbled body.
		return &transientError{fmt.Errorf("marketplace client: decoding response: %w", err)}
	}
	return nil
}

// Catalog implements Market.
func (c *Client) Catalog(ctx context.Context) ([]DatasetInfo, error) {
	var wire []wireDatasetInfo
	if err := c.get(ctx, "/catalog", &wire); err != nil {
		return nil, err
	}
	out := make([]DatasetInfo, len(wire))
	for i, wi := range wire {
		info := DatasetInfo{Name: wi.Name, Rows: wi.Rows}
		for _, wc := range wi.Attrs {
			kind, err := parseKind(wc.Kind)
			if err != nil {
				return nil, err
			}
			info.Attrs = append(info.Attrs, relation.Column{Name: wc.Name, Kind: kind, Categorical: wc.Categorical})
		}
		out[i] = info
	}
	return out, nil
}

func parseKind(s string) (relation.Kind, error) {
	switch s {
	case "string":
		return relation.KindString, nil
	case "int":
		return relation.KindInt, nil
	case "float":
		return relation.KindFloat, nil
	case "null":
		return relation.KindNull, nil
	}
	return 0, fmt.Errorf("marketplace client: unknown kind %q", s)
}

// DatasetFDs implements Market.
func (c *Client) DatasetFDs(ctx context.Context, name string) ([]fd.FD, error) {
	// Dataset names are seller-controlled free text: escape, or names with
	// spaces, '&' or '#' corrupt the query string.
	q := url.Values{"name": {name}}
	var wire []string
	if err := c.get(ctx, "/fds?"+q.Encode(), &wire); err != nil {
		return nil, err
	}
	out := make([]fd.FD, len(wire))
	for i, s := range wire {
		f, err := fd.Parse(s)
		if err != nil {
			return nil, err
		}
		out[i] = f
	}
	return out, nil
}

// QuoteProjection implements Market.
func (c *Client) QuoteProjection(ctx context.Context, name string, attrs []string) (float64, error) {
	var resp quoteResponse
	if err := c.post(ctx, "/quote", quoteRequest{Name: name, Attrs: attrs}, &resp); err != nil {
		return 0, err
	}
	return resp.Price, nil
}

// Sample implements Market.
func (c *Client) Sample(ctx context.Context, name string, joinAttrs []string, rate float64, seed uint64) (*relation.Table, float64, error) {
	key := c.idemKey("sample", append(append([]string{name},
		joinAttrs...), formatRate(rate), strconv.FormatUint(seed, 10))...)
	var resp wireTableResponse
	if err := c.postIdem(ctx, "/sample", key, sampleRequest{Name: name, JoinAttrs: joinAttrs, Rate: rate, Seed: seed}, &resp); err != nil {
		return nil, 0, err
	}
	t, err := relation.ReadCSV(name, strings.NewReader(resp.CSV))
	if err != nil {
		return nil, 0, err
	}
	return t, resp.Price, nil
}

func formatRate(r float64) string { return strconv.FormatFloat(r, 'g', -1, 64) }

// sampleDeltaCall is one raw POST /sample_delta (idempotent across retries).
func (c *Client) sampleDeltaCall(ctx context.Context, name string, joinAttrs []string, fromRate, toRate float64, seed uint64) (*relation.Table, float64, error) {
	key := c.idemKey("sample_delta", append(append([]string{name},
		joinAttrs...), formatRate(fromRate), formatRate(toRate), strconv.FormatUint(seed, 10))...)
	var resp wireTableResponse
	err := c.postIdem(ctx, "/sample_delta", key, sampleDeltaRequest{
		Name: name, JoinAttrs: joinAttrs, FromRate: fromRate, ToRate: toRate, Seed: seed,
	}, &resp)
	if err != nil {
		return nil, 0, err
	}
	t, err := relation.ReadCSV(name, strings.NewReader(resp.CSV))
	if err != nil {
		return nil, 0, err
	}
	return t, resp.Price, nil
}

// sampleDeltaFallback serves SampleDelta against a pre-delta server: buy the
// full toRate sample and filter it down to the delta rows locally —
// functionally identical, but billed at the full sample price, since an old
// server has no way to charge for a difference.
func (c *Client) sampleDeltaFallback(ctx context.Context, name string, joinAttrs []string, fromRate, toRate float64, seed uint64) (*relation.Table, float64, error) {
	if fromRate < 0 || fromRate >= toRate || toRate > 1 {
		return nil, 0, fmt.Errorf("marketplace client: sample delta rates (%v, %v] not within 0 ≤ from < to ≤ 1: %w",
			fromRate, toRate, ErrBadRate)
	}
	t, price, err := c.Sample(ctx, name, joinAttrs, toRate, seed)
	if err != nil {
		return nil, 0, err
	}
	// Re-running the range sampler over the bought sample keeps exactly the
	// (fromRate, toRate] rows in canonical hash-unit order — even when the
	// old server delivered table-order samples — so a store merging this
	// fallback delta still reproduces the fresh sample bit for bit.
	d, err := sampling.CorrelatedSampleRange(t, joinAttrs, fromRate, toRate, sampling.NewHasher(seed))
	if err != nil {
		return nil, 0, err
	}
	return d, price, nil
}

// SampleDelta implements Market. The first call probes whether the server
// has /sample_delta at all (pre-delta servers answer with a routing-layer
// 404/405); the verdict is remembered for the client's lifetime, and
// concurrent first calls share one probe instead of each paying for a
// full-price fallback Sample. Against a pre-delta server every call takes
// the local-filter fallback (see sampleDeltaFallback).
func (c *Client) SampleDelta(ctx context.Context, name string, joinAttrs []string, fromRate, toRate float64, seed uint64) (*relation.Table, float64, error) {
	for {
		c.probeMu.Lock()
		switch c.probeState {
		case probeUnsupported:
			c.probeMu.Unlock()
			return c.sampleDeltaFallback(ctx, name, joinAttrs, fromRate, toRate, seed)

		case probeSupported:
			c.probeMu.Unlock()
			t, price, err := c.sampleDeltaCall(ctx, name, joinAttrs, fromRate, toRate, seed)
			if errors.Is(err, errEndpointUnsupported) {
				// The server lost the endpoint (a rollback behind the same
				// URL); downgrade once and fall back like everyone after us.
				c.probeMu.Lock()
				c.probeState = probeUnsupported
				c.probeMu.Unlock()
				return c.sampleDeltaFallback(ctx, name, joinAttrs, fromRate, toRate, seed)
			}
			return t, price, err

		case probeInFlight:
			done := c.probeDone
			c.probeMu.Unlock()
			select {
			case <-done:
				// Re-read the verdict; a transiently failed probe resets to
				// unknown and this caller becomes the next prober.
			case <-ctx.Done():
				return nil, 0, ctx.Err()
			}

		default: // probeUnknown: become the prober
			c.probeState = probeInFlight
			done := make(chan struct{})
			c.probeDone = done
			c.probeMu.Unlock()
			t, price, err := c.sampleDeltaCall(ctx, name, joinAttrs, fromRate, toRate, seed)
			verdict := probeUnknown // transient failure: next caller re-probes
			switch {
			case err == nil:
				verdict = probeSupported
			case errors.Is(err, errEndpointUnsupported):
				verdict = probeUnsupported
			}
			c.probeMu.Lock()
			c.probeState = verdict
			c.probeDone = nil
			c.probeMu.Unlock()
			close(done)
			if verdict == probeUnsupported {
				return c.sampleDeltaFallback(ctx, name, joinAttrs, fromRate, toRate, seed)
			}
			return t, price, err
		}
	}
}

// ExecuteProjection implements Market.
func (c *Client) ExecuteProjection(ctx context.Context, q pricing.Query) (*relation.Table, float64, error) {
	key := c.idemKey("query", append([]string{q.Instance}, q.Attrs...)...)
	var resp wireTableResponse
	if err := c.postIdem(ctx, "/query", key, quoteRequest{Name: q.Instance, Attrs: q.Attrs}, &resp); err != nil {
		return nil, 0, err
	}
	t, err := relation.ReadCSV(q.Instance, strings.NewReader(resp.CSV))
	if err != nil {
		return nil, 0, err
	}
	return t, resp.Price, nil
}
