package marketplace

import (
	"sync"
	"testing"

	"github.com/dance-db/dance/internal/pricing"
)

// The marketplace serves many shoppers at once (and the HTTP handler calls
// it from concurrent goroutines); quotes, samples, purchases and ledger
// reads must be safe to interleave. Run with -race for full value.
func TestConcurrentShoppers(t *testing.T) {
	m := demoMarket()
	const shoppers = 16
	var wg sync.WaitGroup
	errs := make(chan error, shoppers*4)
	for i := 0; i < shoppers; i++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			if _, err := m.Catalog(bg); err != nil {
				errs <- err
			}
			if _, err := m.QuoteProjection(bg, "alpha", []string{"k", "state"}); err != nil {
				errs <- err
			}
			if _, _, err := m.Sample(bg, "alpha", []string{"k"}, 0.5, seed); err != nil {
				errs <- err
			}
			if _, _, err := m.ExecuteProjection(bg, pricing.Query{Instance: "beta", Attrs: []string{"k"}}); err != nil {
				errs <- err
			}
			m.Ledger().Total()
		}(uint64(i))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	entries := m.Ledger().Entries()
	if len(entries) != shoppers*2 { // one sample + one query per shopper
		t.Fatalf("ledger entries = %d, want %d", len(entries), shoppers*2)
	}
}

func TestConcurrentRegisterAndBrowse(t *testing.T) {
	m := demoMarket()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(2)
		go func(i int) {
			defer wg.Done()
			m.Register(demoTable("alpha", 50+i, int64(i)), nil)
		}(i)
		go func() {
			defer wg.Done()
			if _, err := m.Catalog(bg); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	cat, err := m.Catalog(bg)
	if err != nil || len(cat) != 2 {
		t.Fatalf("catalog after concurrent re-registration: %v, %v", cat, err)
	}
}
