package marketplace

import (
	"context"
	"math/rand"
	"net/http/httptest"
	"testing"

	"github.com/dance-db/dance/internal/fd"
	"github.com/dance-db/dance/internal/pricing"
	"github.com/dance-db/dance/internal/relation"
)

// bg is the do-not-cancel context most tests run under.
var bg = context.Background()

func demoTable(name string, n int, seed int64) *relation.Table {
	rng := rand.New(rand.NewSource(seed))
	t := relation.NewTable(name, relation.NewSchema(
		relation.Cat("k", relation.KindInt),
		relation.Cat("state", relation.KindString),
		relation.Num("amount", relation.KindFloat),
	))
	states := []string{"NJ", "NY", "CA"}
	for i := 0; i < n; i++ {
		k := int64(rng.Intn(12))
		t.AppendValues(
			relation.IntValue(k),
			relation.StringValue(states[k%3]),
			relation.FloatValue(rng.Float64()*100),
		)
	}
	return t
}

func demoMarket() *InMemory {
	m := NewInMemory(nil)
	m.Register(demoTable("alpha", 200, 1), []fd.FD{fd.New("state", "k")})
	m.Register(demoTable("beta", 150, 2), nil)
	return m
}

func TestCatalog(t *testing.T) {
	m := demoMarket()
	cat, err := m.Catalog(bg)
	if err != nil {
		t.Fatal(err)
	}
	if len(cat) != 2 || cat[0].Name != "alpha" || cat[1].Name != "beta" {
		t.Fatalf("catalog = %+v", cat)
	}
	if cat[0].Rows != 200 || len(cat[0].Attrs) != 3 {
		t.Fatalf("catalog[0] = %+v", cat[0])
	}
}

func TestDatasetFDs(t *testing.T) {
	m := demoMarket()
	fds, err := m.DatasetFDs(bg, "alpha")
	if err != nil || len(fds) != 1 || fds[0].String() != "k → state" {
		t.Fatalf("fds = %v, %v", fds, err)
	}
	if _, err := m.DatasetFDs(bg, "missing"); err == nil {
		t.Fatal("unknown dataset should error")
	}
}

func TestQuoteIsFreeAndConsistent(t *testing.T) {
	m := demoMarket()
	p1, err := m.QuoteProjection(bg, "alpha", []string{"k", "state"})
	if err != nil || p1 <= 0 {
		t.Fatalf("quote = %v, %v", p1, err)
	}
	p2, _ := m.QuoteProjection(bg, "alpha", []string{"k", "state"})
	if p1 != p2 {
		t.Fatal("quotes must be stable")
	}
	if m.Ledger().Total() != 0 {
		t.Fatal("quotes must not be charged")
	}
}

func TestSampleChargesAndIsCorrelated(t *testing.T) {
	m := demoMarket()
	s, price, err := m.Sample(bg, "alpha", []string{"k"}, 0.5, 7)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumRows() == 0 || s.NumRows() >= 200 {
		t.Fatalf("sample rows = %d", s.NumRows())
	}
	if price <= 0 {
		t.Fatal("sample should be charged")
	}
	full, _ := m.QuoteProjection(bg, "alpha", []string{"k", "state", "amount"})
	if price != pricing.SampleDiscount(full, 0.5) {
		t.Fatalf("sample price %v != discounted full price %v", price, pricing.SampleDiscount(full, 0.5))
	}
	if got := m.Ledger().TotalByKind("sample"); got != price {
		t.Fatalf("ledger sample total = %v, want %v", got, price)
	}
	if _, _, err := m.Sample(bg, "alpha", []string{"k"}, 0, 7); err == nil {
		t.Fatal("rate 0 should error")
	}
	if _, _, err := m.Sample(bg, "alpha", []string{"k"}, 1.5, 7); err == nil {
		t.Fatal("rate > 1 should error")
	}
}

func TestExecuteProjection(t *testing.T) {
	m := demoMarket()
	tab, price, err := m.ExecuteProjection(bg, pricing.Query{Instance: "beta", Attrs: []string{"state", "k"}})
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 150 || tab.NumCols() != 2 {
		t.Fatalf("projection shape %dx%d", tab.NumRows(), tab.NumCols())
	}
	quote, _ := m.QuoteProjection(bg, "beta", []string{"k", "state"})
	if price != quote {
		t.Fatalf("charged %v, quoted %v", price, quote)
	}
	if got := m.Ledger().TotalByKind("query"); got != price {
		t.Fatalf("ledger query total = %v", got)
	}
	if _, _, err := m.ExecuteProjection(bg, pricing.Query{Instance: "zz", Attrs: []string{"k"}}); err == nil {
		t.Fatal("unknown dataset should error")
	}
}

func TestRegisterReplaces(t *testing.T) {
	m := demoMarket()
	m.Register(demoTable("alpha", 50, 3), nil)
	cat, _ := m.Catalog(bg)
	if len(cat) != 2 {
		t.Fatalf("catalog length changed: %d", len(cat))
	}
	if cat[0].Rows != 50 {
		t.Fatal("replacement did not take effect")
	}
}

func TestLedgerEntries(t *testing.T) {
	m := demoMarket()
	m.Sample(bg, "alpha", []string{"k"}, 0.5, 1)
	m.ExecuteProjection(bg, pricing.Query{Instance: "beta", Attrs: []string{"k"}})
	entries := m.Ledger().Entries()
	if len(entries) != 2 {
		t.Fatalf("entries = %d", len(entries))
	}
	if m.Ledger().Total() <= 0 {
		t.Fatal("total should be positive")
	}
}

// --- HTTP round trip ---

func TestHTTPRoundTrip(t *testing.T) {
	backend := demoMarket()
	srv := httptest.NewServer(Handler(backend))
	defer srv.Close()
	c := NewClient(srv.URL)

	cat, err := c.Catalog(bg)
	if err != nil {
		t.Fatal(err)
	}
	if len(cat) != 2 || cat[0].Name != "alpha" || cat[0].Attrs[2].Name != "amount" {
		t.Fatalf("catalog over http = %+v", cat)
	}
	if cat[0].Attrs[2].Kind != relation.KindFloat || cat[0].Attrs[2].Categorical {
		t.Fatalf("column metadata lost: %+v", cat[0].Attrs[2])
	}

	fds, err := c.DatasetFDs(bg, "alpha")
	if err != nil || len(fds) != 1 || fds[0].RHS != "state" {
		t.Fatalf("fds over http = %v, %v", fds, err)
	}

	quote, err := c.QuoteProjection(bg, "alpha", []string{"k"})
	if err != nil || quote <= 0 {
		t.Fatalf("quote over http = %v, %v", quote, err)
	}
	direct, _ := backend.QuoteProjection(bg, "alpha", []string{"k"})
	if quote != direct {
		t.Fatalf("http quote %v != direct %v", quote, direct)
	}

	s, price, err := c.Sample(bg, "alpha", []string{"k"}, 0.5, 7)
	if err != nil {
		t.Fatal(err)
	}
	direct2, _, _ := backend.Sample(bg, "alpha", []string{"k"}, 0.5, 7)
	if s.NumRows() != direct2.NumRows() {
		t.Fatalf("http sample %d rows != direct %d", s.NumRows(), direct2.NumRows())
	}
	if price <= 0 {
		t.Fatal("sample price missing")
	}
	if !s.Schema.Equal(direct2.Schema) {
		t.Fatal("schema lost over the wire")
	}

	tab, _, err := c.ExecuteProjection(bg, pricing.Query{Instance: "beta", Attrs: []string{"k", "state"}})
	if err != nil || tab.NumRows() != 150 {
		t.Fatalf("query over http: %v rows, err %v", tab.NumRows(), err)
	}
}

func TestHTTPErrorPropagation(t *testing.T) {
	srv := httptest.NewServer(Handler(demoMarket()))
	defer srv.Close()
	c := NewClient(srv.URL)
	if _, err := c.DatasetFDs(bg, "missing"); err == nil {
		t.Fatal("remote error should propagate")
	}
	if _, err := c.QuoteProjection(bg, "alpha", []string{"nope"}); err == nil {
		t.Fatal("bad attribute should propagate")
	}
	if _, _, err := c.Sample(bg, "alpha", []string{"k"}, -1, 1); err == nil {
		t.Fatal("bad rate should propagate")
	}
}
