// Package marketplace implements the online data marketplace DANCE buys
// from: a catalog of relational instances with schema-level metadata (free),
// correlated-sample service (paid, discounted by sampling rate), exact price
// quotes for projection queries (free, query-based pricing), and projection
// query execution (paid). A JSON-over-HTTP server and client make the
// marketplace genuinely "online"; DANCE works identically against the
// in-memory and remote implementations.
package marketplace

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"github.com/dance-db/dance/internal/fd"
	"github.com/dance-db/dance/internal/pricing"
	"github.com/dance-db/dance/internal/relation"
	"github.com/dance-db/dance/internal/sampling"
)

// Typed sentinel errors, so callers — the HTTP handler above all — can map
// failures to the right wire status (404 vs 400) instead of a generic 500.
// Test with errors.Is; implementations wrap them with context.
var (
	// ErrUnknownDataset marks requests naming a dataset the marketplace
	// does not list.
	ErrUnknownDataset = errors.New("unknown dataset")
	// ErrBadRate marks sampling requests whose rate (or rate range) is
	// outside the valid domain.
	ErrBadRate = errors.New("sample rate out of range")
)

// DatasetInfo is the free schema-level description of a listing (what Azure
// Marketplace-style platforms expose for browsing).
type DatasetInfo struct {
	Name  string
	Rows  int
	Attrs []relation.Column
}

// Market is the full marketplace API used by DANCE. Every call takes a
// context: marketplaces are *online* services, so callers own deadlines and
// cancellation. Implementations must return promptly (with an error wrapping
// ctx.Err()) once the context is done.
type Market interface {
	// Catalog lists all datasets with schema-level info. Free.
	Catalog(ctx context.Context) ([]DatasetInfo, error)
	// DatasetFDs returns the published AFDs of a dataset. Free metadata.
	DatasetFDs(ctx context.Context, name string) ([]fd.FD, error)
	// QuoteProjection prices π_attrs(dataset) without purchasing. Free.
	QuoteProjection(ctx context.Context, name string, attrs []string) (float64, error)
	// Sample returns a correlated sample of the dataset on the given join
	// attributes at the given rate and hash seed, charging
	// rate × full price. All attributes are included (DANCE estimates
	// arbitrary correlations on samples). Samples are delivered in the
	// canonical hash-unit order (sampling.CorrelatedSampleRange), so a
	// lower-rate sample is a strict prefix of any higher-rate one.
	Sample(ctx context.Context, name string, joinAttrs []string, rate float64, seed uint64) (*relation.Table, float64, error)
	// SampleDelta returns only the rows whose sampling unit falls in
	// (fromRate, toRate] — the rows a holder of the rate-fromRate sample is
	// missing from the rate-toRate sample — charging the price difference
	// SampleDiscount(full, toRate) − SampleDiscount(full, fromRate).
	// Appending the delta to the rate-fromRate sample reproduces the fresh
	// rate-toRate sample exactly. Requires 0 ≤ fromRate < toRate ≤ 1
	// (ErrBadRate otherwise); fromRate 0 degenerates to a full Sample at
	// toRate.
	SampleDelta(ctx context.Context, name string, joinAttrs []string, fromRate, toRate float64, seed uint64) (*relation.Table, float64, error)
	// ExecuteProjection sells π_attrs(dataset), charging the quoted price.
	ExecuteProjection(ctx context.Context, q pricing.Query) (*relation.Table, float64, error)
}

// Listing is one dataset offered for sale.
type Listing struct {
	Table *relation.Table
	FDs   []fd.FD
}

// LedgerEntry records one charge.
type LedgerEntry struct {
	Kind    string // "sample" or "query"
	Dataset string
	Attrs   []string
	Amount  float64
}

// Ledger accumulates charges; safe for concurrent use.
type Ledger struct {
	mu      sync.Mutex    // lockorder: leaf
	entries []LedgerEntry // guarded by mu
}

// Add appends a charge.
func (l *Ledger) Add(e LedgerEntry) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.entries = append(l.entries, e)
}

// Total returns the sum of all charges.
func (l *Ledger) Total() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	t := 0.0
	for _, e := range l.entries {
		t += e.Amount
	}
	return t
}

// TotalByKind returns the summed charges for one kind.
func (l *Ledger) TotalByKind(kind string) float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	t := 0.0
	for _, e := range l.entries {
		if e.Kind == kind {
			t += e.Amount
		}
	}
	return t
}

// Entries returns a copy of all charges.
func (l *Ledger) Entries() []LedgerEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]LedgerEntry(nil), l.entries...)
}

// InMemory is the reference marketplace implementation.
type InMemory struct {
	mu       sync.RWMutex
	listings map[string]*Listing // guarded by mu
	order    []string            // guarded by mu
	model    pricing.Model
	ledger   *Ledger
}

var _ Market = (*InMemory)(nil)

// NewInMemory creates a marketplace priced by model (nil = cached default
// entropy model).
func NewInMemory(model pricing.Model) *InMemory {
	if model == nil {
		model = pricing.Cached(pricing.DefaultEntropyModel())
	}
	return &InMemory{
		listings: make(map[string]*Listing),
		model:    model,
		ledger:   &Ledger{},
	}
}

// Register lists a dataset for sale. Registering the same name twice
// replaces the listing.
func (m *InMemory) Register(table *relation.Table, fds []fd.FD) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, exists := m.listings[table.Name]; !exists {
		m.order = append(m.order, table.Name)
	}
	m.listings[table.Name] = &Listing{Table: table, FDs: fds}
}

// Ledger exposes the marketplace's billing record.
func (m *InMemory) Ledger() *Ledger { return m.ledger }

func (m *InMemory) listing(name string) (*Listing, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	l, ok := m.listings[name]
	if !ok {
		return nil, fmt.Errorf("marketplace: no dataset %q: %w", name, ErrUnknownDataset)
	}
	return l, nil
}

// Catalog implements Market.
func (m *InMemory) Catalog(ctx context.Context) ([]DatasetInfo, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]DatasetInfo, 0, len(m.order))
	for _, name := range m.order {
		l := m.listings[name]
		out = append(out, DatasetInfo{
			Name:  name,
			Rows:  l.Table.NumRows(),
			Attrs: l.Table.Schema.Columns(),
		})
	}
	return out, nil
}

// DatasetFDs implements Market.
func (m *InMemory) DatasetFDs(ctx context.Context, name string) ([]fd.FD, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	l, err := m.listing(name)
	if err != nil {
		return nil, err
	}
	return append([]fd.FD(nil), l.FDs...), nil
}

// QuoteProjection implements Market.
func (m *InMemory) QuoteProjection(ctx context.Context, name string, attrs []string) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	l, err := m.listing(name)
	if err != nil {
		return 0, err
	}
	return m.model.PriceProjection(l.Table, attrs)
}

// Sample implements Market. The rate is validated before the listing
// lookup, so a request that is wrong in both ways reports the caller's
// input error (400 on the wire) rather than the lookup failure.
func (m *InMemory) Sample(ctx context.Context, name string, joinAttrs []string, rate float64, seed uint64) (*relation.Table, float64, error) {
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	if rate <= 0 || rate > 1 {
		return nil, 0, fmt.Errorf("marketplace: sample rate %v out of (0, 1]: %w", rate, ErrBadRate)
	}
	l, err := m.listing(name)
	if err != nil {
		return nil, 0, err
	}
	s, err := sampling.CorrelatedSampleRange(l.Table, joinAttrs, 0, rate, sampling.NewHasher(seed))
	if err != nil {
		return nil, 0, err
	}
	full, err := m.model.PriceProjection(l.Table, l.Table.Schema.Names())
	if err != nil {
		return nil, 0, err
	}
	price := pricing.SampleDiscount(full, rate)
	m.ledger.Add(LedgerEntry{Kind: "sample", Dataset: name, Attrs: joinAttrs, Amount: price})
	return s, price, nil
}

// SampleDelta implements Market: the incremental top-up between two sample
// rates, billed at the price difference. The escalation loop of the
// middleware buys these instead of re-buying complete samples every round.
func (m *InMemory) SampleDelta(ctx context.Context, name string, joinAttrs []string, fromRate, toRate float64, seed uint64) (*relation.Table, float64, error) {
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	if fromRate < 0 || fromRate >= toRate || toRate > 1 {
		return nil, 0, fmt.Errorf("marketplace: sample delta rates (%v, %v] not within 0 ≤ from < to ≤ 1: %w",
			fromRate, toRate, ErrBadRate)
	}
	l, err := m.listing(name)
	if err != nil {
		return nil, 0, err
	}
	s, err := sampling.CorrelatedSampleRange(l.Table, joinAttrs, fromRate, toRate, sampling.NewHasher(seed))
	if err != nil {
		return nil, 0, err
	}
	full, err := m.model.PriceProjection(l.Table, l.Table.Schema.Names())
	if err != nil {
		return nil, 0, err
	}
	price := pricing.SampleDiscount(full, toRate) - pricing.SampleDiscount(full, fromRate)
	m.ledger.Add(LedgerEntry{Kind: "sample_delta", Dataset: name, Attrs: joinAttrs, Amount: price})
	return s, price, nil
}

// ExecuteProjection implements Market.
func (m *InMemory) ExecuteProjection(ctx context.Context, q pricing.Query) (*relation.Table, float64, error) {
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	l, err := m.listing(q.Instance)
	if err != nil {
		return nil, 0, err
	}
	attrs := append([]string(nil), q.Attrs...)
	sort.Strings(attrs)
	price, err := m.model.PriceProjection(l.Table, attrs)
	if err != nil {
		return nil, 0, err
	}
	proj, err := l.Table.Project(attrs...)
	if err != nil {
		return nil, 0, err
	}
	m.ledger.Add(LedgerEntry{Kind: "query", Dataset: q.Instance, Attrs: attrs, Amount: price})
	return proj, price, nil
}
