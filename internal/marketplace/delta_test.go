package marketplace

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/dance-db/dance/internal/infotheory"
	"github.com/dance-db/dance/internal/pricing"
	"github.com/dance-db/dance/internal/relation"
	"github.com/dance-db/dance/internal/tpce"
	"github.com/dance-db/dance/internal/tpch"
)

// mixedKeyTable exercises the int/float key unification: the join attribute
// holds IntValue(k) in some rows and FloatValue(k.0) in others, which must
// hash (and dictionary-encode) identically.
func mixedKeyTable() *relation.Table {
	t := relation.NewTable("mixed", relation.NewSchema(
		relation.Cat("k", relation.KindFloat),
		relation.Num("v", relation.KindFloat),
	))
	for i := 0; i < 240; i++ {
		k := int64(i % 17)
		if i%3 == 0 {
			t.AppendValues(relation.FloatValue(float64(k)), relation.FloatValue(float64(i)))
		} else {
			t.AppendValues(relation.IntValue(k), relation.FloatValue(float64(i)))
		}
	}
	return t
}

// nullHeavyTable has NULLs in the join attribute (never sampled below rate
// 1, always delivered at rate 1) and in measure columns.
func nullHeavyTable() *relation.Table {
	t := relation.NewTable("nullish", relation.NewSchema(
		relation.Cat("k", relation.KindInt),
		relation.Cat("tag", relation.KindString),
		relation.Num("v", relation.KindFloat),
	))
	for i := 0; i < 300; i++ {
		k := relation.IntValue(int64(i % 23))
		if i%7 == 0 {
			k = relation.Null()
		}
		v := relation.FloatValue(float64(i % 41))
		if i%5 == 0 {
			v = relation.Null()
		}
		t.AppendValues(k, relation.StringValue(string(rune('a'+i%4))), v)
	}
	return t
}

func rowsEqual(t *testing.T, label string, a, b *relation.Table) {
	t.Helper()
	if a.NumRows() != b.NumRows() {
		t.Fatalf("%s: %d rows != %d rows", label, a.NumRows(), b.NumRows())
	}
	all := make([]int, a.Schema.Len())
	for i := range all {
		all[i] = i
	}
	var ba, bb []byte
	for i := range a.Rows {
		ba = relation.EncodeKey(ba[:0], a.Rows[i], all)
		bb = relation.EncodeKey(bb[:0], b.Rows[i], all)
		if string(ba) != string(bb) {
			t.Fatalf("%s: row %d differs: %v vs %v", label, i, a.Rows[i], b.Rows[i])
		}
	}
}

func columnarEqual(t *testing.T, label string, a, b *relation.Columnar) {
	t.Helper()
	if a.NumRows() != b.NumRows() {
		t.Fatalf("%s: columnar %d rows != %d", label, a.NumRows(), b.NumRows())
	}
	for j := 0; j < a.Schema().Len(); j++ {
		ca, cb := a.Codes(j), b.Codes(j)
		if (ca == nil) != (cb == nil) {
			t.Fatalf("%s: column %d storage mode differs", label, j)
		}
		if a.DictLen(j) != b.DictLen(j) {
			t.Fatalf("%s: column %d dict %d != %d", label, j, a.DictLen(j), b.DictLen(j))
		}
		for i := range ca {
			if ca[i] != cb[i] {
				t.Fatalf("%s: column %d row %d code %d != %d", label, j, i, ca[i], cb[i])
			}
		}
	}
}

// TestSampleDeltaMergeEquivalence pins the tentpole invariant: for any
// ρ < ρ′, Sample(ρ) ++ SampleDelta(ρ, ρ′) is bit-identical to a fresh
// Sample(ρ′) — rows, columnar dictionary codes, and metric values — across
// TPC-H, TPC-E, NULL-heavy and mixed int/float-key tables.
func TestSampleDeltaMergeEquivalence(t *testing.T) {
	const seed = 11
	tpchD := tpch.Generate(tpch.Config{Scale: 1, Seed: 2, DirtyFraction: 0.3})
	tpceD := tpce.Generate(tpce.Config{Scale: 1, Seed: 3, DirtyFraction: 0.2})

	type tcase struct {
		table *relation.Table
		on    []string
	}
	cases := []tcase{
		{tpchD.Table("orders"), []string{"custkey"}},
		{tpchD.Table("lineitem"), []string{"orderkey"}},
		{tpceD.Tables[2], []string{tpceD.Tables[2].Schema.Names()[0]}},
		{mixedKeyTable(), []string{"k"}},
		{nullHeavyTable(), []string{"k"}},
	}
	ladder := [][2]float64{{0.1, 0.3}, {0.3, 0.7}, {0.45, 1}, {0.05, 0.06}}

	for _, tc := range cases {
		m := NewInMemory(nil)
		m.Register(tc.table, nil)
		for _, pair := range ladder {
			lo, hi := pair[0], pair[1]
			base, basePrice, err := m.Sample(bg, tc.table.Name, tc.on, lo, seed)
			if err != nil {
				t.Fatal(err)
			}
			delta, deltaPrice, err := m.SampleDelta(bg, tc.table.Name, tc.on, lo, hi, seed)
			if err != nil {
				t.Fatal(err)
			}
			fresh, freshPrice, err := m.Sample(bg, tc.table.Name, tc.on, hi, seed)
			if err != nil {
				t.Fatal(err)
			}
			label := tc.table.Name + " " + pair2s(lo, hi)

			// The delta bills exactly the discount difference.
			full, err := m.QuoteProjection(bg, tc.table.Name, tc.table.Schema.Names())
			if err != nil {
				t.Fatal(err)
			}
			if want := pricing.SampleDiscount(full, hi) - pricing.SampleDiscount(full, lo); deltaPrice != want {
				t.Fatalf("%s: delta price %v != %v", label, deltaPrice, want)
			}
			// Escalating (base + delta) is strictly cheaper than re-buying
			// the fresh sample on top of the base.
			if deltaPrice >= freshPrice {
				t.Fatalf("%s: delta %v not cheaper than fresh sample %v", label, deltaPrice, freshPrice)
			}
			_ = basePrice

			merged, err := base.Concat(delta)
			if err != nil {
				t.Fatal(err)
			}
			rowsEqual(t, label, merged, fresh)

			// Columnar path: appending the delta to the encoded base must
			// reproduce the fresh encoding code for code.
			mc, err := relation.ToColumnar(base).AppendTable(delta)
			if err != nil {
				t.Fatal(err)
			}
			columnarEqual(t, label, mc, relation.ToColumnar(fresh))

			// Metric values are bit-identical (same rows, same order, same
			// summation order), on both representations.
			names := tc.table.Schema.Names()
			x, y := names[:1], names[1:2]
			if fresh.NumRows() == 0 {
				continue
			}
			cm, err1 := infotheory.Correlation(merged, x, y)
			cf, err2 := infotheory.Correlation(fresh, x, y)
			if err1 != nil || err2 != nil {
				t.Fatalf("%s: correlation errs %v %v", label, err1, err2)
			}
			if cm != cf {
				t.Fatalf("%s: row-path correlation %v != %v", label, cm, cf)
			}
			ccm, err1 := infotheory.CorrelationColumnar(mc, x, y)
			ccf, err2 := infotheory.CorrelationColumnar(relation.ToColumnar(fresh), x, y)
			if err1 != nil || err2 != nil {
				t.Fatalf("%s: columnar correlation errs %v %v", label, err1, err2)
			}
			if ccm != ccf || ccm != cm {
				t.Fatalf("%s: columnar correlation %v / %v / row %v", label, ccm, ccf, cm)
			}
			em, err1 := infotheory.Entropy(merged, names[0])
			ef, err2 := infotheory.Entropy(fresh, names[0])
			if err1 != nil || err2 != nil || em != ef {
				t.Fatalf("%s: entropy %v != %v (%v, %v)", label, em, ef, err1, err2)
			}
		}
	}
}

func pair2s(lo, hi float64) string { return fmt.Sprintf("(%g,%g]", lo, hi) }

// TestSampleRateValidationOrder pins the satellite: the rate is validated
// before the listing lookup, with typed sentinels.
func TestSampleRateValidationOrder(t *testing.T) {
	m := demoMarket()
	if _, _, err := m.Sample(bg, "no-such-dataset", []string{"k"}, 7, 1); !errors.Is(err, ErrBadRate) {
		t.Fatalf("bad rate on unknown dataset should report the rate first: %v", err)
	}
	if _, _, err := m.Sample(bg, "no-such-dataset", []string{"k"}, 0.5, 1); !errors.Is(err, ErrUnknownDataset) {
		t.Fatalf("unknown dataset sentinel missing: %v", err)
	}
	if _, _, err := m.SampleDelta(bg, "alpha", []string{"k"}, 0.5, 0.5, 1); !errors.Is(err, ErrBadRate) {
		t.Fatalf("from == to should be ErrBadRate: %v", err)
	}
	if _, _, err := m.SampleDelta(bg, "alpha", []string{"k"}, -0.1, 0.5, 1); !errors.Is(err, ErrBadRate) {
		t.Fatalf("negative from should be ErrBadRate: %v", err)
	}
	if _, _, err := m.SampleDelta(bg, "alpha", []string{"k"}, 0.5, 1.5, 1); !errors.Is(err, ErrBadRate) {
		t.Fatalf("to > 1 should be ErrBadRate: %v", err)
	}
	if _, _, err := m.SampleDelta(bg, "zzz", []string{"k"}, 0.2, 0.5, 1); !errors.Is(err, ErrUnknownDataset) {
		t.Fatalf("unknown dataset sentinel missing on delta: %v", err)
	}
}

// TestSampleDeltaOverHTTP drives the new endpoint through the wire and
// checks it matches the in-memory behavior bit for bit (CSV round trip
// preserves values exactly).
func TestSampleDeltaOverHTTP(t *testing.T) {
	backend := demoMarket()
	srv := httptest.NewServer(Handler(backend))
	defer srv.Close()
	c := NewClient(srv.URL)

	remote, price, err := c.SampleDelta(bg, "alpha", []string{"k"}, 0.2, 0.7, 9)
	if err != nil {
		t.Fatal(err)
	}
	direct, directPrice, err := backend.SampleDelta(bg, "alpha", []string{"k"}, 0.2, 0.7, 9)
	if err != nil {
		t.Fatal(err)
	}
	if price != directPrice {
		t.Fatalf("delta price over http %v != direct %v", price, directPrice)
	}
	rowsEqual(t, "http delta", remote, direct)

	// Typed sentinels survive the wire.
	if _, _, err := c.SampleDelta(bg, "alpha", []string{"k"}, 0.9, 0.1, 9); !errors.Is(err, ErrBadRate) {
		t.Fatalf("bad rate over http: %v", err)
	}
	if _, _, err := c.SampleDelta(bg, "nope", []string{"k"}, 0.1, 0.9, 9); !errors.Is(err, ErrUnknownDataset) {
		t.Fatalf("unknown dataset over http: %v", err)
	}
}

// legacyHandler serves the pre-delta wire surface: /sample_delta does not
// exist, so the routing layer answers a plain 404.
func legacyHandler(m Market) http.Handler {
	inner := Handler(m)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/sample_delta") {
			http.NotFound(w, r)
			return
		}
		inner.ServeHTTP(w, r)
	})
}

// TestSampleDeltaFallbackAgainstOldServer pins the capability probe: a
// server without /sample_delta triggers the full-Sample fallback, which
// returns the identical delta rows but bills the full sample price.
func TestSampleDeltaFallbackAgainstOldServer(t *testing.T) {
	backend := demoMarket()
	srv := httptest.NewServer(legacyHandler(backend))
	defer srv.Close()
	c := NewClient(srv.URL)

	got, price, err := c.SampleDelta(bg, "alpha", []string{"k"}, 0.2, 0.7, 9)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := backend.SampleDelta(bg, "alpha", []string{"k"}, 0.2, 0.7, 9)
	if err != nil {
		t.Fatal(err)
	}
	rowsEqual(t, "fallback delta", got, want)

	full, err := backend.QuoteProjection(bg, "alpha", []string{"k", "state", "amount"})
	if err != nil {
		t.Fatal(err)
	}
	if want := pricing.SampleDiscount(full, 0.7); price != want {
		t.Fatalf("fallback bills the full rate-0.7 sample (%v), got %v", want, price)
	}
	c.probeMu.Lock()
	cached := c.probeState == probeUnsupported
	c.probeMu.Unlock()
	if !cached {
		t.Fatal("capability probe result not cached")
	}

	// The full-rate fallback must deliver NULL-join rows too.
	nh := NewInMemory(nil)
	nh.Register(nullHeavyTable(), nil)
	srv2 := httptest.NewServer(legacyHandler(nh))
	defer srv2.Close()
	c2 := NewClient(srv2.URL)
	got2, _, err := c2.SampleDelta(bg, "nullish", []string{"k"}, 0.3, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	want2, _, err := nh.SampleDelta(bg, "nullish", []string{"k"}, 0.3, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	rowsEqual(t, "fallback full-rate delta", got2, want2)
}
