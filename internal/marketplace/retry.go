package marketplace

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"time"
)

// RetryPolicy drives the Client's retry loop for marketplace round trips.
// Transient failures — timeouts, connection resets, truncated bodies, 429s,
// and 5xx responses carrying no marketplace error payload — are retried with
// exponential backoff and jitter; errors the marketplace itself reported
// (unknown dataset, bad rate, priced-query failures) are surfaced at once.
// Paired with the Idempotency-Key header the Client sends on billing
// endpoints, a retried Sample/SampleDelta/ExecuteProjection never bills
// twice.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries, first included. Zero or one
	// disables retries.
	MaxAttempts int
	// BaseDelay seeds the exponential backoff (default 50ms when retrying).
	BaseDelay time.Duration
	// MaxDelay caps one backoff sleep (default 2s).
	MaxDelay time.Duration
	// PerTry bounds a single attempt; the next attempt starts when one
	// stalls past it. Zero leaves attempts bounded only by the call's
	// context (and the Client's fallback Timeout).
	PerTry time.Duration
	// Seed makes the jitter deterministic (for tests and the chaos
	// harness); zero uses a fixed default.
	Seed uint64
}

// DefaultRetryPolicy is what NewClient installs: four attempts, 50ms base
// backoff capped at 2s, 30s per try.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts: 4,
		BaseDelay:   50 * time.Millisecond,
		MaxDelay:    2 * time.Second,
		PerTry:      30 * time.Second,
	}
}

// transientError marks failures worth retrying. It wraps, so sentinel
// matching through errors.Is still reaches the underlying cause.
type transientError struct{ err error }

func (e *transientError) Error() string { return e.err.Error() }
func (e *transientError) Unwrap() error { return e.err }

func isTransient(err error) bool {
	var te *transientError
	return errors.As(err, &te)
}

// backoff returns the jittered sleep before the given retry (attempt ≥ 1:
// the number of tries already failed). Full jitter over the upper half of
// the exponential keeps herd retries spread out while preserving the
// exponential envelope.
func (c *Client) backoff(attempt int) time.Duration {
	base := c.Retry.BaseDelay
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	max := c.Retry.MaxDelay
	if max <= 0 {
		max = 2 * time.Second
	}
	d := base
	for i := 1; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	c.rngMu.Lock()
	if c.rng == nil {
		c.rng = rand.New(rand.NewSource(int64(c.Retry.Seed) ^ 0x64616e6365))
	}
	j := c.rng.Int63n(int64(d)/2 + 1)
	c.rngMu.Unlock()
	return d/2 + time.Duration(j)
}

// do runs one logical call: marshal-once body, retry loop, decode. idemKey
// rides every attempt so the server can deduplicate billing across retries.
func (c *Client) do(ctx context.Context, method, path, idemKey string, body []byte, out interface{}) error {
	ctx, cancel := c.callCtx(ctx)
	defer cancel()
	attempts := c.Retry.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	var last error
	for attempt := 1; ; attempt++ {
		err := c.attempt(ctx, method, path, idemKey, body, out)
		if err == nil {
			return nil
		}
		if !isTransient(err) {
			return err
		}
		last = err
		if attempt >= attempts || ctx.Err() != nil {
			break
		}
		t := time.NewTimer(c.backoff(attempt))
		select {
		case <-ctx.Done():
			t.Stop()
		case <-t.C:
		}
		if ctx.Err() != nil {
			break
		}
	}
	return fmt.Errorf("marketplace client: %s %s failed after retries: %w", method, path, last)
}

// attempt performs a single HTTP round trip under the per-try deadline.
func (c *Client) attempt(ctx context.Context, method, path, idemKey string, body []byte, out interface{}) error {
	tryCtx := ctx
	cancel := func() {}
	if c.Retry.PerTry > 0 {
		tryCtx, cancel = context.WithTimeout(ctx, c.Retry.PerTry)
	}
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(tryCtx, method, c.BaseURL+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if idemKey != "" {
		req.Header.Set(IdempotencyHeader, idemKey)
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		err = fmt.Errorf("marketplace client: %s %s: %w", method, path, err)
		if ctx.Err() == nil {
			// The overall call is still alive: a transport failure or a
			// per-try timeout is worth another attempt.
			return &transientError{err}
		}
		return err
	}
	defer resp.Body.Close()
	return decodeResponse(resp, out)
}
