package marketplace

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/dance-db/dance/internal/pricing"
)

// testRetryPolicy is fast enough for tests but otherwise shaped like the
// default: several attempts, exponential backoff, tight per-try timeout.
func testRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts: 4,
		BaseDelay:   time.Millisecond,
		MaxDelay:    10 * time.Millisecond,
		PerTry:      250 * time.Millisecond,
		Seed:        1,
	}
}

// flaky fails the first n requests per path in the given mode, then serves
// normally.
type flaky struct {
	inner http.Handler
	mode  string // "stall", "500", "truncate"
	n     int

	mu    sync.Mutex
	seen  map[string]int
	total atomic.Int64
}

func newFlaky(inner http.Handler, mode string, n int) *flaky {
	return &flaky{inner: inner, mode: mode, n: n, seen: make(map[string]int)}
}

func (f *flaky) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	f.total.Add(1)
	f.mu.Lock()
	f.seen[r.URL.Path]++
	fail := f.seen[r.URL.Path] <= f.n
	f.mu.Unlock()
	if !fail {
		f.inner.ServeHTTP(w, r)
		return
	}
	switch f.mode {
	case "stall":
		select {
		case <-r.Context().Done():
		case <-time.After(5 * time.Second):
		}
		panic(http.ErrAbortHandler)
	case "500":
		http.Error(w, "flaky: injected failure", http.StatusInternalServerError)
	case "truncate":
		rec := httptest.NewRecorder()
		f.inner.ServeHTTP(rec, r)
		body := rec.Body.Bytes()
		w.WriteHeader(rec.Code)
		w.Write(body[:len(body)/2])
		if fl, ok := w.(http.Flusher); ok {
			fl.Flush()
		}
		panic(http.ErrAbortHandler)
	}
}

func retryClient(t *testing.T, h http.Handler) (*Client, *httptest.Server) {
	t.Helper()
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	c := NewClient(srv.URL)
	c.Retry = testRetryPolicy()
	return c, srv
}

func TestRetryTimeoutThenSuccess(t *testing.T) {
	m := demoMarket()
	f := newFlaky(Handler(m), "stall", 1)
	c, _ := retryClient(t, f)
	cat, err := c.Catalog(bg)
	if err != nil {
		t.Fatalf("catalog after stall: %v", err)
	}
	if len(cat) != 2 {
		t.Fatalf("catalog = %+v", cat)
	}
	if got := f.total.Load(); got != 2 {
		t.Fatalf("server saw %d requests, want 2 (stall + retry)", got)
	}
}

func TestRetry500ThenSuccess(t *testing.T) {
	m := demoMarket()
	f := newFlaky(Handler(m), "500", 2)
	c, _ := retryClient(t, f)
	tab, price, err := c.Sample(bg, "alpha", []string{"k"}, 0.5, 7)
	if err != nil {
		t.Fatalf("sample after two 500s: %v", err)
	}
	if tab.NumRows() == 0 || price <= 0 {
		t.Fatalf("sample = %d rows, price %v", tab.NumRows(), price)
	}
	if got := f.total.Load(); got != 3 {
		t.Fatalf("server saw %d requests, want 3", got)
	}
}

func TestRetryMidBodyReset(t *testing.T) {
	m := demoMarket()
	f := newFlaky(Handler(m), "truncate", 1)
	c, _ := retryClient(t, f)
	tab, _, err := c.Sample(bg, "alpha", []string{"k"}, 0.5, 7)
	if err != nil {
		t.Fatalf("sample after truncated body: %v", err)
	}
	want, _, err := m.Sample(bg, "alpha", []string{"k"}, 0.5, 7)
	if err != nil {
		t.Fatal(err)
	}
	rowsEqual(t, "retried sample", tab, want)
}

func TestRetryBudgetExhaustionWrapsLastError(t *testing.T) {
	f := newFlaky(Handler(demoMarket()), "500", 100)
	c, _ := retryClient(t, f)
	_, err := c.Catalog(bg)
	if err == nil {
		t.Fatal("permanently failing server must error")
	}
	if !strings.Contains(err.Error(), "failed after retries") {
		t.Fatalf("exhaustion not reported: %v", err)
	}
	if !strings.Contains(err.Error(), "status 500") {
		t.Fatalf("last underlying error not wrapped: %v", err)
	}
	if got := f.total.Load(); got != int64(testRetryPolicy().MaxAttempts) {
		t.Fatalf("server saw %d requests, want %d", got, testRetryPolicy().MaxAttempts)
	}
}

func TestRetryDoesNotRepeatMarketplaceErrors(t *testing.T) {
	f := newFlaky(Handler(demoMarket()), "500", 0)
	c, _ := retryClient(t, f)
	if _, _, err := c.Sample(bg, "missing", []string{"k"}, 0.5, 7); !errors.Is(err, ErrUnknownDataset) {
		t.Fatalf("unknown dataset: %v", err)
	}
	if got := f.total.Load(); got != 1 {
		t.Fatalf("a marketplace-reported error was retried: %d requests", got)
	}
}

// TestRetryNeverDoubleBills pins the idempotency contract end to end: the
// server bills the first (truncated) execution, and the retry replays the
// recorded response instead of purchasing again.
func TestRetryNeverDoubleBills(t *testing.T) {
	m := demoMarket()
	f := newFlaky(Handler(m), "truncate", 1)
	c, _ := retryClient(t, f)

	tab, price, err := c.ExecuteProjection(bg, pricing.Query{Instance: "alpha", Attrs: []string{"k", "state"}})
	if err != nil {
		t.Fatalf("query after truncated body: %v", err)
	}
	if tab.NumRows() != 200 {
		t.Fatalf("query rows = %d", tab.NumRows())
	}
	if got := m.Ledger().Total(); got != price {
		t.Fatalf("retry double-billed: ledger %v, one purchase costs %v", got, price)
	}
	if got := f.total.Load(); got != 2 {
		t.Fatalf("server saw %d requests, want 2", got)
	}

	// A second deliberate purchase of the same projection bills again —
	// idempotency keys are per logical call, not per parameters.
	if _, _, err := c.ExecuteProjection(bg, pricing.Query{Instance: "alpha", Attrs: []string{"k", "state"}}); err != nil {
		t.Fatal(err)
	}
	if got := m.Ledger().Total(); got != 2*price {
		t.Fatalf("repeat purchase did not bill: ledger %v, want %v", got, 2*price)
	}
}

// TestIdempotentSampleBillsOnce drives the server-side cache directly: many
// concurrent requests sharing one key execute (and bill) the sample once.
func TestIdempotentSampleBillsOnce(t *testing.T) {
	m := demoMarket()
	srv := httptest.NewServer(Handler(m))
	defer srv.Close()

	body := `{"name":"alpha","join_attrs":["k"],"rate":0.5,"seed":7}`
	do := func() int {
		req, err := http.NewRequest(http.MethodPost, srv.URL+"/sample", strings.NewReader(body))
		if err != nil {
			t.Error(err)
			return 0
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(IdempotencyHeader, "one-key")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Error(err)
			return 0
		}
		defer resp.Body.Close()
		return resp.StatusCode
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if code := do(); code != http.StatusOK {
				t.Errorf("status %d", code)
			}
		}()
	}
	wg.Wait()
	if _, _, err := m.Sample(bg, "alpha", []string{"k"}, 0.5, 7); err != nil {
		t.Fatal(err)
	}
	// The direct Sample above billed once more; 8 keyed HTTP requests
	// together must have billed exactly once before it.
	if entries := m.Ledger().Entries(); len(entries) != 2 {
		t.Fatalf("ledger entries = %d, want 2 (one keyed batch + one direct)", len(entries))
	}
}

// TestNoDeltaProbeSingleFlight pins the capability probe against a pre-delta
// server: N concurrent first SampleDelta calls probe /sample_delta exactly
// once, and every call still returns the correct fallback delta.
func TestNoDeltaProbeSingleFlight(t *testing.T) {
	backend := demoMarket()
	var deltaHits atomic.Int64
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/sample_delta") {
			deltaHits.Add(1)
			http.NotFound(w, r)
			return
		}
		Handler(backend).ServeHTTP(w, r)
	})
	c, _ := retryClient(t, h)

	want, _, err := backend.SampleDelta(bg, "alpha", []string{"k"}, 0.2, 0.7, 9)
	if err != nil {
		t.Fatal(err)
	}
	const n = 8
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, _, err := c.SampleDelta(bg, "alpha", []string{"k"}, 0.2, 0.7, 9)
			if err != nil {
				t.Errorf("SampleDelta: %v", err)
				return
			}
			if got.NumRows() != want.NumRows() {
				t.Errorf("delta rows = %d, want %d", got.NumRows(), want.NumRows())
			}
		}()
	}
	wg.Wait()
	if got := deltaHits.Load(); got != 1 {
		t.Fatalf("probe hit /sample_delta %d times, want exactly 1", got)
	}
}

// TestDeltaProbeStaysSupported: against a delta-capable server the probe
// settles on supported and every concurrent call uses the real endpoint.
func TestDeltaProbeStaysSupported(t *testing.T) {
	backend := demoMarket()
	c, _ := retryClient(t, Handler(backend))
	const n = 6
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, err := c.SampleDelta(bg, "alpha", []string{"k"}, 0.2, 0.7, 9); err != nil {
				t.Errorf("SampleDelta: %v", err)
			}
		}()
	}
	wg.Wait()
	c.probeMu.Lock()
	state := c.probeState
	c.probeMu.Unlock()
	if state != probeSupported {
		t.Fatalf("probe state = %d, want supported", state)
	}
	// Deltas, not full samples, were billed.
	if m := backend.Ledger().TotalByKind("sample"); m != 0 {
		t.Fatalf("full samples billed on a delta-capable server: %v", m)
	}
	if m := backend.Ledger().TotalByKind("sample_delta"); m <= 0 {
		t.Fatal("no deltas billed")
	}
}
