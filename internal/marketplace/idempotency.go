package marketplace

import (
	"bytes"
	"net/http"
	"sync"
)

// IdempotencyHeader names the request header carrying a client-chosen key
// that makes billing endpoints safe to retry: the first request with a key
// executes (and bills) normally, and every later request with the same key
// replays the recorded response without touching the marketplace again.
const IdempotencyHeader = "Idempotency-Key"

// idemCacheCap bounds the completed responses an idempotency cache retains.
// Retries arrive within seconds of the original; holding the last few
// thousand completed purchases is far more history than any retry policy
// needs, while capping memory on long-lived servers.
const idemCacheCap = 4096

// idemEntry is one keyed request. done closes when the first execution
// finishes; status/ctype/body are written before the close and read only
// after it (or under the cache mutex), so replayers never see a torn entry.
type idemEntry struct {
	done   chan struct{}
	status int
	ctype  string
	body   []byte
}

// idempotencyCache deduplicates billing requests by Idempotency-Key. Only
// successful (HTTP 200) responses are remembered — the marketplace bills
// exactly on success, so replaying cached successes and re-executing
// failures together give the "retried calls never bill twice" contract.
type idempotencyCache struct {
	mu      sync.Mutex            // lockorder: leaf
	entries map[string]*idemEntry // guarded by mu
	order   []string              // guarded by mu; completed keys, oldest first
}

func newIdempotencyCache() *idempotencyCache {
	return &idempotencyCache{entries: make(map[string]*idemEntry)}
}

// recorder buffers a handler's response so the cache can decide whether to
// remember it before anything reaches the wire.
type recorder struct {
	status int
	header http.Header
	body   bytes.Buffer
}

func newRecorder() *recorder {
	return &recorder{status: http.StatusOK, header: make(http.Header)}
}

func (r *recorder) Header() http.Header         { return r.header }
func (r *recorder) WriteHeader(code int)        { r.status = code }
func (r *recorder) Write(p []byte) (int, error) { return r.body.Write(p) }

// wrap makes next idempotent under the Idempotency-Key header. Requests
// without the header pass straight through.
func (c *idempotencyCache) wrap(next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		key := r.Header.Get(IdempotencyHeader)
		if key == "" {
			next(w, r)
			return
		}
		for {
			c.mu.Lock()
			if e, ok := c.entries[key]; ok {
				c.mu.Unlock()
				select {
				case <-e.done:
				case <-r.Context().Done():
					http.Error(w, "canceled while awaiting idempotent twin", http.StatusGatewayTimeout)
					return
				}
				if e.status == 0 {
					// The first execution failed and was forgotten; this
					// retry re-executes it.
					continue
				}
				if e.ctype != "" {
					w.Header().Set("Content-Type", e.ctype)
				}
				w.WriteHeader(e.status)
				w.Write(e.body)
				return
			}
			e := &idemEntry{done: make(chan struct{})}
			c.entries[key] = e
			c.mu.Unlock()

			rec := newRecorder()
			next(rec, r)

			c.mu.Lock()
			if rec.status == http.StatusOK {
				e.status = rec.status
				e.ctype = rec.header.Get("Content-Type")
				e.body = rec.body.Bytes()
				c.order = append(c.order, key)
				for len(c.order) > idemCacheCap {
					delete(c.entries, c.order[0])
					c.order = c.order[1:]
				}
			} else {
				// Failures are not cached: a retry must re-execute, and the
				// marketplace billed nothing for the failed try.
				delete(c.entries, key)
			}
			c.mu.Unlock()
			close(e.done)

			for k, vs := range rec.header {
				w.Header()[k] = vs
			}
			w.WriteHeader(rec.status)
			w.Write(rec.body.Bytes())
			return
		}
	}
}
