// Package policy defines the AcquisitionPolicy interface: a pluggable
// strategy for buying marketplace data under a budget. The paper's own
// heuristic search is one policy among several — "Try Before You Buy"
// (Azcoitia & Laoutaris) commits spend only after escalating pilot samples,
// and a greedy marginal-gain-per-dollar climb is the classic baseline. A
// policy plans sampling rounds, decides escalation, and returns ranked
// plans; the core middleware supplies the offline machinery (sample store,
// join graph, delta escalation) through the Host capability surface, so
// policies compose with persistence, caching and the service ledger for
// free.
//
// Policies register themselves by name in a process-wide registry
// (Register / Get / Names); the danced wire API exposes the registry via
// GET /v1/policies and threads the shopper's selection through
// search.Request.Policy.
package policy

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"github.com/dance-db/dance/internal/fd"
	"github.com/dance-db/dance/internal/marketplace"
	"github.com/dance-db/dance/internal/relation"
	"github.com/dance-db/dance/internal/search"
)

// DefaultName is the policy used when a request names none: the paper's own
// two-step heuristic search.
const DefaultName = "dance"

// ParamSpec documents one tunable of a policy. All parameters are float64
// (the wire carries them as a name→number map) and optional: a request that
// omits one gets Default.
type ParamSpec struct {
	Name    string  `json:"name"`
	Default float64 `json:"default"`
	Doc     string  `json:"doc"`
}

// Request is an acquisition request as seen by a policy: the search request
// plus the ranked-mode knobs and the policy's own parameters.
type Request struct {
	search.Request
	// K > 0 asks for up to K ranked options (the top-k recommendation
	// mode); K ≤ 0 asks for the single correlation-best plan.
	K int
	// Weights score options in ranked mode.
	Weights search.ScoreWeights
	// Params are the policy-specific tunables, already merged from the
	// middleware configuration and the per-request overrides.
	Params map[string]float64
}

// Param returns the named parameter or def when unset.
func (r Request) Param(name string, def float64) float64 {
	if v, ok := r.Params[name]; ok {
		return v
	}
	return def
}

// Ranked is one plan a policy recommends: a search result (target graph +
// estimated metrics) with its combined score (0 in single-plan mode).
type Ranked struct {
	Result *search.Result
	Score  float64
}

// Snapshot is an immutable view of the middleware's offline state: the
// sample rate it was built at and a searcher over its join graph.
type Snapshot struct {
	Rate     float64
	Searcher *search.Searcher
}

// Limits are the middleware configuration bounds a policy must respect.
type Limits struct {
	// MaxSampleRounds bounds a policy's escalation loop.
	MaxSampleRounds int
	// RateGrowth is the configured per-round rate multiplier.
	RateGrowth float64
	// SampleRate is the configured initial rate.
	SampleRate float64
	// SampleSeed drives marketplace-side correlated sampling; policies
	// buying their own samples must use it so samples stay
	// join-consistent with the middleware's.
	SampleSeed uint64
	// Workers bounds a policy's own concurrency (0 = one per CPU).
	Workers int
	// MaxJoinAttrs caps join-attribute subsets per I-edge.
	MaxJoinAttrs int
}

// Source is one shopper-owned instance (the S of the request).
type Source struct {
	Table *relation.Table
	FDs   []fd.FD
}

// SpendRound reports sample purchases a policy made directly against the
// marketplace (outside the Host's own offline store), so the middleware
// ledger — and every service ledger built on it — stays complete.
type SpendRound struct {
	FromRate  float64
	ToRate    float64
	FullCost  float64
	DeltaCost float64
}

// Host is the capability surface the middleware hands a policy. It wraps
// the shared offline machinery: snapshots are consistent, escalation is
// serialized and delta-billed, and all spend lands in one ledger.
type Host interface {
	// Snapshot returns the current offline state, running the offline
	// phase (catalog fetch, correlated sampling, graph build) first if it
	// never completed.
	Snapshot(ctx context.Context) (Snapshot, error)
	// Escalate grows the sample rate past seenRate and rebuilds
	// incrementally (delta purchases only). It reports whether the caller
	// should retry: false means the rate was already 1.
	Escalate(ctx context.Context, seenRate float64) (bool, error)
	// Market is the marketplace the policy may sample and quote against.
	// Purchases made here directly must be reported via RecordSpend.
	Market() marketplace.Market
	// Sources lists the shopper-owned instances.
	Sources() []Source
	// Limits returns the configuration bounds.
	Limits() Limits
	// RecordSpend books a policy-side sample purchase into the middleware
	// ledger.
	RecordSpend(r SpendRound)
}

// Policy is one acquisition strategy. Implementations must be stateless
// across calls (a single registered value serves every request
// concurrently) and deterministic: for a fixed (seed, marketplace, request)
// the returned plans must be bit-identical at every Workers count.
type Policy interface {
	// Name is the registry key (also the wire name).
	Name() string
	// Doc is a one-line description for GET /v1/policies.
	Doc() string
	// Params documents the tunables the policy reads from Request.Params.
	Params() []ParamSpec
	// Acquire plans the acquisition: in single-plan mode (req.K ≤ 0) it
	// returns exactly one Ranked; in ranked mode up to req.K, best first.
	// Requests whose constraints admit no plan fail with an error wrapping
	// search.ErrInfeasible — for pilot-based policies, abandoning every
	// candidate is such a request-level outcome, not an infrastructure
	// error.
	Acquire(ctx context.Context, h Host, req Request) ([]Ranked, error)
}

var (
	regMu    sync.RWMutex
	registry = map[string]Policy{}
)

// Register adds a policy under its name. Duplicate names panic: policies
// register from init functions, and a silent overwrite would make plan
// provenance depend on package-initialization order.
func Register(p Policy) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[p.Name()]; dup {
		panic(fmt.Sprintf("policy: duplicate registration of %q", p.Name()))
	}
	registry[p.Name()] = p
}

// Get resolves a policy by name ("" means DefaultName).
func Get(name string) (Policy, error) {
	if name == "" {
		name = DefaultName
	}
	regMu.RLock()
	defer regMu.RUnlock()
	p, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("policy: unknown policy %q (have %v): %w", name, namesLocked(), search.ErrInfeasible)
	}
	return p, nil
}

// Names lists the registered policies, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	return namesLocked()
}

func namesLocked() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// PrimaryJoinAttr picks the attribute of info shared with the most other
// catalog entries: correlated sampling needs a join attribute, and the most
// widely shared one preserves the most join structure (see DESIGN.md). The
// middleware's offline phase and pilot-sampling policies must agree on this
// choice, or a policy's pilot samples would not extend into the store's.
func PrimaryJoinAttr(info marketplace.DatasetInfo, catalog []marketplace.DatasetInfo) string {
	best, bestCount := "", -1
	for _, c := range info.Attrs {
		count := 0
		for _, other := range catalog {
			if other.Name == info.Name {
				continue
			}
			for _, oc := range other.Attrs {
				if oc.Name == c.Name {
					count++
					break
				}
			}
		}
		if count > bestCount {
			best, bestCount = c.Name, count
		}
	}
	return best
}
