package policy

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"github.com/dance-db/dance/internal/fd"
	"github.com/dance-db/dance/internal/joingraph"
	"github.com/dance-db/dance/internal/marketplace"
	"github.com/dance-db/dance/internal/parallel"
	"github.com/dance-db/dance/internal/relation"
	"github.com/dance-db/dance/internal/search"
)

func init() { Register(tbybPolicy{}) }

// tbybPolicy implements Try-Before-You-Buy (Azcoitia & Laoutaris): buy
// cheap pilot samples of *every* listing, search them for candidate plans,
// abandon the candidates whose pilot correlation is weak, and escalate only
// the survivors' datasets — via Market.SampleDelta, so every escalation
// bills exactly the missing prefix rows and an abandoned candidate's total
// bill is its pilot prefix, nothing more. The policy owns its samples
// (private tables, merged with Table.Concat along the canonical prefix
// order) and books the spend into the middleware ledger via
// Host.RecordSpend.
type tbybPolicy struct{}

// tbybName is the wire name; it appears in ledgers, plan echoes and the
// bake-off table.
const tbybName = "try-before-you-buy"

func (tbybPolicy) Name() string { return tbybName }

func (tbybPolicy) Doc() string {
	return "escalating pilot samples with early abandon: weak-ρ candidates bill only the pilot prefix, survivors escalate via delta purchases"
}

func (tbybPolicy) Params() []ParamSpec {
	return []ParamSpec{
		{Name: "pilot_rate", Default: 0.05, Doc: "sampling rate of the initial pilot round over the whole catalog"},
		{Name: "growth", Default: 3, Doc: "per-round rate multiplier for surviving candidates (capped at 1)"},
		{Name: "abandon", Default: 0.5, Doc: "keep candidates with |ρ| ≥ abandon × best |ρ|; the rest bill only the pilot prefix"},
		{Name: "rounds", Default: 2, Doc: "escalation rounds after the pilot"},
		{Name: "shortlist", Default: 4, Doc: "max candidates carried into the next escalation round"},
		{Name: "min_rho", Default: 0, Doc: "abandon the whole acquisition (request-infeasible) when the best final |ρ| is below this"},
	}
}

// tbybPilot is one dataset's policy-private sample state.
type tbybPilot struct {
	info     marketplace.DatasetInfo
	joinAttr string
	table    *relation.Table
	fds      []fd.FD
}

func (tbybPolicy) Acquire(ctx context.Context, h Host, req Request) ([]Ranked, error) {
	lim := h.Limits()
	market := h.Market()
	pilotRate := math.Min(1, math.Max(req.Param("pilot_rate", 0.05), 1e-3))
	growth := math.Max(req.Param("growth", 3), 1.5)
	abandon := math.Min(1, math.Max(req.Param("abandon", 0.5), 0))
	maxRounds := int(req.Param("rounds", 2))
	if maxRounds < 0 {
		maxRounds = 0
	}
	shortlist := int(req.Param("shortlist", 4))
	if shortlist < 1 {
		shortlist = 1
	}
	minRho := req.Param("min_rho", 0)
	weights := req.Weights
	if weights == (search.ScoreWeights{}) {
		weights = search.DefaultScoreWeights()
	}

	catalog, err := market.Catalog(ctx)
	if err != nil {
		return nil, fmt.Errorf("policy %s: catalog: %w", tbybName, err)
	}
	if len(catalog) == 0 {
		return nil, fmt.Errorf("policy %s: marketplace catalog is empty", tbybName)
	}

	// Pilot round: one cheap correlated sample (and the free FDs) per
	// listing, fanned out over indexed slots so cost accounting and table
	// identity stay deterministic at every worker count.
	pilots := make([]tbybPilot, len(catalog))
	costs := make([]float64, len(catalog))
	err = parallel.ForEach(ctx, len(catalog), lim.Workers, func(i int) error {
		info := catalog[i]
		p := &pilots[i]
		p.info = info
		p.joinAttr = PrimaryJoinAttr(info, catalog)
		t, cost, err := market.Sample(ctx, info.Name, []string{p.joinAttr}, pilotRate, lim.SampleSeed)
		costs[i] = cost
		if err != nil {
			return fmt.Errorf("policy %s: pilot sampling %s: %w", tbybName, info.Name, err)
		}
		p.table = t
		fds, err := market.DatasetFDs(ctx, info.Name)
		if err != nil {
			return fmt.Errorf("policy %s: FDs of %s: %w", tbybName, info.Name, err)
		}
		p.fds = fds
		return nil
	})
	spent := 0.0
	for _, c := range costs {
		spent += c
	}
	if spent > 0 {
		h.RecordSpend(SpendRound{FromRate: 0, ToRate: pilotRate, FullCost: spent})
	}
	if err != nil {
		return nil, err
	}

	byName := make(map[string]*tbybPilot, len(pilots))
	active := make([]string, 0, len(pilots))
	for i := range pilots {
		byName[pilots[i].info.Name] = &pilots[i]
		active = append(active, pilots[i].info.Name)
	}

	rate := pilotRate
	for round := 0; ; round++ {
		options, err := tbybSearch(ctx, h, req, byName, active, weights, shortlist, uint64(round))
		if err != nil {
			if errors.Is(err, search.ErrInfeasible) && round < maxRounds && rate < 1 {
				// Nothing feasible on these samples yet: escalate every
				// active listing and look again.
				next := math.Min(1, rate*growth)
				if err := tbybEscalate(ctx, h, lim, byName, active, rate, next); err != nil {
					return nil, err
				}
				rate = next
				continue
			}
			return nil, fmt.Errorf("policy %s: %w", tbybName, err)
		}

		// Early abandon: candidates whose pilot ρ is weak relative to the
		// round's best never escalate — their datasets have already billed
		// their full cost (the pilot prefix).
		bestRho := 0.0
		for _, o := range options {
			if r := math.Abs(o.Result.Est.Correlation); r > bestRho {
				bestRho = r
			}
		}
		var survivors []search.Option
		for _, o := range options {
			if math.Abs(o.Result.Est.Correlation) >= abandon*bestRho {
				survivors = append(survivors, o)
			}
			if len(survivors) == shortlist {
				break
			}
		}

		if round == maxRounds || rate >= 1 {
			if bestRho < minRho {
				return nil, fmt.Errorf("policy %s: best pilot correlation %.4f below min_rho %.4f, acquisition abandoned: %w",
					tbybName, bestRho, minRho, search.ErrInfeasible)
			}
			return tbybFinalize(req, survivors), nil
		}

		// Escalate only the datasets the surviving candidates touch; the
		// rest drop out of the next round's graph at their pilot prefix.
		keep := map[string]bool{}
		for _, o := range survivors {
			tg := o.Result.TG
			for _, v := range tg.Vertices {
				inst := tg.G.Instances[v]
				if !inst.Owned {
					keep[inst.Name] = true
				}
			}
		}
		next := math.Min(1, rate*growth)
		nextActive := make([]string, 0, len(keep))
		for _, name := range active {
			if keep[name] {
				nextActive = append(nextActive, name)
			}
		}
		sort.Strings(nextActive)
		if err := tbybEscalate(ctx, h, lim, byName, nextActive, rate, next); err != nil {
			return nil, err
		}
		active, rate = nextActive, next
	}
}

// tbybSearch builds a join graph over the policy's private samples of the
// active listings (plus the shopper's owned sources) and ranks candidate
// plans on it.
func tbybSearch(ctx context.Context, h Host, req Request, byName map[string]*tbybPilot, active []string, weights search.ScoreWeights, shortlist int, version uint64) ([]search.Option, error) {
	var instances []*joingraph.Instance
	for si, s := range h.Sources() {
		instances = append(instances, &joingraph.Instance{
			Name:     s.Table.Name,
			Sample:   s.Table,
			FullRows: s.Table.NumRows(),
			FDs:      s.FDs,
			Owned:    true,
			Version:  uint64(si),
		})
	}
	for _, name := range active {
		p := byName[name]
		instances = append(instances, &joingraph.Instance{
			Name:     p.info.Name,
			Sample:   p.table,
			FullRows: p.info.Rows,
			FDs:      p.fds,
			Version:  version, // fresh searcher per round: any constant works
		})
	}
	g, err := joingraph.Build(instances, joingraph.Config{
		MaxJoinAttrs: h.Limits().MaxJoinAttrs,
		Quoter:       h.Market(),
	})
	if err != nil {
		return nil, fmt.Errorf("join graph over pilot samples: %w", err)
	}
	k := shortlist
	if req.K > k {
		k = req.K
	}
	return search.NewSearcher(g).TopK(ctx, req.Request, k, weights)
}

// tbybEscalate tops the named listings' private samples up from rate to
// next with delta purchases and books the spend.
func tbybEscalate(ctx context.Context, h Host, lim Limits, byName map[string]*tbybPilot, names []string, rate, next float64) error {
	if next <= rate || len(names) == 0 {
		return nil
	}
	market := h.Market()
	costs := make([]float64, len(names))
	merged := make([]*relation.Table, len(names))
	err := parallel.ForEach(ctx, len(names), lim.Workers, func(i int) error {
		p := byName[names[i]]
		delta, cost, err := market.SampleDelta(ctx, p.info.Name, []string{p.joinAttr}, rate, next, lim.SampleSeed)
		costs[i] = cost
		if err != nil {
			return fmt.Errorf("policy %s: delta sampling %s: %w", tbybName, p.info.Name, err)
		}
		t, err := p.table.Concat(delta)
		if err != nil {
			return fmt.Errorf("policy %s: merging delta of %s: %w", tbybName, p.info.Name, err)
		}
		merged[i] = t
		return nil
	})
	spent := 0.0
	for _, c := range costs {
		spent += c
	}
	if spent > 0 {
		h.RecordSpend(SpendRound{FromRate: rate, ToRate: next, DeltaCost: spent})
	}
	if err != nil {
		return err
	}
	for i, name := range names {
		byName[name].table = merged[i]
	}
	return nil
}

// tbybFinalize maps the surviving options to the requested mode: all of
// them (best score first) in ranked mode, the correlation-best one in
// single-plan mode.
func tbybFinalize(req Request, survivors []search.Option) []Ranked {
	if req.K > 0 {
		k := req.K
		if len(survivors) < k {
			k = len(survivors)
		}
		out := make([]Ranked, k)
		for i := 0; i < k; i++ {
			out[i] = Ranked{Result: survivors[i].Result, Score: survivors[i].Score}
		}
		return out
	}
	best := 0
	for i := 1; i < len(survivors); i++ {
		if survivors[i].Result.Est.Correlation > survivors[best].Result.Est.Correlation {
			best = i
		}
	}
	return []Ranked{{Result: survivors[best].Result, Score: survivors[best].Score}}
}
