package policy

import (
	"context"
	"fmt"
)

func init() { Register(dancePolicy{}) }

// dancePolicy is the paper's own strategy, extracted verbatim from the
// pre-policy middleware loop: search the current join graph; on an
// infeasible result buy more samples (rate × RateGrowth, delta-billed) and
// retry, up to MaxSampleRounds. Its plans, metrics, eval counts and ledger
// are pinned bit-identical to the pre-refactor output at every Workers
// count (internal/core's pinned-equivalence goldens).
type dancePolicy struct{}

func (dancePolicy) Name() string { return DefaultName }

func (dancePolicy) Doc() string {
	return "the paper's two-step heuristic: Steiner-tree candidates + MCMC over join variants, escalating the sample rate when infeasible"
}

func (dancePolicy) Params() []ParamSpec { return nil }

func (dancePolicy) Acquire(ctx context.Context, h Host, req Request) ([]Ranked, error) {
	lim := h.Limits()
	var lastErr error
	for round := 0; round < lim.MaxSampleRounds; round++ {
		snap, err := h.Snapshot(ctx)
		if err != nil {
			return nil, err
		}
		var (
			out     []Ranked
			searchE error
		)
		if req.K > 0 {
			options, err := snap.Searcher.TopK(ctx, req.Request, req.K, req.Weights)
			if err == nil {
				out = make([]Ranked, len(options))
				for i, o := range options {
					out[i] = Ranked{Result: o.Result, Score: o.Score}
				}
			}
			searchE = err
		} else {
			res, err := snap.Searcher.Heuristic(ctx, req.Request)
			if err == nil {
				out = []Ranked{{Result: res}}
			}
			searchE = err
		}
		if searchE == nil {
			return out, nil
		}
		if ctx.Err() != nil {
			return nil, searchE
		}
		lastErr = searchE
		if round == lim.MaxSampleRounds-1 {
			break // out of rounds: don't buy samples nothing will search
		}
		retry, err := h.Escalate(ctx, snap.Rate)
		if err != nil {
			return nil, err
		}
		if !retry {
			break
		}
	}
	if req.K > 0 {
		return nil, fmt.Errorf("dance: no feasible acquisition options after %d sample rounds: %w",
			lim.MaxSampleRounds, lastErr)
	}
	return nil, fmt.Errorf("dance: no feasible acquisition after %d sample rounds: %w",
		lim.MaxSampleRounds, lastErr)
}
