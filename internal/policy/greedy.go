package policy

import (
	"context"
	"fmt"
)

func init() { Register(greedyPolicy{}) }

// greedyPolicy is the marginal-gain-per-dollar baseline: the same Step 1
// candidates and escalation loop as dance, but Step 2 is a deterministic
// hill-climb that always buys the variant swap with the best correlation
// gain per extra dollar (search.GreedyAcquire) instead of a Metropolis
// walk. It is the control arm of the bake-off: any spread between it and
// dance isolates what the MCMC exploration is worth.
type greedyPolicy struct{}

func (greedyPolicy) Name() string { return "greedy" }

func (greedyPolicy) Doc() string {
	return "marginal-gain-per-dollar baseline: deterministic hill-climb over join variants, escalating the sample rate when infeasible"
}

func (greedyPolicy) Params() []ParamSpec { return nil }

func (greedyPolicy) Acquire(ctx context.Context, h Host, req Request) ([]Ranked, error) {
	lim := h.Limits()
	var lastErr error
	for round := 0; round < lim.MaxSampleRounds; round++ {
		snap, err := h.Snapshot(ctx)
		if err != nil {
			return nil, err
		}
		var (
			out     []Ranked
			searchE error
		)
		if req.K > 0 {
			options, err := snap.Searcher.GreedyTopK(ctx, req.Request, req.K, req.Weights)
			if err == nil {
				out = make([]Ranked, len(options))
				for i, o := range options {
					out[i] = Ranked{Result: o.Result, Score: o.Score}
				}
			}
			searchE = err
		} else {
			res, err := snap.Searcher.GreedyAcquire(ctx, req.Request)
			if err == nil {
				out = []Ranked{{Result: res}}
			}
			searchE = err
		}
		if searchE == nil {
			return out, nil
		}
		if ctx.Err() != nil {
			return nil, searchE
		}
		lastErr = searchE
		if round == lim.MaxSampleRounds-1 {
			break
		}
		retry, err := h.Escalate(ctx, snap.Rate)
		if err != nil {
			return nil, err
		}
		if !retry {
			break
		}
	}
	return nil, fmt.Errorf("policy greedy: no feasible acquisition after %d sample rounds: %w",
		lim.MaxSampleRounds, lastErr)
}
