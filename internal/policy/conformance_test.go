package policy_test

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"

	"github.com/dance-db/dance/internal/core"
	"github.com/dance-db/dance/internal/fd"
	"github.com/dance-db/dance/internal/marketplace"
	"github.com/dance-db/dance/internal/policy"
	"github.com/dance-db/dance/internal/relation"
	"github.com/dance-db/dance/internal/search"
	"github.com/dance-db/dance/internal/workload"
)

// The conformance suite holds every registered policy to the contract the
// middleware (and the danced service above it) relies on: plans respect the
// request budget, cancellation aborts mid-acquisition, and output is
// bit-identical at every worker count. New policies get the suite for free
// by registering.

func conformanceMW(t *testing.T, workers int) (*core.Dance, search.Request) {
	t.Helper()
	spec, err := workload.ParseSpec("chain:3,decoys=3")
	if err != nil {
		t.Fatal(err)
	}
	w, err := workload.Generate(spec, 9)
	if err != nil {
		t.Fatal(err)
	}
	mw := core.New(w.Marketplace(), core.Config{SampleRate: 0.5, SampleSeed: 86, Workers: workers})
	req := search.Request{
		TargetAttrs: []string{w.Truth.X, w.Truth.Y},
		Budget:      w.Truth.PlanCost * (1 + 1e-6),
		Iterations:  40,
		Seed:        22,
		Workers:     workers,
	}
	return mw, req
}

// planKey flattens a plan to a comparable string: queries plus the exact
// bits of the estimated metrics.
func planKey(p *core.Plan) string {
	hx := func(f float64) string { return strconv.FormatFloat(f, 'x', -1, 64) }
	var b strings.Builder
	for _, q := range p.Queries {
		b.WriteString(q.String())
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "est=%s,%s,%s,%s evals=%d",
		hx(p.Est.Correlation), hx(p.Est.Quality), hx(p.Est.Weight), hx(p.Est.Price), p.Evals)
	return b.String()
}

func TestPolicyConformance(t *testing.T) {
	names := policy.Names()
	if len(names) < 3 {
		t.Fatalf("registry has %d policies, want ≥ 3 (dance, greedy, try-before-you-buy): %v", len(names), names)
	}
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Run("budget", func(t *testing.T) { testPolicyBudget(t, name) })
			t.Run("cancellation", func(t *testing.T) { testPolicyCancellation(t, name) })
			t.Run("workers-deterministic", func(t *testing.T) { testPolicyWorkersDeterministic(t, name) })
		})
	}
}

// testPolicyBudget: with the budget pinned to the ground-truth optimum, a
// policy either returns plans priced within it or reports the request
// infeasible — it never recommends an over-budget purchase.
func testPolicyBudget(t *testing.T, name string) {
	mw, req := conformanceMW(t, 0)
	req.Policy = name
	plan, err := mw.Acquire(context.Background(), req)
	if err != nil {
		if errors.Is(err, search.ErrInfeasible) {
			return // refusing is conformant; overspending would not be
		}
		t.Fatal(err)
	}
	if plan.Est.Price > req.Budget {
		t.Errorf("plan price %v exceeds budget %v", plan.Est.Price, req.Budget)
	}
	ranked, err := mw.AcquireTopK(context.Background(), req, 3, search.DefaultScoreWeights())
	if err != nil {
		if errors.Is(err, search.ErrInfeasible) {
			return
		}
		t.Fatal(err)
	}
	for i, r := range ranked {
		if r.Plan.Est.Price > req.Budget {
			t.Errorf("top-k option %d price %v exceeds budget %v", i, r.Plan.Est.Price, req.Budget)
		}
	}
}

// cancellingMarket cancels the acquisition's own context after n sampling
// calls, so the policy is interrupted mid-round rather than before it
// starts.
type cancellingMarket struct {
	marketplace.Market
	cancel context.CancelFunc
	after  int32
}

func (m *cancellingMarket) tick() {
	if atomic.AddInt32(&m.after, -1) == 0 {
		m.cancel()
	}
}

func (m *cancellingMarket) Sample(ctx context.Context, name string, joinAttrs []string, rate float64, seed uint64) (*relation.Table, float64, error) {
	defer m.tick()
	return m.Market.Sample(ctx, name, joinAttrs, rate, seed)
}

func (m *cancellingMarket) SampleDelta(ctx context.Context, name string, joinAttrs []string, fromRate, toRate float64, seed uint64) (*relation.Table, float64, error) {
	defer m.tick()
	return m.Market.SampleDelta(ctx, name, joinAttrs, fromRate, toRate, seed)
}

func (m *cancellingMarket) DatasetFDs(ctx context.Context, name string) ([]fd.FD, error) {
	defer m.tick()
	return m.Market.DatasetFDs(ctx, name)
}

// testPolicyCancellation: a context cancelled mid-acquisition (after the
// first sampling round has begun) surfaces as an error — the policy must not
// swallow it and return a plan computed on a dead context.
func testPolicyCancellation(t *testing.T, name string) {
	spec, err := workload.ParseSpec("chain:3,decoys=3")
	if err != nil {
		t.Fatal(err)
	}
	w, err := workload.Generate(spec, 9)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	market := &cancellingMarket{Market: w.Marketplace(), cancel: cancel, after: 2}
	mw := core.New(market, core.Config{SampleRate: 0.5, SampleSeed: 86, Workers: 1})
	req := search.Request{
		TargetAttrs: []string{w.Truth.X, w.Truth.Y},
		Budget:      w.Truth.PlanCost * (1 + 1e-6),
		Iterations:  40,
		Seed:        22,
		Workers:     1,
		Policy:      name,
	}
	if _, err := mw.Acquire(ctx, req); err == nil {
		t.Fatal("acquisition on a cancelled context returned a plan")
	} else if !errors.Is(err, context.Canceled) && !errors.Is(err, search.ErrInfeasible) {
		// Cancellation mid-search may legitimately surface as the wrapped
		// search error (the policy reports what it could not finish), but
		// the chain must carry one of the two sentinels.
		t.Fatalf("cancelled acquisition error %v carries neither context.Canceled nor ErrInfeasible", err)
	}
}

// testPolicyWorkersDeterministic: the same request at Workers 1 and 8 must
// produce bit-identical plans (or agree the request is infeasible) — worker
// count changes how a search runs, never what it computes.
func testPolicyWorkersDeterministic(t *testing.T, name string) {
	keys := make([]string, 2)
	errs := make([]error, 2)
	for i, workers := range []int{1, 8} {
		mw, req := conformanceMW(t, workers)
		req.Policy = name
		plan, err := mw.Acquire(context.Background(), req)
		if err != nil {
			if !errors.Is(err, search.ErrInfeasible) {
				t.Fatal(err)
			}
			errs[i] = err
			continue
		}
		keys[i] = planKey(plan)
	}
	if (errs[0] == nil) != (errs[1] == nil) {
		t.Fatalf("feasibility diverged across workers: w1 err=%v, w8 err=%v", errs[0], errs[1])
	}
	if keys[0] != keys[1] {
		t.Errorf("plan diverged across workers:\nw1:\n%s\nw8:\n%s", keys[0], keys[1])
	}
}
