package offline

import (
	"testing"

	"github.com/dance-db/dance/internal/fd"
	"github.com/dance-db/dance/internal/relation"
	"github.com/dance-db/dance/internal/sampling"
)

func demoTable(n int) *relation.Table {
	t := relation.NewTable("d", relation.NewSchema(
		relation.Cat("k", relation.KindInt),
		relation.Cat("s", relation.KindString),
	))
	for i := 0; i < n; i++ {
		t.AppendValues(relation.IntValue(int64(i%13)), relation.StringValue(string(rune('a'+i%5))))
	}
	return t
}

func sampleRange(t *relation.Table, lo, hi float64) *relation.Table {
	s, err := sampling.CorrelatedSampleRange(t, []string{"k"}, lo, hi, sampling.NewHasher(3))
	if err != nil {
		panic(err)
	}
	return s
}

func TestStoreMergeMatchesFreshSample(t *testing.T) {
	full := demoTable(400)
	st := NewSampleStore()
	st.Replace("d", sampleRange(full, 0, 0.2), []string{"k"}, 3, 0.2, 400)
	st.CommitRate(0.2)

	snapLow := st.Snapshot()
	lowRows := snapLow.Dataset("d").Table.NumRows()

	if _, err := st.Extend("d", sampleRange(full, 0.2, 0.6), 0.6, 400); err != nil {
		t.Fatal(err)
	}
	st.CommitRate(0.6)
	snapHigh := st.Snapshot()

	// Copy-on-write: the old snapshot still sees the old state.
	if snapLow.Dataset("d").Table.NumRows() != lowRows {
		t.Fatal("old snapshot mutated by Extend")
	}
	if snapLow.Dataset("d").Version == snapHigh.Dataset("d").Version {
		t.Fatal("version did not bump on a non-empty merge")
	}

	fresh := sampleRange(full, 0, 0.6)
	got := snapHigh.Dataset("d").Table
	if got.NumRows() != fresh.NumRows() {
		t.Fatalf("merged %d rows != fresh %d", got.NumRows(), fresh.NumRows())
	}
	for i := range fresh.Rows {
		for j := range fresh.Rows[i] {
			if !fresh.Rows[i][j].EqualValue(got.Rows[i][j]) {
				t.Fatalf("row %d differs: %v vs %v", i, got.Rows[i], fresh.Rows[i])
			}
		}
	}
	// The merged columnar matches a scratch encoding of the merged rows.
	wantCols := relation.ToColumnar(fresh)
	gotCols := snapHigh.Dataset("d").Cols
	for j := 0; j < 2; j++ {
		wc, gc := wantCols.Codes(j), gotCols.Codes(j)
		if len(wc) != len(gc) {
			t.Fatalf("col %d: %d codes != %d", j, len(gc), len(wc))
		}
		for i := range wc {
			if wc[i] != gc[i] {
				t.Fatalf("col %d row %d: code %d != %d", j, i, gc[i], wc[i])
			}
		}
	}
}

func TestStoreEmptyDeltaKeepsVersion(t *testing.T) {
	full := demoTable(100)
	st := NewSampleStore()
	st.Replace("d", sampleRange(full, 0, 0.5), []string{"k"}, 3, 0.5, 100)
	v0 := st.Snapshot().Dataset("d").Version

	empty := relation.NewTable("d", full.Schema)
	ds, err := st.Extend("d", empty, 0.55, 100)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Version != v0 {
		t.Fatalf("empty delta bumped version %d → %d", v0, ds.Version)
	}
	if ds.Rate != 0.55 {
		t.Fatalf("empty delta did not advance the covered rate: %v", ds.Rate)
	}
}

func TestStoreExtendGuards(t *testing.T) {
	st := NewSampleStore()
	if _, err := st.Extend("ghost", demoTable(1), 0.5, 1); err == nil {
		t.Fatal("extend of unknown dataset must error")
	}
	full := demoTable(50)
	st.Replace("d", sampleRange(full, 0, 0.5), []string{"k"}, 3, 0.5, 50)
	if _, err := st.Extend("d", relation.NewTable("d", full.Schema), 0.3, 50); err == nil {
		t.Fatal("rate decrease must error")
	}
	bad := relation.NewTable("d", relation.NewSchema(relation.Cat("other", relation.KindInt)))
	bad.AppendValues(relation.IntValue(1))
	if _, err := st.Extend("d", bad, 0.9, 50); err == nil {
		t.Fatal("schema mismatch must error")
	}
}

func TestStoreSetFDsBumpsOnlyOnChange(t *testing.T) {
	st := NewSampleStore()
	st.Replace("d", demoTable(10), []string{"k"}, 3, 1, 10)
	v0 := st.Snapshot().Dataset("d").Version

	fds := []fd.FD{fd.New("s", "k")}
	if err := st.SetFDs("d", fds); err != nil {
		t.Fatal(err)
	}
	v1 := st.Snapshot().Dataset("d").Version
	if v1 == v0 {
		t.Fatal("FD change must bump the version (quality caches depend on FDs)")
	}
	if err := st.SetFDs("d", fds); err != nil {
		t.Fatal(err)
	}
	if st.Snapshot().Dataset("d").Version != v1 {
		t.Fatal("re-publishing identical FDs must not bump the version")
	}

	// First resolution to an *empty* set records the non-nil marker (so
	// discovery isn't re-run over unchanged rows) without a version bump.
	st.Replace("e", demoTable(10), []string{"k"}, 3, 1, 10)
	ve := st.Snapshot().Dataset("e").Version
	if st.Snapshot().Dataset("e").FDs != nil {
		t.Fatal("FDs must start unresolved (nil)")
	}
	if err := st.SetFDs("e", nil); err != nil {
		t.Fatal(err)
	}
	ds := st.Snapshot().Dataset("e")
	if ds.FDs == nil || len(ds.FDs) != 0 {
		t.Fatalf("empty resolution must store a non-nil marker: %#v", ds.FDs)
	}
	if ds.Version != ve {
		t.Fatal("empty first resolution must not bump the version")
	}
}

func TestStoreRetain(t *testing.T) {
	st := NewSampleStore()
	st.Replace("a", demoTable(5), []string{"k"}, 1, 1, 5)
	st.Replace("b", demoTable(5), []string{"k"}, 1, 1, 5)
	st.Retain(map[string]bool{"b": true})
	snap := st.Snapshot()
	if snap.Dataset("a") != nil || snap.Dataset("b") == nil {
		t.Fatalf("retain kept the wrong datasets: %v", snap.order)
	}
	if got := snap.Datasets(); len(got) != 1 || got[0].Name != "b" {
		t.Fatalf("Datasets() = %v", got)
	}
}
