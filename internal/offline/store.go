// Package offline holds DANCE's offline-phase state: the correlated samples
// bought from the marketplace, versioned and merged incrementally.
//
// The paper's online phase escalates the sampling rate when no feasible plan
// exists. Because marketplace samples are delivered in the canonical
// hash-unit order (sampling.CorrelatedSampleRange), a rate-ρ sample is a
// strict *prefix* of the rate-ρ′ sample for any ρ < ρ′ — so an escalation
// needs only the delta rows with unit in (ρ, ρ′], appended in place. The
// SampleStore materializes this: per-dataset row-store and columnar
// representations are extended copy-on-write, every change bumps a
// monotonically increasing version, and Snapshot exposes immutable views
// that searches keep using while the next escalation merges.
//
// Versions key the search-layer caches (evaluator, columnar, join-index,
// join-prefix): a dataset whose rows did not change across a rebuild — an
// empty delta, or the shopper's own data — keeps its version, and every
// cache entry derived from it stays valid instead of being dropped
// wholesale.
package offline

import (
	"fmt"
	"sync"

	"github.com/dance-db/dance/internal/fd"
	"github.com/dance-db/dance/internal/relation"
)

// Dataset is the immutable per-dataset offline state at some version. The
// Table and Cols views hold identical rows; Cols is the dictionary-encoded
// form the evaluator runs on, kept bit-identical to encoding Table from
// scratch (relation.Columnar.AppendTable preserves first-appearance code
// order across merges).
type Dataset struct {
	// Name is the marketplace listing name.
	Name string
	// JoinAttrs are the attributes the sample was correlated on. Deltas
	// must be fetched on the same attributes, or the hash domains differ.
	JoinAttrs []string
	// Seed is the hash seed of the correlated sampling run.
	Seed uint64
	// Rate is the sampling rate the rows cover.
	Rate float64
	// Version increases whenever the dataset's rows or FDs change; it keys
	// the per-dataset cache invalidation downstream.
	Version uint64
	// FullRows is the marketplace-reported cardinality of the full
	// instance.
	FullRows int
	// FDs are the dataset's declared or discovered AFDs.
	FDs []fd.FD
	// Table is the merged row-store sample.
	Table *relation.Table
	// Cols is the merged dictionary-encoded sample.
	Cols *relation.Columnar
}

// Snapshot is an immutable view of the whole store at one state version.
// Searches run against a snapshot while the store merges the next round.
type Snapshot struct {
	// Version is the store-wide state version at snapshot time.
	Version uint64
	// Rate is the last committed store-wide sampling rate.
	Rate float64

	order    []string
	datasets map[string]*Dataset
}

// Dataset returns the named dataset's state, or nil.
func (s *Snapshot) Dataset(name string) *Dataset {
	if s == nil {
		return nil
	}
	return s.datasets[name]
}

// Datasets returns all datasets in first-registration order.
func (s *Snapshot) Datasets() []*Dataset {
	if s == nil {
		return nil
	}
	out := make([]*Dataset, 0, len(s.order))
	for _, name := range s.order {
		out = append(out, s.datasets[name])
	}
	return out
}

// SampleStore is the versioned, copy-on-write store behind the offline
// phase. All methods are safe for concurrent use, though the middleware
// serializes writers behind its offline mutex anyway; Snapshot may be
// called from any goroutine at any time.
type SampleStore struct {
	mu       sync.Mutex          // lockorder: leaf
	version  uint64              // guarded by mu
	rate     float64             // guarded by mu
	order    []string            // guarded by mu
	datasets map[string]*Dataset // guarded by mu
}

// NewSampleStore returns an empty store.
func NewSampleStore() *SampleStore {
	return &SampleStore{datasets: make(map[string]*Dataset)}
}

// Snapshot returns an immutable view of the current state. The returned
// maps and Dataset values are never mutated afterwards — writers install
// fresh Dataset values and fresh maps.
func (s *SampleStore) Snapshot() *Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := &Snapshot{
		Version:  s.version,
		Rate:     s.rate,
		order:    append([]string(nil), s.order...),
		datasets: make(map[string]*Dataset, len(s.datasets)),
	}
	for k, v := range s.datasets {
		snap.datasets[k] = v
	}
	return snap
}

// install publishes a new dataset state under the next version. Caller
// holds s.mu.
func (s *SampleStore) installLocked(d *Dataset) {
	s.version++
	d.Version = s.version
	if _, exists := s.datasets[d.Name]; !exists {
		s.order = append(s.order, d.Name)
	}
	s.datasets[d.Name] = d
}

// Replace installs a complete sample for a dataset, discarding any previous
// state — the full-purchase path (first round, or a dataset whose sampling
// parameters changed).
func (s *SampleStore) Replace(name string, t *relation.Table, joinAttrs []string, seed uint64, rate float64, fullRows int) *Dataset {
	d := &Dataset{
		Name:      name,
		JoinAttrs: append([]string(nil), joinAttrs...),
		Seed:      seed,
		Rate:      rate,
		FullRows:  fullRows,
		Table:     t,
		Cols:      relation.ToColumnar(t),
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.installLocked(d)
	return d
}

// Extend merges a delta purchase — the rows with sampling unit in
// (d.Rate, toRate] in canonical order — onto the dataset's current state,
// copy-on-write: existing snapshots keep the old Dataset untouched. An
// empty delta updates the covered rate and cardinality but keeps the rows,
// the columnar encoding and the version, so every downstream cache entry
// derived from the dataset survives the escalation.
func (s *SampleStore) Extend(name string, delta *relation.Table, toRate float64, fullRows int) (*Dataset, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	old, ok := s.datasets[name]
	if !ok {
		return nil, fmt.Errorf("offline: extend of unknown dataset %q", name)
	}
	if toRate < old.Rate {
		return nil, fmt.Errorf("offline: extend of %q from rate %v down to %v", name, old.Rate, toRate)
	}
	if delta.NumRows() == 0 {
		// Nothing changed: same rows, same version — but the state now
		// covers the higher rate.
		d := *old
		d.Rate = toRate
		d.FullRows = fullRows
		s.datasets[name] = &d
		return &d, nil
	}
	table, err := old.Table.Concat(delta)
	if err != nil {
		return nil, fmt.Errorf("offline: extend %q: %w", name, err)
	}
	cols, err := old.Cols.AppendTable(delta)
	if err != nil {
		return nil, fmt.Errorf("offline: extend %q: %w", name, err)
	}
	d := &Dataset{
		Name:      name,
		JoinAttrs: old.JoinAttrs,
		Seed:      old.Seed,
		Rate:      toRate,
		FullRows:  fullRows,
		FDs:       old.FDs,
		Table:     table,
		Cols:      cols,
	}
	s.installLocked(d)
	return d, nil
}

// SetFDs updates a dataset's AFDs. The version bumps only when the set
// actually changed — quality metrics depend on FDs, so cached evaluations
// must not survive an FD change, but re-publishing identical FDs every
// round must not invalidate anything. The stored slice is always non-nil
// once SetFDs has run, so "FDs were resolved (possibly to none)" is
// distinguishable from "never resolved" — the middleware uses that to skip
// re-discovery over unchanged rows even when discovery found nothing.
func (s *SampleStore) SetFDs(name string, fds []fd.FD) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	old, ok := s.datasets[name]
	if !ok {
		return fmt.Errorf("offline: FDs for unknown dataset %q", name)
	}
	if old.FDs != nil && fdsEqual(old.FDs, fds) {
		return nil
	}
	copied := make([]fd.FD, len(fds))
	copy(copied, fds)
	d := *old
	d.FDs = copied
	if old.FDs == nil && len(copied) == 0 {
		// First resolution, to an empty set: record the non-nil marker
		// without a version bump — nothing metric-visible changed.
		s.datasets[name] = &d
		return nil
	}
	s.installLocked(&d)
	return nil
}

// CommitRate records the store-wide sampling rate after a round's merges.
func (s *SampleStore) CommitRate(rate float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rate = rate
}

// Retain drops every dataset not in keep — listings that left the catalog.
func (s *SampleStore) Retain(keep map[string]bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var order []string
	for _, name := range s.order {
		if keep[name] {
			order = append(order, name)
			continue
		}
		delete(s.datasets, name)
	}
	s.order = order
}

func fdsEqual(a, b []fd.FD) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].String() != b[i].String() {
			return false
		}
	}
	return true
}
