package search

import (
	"hash/fnv"
	"sync"
)

// evalCacheShards keeps lock contention low when many MCMC chains evaluate
// concurrently: keys spread across shards by FNV-1a hash, so two chains
// only contend when they hash to the same shard.
const evalCacheShards = 32

// evalCacheShardCap bounds one shard's entries. The cache now outlives a
// single Searcher (it is shared across offline rebuilds, keyed by dataset
// version), so without a bound a long-lived escalating session would
// accumulate one generation of dead entries per round. On overflow the
// shard resets — losing memoized metrics only costs a re-evaluation.
const evalCacheShardCap = 1 << 12

// evalCache memoizes target-graph metric evaluations. It is safe for
// concurrent use — the worker pool of Heuristic/TopK hits it from every
// chain — and is keyed by the *full* evaluation identity: the target-graph
// fingerprint, the request's X/Y attribute split (CORR is asymmetric),
// and the sampling options (η, ρ, hasher seed). The seed-era predecessor
// keyed on the fingerprint alone and silently served stale metrics when
// one Searcher was reused across requests with different sampling options
// or attribute roles.
type evalCache struct {
	shards [evalCacheShards]evalCacheShard
}

type evalCacheShard struct {
	mu sync.RWMutex       // lockorder: leaf
	m  map[string]Metrics // guarded by mu
}

func newEvalCache() *evalCache {
	c := &evalCache{}
	for i := range c.shards {
		c.shards[i].m = make(map[string]Metrics)
	}
	return c
}

func (c *evalCache) shard(key string) *evalCacheShard {
	h := fnv.New32a()
	h.Write([]byte(key))
	return &c.shards[h.Sum32()%evalCacheShards]
}

func (c *evalCache) get(key string) (Metrics, bool) {
	s := c.shard(key)
	s.mu.RLock()
	m, ok := s.m[key]
	s.mu.RUnlock()
	return m, ok
}

func (c *evalCache) put(key string, m Metrics) {
	s := c.shard(key)
	s.mu.Lock()
	if len(s.m) >= evalCacheShardCap {
		s.m = make(map[string]Metrics)
	}
	s.m[key] = m
	s.mu.Unlock()
}

// Len reports the number of memoized evaluations (for tests).
func (c *evalCache) Len() int {
	n := 0
	for i := range c.shards {
		c.shards[i].mu.RLock()
		n += len(c.shards[i].m)
		c.shards[i].mu.RUnlock()
	}
	return n
}
