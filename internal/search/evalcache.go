package search

import (
	"hash/fnv"
	"runtime"
	"sync"
)

// cacheShardCount sizes a sharded cache off the machine: the next power of
// two ≥ 4×GOMAXPROCS, clamped to [minShards, 256]. Intra-chain segmentation
// means up to GOMAXPROCS goroutines hammer the caches at once even for a
// single candidate; 4× that head-room keeps the collision probability of two
// hot keys landing on one shard low, the power of two keeps the shard pick a
// mask, and the floor preserves the pre-sizing behavior on small machines so
// a 1-CPU box never regresses below the old fixed counts.
func cacheShardCount(minShards int) int {
	want := 4 * runtime.GOMAXPROCS(0)
	n := minShards
	for n < want && n < 256 {
		n <<= 1
	}
	return n
}

// evalCacheShardCap bounds one shard's entries. The cache outlives a single
// Searcher (it is shared across offline rebuilds, keyed by dataset version),
// so without a bound a long-lived escalating session would accumulate one
// generation of dead entries per round. On overflow the shard resets —
// losing memoized metrics only costs a re-evaluation.
const evalCacheShardCap = 1 << 12

// evalCache memoizes target-graph metric evaluations. It is safe for
// concurrent use — the worker pool of Heuristic/TopK hits it from every
// chain segment — and is keyed by the *full* evaluation identity: the
// target-graph fingerprint, the request's X/Y attribute split (CORR is
// asymmetric), and the sampling options (η, ρ, hasher seed). The seed-era
// predecessor keyed on the fingerprint alone and silently served stale
// metrics when one Searcher was reused across requests with different
// sampling options or attribute roles.
type evalCache struct {
	shards []evalCacheShard // len is a power of two, fixed at construction
}

type evalCacheShard struct {
	mu sync.RWMutex       // lockorder: leaf
	m  map[string]Metrics // guarded by mu
}

func newEvalCache() *evalCache { return newEvalCacheShards(cacheShardCount(32)) }

// newEvalCacheShards builds an evalCache with a fixed shard count (rounded
// up to a power of two); exported sizing goes through newEvalCache, the
// parameter exists for the contention benchmark's before/after comparison.
func newEvalCacheShards(n int) *evalCache {
	p := 1
	for p < n {
		p <<= 1
	}
	c := &evalCache{shards: make([]evalCacheShard, p)}
	for i := range c.shards {
		c.shards[i].m = make(map[string]Metrics)
	}
	return c
}

func (c *evalCache) shard(key string) *evalCacheShard {
	h := fnv.New32a()
	h.Write([]byte(key))
	return &c.shards[h.Sum32()&uint32(len(c.shards)-1)]
}

func (c *evalCache) get(key string) (Metrics, bool) {
	s := c.shard(key)
	s.mu.RLock()
	m, ok := s.m[key]
	s.mu.RUnlock()
	return m, ok
}

func (c *evalCache) put(key string, m Metrics) {
	s := c.shard(key)
	s.mu.Lock()
	if len(s.m) >= evalCacheShardCap {
		s.m = make(map[string]Metrics)
	}
	s.m[key] = m
	s.mu.Unlock()
}

// Len reports the number of memoized evaluations (for tests).
func (c *evalCache) Len() int {
	n := 0
	for i := range c.shards {
		c.shards[i].mu.RLock()
		n += len(c.shards[i].m)
		c.shards[i].mu.RUnlock()
	}
	return n
}
