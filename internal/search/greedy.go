package search

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"github.com/dance-db/dance/internal/joingraph"
	"github.com/dance-db/dance/internal/parallel"
)

// This file implements the marginal-gain-per-dollar baseline: instead of
// Algorithm 1's Metropolis walk, each Step 1 candidate hill-climbs over
// AS-edge variants, always taking the swap with the best marginal
// correlation gain per marginal dollar. It is the classic budgeted greedy
// the acquisition literature benchmarks against (DAVED, "Data Acquisition
// for Improving ML Models"), kept fully deterministic: neighbors enumerate
// in fixed (edge, variant) order, evaluations fan out over indexed slots,
// and ties resolve to the first neighbor — so results are bit-identical at
// every Workers count.

// greedyMove ranks one candidate move. Moves compare lexicographically by
// (class, a, b): lower class first, then higher a, then higher b. Exact
// float ties fall back to enumeration order (first wins).
type greedyMove struct {
	class int
	a, b  float64
}

func (m greedyMove) better(o greedyMove) bool {
	if m.class != o.class {
		return m.class < o.class
	}
	if m.a != o.a {
		return m.a > o.a
	}
	return m.b > o.b
}

// greedyRank classifies the move cur→next. Classes: 0 = feasible
// improvement at no extra cost (rank by gain, then by savings); 1 =
// feasible improvement bought with extra spend (rank by gain per dollar,
// then gain); 2 = escape move for an infeasible current state (rank toward
// feasibility: feasible next states first via class 0/1, else strictly
// cheaper ones). A negative class means "not a move".
func greedyRank(curM, nextM Metrics, curFeasible, nextFeasible bool) greedyMove {
	none := greedyMove{class: -1}
	if !curFeasible {
		if nextFeasible {
			return greedyMove{class: 0, a: nextM.Correlation, b: -nextM.Price}
		}
		if nextM.Price < curM.Price {
			return greedyMove{class: 2, a: -nextM.Price, b: nextM.Correlation}
		}
		return none
	}
	if !nextFeasible {
		return none
	}
	dCorr := nextM.Correlation - curM.Correlation
	dPrice := nextM.Price - curM.Price
	if dCorr <= 0 {
		return none
	}
	if dPrice <= 0 {
		return greedyMove{class: 0, a: dCorr, b: -dPrice}
	}
	return greedyMove{class: 1, a: dCorr / dPrice, b: dCorr}
}

// greedyNeighbor is one variant swap of the current target graph.
type greedyNeighbor struct {
	edge, variant int
}

// greedyRun climbs every Step 1 candidate and reports each feasible state
// it evaluates to visit. It returns the per-request evaluation totals.
func (s *Searcher) greedyRun(ctx context.Context, req Request, visit func(*joingraph.TargetGraph, Metrics)) (evals, considered int, err error) {
	cands, err := s.step1Candidates(req)
	if err != nil {
		return 0, 0, err
	}
	plans, viable := s.chainPlans(cands, req)
	workers := parallel.DefaultWorkers(req.Workers)
	perInit := initWorkers(workers, viable)
	initM, err := parallel.Map(ctx, len(plans), workers, func(i int) (Metrics, error) {
		if plans[i].tg == nil {
			return Metrics{}, nil
		}
		return s.evaluate(ctx, plans[i].tg, req, perInit)
	})
	if err != nil {
		return 0, 0, err
	}

	for ci, p := range plans {
		if p.tg == nil {
			continue
		}
		cur, curM := p.tg, initM[ci]
		evals++
		considered++
		if curM.Feasible(req) {
			visit(cur, curM)
		}
		// Each candidate's climb gets the same proposal budget as an MCMC
		// chain: ℓ evaluations.
		for used := 0; used < req.Iterations; {
			var nbrs []greedyNeighbor
			for _, ei := range p.swappable {
				e := cur.Edges[ei]
				for nv := range s.G.EdgeBetween(e.I, e.J).Variants {
					if nv != e.Variant {
						nbrs = append(nbrs, greedyNeighbor{edge: ei, variant: nv})
					}
				}
			}
			if len(nbrs) == 0 {
				break
			}
			if rem := req.Iterations - used; len(nbrs) > rem {
				nbrs = nbrs[:rem]
			}
			tgs := make([]*joingraph.TargetGraph, len(nbrs))
			for i, nb := range nbrs {
				tg := cur.Clone()
				tg.Edges[nb.edge].Variant = nb.variant
				tgs[i] = tg
			}
			ms, err := parallel.Map(ctx, len(nbrs), workers, func(i int) (Metrics, error) {
				return s.evaluate(ctx, tgs[i], req, 1)
			})
			if err != nil {
				return evals, considered, err
			}
			used += len(nbrs)
			evals += len(nbrs)
			considered += len(nbrs)
			curFeasible := curM.Feasible(req)
			bestIdx, bestMove := -1, greedyMove{class: -1}
			for i, nm := range ms {
				if nm.Feasible(req) {
					visit(tgs[i], nm)
				}
				if mv := greedyRank(curM, nm, curFeasible, nm.Feasible(req)); mv.class >= 0 && (bestIdx < 0 || mv.better(bestMove)) {
					bestIdx, bestMove = i, mv
				}
			}
			if bestIdx < 0 {
				break // local optimum (or no way toward feasibility)
			}
			cur, curM = tgs[bestIdx], ms[bestIdx]
		}
	}
	return evals, considered, nil
}

// GreedyAcquire runs the greedy baseline and returns the feasible state
// with the highest estimated correlation across all climbs.
func (s *Searcher) GreedyAcquire(ctx context.Context, req Request) (*Result, error) {
	req = req.withDefaults()
	best := &Result{}
	var bestM Metrics
	found := false
	evals, considered, err := s.greedyRun(ctx, req, func(tg *joingraph.TargetGraph, m Metrics) {
		if !found || m.Correlation > bestM.Correlation {
			found = true
			best.TG, bestM = tg, m
		}
	})
	if err != nil {
		return nil, err
	}
	best.Evals, best.Considered = evals, considered
	if !found {
		return nil, fmt.Errorf("search: greedy found no feasible target graph (budget %v, α %v, β %v): %w",
			req.Budget, req.Alpha, req.Beta, ErrInfeasible)
	}
	best.Est = bestM
	return best, nil
}

// GreedyTopK ranks the distinct feasible states the greedy climbs visited,
// exactly as TopK ranks the MCMC walk's.
func (s *Searcher) GreedyTopK(ctx context.Context, req Request, k int, weights ScoreWeights) ([]Option, error) {
	if k <= 0 {
		k = 3
	}
	req = req.withDefaults()
	var mu sync.Mutex
	best := map[string]Option{}
	evals, considered, err := s.greedyRun(ctx, req, func(tg *joingraph.TargetGraph, m Metrics) {
		fp := fingerprint(tg)
		score := weights.Score(m, req)
		mu.Lock()
		defer mu.Unlock()
		if cur, ok := best[fp]; !ok || score > cur.Score {
			best[fp] = Option{Result: &Result{TG: tg, Est: m}, Score: score}
		}
	})
	if err != nil {
		return nil, err
	}
	if len(best) == 0 {
		return nil, fmt.Errorf("search: greedy found no feasible acquisition options (budget %v, α %v, β %v): %w",
			req.Budget, req.Alpha, req.Beta, ErrInfeasible)
	}
	options := make([]Option, 0, len(best))
	for _, o := range best {
		options = append(options, o)
	}
	sort.SliceStable(options, func(i, j int) bool {
		if options[i].Score != options[j].Score {
			return options[i].Score > options[j].Score
		}
		return fingerprint(options[i].Result.TG) < fingerprint(options[j].Result.TG)
	})
	if len(options) > k {
		options = options[:k]
	}
	for i := range options {
		options[i].Result.Evals = evals
		options[i].Result.Considered = considered
	}
	return options, nil
}
