package search

import (
	"context"
	"fmt"
	"math/bits"
	"math/rand"

	"github.com/dance-db/dance/internal/joingraph"
)

// BruteForceLimits guard the exponential enumeration.
type BruteForceLimits struct {
	// MaxInstances refuses graphs larger than this (default 16): the
	// paper's GP/LP do not halt on TPC-E either.
	MaxInstances int
	// MaxVariantCombos caps per-tree variant products (default 200k).
	MaxVariantCombos int
}

func (l BruteForceLimits) withDefaults() BruteForceLimits {
	if l.MaxInstances <= 0 {
		l.MaxInstances = 16
	}
	if l.MaxVariantCombos <= 0 {
		l.MaxVariantCombos = 200000
	}
	return l
}

// BruteForce is the LP/GP optimal baseline: it enumerates every connected
// instance subset that covers the source and target attributes, every
// spanning tree of each subset, and every join-attribute variant
// combination, evaluates each candidate, and returns the feasible target
// graph with maximum correlation. Run against a join graph built from
// samples this is the paper's LP; against full data it is GP.
func (s *Searcher) BruteForce(ctx context.Context, req Request, limits BruteForceLimits) (*Result, error) {
	req = req.withDefaults()
	limits = limits.withDefaults()
	n := len(s.G.Instances)
	if n > limits.MaxInstances {
		return nil, fmt.Errorf("search: brute force refused for %d instances (max %d)", n, limits.MaxInstances)
	}
	if _, _, err := req.corrAttrs(); err != nil {
		return nil, err
	}

	// Which instances hold each requested attribute. Source attributes
	// held by owned instances are pinned to them (the join is over S ∪ T).
	all := dedupeStrings(append(append([]string{}, req.SourceAttrs...), req.TargetAttrs...))
	holders, err := s.holderMasks(all, req)
	if err != nil {
		return nil, err
	}

	res := &Result{}
	var bestM Metrics
	found := false

	for mask := uint32(1); mask < 1<<uint(n); mask++ {
		// Subset must cover every requested attribute.
		covered := true
		for _, h := range holders {
			if mask&h == 0 {
				covered = false
				break
			}
		}
		if !covered {
			continue
		}
		verts := maskVertices(mask)
		if !s.connectedSubset(verts) {
			continue
		}
		inEdges := s.edgesWithin(mask)
		for _, treeEdges := range spanningTrees(verts, inEdges) {
			// A leaf that holds none of the requested attributes is a
			// useless appendage — the paper's LP/GP enumerate join paths
			// *between source and target vertices*, so such trees are not
			// candidates (the smaller tree is enumerated separately).
			if hasUselessLeaf(verts, treeEdges, holders) {
				continue
			}
			assign, err := s.G.AssignAttrs(all, verts)
			if err != nil {
				continue
			}
			if err := s.enumerateVariants(ctx, verts, treeEdges, assign, req, limits, res, &bestM, &found); err != nil {
				return nil, err
			}
		}
	}
	if !found {
		return nil, fmt.Errorf("search: brute force found no feasible target graph: %w", ErrInfeasible)
	}
	res.Est = bestM
	return res, nil
}

// holderMasks computes, per requested attribute, the bitmask of instances
// allowed to provide it: all holders for target attributes, owned holders
// only for source attributes held by any owned instance.
func (s *Searcher) holderMasks(attrs []string, req Request) ([]uint32, error) {
	isSource := map[string]bool{}
	for _, a := range req.SourceAttrs {
		isSource[a] = true
	}
	holders := make([]uint32, len(attrs))
	for ai, a := range attrs {
		candidates := s.G.InstancesWithAttr(a)
		if isSource[a] {
			var owned []int
			for _, i := range candidates {
				if s.G.Instances[i].Owned {
					owned = append(owned, i)
				}
			}
			if len(owned) > 0 {
				candidates = owned
			}
		}
		for _, i := range candidates {
			holders[ai] |= 1 << uint(i)
		}
		if holders[ai] == 0 {
			return nil, fmt.Errorf("search: attribute %q not offered by any instance: %w", a, ErrInfeasible)
		}
	}
	return holders, nil
}

// hasUselessLeaf reports whether some degree-1 vertex of the tree holds
// none of the requested attributes (holders are per-attribute vertex masks).
func hasUselessLeaf(verts []int, treeEdges [][2]int, holders []uint32) bool {
	if len(treeEdges) == 0 {
		return false
	}
	deg := map[int]int{}
	for _, e := range treeEdges {
		deg[e[0]]++
		deg[e[1]]++
	}
	for _, v := range verts {
		if deg[v] != 1 {
			continue
		}
		needed := false
		for _, h := range holders {
			if h&(1<<uint(v)) != 0 {
				needed = true
				break
			}
		}
		if !needed {
			return true
		}
	}
	return false
}

func maskVertices(mask uint32) []int {
	var out []int
	for mask != 0 {
		b := bits.TrailingZeros32(mask)
		out = append(out, b)
		mask &= mask - 1
	}
	return out
}

// connectedSubset reports whether the induced I-layer subgraph is connected.
func (s *Searcher) connectedSubset(verts []int) bool {
	if len(verts) <= 1 {
		return true
	}
	in := map[int]bool{}
	for _, v := range verts {
		in[v] = true
	}
	seen := map[int]bool{verts[0]: true}
	stack := []int{verts[0]}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range s.G.Edges {
			var nb = -1
			if e.I == v && in[e.J] {
				nb = e.J
			} else if e.J == v && in[e.I] {
				nb = e.I
			}
			if nb >= 0 && !seen[nb] {
				seen[nb] = true
				stack = append(stack, nb)
			}
		}
	}
	return len(seen) == len(verts)
}

// edgesWithin lists join-graph edges with both endpoints inside the mask.
func (s *Searcher) edgesWithin(mask uint32) [][2]int {
	var out [][2]int
	for _, e := range s.G.Edges {
		if mask&(1<<uint(e.I)) != 0 && mask&(1<<uint(e.J)) != 0 {
			out = append(out, [2]int{e.I, e.J})
		}
	}
	return out
}

// spanningTrees enumerates all spanning trees of the subset as edge lists,
// by choosing |verts|−1 of the candidate edges and keeping acyclic choices
// (checked with union-find).
func spanningTrees(verts []int, edges [][2]int) [][][2]int {
	need := len(verts) - 1
	if need == 0 {
		return [][][2]int{nil}
	}
	if len(edges) < need {
		return nil
	}
	var out [][][2]int
	choice := make([][2]int, 0, need)
	var rec func(start int)
	rec = func(start int) {
		if len(choice) == need {
			if isSpanningTree(verts, choice) {
				out = append(out, append([][2]int(nil), choice...))
			}
			return
		}
		// Not enough edges left → prune.
		for i := start; i <= len(edges)-(need-len(choice)); i++ {
			choice = append(choice, edges[i])
			rec(i + 1)
			choice = choice[:len(choice)-1]
		}
	}
	rec(0)
	return out
}

func isSpanningTree(verts []int, edges [][2]int) bool {
	parent := map[int]int{}
	for _, v := range verts {
		parent[v] = v
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, e := range edges {
		ra, rb := find(e[0]), find(e[1])
		if ra == rb {
			return false // cycle
		}
		parent[ra] = rb
	}
	return true // |V|-1 acyclic edges over verts span them
}

// enumerateVariants walks the cartesian product of per-edge join-attribute
// variants, evaluating every resulting target graph.
func (s *Searcher) enumerateVariants(ctx context.Context, verts []int, treeEdges [][2]int, assign map[string]int,
	req Request, limits BruteForceLimits, res *Result, bestM *Metrics, found *bool) error {

	counts := make([]int, len(treeEdges))
	combos := 1
	for i, e := range treeEdges {
		ie := s.G.EdgeBetween(e[0], e[1])
		if ie == nil {
			return fmt.Errorf("search: missing I-edge (%d,%d)", e[0], e[1])
		}
		counts[i] = len(ie.Variants)
		combos *= counts[i]
		if combos > limits.MaxVariantCombos {
			return fmt.Errorf("search: variant combinations exceed limit %d", limits.MaxVariantCombos)
		}
	}
	pick := make([]int, len(treeEdges))
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		edges := make([]joingraph.TGEdge, len(treeEdges))
		for i, e := range treeEdges {
			a, b := e[0], e[1]
			if a > b {
				a, b = b, a
			}
			edges[i] = joingraph.TGEdge{I: a, J: b, Variant: pick[i]}
		}
		tg, err := joingraph.NewTargetGraph(s.G, verts, edges, assign)
		if err == nil {
			m, err := s.Evaluate(ctx, tg, req)
			if err != nil {
				return err
			}
			res.Evals++
			res.Considered++
			if m.Feasible(req) && (!*found || m.Correlation > bestM.Correlation) {
				*found = true
				*bestM = m
				res.TG = tg
			}
		}
		// Advance the odometer.
		i := 0
		for ; i < len(pick); i++ {
			pick[i]++
			if pick[i] < counts[i] {
				break
			}
			pick[i] = 0
		}
		if i == len(pick) {
			return nil
		}
	}
}

// ApproxPriceRange estimates the [LB, UB] price range of target graphs when
// full enumeration is infeasible (e.g. the 29-instance TPC-E graph): it takes
// the Step 1 candidate I-graphs and scans random variant assignments per
// tree. Used to define budget ratios on large marketplaces (Sec 6.1).
func (s *Searcher) ApproxPriceRange(ctx context.Context, req Request, samples int) (lb, ub float64, err error) {
	req = req.withDefaults()
	req.Alpha = 0 // price range ignores the weight constraint
	req.MaxIGraphs = 16
	if samples <= 0 {
		samples = 64
	}
	cands, err := s.step1Candidates(req)
	if err != nil {
		return 0, 0, err
	}
	rng := randNew(req.Seed + 99)
	first := true
	for _, tr := range cands {
		tg, err := s.treeToTargetGraph(tr, req)
		if err != nil {
			continue
		}
		consider := func(t *joingraph.TargetGraph) error {
			p, err := t.Price(ctx)
			if err != nil {
				return err
			}
			if first || p < lb {
				lb = p
			}
			if first || p > ub {
				ub = p
			}
			first = false
			return nil
		}
		if err := consider(tg); err != nil {
			return 0, 0, err
		}
		for k := 0; k < samples; k++ {
			cand := tg.Clone()
			for ei := range cand.Edges {
				e := cand.Edges[ei]
				nv := len(s.G.EdgeBetween(e.I, e.J).Variants)
				cand.Edges[ei].Variant = rng.Intn(nv)
			}
			if err := consider(cand); err != nil {
				return 0, 0, err
			}
		}
		// Whole-instance purchases bound the upper end (see PriceRange).
		full, err := s.fullInstancesPrice(ctx, tg.Vertices)
		if err != nil {
			return 0, 0, err
		}
		if full > ub {
			ub = full
		}
	}
	if first {
		return 0, 0, fmt.Errorf("search: no candidate target graphs for price range")
	}
	return lb, ub, nil
}

// PriceRange scans all feasible target graphs (ignoring budget) and returns
// the min and max price — the paper's LB/UB used to define budget ratios
// (Sec 6.1). It reuses the brute-force enumeration with constraints relaxed.
func (s *Searcher) PriceRange(ctx context.Context, req Request, limits BruteForceLimits) (lb, ub float64, err error) {
	relaxed := req
	relaxed.Budget = 0
	relaxed.Alpha = 0
	relaxed.Beta = 0
	relaxed = relaxed.withDefaults()
	limits = limits.withDefaults()
	n := len(s.G.Instances)
	if n > limits.MaxInstances {
		return 0, 0, fmt.Errorf("search: price range refused for %d instances", n)
	}
	all := dedupeStrings(append(append([]string{}, relaxed.SourceAttrs...), relaxed.TargetAttrs...))
	holders, err := s.holderMasks(all, relaxed)
	if err != nil {
		return 0, 0, err
	}
	first := true
	for mask := uint32(1); mask < 1<<uint(n); mask++ {
		covered := true
		for _, h := range holders {
			if mask&h == 0 {
				covered = false
				break
			}
		}
		if !covered {
			continue
		}
		verts := maskVertices(mask)
		if !s.connectedSubset(verts) {
			continue
		}
		for _, treeEdges := range spanningTrees(verts, s.edgesWithin(mask)) {
			if hasUselessLeaf(verts, treeEdges, holders) {
				continue
			}
			assign, err := s.G.AssignAttrs(all, verts)
			if err != nil {
				continue
			}
			// Walk every variant combination: the paper's UB is the
			// maximum price over all possible paths, and variants change
			// which join attributes are purchased. Pricing is cached per
			// (instance, attribute set), so this is cheap.
			counts := make([]int, len(treeEdges))
			combos := 1
			for i, e := range treeEdges {
				counts[i] = len(s.G.EdgeBetween(e[0], e[1]).Variants)
				combos *= counts[i]
			}
			if combos > limits.MaxVariantCombos {
				return 0, 0, fmt.Errorf("search: price-range variant combinations exceed limit %d", limits.MaxVariantCombos)
			}
			pick := make([]int, len(treeEdges))
			for {
				edges := make([]joingraph.TGEdge, len(treeEdges))
				for i, e := range treeEdges {
					a, b := e[0], e[1]
					if a > b {
						a, b = b, a
					}
					edges[i] = joingraph.TGEdge{I: a, J: b, Variant: pick[i]}
				}
				tg, err := joingraph.NewTargetGraph(s.G, verts, edges, assign)
				if err == nil {
					p, err := tg.Price(ctx)
					if err != nil {
						return 0, 0, err
					}
					if first || p < lb {
						lb = p
					}
					if first || p > ub {
						ub = p
					}
					first = false
				}
				i := 0
				for ; i < len(pick); i++ {
					pick[i]++
					if pick[i] < counts[i] {
						break
					}
					pick[i] = 0
				}
				if i == len(pick) {
					break
				}
			}
			// The marketplace also sells whole instances (the paper's
			// "Purchase D1 and D2" options); the price range's upper end
			// spans buying every attribute of each instance on the path.
			full, err := s.fullInstancesPrice(ctx, verts)
			if err != nil {
				return 0, 0, err
			}
			if full > ub {
				ub = full
			}
		}
	}
	if first {
		return 0, 0, fmt.Errorf("search: no target graph exists for price range")
	}
	return lb, ub, nil
}

// randNew is a tiny indirection so brute.go does not import math/rand at the
// top twice across files.
func randNew(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// fullInstancesPrice sums the whole-instance price over the given vertices
// (owned instances stay free).
func (s *Searcher) fullInstancesPrice(ctx context.Context, verts []int) (float64, error) {
	total := 0.0
	for _, v := range verts {
		inst := s.G.Instances[v]
		if inst.Owned {
			continue
		}
		p, err := s.G.Price(ctx, v, inst.Sample.Schema.Names())
		if err != nil {
			return 0, err
		}
		total += p
	}
	return total, nil
}
