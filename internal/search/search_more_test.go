package search

import (
	"strings"
	"testing"
	"testing/quick"

	"github.com/dance-db/dance/internal/relation"
)

func TestApproxPriceRange(t *testing.T) {
	s, _ := buildSearcher(t, 50)
	req := baseRequest()
	lb, ub, err := s.ApproxPriceRange(bg, req, 16)
	if err != nil {
		t.Fatal(err)
	}
	if lb <= 0 || ub < lb {
		t.Fatalf("approx range [%v, %v] invalid", lb, ub)
	}
	// The approximate range must bracket the heuristic's found price.
	res, err := s.Heuristic(bg, req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Est.Price < lb-1e-9 || res.Est.Price > ub+1e-9 {
		t.Fatalf("heuristic price %v outside approx range [%v, %v]", res.Est.Price, lb, ub)
	}
}

func TestApproxPriceRangeVsExact(t *testing.T) {
	s, _ := buildSearcher(t, 51)
	req := baseRequest()
	albm, aub, err := s.ApproxPriceRange(bg, req, 32)
	if err != nil {
		t.Fatal(err)
	}
	elb, eub, err := s.PriceRange(bg, req, BruteForceLimits{})
	if err != nil {
		t.Fatal(err)
	}
	// Approximation must stay inside the exact envelope on the low end and
	// cannot exceed the exact UB (which includes whole-instance purchases).
	if albm < elb-1e-9 {
		t.Fatalf("approx LB %v below exact LB %v", albm, elb)
	}
	if aub > eub+1e-9 {
		t.Fatalf("approx UB %v above exact UB %v", aub, eub)
	}
}

func TestEvaluateOnTablesMissingTable(t *testing.T) {
	s, tables := buildSearcher(t, 52)
	req := baseRequest()
	res, err := s.Heuristic(bg, req)
	if err != nil {
		t.Fatal(err)
	}
	partial := map[string]*relation.Table{}
	for k, v := range tables {
		if k != "mid1" {
			partial[k] = v
		}
	}
	if _, err := s.EvaluateOnTables(bg, res.TG, req, partial); err == nil {
		// Only fails when mid1 is actually part of the chosen graph;
		// force the issue with an empty map.
		if _, err := s.EvaluateOnTables(bg, res.TG, req, map[string]*relation.Table{}); err == nil {
			t.Fatal("missing tables should error")
		}
	}
}

func TestMetricsFeasible(t *testing.T) {
	m := Metrics{Correlation: 1, Quality: 0.8, Weight: 2, Price: 50}
	cases := []struct {
		req  Request
		want bool
	}{
		{Request{}, true},            // everything unbounded
		{Request{Budget: 100}, true}, // under budget
		{Request{Budget: 10}, false}, // over budget
		{Request{Alpha: 3}, true},    // under α
		{Request{Alpha: 1}, false},   // over α
		{Request{Beta: 0.5}, true},   // quality ok
		{Request{Beta: 0.9}, false},  // quality low
		{Request{Budget: 100, Alpha: 3, Beta: 0.5}, true},
	}
	for i, c := range cases {
		if got := m.Feasible(c.req); got != c.want {
			t.Errorf("case %d: Feasible = %v, want %v", i, got, c.want)
		}
	}
}

func TestCorrAttrsResolution(t *testing.T) {
	r := Request{SourceAttrs: []string{"a"}, TargetAttrs: []string{"b"}}
	x, y, err := r.corrAttrs()
	if err != nil || x[0] != "a" || y[0] != "b" {
		t.Fatalf("corrAttrs = %v, %v, %v", x, y, err)
	}
	r = Request{TargetAttrs: []string{"p", "q", "r"}}
	x, y, err = r.corrAttrs()
	if err != nil || x[0] != "p" || len(y) != 2 {
		t.Fatalf("source-less corrAttrs = %v, %v, %v", x, y, err)
	}
	if _, _, err := (Request{}).corrAttrs(); err == nil {
		t.Fatal("no targets should error")
	}
}

func TestGreedyNeverAcceptsWorse(t *testing.T) {
	// With Greedy set, the search result can only improve on the initial
	// graph's correlation, never wander below the best seen.
	s, _ := buildSearcher(t, 53)
	req := baseRequest()
	req.Greedy = true
	res, err := s.Heuristic(bg, req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Est.Correlation <= 0 {
		t.Fatalf("greedy result correlation = %v", res.Est.Correlation)
	}
}

// Property: every purchase set of a found target graph contains the join
// attributes of its incident edges (you cannot join on attributes you did
// not buy).
func TestQuickPurchaseContainsJoinAttrs(t *testing.T) {
	s, _ := buildSearcher(t, 54)
	f := func(seedRaw uint8) bool {
		req := baseRequest()
		req.Seed = int64(seedRaw)
		res, err := s.Heuristic(bg, req)
		if err != nil {
			return true // infeasible for this seed is fine
		}
		purchase := res.TG.Purchase()
		for _, e := range res.TG.Edges {
			for _, a := range e.JoinAttrsOf(s.G) {
				for _, v := range []int{e.I, e.J} {
					if s.G.Instances[v].Owned {
						continue
					}
					if !contains(purchase[v], a) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func contains(xs []string, v string) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

func TestResultStringRendering(t *testing.T) {
	s, _ := buildSearcher(t, 55)
	res, err := s.Heuristic(bg, baseRequest())
	if err != nil {
		t.Fatal(err)
	}
	str := res.TG.String()
	if !strings.Contains(str, "TG{") {
		t.Fatalf("TG String = %q", str)
	}
}
