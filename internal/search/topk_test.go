package search

import (
	"testing"
)

func TestTopKReturnsRankedDistinctOptions(t *testing.T) {
	s, _ := buildSearcher(t, 20)
	req := baseRequest()
	req.Iterations = 80
	options, err := s.TopK(bg, req, 3, DefaultScoreWeights())
	if err != nil {
		t.Fatal(err)
	}
	if len(options) == 0 {
		t.Fatal("no options")
	}
	// Scores must be non-increasing.
	for i := 1; i < len(options); i++ {
		if options[i].Score > options[i-1].Score+1e-12 {
			t.Fatalf("options not sorted: %v then %v", options[i-1].Score, options[i].Score)
		}
	}
	// All options distinct by fingerprint.
	seen := map[string]bool{}
	for _, o := range options {
		fp := fingerprint(o.Result.TG)
		if seen[fp] {
			t.Fatal("duplicate option")
		}
		seen[fp] = true
		// Every option must be feasible.
		if !o.Result.Est.Feasible(req) {
			t.Fatalf("infeasible option in top-k: %+v", o.Result.Est)
		}
	}
}

func TestTopKBestMatchesHeuristicDirection(t *testing.T) {
	// With correlation-only weights, the top option should be at least as
	// good as the plain heuristic's result (same walk, same evidence).
	s, _ := buildSearcher(t, 21)
	req := baseRequest()
	h, err := s.Heuristic(bg, req)
	if err != nil {
		t.Fatal(err)
	}
	corrOnly := ScoreWeights{Correlation: 1}
	options, err := s.TopK(bg, req, 1, corrOnly)
	if err != nil {
		t.Fatal(err)
	}
	if options[0].Result.Est.Correlation < h.Est.Correlation-1e-9 {
		t.Fatalf("top-1 correlation %v below heuristic %v",
			options[0].Result.Est.Correlation, h.Est.Correlation)
	}
}

func TestTopKDefaultK(t *testing.T) {
	s, _ := buildSearcher(t, 22)
	req := baseRequest()
	options, err := s.TopK(bg, req, 0, DefaultScoreWeights())
	if err != nil {
		t.Fatal(err)
	}
	if len(options) > 3 {
		t.Fatalf("default k should cap at 3, got %d", len(options))
	}
}

func TestTopKInfeasibleFails(t *testing.T) {
	s, _ := buildSearcher(t, 23)
	req := baseRequest()
	req.Budget = 1e-9
	if _, err := s.TopK(bg, req, 3, DefaultScoreWeights()); err == nil {
		t.Fatal("unaffordable top-k should fail")
	}
}

func TestScoreWeights(t *testing.T) {
	w := DefaultScoreWeights()
	req := baseRequest()
	lowPrice := Metrics{Correlation: 1, Quality: 1, Weight: 0.5, Price: 10}
	highPrice := lowPrice
	highPrice.Price = 1e8
	if w.Score(lowPrice, req) <= w.Score(highPrice, req) {
		t.Fatal("cheaper identical option must score higher")
	}
	lowCorr := lowPrice
	lowCorr.Correlation = 0.1
	if w.Score(lowPrice, req) <= w.Score(lowCorr, req) {
		t.Fatal("higher correlation must score higher")
	}
	// Unbounded budget/alpha still produce finite scores.
	free := Request{}
	if s := w.Score(lowPrice, free); s != s || s == 0 {
		_ = s // any finite value is fine; NaN would fail s != s
	}
}

func TestSpreadScore(t *testing.T) {
	s, _ := buildSearcher(t, 24)
	req := baseRequest()
	options, err := s.TopK(bg, req, 3, DefaultScoreWeights())
	if err != nil {
		t.Fatal(err)
	}
	spread := SpreadScore(options)
	if spread < 0 || spread > 1 {
		t.Fatalf("spread = %v out of [0,1]", spread)
	}
	if got := SpreadScore(options[:1]); got != 0 {
		t.Fatalf("single-option spread = %v", got)
	}
	// Identical options → spread 0; disjoint → 1.
	if d := vertexDistance([]int{1, 2}, []int{1, 2}); d != 0 {
		t.Fatalf("identical distance = %v", d)
	}
	if d := vertexDistance([]int{1}, []int{2}); d != 1 {
		t.Fatalf("disjoint distance = %v", d)
	}
}
