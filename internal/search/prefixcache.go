package search

import (
	"strings"
	"sync"

	"github.com/dance-db/dance/internal/relation"
)

// prefixCache is a sharded, size-capped cache of accumulated columnar join
// prefixes, implementing sampling.PrefixCache. MCMC neighbors differ in one
// edge variant, so candidate paths share long spine prefixes; caching the
// intermediate after each hop lets a neighbor re-join only the suffix
// behind its changed edge. Keys are produced by the sampling package and
// cover the path-prefix fingerprint plus the sampling options' CacheKey —
// equal spines evaluated under different η/ρ/seed produce different tables
// and must not share entries.
//
// The cache is bounded (FIFO per shard) both by entry count and by a total
// row budget — entries are whole join intermediates, which are unbounded
// when η re-sampling is off — and oversized intermediates are never cached
// at all. Evicting or skipping an entry only costs a re-join, never
// correctness.
const (
	prefixCacheShardCap = 48
	// prefixCacheShardRowBudget bounds the summed NumRows of a shard's
	// entries (~16 MB of codes per shard at 4 typical uint32 columns).
	prefixCacheShardRowBudget = 1 << 20
	// prefixEntryMaxRows keeps any single huge intermediate from churning
	// the whole shard.
	prefixEntryMaxRows = prefixCacheShardRowBudget / 4
)

type prefixCache struct {
	shards []prefixShard // len is a power of two (cacheShardCount), fixed at construction
}

type prefixShard struct {
	mu   sync.Mutex                    // lockorder: leaf
	m    map[string]*relation.Columnar // guarded by mu
	fifo []string                      // guarded by mu
	rows int                           // guarded by mu
}

func newPrefixCache() *prefixCache {
	c := &prefixCache{shards: make([]prefixShard, cacheShardCount(16))}
	for i := range c.shards {
		c.shards[i].m = make(map[string]*relation.Columnar)
	}
	return c
}

func (c *prefixCache) shard(key string) *prefixShard {
	// FNV-1a over the key, like the eval cache.
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return &c.shards[h&uint32(len(c.shards)-1)]
}

// Get returns the cached intermediate for key, if present.
func (c *prefixCache) Get(key string) (*relation.Columnar, bool) {
	s := c.shard(key)
	s.mu.Lock()
	v, ok := s.m[key]
	s.mu.Unlock()
	return v, ok
}

// Put publishes an intermediate, evicting the shard's oldest entries past
// the entry cap or the row budget. Re-putting an existing key refreshes the
// value without growing the FIFO; intermediates past prefixEntryMaxRows are
// not cached at all.
func (c *prefixCache) Put(key string, v *relation.Columnar) {
	if v.NumRows() > prefixEntryMaxRows {
		return
	}
	s := c.shard(key)
	s.mu.Lock()
	if old, ok := s.m[key]; ok {
		s.rows -= old.NumRows()
	} else {
		s.fifo = append(s.fifo, key)
	}
	s.m[key] = v
	s.rows += v.NumRows()
	for len(s.fifo) > prefixCacheShardCap || s.rows > prefixCacheShardRowBudget {
		old := s.fifo[0]
		s.fifo = s.fifo[1:]
		if ev, ok := s.m[old]; ok {
			s.rows -= ev.NumRows()
			delete(s.m, old)
		}
	}
	s.mu.Unlock()
}

// Len reports the number of cached prefixes (for tests).
func (c *prefixCache) Len() int {
	n := 0
	for i := range c.shards {
		c.shards[i].mu.Lock()
		n += len(c.shards[i].m)
		c.shards[i].mu.Unlock()
	}
	return n
}

// colStore lazily builds and shares the columnar encoding of each instance
// sample, keyed by the instance's versioned cache key — so a Caches value
// shared across graph rebuilds keeps serving encodings for instances whose
// offline state did not change.
type colStore struct {
	mu sync.RWMutex                  // lockorder: leaf
	m  map[string]*relation.Columnar // guarded by mu
}

// joinIndexStore lazily builds and shares build-side join indexes per
// (versioned instance, join-attribute set) pair.
type joinIndexStore struct {
	mu sync.RWMutex                   // lockorder: leaf
	m  map[string]*relation.JoinIndex // guarded by mu
}

func joinIndexKey(instKey string, on []string) string {
	var b strings.Builder
	b.WriteString(instKey)
	for _, a := range on {
		b.WriteByte(0)
		b.WriteString(a)
	}
	return b.String()
}

// Caches bundles the memoized evaluation state — metric evaluations,
// columnar encodings, join indexes and join prefixes — so it can outlive a
// single Searcher. Every key incorporates the owning instance's
// (name, version) identity; a sample-rate escalation therefore invalidates
// exactly the entries of datasets whose rows changed, while state derived
// from unchanged datasets (empty deltas, owned sources) keeps hitting.
// Safe for concurrent use by any number of Searchers.
type Caches struct {
	eval     *evalCache
	cols     colStore
	joinIdx  joinIndexStore
	prefixes *prefixCache
}

// NewCaches returns an empty cache set.
func NewCaches() *Caches {
	return &Caches{
		eval:     newEvalCache(),
		cols:     colStore{m: make(map[string]*relation.Columnar)},
		joinIdx:  joinIndexStore{m: make(map[string]*relation.JoinIndex)},
		prefixes: newPrefixCache(),
	}
}

// Retain drops the heavyweight cached state — columnar encodings and
// join indexes — of instances whose versioned key is no longer live.
// A long-lived session escalates repeatedly, and every escalation
// supersedes most dataset versions; without pruning, each round would
// strand a full generation of per-row indexes in memory. (The evaluator
// cache is entry-capped instead — its values are small — and the prefix
// cache is row-budgeted already.)
func (c *Caches) Retain(live map[string]bool) {
	c.cols.mu.Lock()
	for key := range c.cols.m {
		if !live[key] {
			delete(c.cols.m, key)
		}
	}
	c.cols.mu.Unlock()
	c.joinIdx.mu.Lock()
	for key := range c.joinIdx.m {
		// joinIndexKey is instKey + "\x00" + attr…; recover the instance.
		inst := key
		if i := strings.IndexByte(key, 0); i >= 0 {
			inst = key[:i]
		}
		if !live[inst] {
			delete(c.joinIdx.m, key)
		}
	}
	c.joinIdx.mu.Unlock()
}

// RetainInstances prunes the caches down to the given searcher's live
// instance keys.
func (c *Caches) RetainInstances(s *Searcher) {
	live := make(map[string]bool, len(s.instKey))
	for _, k := range s.instKey {
		live[k] = true
	}
	c.Retain(live)
}
