package search

import (
	"testing"

	"github.com/dance-db/dance/internal/joingraph"
	"github.com/dance-db/dance/internal/pricing"
	"github.com/dance-db/dance/internal/relation"
)

// rebuildGraph builds the scenario graph with explicit per-instance
// versions (and optionally a mutated tgt1 sample), imitating what the
// incremental offline store hands the searcher after an escalation.
func rebuildGraph(t *testing.T, seed int64, versions map[string]uint64, mutate func(map[string]*relation.Table)) (*joingraph.Graph, map[string]*relation.Table) {
	t.Helper()
	insts, tables := scenario(seed)
	if mutate != nil {
		mutate(tables)
		for _, inst := range insts {
			inst.Sample = tables[inst.Name]
		}
	}
	for _, inst := range insts {
		inst.Version = versions[inst.Name]
	}
	g, err := joingraph.Build(insts, joingraph.Config{
		Quoter: &testQuoter{model: pricing.Cached(pricing.DefaultEntropyModel()), tables: tables},
	})
	if err != nil {
		t.Fatal(err)
	}
	return g, tables
}

// TestSharedCachesVersionedInvalidation pins the per-dataset-version cache
// keying: a cache set shared across two searchers must keep serving entries
// for unchanged (same-version) instances, and must NOT serve stale metrics
// once an instance's sample changed under a bumped version.
func TestSharedCachesVersionedInvalidation(t *testing.T) {
	caches := NewCaches()
	v1 := map[string]uint64{"mid1": 1, "mid2": 2, "tgt1": 3, "tgt2": 4}

	g1, _ := rebuildGraph(t, 3, v1, nil)
	s1 := NewSearcherWithCaches(g1, caches)
	req := baseRequest()
	res1, err := s1.Heuristic(bg, req)
	if err != nil {
		t.Fatal(err)
	}
	warm := caches.eval.Len()
	if warm == 0 {
		t.Fatal("no evaluations were cached")
	}

	// Same versions, new Searcher: everything hits, nothing re-evaluates.
	g2, _ := rebuildGraph(t, 3, v1, nil)
	s2 := NewSearcherWithCaches(g2, caches)
	res2, err := s2.Heuristic(bg, req)
	if err != nil {
		t.Fatal(err)
	}
	if caches.eval.Len() != warm {
		t.Fatalf("same-version rebuild re-evaluated: cache %d → %d", warm, caches.eval.Len())
	}
	if fingerprint(res1.TG) != fingerprint(res2.TG) || res1.Est != res2.Est {
		t.Fatal("same-version rebuild changed the result")
	}

	// Bump tgt1's version with a *changed* sample: evaluations touching
	// tgt1 must be redone (the cache grows), and the metrics reflect the
	// new data rather than the cached old values.
	v2 := map[string]uint64{"mid1": 1, "mid2": 2, "tgt1": 30, "tgt2": 4}
	g3, _ := rebuildGraph(t, 3, v2, func(tables map[string]*relation.Table) {
		tgt1 := tables["tgt1"]
		// Rewrite yval so every key3 maps to the same label: correlation
		// through the tgt1 chain collapses.
		for i := range tgt1.Rows {
			tgt1.Rows[i][1] = relation.StringValue("same")
		}
	})
	s3 := NewSearcherWithCaches(g3, caches)
	res3, err := s3.Heuristic(bg, req)
	if err != nil {
		t.Fatal(err)
	}
	if caches.eval.Len() == warm {
		t.Fatal("bumped version served stale cached evaluations")
	}
	if res3.Est.Correlation >= res1.Est.Correlation {
		t.Fatalf("stale metrics: correlation %v should drop below %v after tgt1 degraded",
			res3.Est.Correlation, res1.Est.Correlation)
	}

	// Sanity: a *fresh* cache on the degraded graph agrees with s3 — the
	// shared cache did not contaminate the new evaluation.
	s4 := NewSearcher(g3)
	res4, err := s4.Heuristic(bg, req)
	if err != nil {
		t.Fatal(err)
	}
	if res4.Est != res3.Est {
		t.Fatalf("shared-cache result %+v != fresh-cache result %+v", res3.Est, res4.Est)
	}
}
