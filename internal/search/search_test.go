package search

import (
	"context"
	"math/rand"
	"strings"
	"testing"

	"github.com/dance-db/dance/internal/fd"
	"github.com/dance-db/dance/internal/joingraph"
	"github.com/dance-db/dance/internal/pricing"
	"github.com/dance-db/dance/internal/relation"
)

var bg = context.Background()

// testQuoter prices projections on the instances' own tables.
type testQuoter struct {
	model  pricing.Model
	tables map[string]*relation.Table
}

func (q *testQuoter) QuoteProjection(_ context.Context, name string, attrs []string) (float64, error) {
	return q.model.PriceProjection(q.tables[name], attrs)
}

// scenario builds a 5-instance marketplace with a planted correlation chain:
//
//	src(key1, xval) — mid1(key1, key2) — mid2(key2, key3) — tgt1(key3, yval)
//	                                                  \\— tgt2(key1, yrnd)
//
// xval is driven by key1; key2/key3 deterministically derive from key1 via
// the mid tables; yval is driven by key3 — so the src→tgt1 chain carries
// real correlation while tgt2 offers the same attribute name with noise.
func scenario(seed int64) ([]*joingraph.Instance, map[string]*relation.Table) {
	rng := rand.New(rand.NewSource(seed))
	const n = 400

	src := relation.NewTable("src", relation.NewSchema(
		relation.Cat("key1", relation.KindInt),
		relation.Num("xval", relation.KindFloat),
	))
	mid1 := relation.NewTable("mid1", relation.NewSchema(
		relation.Cat("key1", relation.KindInt),
		relation.Cat("key2", relation.KindInt),
	))
	mid2 := relation.NewTable("mid2", relation.NewSchema(
		relation.Cat("key2", relation.KindInt),
		relation.Cat("key3", relation.KindInt),
	))
	tgt1 := relation.NewTable("tgt1", relation.NewSchema(
		relation.Cat("key3", relation.KindInt),
		relation.Cat("yval", relation.KindString),
	))
	tgt2 := relation.NewTable("tgt2", relation.NewSchema(
		relation.Cat("key1", relation.KindInt),
		relation.Cat("yval", relation.KindString),
	))

	for i := 0; i < n; i++ {
		k1 := int64(rng.Intn(12))
		src.AppendValues(relation.IntValue(k1), relation.FloatValue(float64(k1)*10+rng.Float64()))
		// tgt2's key domain only partially overlaps src's, so the edge has
		// strictly positive join informativeness (unmatched values).
		tgt2.AppendValues(relation.IntValue(2+int64(rng.Intn(12))), relation.StringValue(string(rune('a'+rng.Intn(6)))))
	}
	// mid1 misses key1 ∈ {10, 11}: every path out of src has positive JI.
	// Keys map to *contiguous* ranges (k/2, not k%m) so that yval groups
	// correspond to xval ranges — a signal the normalized cumulative
	// entropy correlation sees strongly.
	for k1 := int64(0); k1 < 10; k1++ {
		mid1.AppendValues(relation.IntValue(k1), relation.IntValue(k1/2))
	}
	for k2 := int64(0); k2 < 6; k2++ {
		mid2.AppendValues(relation.IntValue(k2), relation.IntValue(k2/2))
	}
	for k3 := int64(0); k3 < 3; k3++ {
		tgt1.AppendValues(relation.IntValue(k3), relation.StringValue(string(rune('a'+k3))))
	}

	tables := map[string]*relation.Table{
		"src": src, "mid1": mid1, "mid2": mid2, "tgt1": tgt1, "tgt2": tgt2,
	}
	insts := []*joingraph.Instance{
		{Name: "src", Sample: src, FullRows: n, Owned: true},
		{Name: "mid1", Sample: mid1, FullRows: 12, FDs: []fd.FD{fd.New("key2", "key1")}},
		{Name: "mid2", Sample: mid2, FullRows: 6, FDs: []fd.FD{fd.New("key3", "key2")}},
		{Name: "tgt1", Sample: tgt1, FullRows: 3, FDs: []fd.FD{fd.New("yval", "key3")}},
		{Name: "tgt2", Sample: tgt2, FullRows: n},
	}
	return insts, tables
}

func buildSearcher(t *testing.T, seed int64) (*Searcher, map[string]*relation.Table) {
	t.Helper()
	insts, tables := scenario(seed)
	g, err := joingraph.Build(insts, joingraph.Config{
		Quoter: &testQuoter{model: pricing.Cached(pricing.DefaultEntropyModel()), tables: tables},
	})
	if err != nil {
		t.Fatal(err)
	}
	return NewSearcher(g), tables
}

func baseRequest() Request {
	return Request{
		SourceAttrs: []string{"xval"},
		TargetAttrs: []string{"yval"},
		Budget:      1e9,
		Alpha:       10,
		Beta:        0,
		Iterations:  60,
		Seed:        3,
	}
}

func TestHeuristicFindsFeasible(t *testing.T) {
	s, _ := buildSearcher(t, 1)
	res, err := s.Heuristic(bg, baseRequest())
	if err != nil {
		t.Fatal(err)
	}
	if res.TG == nil {
		t.Fatal("nil target graph")
	}
	if res.Est.Correlation <= 0 {
		t.Fatalf("correlation = %v, want > 0", res.Est.Correlation)
	}
	// The result must cover both requested attributes.
	if _, ok := res.TG.Assign["xval"]; !ok {
		t.Fatal("xval not assigned")
	}
	if _, ok := res.TG.Assign["yval"]; !ok {
		t.Fatal("yval not assigned")
	}
	if res.Evals == 0 {
		t.Fatal("no evaluations recorded")
	}
}

func TestHeuristicPrefersCorrelatedPath(t *testing.T) {
	// tgt2 offers yval cheaply over one hop but with noise; the planted
	// chain via tgt1 has real correlation. With a generous budget the
	// search should reach correlation well above the noise level.
	s, tables := buildSearcher(t, 2)
	res, err := s.Heuristic(bg, baseRequest())
	if err != nil {
		t.Fatal(err)
	}
	real, err := s.EvaluateOnTables(bg, res.TG, baseRequest(), tables)
	if err != nil {
		t.Fatal(err)
	}
	if real.Correlation < 0.2 {
		t.Fatalf("real correlation = %v, expected the planted signal (> 0.2)", real.Correlation)
	}
}

func TestBruteForceAtLeastHeuristic(t *testing.T) {
	s, _ := buildSearcher(t, 3)
	req := baseRequest()
	h, err := s.Heuristic(bg, req)
	if err != nil {
		t.Fatal(err)
	}
	bf, err := s.BruteForce(bg, req, BruteForceLimits{})
	if err != nil {
		t.Fatal(err)
	}
	if bf.Est.Correlation < h.Est.Correlation-1e-9 {
		t.Fatalf("brute force corr %v < heuristic %v", bf.Est.Correlation, h.Est.Correlation)
	}
	if bf.Evals <= h.Evals {
		t.Fatalf("brute force evals (%d) should exceed heuristic evals (%d)", bf.Evals, h.Evals)
	}
}

func TestBudgetConstraint(t *testing.T) {
	s, _ := buildSearcher(t, 4)
	req := baseRequest()
	req.Budget = 1e-6 // nothing is affordable
	if _, err := s.Heuristic(bg, req); err == nil {
		t.Fatal("unaffordable request should fail")
	}
	if _, err := s.BruteForce(bg, req, BruteForceLimits{}); err == nil {
		t.Fatal("unaffordable brute force should fail")
	}
}

func TestAlphaConstraint(t *testing.T) {
	s, _ := buildSearcher(t, 5)
	req := baseRequest()
	req.Alpha = 1e-9 // no multi-edge I-graph can be this informative
	if _, err := s.Heuristic(bg, req); err == nil {
		t.Fatal("alpha-infeasible request should fail")
	}
}

func TestBetaConstraint(t *testing.T) {
	s, _ := buildSearcher(t, 6)
	req := baseRequest()
	req.Beta = 1.01 // quality cannot exceed 1
	if _, err := s.Heuristic(bg, req); err == nil {
		t.Fatal("beta-infeasible request should fail")
	}
}

func TestSourcelessRequest(t *testing.T) {
	s, _ := buildSearcher(t, 7)
	req := baseRequest()
	req.SourceAttrs = nil
	req.TargetAttrs = []string{"xval", "yval"}
	res, err := s.Heuristic(bg, req)
	if err != nil {
		t.Fatal(err)
	}
	if res.TG == nil {
		t.Fatal("nil result")
	}
	req.TargetAttrs = []string{"yval"}
	if _, err := s.Heuristic(bg, req); err == nil {
		t.Fatal("source-less single-attribute request should fail")
	}
}

func TestUnknownAttributeFails(t *testing.T) {
	s, _ := buildSearcher(t, 8)
	req := baseRequest()
	req.TargetAttrs = []string{"no_such_attr"}
	if _, err := s.Heuristic(bg, req); err == nil {
		t.Fatal("unknown target attribute should fail")
	}
	if _, err := s.BruteForce(bg, req, BruteForceLimits{}); err == nil {
		t.Fatal("unknown target attribute should fail in brute force")
	}
}

func TestPriceRange(t *testing.T) {
	s, _ := buildSearcher(t, 9)
	req := baseRequest()
	lb, ub, err := s.PriceRange(bg, req, BruteForceLimits{})
	if err != nil {
		t.Fatal(err)
	}
	if lb <= 0 || ub < lb {
		t.Fatalf("price range [%v, %v] invalid", lb, ub)
	}
	// Budget = UB must be feasible.
	req.Budget = ub
	if _, err := s.Heuristic(bg, req); err != nil {
		t.Fatalf("budget=UB should be feasible: %v", err)
	}
}

func TestEvaluateCaching(t *testing.T) {
	s, _ := buildSearcher(t, 10)
	req := baseRequest()
	res, err := s.Heuristic(bg, req)
	if err != nil {
		t.Fatal(err)
	}
	m1, err := s.Evaluate(bg, res.TG, req)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := s.Evaluate(bg, res.TG, req)
	if err != nil {
		t.Fatal(err)
	}
	if m1 != m2 {
		t.Fatal("cached evaluation differs")
	}
}

func TestEvaluateOnTablesMatchesFullRateSamples(t *testing.T) {
	// The samples in this scenario ARE the full tables, so sample metrics
	// and full-table metrics must agree exactly.
	s, tables := buildSearcher(t, 11)
	req := baseRequest()
	res, err := s.Heuristic(bg, req)
	if err != nil {
		t.Fatal(err)
	}
	est, err := s.Evaluate(bg, res.TG, req)
	if err != nil {
		t.Fatal(err)
	}
	real, err := s.EvaluateOnTables(bg, res.TG, req, tables)
	if err != nil {
		t.Fatal(err)
	}
	if diff := est.Correlation - real.Correlation; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("est corr %v != real corr %v at rate 1", est.Correlation, real.Correlation)
	}
}

// Variant-swap scenario: two instances share {jkey, rkey}. rkey matches
// one-to-one (JI 0, the initial minimal-weight variant) but pairs rows at
// random, destroying correlation; jkey joins coarser groups (higher JI) but
// carries the planted x↔y correlation. Algorithm 1 must escape the initial
// variant.
func TestMCMCFindsBetterVariant(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	const n = 300
	a := relation.NewTable("a", relation.NewSchema(
		relation.Cat("jkey", relation.KindInt),
		relation.Cat("rkey", relation.KindInt),
		relation.Cat("x", relation.KindString),
	))
	b := relation.NewTable("b", relation.NewSchema(
		relation.Cat("jkey", relation.KindInt),
		relation.Cat("rkey", relation.KindInt),
		relation.Cat("y", relation.KindString),
	))
	permB := rng.Perm(n)
	for i := 0; i < n; i++ {
		k := int64(i % 8)
		a.AppendValues(relation.IntValue(k), relation.IntValue(int64(i)),
			relation.StringValue(string(rune('a'+k))))
		// b's jkey domain [3,10] only partially overlaps a's [0,7] with
		// *several* unmatched values per side, so the jkey variant has
		// JI > 0 (ambiguous NULL pairings) while rkey matches one-to-one
		// (JI = 0) and stays the minimal-weight initial choice.
		kb := int64(permB[i]%8) + 3
		b.AppendValues(relation.IntValue(kb), relation.IntValue(int64(i)),
			relation.StringValue(string(rune('a'+kb))))
	}
	tables := map[string]*relation.Table{"a": a, "b": b}
	insts := []*joingraph.Instance{
		{Name: "a", Sample: a, FullRows: n, Owned: true},
		{Name: "b", Sample: b, FullRows: n},
	}
	g, err := joingraph.Build(insts, joingraph.Config{
		Quoter: &testQuoter{model: pricing.Cached(pricing.DefaultEntropyModel()), tables: tables},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Precondition: rkey variant is the minimal-weight one.
	e := g.EdgeBetween(0, 1)
	if got := e.Variants[e.MinVariant()].JoinAttrs; len(got) != 1 || got[0] != "rkey" {
		t.Fatalf("test setup: expected rkey to be the minimal variant, got %v", got)
	}

	s := NewSearcher(g)
	req := Request{
		SourceAttrs: []string{"x"},
		TargetAttrs: []string{"y"},
		Budget:      1e9,
		Alpha:       10,
		Iterations:  80,
		Seed:        5,
	}
	res, err := s.Heuristic(bg, req)
	if err != nil {
		t.Fatal(err)
	}
	usedAttrs := strings.Join(res.TG.Edges[0].JoinAttrsOf(g), ",")
	if !strings.Contains(usedAttrs, "jkey") {
		t.Fatalf("MCMC stayed on the uncorrelated variant %q (corr=%v)", usedAttrs, res.Est.Correlation)
	}
	if res.Est.Correlation < 1 {
		t.Fatalf("correlation = %v, expected ≈ 3 bits on the jkey variant", res.Est.Correlation)
	}
}
