package search

import (
	"fmt"
	"sync"
	"testing"
)

// Contention benchmarks for the GOMAXPROCS-sized cache sharding: eight
// goroutines — the intra-chain segment pool of one 8-worker search —
// hammering get/put with a mixed hit/miss key stream, against a
// single-shard cache (the degenerate pre-sizing layout under maximum
// contention) and the GOMAXPROCS-sized default. Run with -cpu 8 on a
// multicore box to see the spread; on one CPU the two converge because
// nothing contends.
//
//	go test ./internal/search/ -run - -bench EvalCacheContention -cpu 8

func benchmarkEvalCacheContention(b *testing.B, c *evalCache) {
	const keys = 1 << 10
	ks := make([]string, keys)
	for i := range ks {
		ks[i] = fmt.Sprintf("tg-%d|inst-%d|corr", i, i%7)
		if i%2 == 0 {
			c.put(ks[i], Metrics{Correlation: float64(i)})
		}
	}
	const workers = 8
	b.ResetTimer()
	perWorker := b.N/workers + 1
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				k := ks[(i*workers+w)%keys]
				if _, ok := c.get(k); !ok {
					c.put(k, Metrics{Correlation: float64(i)})
				}
			}
		}(w)
	}
	wg.Wait()
}

func BenchmarkEvalCacheContentionSingleShard(b *testing.B) {
	benchmarkEvalCacheContention(b, newEvalCacheShards(1))
}

func BenchmarkEvalCacheContentionSharded(b *testing.B) {
	benchmarkEvalCacheContention(b, newEvalCache())
}
