package search

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"github.com/dance-db/dance/internal/joingraph"
	"github.com/dance-db/dance/internal/pricing"
	"github.com/dance-db/dance/internal/relation"
)

// buildSwappableSearcher builds a chain a — b — c whose b–c edge shares two
// attributes, giving the MCMC three join-attribute variants to walk over.
// Without swappable edges Algorithm 1 exits after the initial evaluation
// and cancellation has nothing to interrupt.
func buildSwappableSearcher(t *testing.T) *Searcher {
	t.Helper()
	rng := rand.New(rand.NewSource(17))
	a := relation.NewTable("a", relation.NewSchema(
		relation.Cat("k", relation.KindInt),
		relation.Num("x", relation.KindFloat),
	))
	b := relation.NewTable("b", relation.NewSchema(
		relation.Cat("k", relation.KindInt),
		relation.Cat("j1", relation.KindInt),
		relation.Cat("j2", relation.KindInt),
	))
	c := relation.NewTable("c", relation.NewSchema(
		relation.Cat("j1", relation.KindInt),
		relation.Cat("j2", relation.KindInt),
		relation.Cat("y", relation.KindString),
	))
	for i := 0; i < 300; i++ {
		k := int64(rng.Intn(30))
		a.AppendValues(relation.IntValue(k), relation.FloatValue(float64(k)+rng.Float64()))
	}
	for k := int64(0); k < 30; k++ {
		b.AppendValues(relation.IntValue(k), relation.IntValue(k%6), relation.IntValue(k%5))
	}
	for j1 := int64(0); j1 < 6; j1++ {
		for j2 := int64(0); j2 < 5; j2++ {
			c.AppendValues(relation.IntValue(j1), relation.IntValue(j2),
				relation.StringValue(string(rune('a'+(j1+j2)%4))))
		}
	}
	insts := []*joingraph.Instance{
		{Name: "a", Sample: a, FullRows: a.NumRows(), Owned: true},
		{Name: "b", Sample: b, FullRows: b.NumRows()},
		{Name: "c", Sample: c, FullRows: c.NumRows()},
	}
	tables := map[string]*relation.Table{"a": a, "b": b, "c": c}
	g, err := joingraph.Build(insts, joingraph.Config{
		Quoter: &testQuoter{model: pricing.Cached(pricing.DefaultEntropyModel()), tables: tables},
	})
	if err != nil {
		t.Fatal(err)
	}
	// The walk needs at least one edge with alternative variants.
	swappable := false
	for _, e := range g.Edges {
		if len(e.Variants) > 1 {
			swappable = true
		}
	}
	if !swappable {
		t.Fatal("scenario has no multi-variant edge; the MCMC would exit immediately")
	}
	return NewSearcher(g)
}

func swappableRequest() Request {
	return Request{
		SourceAttrs: []string{"x"},
		TargetAttrs: []string{"y"},
		Budget:      1e9,
		Alpha:       100,
		Iterations:  1 << 30, // far beyond what can run before cancellation
		Seed:        5,
	}
}

// Cancelling mid-search must stop the MCMC chains promptly with ctx.Err(),
// not drain the full iteration budget.
func TestHeuristicCancelsMidMCMC(t *testing.T) {
	for _, workers := range []int{1, 0} {
		s := buildSwappableSearcher(t)
		req := swappableRequest()
		req.Workers = workers

		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(50 * time.Millisecond)
			cancel()
		}()
		start := time.Now()
		_, err := s.Heuristic(ctx, req)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if elapsed := time.Since(start); elapsed > 10*time.Second {
			t.Fatalf("workers=%d: cancellation took %v", workers, elapsed)
		}
		cancel()
	}
}

func TestTopKCancelsMidMCMC(t *testing.T) {
	s := buildSwappableSearcher(t)
	req := swappableRequest()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := s.TopK(ctx, req, 3, DefaultScoreWeights())
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
}

func TestHeuristicPreCancelled(t *testing.T) {
	s, _ := buildSearcher(t, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Heuristic(ctx, baseRequest()); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
