// Package search implements DANCE's online phase (Sec 5): the two-step
// heuristic — Step 1 finds minimal-weight I-layer graphs via landmarks,
// Step 2 runs the MCMC of Algorithm 1 over AS-edge variants — plus the LP
// and GP brute-force optimal baselines used by the evaluation.
package search

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"github.com/dance-db/dance/internal/fd"
	"github.com/dance-db/dance/internal/graphalg"
	"github.com/dance-db/dance/internal/infotheory"
	"github.com/dance-db/dance/internal/joingraph"
	"github.com/dance-db/dance/internal/parallel"
	"github.com/dance-db/dance/internal/relation"
	"github.com/dance-db/dance/internal/sampling"
)

// ErrInfeasible marks failures caused by the acquisition request itself —
// its constraints admit no plan, or it names attributes nobody sells —
// as opposed to marketplace or infrastructure errors. Wrapped (errors.Is)
// by every search entry point, and preserved through core.Dance's
// escalation wrapper, so service layers can map it to a client-side
// status.
var ErrInfeasible = errors.New("request infeasible")

// Request is one data-acquisition request (Sec 2.5).
type Request struct {
	// SourceAttrs is AS. If empty, the request degenerates to finding the
	// best correlation within AT: the first target attribute plays X and
	// the rest play Y (the paper's "acquisition without S and AS").
	SourceAttrs []string
	// TargetAttrs is AT.
	TargetAttrs []string
	// Budget is B; ≤ 0 means unbounded.
	Budget float64
	// Alpha bounds total join informativeness w(TG) ≤ α; ≤ 0 = unbounded.
	Alpha float64
	// Beta lower-bounds quality Q(TG) ≥ β.
	Beta float64
	// Iterations is ℓ, the MCMC iteration count (default 100).
	Iterations int
	// Eta is the re-sampling threshold η for intermediate joins
	// (0 disables re-sampling).
	Eta int
	// ResampleRate is ρ (default 0.5 when Eta > 0).
	ResampleRate float64
	// Landmarks is the landmark count for Step 1 (default 6).
	Landmarks int
	// MaxCovers caps enumerated source/target covers (default 8).
	MaxCovers int
	// MaxIGraphs caps the Step 1 candidates handed to Step 2 (default 4).
	MaxIGraphs int
	// Seed drives the MCMC and landmark selection.
	Seed int64
	// Workers bounds Step 2's concurrency. Work is split *inside* each
	// chain: a candidate's ℓ iterations partition into fixed segments (a
	// function of ℓ alone, never of Workers), each restarting from the
	// candidate's initial target graph with an RNG stream derived from
	// (Seed, candidate, segment) — so eight workers help even when Step 1
	// yields two candidates. 0 or negative means one worker per CPU; 1
	// forces the serial engine. The best result is bit-identical for every
	// worker count: segmentation and RNG streams are worker-independent and
	// the reduction scans (candidate, segment) results in input order.
	Workers int
	// Greedy switches Algorithm 1's Metropolis acceptance
	// min(1, CORR'/CORR) to strict hill-climbing (accept only
	// improvements). Used by the acceptance-rule ablation.
	Greedy bool
	// Policy names the acquisition policy that plans the request ("" =
	// the default "dance" search). The search engine itself ignores it;
	// the core middleware resolves it against the policy registry and
	// normalizes it to the policy that produced the plan.
	Policy string
	// PolicyParams are policy-specific tunables (see GET /v1/policies for
	// each policy's schema); ignored by the search engine.
	PolicyParams map[string]float64
}

func (r Request) withDefaults() Request {
	if r.Iterations <= 0 {
		r.Iterations = 100
	}
	if r.Landmarks <= 0 {
		r.Landmarks = 6
	}
	if r.MaxCovers <= 0 {
		r.MaxCovers = 8
	}
	if r.MaxIGraphs <= 0 {
		r.MaxIGraphs = 4
	}
	if r.Eta > 0 && r.ResampleRate <= 0 {
		r.ResampleRate = 0.5
	}
	return r
}

// corrAttrs resolves the X and Y attribute sets for CORR (supporting the
// source-less request form).
func (r Request) corrAttrs() (x, y []string, err error) {
	if len(r.TargetAttrs) == 0 {
		return nil, nil, fmt.Errorf("search: no target attributes")
	}
	if len(r.SourceAttrs) > 0 {
		return r.SourceAttrs, r.TargetAttrs, nil
	}
	if len(r.TargetAttrs) < 2 {
		return nil, nil, fmt.Errorf("search: source-less request needs ≥ 2 target attributes")
	}
	return r.TargetAttrs[:1], r.TargetAttrs[1:], nil
}

// Metrics are the four quantities of the optimization problem (Eq 9).
type Metrics struct {
	Correlation float64
	Quality     float64
	Weight      float64
	Price       float64
}

// Feasible checks the constraints of Eq 9 (budget/α unbounded when ≤ 0).
func (m Metrics) Feasible(r Request) bool {
	if r.Budget > 0 && m.Price > r.Budget {
		return false
	}
	if r.Alpha > 0 && m.Weight > r.Alpha {
		return false
	}
	if m.Quality < r.Beta {
		return false
	}
	return true
}

// Result is a search outcome.
type Result struct {
	TG  *joingraph.TargetGraph
	Est Metrics
	// Evals counts full metric evaluations (the dominant cost, Sec 5.3).
	Evals int
	// Considered counts candidate target graphs examined.
	Considered int
}

// Searcher runs searches over one join graph. It is safe for concurrent
// use: the evaluation, columnar, join-index and join-prefix caches are all
// sharded or RWMutex-protected, and every search derives chain-local RNGs
// instead of mutating shared state.
//
// The caches may be shared across Searchers (NewSearcherWithCaches): every
// cache key incorporates the per-instance (name, version) identity, so a
// graph rebuilt from an incrementally merged sample store invalidates only
// the entries of datasets whose offline state actually changed.
type Searcher struct {
	G *joingraph.Graph

	caches *Caches
	// instKey is each instance's versioned cache identity, precomputed.
	instKey []string
}

// NewSearcher wraps a join graph with a private cache set (the classic
// one-searcher-per-graph mode).
func NewSearcher(g *joingraph.Graph) *Searcher {
	return NewSearcherWithCaches(g, NewCaches())
}

// NewSearcherWithCaches wraps a join graph around a shared cache set. The
// middleware passes one Caches across sample-rate escalations so that
// evaluation state derived from unchanged datasets survives the rebuild.
func NewSearcherWithCaches(g *joingraph.Graph, caches *Caches) *Searcher {
	s := &Searcher{G: g, caches: caches}
	s.instKey = make([]string, len(g.Instances))
	for i, inst := range g.Instances {
		s.instKey[i] = inst.CacheKey()
	}
	return s
}

// columnarOf returns the shared columnar encoding of instance v's sample:
// the store-prebuilt encoding when the instance carries one, else the
// cached (or freshly built) encoding under the instance's versioned key.
func (s *Searcher) columnarOf(v int) *relation.Columnar {
	if c := s.G.Instances[v].Columnar; c != nil {
		return c
	}
	key := s.instKey[v]
	s.caches.cols.mu.RLock()
	c := s.caches.cols.m[key]
	s.caches.cols.mu.RUnlock()
	if c != nil {
		return c
	}
	c = relation.ToColumnar(s.G.Instances[v].Sample)
	s.caches.cols.mu.Lock()
	defer s.caches.cols.mu.Unlock()
	if prev := s.caches.cols.m[key]; prev != nil {
		return prev
	}
	s.caches.cols.m[key] = c
	return c
}

// joinIndexOf returns the shared build-side join index of instance v on the
// given attributes, building it on first use (with up to workers goroutines
// — indexes are bit-identical for every worker count). The build — O(sample
// size) — runs outside the store lock so concurrent workers warming up
// different (instance, attrs) pairs don't serialize; a racing duplicate
// build is harmless (indexes are immutable, first store wins).
func (s *Searcher) joinIndexOf(v int, on []string, workers int) (*relation.JoinIndex, error) {
	key := joinIndexKey(s.instKey[v], on)
	s.caches.joinIdx.mu.RLock()
	idx := s.caches.joinIdx.m[key]
	s.caches.joinIdx.mu.RUnlock()
	if idx != nil {
		return idx, nil
	}
	built, err := s.columnarOf(v).BuildJoinIndexWorkers(workers, on...)
	if err != nil {
		return nil, err
	}
	s.caches.joinIdx.mu.Lock()
	defer s.caches.joinIdx.mu.Unlock()
	if idx = s.caches.joinIdx.m[key]; idx != nil {
		return idx, nil
	}
	s.caches.joinIdx.m[key] = built
	return built, nil
}

// fingerprint identifies a target graph up to metrics equivalence.
func fingerprint(tg *joingraph.TargetGraph) string {
	var b strings.Builder
	for _, e := range tg.Edges {
		b.WriteString(strconv.Itoa(e.I))
		b.WriteByte('-')
		b.WriteString(strconv.Itoa(e.J))
		b.WriteByte('#')
		b.WriteString(strconv.Itoa(e.Variant))
		b.WriteByte(';')
	}
	for _, v := range tg.Vertices {
		b.WriteString(strconv.Itoa(v))
		b.WriteByte(',')
	}
	keys := make([]string, 0, len(tg.Assign))
	for k := range tg.Assign {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(strconv.Itoa(tg.Assign[k]))
		b.WriteByte(';')
	}
	return b.String()
}

// samplingOptions are the re-sampled-join options this request implies.
// Their CacheKey is part of the evaluator cache identity.
func (r Request) samplingOptions() sampling.PathJoinOptions {
	return sampling.PathJoinOptions{
		Eta:          r.Eta,
		ResampleRate: r.ResampleRate,
		Hasher:       sampling.NewHasher(uint64(r.Seed) + 1),
	}
}

// corrKey identifies the request's X/Y attribute split for memoization:
// CORR is asymmetric (Def 2.5 treats X and Y differently), so requests
// over the same attribute set partitioned differently must not share
// cached metrics.
func (r Request) corrKey() string {
	return strings.Join(r.SourceAttrs, "\x00") + "\x01" + strings.Join(r.TargetAttrs, "\x00")
}

// evalKey extends the target-graph fingerprint with the versioned identity
// of every participating instance: metrics are a function of the samples,
// so a cache shared across rebuilds must distinguish dataset versions —
// and, by keying per instance, entries for target graphs touching only
// unchanged datasets keep hitting after an escalation.
func (s *Searcher) evalKey(tg *joingraph.TargetGraph, req Request) string {
	var b strings.Builder
	b.WriteString(fingerprint(tg))
	for _, v := range tg.Vertices {
		b.WriteString(s.instKey[v])
		b.WriteByte(';')
	}
	b.WriteByte('|')
	b.WriteString(req.corrKey())
	b.WriteByte('|')
	b.WriteString(req.samplingOptions().CacheKey())
	return b.String()
}

// Evaluate computes the estimated metrics of tg on the held samples,
// re-sampling intermediate joins per the request. Results are memoized
// under the (target-graph fingerprint, instance versions, X/Y split,
// sampling options) tuple, so one cache set can serve requests with
// different attribute splits, Eta/ResampleRate/Seed, or offline state
// versions without cross-contamination, from any number of goroutines.
func (s *Searcher) Evaluate(ctx context.Context, tg *joingraph.TargetGraph, req Request) (Metrics, error) {
	return s.evaluate(ctx, tg, req, 1)
}

// evaluate is Evaluate with a worker bound for the columnar join/grouping
// kernels of a cache miss. Metrics are bit-identical for every worker count
// (the kernels pin that), so cached entries are shared freely across calls
// with different worker bounds.
func (s *Searcher) evaluate(ctx context.Context, tg *joingraph.TargetGraph, req Request, workers int) (Metrics, error) {
	key := s.evalKey(tg, req)
	if m, ok := s.caches.eval.get(key); ok {
		return m, nil
	}
	m, err := s.evaluateUncached(ctx, tg, req, workers)
	if err != nil {
		return Metrics{}, err
	}
	s.caches.eval.put(key, m)
	return m, nil
}

// evaluateUncached runs entirely on the columnar fast path: instance
// samples are dictionary-encoded once per Searcher, build-side join indexes
// are shared per (instance, join-attrs), the join never materializes rows,
// and common path prefixes are reused through the prefix cache. The metrics
// are bit-identical to joining the row samples with
// sampling.ResampledJoinPath and calling infotheory.CorrelationOnRows and
// fd.QualitySet (pinned by the columnar equivalence tests).
func (s *Searcher) evaluateUncached(ctx context.Context, tg *joingraph.TargetGraph, req Request, workers int) (Metrics, error) {
	x, y, err := req.corrAttrs()
	if err != nil {
		return Metrics{}, err
	}
	hops, err := tg.JoinPlan()
	if err != nil {
		return Metrics{}, err
	}
	steps := make([]sampling.ColumnarStep, len(hops))
	for i, hp := range hops {
		st := sampling.ColumnarStep{C: s.columnarOf(hp.Vertex), On: hp.On, ID: s.instKey[hp.Vertex]}
		if i > 0 {
			if st.Index, err = s.joinIndexOf(hp.Vertex, hp.On, workers); err != nil {
				return Metrics{}, err
			}
		}
		steps[i] = st
	}
	opts := req.samplingOptions()
	opts.Workers = workers
	j, _, err := sampling.ResampledJoinPathColumnar(steps, opts, s.caches.prefixes)
	if err != nil {
		return Metrics{}, err
	}
	m := Metrics{Weight: tg.Weight()}
	m.Price, err = tg.Price(ctx)
	if err != nil {
		return Metrics{}, err
	}
	if j.NumRows() == 0 {
		// Empty join sample: no correlation evidence, quality vacuous.
		m.Correlation, m.Quality = 0, 0
		return m, nil
	}
	m.Correlation, err = infotheory.CorrelationColumnar(j, x, y)
	if err != nil {
		return Metrics{}, err
	}
	m.Quality, err = fd.QualitySetColumnar(j, tg.FDs())
	if err != nil {
		return Metrics{}, err
	}
	return m, nil
}

// EvaluateOnTables computes *real* metrics of tg by joining the given full
// tables (keyed by instance name) instead of the samples — the evaluation
// protocol of Sec 6 measures real correlation even for sample-based
// searches. Prices remain marketplace quotes.
func (s *Searcher) EvaluateOnTables(ctx context.Context, tg *joingraph.TargetGraph, req Request, tables map[string]*relation.Table) (Metrics, error) {
	x, y, err := req.corrAttrs()
	if err != nil {
		return Metrics{}, err
	}
	steps, err := tg.JoinSteps()
	if err != nil {
		return Metrics{}, err
	}
	// Swap each sample for its full table.
	full := make([]relation.PathStep, len(steps))
	for i, st := range steps {
		ft, ok := tables[st.Table.Name]
		if !ok {
			return Metrics{}, fmt.Errorf("search: no full table for instance %q", st.Table.Name)
		}
		full[i] = relation.PathStep{Table: ft, On: st.On}
	}
	j, err := relation.JoinPath(full)
	if err != nil {
		return Metrics{}, err
	}
	m := Metrics{Weight: tg.Weight()}
	m.Price, err = tg.Price(ctx)
	if err != nil {
		return Metrics{}, err
	}
	if j.NumRows() == 0 {
		return m, nil
	}
	m.Correlation, err = infotheory.Correlation(j, x, y)
	if err != nil {
		return Metrics{}, err
	}
	m.Quality, err = fd.QualitySet(j, tg.FDs())
	if err != nil {
		return Metrics{}, err
	}
	return m, nil
}

// step1JitterTrials and step1JitterFactor diversify the Step 1 candidate
// pool: besides the exact minimal-weight landmark unions, extra rounds run
// on multiplicatively jittered edge weights (factors in [0.5, 1.5]), so
// near-minimal I-graphs enter the pool too; a final round uses unit weights,
// yielding the fewest-joins tree (the paper's own intuition: shorter join
// paths render higher correlation). Trees are always re-weighted with the
// true weights before α-filtering and ranking, and Step 2 picks among
// candidates by estimated correlation — low weight is the paper's *proxy*
// for high correlation (Sec 5), not the objective itself.
const (
	step1JitterTrials = 4
	step1JitterFactor = 1.0
)

// step1Candidates runs Step 1 (Sec 5.1): enumerate source and target covers,
// build terminals, and collect minimal-weight I-graphs via the landmark
// heuristic. Candidates are deduplicated, weight-filtered by α, sorted by
// weight, and capped at MaxIGraphs.
func (s *Searcher) step1Candidates(req Request) ([]*graphalg.SteinerTree, error) {
	il := s.G.ILayer()
	rng := rand.New(rand.NewSource(req.Seed))

	targetCovers, err := s.G.TargetCovers(req.TargetAttrs, req.MaxCovers)
	if err != nil {
		return nil, err
	}
	var sourceCovers [][]int
	if len(req.SourceAttrs) > 0 {
		// SourceCovers pins source attributes to owned instances when the
		// shopper holds them: the paper joins S ∪ T, so owned data always
		// participates. Remaining covers are sorted to prefer owned
		// (free) instances.
		sourceCovers, err = s.G.SourceCovers(req.SourceAttrs, req.MaxCovers)
		if err != nil {
			return nil, err
		}
		sort.SliceStable(sourceCovers, func(a, b int) bool {
			return s.nonOwnedCount(sourceCovers[a]) < s.nonOwnedCount(sourceCovers[b])
		})
	} else {
		sourceCovers = [][]int{nil}
	}

	seen := map[string]bool{}
	var cands []*graphalg.SteinerTree
	for trial := 0; trial <= step1JitterTrials; trial++ {
		g := il
		switch {
		case trial == step1JitterTrials:
			g = unitWeights(il) // fewest-joins candidates
		case trial > 0:
			g = jitterWeights(il, rng, step1JitterFactor)
		}
		lm := g.BuildLandmarks(req.Landmarks, rng)
		for _, sc := range sourceCovers {
			for _, tc := range targetCovers {
				terminals := dedupeInts(append(append([]int{}, sc...), tc...))
				if len(terminals) == 0 {
					continue
				}
				var trees []*graphalg.SteinerTree
				if len(terminals) == 1 {
					trees = []*graphalg.SteinerTree{{Vertices: terminals}}
				} else {
					trees = g.SteinerLandmarkCandidates(lm, terminals)
				}
				for _, tr := range trees {
					if trial > 0 {
						tr = reweightTree(il, tr)
					}
					if req.Alpha > 0 && tr.Weight > req.Alpha {
						continue // Sec 5.1: no I-graph within α → skip
					}
					key := treeFingerprint(tr)
					if !seen[key] {
						seen[key] = true
						cands = append(cands, tr)
					}
				}
			}
		}
	}
	sort.SliceStable(cands, func(a, b int) bool { return cands[a].Weight < cands[b].Weight })
	if len(cands) > req.MaxIGraphs {
		cands = cands[:req.MaxIGraphs]
	}
	if len(cands) == 0 {
		return nil, fmt.Errorf("search: no I-graph connects the source and target attributes within α=%v: %w", req.Alpha, ErrInfeasible)
	}
	return cands, nil
}

// jitterWeights returns a copy of g with every edge weight multiplied by a
// uniform factor in [1−factor/2, 1+factor/2].
func jitterWeights(g *graphalg.Graph, rng *rand.Rand, factor float64) *graphalg.Graph {
	out := graphalg.NewGraph(g.N())
	for _, e := range g.Edges() {
		f := 1 + factor*(rng.Float64()-0.5)
		out.AddEdge(e[0], e[1], g.Weight(e[0], e[1])*f)
	}
	return out
}

// unitWeights returns a copy of g with every edge at weight 1, so shortest
// paths minimize join-path length.
func unitWeights(g *graphalg.Graph) *graphalg.Graph {
	out := graphalg.NewGraph(g.N())
	for _, e := range g.Edges() {
		out.AddEdge(e[0], e[1], 1)
	}
	return out
}

// reweightTree recomputes a candidate's weight on the true I-layer weights.
func reweightTree(il *graphalg.Graph, tr *graphalg.SteinerTree) *graphalg.SteinerTree {
	w := 0.0
	for _, e := range tr.Edges {
		w += il.Weight(e[0], e[1])
	}
	return &graphalg.SteinerTree{Vertices: tr.Vertices, Edges: tr.Edges, Weight: w}
}

func (s *Searcher) nonOwnedCount(cover []int) int {
	n := 0
	for _, i := range cover {
		if !s.G.Instances[i].Owned {
			n++
		}
	}
	return n
}

func dedupeInts(xs []int) []int {
	seen := map[int]bool{}
	var out []int
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	sort.Ints(out)
	return out
}

func treeFingerprint(tr *graphalg.SteinerTree) string {
	var b strings.Builder
	for _, v := range tr.Vertices {
		b.WriteString(strconv.Itoa(v))
		b.WriteByte(',')
	}
	for _, e := range tr.Edges {
		b.WriteString(strconv.Itoa(e[0]))
		b.WriteByte('-')
		b.WriteString(strconv.Itoa(e[1]))
		b.WriteByte(';')
	}
	return b.String()
}

// treeToTargetGraph converts a Step 1 I-graph into an initial target graph:
// each tree edge starts at its minimal-JI variant and requested attributes
// are assigned to covering tree vertices.
func (s *Searcher) treeToTargetGraph(tr *graphalg.SteinerTree, req Request) (*joingraph.TargetGraph, error) {
	edges := make([]joingraph.TGEdge, 0, len(tr.Edges))
	for _, e := range tr.Edges {
		ie := s.G.EdgeBetween(e[0], e[1])
		if ie == nil {
			return nil, fmt.Errorf("search: I-graph edge (%d,%d) missing from join graph", e[0], e[1])
		}
		i, j := e[0], e[1]
		if i > j {
			i, j = j, i
		}
		edges = append(edges, joingraph.TGEdge{I: i, J: j, Variant: ie.MinVariant()})
	}
	all := append(append([]string{}, req.SourceAttrs...), req.TargetAttrs...)
	assign, err := s.G.AssignAttrs(dedupeStrings(all), tr.Vertices)
	if err != nil {
		return nil, err
	}
	return joingraph.NewTargetGraph(s.G, tr.Vertices, edges, assign)
}

func dedupeStrings(xs []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}

// chainSeed derives a deterministic per-candidate RNG seed from the request
// seed and the candidate's Step 1 index (splitmix64 mixing), so every MCMC
// chain is reproducible in isolation, no matter which worker runs it or in
// what order chains finish.
func chainSeed(seed int64, i int) int64 {
	z := uint64(seed) + 0x9E3779B97F4A7C15*uint64(i+1)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// mcmcSegmentIters is the target segment length of a chain's walk: a
// candidate's ℓ iterations split into ceil(ℓ/mcmcSegmentIters) segments —
// a function of ℓ alone, never of Workers, so the unit list (and with it
// every RNG stream) is identical for every worker count. Segments restart
// from the candidate's initial target graph, trading some walk depth for
// parallelism; 16 keeps enough consecutive steps for the Metropolis chain
// to escape the initial state while giving 8 workers ~7 units per candidate
// at the default ℓ=100. mcmcMaxSegments bounds the unit list for huge ℓ
// (segments grow past mcmcSegmentIters instead): 64 units per candidate
// saturate any realistic pool, and an unbounded count would materialize
// ℓ/16 structs for a cancellation-bounded ℓ=2³⁰ request.
const (
	mcmcSegmentIters = 16
	mcmcMaxSegments  = 64
)

// segmentSeed derives the RNG stream of one (candidate, segment) pair by
// composing the splitmix64 chain derivation twice. Streams depend only on
// (request seed, candidate index, segment index) — never on scheduling.
func segmentSeed(seed int64, cand, seg int) int64 {
	return chainSeed(chainSeed(seed, cand), seg)
}

// chainPlan is one Step 1 candidate prepared for segmented MCMC.
type chainPlan struct {
	tg        *joingraph.TargetGraph // nil when the candidate was unconvertible (skipped)
	swappable []int                  // edge indexes with ≥ 2 variants
	segs      int                    // 0 when nothing is swappable: initial evaluation only
}

// chainPlans converts Step 1 candidates into target graphs and fixes each
// one's segmentation. viable counts the convertible candidates.
func (s *Searcher) chainPlans(cands []*graphalg.SteinerTree, req Request) (plans []chainPlan, viable int) {
	plans = make([]chainPlan, len(cands))
	for i, tr := range cands {
		tg, err := s.treeToTargetGraph(tr, req)
		if err != nil {
			continue // unconvertible candidate: skip, as the serial loop did
		}
		p := chainPlan{tg: tg}
		for ei, e := range tg.Edges {
			if len(s.G.EdgeBetween(e.I, e.J).Variants) > 1 {
				p.swappable = append(p.swappable, ei)
			}
		}
		if len(p.swappable) > 0 {
			p.segs = (req.Iterations + mcmcSegmentIters - 1) / mcmcSegmentIters
			if p.segs > mcmcMaxSegments {
				p.segs = mcmcMaxSegments
			}
		}
		plans[i] = p
		viable++
	}
	return plans, viable
}

// segUnit is one independently runnable MCMC segment.
type segUnit struct {
	cand, seg, iters int
}

// segmentUnits flattens the plans' segments into one candidate-major work
// list; segment s of a candidate gets iters/segs iterations plus one of the
// remainder, so per-candidate proposal counts sum to exactly ℓ.
func segmentUnits(plans []chainPlan, iterations int) []segUnit {
	var units []segUnit
	for ci, p := range plans {
		if p.segs == 0 {
			continue
		}
		base, extra := iterations/p.segs, iterations%p.segs
		for sg := 0; sg < p.segs; sg++ {
			it := base
			if sg < extra {
				it++
			}
			units = append(units, segUnit{cand: ci, seg: sg, iters: it})
		}
	}
	return units
}

// initWorkers splits the pool across phase 0's per-candidate initial
// evaluations: leftover workers fan into each evaluation's columnar join and
// grouping kernels (which are bit-identical for every worker count).
func initWorkers(workers, viable int) int {
	if viable > 0 && workers/viable > 1 {
		return workers / viable
	}
	return 1
}

// Heuristic runs the full two-step search: Step 1 minimal-weight I-graphs,
// then Algorithm 1's MCMC over join-attribute variants on each candidate,
// keeping the feasible target graph with the highest estimated correlation.
//
// Step 2 parallelism is intra-chain: each candidate's walk splits into
// fixed-length segments (chainPlans/segmentUnits), every segment restarting
// from the candidate's initial target graph with an RNG stream derived from
// (Seed, candidate, segment), and a pool of req.Workers goroutines drains
// the flattened unit list — so eight workers help even when Step 1 yields
// two candidates. The reduction scans results in (candidate, segment) input
// order, so the outcome is bit-identical for every worker count. Cancelling
// ctx stops every segment mid-walk and returns ctx.Err().
func (s *Searcher) Heuristic(ctx context.Context, req Request) (*Result, error) {
	req = req.withDefaults()
	cands, err := s.step1Candidates(req)
	if err != nil {
		return nil, err
	}
	plans, viable := s.chainPlans(cands, req)
	workers := parallel.DefaultWorkers(req.Workers)

	// Phase 0: evaluate every candidate's initial target graph once. The
	// segments of a candidate all restart from this state, so evaluating it
	// up front (a) avoids re-deriving it per segment and (b) warms the
	// prefix/join-index caches before the segment fan-out.
	perInit := initWorkers(workers, viable)
	initM, err := parallel.Map(ctx, len(plans), workers, func(i int) (Metrics, error) {
		if plans[i].tg == nil {
			return Metrics{}, nil
		}
		return s.evaluate(ctx, plans[i].tg, req, perInit)
	})
	if err != nil {
		return nil, err
	}

	units := segmentUnits(plans, req.Iterations)
	type segOut struct {
		tg *joingraph.TargetGraph
		m  Metrics
		ok bool
	}
	outs, err := parallel.Map(ctx, len(units), workers, func(u int) (segOut, error) {
		un := units[u]
		p := plans[un.cand]
		rng := rand.New(rand.NewSource(segmentSeed(req.Seed, un.cand, un.seg)))
		tg, m, ok, err := s.mcmcSegment(ctx, p.tg, initM[un.cand], p.swappable, un.iters, req, rng)
		if err != nil {
			return segOut{}, err
		}
		return segOut{tg: tg, m: m, ok: ok}, nil
	})
	if err != nil {
		return nil, err
	}

	// Reduce in candidate-major, then segment, order: worker-count
	// independent, and per-candidate totals (1 initial + ℓ proposals when
	// swappable) match the unsegmented walk exactly.
	best := &Result{}
	var bestM Metrics
	found := false
	consider := func(tg *joingraph.TargetGraph, m Metrics, ok bool) {
		if ok && (!found || m.Correlation > bestM.Correlation) {
			found = true
			best.TG = tg
			bestM = m
		}
	}
	ui := 0
	for ci, p := range plans {
		if p.tg == nil {
			continue
		}
		best.Evals++
		best.Considered++
		consider(p.tg, initM[ci], initM[ci].Feasible(req))
		for ; ui < len(units) && units[ui].cand == ci; ui++ {
			best.Evals += units[ui].iters
			best.Considered += units[ui].iters
			consider(outs[ui].tg, outs[ui].m, outs[ui].ok)
		}
	}
	if !found {
		return nil, fmt.Errorf("search: no feasible target graph (budget %v, α %v, β %v): %w", req.Budget, req.Alpha, req.Beta, ErrInfeasible)
	}
	best.Est = bestM
	return best, nil
}

// mcmcSegment runs one segment of Algorithm 1 (FindJoinTree_AttSet): iters
// variant-swap proposals with Metropolis acceptance min(1, CORR'/CORR),
// walking from the candidate's initial target graph (whose metrics, initM,
// phase 0 already evaluated — segments count only proposal evaluations) and
// tracking the best feasible state seen, the initial one included. The
// context is checked every iteration, so a cancelled request stops mid-walk.
func (s *Searcher) mcmcSegment(ctx context.Context, tg *joingraph.TargetGraph, initM Metrics, swappable []int, iters int, req Request, rng *rand.Rand) (*joingraph.TargetGraph, Metrics, bool, error) {
	cur, curM := tg, initM
	var bestTG *joingraph.TargetGraph
	var bestM Metrics
	found := false
	if curM.Feasible(req) {
		found = true
		bestTG, bestM = cur, curM
	}
	for it := 0; it < iters; it++ {
		if err := ctx.Err(); err != nil {
			return nil, Metrics{}, false, err
		}
		ei := swappable[rng.Intn(len(swappable))]
		edge := cur.Edges[ei]
		variants := s.G.EdgeBetween(edge.I, edge.J).Variants
		nv := rng.Intn(len(variants) - 1)
		if nv >= edge.Variant {
			nv++ // a *different* variant, uniform over the rest
		}
		cand := cur.Clone()
		cand.Edges[ei].Variant = nv

		candM, err := s.evaluate(ctx, cand, req, 1)
		if err != nil {
			return nil, Metrics{}, false, err
		}
		// Line 8 of Algorithm 1: constraint check first.
		if !candM.Feasible(req) {
			continue
		}
		// Line 9: accept with probability min(1, CORR'/CORR)
		// (or only strict improvements in greedy ablation mode).
		accept := true
		if candM.Correlation < curM.Correlation {
			if req.Greedy {
				accept = false
			} else if curM.Correlation > 0 {
				accept = rng.Float64() < candM.Correlation/curM.Correlation
			}
		}
		if accept {
			cur, curM = cand, candM
			if !found || curM.Correlation > bestM.Correlation {
				found = true
				bestTG, bestM = cur, curM
			}
		}
	}
	return bestTG, bestM, found, nil
}
