package search_test

// Columnar-vs-row equivalence at the evaluator's real surface: for target
// graphs drawn from TPC-H and TPC-E searches (NULL-dirty generators, mixed
// join-attribute variants, with and without η re-sampling), Searcher.Evaluate
// — the columnar fast path with shared join indexes and the join-prefix
// cache — must return bit-identical Metrics to the row-store pipeline
// (sampling.ResampledJoinPath + infotheory.CorrelationOnRows + fd.QualitySet).
// A -race test hammers one shared Searcher from concurrent searches so the
// prefix cache, columnar store and join-index store are exercised under
// parallel MCMC workers.

import (
	"context"
	"sync"
	"testing"

	"github.com/dance-db/dance/internal/experiments"
	"github.com/dance-db/dance/internal/fd"
	"github.com/dance-db/dance/internal/infotheory"
	"github.com/dance-db/dance/internal/joingraph"
	"github.com/dance-db/dance/internal/sampling"
	"github.com/dance-db/dance/internal/search"
)

var bgCtx = context.Background()

// rowReferenceEvaluate recomputes Evaluate's metrics through the row-store
// pipeline, from exported primitives only.
func rowReferenceEvaluate(t *testing.T, tg *joingraph.TargetGraph, req search.Request) search.Metrics {
	t.Helper()
	x, y := req.SourceAttrs, req.TargetAttrs
	if len(x) == 0 {
		x, y = req.TargetAttrs[:1], req.TargetAttrs[1:]
	}
	steps, err := tg.JoinSteps()
	if err != nil {
		t.Fatal(err)
	}
	opts := sampling.PathJoinOptions{
		Eta:          req.Eta,
		ResampleRate: req.ResampleRate,
		Hasher:       sampling.NewHasher(uint64(req.Seed) + 1),
	}
	j, _, err := sampling.ResampledJoinPath(steps, opts)
	if err != nil {
		t.Fatal(err)
	}
	m := search.Metrics{Weight: tg.Weight()}
	m.Price, err = tg.Price(bgCtx)
	if err != nil {
		t.Fatal(err)
	}
	if j.NumRows() == 0 {
		return m
	}
	m.Correlation, err = infotheory.CorrelationOnRows(j, x, y)
	if err != nil {
		t.Fatal(err)
	}
	m.Quality, err = fd.QualitySet(j, tg.FDs())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// neighborhood returns tg plus every single-edge variant swap — the moves
// the MCMC proposes — so the equivalence sweep covers the prefix cache's
// reuse pattern, not just one path.
func neighborhood(g *joingraph.Graph, tg *joingraph.TargetGraph) []*joingraph.TargetGraph {
	out := []*joingraph.TargetGraph{tg}
	for ei, e := range tg.Edges {
		variants := g.EdgeBetween(e.I, e.J).Variants
		for v := range variants {
			if v == e.Variant {
				continue
			}
			cand := tg.Clone()
			cand.Edges[ei].Variant = v
			out = append(out, cand)
		}
	}
	return out
}

func equivSweep(t *testing.T, env *experiments.Env, q experiments.QuerySpec, eta int) {
	t.Helper()
	req := env.Request(q, 7)
	req.Iterations = 15
	req.Workers = 1
	req.Eta = eta
	if eta > 0 {
		req.ResampleRate = 0.5
	}
	s := env.SampledSearcher()
	res, err := s.Heuristic(bgCtx, req)
	if err != nil {
		t.Fatal(err)
	}
	for i, tg := range neighborhood(env.Sampled, res.TG) {
		got, err := s.Evaluate(bgCtx, tg, req)
		if err != nil {
			t.Fatal(err)
		}
		want := rowReferenceEvaluate(t, tg, req)
		if got != want {
			t.Fatalf("%s candidate %d (η=%d): columnar metrics %+v != row metrics %+v (must be bit-identical)",
				q.Name, i, eta, got, want)
		}
		// A fresh searcher (cold caches) must agree with the warm one.
		cold, err := env.SampledSearcher().Evaluate(bgCtx, tg, req)
		if err != nil {
			t.Fatal(err)
		}
		if cold != got {
			t.Fatalf("%s candidate %d: cold-cache metrics %+v != warm %+v", q.Name, i, cold, got)
		}
	}
}

func TestColumnarEvaluateMatchesRowPathTPCH(t *testing.T) {
	env, err := experiments.NewEnv(experiments.EnvConfig{Dataset: "tpch", Scale: 2, Seed: 1, Rate: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range experiments.TPCHQueries() {
		equivSweep(t, env, q, 0)
	}
	// η re-sampling on the longest query.
	equivSweep(t, env, experiments.TPCHQueries()[2], 50)
}

func TestColumnarEvaluateMatchesRowPathTPCE(t *testing.T) {
	env, err := experiments.NewEnv(experiments.EnvConfig{Dataset: "tpce", Scale: 1, Seed: 1, Rate: 0.6, NumInstances: 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range experiments.TPCEQueries() {
		equivSweep(t, env, q, 0)
	}
	equivSweep(t, env, experiments.TPCEQueries()[2], 80)
}

// TestSharedSearcherParallelSearchesRace exercises the shared columnar
// store, join-index store and join-prefix cache from many concurrent
// searches with parallel MCMC workers (run under -race in CI), and checks
// every search still reproduces the single-threaded result.
func TestSharedSearcherParallelSearchesRace(t *testing.T) {
	env, err := experiments.NewEnv(experiments.EnvConfig{Dataset: "tpce", Scale: 1, Seed: 1, Rate: 0.6, NumInstances: 10})
	if err != nil {
		t.Fatal(err)
	}
	q := experiments.TPCEQueries()[2]
	mkReq := func(seed int64) search.Request {
		req := env.Request(q, seed)
		req.Iterations = 25
		req.Eta = 80 // η > 0 keys the prefix cache on the sampling options too
		req.ResampleRate = 0.5
		return req
	}

	// Single-threaded reference results, one per seed, on a fresh searcher.
	seeds := []int64{1, 2, 3}
	want := map[int64]search.Metrics{}
	for _, seed := range seeds {
		req := mkReq(seed)
		req.Workers = 1
		res, err := env.SampledSearcher().Heuristic(bgCtx, req)
		if err != nil {
			t.Fatal(err)
		}
		want[seed] = res.Est
	}

	shared := env.SampledSearcher()
	var wg sync.WaitGroup
	errs := make(chan error, len(seeds)*3)
	for rep := 0; rep < 3; rep++ {
		for _, seed := range seeds {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				req := mkReq(seed)
				req.Workers = 4
				res, err := shared.Heuristic(bgCtx, req)
				if err != nil {
					errs <- err
					return
				}
				if res.Est != want[seed] {
					t.Errorf("seed %d: shared-searcher metrics %+v != reference %+v", seed, res.Est, want[seed])
				}
			}(seed)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
