package search

import (
	"sync"
	"testing"
)

// The tentpole guarantee of the concurrent engine: for a fixed seed the
// worker count changes wall-clock time only. Segmentation and RNG streams
// are derived from (Seed, candidate, segment) — never from Workers — and
// the reduction is in (candidate, segment) order, so every worker count
// must reproduce workers=1 bit for bit.
func TestHeuristicParallelMatchesSerial(t *testing.T) {
	for _, seed := range []int64{1, 3, 9} {
		req := baseRequest()
		req.Seed = seed
		req.Workers = 1

		s1, _ := buildSearcher(t, 1)
		r1, err := s1.Heuristic(bg, req)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 3, 8} {
			par := req
			par.Workers = workers
			s2, _ := buildSearcher(t, 1)
			r2, err := s2.Heuristic(bg, par)
			if err != nil {
				t.Fatal(err)
			}
			if fingerprint(r1.TG) != fingerprint(r2.TG) {
				t.Fatalf("seed %d workers %d: parallel best TG differs from serial:\n%s\nvs\n%s",
					seed, workers, fingerprint(r1.TG), fingerprint(r2.TG))
			}
			if r1.Est != r2.Est {
				t.Fatalf("seed %d workers %d: metrics differ: %+v vs %+v", seed, workers, r1.Est, r2.Est)
			}
			if r1.Evals != r2.Evals || r1.Considered != r2.Considered {
				t.Fatalf("seed %d workers %d: counters differ: evals %d/%d considered %d/%d",
					seed, workers, r1.Evals, r2.Evals, r1.Considered, r2.Considered)
			}
		}
	}
}

// segmentUnits must flatten candidate-major with per-candidate iteration
// counts summing to exactly ℓ — the reduction and the Evals/Considered
// accounting both lean on that shape.
func TestSegmentUnitsPartition(t *testing.T) {
	plans := []chainPlan{{segs: 7}, {}, {segs: 3}}
	units := segmentUnits(plans, 100)
	if len(units) != 10 {
		t.Fatalf("len(units) = %d, want 10", len(units))
	}
	sums := map[int]int{}
	prevCand, prevSeg := -1, -1
	for _, u := range units {
		if u.cand < prevCand || (u.cand == prevCand && u.seg != prevSeg+1) {
			t.Fatalf("units out of (candidate, segment) order: %+v", units)
		}
		if u.cand != prevCand {
			prevSeg = -1
		}
		prevCand, prevSeg = u.cand, u.seg
		sums[u.cand] += u.iters
	}
	if sums[0] != 100 || sums[2] != 100 || sums[1] != 0 {
		t.Fatalf("per-candidate iteration sums = %v, want 100 for candidates 0 and 2", sums)
	}
}

func TestTopKParallelMatchesSerial(t *testing.T) {
	req := baseRequest()
	serial, par := req, req
	serial.Workers = 1
	par.Workers = 8

	s1, _ := buildSearcher(t, 1)
	o1, err := s1.TopK(bg, serial, 3, DefaultScoreWeights())
	if err != nil {
		t.Fatal(err)
	}
	s2, _ := buildSearcher(t, 1)
	o2, err := s2.TopK(bg, par, 3, DefaultScoreWeights())
	if err != nil {
		t.Fatal(err)
	}
	if len(o1) != len(o2) {
		t.Fatalf("option counts differ: %d vs %d", len(o1), len(o2))
	}
	for i := range o1 {
		if o1[i].Score != o2[i].Score {
			t.Fatalf("option %d score differs: %v vs %v", i, o1[i].Score, o2[i].Score)
		}
		if fingerprint(o1[i].Result.TG) != fingerprint(o2[i].Result.TG) {
			t.Fatalf("option %d TG differs", i)
		}
	}
}

// Regression for the stale-cache bug: the evaluator used to memoize on the
// target-graph fingerprint alone, so a Searcher reused across requests
// with different Eta/ResampleRate/Seed served the first request's metrics
// to the second. The cache now keys on the sampling options too.
func TestEvaluateCacheKeyedBySamplingOptions(t *testing.T) {
	s, _ := buildSearcher(t, 10)
	reqA := baseRequest() // Eta = 0: no re-sampling
	res, err := s.Heuristic(bg, reqA)
	if err != nil {
		t.Fatal(err)
	}
	mA, err := s.Evaluate(bg, res.TG, reqA)
	if err != nil {
		t.Fatal(err)
	}

	// A second request over the same Searcher with aggressive re-sampling:
	// intermediate joins shrink, so its metrics must come from a fresh
	// evaluation, not the reqA cache entry.
	reqB := reqA
	reqB.Eta = 5
	reqB.ResampleRate = 0.25
	reqB.Seed = 99
	mB, err := s.Evaluate(bg, res.TG, reqB)
	if err != nil {
		t.Fatal(err)
	}
	fresh, _ := buildSearcher(t, 10)
	want, err := fresh.Evaluate(bg, res.TG, reqB)
	if err != nil {
		t.Fatal(err)
	}
	if mB != want {
		t.Fatalf("reused searcher served %+v for reqB, fresh searcher computes %+v (stale cache)", mB, want)
	}
	if mB == mA {
		t.Fatalf("re-sampled metrics identical to unsampled (%+v); η=5/ρ=0.25 must change the join", mB)
	}

	// And flipping back still serves reqA's own entry.
	again, err := s.Evaluate(bg, res.TG, reqA)
	if err != nil {
		t.Fatal(err)
	}
	if again != mA {
		t.Fatalf("reqA metrics changed after reqB: %+v vs %+v", again, mA)
	}

	// CORR is asymmetric: swapping the source/target roles of the same
	// attribute set must re-evaluate, not reuse the cached CORR(x;y).
	flipped := reqA
	flipped.SourceAttrs = reqA.TargetAttrs
	flipped.TargetAttrs = reqA.SourceAttrs
	mF, err := s.Evaluate(bg, res.TG, flipped)
	if err != nil {
		t.Fatal(err)
	}
	freshF, _ := buildSearcher(t, 10)
	wantF, err := freshF.Evaluate(bg, res.TG, flipped)
	if err != nil {
		t.Fatal(err)
	}
	if mF != wantF {
		t.Fatalf("flipped X/Y served %+v, fresh searcher computes %+v (stale cache)", mF, wantF)
	}
	if mF.Correlation == mA.Correlation {
		t.Fatalf("CORR(yval;xval) = CORR(xval;yval) = %v; the asymmetric metric should differ", mF.Correlation)
	}
}

// Hammer one Searcher's evaluator and full searches from many goroutines;
// -race validates the sharded cache and chain isolation.
func TestConcurrentSearcherUse(t *testing.T) {
	s, _ := buildSearcher(t, 4)
	req := baseRequest()
	base, err := s.Heuristic(bg, req)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(2)
		go func(seed int64) {
			defer wg.Done()
			r := req
			r.Seed = seed
			if _, err := s.Heuristic(bg, r); err != nil {
				t.Error(err)
			}
		}(int64(i%3) + 1)
		go func() {
			defer wg.Done()
			m, err := s.Evaluate(bg, base.TG, req)
			if err != nil {
				t.Error(err)
			}
			if m != base.Est {
				t.Errorf("concurrent Evaluate = %+v, want %+v", m, base.Est)
			}
		}()
	}
	wg.Wait()
}
