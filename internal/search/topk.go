package search

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"github.com/dance-db/dance/internal/joingraph"
	"github.com/dance-db/dance/internal/parallel"
)

// The paper's conclusion sketches a future-work extension: "DANCE may
// recommend a number of acquisition options of the top-k scores to the data
// buyer, where the scores can be defined as a combination of correlation,
// data quality, join informativeness, and price", noting that a fair score
// function and a top-k search for non-monotone scores are the open issues.
// This file implements that extension.

// ScoreWeights combines the four metrics into a scalar score. Correlation
// and quality reward; weight (join informativeness) and price penalize.
// Price is normalized by Budget (or its own magnitude when unbounded) so
// the weights are unit-free.
type ScoreWeights struct {
	Correlation float64
	Quality     float64
	Weight      float64
	Price       float64
}

// DefaultScoreWeights balance the axes the way the paper's discussion
// suggests: correlation first, then quality, with gentle penalties.
func DefaultScoreWeights() ScoreWeights {
	return ScoreWeights{Correlation: 1.0, Quality: 0.5, Weight: 0.25, Price: 0.25}
}

// Score evaluates the combined score of metrics m under request r.
func (w ScoreWeights) Score(m Metrics, r Request) float64 {
	priceScale := r.Budget
	if priceScale <= 0 {
		priceScale = m.Price + 1
	}
	weightScale := r.Alpha
	if weightScale <= 0 {
		weightScale = m.Weight + 1
	}
	return w.Correlation*m.Correlation +
		w.Quality*m.Quality -
		w.Weight*(m.Weight/weightScale) -
		w.Price*(m.Price/priceScale)
}

// Option is one ranked acquisition candidate.
type Option struct {
	Result *Result
	Score  float64
}

// TopK runs the two-step heuristic but keeps the k best *distinct* feasible
// target graphs by combined score instead of only the single best
// correlation. The score function is not monotone in any single metric, so
// candidates are collected during the MCMC walk across every Step 1
// I-graph and ranked at the end — exactly the brute-ranking fallback the
// paper anticipates for non-monotone scores.
func (s *Searcher) TopK(ctx context.Context, req Request, k int, weights ScoreWeights) ([]Option, error) {
	if k <= 0 {
		k = 3
	}
	req = req.withDefaults()
	cands, err := s.step1Candidates(req)
	if err != nil {
		return nil, err
	}

	// fingerprint → best-scored option. Chains record concurrently; since
	// equal fingerprints imply equal metrics (hence equal scores), the map
	// contents are independent of recording order.
	var mu sync.Mutex
	best := map[string]Option{}
	record := func(res *Result, m Metrics) {
		if res.TG == nil {
			return
		}
		fp := fingerprint(res.TG)
		score := weights.Score(m, req)
		mu.Lock()
		defer mu.Unlock()
		if cur, ok := best[fp]; !ok || score > cur.Score {
			best[fp] = Option{
				Result: &Result{TG: res.TG, Est: m, Evals: res.Evals, Considered: res.Considered},
				Score:  score,
			}
		}
	}

	// Walks are segmented exactly like Heuristic: phase 0 evaluates (and,
	// when feasible, records) every candidate's initial target graph, then a
	// pool of req.Workers goroutines drains the flattened (candidate,
	// segment) unit list, each segment restarting from the initial state
	// with its (Seed, candidate, segment)-derived RNG. Re-recording a
	// fingerprint another segment already visited is harmless — equal
	// fingerprints imply equal metrics, hence equal scores — so the option
	// set stays identical across worker counts.
	plans, viable := s.chainPlans(cands, req)
	workers := parallel.DefaultWorkers(req.Workers)
	perInit := initWorkers(workers, viable)
	initM, err := parallel.Map(ctx, len(plans), workers, func(i int) (Metrics, error) {
		if plans[i].tg == nil {
			return Metrics{}, nil
		}
		m, err := s.evaluate(ctx, plans[i].tg, req, perInit)
		if err != nil {
			return Metrics{}, err
		}
		if m.Feasible(req) {
			record(&Result{TG: plans[i].tg}, m)
		}
		return m, nil
	})
	if err != nil {
		return nil, err
	}
	units := segmentUnits(plans, req.Iterations)
	err = parallel.ForEach(ctx, len(units), workers, func(u int) error {
		un := units[u]
		p := plans[un.cand]
		rng := rand.New(rand.NewSource(segmentSeed(req.Seed, un.cand, un.seg)))
		return s.mcmcCollectSegment(ctx, p.tg, initM[un.cand], p.swappable, un.iters, req, rng, record)
	})
	if err != nil {
		return nil, err
	}
	totalEvals, totalConsidered := viable, viable
	for _, un := range units {
		totalEvals += un.iters
		totalConsidered += un.iters
	}
	if len(best) == 0 {
		return nil, fmt.Errorf("search: no feasible acquisition options (budget %v, α %v, β %v): %w",
			req.Budget, req.Alpha, req.Beta, ErrInfeasible)
	}
	options := make([]Option, 0, len(best))
	for _, o := range best {
		options = append(options, o)
	}
	sort.SliceStable(options, func(i, j int) bool {
		if options[i].Score != options[j].Score {
			return options[i].Score > options[j].Score
		}
		// Deterministic tie-break.
		return fingerprint(options[i].Result.TG) < fingerprint(options[j].Result.TG)
	})
	if len(options) > k {
		options = options[:k]
	}
	for i := range options {
		options[i].Result.Evals = totalEvals
		options[i].Result.Considered = totalConsidered
	}
	return options, nil
}

// mcmcCollectSegment is mcmcSegment with a visitor: every *feasible*
// proposal the segment evaluates is reported, so callers can rank with
// arbitrary scores. (The initial state is phase 0's to visit — segments
// evaluate and report only their own proposals.)
func (s *Searcher) mcmcCollectSegment(ctx context.Context, tg *joingraph.TargetGraph, initM Metrics, swappable []int, iters int, req Request, rng *rand.Rand,
	visit func(*Result, Metrics)) error {

	cur, curM := tg, initM
	for it := 0; it < iters; it++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		ei := swappable[rng.Intn(len(swappable))]
		edge := cur.Edges[ei]
		variants := s.G.EdgeBetween(edge.I, edge.J).Variants
		nv := rng.Intn(len(variants) - 1)
		if nv >= edge.Variant {
			nv++
		}
		cand := cur.Clone()
		cand.Edges[ei].Variant = nv
		candM, err := s.evaluate(ctx, cand, req, 1)
		if err != nil {
			return err
		}
		if !candM.Feasible(req) {
			continue
		}
		visit(&Result{TG: cand}, candM)
		accept := true
		if candM.Correlation < curM.Correlation {
			if req.Greedy {
				accept = false
			} else if curM.Correlation > 0 {
				accept = rng.Float64() < candM.Correlation/curM.Correlation
			}
		}
		if accept {
			cur, curM = cand, candM
		}
	}
	return nil
}

// SpreadScore measures how diverse a slice of options is: the mean pairwise
// fraction of differing instance vertices. Exposed for tests and for
// shoppers choosing k.
func SpreadScore(options []Option) float64 {
	if len(options) < 2 {
		return 0
	}
	total, pairs := 0.0, 0
	for i := 0; i < len(options); i++ {
		for j := i + 1; j < len(options); j++ {
			total += vertexDistance(options[i].Result.TG.Vertices, options[j].Result.TG.Vertices)
			pairs++
		}
	}
	return total / float64(pairs)
}

func vertexDistance(a, b []int) float64 {
	set := map[int]int{}
	for _, v := range a {
		set[v] |= 1
	}
	for _, v := range b {
		set[v] |= 2
	}
	union, diff := 0, 0
	for _, m := range set {
		union++
		if m != 3 {
			diff++
		}
	}
	if union == 0 {
		return 0
	}
	return float64(diff) / float64(union)
}
