// Package dirty injects controlled inconsistency into tables: it modifies a
// fraction of rows so that declared functional dependencies are violated,
// mirroring the paper's setup ("We modified 30% of records of 6 tables in
// TPC-H ... and 20 out of 29 tables in TPC-E to introduce inconsistency").
package dirty

import (
	"math/rand"

	"github.com/dance-db/dance/internal/fd"
	"github.com/dance-db/dance/internal/relation"
)

// Inject modifies ~frac of t's rows in place. For each victim row it picks
// one of the applicable FDs and overwrites the FD's RHS attribute with a
// value drawn from another row of the same column, which breaks X→Y for the
// victim's equivalence class without inventing out-of-domain values.
// Returns the number of modified rows.
func Inject(t *relation.Table, frac float64, fds []fd.FD, rng *rand.Rand) int {
	if frac <= 0 || t.NumRows() < 2 {
		return 0
	}
	applicable := fd.Applicable(fds, t.Schema)
	if len(applicable) == 0 {
		return 0
	}
	n := t.NumRows()
	modified := 0
	for i := 0; i < n; i++ {
		if rng.Float64() >= frac {
			continue
		}
		f := applicable[rng.Intn(len(applicable))]
		rhsIdx := t.Schema.Index(f.RHS)
		if rhsIdx < 0 {
			continue
		}
		cur := t.Rows[i][rhsIdx]
		// Draw a replacement from another row; try a few times to find a
		// genuinely different value.
		for attempt := 0; attempt < 8; attempt++ {
			j := rng.Intn(n)
			v := t.Rows[j][rhsIdx]
			if !v.EqualValue(cur) {
				t.Rows[i][rhsIdx] = v
				modified++
				break
			}
		}
	}
	return modified
}

// InjectTables dirties the named tables of a dataset in place with the same
// fraction, leaving the rest clean. tables maps name → table; fds maps
// name → declared FDs. Returns modified counts per table.
func InjectTables(tables map[string]*relation.Table, fds map[string][]fd.FD, names []string, frac float64, rng *rand.Rand) map[string]int {
	out := make(map[string]int, len(names))
	for _, name := range names {
		t, ok := tables[name]
		if !ok {
			continue
		}
		out[name] = Inject(t, frac, fds[name], rng)
	}
	return out
}
