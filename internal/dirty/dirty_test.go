package dirty

import (
	"math/rand"
	"testing"

	"github.com/dance-db/dance/internal/fd"
	"github.com/dance-db/dance/internal/relation"
)

func cleanTable(n int) *relation.Table {
	t := relation.NewTable("t", relation.NewSchema(
		relation.Cat("k", relation.KindInt),
		relation.Cat("v", relation.KindString),
	))
	for i := 0; i < n; i++ {
		k := int64(i % 10)
		t.AppendValues(relation.IntValue(k), relation.StringValue("v"+string(rune('a'+k))))
	}
	return t
}

func TestInjectBreaksFD(t *testing.T) {
	tab := cleanTable(500)
	f := fd.New("v", "k")
	q0, _ := fd.Quality(tab, f)
	if q0 != 1 {
		t.Fatalf("setup: clean quality = %v", q0)
	}
	mod := Inject(tab, 0.3, []fd.FD{f}, rand.New(rand.NewSource(1)))
	if mod == 0 {
		t.Fatal("no rows modified")
	}
	// Roughly 30% ± slack.
	if mod < 100 || mod > 200 {
		t.Fatalf("modified %d of 500, want ≈150", mod)
	}
	q1, _ := fd.Quality(tab, f)
	if q1 >= q0 {
		t.Fatalf("quality did not drop: %v → %v", q0, q1)
	}
	if q1 > 0.85 || q1 < 0.55 {
		t.Fatalf("quality after 30%% dirt = %v, want ≈0.7", q1)
	}
}

func TestInjectZeroFraction(t *testing.T) {
	tab := cleanTable(100)
	if mod := Inject(tab, 0, []fd.FD{fd.New("v", "k")}, rand.New(rand.NewSource(1))); mod != 0 {
		t.Fatalf("modified %d rows at frac 0", mod)
	}
}

func TestInjectNoApplicableFDs(t *testing.T) {
	tab := cleanTable(100)
	if mod := Inject(tab, 0.5, []fd.FD{fd.New("zz", "yy")}, rand.New(rand.NewSource(1))); mod != 0 {
		t.Fatalf("modified %d rows with inapplicable FDs", mod)
	}
}

func TestInjectTinyTable(t *testing.T) {
	tab := cleanTable(1)
	if mod := Inject(tab, 1, []fd.FD{fd.New("v", "k")}, rand.New(rand.NewSource(1))); mod != 0 {
		t.Fatalf("modified %d rows in 1-row table", mod)
	}
}

func TestInjectValuesStayInDomain(t *testing.T) {
	tab := cleanTable(300)
	domain := map[string]bool{}
	vi := tab.Schema.Index("v")
	for _, r := range tab.Rows {
		domain[r[vi].S] = true
	}
	Inject(tab, 0.5, []fd.FD{fd.New("v", "k")}, rand.New(rand.NewSource(2)))
	for _, r := range tab.Rows {
		if !domain[r[vi].S] {
			t.Fatalf("out-of-domain value injected: %q", r[vi].S)
		}
	}
}

func TestInjectTables(t *testing.T) {
	a := cleanTable(200)
	a.Name = "a"
	b := cleanTable(200)
	b.Name = "b"
	tables := map[string]*relation.Table{"a": a, "b": b}
	fds := map[string][]fd.FD{"a": {fd.New("v", "k")}, "b": {fd.New("v", "k")}}
	mods := InjectTables(tables, fds, []string{"a", "missing"}, 0.3, rand.New(rand.NewSource(3)))
	if mods["a"] == 0 {
		t.Fatal("table a untouched")
	}
	if _, ok := mods["missing"]; ok {
		t.Fatal("missing table should be skipped")
	}
	qb, _ := fd.Quality(b, fd.New("v", "k"))
	if qb != 1 {
		t.Fatal("table b should stay clean")
	}
}
