package fd

import (
	"sort"

	"github.com/dance-db/dance/internal/relation"
)

// DiscoveryOptions configure levelwise AFD discovery.
type DiscoveryOptions struct {
	// MaxError is the g3 error bound: an AFD X→A is reported when at most
	// MaxError · |D| rows must be removed for it to hold exactly.
	// The paper's experiments use 0.1.
	MaxError float64
	// MaxLHS bounds the size of left-hand sides (default 2). The paper's
	// FD counts (e.g. 114 AFDs on Lineitem) are reachable with small LHS;
	// unbounded search is exponential in the attribute count.
	MaxLHS int
	// MaxRows caps the rows examined (0 = all). Discovery on samples is
	// how DANCE estimates quality anyway (Sec 3).
	MaxRows int
	// MinDistinct skips attributes with fewer distinct values than this as
	// RHS candidates (default 0 = no skip). Constant columns yield trivial
	// dependencies X→const that inflate counts.
	MinDistinct int
}

// DefaultDiscoveryOptions mirror the paper's experimental setup.
func DefaultDiscoveryOptions() DiscoveryOptions {
	return DiscoveryOptions{MaxError: 0.1, MaxLHS: 2}
}

// Discover performs TANE-style levelwise discovery of minimal AFDs on t.
// An AFD is minimal when no proper subset of its LHS already determines the
// same RHS within the error bound. Results are sorted for determinism.
func Discover(t *relation.Table, opts DiscoveryOptions) ([]FD, error) {
	if opts.MaxLHS <= 0 {
		opts.MaxLHS = 2
	}
	work := t
	if opts.MaxRows > 0 && t.NumRows() > opts.MaxRows {
		idx := make([]int, opts.MaxRows)
		stride := t.NumRows() / opts.MaxRows
		for i := range idx {
			idx[i] = i * stride
		}
		work = t.SelectIndices(idx)
	}
	n := work.NumRows()
	m := work.Schema.Len()
	if n == 0 || m < 2 {
		return nil, nil
	}
	names := work.Schema.Names()

	// Per-attribute partitions, reused across levels.
	attrParts := make([]*relation.Partition, m)
	distinct := make([]int, m)
	for i, name := range names {
		p, err := work.PartitionBy(name)
		if err != nil {
			return nil, err
		}
		attrParts[i] = p
		distinct[i] = p.NumClasses()
	}

	// Precompute which single-attribute FDs a→rhs hold; reused for level-1
	// emission and for minimality pruning at deeper levels.
	singleHolds := make([][]bool, m)
	for a := 0; a < m; a++ {
		singleHolds[a] = make([]bool, m)
		if attrParts[a].NumClasses() == n {
			for rhs := 0; rhs < m; rhs++ {
				singleHolds[a][rhs] = rhs != a
			}
			continue
		}
		for rhs := 0; rhs < m; rhs++ {
			if rhs == a {
				continue
			}
			refined := attrParts[a].Refine(work, []int{rhs})
			singleHolds[a][rhs] = attrParts[a].Error(refined) <= opts.MaxError
		}
	}

	var results []FD
	emit := func(lhs []int, rhs int) {
		l := make([]string, len(lhs))
		for i, a := range lhs {
			l[i] = names[a]
		}
		results = append(results, New(names[rhs], l...))
	}

	skipRHS := func(rhs int) bool {
		return opts.MinDistinct > 0 && distinct[rhs] < opts.MinDistinct
	}

	type node struct {
		attrs []int // sorted LHS attribute indexes
		part  *relation.Partition
		// detRHS[rhs] = true when some subset of attrs (possibly attrs
		// itself) determines rhs, or rhs ∈ attrs, or rhs is skipped.
		// Supersets then never re-test rhs (TANE minimality pruning).
		detRHS []bool
	}

	attrsKey := func(attrs []int) string {
		b := make([]byte, len(attrs))
		for i, a := range attrs {
			b[i] = byte(a)
		}
		return string(b)
	}

	// Level 1.
	var level []node
	for a := 0; a < m; a++ {
		det := make([]bool, m)
		for rhs := 0; rhs < m; rhs++ {
			if rhs == a || skipRHS(rhs) {
				det[rhs] = true
				continue
			}
			if singleHolds[a][rhs] {
				emit([]int{a}, rhs)
				det[rhs] = true
			}
		}
		level = append(level, node{attrs: []int{a}, part: attrParts[a], detRHS: det})
	}

	for depth := 2; depth <= opts.MaxLHS; depth++ {
		// detRHS of every level-(depth-1) node, so children can OR together
		// the pruning state of all their (depth-1)-subsets, not just the
		// generating prefix.
		prevDet := make(map[string][]bool, len(level))
		for i := range level {
			k := attrsKey(level[i].attrs)
			prevDet[k] = level[i].detRHS
		}
		var next []node
		for i := range level {
			nd := &level[i]
			if nd.part.NumClasses() == n {
				continue // keys determine everything; no extension useful
			}
			for a := nd.attrs[len(nd.attrs)-1] + 1; a < m; a++ {
				attrs := append(append([]int(nil), nd.attrs...), a)
				part := nd.part.Refine(work, []int{a})
				det := make([]bool, m)
				// OR the determination state of every (depth-1)-subset.
				sub := make([]int, 0, len(attrs)-1)
				for drop := range attrs {
					sub = sub[:0]
					for j, v := range attrs {
						if j != drop {
							sub = append(sub, v)
						}
					}
					if d, ok := prevDet[attrsKey(sub)]; ok {
						for rhs := 0; rhs < m; rhs++ {
							if d[rhs] {
								det[rhs] = true
							}
						}
					}
				}
				for _, la := range attrs {
					det[la] = true
				}
				isKey := part.NumClasses() == n
				for rhs := 0; rhs < m; rhs++ {
					if det[rhs] || skipRHS(rhs) {
						continue
					}
					if isKey {
						emit(attrs, rhs)
						det[rhs] = true
						continue
					}
					refined := part.Refine(work, []int{rhs})
					if part.Error(refined) <= opts.MaxError {
						emit(attrs, rhs)
						det[rhs] = true
					}
				}
				next = append(next, node{attrs: attrs, part: part, detRHS: det})
			}
		}
		level = next
	}

	sort.Slice(results, func(i, j int) bool {
		a, b := results[i], results[j]
		if la, lb := len(a.LHS), len(b.LHS); la != lb {
			return la < lb
		}
		return a.String() < b.String()
	})
	return results, nil
}

// Count is a convenience wrapper returning only the number of discovered
// AFDs (used by the Table 5 / Sec 6.1 reproduction).
func Count(t *relation.Table, opts DiscoveryOptions) (int, error) {
	fds, err := Discover(t, opts)
	if err != nil {
		return 0, err
	}
	return len(fds), nil
}
