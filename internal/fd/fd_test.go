package fd

import (
	"math/rand"
	"strings"
	"testing"

	"github.com/dance-db/dance/internal/relation"
)

// exampleTable2 is the paper's Table 2 (Example 2.1): FD A → B with
// correct records {t1, t2, t5}.
func exampleTable2() *relation.Table {
	t := relation.NewTable("D", relation.NewSchema(
		relation.Cat("A", relation.KindString),
		relation.Cat("B", relation.KindString),
	))
	for _, r := range [][2]string{
		{"a1", "b1"}, {"a1", "b1"}, {"a1", "b2"}, {"a1", "b3"}, {"a2", "b2"},
	} {
		t.AppendValues(relation.StringValue(r[0]), relation.StringValue(r[1]))
	}
	return t
}

// table3Full reproduces the paper's Table 3: D1 with 1000 rows (996 correct
// w.r.t. A→B), D2 with 5 rows (3 correct w.r.t. D→E).
func table3Full() (*relation.Table, *relation.Table) {
	d1 := relation.NewTable("D1", relation.NewSchema(
		relation.Cat("A", relation.KindString),
		relation.Cat("B", relation.KindString),
		relation.Cat("C", relation.KindString),
	))
	for i := 4; i <= 999; i++ { // t1..t996: (a1, b1, c4..c999)
		d1.AppendValues(relation.StringValue("a1"), relation.StringValue("b1"),
			relation.StringValue("c"+itoa(i)))
	}
	d1.AppendValues(relation.StringValue("a1"), relation.StringValue("b2"), relation.StringValue("c1"))
	d1.AppendValues(relation.StringValue("a1"), relation.StringValue("b2"), relation.StringValue("c2"))
	d1.AppendValues(relation.StringValue("a1"), relation.StringValue("b3"), relation.StringValue("c3"))
	d1.AppendValues(relation.StringValue("a1"), relation.StringValue("b3"), relation.StringValue("c3"))

	d2 := relation.NewTable("D2", relation.NewSchema(
		relation.Cat("C", relation.KindString),
		relation.Cat("D", relation.KindString),
		relation.Cat("E", relation.KindString),
	))
	for _, r := range [][3]string{
		{"c1", "d1", "e1"}, {"c1", "d1", "e1"},
		{"c2", "d1", "e2"}, {"c3", "d1", "e2"}, {"c4", "d1", "e2"},
	} {
		d2.AppendValues(relation.StringValue(r[0]), relation.StringValue(r[1]), relation.StringValue(r[2]))
	}
	return d1, d2
}

func itoa(i int) string {
	// small helper to avoid strconv import noise in tests
	digits := "0123456789"
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{digits[i%10]}, b...)
		i /= 10
	}
	return string(b)
}

func TestParseAndString(t *testing.T) {
	f, err := Parse("zip , city -> state")
	if err != nil {
		t.Fatal(err)
	}
	if f.RHS != "state" || len(f.LHS) != 2 || f.LHS[0] != "city" || f.LHS[1] != "zip" {
		t.Fatalf("parsed %v", f)
	}
	if got := f.String(); got != "city,zip → state" {
		t.Fatalf("String = %q", got)
	}
	f2, err := Parse("A → B")
	if err != nil || f2.RHS != "B" {
		t.Fatalf("unicode arrow parse failed: %v %v", f2, err)
	}
	for _, bad := range []string{"A B", "-> B", "A ->"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

func TestAppliesTo(t *testing.T) {
	d := exampleTable2()
	if !New("B", "A").AppliesTo(d.Schema) {
		t.Fatal("A→B should apply")
	}
	if New("Z", "A").AppliesTo(d.Schema) {
		t.Fatal("A→Z should not apply")
	}
}

func TestQualityExample21(t *testing.T) {
	d := exampleTable2()
	q, err := Quality(d, New("B", "A"))
	if err != nil {
		t.Fatal(err)
	}
	if q != 0.6 {
		t.Fatalf("Q = %v, want 0.6 (correct records {t1,t2,t5})", q)
	}
	c, err := CorrectRows(d, New("B", "A"))
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 4}
	got := c.Indices()
	if len(got) != len(want) {
		t.Fatalf("correct rows = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("correct rows = %v, want %v", got, want)
		}
	}
}

func TestJoinDegradesQuality(t *testing.T) {
	// The paper's Example 2.2: two high-quality instances join into a
	// low-quality result, so quality must be measured on the join.
	d1, d2 := table3Full()
	q1, err := Quality(d1, New("B", "A"))
	if err != nil {
		t.Fatal(err)
	}
	if q1 != 0.996 {
		t.Fatalf("Q(D1) = %v, want 0.996", q1)
	}
	q2, err := Quality(d2, New("E", "D"))
	if err != nil {
		t.Fatal(err)
	}
	if q2 != 0.6 {
		t.Fatalf("Q(D2) = %v, want 0.6", q2)
	}
	j, err := relation.EquiJoin(d1, d2, []string{"C"})
	if err != nil {
		t.Fatal(err)
	}
	// c1 → (a1,b2) × 2 rows, c2 → 1, c3 (two D1 rows) → 2, c4 → 1: 6 rows.
	// (The paper's Table 3(c) lists 5 rows, omitting the c4 match; we use
	// the exact value for this data.)
	if j.NumRows() != 6 {
		t.Fatalf("join rows = %d, want 6", j.NumRows())
	}
	qj, err := QualitySet(j, []FD{New("B", "A"), New("E", "D")})
	if err != nil {
		t.Fatal(err)
	}
	want := 1.0 / 6.0
	if diff := qj - want; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("Q(join) = %v, want %v", qj, want)
	}
	if qj >= q1 || qj >= q2 {
		t.Fatal("join quality should be lower than both inputs here")
	}
}

func TestQualitySetSkipsInapplicable(t *testing.T) {
	d := exampleTable2()
	q, err := QualitySet(d, []FD{New("Z", "Y")}) // not applicable
	if err != nil {
		t.Fatal(err)
	}
	if q != 1 {
		t.Fatalf("quality with no applicable FDs = %v, want 1", q)
	}
	q, err = QualitySet(d, nil)
	if err != nil || q != 1 {
		t.Fatalf("quality with empty FD set = %v, %v", q, err)
	}
}

func TestQualityEmptyTable(t *testing.T) {
	d := relation.NewTable("e", relation.NewSchema(
		relation.Cat("A", relation.KindString), relation.Cat("B", relation.KindString)))
	q, err := Quality(d, New("B", "A"))
	if err != nil || q != 1 {
		t.Fatalf("empty table quality = %v, %v", q, err)
	}
}

func TestHolds(t *testing.T) {
	d := exampleTable2()
	ok, err := Holds(d, New("B", "A"), 0.5) // error 0.4 ≤ 0.5
	if err != nil || !ok {
		t.Fatalf("Holds(0.5) = %v, %v; want true", ok, err)
	}
	ok, err = Holds(d, New("B", "A"), 0.1) // error 0.4 > 0.1
	if err != nil || ok {
		t.Fatalf("Holds(0.1) = %v, %v; want false", ok, err)
	}
}

func TestApplicable(t *testing.T) {
	d := exampleTable2()
	fds := []FD{New("B", "A"), New("Z", "A"), New("A", "B")}
	got := Applicable(fds, d.Schema)
	if len(got) != 2 {
		t.Fatalf("Applicable = %v", got)
	}
}

// fdTestTable builds a table where zip → state holds exactly, id is a key,
// and noise is random.
func fdTestTable(n int, errFrac float64, seed int64) *relation.Table {
	rng := rand.New(rand.NewSource(seed))
	t := relation.NewTable("addr", relation.NewSchema(
		relation.Cat("id", relation.KindInt),
		relation.Cat("zip", relation.KindInt),
		relation.Cat("state", relation.KindString),
		relation.Cat("noise", relation.KindInt),
	))
	states := []string{"NJ", "NY", "CA", "MA"}
	for i := 0; i < n; i++ {
		zip := int64(rng.Intn(20))
		st := states[zip%4]
		if rng.Float64() < errFrac {
			st = states[rng.Intn(4)]
		}
		t.AppendValues(
			relation.IntValue(int64(i)),
			relation.IntValue(zip),
			relation.StringValue(st),
			relation.IntValue(int64(rng.Intn(1000000))),
		)
	}
	return t
}

func TestDiscoverFindsPlantedFD(t *testing.T) {
	tab := fdTestTable(500, 0.02, 1)
	fds, err := Discover(tab, DiscoveryOptions{MaxError: 0.1, MaxLHS: 2})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, f := range fds {
		if f.RHS == "state" && len(f.LHS) == 1 && f.LHS[0] == "zip" {
			found = true
		}
	}
	if !found {
		t.Fatalf("zip → state not discovered; got %v", fds)
	}
}

func TestDiscoverKeyDeterminesAll(t *testing.T) {
	tab := fdTestTable(200, 0.02, 2)
	fds, err := Discover(tab, DiscoveryOptions{MaxError: 0.05, MaxLHS: 1})
	if err != nil {
		t.Fatal(err)
	}
	// id is a key: id→zip, id→state, id→noise must all be present.
	want := map[string]bool{"id → zip": false, "id → state": false, "id → noise": false}
	for _, f := range fds {
		if _, ok := want[f.String()]; ok {
			want[f.String()] = true
		}
	}
	for k, ok := range want {
		if !ok {
			t.Errorf("missing key FD %s; got %v", k, fds)
		}
	}
}

func TestDiscoverMinimality(t *testing.T) {
	tab := fdTestTable(400, 0.02, 3)
	fds, err := Discover(tab, DiscoveryOptions{MaxError: 0.1, MaxLHS: 2})
	if err != nil {
		t.Fatal(err)
	}
	// No FD's LHS may be a strict superset of another FD's LHS with the
	// same RHS.
	byRHS := map[string][][]string{}
	for _, f := range fds {
		byRHS[f.RHS] = append(byRHS[f.RHS], f.LHS)
	}
	for rhs, lhss := range byRHS {
		for i, a := range lhss {
			for j, b := range lhss {
				if i == j {
					continue
				}
				if isSubset(a, b) && len(a) < len(b) {
					t.Errorf("non-minimal FD for %s: %v ⊂ %v both emitted", rhs, a, b)
				}
			}
		}
	}
}

func isSubset(a, b []string) bool {
	set := map[string]bool{}
	for _, x := range b {
		set[x] = true
	}
	for _, x := range a {
		if !set[x] {
			return false
		}
	}
	return true
}

func TestDiscoverRespectsErrorBound(t *testing.T) {
	tab := fdTestTable(300, 0.05, 4)
	const maxErr = 0.1
	fds, err := Discover(tab, DiscoveryOptions{MaxError: maxErr, MaxLHS: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(fds) == 0 {
		t.Fatal("expected some FDs")
	}
	for _, f := range fds {
		q, err := Quality(tab, f)
		if err != nil {
			t.Fatal(err)
		}
		if q < 1-maxErr-1e-9 {
			t.Errorf("discovered FD %s has quality %v < %v", f, q, 1-maxErr)
		}
	}
}

func TestDiscoverMinDistinctSkipsConstants(t *testing.T) {
	tab := relation.NewTable("c", relation.NewSchema(
		relation.Cat("a", relation.KindInt),
		relation.Cat("const", relation.KindString),
	))
	for i := 0; i < 50; i++ {
		tab.AppendValues(relation.IntValue(int64(i)), relation.StringValue("same"))
	}
	withSkip, err := Discover(tab, DiscoveryOptions{MaxError: 0.1, MaxLHS: 1, MinDistinct: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range withSkip {
		if f.RHS == "const" {
			t.Errorf("constant RHS not skipped: %v", f)
		}
	}
	noSkip, err := Discover(tab, DiscoveryOptions{MaxError: 0.1, MaxLHS: 1})
	if err != nil {
		t.Fatal(err)
	}
	foundConst := false
	for _, f := range noSkip {
		if f.RHS == "const" {
			foundConst = true
		}
	}
	if !foundConst {
		t.Error("without MinDistinct, a→const should be discovered")
	}
}

func TestDiscoverMaxRowsSampling(t *testing.T) {
	tab := fdTestTable(2000, 0.02, 5)
	fds, err := Discover(tab, DiscoveryOptions{MaxError: 0.1, MaxLHS: 1, MaxRows: 200})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, f := range fds {
		if strings.HasPrefix(f.String(), "zip → state") {
			found = true
		}
	}
	if !found {
		t.Fatalf("sampled discovery missed zip → state: %v", fds)
	}
}

func TestCount(t *testing.T) {
	tab := fdTestTable(200, 0.02, 6)
	n, err := Count(tab, DiscoveryOptions{MaxError: 0.1, MaxLHS: 2})
	if err != nil {
		t.Fatal(err)
	}
	fds, _ := Discover(tab, DiscoveryOptions{MaxError: 0.1, MaxLHS: 2})
	if n != len(fds) {
		t.Fatalf("Count = %d, Discover len = %d", n, len(fds))
	}
}

func TestDiscoverDegenerate(t *testing.T) {
	empty := relation.NewTable("e", relation.NewSchema(relation.Cat("a", relation.KindInt)))
	fds, err := Discover(empty, DefaultDiscoveryOptions())
	if err != nil || fds != nil {
		t.Fatalf("single-column/empty discovery = %v, %v", fds, err)
	}
}
