package fd

import (
	"math/rand"
	"testing"

	"github.com/dance-db/dance/internal/relation"
)

func randomFDTable(rng *rand.Rand, nRows int, nullFrac float64) *relation.Table {
	tab := relation.NewTable("q", relation.NewSchema(
		relation.Cat("a", relation.KindInt),
		relation.Cat("b", relation.KindString),
		relation.Cat("c", relation.KindFloat), // mixes int/float values
		relation.Cat("d", relation.KindInt),
	))
	for i := 0; i < nRows; i++ {
		row := make([]relation.Value, 4)
		if rng.Float64() >= nullFrac {
			row[0] = relation.IntValue(int64(rng.Intn(5)))
		}
		if rng.Float64() >= nullFrac {
			row[1] = relation.StringValue(string(rune('a' + rng.Intn(3))))
		}
		x := rng.Intn(4)
		if rng.Float64() >= nullFrac {
			if rng.Intn(2) == 0 {
				row[2] = relation.IntValue(int64(x))
			} else {
				row[2] = relation.FloatValue(float64(x))
			}
		}
		if rng.Float64() >= nullFrac {
			row[3] = relation.IntValue(int64(rng.Intn(8)))
		}
		tab.Append(row)
	}
	return tab
}

func TestCorrectRowsColumnarMatchesRows(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	fds := []FD{
		New("d", "a"),
		New("b", "a", "c"),
		New("a", "c"),
		New("c", "b", "d"),
	}
	for trial := 0; trial < 25; trial++ {
		tab := randomFDTable(rng, 30+rng.Intn(200), []float64{0.05, 0.3, 0.6}[trial%3])
		c := relation.ToColumnar(tab)
		for _, f := range fds {
			want, err := CorrectRows(tab, f)
			if err != nil {
				t.Fatal(err)
			}
			got, err := CorrectRowsColumnar(c, f)
			if err != nil {
				t.Fatal(err)
			}
			if want.Count() != got.Count() {
				t.Fatalf("fd %s: %d correct rows, want %d", f, got.Count(), want.Count())
			}
			for i := 0; i < tab.NumRows(); i++ {
				if want.Has(i) != got.Has(i) {
					t.Fatalf("fd %s row %d: columnar %v, row path %v", f, i, got.Has(i), want.Has(i))
				}
			}
		}
		wantQ, err := QualitySet(tab, fds)
		if err != nil {
			t.Fatal(err)
		}
		gotQ, err := QualitySetColumnar(c, fds)
		if err != nil {
			t.Fatal(err)
		}
		if wantQ != gotQ {
			t.Fatalf("QualitySet: columnar %v != row %v (must be bit-identical)", gotQ, wantQ)
		}
	}
}

func TestQualitySetColumnarEdgeCases(t *testing.T) {
	empty := relation.NewTable("e", relation.NewSchema(relation.Cat("a", relation.KindInt)))
	q, err := QualitySetColumnar(relation.ToColumnar(empty), []FD{New("a", "a")})
	if err != nil || q != 1 {
		t.Fatalf("empty table: got %v, %v, want quality 1", q, err)
	}
	tab := relation.NewTable("t", relation.NewSchema(relation.Cat("a", relation.KindInt)))
	tab.AppendValues(relation.IntValue(1))
	// No applicable FDs → quality 1, matching the row path.
	q, err = QualitySetColumnar(relation.ToColumnar(tab), []FD{New("z", "y")})
	if err != nil || q != 1 {
		t.Fatalf("inapplicable FDs: got %v, %v, want 1", q, err)
	}
}
