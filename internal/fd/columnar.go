package fd

import (
	"fmt"

	"github.com/dance-db/dance/internal/bitset"
	"github.com/dance-db/dance/internal/relation"
)

// Columnar fast path for the quality measure: equivalence classes are fused
// integer-code groups and the per-class refinement counts in flat epoch-
// stamped slices indexed by RHS dictionary code, so no byte-string keys or
// per-group maps are allocated. Results are exact set arithmetic and
// therefore identical to the row path.

// CorrectRowsColumnar returns the set C(D, X→Y) of Def 2.2 over the rows of
// c, identically to CorrectRows on the decoded table (same deterministic
// tie-break: largest class, then smallest first-row index).
func CorrectRowsColumnar(c *relation.Columnar, f FD) (*bitset.Set, error) {
	lhsIdx, err := c.Schema().Indexes(f.LHS...)
	if err != nil {
		return nil, fmt.Errorf("fd %s on %s: %w", f, c.Name, err)
	}
	rhsCol := c.Schema().Index(f.RHS)
	if rhsCol < 0 {
		return nil, fmt.Errorf("fd %s on %s: no column %q", f, c.Name, f.RHS)
	}
	rhsCodes := c.Codes(rhsCol)
	if rhsCodes == nil {
		return nil, fmt.Errorf("fd %s on %s: column %q is not dictionary-coded", f, c.Name, f.RHS)
	}
	g, err := c.GroupBy(lhsIdx)
	if err != nil {
		return nil, fmt.Errorf("fd %s on %s: %w", f, c.Name, err)
	}
	starts, rows := g.RowLists()
	correct := bitset.New(c.NumRows())

	// Per-class scratch indexed by RHS code, invalidated per LHS group by an
	// epoch stamp instead of clearing.
	dictN := c.DictLen(rhsCol)
	counts := make([]int32, dictN)
	firstRow := make([]int32, dictN)
	stamp := make([]uint32, dictN)
	epoch := uint32(0)
	for gid := 0; gid < g.N(); gid++ {
		epoch++
		grows := rows[starts[gid]:starts[gid+1]]
		for _, ri := range grows {
			code := rhsCodes[ri]
			if stamp[code] != epoch {
				stamp[code] = epoch
				counts[code] = 0
				firstRow[code] = ri
			}
			counts[code]++
		}
		bestCode := int32(-1)
		bestCount := int32(0)
		bestFirst := int32(0)
		for _, ri := range grows {
			code := rhsCodes[ri]
			if counts[code] > bestCount || (counts[code] == bestCount && firstRow[code] < bestFirst) {
				bestCode, bestCount, bestFirst = int32(code), counts[code], firstRow[code]
			}
		}
		if bestCode < 0 {
			continue
		}
		for _, ri := range grows {
			if int32(rhsCodes[ri]) == bestCode {
				correct.Set(int(ri))
			}
		}
	}
	return correct, nil
}

// QualitySetColumnar returns Q of Def 2.3 for the columnar relation c under
// the AFD set fds, identically to QualitySet on the decoded table.
func QualitySetColumnar(c *relation.Columnar, fds []FD) (float64, error) {
	if c.NumRows() == 0 {
		return 1, nil
	}
	var acc *bitset.Set
	for _, f := range fds {
		if !f.AppliesTo(c.Schema()) {
			continue
		}
		cr, err := CorrectRowsColumnar(c, f)
		if err != nil {
			return 0, err
		}
		if acc == nil {
			acc = cr
		} else {
			acc.And(cr)
		}
	}
	if acc == nil {
		return 1, nil
	}
	return float64(acc.Count()) / float64(c.NumRows()), nil
}
