// Package fd implements functional dependencies, the data-quality measure of
// the paper (Defs 2.2 and 2.3), and TANE-style levelwise discovery of
// approximate functional dependencies (AFDs).
//
// Terminology: the paper states "an AFD F holds on D if Q(D, F) ≥ θ" but its
// experiments use "θ = 0.1 ... the amount of records that do not satisfy FDs
// is less than 10%". We resolve the ambiguity by parameterizing on MaxError:
// an AFD holds iff its g3 error (1 − Q) is at most MaxError; the paper's
// θ = 0.1 corresponds to MaxError = 0.1.
package fd

import (
	"fmt"
	"sort"
	"strings"

	"github.com/dance-db/dance/internal/bitset"
	"github.com/dance-db/dance/internal/relation"
)

// FD is a functional dependency LHS → RHS with a single right-hand-side
// attribute (multi-attribute RHS decomposes, Sec 2.2 of the paper).
type FD struct {
	LHS []string
	RHS string
}

// New returns an FD with a sorted, copied LHS.
func New(rhs string, lhs ...string) FD {
	l := append([]string(nil), lhs...)
	sort.Strings(l)
	return FD{LHS: l, RHS: rhs}
}

// String renders "A,B → C".
func (f FD) String() string {
	return strings.Join(f.LHS, ",") + " → " + f.RHS
}

// Attrs returns all attributes mentioned by the FD.
func (f FD) Attrs() []string {
	out := append([]string(nil), f.LHS...)
	return append(out, f.RHS)
}

// AppliesTo reports whether every attribute of the FD exists in schema s.
func (f FD) AppliesTo(s *relation.Schema) bool {
	for _, a := range f.Attrs() {
		if !s.Has(a) {
			return false
		}
	}
	return true
}

// Parse parses "A,B->C" or "A,B → C".
func Parse(s string) (FD, error) {
	var lhsStr, rhsStr string
	switch {
	case strings.Contains(s, "→"):
		parts := strings.SplitN(s, "→", 2)
		lhsStr, rhsStr = parts[0], parts[1]
	case strings.Contains(s, "->"):
		parts := strings.SplitN(s, "->", 2)
		lhsStr, rhsStr = parts[0], parts[1]
	default:
		return FD{}, fmt.Errorf("fd: %q has no arrow", s)
	}
	var lhs []string
	for _, a := range strings.Split(lhsStr, ",") {
		if a = strings.TrimSpace(a); a != "" {
			lhs = append(lhs, a)
		}
	}
	rhs := strings.TrimSpace(rhsStr)
	if len(lhs) == 0 || rhs == "" {
		return FD{}, fmt.Errorf("fd: %q is malformed", s)
	}
	return New(rhs, lhs...), nil
}

// CorrectRows returns the set C(D, X→Y) of Def 2.2 as a bitset over the rows
// of t: for every equivalence class eq_x of π_X, the rows of the largest
// equivalence class of π_{X∪Y} contained in it. Ties are broken
// deterministically by smallest first-row index (the paper breaks them
// randomly; determinism keeps experiments reproducible).
func CorrectRows(t *relation.Table, f FD) (*bitset.Set, error) {
	xGroups, err := t.GroupIndices(f.LHS...)
	if err != nil {
		return nil, fmt.Errorf("fd %s on %s: %w", f, t.Name, err)
	}
	rhsIdx := t.Schema.Index(f.RHS)
	if rhsIdx < 0 {
		return nil, fmt.Errorf("fd %s on %s: no column %q", f, t.Name, f.RHS)
	}
	correct := bitset.New(t.NumRows())
	var buf []byte
	sub := make(map[string][]int)
	for _, rows := range xGroups {
		for k := range sub {
			delete(sub, k)
		}
		for _, ri := range rows {
			buf = t.Rows[ri][rhsIdx].AppendKey(buf[:0])
			sub[string(buf)] = append(sub[string(buf)], ri)
		}
		var best []int
		for _, g := range sub {
			if len(g) > len(best) || (len(g) == len(best) && len(g) > 0 && g[0] < best[0]) {
				best = g
			}
		}
		for _, ri := range best {
			correct.Set(ri)
		}
	}
	return correct, nil
}

// Quality returns Q(D, F) of Def 2.2: |C(D, F)| / |D|. An empty table has
// quality 1.
func Quality(t *relation.Table, f FD) (float64, error) {
	if t.NumRows() == 0 {
		return 1, nil
	}
	c, err := CorrectRows(t, f)
	if err != nil {
		return 0, err
	}
	return float64(c.Count()) / float64(t.NumRows()), nil
}

// QualitySet returns Q of Def 2.3 for a joined instance t under the AFD set
// fds: |⋂_F C(t, F)| / |t|. FDs whose attributes are missing from t are
// skipped (they cannot constrain the join result). With no applicable FDs
// the quality is 1.
func QualitySet(t *relation.Table, fds []FD) (float64, error) {
	if t.NumRows() == 0 {
		return 1, nil
	}
	var acc *bitset.Set
	for _, f := range fds {
		if !f.AppliesTo(t.Schema) {
			continue
		}
		c, err := CorrectRows(t, f)
		if err != nil {
			return 0, err
		}
		if acc == nil {
			acc = c
		} else {
			acc.And(c)
		}
	}
	if acc == nil {
		return 1, nil
	}
	return float64(acc.Count()) / float64(t.NumRows()), nil
}

// Holds reports whether f holds on t as an AFD with error at most maxErr
// (i.e. Q(t, f) ≥ 1 − maxErr).
func Holds(t *relation.Table, f FD, maxErr float64) (bool, error) {
	q, err := Quality(t, f)
	if err != nil {
		return false, err
	}
	return q >= 1-maxErr, nil
}

// Applicable filters fds to those whose attributes all exist in schema s.
func Applicable(fds []FD, s *relation.Schema) []FD {
	var out []FD
	for _, f := range fds {
		if f.AppliesTo(s) {
			out = append(out, f)
		}
	}
	return out
}
