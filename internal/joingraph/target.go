package joingraph

import (
	"context"
	"fmt"
	"sort"

	"github.com/dance-db/dance/internal/fd"
	"github.com/dance-db/dance/internal/relation"
)

// TGEdge is a tree edge of a target graph: the I-edge between instances
// I and J (I < J) with a chosen join-attribute variant.
type TGEdge struct {
	I, J    int
	Variant int
}

// JoinAttrsOf resolves the chosen variant's join attributes via the graph.
func (e TGEdge) JoinAttrsOf(g *Graph) []string {
	return g.EdgeBetween(e.I, e.J).Variants[e.Variant].JoinAttrs
}

// TargetGraph is a candidate acquisition (Def 4.4): a connected subtree of
// the I-layer whose vertices cover the source and target attributes, with a
// concrete join-attribute variant chosen per edge — i.e. a set of AS-layer
// vertices and AS-edges.
type TargetGraph struct {
	G        *Graph
	Vertices []int    // sorted instance indexes in the tree
	Edges    []TGEdge // tree edges (|Vertices| − 1 of them when connected)
	// Assign maps every requested (source ∪ target) attribute to the
	// instance that provides it.
	Assign map[string]int
}

// NewTargetGraph validates and builds a target graph over the given tree.
func NewTargetGraph(g *Graph, vertices []int, edges []TGEdge, assign map[string]int) (*TargetGraph, error) {
	vs := append([]int(nil), vertices...)
	sort.Ints(vs)
	inTree := map[int]bool{}
	for _, v := range vs {
		if v < 0 || v >= len(g.Instances) {
			return nil, fmt.Errorf("joingraph: vertex %d out of range", v)
		}
		inTree[v] = true
	}
	for _, e := range edges {
		if e.I >= e.J {
			return nil, fmt.Errorf("joingraph: edge (%d,%d) not normalized", e.I, e.J)
		}
		if !inTree[e.I] || !inTree[e.J] {
			return nil, fmt.Errorf("joingraph: edge (%d,%d) references vertex outside tree", e.I, e.J)
		}
		ie := g.EdgeBetween(e.I, e.J)
		if ie == nil {
			return nil, fmt.Errorf("joingraph: no I-edge between %d and %d", e.I, e.J)
		}
		if e.Variant < 0 || e.Variant >= len(ie.Variants) {
			return nil, fmt.Errorf("joingraph: edge (%d,%d) variant %d out of range", e.I, e.J, e.Variant)
		}
	}
	for a, v := range assign {
		if !inTree[v] {
			return nil, fmt.Errorf("joingraph: attribute %q assigned to vertex %d outside tree", a, v)
		}
		if !g.Instances[v].Sample.Schema.Has(a) {
			return nil, fmt.Errorf("joingraph: instance %s lacks assigned attribute %q", g.Instances[v].Name, a)
		}
	}
	tg := &TargetGraph{G: g, Vertices: vs, Edges: append([]TGEdge(nil), edges...), Assign: assign}
	if !tg.connected() {
		return nil, fmt.Errorf("joingraph: target graph is not connected")
	}
	return tg, nil
}

func (tg *TargetGraph) connected() bool {
	if len(tg.Vertices) <= 1 {
		return true
	}
	adj := map[int][]int{}
	for _, e := range tg.Edges {
		adj[e.I] = append(adj[e.I], e.J)
		adj[e.J] = append(adj[e.J], e.I)
	}
	seen := map[int]bool{tg.Vertices[0]: true}
	stack := []int{tg.Vertices[0]}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, nb := range adj[v] {
			if !seen[nb] {
				seen[nb] = true
				stack = append(stack, nb)
			}
		}
	}
	for _, v := range tg.Vertices {
		if !seen[v] {
			return false
		}
	}
	return true
}

// Clone returns a deep copy (sharing the underlying Graph).
func (tg *TargetGraph) Clone() *TargetGraph {
	assign := make(map[string]int, len(tg.Assign))
	for k, v := range tg.Assign {
		assign[k] = v
	}
	return &TargetGraph{
		G:        tg.G,
		Vertices: append([]int(nil), tg.Vertices...),
		Edges:    append([]TGEdge(nil), tg.Edges...),
		Assign:   assign,
	}
}

// variant returns the chosen Variant of edge e.
func (tg *TargetGraph) variant(e TGEdge) Variant {
	return tg.G.EdgeBetween(e.I, e.J).Variants[e.Variant]
}

// Weight returns w(TG): the sum of chosen AS-edge weights (estimated join
// informativeness along the tree).
func (tg *TargetGraph) Weight() float64 {
	w := 0.0
	for _, e := range tg.Edges {
		w += tg.variant(e).JI
	}
	return w
}

// Purchase returns, per non-owned instance, the sorted attribute set to buy:
// the join attributes of incident edges plus the requested attributes
// assigned to that instance. This is the AS-vertex set of the acquisition.
func (tg *TargetGraph) Purchase() map[int][]string {
	sets := map[int]map[string]bool{}
	add := func(v int, attrs ...string) {
		if tg.G.Instances[v].Owned {
			return
		}
		if sets[v] == nil {
			sets[v] = map[string]bool{}
		}
		for _, a := range attrs {
			sets[v][a] = true
		}
	}
	for _, e := range tg.Edges {
		attrs := tg.variant(e).JoinAttrs
		add(e.I, attrs...)
		add(e.J, attrs...)
	}
	for a, v := range tg.Assign {
		add(v, a)
	}
	out := make(map[int][]string, len(sets))
	for v, set := range sets {
		attrs := make([]string, 0, len(set))
		for a := range set {
			attrs = append(attrs, a)
		}
		sort.Strings(attrs)
		out[v] = attrs
	}
	return out
}

// Price returns p(TG): the summed marketplace quotes for all purchase sets.
func (tg *TargetGraph) Price(ctx context.Context) (float64, error) {
	total := 0.0
	purchase := tg.Purchase()
	// Deterministic order for error reproducibility.
	idxs := make([]int, 0, len(purchase))
	for v := range purchase {
		idxs = append(idxs, v)
	}
	sort.Ints(idxs)
	for _, v := range idxs {
		p, err := tg.G.Price(ctx, v, purchase[v])
		if err != nil {
			return 0, err
		}
		total += p
	}
	return total, nil
}

// JoinHop is one hop of a linearized join plan: join instance Vertex into
// the accumulated result on attributes On (empty for the first hop).
type JoinHop struct {
	Vertex int
	On     []string
}

// JoinPlan linearizes the tree into a join order over instance indexes: a
// BFS from the lowest vertex, each hop joining the next instance on its
// chosen edge variant's attributes. JoinSteps resolves the plan to the
// instance samples; search resolves it to their columnar encodings.
func (tg *TargetGraph) JoinPlan() ([]JoinHop, error) {
	if len(tg.Vertices) == 0 {
		return nil, fmt.Errorf("joingraph: empty target graph")
	}
	type nb struct {
		to   int
		edge TGEdge
	}
	adj := map[int][]nb{}
	for _, e := range tg.Edges {
		adj[e.I] = append(adj[e.I], nb{to: e.J, edge: e})
		adj[e.J] = append(adj[e.J], nb{to: e.I, edge: e})
	}
	for v := range adj {
		sort.Slice(adj[v], func(i, j int) bool { return adj[v][i].to < adj[v][j].to })
	}
	root := tg.Vertices[0]
	hops := []JoinHop{{Vertex: root}}
	seen := map[int]bool{root: true}
	queue := []int{root}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, n := range adj[v] {
			if seen[n.to] {
				continue
			}
			seen[n.to] = true
			queue = append(queue, n.to)
			hops = append(hops, JoinHop{Vertex: n.to, On: tg.variant(n.edge).JoinAttrs})
		}
	}
	if len(hops) != len(tg.Vertices) {
		return nil, fmt.Errorf("joingraph: target graph not connected (%d of %d vertices reached)",
			len(hops), len(tg.Vertices))
	}
	return hops, nil
}

// JoinSteps resolves JoinPlan to a join path over the instance samples. The
// caller joins them with relation.JoinPath or sampling.ResampledJoinPath.
func (tg *TargetGraph) JoinSteps() ([]relation.PathStep, error) {
	hops, err := tg.JoinPlan()
	if err != nil {
		return nil, err
	}
	steps := make([]relation.PathStep, len(hops))
	for i, h := range hops {
		steps[i] = relation.PathStep{Table: tg.G.Instances[h.Vertex].Sample, On: h.On}
	}
	return steps, nil
}

// FDs returns the AFD set relevant to this target graph: the union of the
// participating instances' AFDs (quality of the join result is measured
// against them, Def 2.3).
func (tg *TargetGraph) FDs() []fd.FD {
	return tg.G.AllFDs(tg.Vertices)
}

// String renders a compact description for logs and experiment output.
func (tg *TargetGraph) String() string {
	s := "TG{"
	for i, v := range tg.Vertices {
		if i > 0 {
			s += ","
		}
		s += tg.G.Instances[v].Name
	}
	s += "}["
	for i, e := range tg.Edges {
		if i > 0 {
			s += " "
		}
		v := tg.variant(e)
		s += fmt.Sprintf("%s-%s on %v", tg.G.Instances[e.I].Name, tg.G.Instances[e.J].Name, v.JoinAttrs)
	}
	return s + "]"
}
