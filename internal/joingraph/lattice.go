package joingraph

import (
	"fmt"
	"math/big"
	"sort"
	"strings"
)

// Lattice is the attribute-set lattice of one instance (Def 4.1): one vertex
// per attribute subset of size ≥ 2 (the paper's lattice tops out at
// 2-attribute sets and bottoms at the full set, 2^m − m − 1 vertices).
//
// For instances with at most maxExplicit attributes the lattice is
// materialized; wider instances get a *virtual* lattice whose vertices are
// computed on demand (VertexCount, Contains, Children, Parents still work).
type Lattice struct {
	attrs    []string // sorted
	index    map[string]int
	explicit bool
	// vertices[level] lists the masks at that level; level l holds subsets
	// of size m−l, so level 0 is the bottom (full set) per Fig 2.
	vertices [][]uint64
}

// DefaultLatticeMaxAttrs bounds explicit materialization: 2^16 vertices.
const DefaultLatticeMaxAttrs = 16

// NewLattice builds the lattice over the given attributes. maxExplicit ≤ 0
// uses DefaultLatticeMaxAttrs. At most 64 attributes are supported.
func NewLattice(attrs []string, maxExplicit int) (*Lattice, error) {
	if len(attrs) < 2 {
		return nil, fmt.Errorf("joingraph: lattice needs ≥ 2 attributes, got %d", len(attrs))
	}
	if len(attrs) > 64 {
		return nil, fmt.Errorf("joingraph: lattice supports ≤ 64 attributes, got %d", len(attrs))
	}
	if maxExplicit <= 0 {
		maxExplicit = DefaultLatticeMaxAttrs
	}
	sorted := append([]string(nil), attrs...)
	sort.Strings(sorted)
	l := &Lattice{attrs: sorted, index: make(map[string]int, len(sorted))}
	for i, a := range sorted {
		if _, dup := l.index[a]; dup {
			return nil, fmt.Errorf("joingraph: duplicate attribute %q", a)
		}
		l.index[a] = i
	}
	m := len(sorted)
	if m <= maxExplicit {
		l.explicit = true
		l.vertices = make([][]uint64, m-1)
		for mask := uint64(1); mask < 1<<uint(m); mask++ {
			size := popcount(mask)
			if size < 2 {
				continue
			}
			level := m - size // bottom (full set) = level 0
			l.vertices[level] = append(l.vertices[level], mask)
		}
	}
	return l, nil
}

func popcount(x uint64) int {
	c := 0
	for x != 0 {
		x &= x - 1
		c++
	}
	return c
}

// Attrs returns the sorted attribute universe.
func (l *Lattice) Attrs() []string { return append([]string(nil), l.attrs...) }

// Explicit reports whether vertices are materialized.
func (l *Lattice) Explicit() bool { return l.explicit }

// Height returns the lattice height, m − 1 per Def 4.1 (levels 0..m−2 hold
// subsets of sizes m..2).
func (l *Lattice) Height() int { return len(l.attrs) - 1 }

// VertexCount returns the total number of lattice vertices, 2^m − m − 1,
// exactly even for virtual lattices (hence big.Int).
func (l *Lattice) VertexCount() *big.Int {
	m := int64(len(l.attrs))
	n := new(big.Int).Lsh(big.NewInt(1), uint(m))
	n.Sub(n, big.NewInt(m+1))
	return n
}

// Mask converts an attribute set to its bitmask. Unknown attributes error.
func (l *Lattice) Mask(attrs []string) (uint64, error) {
	var mask uint64
	for _, a := range attrs {
		i, ok := l.index[a]
		if !ok {
			return 0, fmt.Errorf("joingraph: attribute %q not in lattice (%s)", a, strings.Join(l.attrs, ","))
		}
		mask |= 1 << uint(i)
	}
	return mask, nil
}

// AttrSet converts a bitmask back to sorted attribute names.
func (l *Lattice) AttrSet(mask uint64) []string {
	var out []string
	for i, a := range l.attrs {
		if mask&(1<<uint(i)) != 0 {
			out = append(out, a)
		}
	}
	return out
}

// Contains reports whether the attribute set is a lattice vertex
// (subset of the universe with ≥ 2 attributes).
func (l *Lattice) Contains(attrs []string) bool {
	mask, err := l.Mask(attrs)
	if err != nil {
		return false
	}
	return popcount(mask) >= 2
}

// Level returns the masks at the given level (0 = bottom/full set).
// For virtual lattices, levels are generated on demand; generating a level
// near the middle of a wide lattice can be enormous — callers are expected
// to stick to small levels or use Children/Parents walks.
func (l *Lattice) Level(level int) []uint64 {
	m := len(l.attrs)
	if level < 0 || level > m-2 {
		return nil
	}
	if l.explicit {
		return append([]uint64(nil), l.vertices[level]...)
	}
	size := m - level
	var out []uint64
	var gen func(start int, mask uint64, left int)
	gen = func(start int, mask uint64, left int) {
		if left == 0 {
			out = append(out, mask)
			return
		}
		for i := start; i <= m-left; i++ {
			gen(i+1, mask|1<<uint(i), left-1)
		}
	}
	gen(0, 0, size)
	return out
}

// Children returns the masks of the children of the vertex (Def 4.1: B is a
// child of A when A ⊂ B and |B| = |A| + 1 — one level closer to the bottom).
func (l *Lattice) Children(mask uint64) []uint64 {
	m := len(l.attrs)
	if popcount(mask) >= m {
		return nil
	}
	var out []uint64
	for i := 0; i < m; i++ {
		b := uint64(1) << uint(i)
		if mask&b == 0 {
			out = append(out, mask|b)
		}
	}
	return out
}

// Parents returns the masks one level up (subsets with one attribute
// removed), excluding sets smaller than 2 attributes.
func (l *Lattice) Parents(mask uint64) []uint64 {
	if popcount(mask) <= 2 {
		return nil
	}
	var out []uint64
	for i := 0; i < len(l.attrs); i++ {
		b := uint64(1) << uint(i)
		if mask&b != 0 {
			out = append(out, mask&^b)
		}
	}
	return out
}

// IsAncestor reports whether a is an ancestor of b: AS(a) ⊂ AS(b)
// (connected by a path per Def 4.1).
func (l *Lattice) IsAncestor(a, b uint64) bool {
	return a != b && a&b == a
}

// Siblings reports whether a and b sit at the same level.
func (l *Lattice) Siblings(a, b uint64) bool {
	return a != b && popcount(a) == popcount(b)
}
