package joingraph

import (
	"strings"
	"testing"

	"github.com/dance-db/dance/internal/infotheory"
)

// TestASEdgesFigure3 materializes the AS-layer of the paper's Figure 3:
// D1(A,B,C) and D2(B,C,D,E). D1's lattice has 2^3−3−1 = 4 vertices, D2's
// has 2^4−4−1 = 11; every vertex pair with intersecting attributes is an
// AS-edge.
func TestASEdgesFigure3(t *testing.T) {
	insts := figure3Instances(9)
	g, err := Build(insts, Config{MaxJoinAttrs: 3})
	if err != nil {
		t.Fatal(err)
	}
	edges, err := g.ASEdges(0, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(edges) == 0 {
		t.Fatal("no AS-edges")
	}
	// Count: D1 vertices {AB, AC, BC, ABC}; D2 vertices are the 11 subsets
	// of {B,C,D,E} with ≥ 2 attrs. Intersections are over {B, C}.
	// D1's AB intersects D2 vertices containing B: {BC,BD,BE,BCD,BCE,BDE,
	// BCDE} → 7; similarly AC ↔ C-containing: 7; BC and ABC intersect all
	// vertices containing B or C: 11 − |{DE}| = 10 each.
	if len(edges) != 7+7+10+10 {
		t.Fatalf("AS-edges = %d, want 34", len(edges))
	}
	for _, e := range edges {
		if e.JI < 0 || e.JI > 1 {
			t.Fatalf("JI out of range: %+v", e)
		}
		if len(e.JoinAttrs) == 0 {
			t.Fatalf("empty join attrs: %+v", e)
		}
	}
}

// Property 4.1: all AS-edges with the same join-attribute set carry the
// same weight, and that weight equals the directly computed JI.
func TestASEdgesProperty41(t *testing.T) {
	insts := figure3Instances(10)
	g, err := Build(insts, Config{MaxJoinAttrs: 3})
	if err != nil {
		t.Fatal(err)
	}
	edges, err := g.ASEdges(0, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	bySet := map[string][]float64{}
	for _, e := range edges {
		k := strings.Join(e.JoinAttrs, ",")
		bySet[k] = append(bySet[k], e.JI)
	}
	if len(bySet) != 3 { // {B}, {C}, {B,C}
		t.Fatalf("distinct join-attribute sets = %d, want 3", len(bySet))
	}
	for k, jis := range bySet {
		for _, ji := range jis[1:] {
			if ji != jis[0] {
				t.Fatalf("Property 4.1 violated for %s: %v", k, jis)
			}
		}
		direct, err := infotheory.JoinInformativeness(
			insts[0].Sample, insts[1].Sample, strings.Split(k, ","))
		if err != nil {
			t.Fatal(err)
		}
		if diff := direct - jis[0]; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("weight for %s (%v) differs from direct JI (%v)", k, jis[0], direct)
		}
	}
}

func TestASEdgesGuards(t *testing.T) {
	insts := figure3Instances(11)
	g, err := Build(insts, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.ASEdges(0, 0, 0); err == nil {
		t.Fatal("same instance should error")
	}
	if _, err := g.ASEdges(0, 1, 2); err == nil {
		t.Fatal("maxAttrs below instance width should error")
	}
	// Symmetric call order works (i > j normalized).
	e1, err := g.ASEdges(1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	e2, _ := g.ASEdges(0, 1, 0)
	if len(e1) != len(e2) {
		t.Fatalf("asymmetric enumeration: %d vs %d", len(e1), len(e2))
	}
}

func TestIntersectSorted(t *testing.T) {
	got := intersectSorted([]string{"a", "c", "e"}, []string{"b", "c", "d", "e"})
	if len(got) != 2 || got[0] != "c" || got[1] != "e" {
		t.Fatalf("intersect = %v", got)
	}
	if intersectSorted([]string{"a"}, []string{"b"}) != nil {
		t.Fatal("disjoint intersect should be nil")
	}
}
