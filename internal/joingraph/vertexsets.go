package joingraph

import (
	"fmt"
	"sort"
	"strings"
)

// ASVertex names one attribute-set vertex of the AS-layer: an instance and
// a subset of its attributes.
type ASVertex struct {
	Instance int
	Attrs    []string // sorted
}

// String renders "instance{a,b}".
func (v ASVertex) String() string {
	return fmt.Sprintf("%d{%s}", v.Instance, strings.Join(v.Attrs, ","))
}

// TargetVertexSets enumerates the distinct target AS-vertex sets of
// Def 4.3 / Example 4.1: sets of AS-vertices whose attribute union covers
// attrs, where each vertex contributes a non-empty subset of the attributes
// its instance holds.
//
// Semantics note: we enumerate *non-redundant* covers — each attribute is
// provided by exactly one vertex (a rational shopper does not pay twice for
// one attribute), and vertices of the same instance merge, which is what
// deduplicates the paper's overlapping decompositions (its Example 4.1
// counts "43 unique target AS-vertex sets" after removing duplicates like
// v5 contributing {C} versus {B,C}). The paper's Option-4-style covers with
// genuinely overlapping attributes are excluded by design.
//
// maxResults caps the enumeration (0 = no cap); the count grows
// exponentially with |attrs| and the number of holders.
func (g *Graph) TargetVertexSets(attrs []string, maxResults int) ([][]ASVertex, error) {
	if len(attrs) == 0 {
		return nil, fmt.Errorf("joingraph: empty attribute set")
	}
	sorted := append([]string(nil), attrs...)
	sort.Strings(sorted)
	holders := make([][]int, len(sorted))
	for ai, a := range sorted {
		holders[ai] = g.InstancesWithAttr(a)
		if len(holders[ai]) == 0 {
			return nil, fmt.Errorf("joingraph: attribute %q not offered by any instance", a)
		}
	}

	// Assign each attribute to one holding instance; each distinct
	// assignment induces the vertex set {(instance, assigned attrs)}.
	// Different assignments can induce the same vertex set only via
	// permutations, which the canonical key removes — but the paper's
	// duplicates arise from *different vertices of the same instance*
	// (e.g. v5 contributing {C} vs {B,C}), which assignments also cover:
	// every subset split of an instance's attributes corresponds to some
	// assignment of which attributes it provides.
	//
	// To match Example 4.1, where a vertex may carry any attr subset of
	// its instance (so one instance can appear with {B} or {B,C}), we
	// enumerate assignments attr→instance and then, per instance, the
	// contributed set is exactly the assigned attrs. Sets where an
	// instance contributes attrs it lacks are impossible by construction.
	seen := map[string]bool{}
	var out [][]ASVertex
	assign := make([]int, len(sorted))
	var rec func(ai int) bool // returns false when capped
	rec = func(ai int) bool {
		if maxResults > 0 && len(out) >= maxResults {
			return false
		}
		if ai == len(sorted) {
			byInst := map[int][]string{}
			for i, inst := range assign {
				byInst[inst] = append(byInst[inst], sorted[i])
			}
			var set []ASVertex
			for inst, as := range byInst {
				sort.Strings(as)
				set = append(set, ASVertex{Instance: inst, Attrs: as})
			}
			sort.Slice(set, func(a, b int) bool { return set[a].Instance < set[b].Instance })
			key := vertexSetKey(set)
			if !seen[key] {
				seen[key] = true
				out = append(out, set)
			}
			return true
		}
		for _, h := range holders[ai] {
			assign[ai] = h
			if !rec(ai + 1) {
				return false
			}
		}
		return true
	}
	rec(0)
	return out, nil
}

func vertexSetKey(set []ASVertex) string {
	var b strings.Builder
	for _, v := range set {
		fmt.Fprintf(&b, "%d:%s;", v.Instance, strings.Join(v.Attrs, ","))
	}
	return b.String()
}

// CountTargetVertexSets returns only the number of distinct target
// AS-vertex sets (Example 4.1's "43 unique target AS-vertex sets").
func (g *Graph) CountTargetVertexSets(attrs []string, maxResults int) (int, error) {
	sets, err := g.TargetVertexSets(attrs, maxResults)
	if err != nil {
		return 0, err
	}
	return len(sets), nil
}
