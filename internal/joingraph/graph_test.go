package joingraph

import (
	"context"
	"math/rand"
	"testing"

	"github.com/dance-db/dance/internal/fd"
	"github.com/dance-db/dance/internal/pricing"
	"github.com/dance-db/dance/internal/relation"
)

// figure3Instances builds the paper's Figure 3 setup: D1(A,B,C) and
// D2(B,C,D,E) sharing {B, C}.
func figure3Instances(seed int64) []*Instance {
	rng := rand.New(rand.NewSource(seed))
	d1 := relation.NewTable("D1", relation.NewSchema(
		relation.Cat("A", relation.KindInt),
		relation.Cat("B", relation.KindInt),
		relation.Cat("C", relation.KindInt),
	))
	d2 := relation.NewTable("D2", relation.NewSchema(
		relation.Cat("B", relation.KindInt),
		relation.Cat("C", relation.KindInt),
		relation.Cat("D", relation.KindInt),
		relation.Cat("E", relation.KindInt),
	))
	for i := 0; i < 200; i++ {
		b := int64(rng.Intn(8))
		c := int64(rng.Intn(6))
		d1.AppendValues(relation.IntValue(int64(rng.Intn(20))), relation.IntValue(b), relation.IntValue(c))
		d2.AppendValues(relation.IntValue(b), relation.IntValue(c),
			relation.IntValue(int64(rng.Intn(4))), relation.IntValue(int64(rng.Intn(10))))
	}
	return []*Instance{
		{Name: "D1", Sample: d1, FullRows: 2000, FDs: []fd.FD{fd.New("B", "A")}},
		{Name: "D2", Sample: d2, FullRows: 4000, FDs: []fd.FD{fd.New("E", "D")}},
	}
}

var bg = context.Background()

type quoter struct {
	model     pricing.Model
	instances map[string]*relation.Table
	calls     int
}

func newQuoter(instances []*Instance) *quoter {
	q := &quoter{model: pricing.DefaultEntropyModel(), instances: map[string]*relation.Table{}}
	for _, inst := range instances {
		q.instances[inst.Name] = inst.Sample
	}
	return q
}

func (q *quoter) QuoteProjection(_ context.Context, instance string, attrs []string) (float64, error) {
	q.calls++
	return q.model.PriceProjection(q.instances[instance], attrs)
}

func buildFig3(t *testing.T) (*Graph, *quoter) {
	t.Helper()
	insts := figure3Instances(1)
	q := newQuoter(insts)
	g, err := Build(insts, Config{Quoter: q})
	if err != nil {
		t.Fatal(err)
	}
	return g, q
}

func TestBuildCreatesEdgeWithVariants(t *testing.T) {
	g, _ := buildFig3(t)
	if len(g.Edges) != 1 {
		t.Fatalf("edges = %d, want 1", len(g.Edges))
	}
	e := g.Edges[0]
	if len(e.Shared) != 2 || e.Shared[0] != "B" || e.Shared[1] != "C" {
		t.Fatalf("shared = %v", e.Shared)
	}
	// Variants: {B}, {C}, {B,C}.
	if len(e.Variants) != 3 {
		t.Fatalf("variants = %d, want 3", len(e.Variants))
	}
	// MinJI is the minimum over variants and MinVariant points at it.
	min := e.Variants[0].JI
	for _, v := range e.Variants {
		if v.JI < min {
			min = v.JI
		}
	}
	if e.MinJI != min || e.Variants[e.MinVariant()].JI != min {
		t.Fatalf("MinJI=%v MinVariant JI=%v want %v", e.MinJI, e.Variants[e.MinVariant()].JI, min)
	}
	for _, v := range e.Variants {
		if v.JI < 0 || v.JI > 1 {
			t.Fatalf("JI out of range: %v", v.JI)
		}
	}
}

func TestBuildSkipsDisjointSchemas(t *testing.T) {
	a := relation.NewTable("a", relation.NewSchema(relation.Cat("x", relation.KindInt)))
	b := relation.NewTable("b", relation.NewSchema(relation.Cat("y", relation.KindInt)))
	a.AppendValues(relation.IntValue(1))
	b.AppendValues(relation.IntValue(2))
	g, err := Build([]*Instance{{Name: "a", Sample: a}, {Name: "b", Sample: b}}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Edges) != 0 {
		t.Fatalf("disjoint schemas should produce no edge, got %d", len(g.Edges))
	}
}

func TestMaxJoinAttrsCap(t *testing.T) {
	insts := figure3Instances(2)
	g, err := Build(insts, Config{MaxJoinAttrs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Edges[0].Variants) != 2 { // only {B} and {C}
		t.Fatalf("variants = %d, want 2", len(g.Edges[0].Variants))
	}
}

func TestEdgeBetweenAndInstanceIndex(t *testing.T) {
	g, _ := buildFig3(t)
	if g.EdgeBetween(1, 0) == nil || g.EdgeBetween(0, 1) == nil {
		t.Fatal("EdgeBetween should be symmetric")
	}
	if g.InstanceIndex("D2") != 1 || g.InstanceIndex("zz") != -1 {
		t.Fatal("InstanceIndex broken")
	}
}

func TestILayerExport(t *testing.T) {
	g, _ := buildFig3(t)
	ig := g.ILayer()
	if ig.N() != 2 || ig.NumEdges() != 1 {
		t.Fatalf("ILayer shape: %d vertices %d edges", ig.N(), ig.NumEdges())
	}
	if ig.Weight(0, 1) != g.Edges[0].MinJI+ILayerEdgeEpsilon {
		t.Fatal("ILayer weight should be MinJI plus the tie-breaking epsilon")
	}
}

func TestPriceCachingAndOwnedFree(t *testing.T) {
	insts := figure3Instances(3)
	insts[0].Owned = true
	q := newQuoter(insts)
	g, err := Build(insts, Config{Quoter: q})
	if err != nil {
		t.Fatal(err)
	}
	p, err := g.Price(bg, 0, []string{"A", "B"})
	if err != nil || p != 0 {
		t.Fatalf("owned price = %v, %v; want 0", p, err)
	}
	base := q.calls
	p1, err := g.Price(bg, 1, []string{"D", "E"})
	if err != nil || p1 <= 0 {
		t.Fatalf("price = %v, %v", p1, err)
	}
	p2, _ := g.Price(bg, 1, []string{"E", "D"}) // different order, same set
	if p2 != p1 {
		t.Fatal("price should be order-insensitive")
	}
	if q.calls != base+1 {
		t.Fatalf("quoter called %d times, want 1 (cache)", q.calls-base)
	}
}

func TestPriceWithoutQuoterErrors(t *testing.T) {
	insts := figure3Instances(4)
	g, _ := Build(insts, Config{})
	if _, err := g.Price(bg, 0, []string{"A"}); err == nil {
		t.Fatal("missing quoter should error")
	}
}

func TestInstancesWithAttrAndAllFDs(t *testing.T) {
	g, _ := buildFig3(t)
	if got := g.InstancesWithAttr("B"); len(got) != 2 {
		t.Fatalf("InstancesWithAttr(B) = %v", got)
	}
	if got := g.InstancesWithAttr("A"); len(got) != 1 || got[0] != 0 {
		t.Fatalf("InstancesWithAttr(A) = %v", got)
	}
	fds := g.AllFDs([]int{0, 1})
	if len(fds) != 2 {
		t.Fatalf("AllFDs = %v", fds)
	}
	// Duplicate FDs are deduplicated.
	g.Instances[1].FDs = append(g.Instances[1].FDs, fd.New("B", "A"))
	fds = g.AllFDs([]int{0, 1})
	if len(fds) != 2 {
		t.Fatalf("AllFDs after dup = %v", fds)
	}
}

func TestEnumerateSubsets(t *testing.T) {
	subs := enumerateSubsets([]string{"a", "b", "c"}, 3)
	if len(subs) != 7 {
		t.Fatalf("subsets = %d, want 7", len(subs))
	}
	if len(subs[0]) != 1 || len(subs[6]) != 3 {
		t.Fatalf("subset ordering wrong: %v", subs)
	}
	capped := enumerateSubsets([]string{"a", "b", "c"}, 2)
	if len(capped) != 6 {
		t.Fatalf("capped subsets = %d, want 6", len(capped))
	}
}

// Property 4.1 consequence: variants with the same join attrs across
// rebuilds have identical weights (estimation is deterministic given the
// sample).
func TestBuildDeterministic(t *testing.T) {
	g1, _ := buildFig3(t)
	g2, _ := buildFig3(t)
	for i := range g1.Edges {
		for j := range g1.Edges[i].Variants {
			if g1.Edges[i].Variants[j].JI != g2.Edges[i].Variants[j].JI {
				t.Fatal("build not deterministic")
			}
		}
	}
}
