package joingraph

import (
	"strings"
	"testing"

	"github.com/dance-db/dance/internal/relation"
)

// chainInstances builds three instances a(k1,x) – b(k1,k2) – c(k2,y) so the
// join graph is a path a—b—c.
func chainInstances() []*Instance {
	a := relation.NewTable("a", relation.NewSchema(
		relation.Cat("k1", relation.KindInt), relation.Cat("x", relation.KindInt)))
	b := relation.NewTable("b", relation.NewSchema(
		relation.Cat("k1", relation.KindInt), relation.Cat("k2", relation.KindInt)))
	c := relation.NewTable("c", relation.NewSchema(
		relation.Cat("k2", relation.KindInt), relation.Cat("y", relation.KindInt)))
	for i := 0; i < 60; i++ {
		k1 := int64(i % 6)
		k2 := int64(i % 4)
		a.AppendValues(relation.IntValue(k1), relation.IntValue(int64(i%9)))
		b.AppendValues(relation.IntValue(k1), relation.IntValue(k2))
		c.AppendValues(relation.IntValue(k2), relation.IntValue(int64(i%7)))
	}
	return []*Instance{
		{Name: "a", Sample: a, FullRows: 600},
		{Name: "b", Sample: b, FullRows: 600},
		{Name: "c", Sample: c, FullRows: 600},
	}
}

func buildChain(t *testing.T) *Graph {
	t.Helper()
	insts := chainInstances()
	g, err := Build(insts, Config{Quoter: newQuoter(insts)})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func chainTG(t *testing.T, g *Graph) *TargetGraph {
	t.Helper()
	tg, err := NewTargetGraph(g,
		[]int{0, 1, 2},
		[]TGEdge{{I: 0, J: 1, Variant: 0}, {I: 1, J: 2, Variant: 0}},
		map[string]int{"x": 0, "y": 2},
	)
	if err != nil {
		t.Fatal(err)
	}
	return tg
}

func TestNewTargetGraphValidation(t *testing.T) {
	g := buildChain(t)
	if _, err := NewTargetGraph(g, []int{0, 9}, nil, nil); err == nil {
		t.Fatal("out-of-range vertex accepted")
	}
	if _, err := NewTargetGraph(g, []int{0, 1}, []TGEdge{{I: 1, J: 0}}, nil); err == nil {
		t.Fatal("non-normalized edge accepted")
	}
	if _, err := NewTargetGraph(g, []int{0, 2}, []TGEdge{{I: 0, J: 2}}, nil); err == nil {
		t.Fatal("edge without I-edge accepted (a and c share nothing)")
	}
	if _, err := NewTargetGraph(g, []int{0, 1}, []TGEdge{{I: 0, J: 1, Variant: 99}}, nil); err == nil {
		t.Fatal("variant out of range accepted")
	}
	if _, err := NewTargetGraph(g, []int{0, 1}, []TGEdge{{I: 0, J: 1}}, map[string]int{"y": 2}); err == nil {
		t.Fatal("assignment to vertex outside tree accepted")
	}
	if _, err := NewTargetGraph(g, []int{0, 1}, []TGEdge{{I: 0, J: 1}}, map[string]int{"y": 0}); err == nil {
		t.Fatal("assignment of attribute the instance lacks accepted")
	}
	if _, err := NewTargetGraph(g, []int{0, 1, 2}, []TGEdge{{I: 0, J: 1}}, nil); err == nil {
		t.Fatal("disconnected tree accepted")
	}
}

func TestTargetGraphWeightPricePurchase(t *testing.T) {
	g := buildChain(t)
	tg := chainTG(t, g)

	wantW := g.EdgeBetween(0, 1).Variants[0].JI + g.EdgeBetween(1, 2).Variants[0].JI
	if w := tg.Weight(); w != wantW {
		t.Fatalf("Weight = %v, want %v", w, wantW)
	}

	purchase := tg.Purchase()
	if len(purchase) != 3 {
		t.Fatalf("purchase sets = %v", purchase)
	}
	// a buys k1 (join) + x (target); b buys k1,k2; c buys k2,y.
	if got := strings.Join(purchase[0], ","); got != "k1,x" {
		t.Fatalf("purchase[a] = %v", got)
	}
	if got := strings.Join(purchase[1], ","); got != "k1,k2" {
		t.Fatalf("purchase[b] = %v", got)
	}
	if got := strings.Join(purchase[2], ","); got != "k2,y" {
		t.Fatalf("purchase[c] = %v", got)
	}

	p, err := tg.Price(bg)
	if err != nil {
		t.Fatal(err)
	}
	if p <= 0 {
		t.Fatalf("price = %v", p)
	}
}

func TestTargetGraphOwnedInstanceNotPurchased(t *testing.T) {
	insts := chainInstances()
	insts[0].Owned = true
	g, err := Build(insts, Config{Quoter: newQuoter(insts)})
	if err != nil {
		t.Fatal(err)
	}
	tg := chainTG(t, g)
	purchase := tg.Purchase()
	if _, ok := purchase[0]; ok {
		t.Fatal("owned instance must not appear in purchase sets")
	}
	pOwned, err := tg.Price(bg)
	if err != nil {
		t.Fatal(err)
	}
	g2 := buildChain(t)
	pAll, _ := chainTG(t, g2).Price(bg)
	if pOwned >= pAll {
		t.Fatalf("price with owned source (%v) should be below full price (%v)", pOwned, pAll)
	}
}

func TestJoinSteps(t *testing.T) {
	g := buildChain(t)
	tg := chainTG(t, g)
	steps, err := tg.JoinSteps()
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 3 {
		t.Fatalf("steps = %d", len(steps))
	}
	j, err := relation.JoinPath(steps)
	if err != nil {
		t.Fatal(err)
	}
	if j.NumRows() == 0 {
		t.Fatal("join is empty")
	}
	for _, col := range []string{"x", "y", "k1", "k2"} {
		if !j.Schema.Has(col) {
			t.Fatalf("join missing column %s", col)
		}
	}
}

func TestJoinStepsSingleVertex(t *testing.T) {
	g := buildChain(t)
	tg, err := NewTargetGraph(g, []int{1}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	steps, err := tg.JoinSteps()
	if err != nil || len(steps) != 1 {
		t.Fatalf("steps = %v, %v", steps, err)
	}
}

func TestCloneIndependence(t *testing.T) {
	g := buildChain(t)
	tg := chainTG(t, g)
	c := tg.Clone()
	c.Edges[0].Variant = 1
	c.Assign["x"] = 0
	if tg.Edges[0].Variant == 1 {
		t.Fatal("Clone shares edge storage")
	}
}

func TestTargetGraphString(t *testing.T) {
	g := buildChain(t)
	tg := chainTG(t, g)
	s := tg.String()
	for _, want := range []string{"a", "b", "c", "on"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
}

func TestTargetCovers(t *testing.T) {
	g := buildChain(t)
	covers, err := g.TargetCovers([]string{"x", "y"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// x only in a, y only in c → unique cover {a, c}.
	if len(covers) != 1 || len(covers[0]) != 2 || covers[0][0] != 0 || covers[0][1] != 2 {
		t.Fatalf("covers = %v", covers)
	}
	// k1 is in a and b → two covers for {k1, y}.
	covers, err = g.TargetCovers([]string{"k1", "y"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(covers) != 2 {
		t.Fatalf("covers = %v, want 2", covers)
	}
	if _, err := g.TargetCovers([]string{"nowhere"}, 0); err == nil {
		t.Fatal("uncoverable attribute should error")
	}
	if _, err := g.TargetCovers(nil, 0); err == nil {
		t.Fatal("empty attribute set should error")
	}
}

func TestTargetCoversMinimality(t *testing.T) {
	g := buildChain(t)
	// {k1, k2}: b alone covers both; {a, c} also covers but is larger yet
	// not a superset of {b} — both must appear; supersets like {a,b} must
	// not.
	covers, err := g.TargetCovers([]string{"k1", "k2"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range covers {
		for _, o := range covers {
			if len(o) < len(c) && subsetInts(o, c) {
				t.Fatalf("non-minimal cover %v ⊃ %v", c, o)
			}
		}
	}
	found := false
	for _, c := range covers {
		if len(c) == 1 && c[0] == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("singleton cover {b} missing: %v", covers)
	}
}

func TestTargetCoversCap(t *testing.T) {
	g := buildChain(t)
	covers, err := g.TargetCovers([]string{"k1", "k2"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(covers) != 1 {
		t.Fatalf("capped covers = %v", covers)
	}
}

func TestAssignAttrs(t *testing.T) {
	g := buildChain(t)
	assign, err := g.AssignAttrs([]string{"x", "k2"}, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if assign["x"] != 0 || assign["k2"] != 1 {
		t.Fatalf("assign = %v", assign)
	}
	if _, err := g.AssignAttrs([]string{"y"}, []int{0, 1}); err == nil {
		t.Fatal("uncovered attribute should error")
	}
}

func TestTargetGraphFDsAndJoinAttrsOf(t *testing.T) {
	g := buildChain(t)
	tg := chainTG(t, g)
	fds := tg.FDs()
	if len(fds) != 0 {
		t.Fatalf("chain instances declare no FDs, got %v", fds)
	}
	attrs := tg.Edges[0].JoinAttrsOf(g)
	if len(attrs) != 1 || attrs[0] != "k1" {
		t.Fatalf("JoinAttrsOf = %v", attrs)
	}
}

func TestSourceCoversPrefersOwned(t *testing.T) {
	insts := chainInstances()
	insts[0].Owned = true // "a" owns k1 and x
	g, err := Build(insts, Config{Quoter: newQuoter(insts)})
	if err != nil {
		t.Fatal(err)
	}
	// k1 lives in a (owned) and b (market): source covers must pin to a.
	covers, err := g.SourceCovers([]string{"k1"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(covers) != 1 || len(covers[0]) != 1 || covers[0][0] != 0 {
		t.Fatalf("SourceCovers = %v, want [[0]]", covers)
	}
	// Target covers stay unrestricted.
	tcovers, err := g.TargetCovers([]string{"k1"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(tcovers) != 2 {
		t.Fatalf("TargetCovers = %v, want both holders", tcovers)
	}
}
