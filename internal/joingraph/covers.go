package joingraph

import (
	"fmt"
	"sort"
)

// TargetCovers enumerates minimal instance covers of the attribute set
// (Def 4.3 / Example 4.1): sets of instance indexes that jointly contain
// every attribute, with no redundant member. Results are deduplicated,
// sorted by (size, lexicographic), and capped at maxCovers (0 = no cap).
func (g *Graph) TargetCovers(attrs []string, maxCovers int) ([][]int, error) {
	return g.covers(attrs, maxCovers, false)
}

// SourceCovers enumerates covers of the *source* attribute set AS. The
// paper's problem definition joins S ∪ T — the shopper's own instances
// always participate when they hold source attributes — so any attribute
// held by an owned instance is restricted to owned holders.
func (g *Graph) SourceCovers(attrs []string, maxCovers int) ([][]int, error) {
	return g.covers(attrs, maxCovers, true)
}

func (g *Graph) covers(attrs []string, maxCovers int, preferOwned bool) ([][]int, error) {
	if len(attrs) == 0 {
		return nil, fmt.Errorf("joingraph: empty attribute set to cover")
	}
	holders := make([][]int, len(attrs))
	for ai, a := range attrs {
		all := g.InstancesWithAttr(a)
		if preferOwned {
			var owned []int
			for _, i := range all {
				if g.Instances[i].Owned {
					owned = append(owned, i)
				}
			}
			if len(owned) > 0 {
				all = owned
			}
		}
		holders[ai] = all
		if len(holders[ai]) == 0 {
			return nil, fmt.Errorf("joingraph: attribute %q not offered by any instance", a)
		}
	}
	seen := map[string]bool{}
	var covers [][]int
	var rec func(ai int, chosen map[int]bool)
	rec = func(ai int, chosen map[int]bool) {
		if maxCovers > 0 && len(covers) >= maxCovers*4 {
			return // generous pre-cap; minimality filter trims below
		}
		if ai == len(attrs) {
			cover := make([]int, 0, len(chosen))
			for i := range chosen {
				cover = append(cover, i)
			}
			sort.Ints(cover)
			key := fmt.Sprint(cover)
			if !seen[key] {
				seen[key] = true
				covers = append(covers, cover)
			}
			return
		}
		// If some already-chosen instance covers this attribute, consume it
		// for free (also explore dedicated holders to find other covers).
		coveredAlready := false
		for _, h := range holders[ai] {
			if chosen[h] {
				coveredAlready = true
				break
			}
		}
		if coveredAlready {
			rec(ai+1, chosen)
			return
		}
		for _, h := range holders[ai] {
			chosen[h] = true
			rec(ai+1, chosen)
			delete(chosen, h)
		}
	}
	rec(0, map[int]bool{})

	// Minimality filter: drop covers that strictly contain another cover.
	minimal := covers[:0]
	for _, c := range covers {
		isMin := true
		for _, o := range covers {
			if len(o) < len(c) && subsetInts(o, c) {
				isMin = false
				break
			}
		}
		if isMin {
			minimal = append(minimal, c)
		}
	}
	sort.Slice(minimal, func(i, j int) bool {
		if len(minimal[i]) != len(minimal[j]) {
			return len(minimal[i]) < len(minimal[j])
		}
		for k := range minimal[i] {
			if minimal[i][k] != minimal[j][k] {
				return minimal[i][k] < minimal[j][k]
			}
		}
		return false
	})
	if maxCovers > 0 && len(minimal) > maxCovers {
		minimal = minimal[:maxCovers]
	}
	return minimal, nil
}

func subsetInts(a, b []int) bool {
	set := map[int]bool{}
	for _, x := range b {
		set[x] = true
	}
	for _, x := range a {
		if !set[x] {
			return false
		}
	}
	return true
}

// AssignAttrs maps each attribute to a covering instance from the cover,
// for building purchase sets. Owned holders win (they are free); ties break
// to the smallest instance index.
func (g *Graph) AssignAttrs(attrs []string, cover []int) (map[string]int, error) {
	inCover := map[int]bool{}
	for _, i := range cover {
		inCover[i] = true
	}
	out := make(map[string]int, len(attrs))
	for _, a := range attrs {
		found := -1
		for _, i := range g.InstancesWithAttr(a) {
			if !inCover[i] {
				continue
			}
			if found < 0 {
				found = i
			}
			if g.Instances[i].Owned {
				found = i
				break
			}
		}
		if found < 0 {
			return nil, fmt.Errorf("joingraph: cover %v does not cover attribute %q", cover, a)
		}
		out[a] = found
	}
	return out, nil
}
