// Package joingraph implements the paper's two-layer join graph (Sec 4).
//
// The instance layer (I-layer) has one vertex per marketplace instance and
// an I-edge between instances whose schemas share attributes. The attribute
// set layer (AS-layer) is, conceptually, one attribute-set lattice per
// instance with AS-edges between vertices of different instances that share
// attributes. Materializing 2^m − m − 1 lattice vertices per instance is
// infeasible for wide tables, so we exploit Property 4.1: every AS-edge
// weight depends only on (instance pair, join-attribute set). The graph
// therefore stores, per I-edge, one weighted *variant* per enumerated
// join-attribute subset, and the explicit lattice (Def 4.1) is available
// separately for narrow instances via Lattice.
//
// All weights (join informativeness) are estimated from the correlated
// samples DANCE holds, per Sec 3.
package joingraph

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"github.com/dance-db/dance/internal/fd"
	"github.com/dance-db/dance/internal/graphalg"
	"github.com/dance-db/dance/internal/infotheory"
	"github.com/dance-db/dance/internal/relation"
	"github.com/dance-db/dance/internal/safekey"
)

// Instance is one dataset registered in the join graph.
type Instance struct {
	// Name identifies the instance on the marketplace.
	Name string
	// Sample is the correlated sample DANCE holds; all estimation happens
	// on it.
	Sample *relation.Table
	// FullRows is the marketplace-reported cardinality of the full
	// instance (the sample is smaller).
	FullRows int
	// FDs are the approximate functional dependencies declared or
	// discovered for the instance; quality of join results is measured
	// against the union of participating instances' AFDs.
	FDs []fd.FD
	// Owned marks the data shopper's own source instance: it participates
	// in joins but costs nothing to "purchase".
	Owned bool
	// Columnar optionally carries the dictionary-encoded form of Sample,
	// prebuilt by the offline sample store. When set it must hold exactly
	// Sample's rows; the searcher then skips re-encoding the instance.
	Columnar *relation.Columnar
	// Version identifies the sample's offline state: it increases whenever
	// the dataset's rows (or FDs) change, and 0 for state that never
	// changes (owned sources, or callers that don't version). Search-layer
	// caches key on (Name, Version), so entries derived from an unchanged
	// dataset survive a graph rebuild.
	Version uint64
}

// CacheKey is the instance's identity for cross-rebuild caches. Owned
// instances live in their own key namespace so a shopper source can never
// alias a marketplace dataset's cached state (names are seller- and
// shopper-controlled; the two spaces aren't coordinated).
func (inst *Instance) CacheKey() string {
	if inst.Owned {
		return fmt.Sprintf("%s@own%d", inst.Name, inst.Version)
	}
	return fmt.Sprintf("%s@%d", inst.Name, inst.Version)
}

// PriceQuoter returns exact marketplace price quotes for projection queries.
// Query-based pricing means prices are queryable without buying (the
// AS-vertices of Def 4.2 carry prices). Quotes happen lazily during search,
// so the caller's context threads through: against a remote marketplace a
// cancelled search stops quoting mid-chain.
type PriceQuoter interface {
	QuoteProjection(ctx context.Context, instance string, attrs []string) (float64, error)
}

// Config controls join-graph construction.
type Config struct {
	// MaxJoinAttrs caps the size of join-attribute subsets enumerated per
	// I-edge. Complexity is exponential in the shared-attribute count
	// (Property 4.1), so wide overlaps are truncated. Default 3.
	MaxJoinAttrs int
	// Quoter supplies AS-vertex prices. Required for priced searches.
	Quoter PriceQuoter
	// JI optionally memoizes variant weights across graph rebuilds, keyed
	// by the instance pair's (name, version) identity and the attribute
	// set. With the incremental offline store most escalations change most
	// samples — but datasets with empty deltas, and the shopper's own
	// instances, keep their versions, and their pairwise estimates are
	// reused instead of re-measured. Callers that rebuild graphs from
	// *unversioned* instances must not share a JICache across different
	// samples.
	JI *JICache
}

// JICache memoizes join-informativeness estimates across graph rebuilds.
// Safe for concurrent use. Entry-capped: superseded dataset versions leave
// dead keys behind, and on overflow the cache resets — a reset only costs
// re-estimation on the next build.
type JICache struct {
	mu sync.RWMutex       // lockorder: leaf
	m  map[string]float64 // guarded by mu
}

// jiCacheCap bounds the entries held across rebuilds.
const jiCacheCap = 1 << 16

// NewJICache returns an empty cache.
func NewJICache() *JICache { return &JICache{m: make(map[string]float64)} }

func (c *JICache) get(key string) (float64, bool) {
	c.mu.RLock()
	v, ok := c.m[key]
	c.mu.RUnlock()
	return v, ok
}

func (c *JICache) put(key string, v float64) {
	c.mu.Lock()
	if len(c.m) >= jiCacheCap {
		c.m = make(map[string]float64)
	}
	c.m[key] = v
	c.mu.Unlock()
}

// Variant is one choice of join-attribute set for an I-edge, with its
// estimated join informativeness (the AS-edge weight of Def 4.2).
type Variant struct {
	JoinAttrs []string // sorted
	JI        float64
}

// IEdge connects two instances whose schemas intersect.
type IEdge struct {
	I, J     int      // instance indexes, I < J
	Shared   []string // all shared attribute names, sorted
	Variants []Variant
	// MinJI is the I-edge weight: the minimum variant weight (Def 4.2).
	MinJI float64
	// minVariant indexes the variant achieving MinJI.
	minVariant int
}

// MinVariant returns the index of the lightest variant.
func (e *IEdge) MinVariant() int { return e.minVariant }

// Graph is the two-layer join graph.
type Graph struct {
	Instances []*Instance
	Edges     []*IEdge

	cfg        Config
	edgeByPair map[[2]int]int // instance pair → edge index

	// priceMu guards priceCache: Price is called from every concurrent
	// MCMC chain of the parallel search engine.
	// lockorder: leaf
	priceMu    sync.RWMutex
	priceCache map[string]float64 // guarded by priceMu
}

// Build constructs the join graph from instances and estimates every
// variant weight from the samples.
func Build(instances []*Instance, cfg Config) (*Graph, error) {
	if cfg.MaxJoinAttrs <= 0 {
		cfg.MaxJoinAttrs = 3
	}
	g := &Graph{
		Instances:  instances,
		cfg:        cfg,
		edgeByPair: make(map[[2]int]int),
		priceCache: make(map[string]float64),
	}
	for i := 0; i < len(instances); i++ {
		for j := i + 1; j < len(instances); j++ {
			shared := relation.SharedAttrs(instances[i].Sample.Schema, instances[j].Sample.Schema)
			if len(shared) == 0 {
				continue
			}
			e := &IEdge{I: i, J: j, Shared: shared}
			subsets := enumerateSubsets(shared, cfg.MaxJoinAttrs)
			// Length-prefixed parts: instance names are seller-controlled
			// free text, so any printable separator could alias two
			// different (pair, attrs) composites. safekey.Join is
			// prefix-compositional, so the pair prefix hoists out of the
			// attrs loop.
			pairKey := ""
			if cfg.JI != nil {
				pairKey = safekey.Join(instances[i].CacheKey(), instances[j].CacheKey())
			}
			for _, attrs := range subsets {
				var ji float64
				var hit bool
				key := ""
				if cfg.JI != nil {
					key = pairKey + safekey.Join(attrs...)
					ji, hit = cfg.JI.get(key)
				}
				if !hit {
					var err error
					ji, err = infotheory.JoinInformativeness(instances[i].Sample, instances[j].Sample, attrs)
					if err != nil {
						return nil, fmt.Errorf("joingraph: JI(%s, %s) on %v: %w",
							instances[i].Name, instances[j].Name, attrs, err)
					}
					if cfg.JI != nil {
						cfg.JI.put(key, ji)
					}
				}
				e.Variants = append(e.Variants, Variant{JoinAttrs: attrs, JI: ji})
			}
			e.MinJI = e.Variants[0].JI
			for vi, v := range e.Variants {
				if v.JI < e.MinJI {
					e.MinJI = v.JI
					e.minVariant = vi
				}
			}
			g.edgeByPair[[2]int{i, j}] = len(g.Edges)
			g.Edges = append(g.Edges, e)
		}
	}
	return g, nil
}

// enumerateSubsets returns all non-empty subsets of attrs with size ≤ maxSize,
// each sorted, ordered by (size, lexicographic) for determinism.
func enumerateSubsets(attrs []string, maxSize int) [][]string {
	n := len(attrs)
	var out [][]string
	for mask := 1; mask < 1<<uint(n); mask++ {
		var sub []string
		for b := 0; b < n; b++ {
			if mask&(1<<uint(b)) != 0 {
				sub = append(sub, attrs[b])
			}
		}
		if len(sub) <= maxSize {
			out = append(out, sub)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i]) != len(out[j]) {
			return len(out[i]) < len(out[j])
		}
		for k := range out[i] {
			if out[i][k] != out[j][k] {
				return out[i][k] < out[j][k]
			}
		}
		return false
	})
	return out
}

// EdgeBetween returns the I-edge between instances i and j, or nil.
func (g *Graph) EdgeBetween(i, j int) *IEdge {
	if i > j {
		i, j = j, i
	}
	if ei, ok := g.edgeByPair[[2]int{i, j}]; ok {
		return g.Edges[ei]
	}
	return nil
}

// InstanceIndex returns the index of the named instance, or -1.
func (g *Graph) InstanceIndex(name string) int {
	for i, inst := range g.Instances {
		if inst.Name == name {
			return i
		}
	}
	return -1
}

// ILayerEdgeEpsilon is added to every I-edge weight in ILayer. Perfectly
// matched foreign-key joins have JI exactly 0, which would leave shortest
// paths arbitrary among 0-weight routes; the epsilon implements the paper's
// Sec 5 intuition that, all else equal, *longer join paths yield smaller
// correlation*, so hop count breaks ties.
const ILayerEdgeEpsilon = 1e-6

// ILayer exports the instance layer as a weighted graph for Step 1:
// vertices are instance indexes, edge weights are MinJI (plus the
// tie-breaking epsilon per edge).
func (g *Graph) ILayer() *graphalg.Graph {
	ig := graphalg.NewGraph(len(g.Instances))
	for _, e := range g.Edges {
		ig.AddEdge(e.I, e.J, e.MinJI+ILayerEdgeEpsilon)
	}
	return ig
}

// Price quotes the price of purchasing attrs from instance i, with caching.
// Owned instances are free.
func (g *Graph) Price(ctx context.Context, i int, attrs []string) (float64, error) {
	inst := g.Instances[i]
	if inst.Owned || len(attrs) == 0 {
		return 0, nil
	}
	if g.cfg.Quoter == nil {
		return 0, fmt.Errorf("joingraph: no price quoter configured")
	}
	sorted := append([]string(nil), attrs...)
	sort.Strings(sorted)
	key := inst.Name
	for _, a := range sorted {
		key += "\x00" + a
	}
	g.priceMu.RLock()
	p, ok := g.priceCache[key]
	g.priceMu.RUnlock()
	if ok {
		return p, nil
	}
	p, err := g.cfg.Quoter.QuoteProjection(ctx, inst.Name, sorted)
	if err != nil {
		return 0, fmt.Errorf("joingraph: price quote for %s%v: %w", inst.Name, sorted, err)
	}
	g.priceMu.Lock()
	g.priceCache[key] = p
	g.priceMu.Unlock()
	return p, nil
}

// InstancesWithAttr returns the indexes of instances whose sample schema
// contains the attribute.
func (g *Graph) InstancesWithAttr(attr string) []int {
	var out []int
	for i, inst := range g.Instances {
		if inst.Sample.Schema.Has(attr) {
			out = append(out, i)
		}
	}
	return out
}

// AllFDs returns the union of AFDs over the given instances, deduplicated.
func (g *Graph) AllFDs(instanceIdx []int) []fd.FD {
	seen := map[string]bool{}
	var out []fd.FD
	for _, i := range instanceIdx {
		for _, f := range g.Instances[i].FDs {
			s := f.String()
			if !seen[s] {
				seen[s] = true
				out = append(out, f)
			}
		}
	}
	return out
}
