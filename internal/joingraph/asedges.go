package joingraph

import (
	"fmt"

	"github.com/dance-db/dance/internal/infotheory"
)

// ASEdge is one AS-layer edge of Def 4.2: a pair of AS-vertices from two
// different instances with intersecting attribute sets, weighted by the
// join informativeness of the intersection.
type ASEdge struct {
	VI, VJ    ASVertex
	JoinAttrs []string // AS(VI) ∩ AS(VJ), sorted
	JI        float64
}

// DefaultASEdgeMaxAttrs bounds explicit AS-edge enumeration per instance:
// an m-attribute instance has 2^m − m − 1 lattice vertices, so pairs grow
// as ~4^m.
const DefaultASEdgeMaxAttrs = 8

// ASEdges materializes the AS-layer edges between instances i and j — every
// pair of lattice vertices (Def 4.1, attribute sets of size ≥ 2) with a
// non-empty intersection, weighted per Property 4.1 by the JI of the
// intersection alone. Intended for narrow instances (≤ maxAttrs attributes
// each; ≤ 0 uses DefaultASEdgeMaxAttrs); the search itself never needs the
// materialized layer thanks to Property 4.1, which this function also
// demonstrates (weights are looked up per join-attribute set, computed at
// most once each).
func (g *Graph) ASEdges(i, j int, maxAttrs int) ([]ASEdge, error) {
	if maxAttrs <= 0 {
		maxAttrs = DefaultASEdgeMaxAttrs
	}
	if i == j {
		return nil, fmt.Errorf("joingraph: AS-edges need two distinct instances")
	}
	if i > j {
		i, j = j, i
	}
	instI, instJ := g.Instances[i], g.Instances[j]
	if n := instI.Sample.Schema.Len(); n > maxAttrs {
		return nil, fmt.Errorf("joingraph: instance %s has %d attributes (max %d for AS-edge enumeration)",
			instI.Name, n, maxAttrs)
	}
	if n := instJ.Sample.Schema.Len(); n > maxAttrs {
		return nil, fmt.Errorf("joingraph: instance %s has %d attributes (max %d for AS-edge enumeration)",
			instJ.Name, n, maxAttrs)
	}
	latI, err := NewLattice(instI.Sample.Schema.Names(), maxAttrs)
	if err != nil {
		return nil, err
	}
	latJ, err := NewLattice(instJ.Sample.Schema.Names(), maxAttrs)
	if err != nil {
		return nil, err
	}

	// Property 4.1: the weight depends only on the join-attribute set, so
	// compute each intersection's JI once. Prefer the precomputed variant
	// table; fall back to a direct estimate for sets the builder capped.
	jiBySet := map[string]float64{}
	if e := g.EdgeBetween(i, j); e != nil {
		for _, v := range e.Variants {
			jiBySet[joinKey(v.JoinAttrs)] = v.JI
		}
	}
	lookupJI := func(attrs []string) (float64, error) {
		k := joinKey(attrs)
		if ji, ok := jiBySet[k]; ok {
			return ji, nil
		}
		ji, err := infotheory.JoinInformativeness(instI.Sample, instJ.Sample, attrs)
		if err != nil {
			return 0, err
		}
		jiBySet[k] = ji
		return ji, nil
	}

	var out []ASEdge
	for level := 0; level <= latI.Height()-1; level++ {
		for _, maskI := range latI.Level(level) {
			attrsI := latI.AttrSet(maskI)
			for levelJ := 0; levelJ <= latJ.Height()-1; levelJ++ {
				for _, maskJ := range latJ.Level(levelJ) {
					attrsJ := latJ.AttrSet(maskJ)
					shared := intersectSorted(attrsI, attrsJ)
					if len(shared) == 0 {
						continue
					}
					ji, err := lookupJI(shared)
					if err != nil {
						return nil, err
					}
					out = append(out, ASEdge{
						VI:        ASVertex{Instance: i, Attrs: attrsI},
						VJ:        ASVertex{Instance: j, Attrs: attrsJ},
						JoinAttrs: shared,
						JI:        ji,
					})
				}
			}
		}
	}
	return out, nil
}

func joinKey(attrs []string) string {
	k := ""
	for _, a := range attrs {
		k += a + "\x00"
	}
	return k
}

// intersectSorted intersects two sorted string slices.
func intersectSorted(a, b []string) []string {
	var out []string
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			out = append(out, a[i])
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return out
}
