package joingraph

import (
	"strings"
	"testing"

	"github.com/dance-db/dance/internal/relation"
)

// mkInstance builds a tiny instance holding the given attributes.
func mkInstance(name string, attrs ...string) *Instance {
	cols := make([]relation.Column, len(attrs))
	for i, a := range attrs {
		cols[i] = relation.Cat(a, relation.KindInt)
	}
	tab := relation.NewTable(name, relation.NewSchema(cols...))
	for r := 0; r < 4; r++ {
		row := make([]relation.Value, len(attrs))
		for c := range row {
			row[c] = relation.IntValue(int64(r % 2))
		}
		tab.Append(row)
	}
	return &Instance{Name: name, Sample: tab, FullRows: 4}
}

// example41Graph builds the instance layout of the paper's Example 4.1:
// v1..v3 hold {A,B}, v4 holds {A}, v5 and v7 hold {B,C}, v6 holds {C}.
func example41Graph(t *testing.T) *Graph {
	t.Helper()
	insts := []*Instance{
		mkInstance("v1", "A", "B"), mkInstance("v2", "A", "B"), mkInstance("v3", "A", "B"),
		mkInstance("v4", "A"), mkInstance("v5", "B", "C"), mkInstance("v6", "C"),
		mkInstance("v7", "B", "C"),
	}
	g, err := Build(insts, Config{})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestTargetVertexSetsExample41(t *testing.T) {
	g := example41Graph(t)
	sets, err := g.TargetVertexSets([]string{"A", "B", "C"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Non-redundant covers = assignments attr→holder, merged by instance:
	// |holders(A)| × |holders(B)| × |holders(C)| = 4 × 5 × 3 = 60, and the
	// merge is injective, so 60 distinct sets.
	if len(sets) != 60 {
		t.Fatalf("distinct target vertex sets = %d, want 60", len(sets))
	}
	// The merged Option-1-style set {(v1,{A,B}), (v5,{C})} must be present.
	found := false
	for _, set := range sets {
		if len(set) == 2 &&
			set[0].Instance == 0 && strings.Join(set[0].Attrs, ",") == "A,B" &&
			set[1].Instance == 4 && strings.Join(set[1].Attrs, ",") == "C" {
			found = true
		}
	}
	if !found {
		t.Fatal("merged (v1,{A,B})+(v5,{C}) cover missing")
	}
	// Every set covers exactly {A,B,C} with no redundancy.
	for _, set := range sets {
		counts := map[string]int{}
		for _, v := range set {
			if len(v.Attrs) == 0 {
				t.Fatal("empty vertex")
			}
			for _, a := range v.Attrs {
				counts[a]++
			}
		}
		if len(counts) != 3 || counts["A"] != 1 || counts["B"] != 1 || counts["C"] != 1 {
			t.Fatalf("cover %v is redundant or incomplete", set)
		}
	}
}

func TestTargetVertexSetsCapAndCount(t *testing.T) {
	g := example41Graph(t)
	capped, err := g.TargetVertexSets([]string{"A", "B", "C"}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(capped) != 10 {
		t.Fatalf("capped = %d, want 10", len(capped))
	}
	n, err := g.CountTargetVertexSets([]string{"A", "B"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// A: 4 holders × B: 5 holders = 20.
	if n != 20 {
		t.Fatalf("count = %d, want 20", n)
	}
}

func TestTargetVertexSetsErrors(t *testing.T) {
	g := example41Graph(t)
	if _, err := g.TargetVertexSets(nil, 0); err == nil {
		t.Fatal("empty attribute set should error")
	}
	if _, err := g.TargetVertexSets([]string{"Z"}, 0); err == nil {
		t.Fatal("unknown attribute should error")
	}
}

func TestASVertexString(t *testing.T) {
	v := ASVertex{Instance: 3, Attrs: []string{"x", "y"}}
	if got := v.String(); got != "3{x,y}" {
		t.Fatalf("String = %q", got)
	}
}
