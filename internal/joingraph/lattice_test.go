package joingraph

import (
	"math/big"
	"testing"
	"testing/quick"
)

func TestLatticeFigure2(t *testing.T) {
	// Figure 2 of the paper: attributes {A,B,C,D} → 2^4 − 4 − 1 = 11
	// vertices, height 3, top level has C(4,2) = 6 pair vertices.
	l, err := NewLattice([]string{"A", "B", "C", "D"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !l.Explicit() {
		t.Fatal("4-attribute lattice should be explicit")
	}
	if l.Height() != 3 {
		t.Fatalf("height = %d, want 3", l.Height())
	}
	if l.VertexCount().Cmp(big.NewInt(11)) != 0 {
		t.Fatalf("vertex count = %v, want 11", l.VertexCount())
	}
	if got := len(l.Level(0)); got != 1 {
		t.Fatalf("bottom level size = %d, want 1 (ABCD)", got)
	}
	if got := len(l.Level(1)); got != 4 {
		t.Fatalf("level 1 size = %d, want 4 (3-attr sets)", got)
	}
	if got := len(l.Level(2)); got != 6 {
		t.Fatalf("top level size = %d, want 6 (pairs)", got)
	}
	if l.Level(3) != nil {
		t.Fatal("level beyond height should be nil")
	}
}

func TestLatticeMaskRoundTrip(t *testing.T) {
	l, _ := NewLattice([]string{"b", "a", "c"}, 0)
	mask, err := l.Mask([]string{"c", "a"})
	if err != nil {
		t.Fatal(err)
	}
	attrs := l.AttrSet(mask)
	if len(attrs) != 2 || attrs[0] != "a" || attrs[1] != "c" {
		t.Fatalf("AttrSet = %v", attrs)
	}
	if _, err := l.Mask([]string{"zz"}); err == nil {
		t.Fatal("unknown attribute should error")
	}
}

func TestLatticeContains(t *testing.T) {
	l, _ := NewLattice([]string{"a", "b", "c"}, 0)
	if !l.Contains([]string{"a", "b"}) {
		t.Fatal("pair should be a vertex")
	}
	if l.Contains([]string{"a"}) {
		t.Fatal("singletons are not lattice vertices (Def 4.1)")
	}
	if l.Contains([]string{"a", "zz"}) {
		t.Fatal("unknown attr should not be contained")
	}
}

func TestLatticeChildrenParents(t *testing.T) {
	l, _ := NewLattice([]string{"a", "b", "c", "d"}, 0)
	ab, _ := l.Mask([]string{"a", "b"})
	children := l.Children(ab)
	if len(children) != 2 { // abc, abd
		t.Fatalf("children of ab = %d, want 2", len(children))
	}
	abc, _ := l.Mask([]string{"a", "b", "c"})
	parents := l.Parents(abc)
	if len(parents) != 3 { // ab, ac, bc
		t.Fatalf("parents of abc = %d, want 3", len(parents))
	}
	if got := l.Parents(ab); got != nil {
		t.Fatalf("pairs have no parents, got %v", got)
	}
	full, _ := l.Mask([]string{"a", "b", "c", "d"})
	if got := l.Children(full); got != nil {
		t.Fatalf("bottom has no children, got %v", got)
	}
}

func TestLatticeAncestorSibling(t *testing.T) {
	l, _ := NewLattice([]string{"a", "b", "c", "d"}, 0)
	ab, _ := l.Mask([]string{"a", "b"})
	abc, _ := l.Mask([]string{"a", "b", "c"})
	cd, _ := l.Mask([]string{"c", "d"})
	if !l.IsAncestor(ab, abc) {
		t.Fatal("ab should be ancestor of abc")
	}
	if l.IsAncestor(abc, ab) || l.IsAncestor(ab, ab) || l.IsAncestor(ab, cd) {
		t.Fatal("IsAncestor false positives")
	}
	if !l.Siblings(ab, cd) || l.Siblings(ab, abc) || l.Siblings(ab, ab) {
		t.Fatal("Siblings wrong")
	}
}

func TestVirtualLattice(t *testing.T) {
	// 20 attributes with explicit cap 10 → virtual.
	attrs := make([]string, 20)
	for i := range attrs {
		attrs[i] = string(rune('a' + i))
	}
	l, err := NewLattice(attrs, 10)
	if err != nil {
		t.Fatal(err)
	}
	if l.Explicit() {
		t.Fatal("should be virtual")
	}
	want := new(big.Int).Lsh(big.NewInt(1), 20)
	want.Sub(want, big.NewInt(21))
	if l.VertexCount().Cmp(want) != 0 {
		t.Fatalf("vertex count = %v, want %v", l.VertexCount(), want)
	}
	// Bottom level generated on demand.
	if got := len(l.Level(0)); got != 1 {
		t.Fatalf("virtual bottom level = %d, want 1", got)
	}
	if got := len(l.Level(18)); got != 190 { // C(20,2)
		t.Fatalf("virtual top level = %d, want 190", got)
	}
	if !l.Contains(attrs[3:5]) {
		t.Fatal("virtual Contains broken")
	}
}

func TestLatticeRejectsDegenerate(t *testing.T) {
	if _, err := NewLattice([]string{"a"}, 0); err == nil {
		t.Fatal("single attribute should error")
	}
	if _, err := NewLattice([]string{"a", "a"}, 0); err == nil {
		t.Fatal("duplicate attributes should error")
	}
	big := make([]string, 65)
	for i := range big {
		big[i] = string(rune('a')) + string(rune('0'+i%10)) + string(rune('0'+i/10))
	}
	if _, err := NewLattice(big, 0); err == nil {
		t.Fatal("more than 64 attributes should error")
	}
}

// Property: per-level sizes sum to 2^m − m − 1 and children/parents are
// inverse relations.
func TestQuickLatticeStructure(t *testing.T) {
	f := func(mRaw uint8) bool {
		m := 2 + int(mRaw%5) // 2..6
		attrs := make([]string, m)
		for i := range attrs {
			attrs[i] = string(rune('a' + i))
		}
		l, err := NewLattice(attrs, 0)
		if err != nil {
			return false
		}
		total := 0
		for lev := 0; lev <= m-2; lev++ {
			total += len(l.Level(lev))
		}
		if int64(total) != l.VertexCount().Int64() {
			return false
		}
		// children ∘ parents identity spot check on level 1 (if any).
		for _, mask := range l.Level(0) {
			for _, p := range l.Parents(mask) {
				found := false
				for _, c := range l.Children(p) {
					if c == mask {
						found = true
					}
				}
				if !found {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestLatticeAttrs(t *testing.T) {
	l, _ := NewLattice([]string{"b", "a"}, 0)
	got := l.Attrs()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Attrs = %v", got)
	}
	got[0] = "mutated"
	if l.Attrs()[0] != "a" {
		t.Fatal("Attrs must return a copy")
	}
}
