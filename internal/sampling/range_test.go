package sampling

import (
	"math"
	"testing"

	"github.com/dance-db/dance/internal/relation"
)

func rangeDemoTable() *relation.Table {
	t := relation.NewTable("t", relation.NewSchema(
		relation.Cat("k", relation.KindInt),
		relation.Cat("s", relation.KindString),
	))
	for i := 0; i < 500; i++ {
		k := relation.IntValue(int64(i % 31))
		if i%11 == 0 {
			k = relation.Null()
		}
		t.AppendValues(k, relation.StringValue(string(rune('a'+i%7))))
	}
	return t
}

// TestCorrelatedSampleRangePrefixProperty pins the canonical-order
// guarantee: for any ρ < ρ′ the rate-ρ sample is exactly the leading rows
// of the rate-ρ′ sample, and the (ρ, ρ′] delta is exactly the remainder.
func TestCorrelatedSampleRangePrefixProperty(t *testing.T) {
	tab := rangeDemoTable()
	h := NewHasher(9)
	rates := []float64{0.05, 0.2, 0.5, 0.8, 1}
	on := []string{"k"}

	var prev *relation.Table
	var prevRate float64
	for _, r := range rates {
		cur, err := CorrelatedSampleRange(tab, on, 0, r, h)
		if err != nil {
			t.Fatal(err)
		}
		if prev != nil {
			if cur.NumRows() < prev.NumRows() {
				t.Fatalf("rate %v sample smaller than rate %v", r, prevRate)
			}
			for i := range prev.Rows {
				for j := range prev.Rows[i] {
					if !prev.Rows[i][j].EqualValue(cur.Rows[i][j]) {
						t.Fatalf("rate %v sample is not a prefix of rate %v (row %d)", prevRate, r, i)
					}
				}
			}
			delta, err := CorrelatedSampleRange(tab, on, prevRate, r, h)
			if err != nil {
				t.Fatal(err)
			}
			if delta.NumRows() != cur.NumRows()-prev.NumRows() {
				t.Fatalf("delta (%v,%v] has %d rows, want %d",
					prevRate, r, delta.NumRows(), cur.NumRows()-prev.NumRows())
			}
			for i, row := range delta.Rows {
				want := cur.Rows[prev.NumRows()+i]
				for j := range row {
					if !row[j].EqualValue(want[j]) {
						t.Fatalf("delta row %d differs from fresh suffix", i)
					}
				}
			}
		}
		prev, prevRate = cur, r
	}

	// The rate-1 sample is the complete instance: every row, including the
	// NULL-join ones, which sort last.
	if prev.NumRows() != tab.NumRows() {
		t.Fatalf("rate-1 sample has %d rows, want %d", prev.NumRows(), tab.NumRows())
	}
	nulls := 0
	for _, row := range tab.Rows {
		if row[0].IsNull() {
			nulls++
		}
	}
	for _, row := range prev.Rows[prev.NumRows()-nulls:] {
		if !row[0].IsNull() {
			t.Fatal("NULL-join rows must sort last in the rate-1 sample")
		}
	}

	// Kept rows really are the (from, to] hash band.
	mid, err := CorrelatedSampleRange(tab, on, 0.2, 0.5, h)
	if err != nil {
		t.Fatal(err)
	}
	idx := tab.Schema.MustIndexes("k")
	var buf []byte
	lastU := math.Inf(-1)
	for _, row := range mid.Rows {
		buf = relation.EncodeKey(buf[:0], row, idx)
		u := h.Unit(buf)
		if u <= 0.2 || u > 0.5 {
			t.Fatalf("row with unit %v outside (0.2, 0.5]", u)
		}
		if u < lastU {
			t.Fatal("delta rows not in ascending unit order")
		}
		lastU = u
	}

	// Degenerate ranges are empty, not errors.
	if s, err := CorrelatedSampleRange(tab, on, 0.5, 0.5, h); err != nil || s.NumRows() != 0 {
		t.Fatalf("empty range: %d rows, %v", s.NumRows(), err)
	}
	if s, err := CorrelatedSampleRange(tab, on, 0, 0, h); err != nil || s.NumRows() != 0 {
		t.Fatalf("zero rate: %d rows, %v", s.NumRows(), err)
	}
}

// TestCorrelatedSampleRangeKeepsSameKeysAsRowSampler pins that the range
// sampler keeps exactly the rows CorrelatedSample keeps (same hash band),
// only ordered canonically.
func TestCorrelatedSampleRangeKeepsSameKeysAsRowSampler(t *testing.T) {
	tab := rangeDemoTable()
	h := NewHasher(4)
	on := []string{"k"}
	a, err := CorrelatedSample(tab, on, 0.4, h)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CorrelatedSampleRange(tab, on, 0, 0.4, h)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumRows() != b.NumRows() {
		t.Fatalf("range sampler kept %d rows, row sampler %d", b.NumRows(), a.NumRows())
	}
	count := func(tb *relation.Table) map[string]int {
		m := map[string]int{}
		all := []int{0, 1}
		var buf []byte
		for _, r := range tb.Rows {
			buf = relation.EncodeKey(buf[:0], r, all)
			m[string(buf)]++
		}
		return m
	}
	ca, cb := count(a), count(b)
	for k, n := range ca {
		if cb[k] != n {
			t.Fatal("range sampler kept a different multiset of rows")
		}
	}
}
