package sampling

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/dance-db/dance/internal/fd"
	"github.com/dance-db/dance/internal/infotheory"
	"github.com/dance-db/dance/internal/relation"
)

func randTable(name string, n, keyDomain int, seed int64) *relation.Table {
	rng := rand.New(rand.NewSource(seed))
	t := relation.NewTable(name, relation.NewSchema(
		relation.Cat("k", relation.KindInt),
		relation.Cat("v_"+name, relation.KindInt),
	))
	for i := 0; i < n; i++ {
		t.AppendValues(
			relation.IntValue(int64(rng.Intn(keyDomain))),
			relation.IntValue(int64(rng.Intn(5))),
		)
	}
	return t
}

func TestHasherDeterministicAndUniform(t *testing.T) {
	h := NewHasher(42)
	if h.Unit([]byte("x")) != h.Unit([]byte("x")) {
		t.Fatal("hash not deterministic")
	}
	if NewHasher(1).Unit([]byte("x")) == NewHasher(2).Unit([]byte("x")) {
		t.Fatal("different seeds should give different hashes (overwhelmingly)")
	}
	// Rough uniformity: mean of many hashes close to 0.5.
	sum := 0.0
	const n = 20000
	for i := 0; i < n; i++ {
		sum += h.Unit([]byte{byte(i), byte(i >> 8), byte(i >> 16)})
	}
	mean := sum / n
	if mean < 0.48 || mean > 0.52 {
		t.Fatalf("hash mean = %v, want ≈ 0.5", mean)
	}
}

func TestCorrelatedSampleRateExtremes(t *testing.T) {
	tab := randTable("a", 100, 10, 1)
	full, err := CorrelatedSample(tab, []string{"k"}, 1.0, NewHasher(1))
	if err != nil {
		t.Fatal(err)
	}
	if full.NumRows() != 100 {
		t.Fatalf("rate 1 kept %d rows, want all", full.NumRows())
	}
	empty, err := CorrelatedSample(tab, []string{"k"}, 0, NewHasher(1))
	if err != nil {
		t.Fatal(err)
	}
	if empty.NumRows() != 0 {
		t.Fatalf("rate 0 kept %d rows", empty.NumRows())
	}
	if _, err := CorrelatedSample(tab, []string{"zz"}, 0.5, NewHasher(1)); err == nil {
		t.Fatal("unknown join attr should error")
	}
}

func TestCorrelatedSampleIsValueComplete(t *testing.T) {
	// Correlated sampling must keep either all rows with a join value or
	// none of them.
	tab := randTable("a", 500, 8, 2)
	s, err := CorrelatedSample(tab, []string{"k"}, 0.5, NewHasher(7))
	if err != nil {
		t.Fatal(err)
	}
	fullCounts := map[int64]int{}
	ki := tab.Schema.Index("k")
	for _, r := range tab.Rows {
		fullCounts[r[ki].I]++
	}
	sampleCounts := map[int64]int{}
	for _, r := range s.Rows {
		sampleCounts[r[ki].I]++
	}
	for k, c := range sampleCounts {
		if c != fullCounts[k] {
			t.Fatalf("value %d partially sampled: %d of %d", k, c, fullCounts[k])
		}
	}
}

func TestCorrelatedSampleJoinPreserving(t *testing.T) {
	// Join of samples == sample of join (same kept key set on both sides).
	a := randTable("a", 300, 12, 3)
	b := randTable("b", 300, 12, 4)
	h := NewHasher(11)
	sa, _ := CorrelatedSample(a, []string{"k"}, 0.5, h)
	sb, _ := CorrelatedSample(b, []string{"k"}, 0.5, h)
	js, err := relation.EquiJoin(sa, sb, []string{"k"})
	if err != nil {
		t.Fatal(err)
	}
	jFull, _ := relation.EquiJoin(a, b, []string{"k"})
	kept := func(v relation.Value) bool {
		return h.Unit(v.AppendKey(nil)) <= 0.5
	}
	wantRows := 0
	ki := jFull.Schema.Index("k")
	for _, r := range jFull.Rows {
		if kept(r[ki]) {
			wantRows++
		}
	}
	if js.NumRows() != wantRows {
		t.Fatalf("join of samples has %d rows, sample of join has %d", js.NumRows(), wantRows)
	}
}

func TestCorrelatedSampleSkipsNullJoinValues(t *testing.T) {
	tab := relation.NewTable("n", relation.NewSchema(relation.Cat("k", relation.KindInt)))
	tab.AppendValues(relation.Null())
	tab.AppendValues(relation.IntValue(1))
	s, err := CorrelatedSample(tab, []string{"k"}, 0.9999, NewHasher(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range s.Rows {
		if r[0].IsNull() {
			t.Fatal("NULL join value sampled")
		}
	}
}

func TestSamplePathUsesPredecessorAttrs(t *testing.T) {
	a := randTable("a", 200, 10, 5)
	b := randTable("b", 200, 10, 6)
	steps := []relation.PathStep{{Table: a}, {Table: b, On: []string{"k"}}}
	sampled, err := SamplePath(steps, 0.5, NewHasher(9))
	if err != nil {
		t.Fatal(err)
	}
	if len(sampled) != 2 {
		t.Fatalf("sampled path length %d", len(sampled))
	}
	// Both sides sampled on k with the same hasher: join keys must agree.
	keys := func(tb *relation.Table) map[int64]bool {
		out := map[int64]bool{}
		ki := tb.Schema.Index("k")
		for _, r := range tb.Rows {
			out[r[ki].I] = true
		}
		return out
	}
	ka, kb := keys(sampled[0].Table), keys(sampled[1].Table)
	fullB := keys(b)
	for k := range ka {
		if fullB[k] && !kb[k] {
			t.Fatalf("key %d kept on left but dropped on right", k)
		}
	}
	if _, err := SamplePath(nil, 0.5, NewHasher(1)); err == nil {
		t.Fatal("empty path should error")
	}
}

func TestResampledJoinPathBoundsIntermediates(t *testing.T) {
	// Heavy-hitter keys create a large intermediate join; η must trip.
	a := randTable("a", 400, 3, 7)
	b := randTable("b", 400, 3, 8)
	c := randTable("c", 50, 3, 9)
	steps := []relation.PathStep{
		{Table: a},
		{Table: b, On: []string{"k"}},
		{Table: c, On: []string{"k"}},
	}
	full, _, err := ResampledJoinPath(steps, PathJoinOptions{})
	if err != nil {
		t.Fatal(err)
	}
	opts := PathJoinOptions{Eta: 1000, ResampleRate: 0.34, Hasher: NewHasher(3)}
	res, stats, err := ResampledJoinPath(steps, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.IntermediateSizes) != 2 || len(stats.Resampled) != 2 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats.IntermediateSizes[0] <= 1000 {
		t.Fatalf("test setup broken: first intermediate %d ≤ η", stats.IntermediateSizes[0])
	}
	if !stats.Resampled[0] {
		t.Fatal("first intermediate should have been re-sampled")
	}
	if stats.Resampled[1] {
		t.Fatal("last join must never be re-sampled (no following join)")
	}
	if res.NumRows() >= full.NumRows() {
		t.Fatalf("re-sampled join (%d rows) not smaller than full (%d rows)", res.NumRows(), full.NumRows())
	}
}

func TestResampledJoinPathNoEtaMatchesPlainJoin(t *testing.T) {
	a := randTable("a", 100, 5, 10)
	b := randTable("b", 100, 5, 11)
	steps := []relation.PathStep{{Table: a}, {Table: b, On: []string{"k"}}}
	got, _, err := ResampledJoinPath(steps, PathJoinOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := relation.JoinPath(steps)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != want.NumRows() {
		t.Fatalf("rows %d != %d", got.NumRows(), want.NumRows())
	}
}

// Theorem 3.1: the JI estimate is unbiased. We average estimates across many
// hash seeds and compare to the exact value.
func TestJIEstimateApproxUnbiased(t *testing.T) {
	a := randTable("a", 400, 20, 12)
	b := randTable("b", 400, 20, 13)
	exact, err := infotheory.JoinInformativeness(a, b, []string{"k"})
	if err != nil {
		t.Fatal(err)
	}
	sum, n := 0.0, 0
	for seed := uint64(0); seed < 60; seed++ {
		est, err := EstimateJI(a, b, []string{"k"}, 0.6, NewHasher(seed))
		if err != nil {
			continue // degenerate sample; skip
		}
		sum += est
		n++
	}
	if n < 50 {
		t.Fatalf("too many degenerate samples: %d of 60", 60-n)
	}
	mean := sum / float64(n)
	if math.Abs(mean-exact) > 0.08 {
		t.Fatalf("JI estimate mean %v too far from exact %v", mean, exact)
	}
}

// Theorem 3.2: correlation and quality estimates stay close to the true
// values in expectation, with and without re-sampling.
func TestCorrelationEstimateApproxUnbiased(t *testing.T) {
	a := randTable("a", 500, 15, 14)
	b := randTable("b", 500, 15, 15)
	steps := []relation.PathStep{{Table: a}, {Table: b, On: []string{"k"}}}
	j, err := relation.JoinPath(steps)
	if err != nil {
		t.Fatal(err)
	}
	x, y := []string{"v_a"}, []string{"v_b"}
	exact, err := infotheory.Correlation(j, x, y)
	if err != nil {
		t.Fatal(err)
	}
	for _, eta := range []int{0, 2000} {
		sum, n := 0.0, 0
		for seed := uint64(0); seed < 40; seed++ {
			opts := PathJoinOptions{Eta: eta, ResampleRate: 0.7, Hasher: NewHasher(seed)}
			est, err := EstimateCorrelation(steps, x, y, 0.7, opts)
			if err != nil {
				continue
			}
			sum += est
			n++
		}
		if n < 30 {
			t.Fatalf("eta=%d: too many degenerate samples", eta)
		}
		mean := sum / float64(n)
		if math.Abs(mean-exact) > 0.15*(1+exact) {
			t.Fatalf("eta=%d: correlation estimate mean %v too far from exact %v", eta, mean, exact)
		}
	}
}

func TestQualityEstimateApproxUnbiased(t *testing.T) {
	// Build tables with a planted FD k → s that has ~10% violations.
	rng := rand.New(rand.NewSource(16))
	a := relation.NewTable("a", relation.NewSchema(
		relation.Cat("k", relation.KindInt),
		relation.Cat("s", relation.KindString),
	))
	for i := 0; i < 600; i++ {
		k := int64(rng.Intn(30))
		s := "v" + string(rune('a'+k%8))
		if rng.Float64() < 0.1 {
			s = "bad"
		}
		a.AppendValues(relation.IntValue(k), relation.StringValue(s))
	}
	b := randTable("b", 600, 30, 17)
	steps := []relation.PathStep{{Table: a}, {Table: b, On: []string{"k"}}}
	j, err := relation.JoinPath(steps)
	if err != nil {
		t.Fatal(err)
	}
	fds := []fd.FD{fd.New("s", "k")}
	exact, err := fd.QualitySet(j, fds)
	if err != nil {
		t.Fatal(err)
	}
	sum, n := 0.0, 0
	for seed := uint64(0); seed < 40; seed++ {
		est, err := EstimateQuality(steps, fds, 0.6, PathJoinOptions{Hasher: NewHasher(seed)})
		if err != nil {
			continue
		}
		sum += est
		n++
	}
	if n < 30 {
		t.Fatal("too many degenerate samples")
	}
	mean := sum / float64(n)
	if math.Abs(mean-exact) > 0.08 {
		t.Fatalf("quality estimate mean %v too far from exact %v", mean, exact)
	}
}

// Property: sample size is monotone in rate for a fixed seed.
func TestQuickSampleMonotoneInRate(t *testing.T) {
	tab := randTable("a", 300, 25, 18)
	f := func(r1, r2 uint8, seed uint16) bool {
		a := float64(r1%101) / 100
		b := float64(r2%101) / 100
		if a > b {
			a, b = b, a
		}
		h := NewHasher(uint64(seed))
		sa, err1 := CorrelatedSample(tab, []string{"k"}, a, h)
		sb, err2 := CorrelatedSample(tab, []string{"k"}, b, h)
		return err1 == nil && err2 == nil && sa.NumRows() <= sb.NumRows()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
