// Package sampling implements the paper's Section 3: correlated sampling of
// marketplace instances (Vengerov et al., the paper's [30]) and correlated
// re-sampling of intermediate join results, plus sample-based estimators for
// join informativeness, correlation, and quality.
//
// Correlated sampling hashes the join-attribute value of each tuple to a
// uniform point in [0, 1) and keeps the tuple when the hash is at most the
// sampling rate p. Because the same hash function is used on every instance,
// a join value is either kept in all instances or dropped from all of them,
// which preserves join structure and makes the estimators of Theorems 3.1
// and 3.2 unbiased in expectation over hash seeds.
package sampling

import (
	"fmt"
	"math"
	"sort"

	"github.com/dance-db/dance/internal/fd"
	"github.com/dance-db/dance/internal/infotheory"
	"github.com/dance-db/dance/internal/relation"
)

// Hasher maps join-attribute tuples to uniform points in [0, 1).
// Different seeds give independent sampling runs.
type Hasher struct {
	seed uint64
}

// NewHasher returns a Hasher for the given seed.
func NewHasher(seed uint64) Hasher { return Hasher{seed: seed} }

// Seed returns the hasher's seed. Two hashers with equal seeds produce
// identical samples, which is what memoizing evaluators key on.
func (h Hasher) Seed() uint64 { return h.seed }

// FNV-1a constants (hash/fnv), inlined so Unit never allocates a hasher.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// Unit hashes key to [0, 1). The FNV-1a loop is inlined — hash/fnv's
// New64a allocated on every tuple, and Unit runs once per row per sampled
// instance. The output is bit-identical to the previous hash/fnv-based
// implementation (pinned by TestHasherUnitMatchesFNVReference): sample
// identity is part of evaluator cache keys, so it must never drift.
func (h Hasher) Unit(key []byte) float64 {
	x := uint64(fnvOffset64)
	s := h.seed
	for i := 0; i < 8; i++ { // seed bytes, little-endian, as Write saw them
		x ^= s & 0xff
		x *= fnvPrime64
		s >>= 8
	}
	for _, b := range key {
		x ^= uint64(b)
		x *= fnvPrime64
	}
	// FNV-1a mixes trailing bytes only into the low bits; finalize with
	// murmur3's fmix64 so every input bit affects the high bits that
	// dominate the float mantissa.
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return float64(x) / float64(math.MaxUint64)
}

// CorrelatedSample keeps each row of t whose join-attribute tuple hashes to
// at most rate. rate ≥ 1 returns a copy of t; rate ≤ 0 returns an empty
// table. NULL join values are never sampled (they cannot join).
func CorrelatedSample(t *relation.Table, joinAttrs []string, rate float64, h Hasher) (*relation.Table, error) {
	if rate >= 1 {
		return t.Clone(), nil
	}
	out := relation.NewTable(t.Name, t.Schema)
	if rate <= 0 {
		return out, nil
	}
	idx, err := t.Schema.Indexes(joinAttrs...)
	if err != nil {
		return nil, fmt.Errorf("correlated sample of %s: %w", t.Name, err)
	}
	var buf []byte
	for _, r := range t.Rows {
		null := false
		for _, c := range idx {
			if r[c].IsNull() {
				null = true
				break
			}
		}
		if null {
			continue
		}
		buf = relation.EncodeKey(buf[:0], r, idx)
		if h.Unit(buf) <= rate {
			out.Rows = append(out.Rows, r)
		}
	}
	return out, nil
}

// CorrelatedSampleRange keeps each row of t whose join-attribute tuple
// hashes into (from, to] — with from ≤ 0 meaning [0, to] — and returns the
// kept rows ordered by (hash unit, original position). This is the
// marketplace's *canonical* sample order: because every rate-ρ sample is
// sorted by hash unit, it is exactly the leading rows of the rate-ρ′ sample
// for any ρ < ρ′, so a delta purchase (from = ρ, to = ρ′) appended to an
// existing sample reproduces the fresh rate-ρ′ sample bit for bit — rows,
// dictionary codes, and metric summation order.
//
// Rows whose join attributes contain NULL have no hash unit (they cannot
// join); they are delivered only when to ≥ 1 — a rate-1 sample is the
// complete instance — and sort after every hashed row, in original order.
func CorrelatedSampleRange(t *relation.Table, joinAttrs []string, from, to float64, h Hasher) (*relation.Table, error) {
	out := relation.NewTable(t.Name, t.Schema)
	if to <= 0 || (from > 0 && from >= to) {
		return out, nil
	}
	idx, err := t.Schema.Indexes(joinAttrs...)
	if err != nil {
		return nil, fmt.Errorf("correlated sample of %s: %w", t.Name, err)
	}
	var units []float64
	var buf []byte
	for _, r := range t.Rows {
		null := false
		for _, c := range idx {
			if r[c].IsNull() {
				null = true
				break
			}
		}
		if null {
			if to >= 1 {
				units = append(units, math.Inf(1))
				out.Rows = append(out.Rows, r)
			}
			continue
		}
		buf = relation.EncodeKey(buf[:0], r, idx)
		u := h.Unit(buf)
		if u <= to && (from <= 0 || u > from) {
			units = append(units, u)
			out.Rows = append(out.Rows, r)
		}
	}
	// Sort a permutation, not the rows in place: the comparator must read
	// each row's unit through its *original* position. Stable, so rows with
	// equal units (same join tuple, or a hash collision) keep their original
	// relative order — the ordering is a total, deterministic function of
	// the table and the seed.
	perm := make([]int, len(out.Rows))
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(a, b int) bool { return units[perm[a]] < units[perm[b]] })
	sorted := make([][]relation.Value, len(out.Rows))
	for i, p := range perm {
		sorted[i] = out.Rows[p]
	}
	out.Rows = sorted
	return out, nil
}

// SamplePath applies correlated sampling to every table of a join path.
// Table i > 0 is sampled on steps[i].On — the join attributes it shares
// with its predecessor — and the first table is sampled on steps[1].On
// (there is no predecessor). A single-step path is sampled on that step's
// own On set if present, else returned unsampled.
func SamplePath(steps []relation.PathStep, rate float64, h Hasher) ([]relation.PathStep, error) {
	if len(steps) == 0 {
		return nil, fmt.Errorf("sampling: empty join path")
	}
	out := make([]relation.PathStep, len(steps))
	for i, st := range steps {
		on := st.On
		if i == 0 {
			if len(steps) > 1 {
				on = steps[1].On
			} else {
				on = st.On
			}
		}
		if len(on) == 0 {
			out[i] = relation.PathStep{Table: st.Table.Clone(), On: st.On}
			continue
		}
		s, err := CorrelatedSample(st.Table, on, rate, h)
		if err != nil {
			return nil, err
		}
		out[i] = relation.PathStep{Table: s, On: st.On}
	}
	return out, nil
}

// PathJoinOptions control re-sampled multi-way joins (Sec 3.2).
type PathJoinOptions struct {
	// Eta is the intermediate-join-size threshold η: when an intermediate
	// result exceeds Eta rows it is re-sampled before the next join.
	// Eta ≤ 0 disables re-sampling.
	Eta int
	// ResampleRate is the fixed re-sampling rate ρ applied when the
	// threshold trips.
	ResampleRate float64
	// Hasher drives the correlated re-sampling (hash of the next join
	// attribute value), so downstream joins stay correlated.
	Hasher Hasher
	// Workers bounds the goroutines the columnar join/grouping kernels may
	// use per evaluation (≤ 1: serial). Pure execution tuning: results are
	// bit-identical for every value, so it is deliberately NOT part of
	// CacheKey — two runs differing only in Workers share cache entries.
	Workers int
}

// CacheKey identifies the options up to join-output equivalence: two
// ResampledJoinPath runs over the same steps with equal keys produce
// identical tables, so memoized evaluators must include this key —
// fingerprinting the target graph alone serves stale metrics when Eta,
// ResampleRate or the hasher seed change between requests.
func (o PathJoinOptions) CacheKey() string {
	eta := o.Eta
	if eta <= 0 {
		// All disabled-η options are equivalent: ρ and the hasher are
		// never consulted.
		return "η=off"
	}
	return fmt.Sprintf("η=%d|ρ=%g|h=%d", eta, o.ResampleRate, o.Hasher.Seed())
}

// ResampleStats reports what the re-sampled path join did, for experiment
// output and tests.
type ResampleStats struct {
	IntermediateSizes []int // size after each join, before re-sampling
	Resampled         []bool
}

// ResampledJoinPath joins steps left-to-right like relation.JoinPath, but
// when an intermediate result exceeds opts.Eta rows it is re-sampled with
// the correlated hash on the *next* step's join attributes, bounding
// intermediate sizes while preserving join structure (Sec 3.2).
func ResampledJoinPath(steps []relation.PathStep, opts PathJoinOptions) (*relation.Table, ResampleStats, error) {
	var stats ResampleStats
	if len(steps) == 0 {
		return nil, stats, fmt.Errorf("sampling: empty join path")
	}
	acc := steps[0].Table
	for i := 1; i < len(steps); i++ {
		j, err := relation.EquiJoin(acc, steps[i].Table, steps[i].On)
		if err != nil {
			return nil, stats, err
		}
		stats.IntermediateSizes = append(stats.IntermediateSizes, j.NumRows())
		resampled := false
		// Only re-sample when another join follows and the threshold trips.
		if opts.Eta > 0 && i < len(steps)-1 && j.NumRows() > opts.Eta {
			j2, err := CorrelatedSample(j, steps[i+1].On, opts.ResampleRate, opts.Hasher)
			if err != nil {
				return nil, stats, err
			}
			j = j2
			resampled = true
		}
		stats.Resampled = append(stats.Resampled, resampled)
		acc = j
	}
	return acc, stats, nil
}

// EstimateJI estimates JI(a, b) on join attributes on from correlated
// samples at the given rate (Eq. 6, Theorem 3.1).
func EstimateJI(a, b *relation.Table, on []string, rate float64, h Hasher) (float64, error) {
	sa, err := CorrelatedSample(a, on, rate, h)
	if err != nil {
		return 0, err
	}
	sb, err := CorrelatedSample(b, on, rate, h)
	if err != nil {
		return 0, err
	}
	if sa.NumRows() == 0 && sb.NumRows() == 0 {
		return 0, fmt.Errorf("sampling: JI estimate degenerate, both samples empty (rate %v)", rate)
	}
	return infotheory.JoinInformativeness(sa, sb, on)
}

// EstimateCorrelation estimates CORR(x, y) on the join of the path from
// correlated samples at the given rate, with re-sampling per opts (Eq. 7,
// Theorem 3.2). The join and the measure run on the columnar fast path;
// the result is bit-identical to joining the row samples and calling
// infotheory.CorrelationOnRows.
func EstimateCorrelation(steps []relation.PathStep, x, y []string, rate float64, opts PathJoinOptions) (float64, error) {
	sampled, err := SamplePath(steps, rate, opts.Hasher)
	if err != nil {
		return 0, err
	}
	j, _, err := ResampledJoinPathColumnar(columnarizeSteps(sampled), opts, nil)
	if err != nil {
		return 0, err
	}
	if j.NumRows() == 0 {
		return 0, fmt.Errorf("sampling: correlation estimate degenerate, empty join sample (rate %v)", rate)
	}
	return infotheory.CorrelationColumnar(j, x, y)
}

// EstimateQuality estimates Q of Def 2.3 on the join of the path from
// correlated samples at the given rate (Eq. 8, Theorem 3.2), on the
// columnar fast path.
func EstimateQuality(steps []relation.PathStep, fds []fd.FD, rate float64, opts PathJoinOptions) (float64, error) {
	sampled, err := SamplePath(steps, rate, opts.Hasher)
	if err != nil {
		return 0, err
	}
	j, _, err := ResampledJoinPathColumnar(columnarizeSteps(sampled), opts, nil)
	if err != nil {
		return 0, err
	}
	if j.NumRows() == 0 {
		return 0, fmt.Errorf("sampling: quality estimate degenerate, empty join sample (rate %v)", rate)
	}
	return fd.QualitySetColumnar(j, fds)
}
