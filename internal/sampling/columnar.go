package sampling

import (
	"fmt"
	"strings"

	"github.com/dance-db/dance/internal/relation"
)

// Columnar fast path for the re-sampled multi-way join (Sec 3.2). The
// semantics, output row order and kept-row sets are identical to
// CorrelatedSample/ResampledJoinPath on row tables; only the representation
// changes: joins gather dictionary codes instead of materializing rows, and
// the correlated hash is computed once per distinct join-attribute tuple
// instead of once per row.

// CorrelatedSampleColumnar keeps each row of c whose join-attribute tuple
// hashes to at most rate — the same rows CorrelatedSample keeps on the row
// path, in the same order. rate ≥ 1 returns c itself (columnars are
// immutable, so no clone is needed); rate ≤ 0 returns an empty relation.
// NULL join values are never sampled (they cannot join).
func CorrelatedSampleColumnar(c *relation.Columnar, joinAttrs []string, rate float64, h Hasher) (*relation.Columnar, error) {
	return correlatedSampleColumnar(c, joinAttrs, rate, h, 1)
}

// correlatedSampleColumnar is CorrelatedSampleColumnar with a worker bound
// for the grouping pass on large intermediates; kept rows are identical for
// every worker count.
func correlatedSampleColumnar(c *relation.Columnar, joinAttrs []string, rate float64, h Hasher, workers int) (*relation.Columnar, error) {
	if rate >= 1 {
		return c, nil
	}
	if rate <= 0 {
		return c.FilterRows(nil), nil
	}
	cols, err := c.Schema().Indexes(joinAttrs...)
	if err != nil {
		return nil, fmt.Errorf("correlated sample of %s: %w", c.Name, err)
	}
	g, err := c.GroupByWorkers(cols, workers)
	if err != nil {
		return nil, fmt.Errorf("correlated sample of %s: %w", c.Name, err)
	}
	// One NULL check and one hash per distinct tuple: every row of a group
	// shares the tuple, so the per-row hash of the row path collapses to a
	// per-group decision.
	keepGroup := make([]bool, g.N())
	var buf []byte
	for gid := range keepGroup {
		first := int(g.First[gid])
		null := false
		for _, ci := range cols {
			if c.IsNullAt(first, ci) {
				null = true
				break
			}
		}
		if null {
			continue
		}
		buf = c.AppendRowKey(buf[:0], first, cols)
		keepGroup[gid] = h.Unit(buf) <= rate
	}
	kept := 0
	for _, gc := range g.Codes {
		if keepGroup[gc] {
			kept++
		}
	}
	keep := make([]int32, 0, kept)
	for i, gc := range g.Codes {
		if keepGroup[gc] {
			keep = append(keep, int32(i))
		}
	}
	return c.FilterRows(keep), nil
}

// ColumnarStep is one hop of a columnar join path.
type ColumnarStep struct {
	C  *relation.Columnar
	On []string // ignored for the first step
	// Index optionally carries a prebuilt build-side join index of C on
	// exactly On (relation.Columnar.BuildJoinIndex). Search precomputes one
	// per (instance, join-attrs) pair and shares it across candidates and
	// workers.
	Index *relation.JoinIndex
	// ID is a stable identity of the step's table for prefix-cache keys
	// (search uses the instance index). Steps with equal IDs must carry the
	// same columnar data.
	ID string
}

// PrefixCache caches accumulated join prefixes across candidate paths.
// Implementations must be safe for concurrent use and must treat cached
// relations as immutable. search.Searcher provides a sharded, size-capped
// implementation.
type PrefixCache interface {
	Get(key string) (*relation.Columnar, bool)
	Put(key string, c *relation.Columnar)
}

// prefixKeys returns, for each step i ≥ 1, the identity of the accumulated
// (and possibly re-sampled) intermediate after joining steps[0..i]. The key
// covers the sampling options (η, ρ, hasher seed — PathJoinOptions.CacheKey,
// for the same reason the evaluator cache includes it: equal spines under
// different sampling options produce different tables), every step's table
// identity and join attributes, and — when re-sampling is enabled — the
// *next* step's join attributes, because the intermediate is re-sampled on
// the attributes it will join on next, and a path that ends at step i must
// not share state with one that continues through it.
func prefixKeys(steps []ColumnarStep, opts PathJoinOptions) []string {
	keys := make([]string, len(steps))
	var b strings.Builder
	b.WriteString(opts.CacheKey())
	b.WriteByte('|')
	b.WriteString(steps[0].ID)
	for i := 1; i < len(steps); i++ {
		b.WriteByte('|')
		b.WriteString(steps[i].ID)
		b.WriteByte('@')
		b.WriteString(strings.Join(steps[i].On, "\x00"))
		if opts.Eta > 0 {
			b.WriteByte('^')
			if i < len(steps)-1 {
				b.WriteString(strings.Join(steps[i+1].On, "\x00"))
			} else {
				b.WriteByte('$')
			}
		}
		keys[i] = b.String()
	}
	return keys
}

// ResampledJoinPathColumnar joins steps left-to-right like
// ResampledJoinPath, re-sampling intermediates that exceed opts.Eta rows,
// entirely on the columnar representation: no joined row is ever
// materialized. When cache is non-nil, the longest already-cached prefix of
// the path is reused and every newly computed intermediate is published, so
// MCMC neighbors that differ in one edge variant re-join only the suffix
// behind the change. On a cache hit, stats cover only the joins actually
// performed in this call.
func ResampledJoinPathColumnar(steps []ColumnarStep, opts PathJoinOptions, cache PrefixCache) (*relation.Columnar, ResampleStats, error) {
	var stats ResampleStats
	if len(steps) == 0 {
		return nil, stats, fmt.Errorf("sampling: empty join path")
	}
	var keys []string
	start := 0
	acc := steps[0].C
	if cache != nil {
		keys = prefixKeys(steps, opts)
		for i := len(steps) - 1; i >= 1; i-- {
			if c, ok := cache.Get(keys[i]); ok {
				acc, start = c, i
				break
			}
		}
	}
	for i := start + 1; i < len(steps); i++ {
		j, err := relation.EquiJoinColumnarOpts(acc, steps[i].C, steps[i].On, steps[i].Index,
			relation.JoinOptions{Workers: opts.Workers})
		if err != nil {
			return nil, stats, err
		}
		stats.IntermediateSizes = append(stats.IntermediateSizes, j.NumRows())
		resampled := false
		// Only re-sample when another join follows and the threshold trips.
		if opts.Eta > 0 && i < len(steps)-1 && j.NumRows() > opts.Eta {
			j2, err := correlatedSampleColumnar(j, steps[i+1].On, opts.ResampleRate, opts.Hasher, opts.Workers)
			if err != nil {
				return nil, stats, err
			}
			j = j2
			resampled = true
		}
		stats.Resampled = append(stats.Resampled, resampled)
		acc = j
		if cache != nil {
			cache.Put(keys[i], acc)
		}
	}
	return acc, stats, nil
}

// columnarizeSteps converts sampled row-path steps into columnar steps for
// the estimators (no prebuilt indexes; per-call tables).
func columnarizeSteps(steps []relation.PathStep) []ColumnarStep {
	out := make([]ColumnarStep, len(steps))
	for i, st := range steps {
		out[i] = ColumnarStep{C: relation.ToColumnar(st.Table), On: st.On}
	}
	return out
}
