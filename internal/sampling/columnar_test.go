package sampling

import (
	"hash/fnv"
	"math"
	"math/rand"
	"testing"

	"github.com/dance-db/dance/internal/relation"
)

// referenceUnit is the seed-era hash/fnv implementation of Hasher.Unit.
// Sample identity is part of evaluator cache keys, so the inlined FNV-1a
// loop must reproduce it bit for bit.
func referenceUnit(seed uint64, key []byte) float64 {
	f := fnv.New64a()
	var seedBytes [8]byte
	for i := 0; i < 8; i++ {
		seedBytes[i] = byte(seed >> (8 * i))
	}
	f.Write(seedBytes[:])
	f.Write(key)
	x := f.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return float64(x) / float64(math.MaxUint64)
}

func TestHasherUnitMatchesFNVReference(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	seeds := []uint64{0, 1, 7, 0xDEADBEEF, math.MaxUint64}
	for _, seed := range seeds {
		h := NewHasher(seed)
		if got, want := h.Unit(nil), referenceUnit(seed, nil); got != want {
			t.Fatalf("seed %d, empty key: %v, want %v", seed, got, want)
		}
		for trial := 0; trial < 80; trial++ {
			key := make([]byte, rng.Intn(40))
			rng.Read(key)
			if got, want := h.Unit(key), referenceUnit(seed, key); got != want {
				t.Fatalf("seed %d key %v: %v, want %v", seed, key, got, want)
			}
		}
	}
}

func randomStepTable(rng *rand.Rand, name string, nRows int, nullFrac float64) *relation.Table {
	tab := relation.NewTable(name, relation.NewSchema(
		relation.Cat("j1", relation.KindInt),
		relation.Cat("j2", relation.KindFloat), // mixed int/float join key
		relation.Cat(name+"_p", relation.KindString),
	))
	for i := 0; i < nRows; i++ {
		row := make([]relation.Value, 3)
		if rng.Float64() >= nullFrac {
			row[0] = relation.IntValue(int64(rng.Intn(8)))
		}
		x := rng.Intn(5)
		if rng.Float64() >= nullFrac {
			if rng.Intn(2) == 0 {
				row[1] = relation.IntValue(int64(x))
			} else {
				row[1] = relation.FloatValue(float64(x))
			}
		}
		row[2] = relation.StringValue(string(rune('a' + rng.Intn(6))))
		tab.Append(row)
	}
	return tab
}

func assertTablesEqual(t *testing.T, want, got *relation.Table) {
	t.Helper()
	if !want.Schema.Equal(got.Schema) {
		t.Fatalf("schema mismatch: want %v, got %v", want.Schema, got.Schema)
	}
	if want.NumRows() != got.NumRows() {
		t.Fatalf("row count mismatch: want %d, got %d", want.NumRows(), got.NumRows())
	}
	for i := range want.Rows {
		for j := range want.Rows[i] {
			if !want.Rows[i][j].EqualValue(got.Rows[i][j]) {
				t.Fatalf("row %d col %d: want %v, got %v", i, j, want.Rows[i][j], got.Rows[i][j])
			}
		}
	}
}

func TestCorrelatedSampleColumnarMatchesRows(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 8; trial++ {
		tab := randomStepTable(rng, "t", 50+rng.Intn(200), 0.3)
		h := NewHasher(uint64(trial))
		for _, on := range [][]string{{"j1"}, {"j2"}, {"j1", "j2"}} {
			for _, rate := range []float64{0, 0.25, 0.6, 1} {
				want, err := CorrelatedSample(tab, on, rate, h)
				if err != nil {
					t.Fatal(err)
				}
				got, err := CorrelatedSampleColumnar(relation.ToColumnar(tab), on, rate, h)
				if err != nil {
					t.Fatal(err)
				}
				assertTablesEqual(t, want, got.ToTable())
			}
		}
	}
}

// mapPrefixCache is a minimal PrefixCache for equivalence tests.
type mapPrefixCache struct {
	m    map[string]*relation.Columnar
	hits int
}

func (c *mapPrefixCache) Get(key string) (*relation.Columnar, bool) {
	v, ok := c.m[key]
	if ok {
		c.hits++
	}
	return v, ok
}

func (c *mapPrefixCache) Put(key string, v *relation.Columnar) { c.m[key] = v }

func TestResampledJoinPathColumnarMatchesRows(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 6; trial++ {
		steps := []relation.PathStep{
			{Table: randomStepTable(rng, "t0", 60+rng.Intn(100), 0.25)},
			{Table: randomStepTable(rng, "t1", 60+rng.Intn(100), 0.25), On: []string{"j1"}},
			{Table: randomStepTable(rng, "t2", 60+rng.Intn(100), 0.25), On: []string{"j2"}},
			{Table: randomStepTable(rng, "t3", 60+rng.Intn(100), 0.25), On: []string{"j1"}},
		}
		for _, opts := range []PathJoinOptions{
			{},
			{Eta: 150, ResampleRate: 0.5, Hasher: NewHasher(uint64(trial) + 7)},
			{Eta: 20, ResampleRate: 0.3, Hasher: NewHasher(uint64(trial) + 9)},
		} {
			want, wantStats, err := ResampledJoinPath(steps, opts)
			if err != nil {
				t.Fatal(err)
			}
			got, gotStats, err := ResampledJoinPathColumnar(columnarizeSteps(steps), opts, nil)
			if err != nil {
				t.Fatal(err)
			}
			assertTablesEqual(t, want, got.ToTable())
			if len(wantStats.IntermediateSizes) != len(gotStats.IntermediateSizes) {
				t.Fatalf("stats length mismatch: %v vs %v", wantStats, gotStats)
			}
			for i := range wantStats.IntermediateSizes {
				if wantStats.IntermediateSizes[i] != gotStats.IntermediateSizes[i] ||
					wantStats.Resampled[i] != gotStats.Resampled[i] {
					t.Fatalf("stats mismatch at %d: %v vs %v", i, wantStats, gotStats)
				}
			}
		}
	}
}

func TestResampledJoinPathColumnarPrefixCache(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	mkSteps := func() []ColumnarStep {
		steps := []ColumnarStep{
			{C: relation.ToColumnar(randomStepTable(rng, "t0", 120, 0.2)), ID: "0"},
			{C: relation.ToColumnar(randomStepTable(rng, "t1", 120, 0.2)), On: []string{"j1"}, ID: "1"},
			{C: relation.ToColumnar(randomStepTable(rng, "t2", 120, 0.2)), On: []string{"j2"}, ID: "2"},
		}
		return steps
	}
	for _, opts := range []PathJoinOptions{
		{},
		{Eta: 60, ResampleRate: 0.5, Hasher: NewHasher(41)},
	} {
		steps := mkSteps()
		plain, _, err := ResampledJoinPathColumnar(steps, opts, nil)
		if err != nil {
			t.Fatal(err)
		}
		cache := &mapPrefixCache{m: map[string]*relation.Columnar{}}
		first, _, err := ResampledJoinPathColumnar(steps, opts, cache)
		if err != nil {
			t.Fatal(err)
		}
		assertTablesEqual(t, plain.ToTable(), first.ToTable())
		if cache.hits != 0 {
			t.Fatalf("cold cache had %d hits", cache.hits)
		}
		// Second run must reuse the full path and return the same table.
		second, stats, err := ResampledJoinPathColumnar(steps, opts, cache)
		if err != nil {
			t.Fatal(err)
		}
		if cache.hits == 0 {
			t.Fatal("warm cache had no hits")
		}
		if len(stats.IntermediateSizes) != 0 {
			t.Fatalf("full cache hit should skip all joins, stats %v", stats)
		}
		assertTablesEqual(t, plain.ToTable(), second.ToTable())

		// A path that diverges in its last step must reuse only the shared
		// prefix and still agree with the uncached computation.
		forked := append([]ColumnarStep(nil), steps...)
		forked[2] = ColumnarStep{C: relation.ToColumnar(randomStepTable(rng, "t2b", 120, 0.2)), On: []string{"j1"}, ID: "2b"}
		wantFork, _, err := ResampledJoinPathColumnar(forked, opts, nil)
		if err != nil {
			t.Fatal(err)
		}
		gotFork, _, err := ResampledJoinPathColumnar(forked, opts, cache)
		if err != nil {
			t.Fatal(err)
		}
		assertTablesEqual(t, wantFork.ToTable(), gotFork.ToTable())
	}
}

// TestPrefixKeysDisambiguateEta pins that, with re-sampling enabled, a path
// prefix that ends at step i does not share cache state with one that
// continues past it (the intermediate is re-sampled on the next hop's join
// attributes).
func TestPrefixKeysDisambiguateEta(t *testing.T) {
	c := relation.ToColumnar(relation.NewTable("x", relation.NewSchema(relation.Cat("j1", relation.KindInt))))
	short := []ColumnarStep{{C: c, ID: "0"}, {C: c, On: []string{"j1"}, ID: "1"}}
	long := []ColumnarStep{{C: c, ID: "0"}, {C: c, On: []string{"j1"}, ID: "1"}, {C: c, On: []string{"j1"}, ID: "2"}}
	opts := PathJoinOptions{Eta: 1, ResampleRate: 0.5, Hasher: NewHasher(1)}
	ks := prefixKeys(short, opts)
	kl := prefixKeys(long, opts)
	if ks[1] == kl[1] {
		t.Fatal("terminal and non-terminal prefixes must have distinct keys when η > 0")
	}
	// Without re-sampling the prefix is shareable.
	opts.Eta = 0
	if prefixKeys(short, opts)[1] != prefixKeys(long, opts)[1] {
		t.Fatal("η = 0 prefixes should share keys")
	}
}
