package tpch

import (
	"testing"

	"github.com/dance-db/dance/internal/fd"
	"github.com/dance-db/dance/internal/infotheory"
	"github.com/dance-db/dance/internal/relation"
)

func TestGenerateShape(t *testing.T) {
	d := Generate(Config{Scale: 2, Seed: 1, DirtyFraction: 0.3})
	if len(d.Tables) != 8 {
		t.Fatalf("tables = %d, want 8", len(d.Tables))
	}
	sizes := Sizes(2)
	for _, name := range TableNames {
		tab := d.Table(name)
		if tab == nil {
			t.Fatalf("missing table %s", name)
		}
		if tab.NumRows() != sizes[name] {
			t.Errorf("%s rows = %d, want %d", name, tab.NumRows(), sizes[name])
		}
	}
	if d.Table("lineitem").NumCols() != 20 {
		t.Errorf("lineitem cols = %d, want 20 (Table 5)", d.Table("lineitem").NumCols())
	}
	if d.Table("region").NumCols() != 4 {
		t.Errorf("region cols = %d, want 4 (Table 5)", d.Table("region").NumCols())
	}
	if d.Table("nope") != nil {
		t.Error("unknown table should be nil")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{Scale: 1, Seed: 9, DirtyFraction: 0.3})
	b := Generate(Config{Scale: 1, Seed: 9, DirtyFraction: 0.3})
	for i := range a.Tables {
		ta, tb := a.Tables[i], b.Tables[i]
		if ta.NumRows() != tb.NumRows() {
			t.Fatalf("%s row counts differ", ta.Name)
		}
		for r := range ta.Rows {
			for c := range ta.Rows[r] {
				if ta.Rows[r][c] != tb.Rows[r][c] {
					t.Fatalf("%s cell (%d,%d) differs", ta.Name, r, c)
				}
			}
		}
	}
}

func TestForeignKeysResolve(t *testing.T) {
	d := Generate(Config{Scale: 2, Seed: 3})
	pairs := []struct{ child, attr, parent string }{
		{"nation", "regionkey", "region"},
		{"supplier", "nationkey", "nation"},
		{"customer", "nationkey", "nation"},
		{"orders", "custkey", "customer"},
		{"lineitem", "orderkey", "orders"},
		{"partsupp", "partkey", "part"},
		{"partsupp", "suppkey", "supplier"},
	}
	for _, p := range pairs {
		child, parent := d.Table(p.child), d.Table(p.parent)
		pk, err := parent.Column(p.attr)
		if err != nil {
			t.Fatalf("%s.%s: %v", p.parent, p.attr, err)
		}
		valid := map[int64]bool{}
		for _, v := range pk {
			valid[v.I] = true
		}
		ck, err := child.Column(p.attr)
		if err != nil {
			t.Fatalf("%s.%s: %v", p.child, p.attr, err)
		}
		for _, v := range ck {
			if !valid[v.I] {
				t.Fatalf("%s.%s = %d has no parent in %s", p.child, p.attr, v.I, p.parent)
			}
		}
	}
}

func TestFakeJoinAttributeBridges(t *testing.T) {
	d := Generate(Config{Scale: 2, Seed: 4})
	if !d.Table("customer").Schema.Has("h_key") || !d.Table("supplier").Schema.Has("h_key") {
		t.Fatal("h_key missing")
	}
	j, err := relation.EquiJoin(d.Table("customer"), d.Table("supplier"), []string{"h_key"})
	if err != nil {
		t.Fatal(err)
	}
	if j.NumRows() == 0 {
		t.Fatal("h_key bridge join is empty")
	}
}

func TestCleanTablesStayClean(t *testing.T) {
	d := Generate(Config{Scale: 2, Seed: 5, DirtyFraction: 0.3})
	for _, name := range []string{"region", "nation"} {
		for _, f := range d.FDs[name] {
			q, err := fd.Quality(d.Table(name), f)
			if err != nil {
				t.Fatal(err)
			}
			if q != 1 {
				t.Errorf("%s FD %s quality = %v, want 1 (reference tables stay clean)", name, f, q)
			}
		}
	}
}

func TestDirtyTablesAreDirty(t *testing.T) {
	d := Generate(Config{Scale: 4, Seed: 6, DirtyFraction: 0.3})
	dirtyCount := 0
	for _, name := range DirtyTables {
		for _, f := range d.FDs[name] {
			q, err := fd.Quality(d.Table(name), f)
			if err != nil {
				t.Fatal(err)
			}
			if q < 1 {
				dirtyCount++
			}
		}
	}
	if dirtyCount < 4 {
		t.Fatalf("only %d dirty FDs across the 6 dirty tables", dirtyCount)
	}
}

func TestPlantedCorrelationExists(t *testing.T) {
	// totalprice is driven by the customer's nation: the orders⋈customer
	// join must show clearly positive CORR(totalprice, nationkey).
	d := Generate(Config{Scale: 4, Seed: 7, DirtyFraction: 0})
	j, err := relation.EquiJoin(d.Table("orders"), d.Table("customer"), []string{"custkey"})
	if err != nil {
		t.Fatal(err)
	}
	corr, err := infotheory.Correlation(j, []string{"totalprice"}, []string{"nationkey"})
	if err != nil {
		t.Fatal(err)
	}
	if corr <= 0 {
		t.Fatalf("planted correlation missing: CORR = %v", corr)
	}
	// And it should beat the correlation with an unrelated attribute.
	base, err := infotheory.Correlation(j, []string{"totalprice"}, []string{"orderstatus"})
	if err != nil {
		t.Fatal(err)
	}
	if corr <= base {
		t.Fatalf("CORR(totalprice; nationkey)=%v not above CORR(totalprice; orderstatus)=%v", corr, base)
	}
}

func TestDeclaredFDsHoldOnCleanData(t *testing.T) {
	d := Generate(Config{Scale: 2, Seed: 8, DirtyFraction: 0})
	for name, fds := range d.FDs {
		for _, f := range fds {
			q, err := fd.Quality(d.Table(name), f)
			if err != nil {
				t.Fatalf("%s %s: %v", name, f, err)
			}
			if q < 0.999 {
				t.Errorf("declared FD %s on clean %s has quality %v", f, name, q)
			}
		}
	}
}

func TestScaleFloor(t *testing.T) {
	d := Generate(Config{Scale: 0, Seed: 1})
	if d.Table("lineitem").NumRows() == 0 {
		t.Fatal("scale 0 should floor to 1")
	}
}
