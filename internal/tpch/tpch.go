// Package tpch generates a schema-faithful, scaled-down TPC-H-like dataset.
//
// Substitution note (see DESIGN.md): the paper uses the official TPC-H
// benchmark at up to 6M rows. This generator reproduces what the
// experiments actually depend on — the 8-table FK topology, shared join
// attribute names, value skew, planted correlations, declared FDs, and the
// paper's "fake join attribute" h_key bridging customer and supplier — at a
// configurable scale.
//
// Join attributes share names across tables (custkey, nationkey, …) because
// the join graph connects instances by shared attribute names, exactly as
// the paper's example acquisition output does: orders(totalprice, custkey),
// customer(custkey, H), supplier(H, nationkey), nation(nationkey,
// regionkey), region(regionkey, rname).
package tpch

import (
	"fmt"
	"math/rand"

	"github.com/dance-db/dance/internal/dirty"
	"github.com/dance-db/dance/internal/fd"
	"github.com/dance-db/dance/internal/relation"
)

// Config controls generation.
type Config struct {
	// Scale multiplies table cardinalities; Scale 1 yields ~240 lineitem
	// rows, Scale 25 ≈ 6000 (the default used by experiments).
	Scale int
	// Seed fixes the PRNG.
	Seed int64
	// DirtyFraction is the share of rows modified in the six non-reference
	// tables (the paper uses 0.3; region and nation stay clean).
	DirtyFraction float64
}

// DefaultConfig mirrors the experiments in Sec 6.
func DefaultConfig() Config {
	return Config{Scale: 25, Seed: 42, DirtyFraction: 0.3}
}

// Dataset is the generated database: tables in a fixed order plus declared
// FDs per table.
type Dataset struct {
	Tables []*relation.Table
	FDs    map[string][]fd.FD
}

// TableNames lists the 8 tables in generation order.
var TableNames = []string{
	"region", "nation", "supplier", "customer",
	"part", "partsupp", "orders", "lineitem",
}

// DirtyTables are the six tables the paper injects inconsistency into.
var DirtyTables = []string{"supplier", "customer", "part", "partsupp", "orders", "lineitem"}

// Table returns the named table or nil.
func (d *Dataset) Table(name string) *relation.Table {
	for _, t := range d.Tables {
		if t.Name == name {
			return t
		}
	}
	return nil
}

var (
	regionNames  = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}
	nationNames  = []string{"ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA", "FRANCE", "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN", "JORDAN", "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA", "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES"}
	segments     = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"}
	brands       = []string{"Brand#11", "Brand#12", "Brand#21", "Brand#22", "Brand#31", "Brand#32", "Brand#41", "Brand#51"}
	partTypes    = []string{"STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"}
	orderStatus  = []string{"F", "O", "P"}
	priorities   = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}
	shipModes    = []string{"AIR", "FOB", "MAIL", "RAIL", "REG AIR", "SHIP", "TRUCK"}
	returnFlags  = []string{"A", "N", "R"}
	lineStatuses = []string{"F", "O"}
	instructs    = []string{"COLLECT COD", "DELIVER IN PERSON", "NONE", "TAKE BACK RETURN"}
)

// Sizes returns the per-table row counts at the given scale.
func Sizes(scale int) map[string]int {
	if scale < 1 {
		scale = 1
	}
	return map[string]int{
		"region":   5,
		"nation":   25,
		"supplier": 10 * scale,
		"customer": 30 * scale,
		"part":     20 * scale,
		"partsupp": 40 * scale,
		"orders":   60 * scale,
		"lineitem": 240 * scale,
	}
}

// Generate builds the dataset.
func Generate(cfg Config) *Dataset {
	if cfg.Scale < 1 {
		cfg.Scale = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	sizes := Sizes(cfg.Scale)
	d := &Dataset{FDs: map[string][]fd.FD{}}

	// region(regionkey, rname, rcomment, rpop) — 4 attributes (Table 5:
	// region is the minimum-attribute TPC-H table).
	region := relation.NewTable("region", relation.NewSchema(
		relation.Cat("regionkey", relation.KindInt),
		relation.Cat("rname", relation.KindString),
		relation.Cat("rcomment", relation.KindString),
		relation.Num("rpop", relation.KindInt),
	))
	for i := 0; i < sizes["region"]; i++ {
		region.AppendValues(
			relation.IntValue(int64(i)),
			relation.StringValue(regionNames[i%len(regionNames)]),
			relation.StringValue(fmt.Sprintf("region comment %d", i)),
			relation.IntValue(int64(100+rng.Intn(900))),
		)
	}
	d.Tables = append(d.Tables, region)
	d.FDs["region"] = []fd.FD{fd.New("rname", "regionkey")}

	// nation(nationkey, nname, regionkey, ncomment).
	nation := relation.NewTable("nation", relation.NewSchema(
		relation.Cat("nationkey", relation.KindInt),
		relation.Cat("nname", relation.KindString),
		relation.Cat("regionkey", relation.KindInt),
		relation.Cat("ncomment", relation.KindString),
	))
	for i := 0; i < sizes["nation"]; i++ {
		nation.AppendValues(
			relation.IntValue(int64(i)),
			relation.StringValue(nationNames[i%len(nationNames)]),
			relation.IntValue(int64(i%sizes["region"])),
			relation.StringValue(fmt.Sprintf("nation comment %d", i)),
		)
	}
	d.Tables = append(d.Tables, nation)
	d.FDs["nation"] = []fd.FD{fd.New("nname", "nationkey"), fd.New("regionkey", "nationkey")}

	// The fake join attribute h_key (the paper's "H") bridges customer and
	// supplier directly; its domain is small so the bridge is selective.
	hDomain := 5 + 3*cfg.Scale

	// supplier(suppkey, sname, nationkey, h_key, sacctbal, sphonecc, sphone).
	// sphonecc is the denormalized country calling code: nationkey →
	// sphonecc is a duplicate-LHS FD (like the paper's Zipcode → State)
	// that dirt injection can actually degrade.
	supplier := relation.NewTable("supplier", relation.NewSchema(
		relation.Cat("suppkey", relation.KindInt),
		relation.Cat("sname", relation.KindString),
		relation.Cat("nationkey", relation.KindInt),
		relation.Cat("h_key", relation.KindInt),
		relation.Num("sacctbal", relation.KindFloat),
		relation.Cat("sphonecc", relation.KindInt),
		relation.Cat("sphone", relation.KindString),
	))
	supplierNation := make([]int64, sizes["supplier"])
	for i := 0; i < sizes["supplier"]; i++ {
		// Cycle nations first so every nation has suppliers (as in real
		// TPC-H), keeping the nation—supplier join fully matched.
		nk := int64(i % sizes["nation"])
		supplierNation[i] = nk
		supplier.AppendValues(
			relation.IntValue(int64(i)),
			relation.StringValue(fmt.Sprintf("Supplier#%04d", i)),
			relation.IntValue(nk),
			relation.IntValue(int64(rng.Intn(hDomain))),
			relation.FloatValue(float64(rng.Intn(1000000))/100),
			relation.IntValue(nk+10),
			relation.StringValue(fmt.Sprintf("%02d-%07d", nk+10, rng.Intn(10000000))),
		)
	}
	d.Tables = append(d.Tables, supplier)
	d.FDs["supplier"] = []fd.FD{
		fd.New("nationkey", "suppkey"), fd.New("h_key", "suppkey"), fd.New("sphonecc", "nationkey")}

	// customer(custkey, cname, nationkey, h_key, cacctbal, mktsegment,
	// cphonecc, cphone). cphonecc mirrors sphonecc (nationkey → cphonecc).
	customer := relation.NewTable("customer", relation.NewSchema(
		relation.Cat("custkey", relation.KindInt),
		relation.Cat("cname", relation.KindString),
		relation.Cat("nationkey", relation.KindInt),
		relation.Cat("h_key", relation.KindInt),
		relation.Num("cacctbal", relation.KindFloat),
		relation.Cat("mktsegment", relation.KindString),
		relation.Cat("cphonecc", relation.KindInt),
		relation.Cat("cphone", relation.KindString),
	))
	for i := 0; i < sizes["customer"]; i++ {
		nk := int64(i % sizes["nation"]) // full nation coverage
		// Planted structure: market segment depends (noisily) on nation,
		// so segment↔nation correlations exist for the search to find.
		seg := segments[(int(nk)+rng.Intn(2))%len(segments)]
		customer.AppendValues(
			relation.IntValue(int64(i)),
			relation.StringValue(fmt.Sprintf("Customer#%05d", i)),
			relation.IntValue(nk),
			relation.IntValue(int64(rng.Intn(hDomain))),
			relation.FloatValue(float64(rng.Intn(1000000))/100),
			relation.StringValue(seg),
			relation.IntValue(nk+10),
			relation.StringValue(fmt.Sprintf("%02d-%07d", nk+10, rng.Intn(10000000))),
		)
	}
	d.Tables = append(d.Tables, customer)
	d.FDs["customer"] = []fd.FD{
		fd.New("nationkey", "custkey"), fd.New("h_key", "custkey"), fd.New("cphonecc", "nationkey")}

	// part(partkey, pname, brand, pmfgr, ptype, psize, retailprice).
	// pmfgr is determined by brand (brand → pmfgr, as in real TPC-H where
	// the brand string embeds the manufacturer).
	part := relation.NewTable("part", relation.NewSchema(
		relation.Cat("partkey", relation.KindInt),
		relation.Cat("pname", relation.KindString),
		relation.Cat("brand", relation.KindString),
		relation.Cat("pmfgr", relation.KindString),
		relation.Cat("ptype", relation.KindString),
		relation.Num("psize", relation.KindInt),
		relation.Num("retailprice", relation.KindFloat),
	))
	for i := 0; i < sizes["part"]; i++ {
		brand := brands[rng.Intn(len(brands))]
		// Retail price depends on brand plus noise.
		base := float64(900 + 13*indexOf(brands, brand)*17)
		part.AppendValues(
			relation.IntValue(int64(i)),
			relation.StringValue(fmt.Sprintf("part %04d", i)),
			relation.StringValue(brand),
			relation.StringValue("Manufacturer#"+brand[6:7]),
			relation.StringValue(partTypes[rng.Intn(len(partTypes))]),
			relation.IntValue(int64(1+rng.Intn(50))),
			relation.FloatValue(base+float64(rng.Intn(10000))/100),
		)
	}
	d.Tables = append(d.Tables, part)
	d.FDs["part"] = []fd.FD{fd.New("brand", "partkey"), fd.New("pmfgr", "brand")}

	// partsupp(partkey, suppkey, psnation, availqty, supplycost). psnation
	// denormalizes the supplier's nation (suppkey → psnation).
	partsupp := relation.NewTable("partsupp", relation.NewSchema(
		relation.Cat("partkey", relation.KindInt),
		relation.Cat("suppkey", relation.KindInt),
		relation.Cat("psnation", relation.KindInt),
		relation.Num("availqty", relation.KindInt),
		relation.Num("supplycost", relation.KindFloat),
	))
	for i := 0; i < sizes["partsupp"]; i++ {
		sk := int64(rng.Intn(sizes["supplier"]))
		partsupp.AppendValues(
			relation.IntValue(int64(rng.Intn(sizes["part"]))),
			relation.IntValue(sk),
			relation.IntValue(supplierNation[sk]),
			relation.IntValue(int64(rng.Intn(10000))),
			relation.FloatValue(float64(rng.Intn(100000))/100),
		)
	}
	d.Tables = append(d.Tables, partsupp)
	d.FDs["partsupp"] = []fd.FD{fd.New("psnation", "suppkey")}

	// orders(orderkey, custkey, onation, orderstatus, totalprice, orderdate,
	// orderpriority). onation denormalizes the customer's nation
	// (custkey → onation), a duplicate-LHS FD since customers repeat.
	orders := relation.NewTable("orders", relation.NewSchema(
		relation.Cat("orderkey", relation.KindInt),
		relation.Cat("custkey", relation.KindInt),
		relation.Cat("onation", relation.KindInt),
		relation.Cat("orderstatus", relation.KindString),
		relation.Num("totalprice", relation.KindFloat),
		relation.Cat("orderdate", relation.KindString),
		relation.Cat("orderpriority", relation.KindString),
	))
	custNation := customer.MustProject("custkey", "nationkey")
	nationOf := map[int64]int64{}
	for _, r := range custNation.Rows {
		nationOf[r[0].I] = r[1].I
	}
	for i := 0; i < sizes["orders"]; i++ {
		// First pass cycles customers so everyone has at least one order
		// (keeping the customer—orders join fully matched); the rest are
		// random repeat purchases.
		ck := int64(i % sizes["customer"])
		if i >= sizes["customer"] {
			ck = int64(rng.Intn(sizes["customer"]))
		}
		// Planted correlation: total price depends on the customer's
		// nation (regional purchasing power) plus noise — this is the
		// signal the acquisition queries hunt for.
		nk := nationOf[ck]
		price := float64(1000+400*nk) + float64(rng.Intn(40000))/100
		orders.AppendValues(
			relation.IntValue(int64(i)),
			relation.IntValue(ck),
			relation.IntValue(nk),
			relation.StringValue(orderStatus[rng.Intn(len(orderStatus))]),
			relation.FloatValue(price),
			relation.StringValue(fmt.Sprintf("199%d-%02d-%02d", rng.Intn(8), 1+rng.Intn(12), 1+rng.Intn(28))),
			relation.StringValue(priorities[rng.Intn(len(priorities))]),
		)
	}
	d.Tables = append(d.Tables, orders)
	d.FDs["orders"] = []fd.FD{fd.New("custkey", "orderkey"), fd.New("onation", "custkey")}

	// lineitem — 20 attributes (Table 5: the maximum-attribute table).
	lineitem := relation.NewTable("lineitem", relation.NewSchema(
		relation.Cat("orderkey", relation.KindInt),
		relation.Cat("partkey", relation.KindInt),
		relation.Cat("suppkey", relation.KindInt),
		relation.Cat("linenumber", relation.KindInt),
		relation.Num("quantity", relation.KindInt),
		relation.Num("extendedprice", relation.KindFloat),
		relation.Num("discount", relation.KindFloat),
		relation.Num("tax", relation.KindFloat),
		relation.Cat("returnflag", relation.KindString),
		relation.Cat("linestatus", relation.KindString),
		relation.Cat("shipdate", relation.KindString),
		relation.Cat("commitdate", relation.KindString),
		relation.Cat("receiptdate", relation.KindString),
		relation.Cat("shipinstruct", relation.KindString),
		relation.Cat("shipmode", relation.KindString),
		relation.Cat("lcomment", relation.KindString),
		relation.Cat("lwarehouse", relation.KindInt),
		relation.Cat("lcarrier", relation.KindString),
		relation.Cat("lbatch", relation.KindInt),
		relation.Cat("lhazmat", relation.KindString),
	))
	lineCounter := map[int64]int64{} // per-order line numbers → (orderkey, linenumber) is a key
	for i := 0; i < sizes["lineitem"]; i++ {
		ok := int64(i % sizes["orders"]) // every order ships something
		if i >= sizes["orders"] {
			ok = int64(rng.Intn(sizes["orders"]))
		}
		lineCounter[ok]++
		qty := int64(1 + rng.Intn(50))
		price := float64(qty) * (10 + float64(rng.Intn(9000))/100)
		mode := shipModes[rng.Intn(len(shipModes))]
		lineitem.AppendValues(
			relation.IntValue(ok),
			relation.IntValue(int64(rng.Intn(sizes["part"]))),
			relation.IntValue(int64(rng.Intn(sizes["supplier"]))),
			relation.IntValue(lineCounter[ok]),
			relation.IntValue(qty),
			relation.FloatValue(price),
			relation.FloatValue(float64(rng.Intn(11))/100),
			relation.FloatValue(float64(rng.Intn(9))/100),
			relation.StringValue(returnFlags[rng.Intn(len(returnFlags))]),
			relation.StringValue(lineStatuses[rng.Intn(len(lineStatuses))]),
			relation.StringValue(fmt.Sprintf("199%d-%02d-%02d", rng.Intn(8), 1+rng.Intn(12), 1+rng.Intn(28))),
			relation.StringValue(fmt.Sprintf("199%d-%02d-%02d", rng.Intn(8), 1+rng.Intn(12), 1+rng.Intn(28))),
			relation.StringValue(fmt.Sprintf("199%d-%02d-%02d", rng.Intn(8), 1+rng.Intn(12), 1+rng.Intn(28))),
			relation.StringValue(instructs[rng.Intn(len(instructs))]),
			relation.StringValue(mode),
			relation.StringValue(fmt.Sprintf("comment %d", i)),
			relation.IntValue(int64(rng.Intn(12))),
			relation.StringValue(fmt.Sprintf("carrier-%d", indexOf(shipModes, mode))),
			relation.IntValue(int64(rng.Intn(40))),
			relation.StringValue([]string{"Y", "N"}[rng.Intn(2)]),
		)
	}
	d.Tables = append(d.Tables, lineitem)
	d.FDs["lineitem"] = []fd.FD{
		fd.New("quantity", "orderkey", "linenumber"),
		fd.New("lcarrier", "shipmode"),
	}

	// Dirty the six non-reference tables.
	if cfg.DirtyFraction > 0 {
		tm := map[string]*relation.Table{}
		for _, t := range d.Tables {
			tm[t.Name] = t
		}
		dirty.InjectTables(tm, d.FDs, DirtyTables, cfg.DirtyFraction, rng)
	}
	return d
}

func indexOf(xs []string, v string) int {
	for i, x := range xs {
		if x == v {
			return i
		}
	}
	return -1
}
