// Package bitset provides a dense, fixed-capacity bitset used by the FD
// engine for correct-record sets and by partition intersection.
//
// The zero value of Set is not usable; construct with New. All operations
// panic when two sets of different lengths are combined, because that is
// always a programming error in this codebase (sets always range over the
// rows of a single table).
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a dense bitset over the half-open interval [0, Len()).
type Set struct {
	words []uint64
	n     int
}

// New returns a set of n bits, all zero.
func New(n int) *Set {
	if n < 0 {
		panic("bitset: negative length")
	}
	return &Set{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// NewFull returns a set of n bits, all one.
func NewFull(n int) *Set {
	s := New(n)
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	s.trim()
	return s
}

// trim clears the unused high bits of the last word.
func (s *Set) trim() {
	if rem := s.n % wordBits; rem != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] &= (uint64(1) << uint(rem)) - 1
	}
}

// Len returns the capacity (number of addressable bits).
func (s *Set) Len() int { return s.n }

// Set sets bit i to one.
func (s *Set) Set(i int) {
	s.words[i/wordBits] |= 1 << uint(i%wordBits)
}

// Clear sets bit i to zero.
func (s *Set) Clear(i int) {
	s.words[i/wordBits] &^= 1 << uint(i%wordBits)
}

// Has reports whether bit i is one.
func (s *Set) Has(i int) bool {
	return s.words[i/wordBits]&(1<<uint(i%wordBits)) != 0
}

// Count returns the number of one bits.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Clone returns an independent copy of s.
func (s *Set) Clone() *Set {
	c := &Set{words: make([]uint64, len(s.words)), n: s.n}
	copy(c.words, s.words)
	return c
}

func (s *Set) check(o *Set) {
	if s.n != o.n {
		panic(fmt.Sprintf("bitset: length mismatch %d != %d", s.n, o.n))
	}
}

// And replaces s with s AND o and returns s.
func (s *Set) And(o *Set) *Set {
	s.check(o)
	for i := range s.words {
		s.words[i] &= o.words[i]
	}
	return s
}

// Or replaces s with s OR o and returns s.
func (s *Set) Or(o *Set) *Set {
	s.check(o)
	for i := range s.words {
		s.words[i] |= o.words[i]
	}
	return s
}

// AndNot replaces s with s AND NOT o and returns s.
func (s *Set) AndNot(o *Set) *Set {
	s.check(o)
	for i := range s.words {
		s.words[i] &^= o.words[i]
	}
	return s
}

// Equal reports whether s and o have identical lengths and contents.
func (s *Set) Equal(o *Set) bool {
	if s.n != o.n {
		return false
	}
	for i := range s.words {
		if s.words[i] != o.words[i] {
			return false
		}
	}
	return true
}

// Indices returns the positions of all one bits in increasing order.
func (s *Set) Indices() []int {
	out := make([]int, 0, s.Count())
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, wi*wordBits+b)
			w &= w - 1
		}
	}
	return out
}

// ForEach calls fn for every one bit in increasing order. Iteration stops
// if fn returns false.
func (s *Set) ForEach(fn func(i int) bool) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !fn(wi*wordBits + b) {
				return
			}
			w &= w - 1
		}
	}
}

// String renders the set as a compact {i, j, ...} list, for debugging.
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) bool {
		if !first {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d", i)
		first = false
		return true
	})
	b.WriteByte('}')
	return b.String()
}
