package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	s := New(130)
	if s.Len() != 130 {
		t.Fatalf("Len = %d, want 130", s.Len())
	}
	if s.Count() != 0 {
		t.Fatalf("Count = %d, want 0", s.Count())
	}
	for i := 0; i < 130; i++ {
		if s.Has(i) {
			t.Fatalf("bit %d set in empty set", i)
		}
	}
}

func TestNewFull(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 128, 200} {
		s := NewFull(n)
		if s.Count() != n {
			t.Errorf("NewFull(%d).Count() = %d", n, s.Count())
		}
	}
}

func TestSetClearHas(t *testing.T) {
	s := New(100)
	s.Set(0)
	s.Set(63)
	s.Set(64)
	s.Set(99)
	for _, i := range []int{0, 63, 64, 99} {
		if !s.Has(i) {
			t.Errorf("bit %d should be set", i)
		}
	}
	if s.Count() != 4 {
		t.Fatalf("Count = %d, want 4", s.Count())
	}
	s.Clear(63)
	if s.Has(63) || s.Count() != 3 {
		t.Fatalf("Clear(63) failed: count=%d", s.Count())
	}
}

func TestAndOrAndNot(t *testing.T) {
	a := New(70)
	b := New(70)
	a.Set(1)
	a.Set(65)
	a.Set(5)
	b.Set(5)
	b.Set(65)
	b.Set(9)

	and := a.Clone().And(b)
	if got := and.Indices(); len(got) != 2 || got[0] != 5 || got[1] != 65 {
		t.Errorf("And = %v, want [5 65]", got)
	}
	or := a.Clone().Or(b)
	if or.Count() != 4 {
		t.Errorf("Or.Count = %d, want 4", or.Count())
	}
	diff := a.Clone().AndNot(b)
	if got := diff.Indices(); len(got) != 1 || got[0] != 1 {
		t.Errorf("AndNot = %v, want [1]", got)
	}
}

func TestEqual(t *testing.T) {
	a := New(10)
	b := New(10)
	if !a.Equal(b) {
		t.Fatal("empty sets should be equal")
	}
	a.Set(3)
	if a.Equal(b) {
		t.Fatal("sets differ, Equal = true")
	}
	b.Set(3)
	if !a.Equal(b) {
		t.Fatal("identical sets, Equal = false")
	}
	if a.Equal(New(11)) {
		t.Fatal("different lengths should not be equal")
	}
}

func TestIndicesAndForEachAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := New(300)
	for i := 0; i < 80; i++ {
		s.Set(rng.Intn(300))
	}
	var viaForEach []int
	s.ForEach(func(i int) bool {
		viaForEach = append(viaForEach, i)
		return true
	})
	idx := s.Indices()
	if len(idx) != len(viaForEach) {
		t.Fatalf("len mismatch %d vs %d", len(idx), len(viaForEach))
	}
	for i := range idx {
		if idx[i] != viaForEach[i] {
			t.Fatalf("mismatch at %d: %d vs %d", i, idx[i], viaForEach[i])
		}
	}
}

func TestForEachEarlyStop(t *testing.T) {
	s := NewFull(100)
	n := 0
	s.ForEach(func(i int) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Fatalf("ForEach visited %d bits, want 5", n)
	}
}

func TestMismatchedLengthsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("And of mismatched sets should panic")
		}
	}()
	New(10).And(New(20))
}

func TestString(t *testing.T) {
	s := New(10)
	s.Set(2)
	s.Set(7)
	if got := s.String(); got != "{2, 7}" {
		t.Fatalf("String = %q", got)
	}
}

// Property: Count equals len(Indices) and And is an intersection subset.
func TestQuickIntersectionProperties(t *testing.T) {
	f := func(bitsA, bitsB []uint16) bool {
		const n = 512
		a, b := New(n), New(n)
		for _, i := range bitsA {
			a.Set(int(i) % n)
		}
		for _, i := range bitsB {
			b.Set(int(i) % n)
		}
		and := a.Clone().And(b)
		if and.Count() != len(and.Indices()) {
			return false
		}
		ok := true
		and.ForEach(func(i int) bool {
			if !a.Has(i) || !b.Has(i) {
				ok = false
				return false
			}
			return true
		})
		// And is commutative.
		return ok && and.Equal(b.Clone().And(a))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: De Morgan on fixed universe — NOT(a OR b) == NOT a AND NOT b.
func TestQuickDeMorgan(t *testing.T) {
	f := func(bitsA, bitsB []uint16) bool {
		const n = 256
		a, b := New(n), New(n)
		for _, i := range bitsA {
			a.Set(int(i) % n)
		}
		for _, i := range bitsB {
			b.Set(int(i) % n)
		}
		lhs := NewFull(n).AndNot(a.Clone().Or(b))
		rhs := NewFull(n).AndNot(a).And(NewFull(n).AndNot(b))
		return lhs.Equal(rhs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
