package core

import (
	"context"
	"errors"
	"strings"
	"testing"

	"github.com/dance-db/dance/internal/fd"
	"github.com/dance-db/dance/internal/marketplace"
	"github.com/dance-db/dance/internal/pricing"
	"github.com/dance-db/dance/internal/relation"
)

// faultyMarket wraps a real marketplace and fails selected operations, to
// verify the middleware surfaces marketplace failures instead of
// mis-planning around them.
type faultyMarket struct {
	inner       marketplace.Market
	failCatalog bool
	failSample  string // dataset name whose sampling fails
	failFDs     string
	failQuote   string
	failQuery   string
}

var errInjected = errors.New("injected marketplace failure")

func (f *faultyMarket) Catalog(ctx context.Context) ([]marketplace.DatasetInfo, error) {
	if f.failCatalog {
		return nil, errInjected
	}
	return f.inner.Catalog(ctx)
}

func (f *faultyMarket) DatasetFDs(ctx context.Context, name string) ([]fd.FD, error) {
	if name == f.failFDs {
		return nil, errInjected
	}
	return f.inner.DatasetFDs(ctx, name)
}

func (f *faultyMarket) QuoteProjection(ctx context.Context, name string, attrs []string) (float64, error) {
	if name == f.failQuote {
		return 0, errInjected
	}
	return f.inner.QuoteProjection(ctx, name, attrs)
}

func (f *faultyMarket) Sample(ctx context.Context, name string, joinAttrs []string, rate float64, seed uint64) (*relation.Table, float64, error) {
	if name == f.failSample {
		return nil, 0, errInjected
	}
	return f.inner.Sample(ctx, name, joinAttrs, rate, seed)
}

func (f *faultyMarket) SampleDelta(ctx context.Context, name string, joinAttrs []string, fromRate, toRate float64, seed uint64) (*relation.Table, float64, error) {
	if name == f.failSample {
		return nil, 0, errInjected
	}
	return f.inner.SampleDelta(ctx, name, joinAttrs, fromRate, toRate, seed)
}

func (f *faultyMarket) ExecuteProjection(ctx context.Context, q pricing.Query) (*relation.Table, float64, error) {
	if q.Instance == f.failQuery {
		return nil, 0, errInjected
	}
	return f.inner.ExecuteProjection(ctx, q)
}

func TestOfflineSurfacesCatalogFailure(t *testing.T) {
	m, src := buildScenario(40)
	d := New(&faultyMarket{inner: m, failCatalog: true}, Config{SampleRate: 0.9})
	d.AddSource(src, nil)
	err := d.Offline(bg)
	if err == nil || !errors.Is(err, errInjected) {
		t.Fatalf("catalog failure not surfaced: %v", err)
	}
}

func TestOfflineSurfacesSampleFailure(t *testing.T) {
	m, src := buildScenario(41)
	d := New(&faultyMarket{inner: m, failSample: "mid2"}, Config{SampleRate: 0.9})
	d.AddSource(src, nil)
	err := d.Offline(bg)
	if err == nil || !strings.Contains(err.Error(), "mid2") {
		t.Fatalf("sample failure not surfaced with dataset name: %v", err)
	}
}

func TestOfflineSurfacesFDFailure(t *testing.T) {
	m, src := buildScenario(42)
	d := New(&faultyMarket{inner: m, failFDs: "tgt"}, Config{SampleRate: 0.9})
	d.AddSource(src, nil)
	if err := d.Offline(bg); err == nil {
		t.Fatal("FD metadata failure not surfaced")
	}
}

func TestAcquireSurfacesQuoteFailure(t *testing.T) {
	m, src := buildScenario(43)
	d := New(&faultyMarket{inner: m, failQuote: "tgt"}, Config{SampleRate: 0.9, MaxSampleRounds: 1})
	d.AddSource(src, nil)
	// Quotes fail during the search (pricing target graphs touching tgt);
	// acquisition must fail cleanly, not return an unpriced plan.
	if _, err := d.Acquire(bg, acquisitionRequest()); err == nil {
		t.Fatal("quote failure not surfaced")
	}
}

func TestExecuteSurfacesQueryFailure(t *testing.T) {
	m, src := buildScenario(44)
	// Plan against the healthy market, then fail the purchase step only.
	healthy := New(m, Config{SampleRate: 0.9, SampleSeed: 5})
	healthy.AddSource(src, nil)
	plan, err := healthy.Acquire(bg, acquisitionRequest())
	if err != nil {
		t.Fatal(err)
	}
	// Fail the *last* query so earlier projections are bought and charged
	// before the failure — Execute must surface the error AND return the
	// partial purchase so the spend stays accountable.
	victim := plan.Queries[len(plan.Queries)-1].Instance
	broken := New(&faultyMarket{inner: m, failQuery: victim}, Config{SampleRate: 0.9, SampleSeed: 5})
	broken.AddSource(src, nil)
	if err := broken.Offline(bg); err != nil {
		t.Fatal(err)
	}
	partial, err := broken.Execute(bg, plan)
	if err == nil || !errors.Is(err, errInjected) {
		t.Fatalf("purchase failure not surfaced: %v", err)
	}
	if partial == nil {
		t.Fatal("failed Execute must return the partial purchase for spend accounting")
	}
	if len(plan.Queries) > 1 {
		if partial.TotalPrice <= 0 || len(partial.Tables) != len(plan.Queries)-1 {
			t.Fatalf("partial purchase = %d tables, %v charged; want the pre-failure buys",
				len(partial.Tables), partial.TotalPrice)
		}
		if got := m.Ledger().TotalByKind("query"); got != partial.TotalPrice {
			t.Fatalf("marketplace charged %v but partial purchase records %v", got, partial.TotalPrice)
		}
	}
}
