package core

import (
	"errors"
	"strings"
	"testing"

	"github.com/dance-db/dance/internal/fd"
	"github.com/dance-db/dance/internal/marketplace"
	"github.com/dance-db/dance/internal/pricing"
	"github.com/dance-db/dance/internal/relation"
)

// faultyMarket wraps a real marketplace and fails selected operations, to
// verify the middleware surfaces marketplace failures instead of
// mis-planning around them.
type faultyMarket struct {
	inner       marketplace.Market
	failCatalog bool
	failSample  string // dataset name whose sampling fails
	failFDs     string
	failQuote   string
	failQuery   string
}

var errInjected = errors.New("injected marketplace failure")

func (f *faultyMarket) Catalog() ([]marketplace.DatasetInfo, error) {
	if f.failCatalog {
		return nil, errInjected
	}
	return f.inner.Catalog()
}

func (f *faultyMarket) DatasetFDs(name string) ([]fd.FD, error) {
	if name == f.failFDs {
		return nil, errInjected
	}
	return f.inner.DatasetFDs(name)
}

func (f *faultyMarket) QuoteProjection(name string, attrs []string) (float64, error) {
	if name == f.failQuote {
		return 0, errInjected
	}
	return f.inner.QuoteProjection(name, attrs)
}

func (f *faultyMarket) Sample(name string, joinAttrs []string, rate float64, seed uint64) (*relation.Table, float64, error) {
	if name == f.failSample {
		return nil, 0, errInjected
	}
	return f.inner.Sample(name, joinAttrs, rate, seed)
}

func (f *faultyMarket) ExecuteProjection(q pricing.Query) (*relation.Table, float64, error) {
	if q.Instance == f.failQuery {
		return nil, 0, errInjected
	}
	return f.inner.ExecuteProjection(q)
}

func TestOfflineSurfacesCatalogFailure(t *testing.T) {
	m, src := buildScenario(40)
	d := New(&faultyMarket{inner: m, failCatalog: true}, Config{SampleRate: 0.9})
	d.AddSource(src, nil)
	err := d.Offline()
	if err == nil || !errors.Is(err, errInjected) {
		t.Fatalf("catalog failure not surfaced: %v", err)
	}
}

func TestOfflineSurfacesSampleFailure(t *testing.T) {
	m, src := buildScenario(41)
	d := New(&faultyMarket{inner: m, failSample: "mid2"}, Config{SampleRate: 0.9})
	d.AddSource(src, nil)
	err := d.Offline()
	if err == nil || !strings.Contains(err.Error(), "mid2") {
		t.Fatalf("sample failure not surfaced with dataset name: %v", err)
	}
}

func TestOfflineSurfacesFDFailure(t *testing.T) {
	m, src := buildScenario(42)
	d := New(&faultyMarket{inner: m, failFDs: "tgt"}, Config{SampleRate: 0.9})
	d.AddSource(src, nil)
	if err := d.Offline(); err == nil {
		t.Fatal("FD metadata failure not surfaced")
	}
}

func TestAcquireSurfacesQuoteFailure(t *testing.T) {
	m, src := buildScenario(43)
	d := New(&faultyMarket{inner: m, failQuote: "tgt"}, Config{SampleRate: 0.9, MaxSampleRounds: 1})
	d.AddSource(src, nil)
	// Quotes fail during the search (pricing target graphs touching tgt);
	// acquisition must fail cleanly, not return an unpriced plan.
	if _, err := d.Acquire(acquisitionRequest()); err == nil {
		t.Fatal("quote failure not surfaced")
	}
}

func TestExecuteSurfacesQueryFailure(t *testing.T) {
	m, src := buildScenario(44)
	// Plan against the healthy market, then fail the purchase step only.
	healthy := New(m, Config{SampleRate: 0.9, SampleSeed: 5})
	healthy.AddSource(src, nil)
	plan, err := healthy.Acquire(acquisitionRequest())
	if err != nil {
		t.Fatal(err)
	}
	victim := plan.Queries[0].Instance
	broken := New(&faultyMarket{inner: m, failQuery: victim}, Config{SampleRate: 0.9, SampleSeed: 5})
	broken.AddSource(src, nil)
	if err := broken.Offline(); err != nil {
		t.Fatal(err)
	}
	if _, err := broken.Execute(plan); err == nil || !errors.Is(err, errInjected) {
		t.Fatalf("purchase failure not surfaced: %v", err)
	}
}
