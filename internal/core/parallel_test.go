package core

import (
	"context"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"

	"github.com/dance-db/dance/internal/marketplace"
	"github.com/dance-db/dance/internal/relation"
)

// The offline phase fans sample/FD fetches out across workers; for a fixed
// sample seed the resulting middleware state — graph shape, sample cost,
// and the plan every request produces — must not depend on the worker
// count.
func TestOfflineParallelMatchesSerial(t *testing.T) {
	run := func(workers int) (*Dance, string, float64) {
		m, src := buildScenario(1)
		d := New(m, Config{SampleRate: 0.8, SampleSeed: 3, Workers: workers})
		d.AddSource(src, nil)
		plan, err := d.Acquire(bg, acquisitionRequest())
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var queries string
		for _, q := range plan.Queries {
			queries += q.String() + "\n"
		}
		return d, queries, plan.Est.Correlation
	}
	dSerial, qSerial, corrSerial := run(1)
	dPar, qPar, corrPar := run(8)
	if qSerial != qPar {
		t.Fatalf("plans differ:\nserial:\n%s\nparallel:\n%s", qSerial, qPar)
	}
	if corrSerial != corrPar {
		t.Fatalf("estimated correlation differs: %v vs %v", corrSerial, corrPar)
	}
	if dSerial.SampleCost() != dPar.SampleCost() {
		t.Fatalf("sample cost differs: %v vs %v", dSerial.SampleCost(), dPar.SampleCost())
	}
	if got, want := len(dPar.Graph().Instances), len(dSerial.Graph().Instances); got != want {
		t.Fatalf("instance count differs: %d vs %d", got, want)
	}
}

// The parallel offline fan-out against a real HTTP marketplace (the case
// the concurrency exists for) must work and stay deterministic.
func TestOfflineParallelOverHTTP(t *testing.T) {
	m, src := buildScenario(1)
	srv := httptest.NewServer(marketplace.Handler(m))
	defer srv.Close()

	// Compare equal transports (CSV float round-trips perturb metrics in
	// the last ulp, so remote never bit-matches local): only the worker
	// count may vary between the two runs.
	acquire := func(workers int) *Plan {
		d := New(marketplace.NewClient(srv.URL), Config{SampleRate: 0.8, SampleSeed: 3, Workers: workers})
		d.AddSource(src, nil)
		plan, err := d.Acquire(bg, acquisitionRequest())
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return plan
	}
	par, serial := acquire(4), acquire(1)
	if par.Est != serial.Est {
		t.Fatalf("HTTP-parallel estimates %+v differ from HTTP-serial %+v", par.Est, serial.Est)
	}
}

// A first-error during the fan-out must cancel cleanly and surface one
// deterministic error, not panic or deadlock.
func TestOfflineFirstErrorCancels(t *testing.T) {
	m, src := buildScenario(1)
	d := New(failingMarket{m}, Config{SampleRate: 0.8, SampleSeed: 3, Workers: 4})
	d.AddSource(src, nil)
	if err := d.Offline(bg); err == nil {
		t.Fatal("expected the injected sampling failure to surface")
	}
}

// Several shoppers can share one middleware for read-only planning once
// the graph is built; -race validates the searcher underneath.
func TestConcurrentAcquire(t *testing.T) {
	m, src := buildScenario(1)
	d := New(m, Config{SampleRate: 1, SampleSeed: 3})
	d.AddSource(src, nil)
	if err := d.Offline(bg); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			req := acquisitionRequest()
			req.Seed = seed
			if _, err := d.Acquire(bg, req); err != nil {
				t.Error(err)
			}
		}(int64(i%2) + 1)
	}
	wg.Wait()
}

// failingMarket injects an error on one dataset's sample call.
type failingMarket struct {
	marketplace.Market
}

func (f failingMarket) Sample(ctx context.Context, name string, joinAttrs []string, rate float64, seed uint64) (*relation.Table, float64, error) {
	if name == "mid2" {
		return nil, 0, fmt.Errorf("injected sample failure for %s", name)
	}
	return f.Market.Sample(ctx, name, joinAttrs, rate, seed)
}
