package core

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"github.com/dance-db/dance/internal/marketplace"
	"github.com/dance-db/dance/internal/search"
	"github.com/dance-db/dance/internal/tpce"
	"github.com/dance-db/dance/internal/workload"
)

// The pinned-equivalence goldens freeze the exact output of the pre-policy
// Acquire path: plan queries, Est (exact float bits), Evals, the final
// sample rate and the per-round sample ledger, at Workers 1 and 8. The
// `dance` policy must reproduce them byte-for-byte — the policy extraction
// is a pure refactor of the search loop, not a behavior change. Regenerate
// with PINNED_UPDATE=1 go test ./internal/core -run TestDancePolicyPinned
// (only legitimate when the *search engine itself* changes, never to absorb
// a policy-layer drift).
const pinnedGoldenPath = "testdata/pinned_policies.json"

// hexF freezes a float64's exact bits as a hex-float literal.
func hexF(f float64) string { return strconv.FormatFloat(f, 'x', -1, 64) }

type pinnedGolden struct {
	Name       string      `json:"name"`
	Workers    int         `json:"workers"`
	Queries    []string    `json:"queries"`
	Est        [4]string   `json:"est"` // correlation, quality, weight, price
	Evals      int         `json:"evals"`
	Rate       string      `json:"rate"`
	SampleCost string      `json:"sample_cost"`
	Rounds     [][4]string `json:"rounds"` // from, to, full, delta
	TopK       []string    `json:"topk,omitempty"`
}

func estBits(m search.Metrics) [4]string {
	return [4]string{hexF(m.Correlation), hexF(m.Quality), hexF(m.Weight), hexF(m.Price)}
}

// pinnedObserved runs one fixture through the default (dance) policy path
// and flattens everything the goldens pin.
func pinnedObserved(t *testing.T, name string, mw *Dance, req search.Request, k int, escalations int) pinnedGolden {
	t.Helper()
	g := pinnedGolden{Name: name, Workers: req.Workers}
	for i := 0; i < escalations; i++ {
		if _, err := mw.Escalate(bg); err != nil {
			t.Fatalf("%s: escalate: %v", name, err)
		}
	}
	plan, err := mw.Acquire(bg, req)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	for _, q := range plan.Queries {
		g.Queries = append(g.Queries, q.String())
	}
	g.Est = estBits(plan.Est)
	// Evals: a fresh searcher over the final graph replays the winning
	// search deterministically, so the golden was capturable before the
	// Plan carried the count; the refactored plan must agree with both.
	res, err := search.NewSearcher(mw.Graph()).Heuristic(bg, req)
	if err != nil {
		t.Fatalf("%s: replaying search: %v", name, err)
	}
	if plan.Evals != res.Evals {
		t.Errorf("%s: plan.Evals %d != replayed search's %d", name, plan.Evals, res.Evals)
	}
	g.Evals = res.Evals
	g.Rate = hexF(mw.SampleRate())
	g.SampleCost = hexF(mw.SampleCost())
	for _, r := range mw.SampleRounds() {
		g.Rounds = append(g.Rounds, [4]string{hexF(r.FromRate), hexF(r.ToRate), hexF(r.FullCost), hexF(r.DeltaCost)})
	}
	if k > 0 {
		ranked, err := mw.AcquireTopK(bg, req, k, search.DefaultScoreWeights())
		if err != nil {
			t.Fatalf("%s: topk: %v", name, err)
		}
		for _, rp := range ranked {
			line := fmt.Sprintf("score=%s est=%v", hexF(rp.Score), estBits(rp.Plan.Est))
			for _, q := range rp.Plan.Queries {
				line += " " + q.String()
			}
			g.TopK = append(g.TopK, line)
		}
	}
	return g
}

func pinnedScenarioMW(t *testing.T, spec string, seed int64, rate float64, workers int) (*Dance, search.Request) {
	t.Helper()
	sp, err := workload.ParseSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	w, err := workload.Generate(sp, seed)
	if err != nil {
		t.Fatal(err)
	}
	mw := New(w.Marketplace(), Config{SampleRate: rate, SampleSeed: uint64(seed) + 77, Workers: workers})
	req := search.Request{
		TargetAttrs: []string{w.Truth.X, w.Truth.Y},
		Budget:      w.Truth.PlanCost * (1 + 1e-6),
		Iterations:  60,
		Seed:        seed + 13,
		Workers:     workers,
	}
	return mw, req
}

func TestDancePolicyPinned(t *testing.T) {
	if testing.Short() {
		t.Skip("full pinned-equivalence sweep")
	}
	var observed []pinnedGolden
	for _, workers := range []int{1, 8} {
		// TPC-E: the Sec 6.1 integration fixture.
		d := tpce.Generate(tpce.Config{Scale: 1, Seed: 7, DirtyFraction: 0.2})
		m := marketplace.NewInMemory(nil)
		for _, tab := range d.Tables {
			m.Register(tab, d.FDs[tab.Name])
		}
		mw := New(m, Config{SampleRate: 0.8, SampleSeed: 11, Workers: workers})
		req := search.Request{
			SourceAttrs: []string{"cabalance"},
			TargetAttrs: []string{"sectorname"},
			Iterations:  60,
			Seed:        3,
			Workers:     workers,
		}
		observed = append(observed, pinnedObserved(t, fmt.Sprintf("tpce/w%d", workers), mw, req, 0, 0))

		// Scenario fixtures: a decoy-bearing chain (TopK pinned too), a
		// star, and a low-rate snowflake escalated twice before acquiring,
		// pinning the incremental delta-billing ledger (0.2→0.4→0.8).
		for _, sc := range []struct {
			spec string
			seed int64
			rate float64
			k    int
			esc  int
		}{
			{"chain:3,decoys=3", 1, 0.5, 3, 0},
			{"star:3", 2, 0.5, 0, 0},
			{"snowflake:2,null=0.05,price=flat", 3, 0.2, 0, 2},
		} {
			mw, req := pinnedScenarioMW(t, sc.spec, sc.seed, sc.rate, workers)
			name := fmt.Sprintf("%s/seed%d/w%d", sc.spec, sc.seed, workers)
			observed = append(observed, pinnedObserved(t, name, mw, req, sc.k, sc.esc))
		}
	}

	if os.Getenv("PINNED_UPDATE") != "" {
		buf, err := json.MarshalIndent(observed, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(pinnedGoldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(pinnedGoldenPath, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d pinned cases to %s", len(observed), pinnedGoldenPath)
		return
	}

	buf, err := os.ReadFile(pinnedGoldenPath)
	if err != nil {
		t.Fatal(err)
	}
	var want []pinnedGolden
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(observed) {
		t.Fatalf("golden has %d cases, observed %d", len(want), len(observed))
	}
	for i, w := range want {
		o := observed[i]
		wb, _ := json.MarshalIndent(w, "", "  ")
		ob, _ := json.MarshalIndent(o, "", "  ")
		if string(wb) != string(ob) {
			t.Errorf("pinned case %s diverged from pre-refactor output:\nwant %s\ngot  %s", w.Name, wb, ob)
		}
	}
}
