// Package core implements DANCE, the data-acquisition middleware of the
// paper (Fig 1). The offline phase buys correlated samples from the
// marketplace and builds the two-layer join graph; the online phase turns an
// acquisition request into a search over the join graph, escalating the
// sample rate when no feasible plan exists, and finally emits the SQL
// projection queries the shopper sends to the marketplace.
//
// Every entry point takes a context.Context: deadlines and cancellation
// propagate through marketplace I/O and down into the MCMC search loop. The
// middleware is safe for concurrent use — per-request execution runs on an
// immutable snapshot of the offline state, and sample-rate escalation
// serializes graph rebuilds behind a mutex.
package core

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"github.com/dance-db/dance/internal/fd"
	"github.com/dance-db/dance/internal/infotheory"
	"github.com/dance-db/dance/internal/joingraph"
	"github.com/dance-db/dance/internal/marketplace"
	"github.com/dance-db/dance/internal/offline"
	"github.com/dance-db/dance/internal/parallel"
	"github.com/dance-db/dance/internal/persist"
	"github.com/dance-db/dance/internal/policy"
	"github.com/dance-db/dance/internal/pricing"
	"github.com/dance-db/dance/internal/relation"
	"github.com/dance-db/dance/internal/search"
)

// Config controls the middleware.
type Config struct {
	// SampleRate is the initial correlated-sampling rate for the offline
	// phase (default 0.3).
	SampleRate float64
	// SampleSeed drives the marketplace-side correlated sampling; one seed
	// is shared across datasets so samples stay join-consistent.
	SampleSeed uint64
	// MaxJoinAttrs caps join-attribute subsets per I-edge (default 3).
	MaxJoinAttrs int
	// MaxSampleRounds bounds the iterative refresh of Sec 2.1: when no
	// feasible plan is found, DANCE buys more samples (rate × RateGrowth)
	// and retries (default 3 rounds).
	MaxSampleRounds int
	// RateGrowth multiplies the sampling rate per refresh (default 2).
	RateGrowth float64
	// DiscoverFDs discovers AFDs on samples for datasets that publish
	// none.
	DiscoverFDs bool
	// FDOptions configure discovery when DiscoverFDs is set.
	FDOptions fd.DiscoveryOptions
	// Workers bounds concurrency throughout the middleware: the offline
	// phase fetches per-dataset samples and FDs with up to Workers
	// concurrent marketplace calls (pure I/O fan-out against an HTTP
	// marketplace), and requests that leave their own Workers knob unset
	// inherit it for the parallel search. 0 or negative means one worker
	// per CPU; 1 forces fully serial operation.
	Workers int
	// Persist journals the sample store durably: before the first offline
	// round the middleware restores every persisted dataset (making an
	// Offline refresh at the persisted rate free), and after each round it
	// saves the datasets whose state changed. Samples cost money; nil
	// keeps the pre-durability in-memory-only behavior.
	Persist persist.Store
	// Policy names the acquisition policy requests run under when they
	// name none themselves ("" = the paper's own "dance" search). See
	// internal/policy for the registry.
	Policy string
	// PolicyParams are default policy tunables; per-request
	// search.Request.PolicyParams override them key by key.
	PolicyParams map[string]float64
}

func (c Config) withDefaults() Config {
	if c.SampleRate <= 0 {
		c.SampleRate = 0.3
	}
	if c.MaxJoinAttrs <= 0 {
		c.MaxJoinAttrs = 3
	}
	if c.MaxSampleRounds <= 0 {
		c.MaxSampleRounds = 3
	}
	if c.RateGrowth <= 1 {
		c.RateGrowth = 2
	}
	if c.DiscoverFDs && c.FDOptions.MaxError == 0 {
		c.FDOptions = fd.DefaultDiscoveryOptions()
	}
	return c
}

// source is a shopper-owned instance.
type source struct {
	table *relation.Table
	fds   []fd.FD
}

// Dance is the middleware. Construct with New, register owned data with
// AddSource, then Acquire/Execute per request (Offline runs lazily on first
// use; call it explicitly to refresh samples). All methods are safe for
// concurrent use.
type Dance struct {
	market marketplace.Market
	cfg    Config

	// store is the versioned offline sample state: merged incrementally by
	// delta purchases, snapshotted immutably per rebuild.
	store *offline.SampleStore
	// caches is the search-layer evaluation state shared across rebuilds;
	// its keys carry per-dataset versions, so an escalation invalidates
	// only entries derived from datasets whose samples actually changed.
	caches *search.Caches
	// ji memoizes join-informativeness estimates across graph rebuilds,
	// versioned the same way.
	ji *joingraph.JICache

	// offlineMu serializes offline rebuilds (catalog fetch, sample
	// purchases, graph construction): concurrent escalations must not buy
	// duplicate sample rounds. It is never held while mu is wanted by
	// readers for long — the slow work happens with only offlineMu held.
	// lockorder: before mu
	offlineMu sync.Mutex
	// restored and persisted belong to the offline path: they are touched
	// only with offlineMu held (restore, rebuild). persisted marks the
	// per-dataset state already journaled to cfg.Persist, so unchanged
	// datasets are not re-written every round.
	restored  bool
	persisted map[string]persistedMark

	// mu guards the mutable middleware state below. Requests read a
	// consistent (rate, graph, searcher) snapshot under mu and then run on
	// it lock-free; rebuilds commit a fully-built replacement under mu.
	mu         sync.Mutex
	rate       float64          // guarded by mu
	sources    []source         // guarded by mu
	sampleCost float64          // guarded by mu
	rounds     []SampleRound    // guarded by mu
	graph      *joingraph.Graph // guarded by mu
	searcher   *search.Searcher // guarded by mu
}

// SampleRound records what one offline round bought: full samples (first
// purchase of a dataset, or a re-buy after sampling parameters changed) and
// delta top-ups (the incremental escalation path). Service layers surface
// these in their ledgers so shoppers can see that escalations bill only
// the difference.
type SampleRound struct {
	// FromRate is the store-wide rate before the round (0 on the first).
	FromRate float64
	// ToRate is the rate the round escalated to.
	ToRate float64
	// FullCost sums the complete-sample purchases of the round.
	FullCost float64
	// DeltaCost sums the delta purchases of the round.
	DeltaCost float64
	// Policy names the acquisition policy whose request triggered the
	// round ("" for explicit Offline/Escalate calls), so service ledgers
	// can attribute sample spend per policy.
	Policy string
}

// Cost returns the round's total spend.
func (r SampleRound) Cost() float64 { return r.FullCost + r.DeltaCost }

// New creates a middleware bound to a marketplace.
func New(market marketplace.Market, cfg Config) *Dance {
	cfg = cfg.withDefaults()
	return &Dance{
		market:    market,
		cfg:       cfg,
		rate:      cfg.SampleRate,
		store:     offline.NewSampleStore(),
		caches:    search.NewCaches(),
		ji:        joingraph.NewJICache(),
		persisted: make(map[string]persistedMark),
	}
}

// persistedMark records the dataset state last journaled to cfg.Persist. An
// empty-delta escalation changes a dataset's covered rate without bumping
// its version, and a first FD resolution to the empty set changes the
// resolved marker the same way, so the version alone cannot decide whether
// a re-save is due.
type persistedMark struct {
	version     uint64
	rate        float64
	fdsResolved bool
}

func markOf(ds *offline.Dataset) persistedMark {
	return persistedMark{version: ds.Version, rate: ds.Rate, fdsResolved: ds.FDs != nil}
}

// restore loads the persisted offline state into the sample store, once per
// middleware. Restored datasets make the next rebuild's purchases free (at
// the persisted rate) or delta-only (above it). The caller must hold
// offlineMu.
func (d *Dance) restore() error {
	if d.cfg.Persist == nil || d.restored {
		return nil
	}
	d.restored = true
	st, err := d.cfg.Persist.Load()
	if err != nil {
		return fmt.Errorf("dance: restoring offline state: %w", err)
	}
	for _, ds := range st.Datasets {
		d.store.Replace(ds.Name, ds.Table, ds.JoinAttrs, ds.Seed, ds.Rate, ds.FullRows)
		if ds.FDsResolved {
			if err := d.store.SetFDs(ds.Name, ds.FDs); err != nil {
				return fmt.Errorf("dance: restoring FDs of %s: %w", ds.Name, err)
			}
		}
	}
	for _, ds := range d.store.Snapshot().Datasets() {
		d.persisted[ds.Name] = markOf(ds)
	}
	if st.Rate > 0 {
		d.store.CommitRate(st.Rate)
		d.mu.Lock()
		// The persisted rate resumes where the crashed session left off;
		// a higher configured SampleRate still wins (the rebuild then buys
		// only the deltas above the restored holdings).
		if st.Rate > d.rate {
			d.rate = st.Rate
		}
		d.mu.Unlock()
	}
	return nil
}

// persistRound journals every dataset whose state changed in this round,
// plus the committed rate. The caller must hold offlineMu.
func (d *Dance) persistRound(snap *offline.Snapshot, rate float64) error {
	if d.cfg.Persist == nil {
		return nil
	}
	for _, ds := range snap.Datasets() {
		if d.persisted[ds.Name] == markOf(ds) {
			continue
		}
		rec := persist.DatasetRecord{
			Name:        ds.Name,
			JoinAttrs:   ds.JoinAttrs,
			Seed:        ds.Seed,
			Rate:        ds.Rate,
			FullRows:    ds.FullRows,
			FDs:         ds.FDs,
			FDsResolved: ds.FDs != nil,
		}
		if err := d.cfg.Persist.SaveDataset(rec, ds.Table); err != nil {
			return fmt.Errorf("dance: persisting sample of %s: %w", ds.Name, err)
		}
		d.persisted[ds.Name] = markOf(ds)
	}
	if err := d.cfg.Persist.SaveRate(rate); err != nil {
		return fmt.Errorf("dance: persisting sample rate: %w", err)
	}
	return nil
}

// AddSource registers shopper-owned data (the S of the acquisition request).
// Must be called before the first Offline/Acquire.
func (d *Dance) AddSource(t *relation.Table, fds []fd.FD) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.sources = append(d.sources, source{table: t, fds: fds})
}

// SampleCost returns what DANCE has paid the marketplace for samples so far.
func (d *Dance) SampleCost() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.sampleCost
}

// SampleRounds returns the per-round sample spend log, oldest first.
func (d *Dance) SampleRounds() []SampleRound {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]SampleRound(nil), d.rounds...)
}

// SampleRate returns the current offline sampling rate.
func (d *Dance) SampleRate() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.rate
}

// Graph exposes the current join graph (nil before Offline).
func (d *Dance) Graph() *joingraph.Graph {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.graph
}

// snapshot is the per-request view of the offline state: requests search a
// consistent graph even while another request escalates the sample rate.
type snapshot struct {
	rate     float64
	graph    *joingraph.Graph
	searcher *search.Searcher
}

// primaryJoinAttr picks the attribute of info shared with the most other
// catalog entries: correlated sampling needs a join attribute, and the most
// widely shared one preserves the most join structure (see DESIGN.md).
func primaryJoinAttr(info marketplace.DatasetInfo, catalog []marketplace.DatasetInfo) string {
	best, bestCount := "", -1
	for _, c := range info.Attrs {
		count := 0
		for _, other := range catalog {
			if other.Name == info.Name {
				continue
			}
			for _, oc := range other.Attrs {
				if oc.Name == c.Name {
					count++
					break
				}
			}
		}
		if count > bestCount {
			best, bestCount = c.Name, count
		}
	}
	return best
}

// Offline runs the offline phase: fetch the catalog, buy correlated samples
// of every dataset at the current rate, collect published (or discovered)
// AFDs, and build the join graph. Calling it again refreshes the graph from
// the sample store without re-buying anything (datasets already sampled at
// the current rate are free no-ops; new catalog entries are bought in
// full). Cancelling ctx aborts the in-flight marketplace calls and returns
// ctx.Err().
func (d *Dance) Offline(ctx context.Context) error {
	d.offlineMu.Lock()
	defer d.offlineMu.Unlock()
	if err := d.restore(); err != nil {
		return err
	}
	return d.rebuild(ctx, d.SampleRate(), "")
}

// ensure returns the current offline snapshot, running the offline phase
// first if it has never completed. Rounds bought here are attributed to
// policyName in the sample ledger ("" for explicit refreshes).
func (d *Dance) ensure(ctx context.Context, policyName string) (snapshot, error) {
	d.mu.Lock()
	if d.graph != nil {
		snap := snapshot{rate: d.rate, graph: d.graph, searcher: d.searcher}
		d.mu.Unlock()
		return snap, nil
	}
	d.mu.Unlock()

	d.offlineMu.Lock()
	defer d.offlineMu.Unlock()
	// Double-check: another request may have finished offline while this
	// one waited on offlineMu.
	d.mu.Lock()
	if d.graph != nil {
		snap := snapshot{rate: d.rate, graph: d.graph, searcher: d.searcher}
		d.mu.Unlock()
		return snap, nil
	}
	d.mu.Unlock()
	if err := d.restore(); err != nil {
		return snapshot{}, err
	}
	d.mu.Lock()
	rate := d.rate
	d.mu.Unlock()
	if err := d.rebuild(ctx, rate, policyName); err != nil {
		return snapshot{}, err
	}
	d.mu.Lock()
	snap := snapshot{rate: d.rate, graph: d.graph, searcher: d.searcher}
	d.mu.Unlock()
	return snap, nil
}

// escalate grows the sample rate past seenRate and re-runs the offline
// phase. It reports whether the caller should retry its search: false means
// the rate was already at 1 (nothing more to buy). When a concurrent
// request already escalated past seenRate, escalate skips the duplicate
// rebuild and the caller retries against the fresher graph.
func (d *Dance) escalate(ctx context.Context, seenRate float64, policyName string) (retry bool, err error) {
	d.offlineMu.Lock()
	defer d.offlineMu.Unlock()
	d.mu.Lock()
	cur := d.rate
	d.mu.Unlock()
	if cur != seenRate {
		return true, nil // someone else escalated while we searched
	}
	if cur >= 1 {
		return false, nil // cannot sample more than everything
	}
	next := cur * d.cfg.RateGrowth
	if next > 1 {
		next = 1
	}
	if err := d.rebuild(ctx, next, policyName); err != nil {
		return false, err
	}
	return true, nil
}

// fetchOutcome is one dataset's purchase result within a rebuild round.
type fetchOutcome struct {
	joinAttr string
	full     *relation.Table // complete sample bought (nil when extending)
	delta    *relation.Table // delta bought (nil when full or no-op)
	fds      []fd.FD
	fullCost float64
	delta0   bool // delta path taken with nothing to buy (rates equal)
	cost     float64
}

// rebuild runs one offline round at the given rate and commits the
// resulting graph. Instead of re-buying complete samples, datasets already
// held by the sample store are topped up with SampleDelta purchases — only
// the rows with sampling unit in (oldRate, rate] — and merged copy-on-write
// into the versioned store; the join graph and searcher are then rebuilt
// from the merged state, with version-keyed caches preserving evaluation
// state derived from unchanged datasets. The caller must hold offlineMu
// (not mu). Rounds that spend money are stamped with policyName.
func (d *Dance) rebuild(ctx context.Context, rate float64, policyName string) error {
	d.mu.Lock()
	srcs := append([]source(nil), d.sources...)
	d.mu.Unlock()

	catalog, err := d.market.Catalog(ctx)
	if err != nil {
		return fmt.Errorf("dance: catalog: %w", err)
	}
	if len(catalog) == 0 {
		return fmt.Errorf("dance: marketplace catalog is empty")
	}
	if rate > 1 {
		rate = 1
	}
	prev := d.store.Snapshot()

	// Fetch each dataset's sample (full or delta) and FDs concurrently —
	// pure I/O fan-out when the marketplace is remote — with bounded
	// workers and first-error (or cancellation) early exit. Indexed result
	// slots keep instance numbering and the summed sample cost
	// deterministic. Costs are recorded per slot so that even on a partial
	// failure SampleCost reflects every purchase the marketplace actually
	// charged for.
	outcomes := make([]fetchOutcome, len(catalog))
	err = parallel.ForEach(ctx, len(catalog), d.cfg.Workers, func(i int) error {
		info := catalog[i]
		out := &outcomes[i]
		out.joinAttr = primaryJoinAttr(info, catalog)
		held := prev.Dataset(info.Name)
		// A held dataset can be extended only when the sampling run is the
		// same one: equal join attributes and seed, rate not shrinking —
		// and the listing itself unchanged as far as we can tell. Listings
		// are assumed immutable, but a replaced listing with a different
		// cardinality is detectable for free, and merging a delta of the
		// new data onto a sample of the old would corrupt the store.
		extendable := held != nil && held.Seed == d.cfg.SampleSeed &&
			len(held.JoinAttrs) == 1 && held.JoinAttrs[0] == out.joinAttr &&
			held.Rate <= rate && held.FullRows == info.Rows
		switch {
		case extendable && held.Rate == rate:
			out.delta0 = true // refresh at the same rate: nothing to buy
		case extendable:
			delta, cost, err := d.market.SampleDelta(ctx, info.Name, held.JoinAttrs, held.Rate, rate, d.cfg.SampleSeed)
			if err != nil {
				return fmt.Errorf("dance: delta sampling %s: %w", info.Name, err)
			}
			out.delta, out.cost = delta, cost
		default:
			sample, cost, err := d.market.Sample(ctx, info.Name, []string{out.joinAttr}, rate, d.cfg.SampleSeed)
			if err != nil {
				return fmt.Errorf("dance: sampling %s: %w", info.Name, err)
			}
			out.full, out.cost, out.fullCost = sample, cost, cost
		}
		fds, err := d.market.DatasetFDs(ctx, info.Name)
		if err != nil {
			return fmt.Errorf("dance: FDs of %s: %w", info.Name, err)
		}
		out.fds = fds
		return nil
	})
	spent, fullSpent := 0.0, 0.0
	for _, out := range outcomes {
		spent += out.cost
		fullSpent += out.fullCost
	}
	recordSpend := func() {
		d.mu.Lock()
		d.sampleCost += spent
		if spent > 0 {
			d.rounds = append(d.rounds, SampleRound{
				FromRate: prev.Rate, ToRate: rate,
				FullCost: fullSpent, DeltaCost: spent - fullSpent,
				Policy: policyName,
			})
		}
		d.mu.Unlock()
	}
	if err != nil {
		recordSpend()
		return err
	}

	// Merge the purchases into the versioned store. Datasets with empty
	// deltas keep their version, so caches derived from them stay valid.
	keep := make(map[string]bool, len(catalog))
	for i, info := range catalog {
		keep[info.Name] = true
		out := outcomes[i]
		switch {
		case out.full != nil:
			d.store.Replace(info.Name, out.full, []string{out.joinAttr}, d.cfg.SampleSeed, rate, info.Rows)
		default:
			delta := out.delta
			if out.delta0 {
				delta = relation.NewTable(info.Name, prev.Dataset(info.Name).Table.Schema)
			}
			if _, err := d.store.Extend(info.Name, delta, rate, info.Rows); err != nil {
				recordSpend()
				return fmt.Errorf("dance: %w", err)
			}
		}
	}
	d.store.Retain(keep)
	d.store.CommitRate(rate)

	// FDs: published ones win; discovery runs on the *merged* sample when a
	// dataset publishes none — but only when this round actually changed
	// the dataset's rows. Re-discovering over unchanged rows is
	// deterministic busywork that would make same-rate refreshes (and
	// empty-delta escalations) pay a combinatorial AFD search for nothing.
	// Version bumps only when the resulting set changed.
	snap := d.store.Snapshot()
	if err := parallel.ForEach(ctx, len(catalog), d.cfg.Workers, func(i int) error {
		info := catalog[i]
		out := outcomes[i]
		fds := out.fds
		if len(fds) == 0 && d.cfg.DiscoverFDs {
			rowsChanged := out.full != nil || (out.delta != nil && out.delta.NumRows() > 0)
			// held.FDs non-nil means a previous round already resolved the
			// FDs (discovery may legitimately have found none) — reuse it
			// whenever this round didn't change the rows.
			if held := prev.Dataset(info.Name); held != nil && !rowsChanged && held.FDs != nil {
				fds = held.FDs
			} else {
				var err error
				if fds, err = fd.Discover(snap.Dataset(info.Name).Table, d.cfg.FDOptions); err != nil {
					return fmt.Errorf("dance: FD discovery on %s: %w", info.Name, err)
				}
			}
		}
		return d.store.SetFDs(info.Name, fds)
	}); err != nil {
		recordSpend()
		return err
	}
	snap = d.store.Snapshot()

	var instances []*joingraph.Instance
	for si, s := range srcs {
		instances = append(instances, &joingraph.Instance{
			Name:     s.table.Name,
			Sample:   s.table, // owned data needs no sampling
			FullRows: s.table.NumRows(),
			FDs:      s.fds,
			Owned:    true,
			// Owned tables never change, but each registered source needs
			// a distinct cache identity even under a duplicated name — the
			// source index is stable (AddSource only appends).
			Version: uint64(si),
		})
	}
	for _, info := range catalog {
		ds := snap.Dataset(info.Name)
		instances = append(instances, &joingraph.Instance{
			Name:     ds.Name,
			Sample:   ds.Table,
			Columnar: ds.Cols,
			Version:  ds.Version,
			FullRows: ds.FullRows,
			FDs:      ds.FDs,
		})
	}
	g, err := joingraph.Build(instances, joingraph.Config{
		MaxJoinAttrs: d.cfg.MaxJoinAttrs,
		Quoter:       d.market,
		JI:           d.ji,
	})
	if err != nil {
		recordSpend()
		return fmt.Errorf("dance: join graph: %w", err)
	}
	recordSpend()
	// Journal the round before publishing it: a persist failure leaves the
	// in-memory store merged (so a retry re-persists without re-buying) but
	// never lets requests run ahead of what a crash would recover.
	if err := d.persistRound(snap, rate); err != nil {
		return err
	}
	searcher := search.NewSearcherWithCaches(g, d.caches)
	// Drop cached state of superseded dataset versions: a long-lived
	// session escalates many times, and each round would otherwise strand
	// a generation of columnar encodings and join indexes.
	d.caches.RetainInstances(searcher)
	d.mu.Lock()
	d.rate = rate
	d.graph = g
	d.searcher = searcher
	d.mu.Unlock()
	return nil
}

// Escalate grows the sampling rate by RateGrowth (capped at 1) and re-runs
// the offline phase incrementally, buying only each dataset's sample delta.
// It reports whether anything was escalated: false means the rate already
// reached 1. Long-lived sessions use it to cheapen future acquisitions
// without waiting for an infeasible search to trigger the refresh loop.
func (d *Dance) Escalate(ctx context.Context) (bool, error) {
	if _, err := d.ensure(ctx, ""); err != nil {
		return false, err
	}
	return d.escalate(ctx, d.SampleRate(), "")
}

// Plan is DANCE's recommendation: the projection queries to purchase, the
// target graph they came from, and the sample-estimated metrics.
type Plan struct {
	Queries []pricing.Query
	TG      *joingraph.TargetGraph
	Est     search.Metrics
	// Evals counts the full metric evaluations the producing search spent.
	Evals int
	// Request echoes the acquisition request the plan answers, with
	// Request.Policy normalized to the policy that produced the plan.
	Request search.Request
}

// policyHost adapts the middleware into the policy.Host capability
// surface: policies get consistent snapshots, serialized delta-billed
// escalation, and a single spend ledger, with every round they trigger
// attributed to their name.
type policyHost struct {
	d    *Dance
	name string
}

func (h policyHost) Snapshot(ctx context.Context) (policy.Snapshot, error) {
	snap, err := h.d.ensure(ctx, h.name)
	if err != nil {
		return policy.Snapshot{}, err
	}
	return policy.Snapshot{Rate: snap.rate, Searcher: snap.searcher}, nil
}

func (h policyHost) Escalate(ctx context.Context, seenRate float64) (bool, error) {
	return h.d.escalate(ctx, seenRate, h.name)
}

func (h policyHost) Market() marketplace.Market { return h.d.market }

func (h policyHost) Sources() []policy.Source {
	h.d.mu.Lock()
	defer h.d.mu.Unlock()
	out := make([]policy.Source, len(h.d.sources))
	for i, s := range h.d.sources {
		out[i] = policy.Source{Table: s.table, FDs: s.fds}
	}
	return out
}

func (h policyHost) Limits() policy.Limits {
	return policy.Limits{
		MaxSampleRounds: h.d.cfg.MaxSampleRounds,
		RateGrowth:      h.d.cfg.RateGrowth,
		SampleRate:      h.d.cfg.SampleRate,
		SampleSeed:      h.d.cfg.SampleSeed,
		Workers:         h.d.cfg.Workers,
		MaxJoinAttrs:    h.d.cfg.MaxJoinAttrs,
	}
}

func (h policyHost) RecordSpend(r policy.SpendRound) {
	h.d.mu.Lock()
	defer h.d.mu.Unlock()
	h.d.sampleCost += r.FullCost + r.DeltaCost
	h.d.rounds = append(h.d.rounds, SampleRound{
		FromRate: r.FromRate, ToRate: r.ToRate,
		FullCost: r.FullCost, DeltaCost: r.DeltaCost,
		Policy: h.name,
	})
}

// resolvePolicy picks the request's policy (request name wins over the
// configured default) and merges the parameter maps, request keys last.
func (d *Dance) resolvePolicy(req search.Request) (policy.Policy, map[string]float64, error) {
	name := req.Policy
	if name == "" {
		name = d.cfg.Policy
	}
	p, err := policy.Get(name)
	if err != nil {
		return nil, nil, err
	}
	var params map[string]float64
	if len(d.cfg.PolicyParams) > 0 || len(req.PolicyParams) > 0 {
		params = make(map[string]float64, len(d.cfg.PolicyParams)+len(req.PolicyParams))
		for k, v := range d.cfg.PolicyParams {
			params[k] = v
		}
		for k, v := range req.PolicyParams {
			params[k] = v
		}
	}
	return p, params, nil
}

// Policies lists the registered acquisition policies (sorted names).
func Policies() []string { return policy.Names() }

// Acquire runs the online phase under the request's acquisition policy
// (Request.Policy, falling back to Config.Policy, falling back to the
// paper's own "dance" search): the policy searches the offline state,
// decides sample-rate escalation (up to MaxSampleRounds) and may buy its
// own pilot samples, every purchase landing in the middleware ledger.
// Cancelling ctx stops the search mid-chain and aborts in-flight
// marketplace calls.
func (d *Dance) Acquire(ctx context.Context, req search.Request) (*Plan, error) {
	if req.Workers == 0 {
		req.Workers = d.cfg.Workers
	}
	p, params, err := d.resolvePolicy(req)
	if err != nil {
		return nil, err
	}
	req.Policy = p.Name()
	ranked, err := p.Acquire(ctx, policyHost{d: d, name: p.Name()}, policy.Request{Request: req, Params: params})
	if err != nil {
		return nil, err
	}
	if len(ranked) == 0 || ranked[0].Result == nil {
		return nil, fmt.Errorf("dance: policy %s returned no plan: %w", p.Name(), search.ErrInfeasible)
	}
	return planFromResult(ranked[0].Result, req), nil
}

// RankedPlan is one of several scored acquisition options (the paper's
// future-work top-k recommendation mode).
type RankedPlan struct {
	Plan  *Plan
	Score float64
}

// AcquireTopK returns up to k scored acquisition options instead of the
// single correlation-best plan, ranked by the combined score of
// correlation, quality, join informativeness and price. Policy selection,
// sample-rate escalation and cancellation apply as in Acquire.
func (d *Dance) AcquireTopK(ctx context.Context, req search.Request, k int, weights search.ScoreWeights) ([]RankedPlan, error) {
	if req.Workers == 0 {
		req.Workers = d.cfg.Workers
	}
	if k <= 0 {
		k = 3
	}
	p, params, err := d.resolvePolicy(req)
	if err != nil {
		return nil, err
	}
	req.Policy = p.Name()
	ranked, err := p.Acquire(ctx, policyHost{d: d, name: p.Name()},
		policy.Request{Request: req, K: k, Weights: weights, Params: params})
	if err != nil {
		return nil, err
	}
	out := make([]RankedPlan, len(ranked))
	for i, r := range ranked {
		out[i] = RankedPlan{Plan: planFromResult(r.Result, req), Score: r.Score}
	}
	return out, nil
}

// planFromResult materializes the purchase queries of a search result. It
// resolves instance names through the result's own graph, so plans stay
// consistent with the snapshot that produced them even if the middleware
// has re-sampled since.
func planFromResult(res *search.Result, req search.Request) *Plan {
	purchase := res.TG.Purchase()
	idxs := make([]int, 0, len(purchase))
	for v := range purchase {
		idxs = append(idxs, v)
	}
	sort.Ints(idxs)
	plan := &Plan{TG: res.TG, Est: res.Est, Evals: res.Evals, Request: req}
	for _, v := range idxs {
		plan.Queries = append(plan.Queries, pricing.Query{
			Instance: res.TG.G.Instances[v].Name,
			Attrs:    purchase[v],
		})
	}
	return plan
}

// Purchase is the outcome of executing a plan against the marketplace.
type Purchase struct {
	// Tables are the bought projections, in query order.
	Tables []*relation.Table
	// Joined is the equi-join of owned sources and purchases along the
	// plan's target graph.
	Joined *relation.Table
	// TotalPrice is the sum actually charged by the marketplace.
	TotalPrice float64
	// Realized are the metrics measured on the purchased (full) data:
	// the real correlation and quality, not the sample estimates.
	Realized search.Metrics
}

// JoinStep is one hop of a plan's join path, by table name: the durable form
// of the target graph's relation.PathStep, resolvable against whatever tables
// an execution actually bought.
type JoinStep struct {
	Table string
	On    []string
}

// PlanRecord is the flattened, self-contained form of a Plan: everything
// ExecuteRecord needs, reduced to plain values. Service layers journal plan
// records (via persist.Store) and can execute them after a restart, when the
// in-memory target graph that produced the plan is gone.
type PlanRecord struct {
	Queries []pricing.Query
	Steps   []JoinStep
	Weight  float64
	FDs     []fd.FD
	Est     search.Metrics
	// Evals counts the producing search's metric evaluations.
	Evals   int
	Request search.Request
}

// Record flattens the plan's target graph into a PlanRecord.
func (p *Plan) Record() (*PlanRecord, error) {
	if p == nil || p.TG == nil {
		return nil, fmt.Errorf("dance: nil plan")
	}
	steps, err := p.TG.JoinSteps()
	if err != nil {
		return nil, err
	}
	rec := &PlanRecord{
		Queries: append([]pricing.Query(nil), p.Queries...),
		Weight:  p.TG.Weight(),
		FDs:     p.TG.FDs(),
		Est:     p.Est,
		Evals:   p.Evals,
		Request: p.Request,
	}
	for _, st := range steps {
		rec.Steps = append(rec.Steps, JoinStep{Table: st.Table.Name, On: st.On})
	}
	return rec, nil
}

// Execute buys every query of the plan and reassembles the join.
//
// On error the returned *Purchase is still non-nil once any projection was
// bought: its Tables and TotalPrice record what the marketplace actually
// charged before the failure, so callers (ledgers, billing) can account
// for partial spend. Only a nil or never-started plan returns a nil
// Purchase.
func (d *Dance) Execute(ctx context.Context, plan *Plan) (*Purchase, error) {
	rec, err := plan.Record()
	if err != nil {
		return nil, err
	}
	return d.ExecuteRecord(ctx, rec)
}

// ExecuteRecord buys every query of a flattened plan record and reassembles
// the join: the restart-safe sibling of Execute. A record loaded from a
// persist journal executes exactly like the freshly-searched plan it was
// flattened from. Partial-spend error semantics match Execute.
func (d *Dance) ExecuteRecord(ctx context.Context, rec *PlanRecord) (*Purchase, error) {
	if rec == nil || len(rec.Steps) == 0 {
		return nil, fmt.Errorf("dance: nil plan")
	}
	bought := map[string]*relation.Table{}
	p := &Purchase{}
	for _, q := range rec.Queries {
		t, price, err := d.market.ExecuteProjection(ctx, q)
		if err != nil {
			return p, fmt.Errorf("dance: executing %s: %w", q, err)
		}
		p.Tables = append(p.Tables, t)
		p.TotalPrice += price
		bought[q.Instance] = t
	}
	// Owned sources join with their full local tables.
	d.mu.Lock()
	for _, s := range d.sources {
		bought[s.table.Name] = s.table
	}
	d.mu.Unlock()
	full := make([]relation.PathStep, len(rec.Steps))
	for i, st := range rec.Steps {
		bt, ok := bought[st.Table]
		if !ok {
			return p, fmt.Errorf("dance: plan references %q which was neither bought nor owned", st.Table)
		}
		full[i] = relation.PathStep{Table: bt, On: st.On}
	}
	joined, err := relation.JoinPath(full)
	if err != nil {
		return p, err
	}
	p.Joined = joined

	// Realized metrics on the actual purchase.
	x, y, err := corrAttrsOf(rec.Request)
	if err != nil {
		return p, err
	}
	p.Realized.Weight = rec.Weight
	p.Realized.Price = p.TotalPrice
	if joined.NumRows() > 0 {
		if p.Realized.Correlation, err = infotheory.Correlation(joined, x, y); err != nil {
			return p, err
		}
		if p.Realized.Quality, err = fd.QualitySet(joined, rec.FDs); err != nil {
			return p, err
		}
	}
	return p, nil
}

// corrAttrsOf mirrors search.Request.corrAttrs for realized metrics.
func corrAttrsOf(r search.Request) (x, y []string, err error) {
	if len(r.TargetAttrs) == 0 {
		return nil, nil, fmt.Errorf("dance: request has no target attributes")
	}
	if len(r.SourceAttrs) > 0 {
		return r.SourceAttrs, r.TargetAttrs, nil
	}
	if len(r.TargetAttrs) < 2 {
		return nil, nil, fmt.Errorf("dance: source-less request needs ≥ 2 target attributes")
	}
	return r.TargetAttrs[:1], r.TargetAttrs[1:], nil
}
