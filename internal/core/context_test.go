package core

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"github.com/dance-db/dance/internal/marketplace"
	"github.com/dance-db/dance/internal/relation"
	"github.com/dance-db/dance/internal/search"
)

// Regression for the concurrent-Acquire data race: sample-rate escalation
// used to mutate d.rate and d.graph with no synchronization, so two
// simultaneous acquisitions that both fail their first round raced on the
// shared middleware state. Both requests here are infeasible (quality floor
// no sample can reach), forcing every goroutine through the escalation
// path. Run with -race for full value.
func TestConcurrentAcquireEscalationIsRaceFree(t *testing.T) {
	m, src := buildScenario(50)
	d := New(m, Config{SampleRate: 0.05, SampleSeed: 9, MaxSampleRounds: 6, RateGrowth: 3})
	d.AddSource(src, nil)

	req := acquisitionRequest()
	req.Beta = 2 // quality is ≤ 1: infeasible at every rate → escalate to the cap
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := req
			r.Seed = seed
			if _, err := d.Acquire(bg, r); err == nil {
				t.Error("β > 1 must be infeasible")
			}
		}(int64(i + 1))
	}
	wg.Wait()
	if got := d.SampleRate(); got != 1 {
		t.Fatalf("escalation should cap the rate at 1, got %v", got)
	}
	// Escalation is serialized: the rate walks 0.05 → 0.15 → 0.45 → 1
	// exactly once per step no matter how many requests demanded it, so the
	// marketplace bills one sample round per distinct rate — 4 rounds of 3
	// datasets each — not one per (request, round).
	entries := 0
	for _, e := range m.Ledger().Entries() {
		if e.Kind == "sample" {
			entries++
		}
	}
	if entries > 12 {
		t.Fatalf("duplicate escalation rounds: %d sample charges, want ≤ 12", entries)
	}
}

// slowMarketHandler delays every marketplace response until the client
// gives up or the test releases the stall.
func slowMarketHandler(m marketplace.Market, release <-chan struct{}) http.Handler {
	inner := marketplace.Handler(m)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-release:
		case <-r.Context().Done():
			return
		}
		inner.ServeHTTP(w, r)
	})
}

// Cancelling mid-Offline against a slow remote marketplace must abort the
// in-flight HTTP calls and return promptly with context.Canceled — the
// pre-context client blocked forever here.
func TestOfflineCancelsAgainstSlowMarketplace(t *testing.T) {
	m, src := buildScenario(51)
	release := make(chan struct{})
	srv := httptest.NewServer(slowMarketHandler(m, release))
	// LIFO: release any stalled handlers first so Close can drain them.
	defer srv.Close()
	defer close(release)

	d := New(marketplace.NewClient(srv.URL), Config{SampleRate: 0.8, SampleSeed: 3})
	d.AddSource(src, nil)

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	err := d.Offline(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
}

// buildSwappableScenario lists b(k,j1,j2) and c(j1,j2,y) for sale: the b–c
// edge shares two attributes, so the MCMC has variants to walk over and a
// huge iteration budget keeps it busy until cancelled. (buildScenario's
// single-attribute edges give the walk nothing to swap, so it exits
// immediately regardless of Iterations.)
func buildSwappableScenario() (*marketplace.InMemory, *relation.Table) {
	src := relation.NewTable("a", relation.NewSchema(
		relation.Cat("k", relation.KindInt),
		relation.Num("x", relation.KindFloat),
	))
	b := relation.NewTable("b", relation.NewSchema(
		relation.Cat("k", relation.KindInt),
		relation.Cat("j1", relation.KindInt),
		relation.Cat("j2", relation.KindInt),
	))
	c := relation.NewTable("c", relation.NewSchema(
		relation.Cat("j1", relation.KindInt),
		relation.Cat("j2", relation.KindInt),
		relation.Cat("y", relation.KindString),
	))
	for k := int64(0); k < 30; k++ {
		src.AppendValues(relation.IntValue(k), relation.FloatValue(float64(k)))
		b.AppendValues(relation.IntValue(k), relation.IntValue(k%6), relation.IntValue(k%5))
	}
	for j1 := int64(0); j1 < 6; j1++ {
		for j2 := int64(0); j2 < 5; j2++ {
			c.AppendValues(relation.IntValue(j1), relation.IntValue(j2),
				relation.StringValue(string(rune('a'+(j1+j2)%4))))
		}
	}
	m := marketplace.NewInMemory(nil)
	m.Register(b, nil)
	m.Register(c, nil)
	return m, src
}

// A deadline on Acquire must interrupt a long MCMC search mid-chain.
func TestAcquireDeadlineStopsLongSearch(t *testing.T) {
	m, src := buildSwappableScenario()
	d := New(m, Config{SampleRate: 1, SampleSeed: 3})
	d.AddSource(src, nil)
	if err := d.Offline(context.Background()); err != nil {
		t.Fatal(err)
	}
	req := search.Request{
		SourceAttrs: []string{"x"},
		TargetAttrs: []string{"y"},
		Budget:      1e9,
		Alpha:       100,
		Iterations:  1 << 30, // far beyond what can run before the deadline
		Seed:        5,
	}

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := d.Acquire(ctx, req)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("deadline took %v to stop the search", elapsed)
	}
}
