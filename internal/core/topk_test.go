package core

import (
	"testing"

	"github.com/dance-db/dance/internal/search"
)

func TestAcquireTopK(t *testing.T) {
	m, src := buildScenario(30)
	d := New(m, Config{SampleRate: 0.9, SampleSeed: 5})
	d.AddSource(src, nil)
	req := acquisitionRequest()
	options, err := d.AcquireTopK(bg, req, 3, search.DefaultScoreWeights())
	if err != nil {
		t.Fatal(err)
	}
	if len(options) == 0 {
		t.Fatal("no options")
	}
	for i, o := range options {
		if o.Plan == nil || len(o.Plan.Queries) == 0 {
			t.Fatalf("option %d has no plan", i)
		}
		if i > 0 && o.Score > options[i-1].Score+1e-12 {
			t.Fatal("options not sorted by score")
		}
	}
	// The best option must be executable.
	purchase, err := d.Execute(bg, options[0].Plan)
	if err != nil {
		t.Fatal(err)
	}
	if purchase.Joined.NumRows() == 0 {
		t.Fatal("top option join is empty")
	}
}

func TestAcquireTopKInfeasible(t *testing.T) {
	m, src := buildScenario(31)
	d := New(m, Config{SampleRate: 0.9, SampleSeed: 5, MaxSampleRounds: 1})
	d.AddSource(src, nil)
	req := acquisitionRequest()
	req.Budget = 1e-9
	if _, err := d.AcquireTopK(bg, req, 3, search.DefaultScoreWeights()); err == nil {
		t.Fatal("unaffordable top-k should fail")
	}
}
