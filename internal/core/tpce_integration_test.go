package core

import (
	"testing"

	"github.com/dance-db/dance/internal/marketplace"
	"github.com/dance-db/dance/internal/search"
	"github.com/dance-db/dance/internal/tpce"
)

// TestTPCEEndToEnd drives the complete pipeline at dataset scale: a
// marketplace listing all 29 TPC-E tables, offline sampling, the length-8
// acquisition query of Sec 6.1, purchase, and realized metrics.
func TestTPCEEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full 29-table pipeline")
	}
	d := tpce.Generate(tpce.Config{Scale: 1, Seed: 7, DirtyFraction: 0.2})
	m := marketplace.NewInMemory(nil)
	for _, tab := range d.Tables {
		m.Register(tab, d.FDs[tab.Name])
	}
	mw := New(m, Config{SampleRate: 0.8, SampleSeed: 11})
	plan, err := mw.Acquire(bg, search.Request{
		SourceAttrs: []string{"cabalance"},
		TargetAttrs: []string{"sectorname"},
		Iterations:  60,
		Seed:        3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Queries) < 5 {
		t.Fatalf("the cabalance→sectorname spine needs several instances, plan buys %d", len(plan.Queries))
	}
	purchase, err := mw.Execute(bg, plan)
	if err != nil {
		t.Fatal(err)
	}
	if purchase.Joined.NumRows() == 0 {
		t.Fatal("purchased join is empty")
	}
	if !purchase.Joined.Schema.Has("cabalance") || !purchase.Joined.Schema.Has("sectorname") {
		t.Fatalf("join misses requested attributes: %v", purchase.Joined.Schema.Names())
	}
	if purchase.TotalPrice <= 0 || purchase.TotalPrice > plan.Est.Price+1e-6 {
		t.Fatalf("charged %v vs quoted %v", purchase.TotalPrice, plan.Est.Price)
	}
	if m.Ledger().TotalByKind("sample") != mw.SampleCost() {
		t.Fatal("sample billing mismatch")
	}
}
