package core

import (
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/dance-db/dance/internal/marketplace"
	"github.com/dance-db/dance/internal/pricing"
)

// newLegacyServer serves a marketplace without the /sample_delta endpoint,
// imitating a server built before delta sampling existed.
func newLegacyServer(m marketplace.Market) *httptest.Server {
	inner := marketplace.Handler(m)
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/sample_delta") {
			http.NotFound(w, r)
			return
		}
		inner.ServeHTTP(w, r)
	}))
}

// TestEscalationBillsOnlyDeltas is the ledger proof of the acceptance
// criterion: escalating 0.05 → 0.15 → 0.45 → 1 bills, per dataset, exactly
// SampleDiscount(full, to) − SampleDiscount(full, from) per round — and the
// total is strictly less than re-buying a complete sample every round.
func TestEscalationBillsOnlyDeltas(t *testing.T) {
	m, src := buildScenario(50)
	d := New(m, Config{SampleRate: 0.05, SampleSeed: 3, RateGrowth: 3, MaxSampleRounds: 4})
	d.AddSource(src, nil)
	if err := d.Offline(bg); err != nil {
		t.Fatal(err)
	}
	var ladder []float64 // the achieved rates: ≈0.15, ≈0.45, 1
	for i := 0; i < 3; i++ {
		retry, err := d.Escalate(bg)
		if err != nil {
			t.Fatal(err)
		}
		if !retry {
			t.Fatalf("escalation %d reported nothing to do", i)
		}
		ladder = append(ladder, d.SampleRate())
	}
	for i, approx := range []float64{0.15, 0.45, 1} {
		if math.Abs(ladder[i]-approx) > 1e-9 {
			t.Fatalf("escalation ladder = %v, want ≈ [0.15 0.45 1]", ladder)
		}
	}
	if retry, err := d.Escalate(bg); err != nil || retry {
		t.Fatalf("escalating past rate 1 should be a no-op: %v %v", retry, err)
	}

	// Per-dataset full prices, quoted for free.
	fulls := map[string]float64{}
	catalog, err := m.Catalog(bg)
	if err != nil {
		t.Fatal(err)
	}
	sumFull := 0.0
	for _, info := range catalog {
		names := make([]string, len(info.Attrs))
		for i, c := range info.Attrs {
			names[i] = c.Name
		}
		p, err := m.QuoteProjection(bg, info.Name, names)
		if err != nil {
			t.Fatal(err)
		}
		fulls[info.Name] = p
		sumFull += p
	}

	// Exact charges: the first round bills SampleDiscount(full, 0.05), each
	// escalation the discount difference. Compare entry by entry.
	wantSamples := map[string]float64{}
	wantDeltas := map[string][]float64{}
	for name, full := range fulls {
		wantSamples[name] = pricing.SampleDiscount(full, 0.05)
		prev := 0.05
		for _, to := range ladder {
			wantDeltas[name] = append(wantDeltas[name],
				pricing.SampleDiscount(full, to)-pricing.SampleDiscount(full, prev))
			prev = to
		}
	}
	gotDeltas := map[string][]float64{}
	for _, e := range m.Ledger().Entries() {
		switch e.Kind {
		case "sample":
			if e.Amount != wantSamples[e.Dataset] {
				t.Fatalf("initial sample of %s billed %v, want %v", e.Dataset, e.Amount, wantSamples[e.Dataset])
			}
			delete(wantSamples, e.Dataset)
		case "sample_delta":
			gotDeltas[e.Dataset] = append(gotDeltas[e.Dataset], e.Amount)
		}
	}
	if len(wantSamples) != 0 {
		t.Fatalf("missing initial sample charges for %v", wantSamples)
	}
	for name, want := range wantDeltas {
		got := gotDeltas[name]
		if len(got) != len(want) {
			t.Fatalf("%s: %d delta charges, want %d", name, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s delta %d billed %v, want exactly %v", name, i, got[i], want[i])
			}
		}
	}

	// Strictly cheaper than four full rounds (0.05 + 0.15 + 0.45 + 1 full
	// prices), and ≈ one full-rate sample in total.
	total := d.SampleCost()
	fourRounds := sumFull * (0.05 + 0.15 + 0.45 + 1)
	if total >= fourRounds {
		t.Fatalf("incremental escalation billed %v, not less than full rounds %v", total, fourRounds)
	}
	if math.Abs(total-sumFull) > 1e-9*sumFull {
		t.Fatalf("escalation to rate 1 should cost ≈ one full sample (%v), billed %v", sumFull, total)
	}
	if lt := m.Ledger().TotalByKind("sample") + m.Ledger().TotalByKind("sample_delta"); lt != total {
		t.Fatalf("middleware cost %v disagrees with marketplace ledger %v", total, lt)
	}

	// The per-round spend log matches: one full round then delta-only rounds.
	rounds := d.SampleRounds()
	if len(rounds) != 4 {
		t.Fatalf("SampleRounds = %d, want 4", len(rounds))
	}
	if rounds[0].DeltaCost != 0 || rounds[0].FullCost <= 0 {
		t.Fatalf("round 0 should be full-cost only: %+v", rounds[0])
	}
	for i, r := range rounds[1:] {
		if r.FullCost != 0 || r.DeltaCost <= 0 {
			t.Fatalf("round %d should be delta-only: %+v", i+1, r)
		}
	}
}

// TestEscalatedStateMatchesFreshOffline pins end-to-end state equivalence:
// after escalating 0.05 → … → 1 the merged offline samples (row and
// columnar views) are identical to those of a middleware that sampled at
// rate 1 from scratch.
func TestEscalatedStateMatchesFreshOffline(t *testing.T) {
	m, src := buildScenario(51)
	esc := New(m, Config{SampleRate: 0.05, SampleSeed: 7, RateGrowth: 3})
	esc.AddSource(src, nil)
	if err := esc.Offline(bg); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := esc.Escalate(bg); err != nil {
			t.Fatal(err)
		}
	}
	fresh := New(m, Config{SampleRate: 1, SampleSeed: 7})
	fresh.AddSource(src, nil)
	if err := fresh.Offline(bg); err != nil {
		t.Fatal(err)
	}

	ge, gf := esc.Graph(), fresh.Graph()
	if len(ge.Instances) != len(gf.Instances) {
		t.Fatalf("instance counts differ: %d vs %d", len(ge.Instances), len(gf.Instances))
	}
	for i, ie := range ge.Instances {
		fi := gf.Instances[i]
		if ie.Name != fi.Name {
			t.Fatalf("instance order differs at %d: %s vs %s", i, ie.Name, fi.Name)
		}
		if ie.Sample.NumRows() != fi.Sample.NumRows() {
			t.Fatalf("%s: escalated sample %d rows, fresh %d", ie.Name, ie.Sample.NumRows(), fi.Sample.NumRows())
		}
		for r := range fi.Sample.Rows {
			for c := range fi.Sample.Rows[r] {
				if !fi.Sample.Rows[r][c].EqualValue(ie.Sample.Rows[r][c]) {
					t.Fatalf("%s: row %d differs after escalation", ie.Name, r)
				}
			}
		}
		if ie.Columnar != nil && fi.Columnar != nil {
			for j := 0; j < ie.Sample.Schema.Len(); j++ {
				ce, cf := ie.Columnar.Codes(j), fi.Columnar.Codes(j)
				if len(ce) != len(cf) {
					t.Fatalf("%s col %d: code lengths differ", ie.Name, j)
				}
				for r := range ce {
					if ce[r] != cf[r] {
						t.Fatalf("%s col %d row %d: merged code %d != fresh %d", ie.Name, j, r, ce[r], cf[r])
					}
				}
			}
		}
	}

	// And both middlewares find the same plan.
	pe, err := esc.Acquire(bg, acquisitionRequest())
	if err != nil {
		t.Fatal(err)
	}
	pf, err := fresh.Acquire(bg, acquisitionRequest())
	if err != nil {
		t.Fatal(err)
	}
	if len(pe.Queries) != len(pf.Queries) {
		t.Fatalf("plans differ: %v vs %v", pe.Queries, pf.Queries)
	}
	for i := range pe.Queries {
		if pe.Queries[i].String() != pf.Queries[i].String() {
			t.Fatalf("plans differ at query %d: %s vs %s", i, pe.Queries[i], pf.Queries[i])
		}
	}
	if pe.Est != pf.Est {
		t.Fatalf("estimated metrics differ: %+v vs %+v", pe.Est, pf.Est)
	}
}

// TestEscalationKeepsUnchangedCaches checks the per-dataset-version
// invalidation: after a same-rate Offline refresh (all deltas empty) every
// dataset keeps its version, so the rebuilt searcher serves evaluations
// from the shared cache without touching the marketplace sampling path
// again — and no money moves.
func TestEscalationKeepsUnchangedCaches(t *testing.T) {
	m, src := buildScenario(52)
	d := New(m, Config{SampleRate: 0.8, SampleSeed: 5})
	d.AddSource(src, nil)
	if _, err := d.Acquire(bg, acquisitionRequest()); err != nil {
		t.Fatal(err)
	}
	cost := d.SampleCost()
	entries := len(m.Ledger().Entries())

	// Refresh at the same rate: free, and versions unchanged.
	v0 := map[string]uint64{}
	for _, inst := range d.Graph().Instances {
		v0[inst.Name] = inst.Version
	}
	if err := d.Offline(bg); err != nil {
		t.Fatal(err)
	}
	if got := d.SampleCost(); got != cost {
		t.Fatalf("same-rate refresh charged money: %v → %v", cost, got)
	}
	if got := len(m.Ledger().Entries()); got != entries {
		t.Fatalf("same-rate refresh hit the marketplace sampler: %d → %d entries", entries, got)
	}
	for _, inst := range d.Graph().Instances {
		if inst.Version != v0[inst.Name] {
			t.Fatalf("%s version changed on a no-op refresh: %d → %d", inst.Name, v0[inst.Name], inst.Version)
		}
	}
	if _, err := d.Acquire(bg, acquisitionRequest()); err != nil {
		t.Fatal(err)
	}
}

// TestEscalationAgainstLegacyHTTPServer drives the middleware against a
// marketplace that predates /sample_delta: the client capability probe
// falls back to full samples, and the escalation still converges to the
// same offline state (it just cannot bill the difference).
func TestEscalationAgainstLegacyHTTPServer(t *testing.T) {
	backend, src := buildScenario(53)
	srv := newLegacyServer(backend)
	defer srv.Close()

	d := New(marketplace.NewClient(srv.URL), Config{SampleRate: 0.2, SampleSeed: 6, RateGrowth: 4})
	d.AddSource(src, nil)
	if err := d.Offline(bg); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Escalate(bg); err != nil {
		t.Fatal(err)
	}
	if got := d.SampleRate(); got != 0.8 {
		t.Fatalf("rate = %v, want 0.8", got)
	}
	fresh := New(backend, Config{SampleRate: 0.8, SampleSeed: 6})
	fresh.AddSource(src, nil)
	if err := fresh.Offline(bg); err != nil {
		t.Fatal(err)
	}
	for i, inst := range d.Graph().Instances {
		want := fresh.Graph().Instances[i]
		if inst.Name != want.Name || inst.Sample.NumRows() != want.Sample.NumRows() {
			t.Fatalf("legacy-fallback state diverged for %s: %d rows vs %d",
				inst.Name, inst.Sample.NumRows(), want.Sample.NumRows())
		}
	}
}
