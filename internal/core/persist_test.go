package core

import (
	"math"
	"testing"

	"github.com/dance-db/dance/internal/persist"
	"github.com/dance-db/dance/internal/search"
)

// TestPersistMakesRestartFree: a middleware journaling to a persist.Store is
// abandoned without any shutdown (fsync'd journal ≙ kill -9); a fresh
// middleware over the same directory restores the sample store from disk and
// its Offline round buys nothing from the marketplace.
func TestPersistMakesRestartFree(t *testing.T) {
	dir := t.TempDir()
	m, src := buildScenario(11)
	st, err := persist.Open(dir, persist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	d := New(m, Config{SampleRate: 0.6, SampleSeed: 9, Persist: st})
	d.AddSource(src, nil)
	if err := d.Offline(bg); err != nil {
		t.Fatal(err)
	}
	spent := m.Ledger().Total()
	if spent <= 0 {
		t.Fatal("first offline round should cost money")
	}
	// Crash: no Close, no flush beyond the per-append fsyncs.

	st2, err := persist.Open(dir, persist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	d2 := New(m, Config{SampleRate: 0.6, SampleSeed: 9, Persist: st2})
	d2.AddSource(src, nil)
	if err := d2.Offline(bg); err != nil {
		t.Fatal(err)
	}
	if got := m.Ledger().Total(); got != spent {
		t.Fatalf("restarted offline re-bought samples: ledger %v -> %v", spent, got)
	}
	if d2.SampleCost() != 0 {
		t.Fatalf("restarted middleware claims sample spend %v", d2.SampleCost())
	}
	if d2.SampleRate() != 0.6 {
		t.Fatalf("restored rate = %v", d2.SampleRate())
	}

	// The restored graph answers requests like the original.
	plan, err := d2.Acquire(bg, acquisitionRequest())
	if err != nil {
		t.Fatal(err)
	}
	want, err := d.Acquire(bg, acquisitionRequest())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(plan.Est.Correlation-want.Est.Correlation) > 1e-12 {
		t.Fatalf("restored estimate %v != original %v", plan.Est.Correlation, want.Est.Correlation)
	}
}

// TestPersistEscalationBuysOnlyDeltas: restarting with a higher configured
// rate tops up the restored holdings with delta purchases instead of
// re-buying full samples.
func TestPersistEscalationBuysOnlyDeltas(t *testing.T) {
	dir := t.TempDir()
	m, src := buildScenario(12)
	st, err := persist.Open(dir, persist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	d := New(m, Config{SampleRate: 0.4, SampleSeed: 9, Persist: st})
	d.AddSource(src, nil)
	if err := d.Offline(bg); err != nil {
		t.Fatal(err)
	}
	fullBefore := m.Ledger().TotalByKind("sample")

	st2, err := persist.Open(dir, persist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	d2 := New(m, Config{SampleRate: 0.8, SampleSeed: 9, Persist: st2})
	d2.AddSource(src, nil)
	if err := d2.Offline(bg); err != nil {
		t.Fatal(err)
	}
	if got := m.Ledger().TotalByKind("sample"); got != fullBefore {
		t.Fatalf("restart at a higher rate re-bought full samples: %v -> %v", fullBefore, got)
	}
	if m.Ledger().TotalByKind("sample_delta") <= 0 {
		t.Fatal("escalated restart should buy deltas")
	}
	rounds := d2.SampleRounds()
	if len(rounds) != 1 || rounds[0].FullCost != 0 || rounds[0].DeltaCost <= 0 {
		t.Fatalf("rounds = %+v", rounds)
	}
	if rounds[0].FromRate != 0.4 || rounds[0].ToRate != 0.8 {
		t.Fatalf("round rates = %+v", rounds[0])
	}
}

// TestPlanRecordExecutesLikePlan: the flattened record of a plan executes to
// the same purchase as the plan itself.
func TestPlanRecordExecutesLikePlan(t *testing.T) {
	m, src := buildScenario(13)
	d := New(m, Config{SampleRate: 0.9, SampleSeed: 5})
	d.AddSource(src, nil)
	plan, err := d.Acquire(bg, acquisitionRequest())
	if err != nil {
		t.Fatal(err)
	}
	rec, err := plan.Record()
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Steps) == 0 || rec.Weight != plan.TG.Weight() {
		t.Fatalf("record = %+v", rec)
	}
	direct, err := d.Execute(bg, plan)
	if err != nil {
		t.Fatal(err)
	}
	viaRec, err := d.ExecuteRecord(bg, rec)
	if err != nil {
		t.Fatal(err)
	}
	if direct.TotalPrice != viaRec.TotalPrice ||
		direct.Realized.Correlation != viaRec.Realized.Correlation ||
		direct.Realized.Quality != viaRec.Realized.Quality ||
		direct.Joined.NumRows() != viaRec.Joined.NumRows() {
		t.Fatalf("record execution diverged:\n direct %+v\n record %+v", direct, viaRec)
	}
}

func TestExecuteRecordNil(t *testing.T) {
	m, _ := buildScenario(14)
	d := New(m, Config{})
	if _, err := d.ExecuteRecord(bg, nil); err == nil {
		t.Fatal("nil record must fail")
	}
	if _, err := d.ExecuteRecord(bg, &PlanRecord{Request: search.Request{TargetAttrs: []string{"x", "y"}}}); err == nil {
		t.Fatal("stepless record must fail")
	}
}
