package core

import (
	"context"
	"math/rand"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/dance-db/dance/internal/fd"
	"github.com/dance-db/dance/internal/marketplace"
	"github.com/dance-db/dance/internal/relation"
	"github.com/dance-db/dance/internal/search"
)

var bg = context.Background()

// buildScenario populates a marketplace with a correlated chain
// mid1(key1,key2) — mid2(key2,key3) — tgt(key3,yval) and returns the
// shopper's owned source table src(key1, xval).
func buildScenario(seed int64) (*marketplace.InMemory, *relation.Table) {
	rng := rand.New(rand.NewSource(seed))
	const n = 400

	src := relation.NewTable("src", relation.NewSchema(
		relation.Cat("key1", relation.KindInt),
		relation.Num("xval", relation.KindFloat),
	))
	mid1 := relation.NewTable("mid1", relation.NewSchema(
		relation.Cat("key1", relation.KindInt),
		relation.Cat("key2", relation.KindInt),
	))
	mid2 := relation.NewTable("mid2", relation.NewSchema(
		relation.Cat("key2", relation.KindInt),
		relation.Cat("key3", relation.KindInt),
	))
	tgt := relation.NewTable("tgt", relation.NewSchema(
		relation.Cat("key3", relation.KindInt),
		relation.Cat("yval", relation.KindString),
	))
	for i := 0; i < n; i++ {
		k1 := int64(rng.Intn(12))
		src.AppendValues(relation.IntValue(k1), relation.FloatValue(float64(k1)*10+rng.Float64()))
	}
	for k1 := int64(0); k1 < 12; k1++ {
		for rep := 0; rep < 5; rep++ {
			mid1.AppendValues(relation.IntValue(k1), relation.IntValue(k1%6))
		}
	}
	for k2 := int64(0); k2 < 6; k2++ {
		for rep := 0; rep < 4; rep++ {
			mid2.AppendValues(relation.IntValue(k2), relation.IntValue(k2%3))
		}
	}
	for k3 := int64(0); k3 < 3; k3++ {
		for rep := 0; rep < 6; rep++ {
			tgt.AppendValues(relation.IntValue(k3), relation.StringValue(string(rune('a'+k3))))
		}
	}
	m := marketplace.NewInMemory(nil)
	m.Register(mid1, []fd.FD{fd.New("key2", "key1")})
	m.Register(mid2, []fd.FD{fd.New("key3", "key2")})
	m.Register(tgt, []fd.FD{fd.New("yval", "key3")})
	return m, src
}

func acquisitionRequest() search.Request {
	return search.Request{
		SourceAttrs: []string{"xval"},
		TargetAttrs: []string{"yval"},
		Budget:      1e9,
		Alpha:       10,
		Beta:        0,
		Iterations:  40,
		Seed:        1,
	}
}

func TestOfflineBuildsGraphAndPaysForSamples(t *testing.T) {
	m, src := buildScenario(1)
	d := New(m, Config{SampleRate: 0.8, SampleSeed: 3})
	d.AddSource(src, nil)
	if err := d.Offline(bg); err != nil {
		t.Fatal(err)
	}
	g := d.Graph()
	if g == nil || len(g.Instances) != 4 {
		t.Fatalf("graph instances = %v", g)
	}
	if d.SampleCost() <= 0 {
		t.Fatal("samples should cost money")
	}
	if m.Ledger().TotalByKind("sample") != d.SampleCost() {
		t.Fatal("ledger and middleware disagree on sample cost")
	}
	// Owned source is in the graph, free.
	si := g.InstanceIndex("src")
	if si < 0 || !g.Instances[si].Owned {
		t.Fatal("owned source missing from join graph")
	}
}

func TestAcquireProducesExecutablePlan(t *testing.T) {
	m, src := buildScenario(2)
	d := New(m, Config{SampleRate: 0.9, SampleSeed: 5})
	d.AddSource(src, nil)
	plan, err := d.Acquire(bg, acquisitionRequest())
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Queries) == 0 {
		t.Fatal("plan has no queries")
	}
	for _, q := range plan.Queries {
		if q.Instance == "src" {
			t.Fatal("plan purchases the shopper's own data")
		}
		if !strings.HasPrefix(q.String(), "SELECT ") {
			t.Fatalf("query %q is not SQL-shaped", q.String())
		}
	}
	purchase, err := d.Execute(bg, plan)
	if err != nil {
		t.Fatal(err)
	}
	if purchase.Joined.NumRows() == 0 {
		t.Fatal("joined purchase is empty")
	}
	if !purchase.Joined.Schema.Has("xval") || !purchase.Joined.Schema.Has("yval") {
		t.Fatalf("join misses requested attributes: %v", purchase.Joined.Schema.Names())
	}
	if purchase.Realized.Correlation <= 0 {
		t.Fatalf("realized correlation = %v", purchase.Realized.Correlation)
	}
	if purchase.TotalPrice <= 0 {
		t.Fatal("purchase should cost money")
	}
	if m.Ledger().TotalByKind("query") != purchase.TotalPrice {
		t.Fatal("ledger and purchase disagree")
	}
}

func TestAcquireRespectsBudget(t *testing.T) {
	m, src := buildScenario(3)
	d := New(m, Config{SampleRate: 0.9, SampleSeed: 5, MaxSampleRounds: 1})
	d.AddSource(src, nil)
	req := acquisitionRequest()
	req.Budget = 1e-9
	if _, err := d.Acquire(bg, req); err == nil {
		t.Fatal("unaffordable acquisition should fail")
	}
}

func TestAcquireEscalatesSampleRate(t *testing.T) {
	m, src := buildScenario(4)
	d := New(m, Config{SampleRate: 0.01, SampleSeed: 9, MaxSampleRounds: 6, RateGrowth: 4})
	d.AddSource(src, nil)
	req := acquisitionRequest()
	req.Beta = 0.2 // empty sample joins have quality 0 → infeasible until samples suffice
	plan, err := d.Acquire(bg, req)
	if err != nil {
		t.Fatalf("escalation should eventually succeed: %v", err)
	}
	if d.SampleRate() <= 0.01 {
		t.Fatalf("sample rate did not escalate: %v", d.SampleRate())
	}
	if plan.Est.Quality < 0.2 {
		t.Fatalf("final plan quality %v below β", plan.Est.Quality)
	}
}

func TestExecuteNilPlan(t *testing.T) {
	m, _ := buildScenario(5)
	d := New(m, Config{})
	if _, err := d.Execute(bg, nil); err == nil {
		t.Fatal("nil plan should error")
	}
}

func TestAcquireWithoutOfflineAutoRuns(t *testing.T) {
	m, src := buildScenario(6)
	d := New(m, Config{SampleRate: 0.9, SampleSeed: 2})
	d.AddSource(src, nil)
	if _, err := d.Acquire(bg, acquisitionRequest()); err != nil {
		t.Fatal(err)
	}
	if d.Graph() == nil {
		t.Fatal("offline phase should have run implicitly")
	}
}

func TestDiscoverFDsWhenUnpublished(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tab := relation.NewTable("zips", relation.NewSchema(
		relation.Cat("zip", relation.KindInt),
		relation.Cat("state", relation.KindString),
		relation.Cat("other", relation.KindInt),
	))
	for i := 0; i < 300; i++ {
		z := int64(rng.Intn(20))
		tab.AppendValues(relation.IntValue(z),
			relation.StringValue(string(rune('A'+z%5))),
			relation.IntValue(int64(rng.Intn(5))))
	}
	m := marketplace.NewInMemory(nil)
	m.Register(tab, nil) // no published FDs
	d := New(m, Config{SampleRate: 1, DiscoverFDs: true})
	if err := d.Offline(bg); err != nil {
		t.Fatal(err)
	}
	gi := d.Graph().InstanceIndex("zips")
	if len(d.Graph().Instances[gi].FDs) == 0 {
		t.Fatal("FD discovery found nothing")
	}
	found := false
	for _, f := range d.Graph().Instances[gi].FDs {
		if f.RHS == "state" && len(f.LHS) == 1 && f.LHS[0] == "zip" {
			found = true
		}
	}
	if !found {
		t.Fatalf("zip → state not discovered: %v", d.Graph().Instances[gi].FDs)
	}
}

// End-to-end over HTTP: the same flow with a remote marketplace.
func TestEndToEndOverHTTP(t *testing.T) {
	backend, src := buildScenario(8)
	srv := httptest.NewServer(marketplace.Handler(backend))
	defer srv.Close()

	d := New(marketplace.NewClient(srv.URL), Config{SampleRate: 0.9, SampleSeed: 5})
	d.AddSource(src, nil)
	plan, err := d.Acquire(bg, acquisitionRequest())
	if err != nil {
		t.Fatal(err)
	}
	purchase, err := d.Execute(bg, plan)
	if err != nil {
		t.Fatal(err)
	}
	if purchase.Joined.NumRows() == 0 || purchase.Realized.Correlation <= 0 {
		t.Fatalf("HTTP end-to-end failed: rows=%d corr=%v",
			purchase.Joined.NumRows(), purchase.Realized.Correlation)
	}
}
