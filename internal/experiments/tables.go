package experiments

import (
	"context"
	"fmt"

	"github.com/dance-db/dance/internal/fd"
	"github.com/dance-db/dance/internal/relation"
	"github.com/dance-db/dance/internal/search"
	"github.com/dance-db/dance/internal/tpce"
	"github.com/dance-db/dance/internal/tpch"
)

// Table5Options parameterize the dataset-description table.
type Table5Options struct {
	Scale  int
	Seed   int64
	FDOpts fd.DiscoveryOptions
}

func (o Table5Options) withDefaults() Table5Options {
	if o.Scale <= 0 {
		o.Scale = 2
	}
	if o.FDOpts.MaxError == 0 && o.FDOpts.MaxLHS == 0 {
		o.FDOpts = fd.DiscoveryOptions{MaxError: 0.1, MaxLHS: 2, MaxRows: 500, MinDistinct: 2}
	}
	return o
}

// Table5 regenerates the paper's Table 5: per-dataset instance counts,
// min/max instance sizes, min/max attribute counts, and the average number
// of AFDs per table (θ = 0.1, discovered by the TANE-style miner).
func Table5(ctx context.Context, opts Table5Options) (Table, error) {
	opts = opts.withDefaults()
	tab := Table{
		ID:    "table5",
		Title: "Dataset description (discovered AFDs at θ=0.1)",
		Headers: []string{"dataset", "instances", "min_rows(table)", "max_rows(table)",
			"min_attrs(table)", "max_attrs(table)", "avg_fds_per_table"},
	}
	type gen struct {
		name   string
		tables []namedTable
	}
	hd := tpch.Generate(tpch.Config{Scale: opts.Scale, Seed: opts.Seed, DirtyFraction: 0.3})
	ed := tpce.Generate(tpce.Config{Scale: opts.Scale, Seed: opts.Seed, DirtyFraction: 0.2})
	var hts, ets []namedTable
	for _, t := range hd.Tables {
		hts = append(hts, namedTable{name: t.Name, rows: t.NumRows(), cols: t.NumCols(), t: t})
	}
	for _, t := range ed.Tables {
		ets = append(ets, namedTable{name: t.Name, rows: t.NumRows(), cols: t.NumCols(), t: t})
	}
	for _, g := range []gen{{"TPC-H", hts}, {"TPC-E", ets}} {
		minRows, maxRows := g.tables[0], g.tables[0]
		minAttrs, maxAttrs := g.tables[0], g.tables[0]
		totalFDs := 0
		for _, nt := range g.tables {
			if nt.rows < minRows.rows {
				minRows = nt
			}
			if nt.rows > maxRows.rows {
				maxRows = nt
			}
			if nt.cols < minAttrs.cols {
				minAttrs = nt
			}
			if nt.cols > maxAttrs.cols {
				maxAttrs = nt
			}
			n, err := fd.Count(nt.t, opts.FDOpts)
			if err != nil {
				return tab, fmt.Errorf("table5 FD count on %s: %w", nt.name, err)
			}
			totalFDs += n
		}
		tab.Rows = append(tab.Rows, []string{
			g.name,
			fmt.Sprint(len(g.tables)),
			fmt.Sprintf("%d (%s)", minRows.rows, minRows.name),
			fmt.Sprintf("%d (%s)", maxRows.rows, maxRows.name),
			fmt.Sprintf("%d (%s)", minAttrs.cols, minAttrs.name),
			fmt.Sprintf("%d (%s)", maxAttrs.cols, maxAttrs.name),
			fmt.Sprintf("%.1f", float64(totalFDs)/float64(len(g.tables))),
		})
	}
	return tab, nil
}

type namedTable struct {
	name string
	rows int
	cols int
	t    *relation.Table
}

// FDCounts regenerates the Sec 6.1 FD measurements: the per-table AFD count
// at θ = 0.1 for the chosen dataset.
func FDCounts(ctx context.Context, dataset string, opts Table5Options) (Table, error) {
	opts = opts.withDefaults()
	tab := Table{
		ID:      "fdcount-" + dataset,
		Title:   fmt.Sprintf("Discovered AFDs per table (%s, θ=0.1, LHS ≤ %d)", dataset, opts.FDOpts.MaxLHS),
		Headers: []string{"table", "rows", "attrs", "afds"},
	}
	env, err := NewEnv(EnvConfig{Dataset: dataset, Scale: opts.Scale, Seed: opts.Seed, Rate: 1})
	if err != nil {
		return tab, err
	}
	for _, name := range env.Order {
		t := env.Tables[name]
		n, err := fd.Count(t, opts.FDOpts)
		if err != nil {
			return tab, err
		}
		tab.Rows = append(tab.Rows, []string{name, fmt.Sprint(t.NumRows()), fmt.Sprint(t.NumCols()), fmt.Sprint(n)})
	}
	return tab, nil
}

// Table6Options parameterize the DANCE-vs-direct-purchase comparison.
type Table6Options struct {
	Scale       int
	Seed        int64
	Rate        float64
	BudgetRatio float64
	Iterations  int
}

func (o Table6Options) withDefaults() Table6Options {
	if o.Scale <= 0 {
		o.Scale = 2
	}
	if o.Rate <= 0 {
		o.Rate = 0.5
	}
	if o.BudgetRatio <= 0 {
		// Paper: 0.13; shifted for our pricing's LB/UB band (see
		// EXPERIMENTS.md). The LB clamp below keeps any ratio admissible.
		o.BudgetRatio = 0.55
	}
	if o.Iterations <= 0 {
		o.Iterations = 80
	}
	return o
}

// Table6 regenerates the paper's Table 6: for each TPC-H query at budget
// ratio 0.13, the correlation, quality, join informativeness and price of
// (a) acquisition with DANCE (heuristic on samples) and (b) direct purchase
// from the marketplace (GP on the full data). All metrics are real
// (measured on full data).
func Table6(ctx context.Context, opts Table6Options) (Table, error) {
	opts = opts.withDefaults()
	tab := Table{
		ID:    "table6",
		Title: fmt.Sprintf("DANCE vs direct marketplace purchase (TPC-H, budget ratio %.2f)", opts.BudgetRatio),
		Headers: []string{"query", "approach", "correlation", "quality",
			"join_informativeness", "price"},
	}
	env, err := NewEnv(EnvConfig{Dataset: "tpch", Scale: opts.Scale, Seed: opts.Seed, Rate: opts.Rate})
	if err != nil {
		return tab, err
	}
	for _, q := range TPCHQueries() {
		req := env.Request(q, opts.Seed)
		req.Iterations = opts.Iterations
		lb, ub, err := env.FullSearcher().PriceRange(ctx, req, search.BruteForceLimits{})
		if err != nil {
			return tab, fmt.Errorf("table6 %s price range: %w", q.Name, err)
		}
		// The paper requires r × UB ≥ LB (the shopper can afford at least
		// one target graph); clamp to the smallest admissible budget.
		req.Budget = opts.BudgetRatio * ub
		if min := 1.05 * lb; req.Budget < min {
			// The paper requires r × UB ≥ LB; 5% slack absorbs the gap
			// between the global optimum price and the cheapest plan in
			// the heuristic's candidate pool.
			req.Budget = min
		}

		ss := env.SampledSearcher()
		hres, err := ss.Heuristic(ctx, req)
		if err != nil {
			return tab, fmt.Errorf("table6 %s DANCE: %w", q.Name, err)
		}
		hReal, err := env.RealMetrics(ctx, ss, hres, req)
		if err != nil {
			return tab, err
		}
		tab.Rows = append(tab.Rows, []string{
			q.Name, "With DANCE",
			fmtF(hReal.Correlation), fmtF(hReal.Quality), fmtF(hReal.Weight), fmtF(hReal.Price),
		})

		gs := env.FullSearcher()
		gres, err := gs.BruteForce(ctx, req, search.BruteForceLimits{})
		if err != nil {
			return tab, fmt.Errorf("table6 %s GP: %w", q.Name, err)
		}
		gReal, err := env.RealMetrics(ctx, gs, gres, req)
		if err != nil {
			return tab, err
		}
		tab.Rows = append(tab.Rows, []string{
			q.Name, "Direct purchase",
			fmtF(gReal.Correlation), fmtF(gReal.Quality), fmtF(gReal.Weight), fmtF(gReal.Price),
		})
	}
	return tab, nil
}
