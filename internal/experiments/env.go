// Package experiments regenerates every table and figure of the paper's
// evaluation (Sec 6) plus the ablations listed in DESIGN.md. Each experiment
// returns structured Tables that cmd/dancebench renders and bench_test.go
// wraps in testing.B benchmarks.
package experiments

import (
	"context"
	"fmt"
	"strings"

	"github.com/dance-db/dance/internal/fd"
	"github.com/dance-db/dance/internal/joingraph"
	"github.com/dance-db/dance/internal/marketplace"
	"github.com/dance-db/dance/internal/pricing"
	"github.com/dance-db/dance/internal/relation"
	"github.com/dance-db/dance/internal/sampling"
	"github.com/dance-db/dance/internal/search"
	"github.com/dance-db/dance/internal/tpce"
	"github.com/dance-db/dance/internal/tpch"
)

// Table is one rendered experiment artifact (a paper table or one panel of
// a figure).
type Table struct {
	ID      string
	Title   string
	Headers []string
	Rows    [][]string
}

// Render formats the table as aligned text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s — %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// QuerySpec is one acquisition query of Sec 6.1.
type QuerySpec struct {
	Name        string
	SourceAttrs []string
	TargetAttrs []string
	// PathLen is the intended minimal join-path length (instances).
	PathLen int
}

// TPCHInstanceOrder fixes the prefix order for "number of instances" sweeps:
// the first five tables support all three TPC-H queries.
var TPCHInstanceOrder = []string{
	"orders", "customer", "nation", "region", "lineitem",
	"supplier", "partsupp", "part",
}

// TPCHQueries mirrors Sec 6.1: join-path lengths 2, 3 and 5.
func TPCHQueries() []QuerySpec {
	return []QuerySpec{
		{Name: "Q1", SourceAttrs: []string{"totalprice"}, TargetAttrs: []string{"mktsegment"}, PathLen: 2},
		{Name: "Q2", SourceAttrs: []string{"totalprice"}, TargetAttrs: []string{"nname"}, PathLen: 3},
		{Name: "Q3", SourceAttrs: []string{"extendedprice"}, TargetAttrs: []string{"mktsegment", "rname"}, PathLen: 5},
	}
}

// TPCEInstanceOrder: the first ten tables contain the full length-8 Q3
// spine plus daily_market; later prefixes add alternative routes (trade,
// holding), which makes I-graph sizes fluctuate as in Fig 5(b).
var TPCEInstanceOrder = []string{
	"customer_account", "customer", "watch_list", "watch_item", "security",
	"company", "industry", "sector", "daily_market", "broker",
	"address", "zip_code", "financial", "last_trade", "news_item",
	"news_xref", "exchange", "status_type", "taxrate", "customer_taxrate",
	"charge", "commission_rate", "trade_type", "holding_summary", "settlement",
	"trade", "trade_history", "holding", "holding_history",
}

// TPCEQueries mirrors Sec 6.1: join-path lengths 3, 5 and 8.
func TPCEQueries() []QuerySpec {
	return []QuerySpec{
		{Name: "Q1", SourceAttrs: []string{"dmclose"}, TargetAttrs: []string{"compname"}, PathLen: 3},
		{Name: "Q2", SourceAttrs: []string{"dmclose"}, TargetAttrs: []string{"sectorname"}, PathLen: 5},
		{Name: "Q3", SourceAttrs: []string{"cabalance"}, TargetAttrs: []string{"sectorname"}, PathLen: 8},
	}
}

// EnvConfig parameterizes an experiment environment.
type EnvConfig struct {
	Dataset      string // "tpch" or "tpce"
	Scale        int
	Seed         int64
	Rate         float64 // correlated-sampling rate for the LP/heuristic graph
	NumInstances int     // prefix of the instance order; 0 = all
	MaxJoinAttrs int
	// Workers is applied to every request built by Env.Request; 0 falls
	// back to DefaultWorkers at NewEnv time. Search results are identical
	// for every worker count — only wall-clock time changes — so timed
	// experiments stay comparable across settings.
	Workers int
}

// Env is a ready-to-search experiment environment: a marketplace over the
// generated dataset, one join graph built from correlated samples (the
// heuristic's and LP's input) and one from the full data (GP's input).
type Env struct {
	Cfg     EnvConfig
	Order   []string
	Tables  map[string]*relation.Table
	FDs     map[string][]fd.FD
	Market  *marketplace.InMemory
	Sampled *joingraph.Graph
	Full    *joingraph.Graph
}

// NewEnv builds the environment.
func NewEnv(cfg EnvConfig) (*Env, error) {
	if cfg.Scale <= 0 {
		cfg.Scale = 2
	}
	if cfg.Rate <= 0 || cfg.Rate > 1 {
		cfg.Rate = 1
	}
	if cfg.MaxJoinAttrs <= 0 {
		cfg.MaxJoinAttrs = 2
	}
	if cfg.Workers == 0 {
		cfg.Workers = DefaultWorkers
	}
	var order []string
	tables := map[string]*relation.Table{}
	fds := map[string][]fd.FD{}
	switch cfg.Dataset {
	case "tpch":
		d := tpch.Generate(tpch.Config{Scale: cfg.Scale, Seed: cfg.Seed, DirtyFraction: 0.3})
		order = TPCHInstanceOrder
		for _, t := range d.Tables {
			tables[t.Name] = t
		}
		fds = d.FDs
	case "tpce":
		d := tpce.Generate(tpce.Config{Scale: cfg.Scale, Seed: cfg.Seed, DirtyFraction: 0.2})
		order = TPCEInstanceOrder
		for _, t := range d.Tables {
			tables[t.Name] = t
		}
		fds = d.FDs
	default:
		return nil, fmt.Errorf("experiments: unknown dataset %q", cfg.Dataset)
	}
	if cfg.NumInstances > 0 && cfg.NumInstances < len(order) {
		order = order[:cfg.NumInstances]
	}

	market := marketplace.NewInMemory(pricing.Cached(pricing.DefaultEntropyModel()))
	for _, name := range order {
		market.Register(tables[name], fds[name])
	}

	env := &Env{Cfg: cfg, Order: order, Tables: tables, FDs: fds, Market: market}
	var err error
	env.Sampled, err = env.buildGraph(cfg.Rate)
	if err != nil {
		return nil, err
	}
	if cfg.Rate >= 1 {
		env.Full = env.Sampled
	} else {
		env.Full, err = env.buildGraph(1)
		if err != nil {
			return nil, err
		}
	}
	return env, nil
}

// primaryJoinAttr picks the attribute shared with the most other instances
// in the prefix (see DESIGN.md on sampling one join attribute).
func (e *Env) primaryJoinAttr(name string) string {
	schema := e.Tables[name].Schema
	best, bestCount := schema.Column(0).Name, -1
	for i := 0; i < schema.Len(); i++ {
		attr := schema.Column(i).Name
		count := 0
		for _, other := range e.Order {
			if other == name {
				continue
			}
			if e.Tables[other].Schema.Has(attr) {
				count++
			}
		}
		if count > bestCount {
			best, bestCount = attr, count
		}
	}
	return best
}

func (e *Env) buildGraph(rate float64) (*joingraph.Graph, error) {
	var instances []*joingraph.Instance
	for _, name := range e.Order {
		full := e.Tables[name]
		sample := full
		if rate < 1 {
			var err error
			sample, err = sampling.CorrelatedSample(full, []string{e.primaryJoinAttr(name)}, rate,
				sampling.NewHasher(uint64(e.Cfg.Seed)+12345))
			if err != nil {
				return nil, err
			}
		}
		instances = append(instances, &joingraph.Instance{
			Name:     name,
			Sample:   sample,
			FullRows: full.NumRows(),
			FDs:      e.FDs[name],
		})
	}
	return joingraph.Build(instances, joingraph.Config{
		MaxJoinAttrs: e.Cfg.MaxJoinAttrs,
		Quoter:       e.Market,
	})
}

// DefaultWorkers seeds EnvConfig.Workers for configs that leave it zero.
// cmd/dancebench sets it once from -workers before running experiments
// (the option structs predate the knob); it is read only at NewEnv time,
// so an Env's behavior is fixed by its own config afterwards. Zero means
// one MCMC chain per CPU (the search engine's default).
var DefaultWorkers int

// Request builds the acquisition request for a query with unbounded budget
// and loose constraints (experiments that sweep a constraint override it).
func (e *Env) Request(q QuerySpec, seed int64) search.Request {
	return search.Request{
		SourceAttrs: q.SourceAttrs,
		TargetAttrs: q.TargetAttrs,
		Budget:      0, // unbounded
		Alpha:       0, // unbounded
		Beta:        0,
		Iterations:  80,
		Seed:        seed,
		Workers:     e.Cfg.Workers,
	}
}

// SampledSearcher returns a fresh searcher over the sample-built graph.
// Fresh searchers avoid cross-contaminating evaluation caches between
// timed runs and between requests with different re-sampling parameters.
func (e *Env) SampledSearcher() *search.Searcher { return search.NewSearcher(e.Sampled) }

// FullSearcher returns a fresh searcher over the full-data graph (GP).
func (e *Env) FullSearcher() *search.Searcher { return search.NewSearcher(e.Full) }

// RealMetrics evaluates a found target graph on the full tables (the
// paper's protocol: report real correlation, not estimates). The target
// graph may come from either graph; instance names resolve the full tables.
// The Weight field is recomputed from full-data join informativeness so
// sample-based and full-data searches are compared on the same scale.
func (e *Env) RealMetrics(ctx context.Context, s *search.Searcher, res *search.Result, req search.Request) (search.Metrics, error) {
	m, err := s.EvaluateOnTables(ctx, res.TG, req, e.Tables)
	if err != nil {
		return m, err
	}
	w, err := e.realWeight(res.TG)
	if err != nil {
		return m, err
	}
	m.Weight = w
	return m, nil
}

// realWeight sums the full-data JI of the target graph's chosen join
// attributes by resolving each edge against the full-data join graph.
func (e *Env) realWeight(tg *joingraph.TargetGraph) (float64, error) {
	total := 0.0
	for _, edge := range tg.Edges {
		attrs := edge.JoinAttrsOf(tg.G)
		fi := e.Full.InstanceIndex(tg.G.Instances[edge.I].Name)
		fj := e.Full.InstanceIndex(tg.G.Instances[edge.J].Name)
		fe := e.Full.EdgeBetween(fi, fj)
		if fe == nil {
			return 0, fmt.Errorf("experiments: edge %s-%s missing from full graph",
				tg.G.Instances[edge.I].Name, tg.G.Instances[edge.J].Name)
		}
		found := false
		for _, v := range fe.Variants {
			if equalStrings(v.JoinAttrs, attrs) {
				total += v.JI
				found = true
				break
			}
		}
		if !found {
			return 0, fmt.Errorf("experiments: variant %v missing from full graph edge", attrs)
		}
	}
	return total, nil
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func fmtF(v float64) string { return fmt.Sprintf("%.4g", v) }

func fmtSeconds(sec float64) string { return fmt.Sprintf("%.4f", sec) }
