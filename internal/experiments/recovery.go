package experiments

import (
	"context"
	"errors"
	"fmt"
	"math"

	"github.com/dance-db/dance/internal/core"
	"github.com/dance-db/dance/internal/joingraph"
	"github.com/dance-db/dance/internal/search"
	"github.com/dance-db/dance/internal/workload"
)

// RecoveryOptions parameterize the planted-correlation recovery experiment:
// over a panel of synthetic-workload specs and a seed sweep, it measures the
// fraction of marketplaces where DANCE's acquisition realizes the planted
// correlation (within Epsilon, relative) at a cost no worse than the
// brute-force optimum over the full data.
type RecoveryOptions struct {
	// Specs is the workload panel (ParseSpec grammar); nil = DefaultRecoverySpecs.
	Specs []string
	// Seeds is the sweep width per spec (default 6).
	Seeds int
	// BaseSeed offsets the sweep.
	BaseSeed int64
	// Rate is the initial offline sampling rate (default 0.5).
	Rate float64
	// Iterations is the MCMC budget per search (default 60).
	Iterations int
	// Epsilon is the relative correlation tolerance (default 0.02).
	Epsilon float64
	// Workers bounds middleware and search concurrency (0 = per CPU).
	Workers int
	// Policy names the acquisition policy runs execute under ("" = the
	// registry default, the paper's own "dance" search); PolicyParams are
	// its tunables. The Bakeoff experiment sweeps several policies.
	Policy       string
	PolicyParams map[string]float64
}

func (o RecoveryOptions) withDefaults() RecoveryOptions {
	if len(o.Specs) == 0 {
		o.Specs = DefaultRecoverySpecs()
	}
	if o.Seeds <= 0 {
		o.Seeds = 6
	}
	if o.Rate <= 0 || o.Rate > 1 {
		o.Rate = 0.5
	}
	if o.Iterations <= 0 {
		o.Iterations = 60
	}
	if o.Epsilon <= 0 {
		o.Epsilon = RecoveryEpsilon
	}
	return o
}

// DefaultRecoverySpecs is the standard panel: every topology, plus skewed,
// NULL-ridden, mixed-key and non-default-priced variants.
func DefaultRecoverySpecs() []string {
	return []string{
		"chain:2",
		"chain:3,decoys=3",
		"chain:3,kinds=mixed,null=0.05",
		"chain:2,skew=1.4,fanout=2",
		"star:3",
		"star:3,kinds=mixed,price=tiered",
		"snowflake:2",
		"snowflake:2,null=0.05,price=flat",
	}
}

// RecoveryResult is one spec's sweep outcome.
type RecoveryResult struct {
	Spec string
	// Seeds is the number of marketplaces swept.
	Seeds int
	// CorrRecovered counts seeds whose realized correlation is within
	// Epsilon (relative) of the planted ρ.
	CorrRecovered int
	// CostOptimal counts seeds whose plan price is at most the brute-force
	// optimum's (and the ground-truth cheapest plan's) price.
	CostOptimal int
	// Recovered counts seeds satisfying both.
	Recovered int
	// MeanRho and MeanRealized average the planted and realized
	// correlations over the sweep.
	MeanRho, MeanRealized float64
}

// Rate returns the recovery fraction.
func (r RecoveryResult) Rate() float64 {
	if r.Seeds == 0 {
		return 0
	}
	return float64(r.Recovered) / float64(r.Seeds)
}

// Verdict tolerances shared with the scenario-matrix e2e test, so the CI
// gate and the recovery experiment keep measuring the same bar.
const (
	// RecoveryEpsilon is the default relative correlation tolerance.
	RecoveryEpsilon = 0.02
	// BudgetSlack is the relative slack applied when pinning a request's
	// budget to the ground-truth optimum (floating-point headroom only).
	BudgetSlack = 1e-6
)

// RecoverOutcome is the verdict of one (spec, seed, policy) acquisition.
type RecoverOutcome struct {
	// CorrOK reports the realized correlation within Epsilon of planted ρ;
	// CostOK reports the plan priced at or below the full-data optimum.
	CorrOK, CostOK bool
	// Rho and Realized are the planted and realized correlations.
	Rho, Realized float64
	// SampleSpend is what the run paid the marketplace for samples (full
	// offline rounds, escalation deltas, or a policy's own pilots);
	// PlanSpend is the winning plan's purchase price. Both are the axes of
	// the bake-off's recovery-vs-spend comparison.
	SampleSpend, PlanSpend float64
	// Infeasible marks a request-infeasible non-recovery: the policy found
	// no plan within the optimum budget, or legitimately abandoned the
	// acquisition (try-before-you-buy's weak-pilot exit). The run still
	// reports its SampleSpend — abandoning is not free, just cheap.
	Infeasible bool
}

// Recovered reports the full verdict: correlation and cost both met.
func (r RecoverOutcome) Recovered() bool { return r.CorrOK && r.CostOK }

// RecoverOne runs a single (spec, seed) acquisition end to end under the
// options' acquisition policy and reports the recovery verdict. The Recovery
// and Bakeoff experiments sweep it; the scenario-matrix e2e applies the same
// tolerances (RecoveryEpsilon, BudgetSlack) around its own
// escalation-exercising drive.
func RecoverOne(ctx context.Context, spec workload.Spec, seed int64, o RecoveryOptions) (RecoverOutcome, error) {
	o = o.withDefaults()
	w, err := workload.Generate(spec, seed)
	if err != nil {
		return RecoverOutcome{}, err
	}
	market := w.Marketplace()
	mw := core.New(market, core.Config{
		SampleRate: o.Rate, SampleSeed: uint64(seed) + 77, Workers: o.Workers,
		Policy: o.Policy, PolicyParams: o.PolicyParams,
	})
	// The budget is the ground-truth cheapest correct cost: the paper's
	// objective maximizes correlation *subject to* budget, so an unbounded
	// request is free to route through decoys at a higher price. Pinning B
	// to the planted optimum makes recovery mean "found the cheapest
	// correct plan", which is the bar the experiment measures.
	req := search.Request{
		TargetAttrs: []string{w.Truth.X, w.Truth.Y},
		Budget:      w.Truth.PlanCost * (1 + BudgetSlack),
		Iterations:  o.Iterations,
		Seed:        seed + 13,
		Workers:     o.Workers,
	}
	out := RecoverOutcome{Rho: w.Truth.Rho}
	plan, err := mw.Acquire(ctx, req)
	out.SampleSpend = mw.SampleCost()
	if err != nil {
		// A request-infeasible outcome is a legitimate non-recovery — the
		// policy found no plan within the optimum budget, or abandoned the
		// acquisition on weak pilots; any other failure is an
		// infrastructure error that must surface — counting it as
		// non-recovery would let an engine regression read as a slightly
		// lower recovery rate.
		if errors.Is(err, search.ErrInfeasible) {
			out.Infeasible = true
			return out, nil
		}
		return out, err
	}
	out.PlanSpend = plan.Est.Price
	purchase, err := mw.Execute(ctx, plan)
	if err != nil {
		return out, err
	}
	out.Realized = purchase.Realized.Correlation
	out.CorrOK = math.Abs(out.Realized-out.Rho) <= o.Epsilon*math.Max(1, out.Rho)

	// Cost bar: the brute-force optimum over the full data (the paper's GP
	// baseline), with the ground-truth cheapest plan as a second witness —
	// DANCE must not beat the correlation by overpaying. The baseline runs
	// unbounded: with the pinned budget it could never exceed PlanCost and
	// the witness would be vacuous.
	bfReq := req
	bfReq.Budget = 0
	bfPrice, err := fullDataOptimumPrice(ctx, w, bfReq)
	if err != nil {
		return out, err
	}
	out.CostOK = plan.Est.Price <= math.Max(bfPrice, w.Truth.PlanCost)*(1+1e-9)
	return out, nil
}

// fullDataOptimumPrice runs the GP brute force on a full-data join graph of
// the workload and returns its plan's price.
func fullDataOptimumPrice(ctx context.Context, w *workload.Workload, req search.Request) (float64, error) {
	market := w.Marketplace()
	var instances []*joingraph.Instance
	for _, t := range w.Listings {
		instances = append(instances, &joingraph.Instance{
			Name:     t.Name,
			Sample:   t,
			FullRows: t.NumRows(),
			FDs:      w.FDs[t.Name],
		})
	}
	g, err := joingraph.Build(instances, joingraph.Config{MaxJoinAttrs: 2, Quoter: market})
	if err != nil {
		return 0, err
	}
	res, err := search.NewSearcher(g).BruteForce(ctx, req, search.BruteForceLimits{})
	if err != nil {
		return 0, err
	}
	return res.Est.Price, nil
}

// Recovery sweeps the panel and renders the recovery-rate table (the CI
// nightly's artifact).
func Recovery(ctx context.Context, o RecoveryOptions) ([]RecoveryResult, Table, error) {
	o = o.withDefaults()
	var results []RecoveryResult
	tab := Table{
		ID:      "recovery",
		Title:   "planted-correlation recovery over synthetic workloads",
		Headers: []string{"spec", "seeds", "corr ok", "cost ok", "recovered", "rate", "mean ρ", "mean realized"},
	}
	for _, specStr := range o.Specs {
		spec, err := workload.ParseSpec(specStr)
		if err != nil {
			return nil, tab, err
		}
		r := RecoveryResult{Spec: specStr, Seeds: o.Seeds}
		for i := 0; i < o.Seeds; i++ {
			out, err := RecoverOne(ctx, spec, o.BaseSeed+int64(i), o)
			if err != nil {
				return nil, tab, fmt.Errorf("recovery %s seed %d: %w", specStr, o.BaseSeed+int64(i), err)
			}
			if out.CorrOK {
				r.CorrRecovered++
			}
			if out.CostOK {
				r.CostOptimal++
			}
			if out.Recovered() {
				r.Recovered++
			}
			r.MeanRho += out.Rho / float64(o.Seeds)
			r.MeanRealized += out.Realized / float64(o.Seeds)
		}
		results = append(results, r)
		tab.Rows = append(tab.Rows, []string{
			specStr,
			fmt.Sprintf("%d", r.Seeds),
			fmt.Sprintf("%d", r.CorrRecovered),
			fmt.Sprintf("%d", r.CostOptimal),
			fmt.Sprintf("%d", r.Recovered),
			fmt.Sprintf("%.2f", r.Rate()),
			fmtF(r.MeanRho),
			fmtF(r.MeanRealized),
		})
	}
	return results, tab, nil
}
