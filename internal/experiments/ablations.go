package experiments

import (
	"context"
	"fmt"
	"time"

	"github.com/dance-db/dance/internal/graphalg"
	"github.com/dance-db/dance/internal/pricing"
	"github.com/dance-db/dance/internal/search"
)

// AblationOptions are shared knobs for the ablation studies.
type AblationOptions struct {
	Scale      int
	Seed       int64
	Rate       float64
	Iterations int
}

func (o AblationOptions) withDefaults() AblationOptions {
	if o.Scale <= 0 {
		o.Scale = 2
	}
	if o.Rate <= 0 {
		o.Rate = 0.5
	}
	if o.Iterations <= 0 {
		o.Iterations = 80
	}
	return o
}

// AblationSteiner compares the three Step 1 strategies — the paper's
// landmark-union heuristic, the MST 2-approximation, and exact
// Dreyfus–Wagner — by I-graph weight and time on the 29-instance TPC-E
// join graph (the TPC-H graph is too small to separate them).
func AblationSteiner(ctx context.Context, opts AblationOptions) (Table, error) {
	opts = opts.withDefaults()
	tab := Table{
		ID:      "ablation-steiner",
		Title:   "Step 1 strategies: I-graph weight and time (TPC-E, 29 instances)",
		Headers: []string{"query", "strategy", "weight", "time_s", "vertices"},
	}
	env, err := NewEnv(EnvConfig{Dataset: "tpce", Scale: opts.Scale, Seed: opts.Seed, Rate: opts.Rate})
	if err != nil {
		return tab, err
	}
	il := env.Sampled.ILayer()
	for _, q := range TPCEQueries() {
		// Terminals: first cover of source+target attributes.
		all := append(append([]string{}, q.SourceAttrs...), q.TargetAttrs...)
		covers, err := env.Sampled.TargetCovers(all, 1)
		if err != nil {
			return tab, err
		}
		terminals := covers[0]
		type strat struct {
			name string
			run  func() (*graphalg.SteinerTree, bool)
		}
		lm := il.BuildLandmarks(4, nil)
		strategies := []strat{
			{"landmark-union (paper)", func() (*graphalg.SteinerTree, bool) {
				return il.SteinerViaLandmarks(lm, terminals)
			}},
			{"mst-2approx", func() (*graphalg.SteinerTree, bool) { return il.SteinerMSTApprox(terminals) }},
			{"exact-dreyfus-wagner", func() (*graphalg.SteinerTree, bool) { return il.SteinerExact(terminals) }},
		}
		for _, st := range strategies {
			start := time.Now()
			tree, ok := st.run()
			elapsed := time.Since(start).Seconds()
			if !ok {
				tab.Rows = append(tab.Rows, []string{q.Name, st.name, "N/A", fmtSeconds(elapsed), "-"})
				continue
			}
			tab.Rows = append(tab.Rows, []string{
				q.Name, st.name, fmtF(tree.Weight), fmtSeconds(elapsed), fmt.Sprint(len(tree.Vertices)),
			})
		}
	}
	return tab, nil
}

// AblationMCMC compares Algorithm 1's Metropolis acceptance with greedy
// hill-climbing: the real correlation each reaches.
func AblationMCMC(ctx context.Context, opts AblationOptions) (Table, error) {
	opts = opts.withDefaults()
	tab := Table{
		ID:      "ablation-mcmc",
		Title:   "Algorithm 1 acceptance rule: Metropolis vs greedy (real correlation, TPC-H)",
		Headers: []string{"query", "metropolis", "greedy"},
	}
	env, err := NewEnv(EnvConfig{Dataset: "tpch", Scale: opts.Scale, Seed: opts.Seed, Rate: opts.Rate})
	if err != nil {
		return tab, err
	}
	for _, q := range TPCHQueries() {
		run := func(greedy bool) (string, error) {
			req := env.Request(q, opts.Seed)
			req.Iterations = opts.Iterations
			req.Greedy = greedy
			s := env.SampledSearcher()
			res, err := s.Heuristic(ctx, req)
			if err != nil {
				return "N/A", nil
			}
			m, err := env.RealMetrics(ctx, s, res, req)
			if err != nil {
				return "", err
			}
			return fmtF(m.Correlation), nil
		}
		met, err := run(false)
		if err != nil {
			return tab, err
		}
		gre, err := run(true)
		if err != nil {
			return tab, err
		}
		tab.Rows = append(tab.Rows, []string{q.Name, met, gre})
	}
	return tab, nil
}

// AblationPricing compares the entropy-based arbitrage-free model with flat
// per-attribute pricing: the price of identical acquisitions under both.
func AblationPricing(ctx context.Context, opts AblationOptions) (Table, error) {
	opts = opts.withDefaults()
	tab := Table{
		ID:      "ablation-pricing",
		Title:   "Pricing models: entropy-based vs flat per-attribute (same acquisition)",
		Headers: []string{"query", "entropy_price", "flat_price", "attrs_bought"},
	}
	env, err := NewEnv(EnvConfig{Dataset: "tpch", Scale: opts.Scale, Seed: opts.Seed, Rate: opts.Rate})
	if err != nil {
		return tab, err
	}
	flat := pricing.FlatModel{PerAttribute: 2}
	for _, q := range TPCHQueries() {
		req := env.Request(q, opts.Seed)
		req.Iterations = opts.Iterations
		s := env.SampledSearcher()
		res, err := s.Heuristic(ctx, req)
		if err != nil {
			return tab, err
		}
		entropyPrice, err := res.TG.Price(ctx)
		if err != nil {
			return tab, err
		}
		flatPrice := 0.0
		attrs := 0
		for v, set := range res.TG.Purchase() {
			p, err := flat.PriceProjection(env.Tables[env.Sampled.Instances[v].Name], set)
			if err != nil {
				return tab, err
			}
			flatPrice += p
			attrs += len(set)
		}
		tab.Rows = append(tab.Rows, []string{
			q.Name, fmtF(entropyPrice), fmtF(flatPrice), fmt.Sprint(attrs),
		})
	}
	return tab, nil
}

// AblationEta sweeps the re-sampling threshold η: estimated correlation and
// search time against the no-re-sampling baseline on the longest query.
func AblationEta(ctx context.Context, opts AblationOptions) (Table, error) {
	opts = opts.withDefaults()
	tab := Table{
		ID:      "ablation-eta",
		Title:   "Re-sampling threshold η sweep (TPC-H Q2, ρ=0.5)",
		Headers: []string{"eta", "est_correlation", "time_s"},
	}
	env, err := NewEnv(EnvConfig{Dataset: "tpch", Scale: opts.Scale, Seed: opts.Seed, Rate: opts.Rate})
	if err != nil {
		return tab, err
	}
	q := TPCHQueries()[1]
	for _, eta := range []int{0, 25, 50, 100, 200} {
		req := env.Request(q, opts.Seed)
		req.Iterations = opts.Iterations
		req.Eta = eta
		req.ResampleRate = 0.5
		s := env.SampledSearcher()
		var res *search.Result
		elapsed, err := timeSearch(func() error {
			var e error
			res, e = s.Heuristic(ctx, req)
			return e
		})
		if err != nil {
			tab.Rows = append(tab.Rows, []string{fmt.Sprint(eta), "N/A", fmtSeconds(elapsed)})
			continue
		}
		tab.Rows = append(tab.Rows, []string{
			fmt.Sprint(eta), fmtF(res.Est.Correlation), fmtSeconds(elapsed),
		})
	}
	return tab, nil
}
