package experiments

import (
	"context"
	"fmt"
	"time"

	"github.com/dance-db/dance/internal/search"
)

// Fig4Options parameterize the Figure 4 reproduction (time vs number of
// instances, TPC-H, heuristic vs LP vs GP).
type Fig4Options struct {
	Scale      int
	Seed       int64
	Rate       float64 // sampling rate for heuristic/LP
	Ns         []int   // instance counts (paper: 5..8)
	SkipGP     bool    // GP is the slowest; benches may skip it
	Iterations int
}

func (o Fig4Options) withDefaults() Fig4Options {
	if o.Scale <= 0 {
		o.Scale = 2
	}
	if o.Rate <= 0 {
		o.Rate = 0.5
	}
	if len(o.Ns) == 0 {
		o.Ns = []int{5, 6, 7, 8}
	}
	if o.Iterations <= 0 {
		o.Iterations = 80
	}
	return o
}

// Fig4 regenerates Figure 4(a–c): per query, wall-clock seconds of the
// heuristic, LP (brute force on samples) and GP (brute force on full data)
// for each instance count.
func Fig4(ctx context.Context, opts Fig4Options) ([]Table, error) {
	opts = opts.withDefaults()
	queries := TPCHQueries()
	tables := make([]Table, len(queries))
	for qi, q := range queries {
		tab := Table{
			ID:      fmt.Sprintf("fig4%c", 'a'+qi),
			Title:   fmt.Sprintf("Time (s) vs #instances, TPC-H %s (path len %d)", q.Name, q.PathLen),
			Headers: []string{"n", "heuristic_s", "lp_s", "gp_s"},
		}
		for _, n := range opts.Ns {
			env, err := NewEnv(EnvConfig{
				Dataset: "tpch", Scale: opts.Scale, Seed: opts.Seed, Rate: opts.Rate, NumInstances: n,
			})
			if err != nil {
				return nil, err
			}
			req := env.Request(q, opts.Seed)
			req.Iterations = opts.Iterations

			hTime, err := timeSearch(func() error {
				_, err := env.SampledSearcher().Heuristic(ctx, req)
				return err
			})
			if err != nil {
				return nil, fmt.Errorf("fig4 %s n=%d heuristic: %w", q.Name, n, err)
			}
			lpTime, err := timeSearch(func() error {
				_, err := env.SampledSearcher().BruteForce(ctx, req, search.BruteForceLimits{})
				return err
			})
			if err != nil {
				return nil, fmt.Errorf("fig4 %s n=%d LP: %w", q.Name, n, err)
			}
			gpCell := "skipped"
			if !opts.SkipGP {
				gpTime, err := timeSearch(func() error {
					_, err := env.FullSearcher().BruteForce(ctx, req, search.BruteForceLimits{})
					return err
				})
				if err != nil {
					return nil, fmt.Errorf("fig4 %s n=%d GP: %w", q.Name, n, err)
				}
				gpCell = fmtSeconds(gpTime)
			}
			tab.Rows = append(tab.Rows, []string{
				fmt.Sprint(n), fmtSeconds(hTime), fmtSeconds(lpTime), gpCell,
			})
		}
		tables[qi] = tab
	}
	return tables, nil
}

func timeSearch(f func() error) (float64, error) {
	start := time.Now()
	err := f()
	return time.Since(start).Seconds(), err
}

// Fig5Options parameterize the TPC-E scalability experiments.
type Fig5Options struct {
	Scale      int
	Seed       int64
	Rate       float64
	Ns         []int
	Ratios     []float64 // budget ratios for Fig 5(c)
	Iterations int
}

func (o Fig5Options) withDefaults() Fig5Options {
	if o.Scale <= 0 {
		o.Scale = 2
	}
	if o.Rate <= 0 {
		o.Rate = 0.5
	}
	if len(o.Ns) == 0 {
		o.Ns = []int{10, 15, 20, 25, 29}
	}
	if len(o.Ratios) == 0 {
		// The paper sweeps 0.04–0.12; our entropy pricing on small-scale
		// data has a narrower LB/UB spread (joint entropy is capped by
		// log2(rows)), so the equivalent affordable band sits higher.
		// The shape — N/A below a threshold, rising time above — is
		// what the experiment reproduces (see EXPERIMENTS.md).
		o.Ratios = []float64{0.2, 0.35, 0.5, 0.65, 0.8}
	}
	if o.Iterations <= 0 {
		o.Iterations = 80
	}
	return o
}

// Fig5a regenerates Figure 5(a): heuristic time vs instance count on TPC-E
// (LP/GP are infeasible there, as in the paper).
// Fig5b regenerates Figure 5(b): the I-graph size (tree vertex count) for
// the same sweep. Both come from one pass.
func Fig5ab(ctx context.Context, opts Fig5Options) (Table, Table, error) {
	opts = opts.withDefaults()
	queries := TPCEQueries()
	ta := Table{ID: "fig5a", Title: "Heuristic time (s) vs #instances (TPC-E)",
		Headers: []string{"n", "Q1_s", "Q2_s", "Q3_s"}}
	tb := Table{ID: "fig5b", Title: "I-graph size vs #instances (TPC-E)",
		Headers: []string{"n", "Q1", "Q2", "Q3"}}
	for _, n := range opts.Ns {
		env, err := NewEnv(EnvConfig{
			Dataset: "tpce", Scale: opts.Scale, Seed: opts.Seed, Rate: opts.Rate, NumInstances: n,
		})
		if err != nil {
			return ta, tb, err
		}
		timeRow := []string{fmt.Sprint(n)}
		sizeRow := []string{fmt.Sprint(n)}
		for _, q := range queries {
			req := env.Request(q, opts.Seed)
			req.Iterations = opts.Iterations
			start := time.Now()
			res, err := env.SampledSearcher().Heuristic(ctx, req)
			elapsed := time.Since(start).Seconds()
			if err != nil {
				return ta, tb, fmt.Errorf("fig5 %s n=%d: %w", q.Name, n, err)
			}
			timeRow = append(timeRow, fmtSeconds(elapsed))
			sizeRow = append(sizeRow, fmt.Sprint(len(res.TG.Vertices)))
		}
		ta.Rows = append(ta.Rows, timeRow)
		tb.Rows = append(tb.Rows, sizeRow)
	}
	return ta, tb, nil
}

// Fig5c regenerates Figure 5(c): heuristic time vs budget ratio on TPC-E,
// with "N/A" where the budget cannot afford any acquisition.
func Fig5c(ctx context.Context, opts Fig5Options) (Table, error) {
	opts = opts.withDefaults()
	queries := TPCEQueries()
	tab := Table{ID: "fig5c", Title: "Heuristic time (s) vs budget ratio (TPC-E, N/A = not affordable)",
		Headers: []string{"budget_ratio", "Q1_s", "Q2_s", "Q3_s"}}
	env, err := NewEnv(EnvConfig{Dataset: "tpce", Scale: opts.Scale, Seed: opts.Seed, Rate: opts.Rate})
	if err != nil {
		return tab, err
	}
	// Upper-bound prices per query (approximate range on the big graph).
	ubs := make([]float64, len(queries))
	for qi, q := range queries {
		req := env.Request(q, opts.Seed)
		_, ub, err := env.SampledSearcher().ApproxPriceRange(ctx, req, 32)
		if err != nil {
			return tab, fmt.Errorf("fig5c %s price range: %w", q.Name, err)
		}
		ubs[qi] = ub
	}
	for _, r := range opts.Ratios {
		row := []string{fmt.Sprintf("%.2f", r)}
		for qi, q := range queries {
			req := env.Request(q, opts.Seed)
			req.Iterations = opts.Iterations
			req.Budget = r * ubs[qi]
			start := time.Now()
			_, err := env.SampledSearcher().Heuristic(ctx, req)
			elapsed := time.Since(start).Seconds()
			if err != nil {
				row = append(row, "N/A")
				continue
			}
			row = append(row, fmtSeconds(elapsed))
		}
		tab.Rows = append(tab.Rows, row)
	}
	return tab, nil
}

// Fig6Options parameterize the correlation-difference experiment.
type Fig6Options struct {
	Scale      int
	Seed       int64
	Rates      []float64
	Iterations int
}

func (o Fig6Options) withDefaults() Fig6Options {
	if o.Scale <= 0 {
		o.Scale = 2
	}
	if len(o.Rates) == 0 {
		o.Rates = []float64{0.1, 0.4, 0.7, 1.0}
	}
	if o.Iterations <= 0 {
		o.Iterations = 80
	}
	return o
}

// Fig6 regenerates Figure 6(a–c): correlation difference
// CD = (X_opt − X)/X_opt between the heuristic and LP/GP as the sampling
// rate varies, measured on real correlations (full data).
func Fig6(ctx context.Context, opts Fig6Options) ([]Table, error) {
	opts = opts.withDefaults()
	queries := TPCHQueries()
	out := make([]Table, len(queries))
	for qi, q := range queries {
		tab := Table{
			ID:      fmt.Sprintf("fig6%c", 'a'+qi),
			Title:   fmt.Sprintf("Correlation difference vs sampling rate, TPC-H %s", q.Name),
			Headers: []string{"rate", "cd_vs_lp", "cd_vs_gp"},
		}
		for _, rate := range opts.Rates {
			env, err := NewEnv(EnvConfig{Dataset: "tpch", Scale: opts.Scale, Seed: opts.Seed, Rate: rate})
			if err != nil {
				return nil, err
			}
			req := env.Request(q, opts.Seed)
			req.Iterations = opts.Iterations

			ss := env.SampledSearcher()
			hres, err := ss.Heuristic(ctx, req)
			if err != nil {
				return nil, fmt.Errorf("fig6 %s rate=%v heuristic: %w", q.Name, rate, err)
			}
			hReal, err := env.RealMetrics(ctx, ss, hres, req)
			if err != nil {
				return nil, err
			}
			lp := env.SampledSearcher()
			lpres, err := lp.BruteForce(ctx, req, search.BruteForceLimits{})
			if err != nil {
				return nil, fmt.Errorf("fig6 %s rate=%v LP: %w", q.Name, rate, err)
			}
			lpReal, err := env.RealMetrics(ctx, lp, lpres, req)
			if err != nil {
				return nil, err
			}
			gp := env.FullSearcher()
			gpres, err := gp.BruteForce(ctx, req, search.BruteForceLimits{})
			if err != nil {
				return nil, fmt.Errorf("fig6 %s rate=%v GP: %w", q.Name, rate, err)
			}
			gpReal, err := env.RealMetrics(ctx, gp, gpres, req)
			if err != nil {
				return nil, err
			}
			tab.Rows = append(tab.Rows, []string{
				fmt.Sprintf("%.1f", rate),
				fmtF(corrDiff(lpReal.Correlation, hReal.Correlation)),
				fmtF(corrDiff(gpReal.Correlation, hReal.Correlation)),
			})
		}
		out[qi] = tab
	}
	return out, nil
}

// corrDiff is CD = (Xopt − X)/Xopt, clamped at 0 when the heuristic happens
// to beat the "optimal" real correlation (possible: optima are chosen on
// estimates).
func corrDiff(opt, x float64) float64 {
	if opt <= 0 {
		return 0
	}
	cd := (opt - x) / opt
	if cd < 0 {
		return 0
	}
	return cd
}

// Fig7Options parameterize the correlation-vs-budget experiment.
type Fig7Options struct {
	Scale      int
	Seed       int64
	Rate       float64
	Ratios     []float64
	Iterations int
}

func (o Fig7Options) withDefaults() Fig7Options {
	if o.Scale <= 0 {
		o.Scale = 2
	}
	if o.Rate <= 0 {
		o.Rate = 0.5
	}
	if len(o.Ratios) == 0 {
		// Paper: 0.07–0.15; shifted for our pricing's LB/UB band (see
		// Fig5Options and EXPERIMENTS.md).
		o.Ratios = []float64{0.25, 0.35, 0.45, 0.6, 0.8}
	}
	if o.Iterations <= 0 {
		o.Iterations = 80
	}
	return o
}

// Fig7 regenerates Figure 7(a–c): real correlation vs budget ratio for the
// heuristic, LP, and GP on TPC-H. Rows with no feasible result are "N/A".
func Fig7(ctx context.Context, opts Fig7Options) ([]Table, error) {
	opts = opts.withDefaults()
	queries := TPCHQueries()
	out := make([]Table, len(queries))
	env, err := NewEnv(EnvConfig{Dataset: "tpch", Scale: opts.Scale, Seed: opts.Seed, Rate: opts.Rate})
	if err != nil {
		return nil, err
	}
	for qi, q := range queries {
		tab := Table{
			ID:      fmt.Sprintf("fig7%c", 'a'+qi),
			Title:   fmt.Sprintf("Correlation vs budget ratio, TPC-H %s", q.Name),
			Headers: []string{"budget_ratio", "heuristic", "lp", "gp"},
		}
		req := env.Request(q, opts.Seed)
		_, ub, err := env.FullSearcher().PriceRange(ctx, req, search.BruteForceLimits{})
		if err != nil {
			return nil, fmt.Errorf("fig7 %s price range: %w", q.Name, err)
		}
		for _, r := range opts.Ratios {
			req := env.Request(q, opts.Seed)
			req.Iterations = opts.Iterations
			req.Budget = r * ub

			cell := func(run func() (search.Metrics, error)) string {
				m, err := run()
				if err != nil {
					return "N/A"
				}
				return fmtF(m.Correlation)
			}
			hCell := cell(func() (search.Metrics, error) {
				s := env.SampledSearcher()
				res, err := s.Heuristic(ctx, req)
				if err != nil {
					return search.Metrics{}, err
				}
				return env.RealMetrics(ctx, s, res, req)
			})
			lpCell := cell(func() (search.Metrics, error) {
				s := env.SampledSearcher()
				res, err := s.BruteForce(ctx, req, search.BruteForceLimits{})
				if err != nil {
					return search.Metrics{}, err
				}
				return env.RealMetrics(ctx, s, res, req)
			})
			gpCell := cell(func() (search.Metrics, error) {
				s := env.FullSearcher()
				res, err := s.BruteForce(ctx, req, search.BruteForceLimits{})
				if err != nil {
					return search.Metrics{}, err
				}
				return env.RealMetrics(ctx, s, res, req)
			})
			tab.Rows = append(tab.Rows, []string{fmt.Sprintf("%.2f", r), hCell, lpCell, gpCell})
		}
		out[qi] = tab
	}
	return out, nil
}

// Fig8Options parameterize the re-sampling experiment.
type Fig8Options struct {
	Scale         int
	Seed          int64
	Rate          float64
	ResampleRates []float64
	Eta           int
	Iterations    int
}

func (o Fig8Options) withDefaults() Fig8Options {
	if o.Scale <= 0 {
		o.Scale = 2
	}
	if o.Rate <= 0 {
		o.Rate = 0.9 // long join chains thin quadratically per edge
	}
	if len(o.ResampleRates) == 0 {
		o.ResampleRates = []float64{0.1, 0.3, 0.5, 0.7, 0.9}
	}
	if o.Eta <= 0 {
		// Small threshold so η actually trips at experiment scales.
		o.Eta = 10 * o.Scale
	}
	if o.Iterations <= 0 {
		o.Iterations = 80
	}
	return o
}

// Fig8 regenerates Figure 8(a–c): the correlation of the heuristic's
// acquisition with re-sampling (intermediate joins above η re-sampled at
// rate ρ) against the no-re-sampling correlation, as ρ varies.
func Fig8(ctx context.Context, opts Fig8Options) ([]Table, error) {
	opts = opts.withDefaults()
	queries := TPCHQueries()
	out := make([]Table, len(queries))
	env, err := NewEnv(EnvConfig{Dataset: "tpch", Scale: opts.Scale, Seed: opts.Seed, Rate: opts.Rate})
	if err != nil {
		return nil, err
	}
	for qi, q := range queries {
		tab := Table{
			ID:      fmt.Sprintf("fig8%c", 'a'+qi),
			Title:   fmt.Sprintf("Correlation with vs without re-sampling, TPC-H %s (η=%d)", q.Name, opts.Eta),
			Headers: []string{"resample_rate", "with_resampling", "without_resampling"},
		}
		// Baseline without re-sampling. The paper's Fig 8 compares the
		// *estimated* correlation of the acquisition result, which is
		// where re-sampling bites (real correlation is unaffected once the
		// same target graph is chosen).
		reqBase := env.Request(q, opts.Seed)
		reqBase.Iterations = opts.Iterations
		sBase := env.SampledSearcher()
		base, err := sBase.Heuristic(ctx, reqBase)
		if err != nil {
			return nil, fmt.Errorf("fig8 %s baseline: %w", q.Name, err)
		}
		for _, rho := range opts.ResampleRates {
			// Estimate the chosen graph's correlation under re-sampling at
			// rate ρ: fresh searcher so evaluation caches do not leak
			// between re-sampling configurations.
			req := env.Request(q, opts.Seed)
			req.Iterations = opts.Iterations
			req.Eta = opts.Eta
			req.ResampleRate = rho
			withRes, err := env.SampledSearcher().Evaluate(ctx, base.TG, req)
			if err != nil {
				return nil, fmt.Errorf("fig8 %s ρ=%v: %w", q.Name, rho, err)
			}
			tab.Rows = append(tab.Rows, []string{
				fmt.Sprintf("%.1f", rho), fmtF(withRes.Correlation), fmtF(base.Est.Correlation),
			})
		}
		out[qi] = tab
	}
	return out, nil
}
