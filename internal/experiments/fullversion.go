package experiments

import (
	"context"
	"fmt"
	"time"

	"github.com/dance-db/dance/internal/search"
)

// FigTPCHBudgetTime reproduces the experiment the paper defers to its full
// version: "We also measure the time performance on TPC-H dataset [w.r.t.
// various budget ratios], and have similar observation as TPC-E dataset"
// (Sec 6.2). Same protocol as Fig 5(c), on TPC-H, with LP/GP columns since
// they are feasible there.
func FigTPCHBudgetTime(ctx context.Context, opts Fig5Options) (Table, error) {
	opts = opts.withDefaults()
	queries := TPCHQueries()
	tab := Table{
		ID:      "figx-tpch-budget-time",
		Title:   "Time (s) vs budget ratio (TPC-H, full-version experiment; N/A = not affordable)",
		Headers: []string{"budget_ratio", "Q1_s", "Q2_s", "Q3_s"},
	}
	env, err := NewEnv(EnvConfig{Dataset: "tpch", Scale: opts.Scale, Seed: opts.Seed, Rate: opts.Rate})
	if err != nil {
		return tab, err
	}
	ubs := make([]float64, len(queries))
	for qi, q := range queries {
		req := env.Request(q, opts.Seed)
		_, ub, err := env.FullSearcher().PriceRange(ctx, req, search.BruteForceLimits{})
		if err != nil {
			return tab, fmt.Errorf("tpch budget time %s price range: %w", q.Name, err)
		}
		ubs[qi] = ub
	}
	for _, r := range opts.Ratios {
		row := []string{fmt.Sprintf("%.2f", r)}
		for qi, q := range queries {
			req := env.Request(q, opts.Seed)
			req.Iterations = opts.Iterations
			req.Budget = r * ubs[qi]
			start := time.Now()
			_, err := env.SampledSearcher().Heuristic(ctx, req)
			elapsed := time.Since(start).Seconds()
			if err != nil {
				row = append(row, "N/A")
				continue
			}
			row = append(row, fmtSeconds(elapsed))
		}
		tab.Rows = append(tab.Rows, row)
	}
	return tab, nil
}
