package experiments

import (
	"context"
	"testing"
)

// The bake-off must sweep every registered policy over one panel and show
// try-before-you-buy billing strictly less sample spend than the dance
// policy on a decoy-laden workload: abandoned candidates pay only their
// pilot prefix, while dance samples the whole catalog at the full offline
// rate.
func TestBakeoffPolicySpend(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-policy end-to-end sweep")
	}
	results, tab, err := Bakeoff(context.Background(), BakeoffOptions{
		RecoveryOptions: RecoveryOptions{
			Specs:    []string{"chain:3,decoys=3"},
			Seeds:    2,
			BaseSeed: 21,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) < 3 {
		t.Fatalf("bake-off ran %d policies, want ≥ 3:\n%s", len(results), tab.Render())
	}
	byName := map[string]BakeoffPolicyResult{}
	for _, r := range results {
		byName[r.Policy] = r
		if r.Runs != 2 {
			t.Errorf("%s: %d runs, want 2", r.Policy, r.Runs)
		}
		if r.SampleSpend <= 0 {
			t.Errorf("%s: no sample spend accounted", r.Policy)
		}
	}
	dance, ok := byName["dance"]
	if !ok {
		t.Fatalf("dance policy missing from bake-off:\n%s", tab.Render())
	}
	tbyb, ok := byName["try-before-you-buy"]
	if !ok {
		t.Fatalf("try-before-you-buy policy missing from bake-off:\n%s", tab.Render())
	}
	if tbyb.SampleSpend >= dance.SampleSpend {
		t.Errorf("try-before-you-buy sample spend %v not below dance's %v:\n%s",
			tbyb.SampleSpend, dance.SampleSpend, tab.Render())
	}
	if dance.Recovered == 0 {
		t.Errorf("dance policy recovered nothing:\n%s", tab.Render())
	}
}
