package experiments

import (
	"context"
	"strconv"
	"strings"
	"testing"
)

// Small scales keep these integration tests fast while still exercising
// every experiment end to end.

func TestTableRender(t *testing.T) {
	tab := Table{ID: "x", Title: "demo", Headers: []string{"a", "bbb"},
		Rows: [][]string{{"1", "2"}, {"333", "4"}}}
	out := tab.Render()
	for _, want := range []string{"demo", "a", "bbb", "333"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestNewEnvShapes(t *testing.T) {
	env, err := NewEnv(EnvConfig{Dataset: "tpch", Scale: 1, Seed: 1, Rate: 0.5, NumInstances: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(env.Order) != 5 {
		t.Fatalf("order = %v", env.Order)
	}
	if len(env.Sampled.Instances) != 5 || len(env.Full.Instances) != 5 {
		t.Fatal("graphs have wrong instance counts")
	}
	// Sampled graph holds fewer rows than full.
	si := env.Sampled.InstanceIndex("orders")
	fi := env.Full.InstanceIndex("orders")
	if env.Sampled.Instances[si].Sample.NumRows() >= env.Full.Instances[fi].Sample.NumRows() {
		t.Fatal("sampling did not reduce rows")
	}
	if _, err := NewEnv(EnvConfig{Dataset: "nope"}); err == nil {
		t.Fatal("unknown dataset should error")
	}
}

func TestQuerySpecsResolve(t *testing.T) {
	for _, tc := range []struct {
		dataset string
		queries []QuerySpec
	}{
		{"tpch", TPCHQueries()},
		{"tpce", TPCEQueries()},
	} {
		env, err := NewEnv(EnvConfig{Dataset: tc.dataset, Scale: 1, Seed: 1, Rate: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range tc.queries {
			for _, a := range append(append([]string{}, q.SourceAttrs...), q.TargetAttrs...) {
				if len(env.Sampled.InstancesWithAttr(a)) == 0 {
					t.Errorf("%s %s: attribute %q not offered", tc.dataset, q.Name, a)
				}
			}
		}
	}
}

func TestFig4Small(t *testing.T) {
	tabs, err := Fig4(context.Background(), Fig4Options{Scale: 1, Seed: 1, Rate: 0.6, Ns: []int{5, 6}, Iterations: 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != 3 {
		t.Fatalf("tables = %d", len(tabs))
	}
	for _, tab := range tabs {
		if len(tab.Rows) != 2 {
			t.Fatalf("%s rows = %d", tab.ID, len(tab.Rows))
		}
		for _, row := range tab.Rows {
			for i := 1; i < 4; i++ {
				if _, err := strconv.ParseFloat(row[i], 64); err != nil {
					t.Fatalf("%s cell %q not numeric", tab.ID, row[i])
				}
			}
		}
	}
}

func TestFig4HeuristicFasterThanGPAtLargestN(t *testing.T) {
	tabs, err := Fig4(context.Background(), Fig4Options{Scale: 1, Seed: 2, Rate: 0.6, Ns: []int{8}, Iterations: 20})
	if err != nil {
		t.Fatal(err)
	}
	// The headline claim: the heuristic beats the brute-force optima at
	// the largest instance count, on every query.
	for _, tab := range tabs {
		row := tab.Rows[0]
		h, _ := strconv.ParseFloat(row[1], 64)
		gp, _ := strconv.ParseFloat(row[3], 64)
		if h >= gp {
			t.Errorf("%s: heuristic (%vs) not faster than GP (%vs)", tab.ID, h, gp)
		}
	}
}

func TestFig5Small(t *testing.T) {
	ta, tb, err := Fig5ab(context.Background(), Fig5Options{Scale: 1, Seed: 1, Rate: 0.6, Ns: []int{10, 15}, Iterations: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(ta.Rows) != 2 || len(tb.Rows) != 2 {
		t.Fatalf("rows: %d, %d", len(ta.Rows), len(tb.Rows))
	}
	// I-graph sizes must be at least the query path length lower bounds.
	for _, row := range tb.Rows {
		q3size, _ := strconv.Atoi(row[3])
		if q3size < 5 {
			t.Errorf("Q3 I-graph size %d implausibly small", q3size)
		}
	}
	tc, err := Fig5c(context.Background(), Fig5Options{Scale: 1, Seed: 1, Rate: 0.6, Ratios: []float64{0.02, 1.0}, Iterations: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(tc.Rows) != 2 {
		t.Fatalf("fig5c rows = %d", len(tc.Rows))
	}
	// Full budget must be affordable for every query.
	last := tc.Rows[len(tc.Rows)-1]
	for i := 1; i < len(last); i++ {
		if last[i] == "N/A" {
			t.Errorf("budget ratio 1.0 should be affordable, got N/A (col %d)", i)
		}
	}
}

func TestFig6Small(t *testing.T) {
	tabs, err := Fig6(context.Background(), Fig6Options{Scale: 1, Seed: 1, Rates: []float64{0.5, 1.0}, Iterations: 20})
	if err != nil {
		t.Fatal(err)
	}
	for _, tab := range tabs {
		for _, row := range tab.Rows {
			for i := 1; i < 3; i++ {
				cd, err := strconv.ParseFloat(row[i], 64)
				if err != nil {
					t.Fatalf("%s: bad cell %q", tab.ID, row[i])
				}
				if cd < 0 || cd > 1 {
					t.Errorf("%s: CD %v out of [0,1]", tab.ID, cd)
				}
			}
		}
	}
}

func TestFig7Small(t *testing.T) {
	tabs, err := Fig7(context.Background(), Fig7Options{Scale: 1, Seed: 1, Rate: 0.6, Ratios: []float64{0.5, 1.0}, Iterations: 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != 3 {
		t.Fatal("expected 3 panels")
	}
	// At full budget no cell should be N/A.
	for _, tab := range tabs {
		last := tab.Rows[len(tab.Rows)-1]
		for i := 1; i < len(last); i++ {
			if last[i] == "N/A" {
				t.Errorf("%s: N/A at budget ratio 1.0", tab.ID)
			}
		}
	}
}

func TestFig8Small(t *testing.T) {
	tabs, err := Fig8(context.Background(), Fig8Options{Scale: 1, Seed: 1, Rate: 0.7, ResampleRates: []float64{0.5, 0.9}, Eta: 200, Iterations: 20})
	if err != nil {
		t.Fatal(err)
	}
	for _, tab := range tabs {
		if len(tab.Rows) != 2 {
			t.Fatalf("%s rows = %d", tab.ID, len(tab.Rows))
		}
	}
}

func TestTable5(t *testing.T) {
	tab, err := Table5(context.Background(), Table5Options{Scale: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if tab.Rows[0][1] != "8" || tab.Rows[1][1] != "29" {
		t.Fatalf("instance counts wrong: %v", tab.Rows)
	}
	if !strings.Contains(tab.Rows[1][4], "sector") {
		t.Errorf("TPC-E min-attrs table should be sector: %v", tab.Rows[1])
	}
	if !strings.Contains(tab.Rows[1][5], "customer") {
		t.Errorf("TPC-E max-attrs table should be customer: %v", tab.Rows[1])
	}
}

func TestFDCounts(t *testing.T) {
	tab, err := FDCounts(context.Background(), "tpch", Table5Options{Scale: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 8 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Wider tables should generally have more AFDs; at minimum all counts
	// parse and lineitem (20 attrs) has more than region (4 attrs).
	counts := map[string]int{}
	for _, row := range tab.Rows {
		n, err := strconv.Atoi(row[3])
		if err != nil {
			t.Fatalf("bad count %q", row[3])
		}
		counts[row[0]] = n
	}
	if counts["lineitem"] <= counts["region"] {
		t.Errorf("lineitem AFDs (%d) should exceed region's (%d)", counts["lineitem"], counts["region"])
	}
}

func TestTable6(t *testing.T) {
	tab, err := Table6(context.Background(), Table6Options{Scale: 1, Seed: 1, Rate: 0.6, BudgetRatio: 0.8, Iterations: 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 { // 3 queries × 2 approaches
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for i := 0; i < len(tab.Rows); i += 2 {
		dance, direct := tab.Rows[i], tab.Rows[i+1]
		dc, _ := strconv.ParseFloat(dance[2], 64)
		gc, _ := strconv.ParseFloat(direct[2], 64)
		if gc+1e-9 < dc*0.5 {
			t.Errorf("%s: direct-purchase correlation %v implausibly below DANCE %v", dance[0], gc, dc)
		}
	}
}

func TestAblations(t *testing.T) {
	opts := AblationOptions{Scale: 1, Seed: 1, Rate: 0.6, Iterations: 15}
	st, err := AblationSteiner(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Rows) != 9 { // 3 queries × 3 strategies
		t.Fatalf("steiner rows = %d", len(st.Rows))
	}
	mc, err := AblationMCMC(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(mc.Rows) != 3 {
		t.Fatalf("mcmc rows = %d", len(mc.Rows))
	}
	pr, err := AblationPricing(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(pr.Rows) != 3 {
		t.Fatalf("pricing rows = %d", len(pr.Rows))
	}
	et, err := AblationEta(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(et.Rows) != 5 {
		t.Fatalf("eta rows = %d", len(et.Rows))
	}
}

func TestFigTPCHBudgetTime(t *testing.T) {
	tab, err := FigTPCHBudgetTime(context.Background(), Fig5Options{Scale: 1, Seed: 1, Rate: 0.6,
		Ratios: []float64{0.1, 1.0}, Iterations: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	last := tab.Rows[1]
	for i := 1; i < len(last); i++ {
		if last[i] == "N/A" {
			t.Errorf("budget ratio 1.0 should be affordable (col %d)", i)
		}
	}
}
