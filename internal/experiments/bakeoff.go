package experiments

import (
	"context"
	"fmt"

	"github.com/dance-db/dance/internal/policy"
	"github.com/dance-db/dance/internal/workload"
)

// BakeoffOptions parameterize the policy bake-off: every policy runs the
// same recovery panel (specs × seeds), and the report compares recovery
// rate against dollars spent — samples and plans billed separately, so a
// policy that abandons early (try-before-you-buy) shows its pilot-prefix
// bill next to the full-sample bill of the paper's own search.
type BakeoffOptions struct {
	RecoveryOptions
	// Policies compared; nil = every registered policy.
	Policies []string
}

// BakeoffPolicyResult aggregates one policy's sweep over the whole panel.
type BakeoffPolicyResult struct {
	Policy string `json:"policy"`
	// Runs is specs × seeds.
	Runs int `json:"runs"`
	// CorrRecovered / CostOptimal / Recovered count runs passing the
	// correlation bar, the cost bar, and both.
	CorrRecovered int `json:"corr_recovered"`
	CostOptimal   int `json:"cost_optimal"`
	Recovered     int `json:"recovered"`
	// Infeasible counts runs the policy legitimately ended without a plan
	// (no feasible option within the optimum budget, or an early abandon).
	Infeasible int `json:"infeasible"`
	// SampleSpend and PlanSpend sum the panel's bills: sample purchases
	// (full rounds, escalation deltas, pilot prefixes) and winning-plan
	// prices.
	SampleSpend float64 `json:"sample_spend"`
	PlanSpend   float64 `json:"plan_spend"`
	// PerSpec breaks the sweep down by workload spec.
	PerSpec []RecoveryResult `json:"per_spec,omitempty"`
}

// Rate returns the policy's panel-wide recovery fraction.
func (r BakeoffPolicyResult) Rate() float64 {
	if r.Runs == 0 {
		return 0
	}
	return float64(r.Recovered) / float64(r.Runs)
}

// TotalSpend returns samples plus plans.
func (r BakeoffPolicyResult) TotalSpend() float64 { return r.SampleSpend + r.PlanSpend }

// Bakeoff sweeps the recovery panel once per policy and renders the
// recovery-rate-vs-spend comparison (the nightly's bake-off artifact).
func Bakeoff(ctx context.Context, o BakeoffOptions) ([]BakeoffPolicyResult, Table, error) {
	o.RecoveryOptions = o.RecoveryOptions.withDefaults()
	names := o.Policies
	if len(names) == 0 {
		names = policy.Names()
	}
	tab := Table{
		ID:      "bakeoff",
		Title:   "acquisition-policy bake-off: recovery rate vs spend over the synthetic panel",
		Headers: []string{"policy", "runs", "corr ok", "cost ok", "recovered", "rate", "infeasible", "sample $", "plan $", "total $"},
	}
	var results []BakeoffPolicyResult
	for _, name := range names {
		if _, err := policy.Get(name); err != nil {
			return nil, tab, err
		}
		po := o.RecoveryOptions
		po.Policy = name
		res := BakeoffPolicyResult{Policy: name}
		for _, specStr := range po.Specs {
			spec, err := workload.ParseSpec(specStr)
			if err != nil {
				return nil, tab, err
			}
			sr := RecoveryResult{Spec: specStr, Seeds: po.Seeds}
			for i := 0; i < po.Seeds; i++ {
				out, err := RecoverOne(ctx, spec, po.BaseSeed+int64(i), po)
				if err != nil {
					return nil, tab, fmt.Errorf("bakeoff %s %s seed %d: %w", name, specStr, po.BaseSeed+int64(i), err)
				}
				res.Runs++
				if out.CorrOK {
					res.CorrRecovered++
					sr.CorrRecovered++
				}
				if out.CostOK {
					res.CostOptimal++
					sr.CostOptimal++
				}
				if out.Recovered() {
					res.Recovered++
					sr.Recovered++
				}
				if out.Infeasible {
					res.Infeasible++
				}
				res.SampleSpend += out.SampleSpend
				res.PlanSpend += out.PlanSpend
				sr.MeanRho += out.Rho / float64(po.Seeds)
				sr.MeanRealized += out.Realized / float64(po.Seeds)
			}
			res.PerSpec = append(res.PerSpec, sr)
		}
		results = append(results, res)
		tab.Rows = append(tab.Rows, []string{
			name,
			fmt.Sprintf("%d", res.Runs),
			fmt.Sprintf("%d", res.CorrRecovered),
			fmt.Sprintf("%d", res.CostOptimal),
			fmt.Sprintf("%d", res.Recovered),
			fmt.Sprintf("%.2f", res.Rate()),
			fmt.Sprintf("%d", res.Infeasible),
			fmtF(res.SampleSpend),
			fmtF(res.PlanSpend),
			fmtF(res.TotalSpend()),
		})
	}
	return results, tab, nil
}
