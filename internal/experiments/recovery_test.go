package experiments

import (
	"context"
	"testing"

	"github.com/dance-db/dance/internal/workload"
)

func TestRecoverySweep(t *testing.T) {
	results, tab, err := Recovery(context.Background(), RecoveryOptions{Seeds: 2, BaseSeed: 50})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(DefaultRecoverySpecs()) {
		t.Fatalf("got %d results for %d specs", len(results), len(DefaultRecoverySpecs()))
	}
	if len(tab.Rows) != len(results) {
		t.Fatalf("table rows %d != results %d", len(tab.Rows), len(results))
	}
	total, recovered := 0, 0
	for _, r := range results {
		total += r.Seeds
		recovered += r.Recovered
		if r.CorrRecovered == 0 {
			t.Errorf("%s: correlation never recovered over %d seeds", r.Spec, r.Seeds)
		}
	}
	// The acceptance bar of the scenario matrix, applied to the sweep.
	if rate := float64(recovered) / float64(total); rate < 0.90 {
		t.Errorf("aggregate recovery rate %.2f below 0.90:\n%s", rate, tab.Render())
	}
}

func TestRecoverOneVerdicts(t *testing.T) {
	spec, err := workload.ParseSpec("chain:2")
	if err != nil {
		t.Fatal(err)
	}
	out, err := RecoverOne(context.Background(), spec, 5, RecoveryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Recovered() {
		t.Fatalf("clean chain:2 not recovered: %+v", out)
	}
	if out.Rho <= 0 || out.Realized <= 0 {
		t.Fatalf("degenerate correlations: rho=%v realized=%v", out.Rho, out.Realized)
	}
	if out.SampleSpend <= 0 || out.PlanSpend <= 0 {
		t.Fatalf("spend not accounted: %+v", out)
	}
}
