package graphalg

import (
	"math"
	"sort"
)

// SteinerTree is a connected subgraph spanning a terminal set.
type SteinerTree struct {
	Vertices []int    // sorted
	Edges    [][2]int // sorted, normalized u < v
	Weight   float64
}

func newTreeFromEdgeSet(g *Graph, edges map[[2]int]bool, terminals []int) *SteinerTree {
	// Prune non-terminal leaves repeatedly (a landmark or detour vertex of
	// degree 1 contributes weight without connecting anything).
	term := map[int]bool{}
	for _, t := range terminals {
		term[t] = true
	}
	deg := map[int]int{}
	for e := range edges {
		deg[e[0]]++
		deg[e[1]]++
	}
	changed := true
	for changed {
		changed = false
		for e := range edges {
			for _, v := range []int{e[0], e[1]} {
				if deg[v] == 1 && !term[v] {
					delete(edges, e)
					deg[e[0]]--
					deg[e[1]]--
					changed = true
					break
				}
			}
			if changed {
				break
			}
		}
	}

	verts := map[int]bool{}
	for _, t := range terminals {
		verts[t] = true
	}
	t := &SteinerTree{}
	for e := range edges {
		verts[e[0]] = true
		verts[e[1]] = true
		t.Edges = append(t.Edges, e)
		t.Weight += g.Weight(e[0], e[1])
	}
	for v := range verts {
		t.Vertices = append(t.Vertices, v)
	}
	sort.Ints(t.Vertices)
	sort.Slice(t.Edges, func(i, j int) bool {
		if t.Edges[i][0] != t.Edges[j][0] {
			return t.Edges[i][0] < t.Edges[j][0]
		}
		return t.Edges[i][1] < t.Edges[j][1]
	})
	return t
}

// SteinerViaLandmarks implements the paper's Step 1 heuristic: for each
// landmark m, union the precomputed shortest paths terminal→m; the
// candidate with minimal total weight wins. Returns (nil, false) when no
// landmark reaches every terminal. The per-landmark union is a subtree of
// m's shortest-path tree, so the result is always a tree.
func (g *Graph) SteinerViaLandmarks(lm *Landmarks, terminals []int) (*SteinerTree, bool) {
	trees := g.steinerLandmarkCandidates(lm, terminals)
	if len(trees) == 0 {
		return nil, false
	}
	return trees[0], true
}

// SteinerLandmarkCandidates returns all distinct landmark-union candidates
// sorted by ascending weight; Step 1 exposes them so the online search can
// fall back to the next-best I-graph when constraints fail.
func (g *Graph) SteinerLandmarkCandidates(lm *Landmarks, terminals []int) []*SteinerTree {
	return g.steinerLandmarkCandidates(lm, terminals)
}

func (g *Graph) steinerLandmarkCandidates(lm *Landmarks, terminals []int) []*SteinerTree {
	if len(terminals) == 0 {
		return nil
	}
	var trees []*SteinerTree
	seen := map[string]bool{}
	for i := range lm.IDs {
		m := lm.IDs[i]
		ok := true
		edges := map[[2]int]bool{}
		for _, t := range terminals {
			if math.IsInf(lm.dist[i][t], 1) {
				ok = false
				break
			}
			path := PathFromParents(lm.parents[i], m, t)
			if path == nil {
				ok = false
				break
			}
			for j := 0; j+1 < len(path); j++ {
				edges[edgeKey(path[j], path[j+1])] = true
			}
		}
		if !ok {
			continue
		}
		tr := newTreeFromEdgeSet(g, edges, terminals)
		key := treeKey(tr)
		if seen[key] {
			continue
		}
		seen[key] = true
		trees = append(trees, tr)
	}
	sort.SliceStable(trees, func(a, b int) bool { return trees[a].Weight < trees[b].Weight })
	return trees
}

func treeKey(t *SteinerTree) string {
	b := make([]byte, 0, len(t.Edges)*8)
	for _, e := range t.Edges {
		b = append(b, byte(e[0]), byte(e[0]>>8), byte(e[1]), byte(e[1]>>8))
	}
	return string(b)
}

// SteinerMSTApprox is the classic 2-approximation: build the metric closure
// over terminals, take its MST, and expand each MST edge into the
// corresponding shortest path. Returns (nil, false) if terminals are
// disconnected.
func (g *Graph) SteinerMSTApprox(terminals []int) (*SteinerTree, bool) {
	if len(terminals) == 0 {
		return nil, false
	}
	if len(terminals) == 1 {
		return &SteinerTree{Vertices: []int{terminals[0]}}, true
	}
	k := len(terminals)
	dists := make([][]float64, k)
	parents := make([][]int, k)
	for i, t := range terminals {
		dists[i], parents[i] = g.Dijkstra(t)
	}
	// Prim's MST over the metric closure.
	inTree := make([]bool, k)
	best := make([]float64, k)
	bestFrom := make([]int, k)
	for i := range best {
		best[i] = math.Inf(1)
		bestFrom[i] = -1
	}
	inTree[0] = true
	for j := 1; j < k; j++ {
		if d := dists[0][terminals[j]]; d < best[j] {
			best[j] = d
			bestFrom[j] = 0
		}
	}
	edges := map[[2]int]bool{}
	for added := 1; added < k; added++ {
		pick := -1
		for j := 0; j < k; j++ {
			if !inTree[j] && (pick == -1 || best[j] < best[pick]) {
				pick = j
			}
		}
		if pick == -1 || math.IsInf(best[pick], 1) {
			return nil, false
		}
		// Expand the closure edge (bestFrom[pick] → pick) into graph edges.
		src := bestFrom[pick]
		path := PathFromParents(parents[src], terminals[src], terminals[pick])
		if path == nil {
			return nil, false
		}
		for j := 0; j+1 < len(path); j++ {
			edges[edgeKey(path[j], path[j+1])] = true
		}
		inTree[pick] = true
		for j := 0; j < k; j++ {
			if !inTree[j] {
				if d := dists[pick][terminals[j]]; d < best[j] {
					best[j] = d
					bestFrom[j] = pick
				}
			}
		}
	}
	return newTreeFromEdgeSet(g, edges, terminals), true
}

// SteinerExact solves the Steiner tree problem exactly with Dreyfus–Wagner
// dynamic programming: O(3^t·n + 2^t·n²) for t terminals. Intended for the
// LP/GP brute-force baselines and tests (t ≤ ~12, small n).
func (g *Graph) SteinerExact(terminals []int) (*SteinerTree, bool) {
	t := len(terminals)
	if t == 0 {
		return nil, false
	}
	if t == 1 {
		return &SteinerTree{Vertices: []int{terminals[0]}}, true
	}
	n := g.n
	full := (1 << t) - 1

	// All-pairs shortest paths via Dijkstra from every vertex.
	dist := make([][]float64, n)
	par := make([][]int, n)
	for v := 0; v < n; v++ {
		dist[v], par[v] = g.Dijkstra(v)
	}

	inf := math.Inf(1)
	// dp[S][v] = weight of the cheapest tree spanning terminal set S ∪ {v}.
	dp := make([][]float64, full+1)
	// choice records how dp[S][v] was achieved for reconstruction:
	// kind 0 = base, 1 = dp[S][u] + path(u,v), 2 = dp[A][v] + dp[S−A][v].
	type step struct {
		kind int
		u    int // kind 1: intermediate vertex
		sub  int // kind 2: subset A
	}
	choice := make([][]step, full+1)
	for s := 0; s <= full; s++ {
		dp[s] = make([]float64, n)
		choice[s] = make([]step, n)
		for v := range dp[s] {
			dp[s][v] = inf
		}
	}
	for i, term := range terminals {
		for v := 0; v < n; v++ {
			dp[1<<i][v] = dist[term][v]
			choice[1<<i][v] = step{kind: 1, u: term}
		}
	}

	for s := 1; s <= full; s++ {
		if s&(s-1) == 0 {
			continue // singleton handled above
		}
		// Merge subtrees meeting at v.
		for v := 0; v < n; v++ {
			for a := (s - 1) & s; a > 0; a = (a - 1) & s {
				b := s &^ a
				if b == 0 || a > b {
					continue // each split once
				}
				if w := dp[a][v] + dp[b][v]; w < dp[s][v] {
					dp[s][v] = w
					choice[s][v] = step{kind: 2, sub: a}
				}
			}
		}
		// Relax: grow tree at u then connect u→v by shortest path.
		// One Bellman-style pass over all pairs (sufficient because dist is
		// a metric closure).
		for v := 0; v < n; v++ {
			for u := 0; u < n; u++ {
				if u == v {
					continue
				}
				if w := dp[s][u] + dist[u][v]; w < dp[s][v] {
					dp[s][v] = w
					choice[s][v] = step{kind: 1, u: u}
				}
			}
		}
	}

	root := terminals[0]
	if math.IsInf(dp[full][root], 1) {
		return nil, false
	}

	// Reconstruct the edge set.
	edges := map[[2]int]bool{}
	var rec func(s, v int)
	rec = func(s, v int) {
		if s&(s-1) == 0 {
			ti := 0
			for s>>uint(ti) != 1 {
				ti++
			}
			addPath(par[terminals[ti]], terminals[ti], v, edges)
			return
		}
		c := choice[s][v]
		switch c.kind {
		case 1:
			addPath(par[c.u], c.u, v, edges)
			rec(s, c.u)
		case 2:
			rec(c.sub, v)
			rec(s&^c.sub, v)
		}
	}
	rec(full, root)
	return newTreeFromEdgeSet(g, edges, terminals), true
}

func addPath(parent []int, src, v int, edges map[[2]int]bool) {
	path := PathFromParents(parent, src, v)
	for j := 0; j+1 < len(path); j++ {
		edges[edgeKey(path[j], path[j+1])] = true
	}
}
