// Package graphalg provides the graph machinery behind DANCE's Step 1
// (Sec 5.1): weighted undirected graphs, Dijkstra shortest paths, random
// landmarks with precomputed shortest-path trees (after Gubichev et al., the
// paper's [10]), and three Steiner-tree strategies — the paper's
// landmark-union heuristic, the classic MST 2-approximation (Vazirani, the
// paper's [29]), and exact Dreyfus–Wagner dynamic programming used by the
// brute-force baselines and tests.
package graphalg

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Graph is a weighted undirected graph over vertices 0..N-1. Parallel edges
// collapse to the minimum weight.
type Graph struct {
	n      int
	adj    [][]int // neighbor lists
	weight map[[2]int]float64
}

// NewGraph returns an empty graph with n vertices.
func NewGraph(n int) *Graph {
	return &Graph{n: n, adj: make([][]int, n), weight: make(map[[2]int]float64)}
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

func edgeKey(u, v int) [2]int {
	if u > v {
		u, v = v, u
	}
	return [2]int{u, v}
}

// AddEdge inserts an undirected edge. Re-adding an edge keeps the smaller
// weight. Self-loops are rejected.
func (g *Graph) AddEdge(u, v int, w float64) {
	if u == v {
		panic(fmt.Sprintf("graphalg: self-loop at %d", u))
	}
	if u < 0 || v < 0 || u >= g.n || v >= g.n {
		panic(fmt.Sprintf("graphalg: edge (%d,%d) out of range [0,%d)", u, v, g.n))
	}
	k := edgeKey(u, v)
	if old, ok := g.weight[k]; ok {
		if w < old {
			g.weight[k] = w
		}
		return
	}
	g.weight[k] = w
	g.adj[u] = append(g.adj[u], v)
	g.adj[v] = append(g.adj[v], u)
}

// HasEdge reports whether the undirected edge exists.
func (g *Graph) HasEdge(u, v int) bool {
	_, ok := g.weight[edgeKey(u, v)]
	return ok
}

// Weight returns the weight of edge (u, v); it panics if absent.
func (g *Graph) Weight(u, v int) float64 {
	w, ok := g.weight[edgeKey(u, v)]
	if !ok {
		panic(fmt.Sprintf("graphalg: no edge (%d,%d)", u, v))
	}
	return w
}

// Neighbors returns the adjacency list of u (do not mutate).
func (g *Graph) Neighbors(u int) []int { return g.adj[u] }

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int { return len(g.weight) }

// Edges returns all undirected edges sorted lexicographically.
func (g *Graph) Edges() [][2]int {
	out := make([][2]int, 0, len(g.weight))
	for k := range g.weight {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// pqItem is a priority-queue entry for Dijkstra.
type pqItem struct {
	v    int
	dist float64
}

type pq []pqItem

func (p pq) Len() int            { return len(p) }
func (p pq) Less(i, j int) bool  { return p[i].dist < p[j].dist }
func (p pq) Swap(i, j int)       { p[i], p[j] = p[j], p[i] }
func (p *pq) Push(x interface{}) { *p = append(*p, x.(pqItem)) }
func (p *pq) Pop() interface{} {
	old := *p
	n := len(old)
	it := old[n-1]
	*p = old[:n-1]
	return it
}

// Dijkstra computes single-source shortest paths from src. dist is +Inf for
// unreachable vertices; parent is -1 at src and at unreachable vertices.
func (g *Graph) Dijkstra(src int) (dist []float64, parent []int) {
	dist = make([]float64, g.n)
	parent = make([]int, g.n)
	for i := range dist {
		dist[i] = math.Inf(1)
		parent[i] = -1
	}
	dist[src] = 0
	q := &pq{{v: src, dist: 0}}
	for q.Len() > 0 {
		it := heap.Pop(q).(pqItem)
		if it.dist > dist[it.v] {
			continue // stale entry
		}
		for _, nb := range g.adj[it.v] {
			nd := it.dist + g.Weight(it.v, nb)
			if nd < dist[nb] {
				dist[nb] = nd
				parent[nb] = it.v
				heap.Push(q, pqItem{v: nb, dist: nd})
			}
		}
	}
	return dist, parent
}

// PathFromParents reconstructs the path src→v from a parent array produced
// by Dijkstra(src). Returns nil if v is unreachable.
func PathFromParents(parent []int, src, v int) []int {
	if v == src {
		return []int{src}
	}
	if parent[v] == -1 {
		return nil
	}
	var rev []int
	for cur := v; cur != -1; cur = parent[cur] {
		rev = append(rev, cur)
		if cur == src {
			break
		}
	}
	if rev[len(rev)-1] != src {
		return nil
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// Landmarks holds precomputed shortest-path trees from randomly chosen
// landmark vertices (the offline sketch of Gubichev et al.).
type Landmarks struct {
	IDs     []int
	dist    [][]float64
	parents [][]int
}

// BuildLandmarks picks min(k, N) distinct random landmarks and runs Dijkstra
// from each. rng may be nil for a fixed default.
func (g *Graph) BuildLandmarks(k int, rng *rand.Rand) *Landmarks {
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	if k > g.n {
		k = g.n
	}
	perm := rng.Perm(g.n)[:k]
	sort.Ints(perm)
	lm := &Landmarks{IDs: perm}
	for _, v := range perm {
		d, p := g.Dijkstra(v)
		lm.dist = append(lm.dist, d)
		lm.parents = append(lm.parents, p)
	}
	return lm
}

// ApproxDistance estimates dist(u, v) by landmark triangulation:
// min over landmarks of dist(u, m) + dist(m, v). It upper-bounds the true
// distance.
func (lm *Landmarks) ApproxDistance(u, v int) float64 {
	best := math.Inf(1)
	for i := range lm.IDs {
		if d := lm.dist[i][u] + lm.dist[i][v]; d < best {
			best = d
		}
	}
	return best
}
