package graphalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// lineGraph: 0 - 1 - 2 - ... - (n-1), unit weights.
func lineGraph(n int) *Graph {
	g := NewGraph(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1, 1)
	}
	return g
}

// diamond builds
//
//	  1
//	 / \
//	0   3 --- 4
//	 \ /
//	  2
//
// with 0-1-3 cheap (0.5 each) and 0-2-3 expensive (2 each).
func diamond() *Graph {
	g := NewGraph(5)
	g.AddEdge(0, 1, 0.5)
	g.AddEdge(1, 3, 0.5)
	g.AddEdge(0, 2, 2)
	g.AddEdge(2, 3, 2)
	g.AddEdge(3, 4, 1)
	return g
}

func TestAddEdgeAndAccessors(t *testing.T) {
	g := diamond()
	if g.N() != 5 || g.NumEdges() != 5 {
		t.Fatalf("N=%d edges=%d", g.N(), g.NumEdges())
	}
	if !g.HasEdge(1, 0) || g.HasEdge(0, 4) {
		t.Fatal("HasEdge wrong")
	}
	if g.Weight(3, 1) != 0.5 {
		t.Fatalf("Weight(3,1) = %v", g.Weight(3, 1))
	}
	// Parallel edge keeps minimum.
	g.AddEdge(0, 1, 0.1)
	if g.Weight(0, 1) != 0.1 {
		t.Fatalf("parallel edge weight = %v, want 0.1", g.Weight(0, 1))
	}
	g.AddEdge(0, 1, 5)
	if g.Weight(0, 1) != 0.1 {
		t.Fatal("heavier parallel edge must not overwrite")
	}
	if len(g.Edges()) != g.NumEdges() {
		t.Fatal("Edges() length mismatch")
	}
}

func TestSelfLoopPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("self loop should panic")
		}
	}()
	NewGraph(2).AddEdge(1, 1, 1)
}

func TestDijkstraLine(t *testing.T) {
	g := lineGraph(6)
	dist, parent := g.Dijkstra(0)
	for i := 0; i < 6; i++ {
		if dist[i] != float64(i) {
			t.Fatalf("dist[%d] = %v", i, dist[i])
		}
	}
	path := PathFromParents(parent, 0, 5)
	if len(path) != 6 || path[0] != 0 || path[5] != 5 {
		t.Fatalf("path = %v", path)
	}
}

func TestDijkstraPicksCheapSide(t *testing.T) {
	g := diamond()
	dist, parent := g.Dijkstra(0)
	if dist[3] != 1.0 {
		t.Fatalf("dist[3] = %v, want 1 (via vertex 1)", dist[3])
	}
	path := PathFromParents(parent, 0, 3)
	if len(path) != 3 || path[1] != 1 {
		t.Fatalf("path = %v, want [0 1 3]", path)
	}
}

func TestDijkstraUnreachable(t *testing.T) {
	g := NewGraph(3)
	g.AddEdge(0, 1, 1)
	dist, parent := g.Dijkstra(0)
	if !math.IsInf(dist[2], 1) {
		t.Fatalf("dist[2] = %v, want +Inf", dist[2])
	}
	if PathFromParents(parent, 0, 2) != nil {
		t.Fatal("path to unreachable vertex should be nil")
	}
}

func TestPathFromParentsSelf(t *testing.T) {
	g := lineGraph(3)
	_, parent := g.Dijkstra(1)
	path := PathFromParents(parent, 1, 1)
	if len(path) != 1 || path[0] != 1 {
		t.Fatalf("self path = %v", path)
	}
}

func TestLandmarksApproxDistanceUpperBound(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := randomConnectedGraph(30, 60, rng)
	lm := g.BuildLandmarks(6, rng)
	if len(lm.IDs) != 6 {
		t.Fatalf("landmarks = %d", len(lm.IDs))
	}
	for trial := 0; trial < 50; trial++ {
		u, v := rng.Intn(30), rng.Intn(30)
		dist, _ := g.Dijkstra(u)
		approx := lm.ApproxDistance(u, v)
		if approx < dist[v]-1e-9 {
			t.Fatalf("approx %v < true %v for (%d,%d)", approx, dist[v], u, v)
		}
	}
}

func TestBuildLandmarksCapsAtN(t *testing.T) {
	g := lineGraph(4)
	lm := g.BuildLandmarks(100, nil)
	if len(lm.IDs) != 4 {
		t.Fatalf("landmarks = %d, want 4", len(lm.IDs))
	}
}

func randomConnectedGraph(n, extraEdges int, rng *rand.Rand) *Graph {
	g := NewGraph(n)
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		g.AddEdge(perm[i], perm[rng.Intn(i)], 0.1+rng.Float64())
	}
	for i := 0; i < extraEdges; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.AddEdge(u, v, 0.1+rng.Float64())
		}
	}
	return g
}

func terminalsIn(tr *SteinerTree, terminals []int) bool {
	have := map[int]bool{}
	for _, v := range tr.Vertices {
		have[v] = true
	}
	for _, t := range terminals {
		if !have[t] {
			return false
		}
	}
	return true
}

// connected verifies the tree's edge set connects all its terminals.
func connectedTree(tr *SteinerTree, terminals []int) bool {
	if len(terminals) <= 1 {
		return true
	}
	adj := map[int][]int{}
	for _, e := range tr.Edges {
		adj[e[0]] = append(adj[e[0]], e[1])
		adj[e[1]] = append(adj[e[1]], e[0])
	}
	seen := map[int]bool{terminals[0]: true}
	stack := []int{terminals[0]}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, nb := range adj[v] {
			if !seen[nb] {
				seen[nb] = true
				stack = append(stack, nb)
			}
		}
	}
	for _, t := range terminals {
		if !seen[t] {
			return false
		}
	}
	return true
}

func TestSteinerExactDiamond(t *testing.T) {
	g := diamond()
	tr, ok := g.SteinerExact([]int{0, 4})
	if !ok {
		t.Fatal("no tree found")
	}
	if math.Abs(tr.Weight-2.0) > 1e-9 { // 0-1-3-4 = 0.5+0.5+1
		t.Fatalf("weight = %v, want 2", tr.Weight)
	}
	if !connectedTree(tr, []int{0, 4}) {
		t.Fatal("tree does not connect terminals")
	}
}

func TestSteinerExactThreeTerminals(t *testing.T) {
	// Star: center 0, spokes 1,2,3 with weight 1 each; direct expensive
	// edges between spokes weight 3.
	g := NewGraph(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(0, 2, 1)
	g.AddEdge(0, 3, 1)
	g.AddEdge(1, 2, 3)
	g.AddEdge(2, 3, 3)
	tr, ok := g.SteinerExact([]int{1, 2, 3})
	if !ok {
		t.Fatal("no tree")
	}
	if math.Abs(tr.Weight-3.0) > 1e-9 {
		t.Fatalf("weight = %v, want 3 (via Steiner vertex 0)", tr.Weight)
	}
}

func TestSteinerSingleTerminal(t *testing.T) {
	g := diamond()
	for _, f := range []func([]int) (*SteinerTree, bool){g.SteinerExact, g.SteinerMSTApprox} {
		tr, ok := f([]int{2})
		if !ok || len(tr.Vertices) != 1 || tr.Weight != 0 {
			t.Fatalf("single-terminal tree = %+v, %v", tr, ok)
		}
	}
}

func TestSteinerDisconnected(t *testing.T) {
	g := NewGraph(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(2, 3, 1)
	if _, ok := g.SteinerExact([]int{0, 2}); ok {
		t.Fatal("exact should fail on disconnected terminals")
	}
	if _, ok := g.SteinerMSTApprox([]int{0, 2}); ok {
		t.Fatal("MST approx should fail on disconnected terminals")
	}
	lm := g.BuildLandmarks(4, nil)
	if _, ok := g.SteinerViaLandmarks(lm, []int{0, 2}); ok {
		t.Fatal("landmark heuristic should fail on disconnected terminals")
	}
}

func TestSteinerViaLandmarksFindsTree(t *testing.T) {
	g := diamond()
	lm := g.BuildLandmarks(5, nil) // all vertices as landmarks
	tr, ok := g.SteinerViaLandmarks(lm, []int{0, 4})
	if !ok {
		t.Fatal("no tree")
	}
	// With every vertex as a landmark, the optimal 0-1-3-4 union appears.
	if math.Abs(tr.Weight-2.0) > 1e-9 {
		t.Fatalf("weight = %v, want 2", tr.Weight)
	}
	cands := g.SteinerLandmarkCandidates(lm, []int{0, 4})
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	for i := 1; i < len(cands); i++ {
		if cands[i].Weight < cands[i-1].Weight {
			t.Fatal("candidates not sorted by weight")
		}
	}
}

func TestSteinerLandmarkPrunesDanglingLandmark(t *testing.T) {
	// Landmark 4 hangs off the path between terminals 0 and 3; the union
	// via landmark 4 includes edge 3-4 which pruning must remove.
	g := diamond()
	lm := &Landmarks{IDs: []int{4}}
	d, p := g.Dijkstra(4)
	lm.dist = [][]float64{d}
	lm.parents = [][]int{p}
	tr, ok := g.SteinerViaLandmarks(lm, []int{0, 3})
	if !ok {
		t.Fatal("no tree")
	}
	for _, v := range tr.Vertices {
		if v == 4 {
			t.Fatalf("dangling landmark not pruned: %+v", tr)
		}
	}
	if math.Abs(tr.Weight-1.0) > 1e-9 {
		t.Fatalf("weight = %v, want 1", tr.Weight)
	}
}

// Property: exact ≤ MST-approx ≤ 2 × exact, and landmark heuristic ≥ exact;
// all outputs span the terminals.
func TestQuickSteinerQualityOrdering(t *testing.T) {
	f := func(seed int64, termPick [3]uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		const n = 14
		g := randomConnectedGraph(n, 20, rng)
		terminals := []int{int(termPick[0]) % n, int(termPick[1]) % n, int(termPick[2]) % n}
		set := map[int]bool{}
		var uniq []int
		for _, t := range terminals {
			if !set[t] {
				set[t] = true
				uniq = append(uniq, t)
			}
		}
		exact, ok1 := g.SteinerExact(uniq)
		approx, ok2 := g.SteinerMSTApprox(uniq)
		lm := g.BuildLandmarks(5, rng)
		heur, ok3 := g.SteinerViaLandmarks(lm, uniq)
		if !ok1 || !ok2 || !ok3 {
			return false // graph is connected, all must succeed
		}
		if !terminalsIn(exact, uniq) || !terminalsIn(approx, uniq) || !terminalsIn(heur, uniq) {
			return false
		}
		if !connectedTree(exact, uniq) || !connectedTree(approx, uniq) || !connectedTree(heur, uniq) {
			return false
		}
		const eps = 1e-9
		return exact.Weight <= approx.Weight+eps &&
			approx.Weight <= 2*exact.Weight+eps &&
			exact.Weight <= heur.Weight+eps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestNeighbors(t *testing.T) {
	g := diamond()
	nb := g.Neighbors(3)
	if len(nb) != 3 { // 1, 2, 4
		t.Fatalf("Neighbors(3) = %v", nb)
	}
}
