// Package cli holds the shared plumbing for the repo's command-line
// entry points. Every cmd/ main derives its lifetime from RootContext so
// Ctrl-C and SIGTERM cancel in-flight marketplace work instead of killing
// it mid-purchase — the ctxflow analyzer enforces that no library package
// manufactures its own root.
package cli

import (
	"context"
	"os"
	"os/signal"
	"syscall"
)

// RootContext returns the process-lifetime context, cancelled on SIGINT or
// SIGTERM. stop releases the signal registration (a second signal then
// kills the process immediately, the conventional escape hatch for a hung
// shutdown).
//
//dancevet:ignore ctxflow RootContext IS the root: the one sanctioned factory for process-lifetime contexts
func RootContext() (ctx context.Context, stop context.CancelFunc) {
	//dancevet:ignore ctxflow the process root: the one place outside main allowed to mint a context
	return signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
}
