// Package persist is danced's durable offline state: a pluggable Store
// interface plus a file-backed append-log implementation that journals
// service ledger entries, stored plans, and the versioned sample store, so a
// restarted danced recovers everything it paid for from disk instead of
// re-buying it from the marketplace.
//
// The file layout is a single JSONL journal plus CSV side files:
//
//	<dir>/journal.jsonl       one JSON record per line, typed by "t"
//	<dir>/datasets/<hash>.csv one per dataset, canonical prefix-order rows
//
// Dataset rows go to side files (written atomically: temp file, fsync,
// rename) because they are large and replaced wholesale per escalation; the
// journal holds only their metadata. Journal appends are fsynced by default
// — entries record money — and replay is last-wins for rates, datasets and
// plans, append-only for ledger entries. A torn final line (the crash-mid-
// append case) is tolerated and dropped; corruption anywhere earlier is an
// error, not a silent truncation.
//
// Samples are journaled after merge, in the canonical hash-unit prefix
// order of sampling.CorrelatedSampleRange, so a recovered dataset is
// bit-identical to the bought-and-merged one and remains extendable by
// future SampleDelta purchases.
package persist

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"

	"github.com/dance-db/dance/internal/fd"
	"github.com/dance-db/dance/internal/relation"
)

// LedgerRecord mirrors one service ledger entry.
type LedgerRecord struct {
	// Kind is "sample", "sample_delta" or "purchase".
	Kind     string  `json:"kind"`
	PlanID   string  `json:"plan_id,omitempty"`
	FromRate float64 `json:"from_rate,omitempty"`
	ToRate   float64 `json:"to_rate,omitempty"`
	Amount   float64 `json:"amount"`
	// Policy attributes the charge to the acquisition policy that incurred
	// it ("" for explicit offline refreshes and pre-policy journals).
	Policy string `json:"policy,omitempty"`
}

// QueryRecord is one projection purchase of a stored plan.
type QueryRecord struct {
	Instance string   `json:"instance"`
	Attrs    []string `json:"attrs"`
}

// JoinStepRecord is one hop of a stored plan's join path.
type JoinStepRecord struct {
	Table string   `json:"table"`
	On    []string `json:"on"`
}

// MetricsRecord mirrors the four search metrics.
type MetricsRecord struct {
	Correlation float64 `json:"correlation"`
	Quality     float64 `json:"quality"`
	Weight      float64 `json:"weight"`
	Price       float64 `json:"price"`
}

// RequestRecord echoes the acquisition request a stored plan answers —
// enough to recompute realized metrics after a restart.
type RequestRecord struct {
	SourceAttrs  []string `json:"source_attrs,omitempty"`
	TargetAttrs  []string `json:"target_attrs"`
	Budget       float64  `json:"budget,omitempty"`
	Alpha        float64  `json:"alpha,omitempty"`
	Beta         float64  `json:"beta,omitempty"`
	Iterations   int      `json:"iterations,omitempty"`
	Eta          int      `json:"eta,omitempty"`
	ResampleRate float64  `json:"resample_rate,omitempty"`
	Landmarks    int      `json:"landmarks,omitempty"`
	MaxCovers    int      `json:"max_covers,omitempty"`
	MaxIGraphs   int      `json:"max_igraphs,omitempty"`
	Seed         int64    `json:"seed,omitempty"`
	Greedy       bool     `json:"greedy,omitempty"`
	// Policy names the acquisition policy that produced the plan;
	// PolicyParams are its merged tunables. Both empty for plans journaled
	// before policies existed (they replay under the default policy).
	Policy       string             `json:"policy,omitempty"`
	PolicyParams map[string]float64 `json:"policy_params,omitempty"`
}

// PlanRecord is the serializable form of a stored acquisition plan: the
// purchases, the join path and weight of its target graph, the FD set its
// quality was judged by, and the estimates. Everything Execute needs,
// without the live joingraph the search produced.
type PlanRecord struct {
	ID      string           `json:"id"`
	Queries []QueryRecord    `json:"queries"`
	Steps   []JoinStepRecord `json:"steps"`
	Weight  float64          `json:"weight"`
	FDs     []fd.FD          `json:"fds,omitempty"`
	Est     MetricsRecord    `json:"est"`
	Evals   int              `json:"evals,omitempty"`
	Request RequestRecord    `json:"request"`
}

// DatasetRecord is the metadata of one journaled sample-store dataset; the
// rows live in the CSV side file named by File.
type DatasetRecord struct {
	Name      string   `json:"name"`
	JoinAttrs []string `json:"join_attrs"`
	Seed      uint64   `json:"seed"`
	Rate      float64  `json:"rate"`
	FullRows  int      `json:"full_rows"`
	FDs       []fd.FD  `json:"fds,omitempty"`
	// FDsResolved distinguishes "FDs were resolved, possibly to none" from
	// "never resolved" — the sample store's non-nil marker, made explicit
	// because JSON cannot tell nil from empty.
	FDsResolved bool `json:"fds_resolved,omitempty"`
	// File is the dataset's CSV side file, relative to the store root.
	File string `json:"file,omitempty"`
}

// Dataset is one recovered dataset: its journaled metadata plus the rows
// read back from the side file.
type Dataset struct {
	DatasetRecord
	Table *relation.Table
}

// State is everything a Load recovers, in journal-replay order.
type State struct {
	// Rate is the last committed store-wide sampling rate (0 when never
	// committed).
	Rate float64
	// Ledger holds every journaled ledger entry, oldest first.
	Ledger []LedgerRecord
	// Plans holds the last journaled record per plan ID, oldest-first by
	// first appearance.
	Plans []PlanRecord
	// Datasets holds the last journaled record per dataset name,
	// oldest-first by first appearance, rows included.
	Datasets []Dataset
}

// Store journals danced's durable state. Implementations must be safe for
// concurrent use. Load may be called at any time and returns the state as
// of the last completed append; recovery calls it once per consumer at
// startup (the service layer for ledger and plans, the middleware for the
// sample store).
type Store interface {
	// Load replays the journal into a State.
	Load() (*State, error)
	// AppendLedger journals one ledger entry (append-only).
	AppendLedger(rec LedgerRecord) error
	// SavePlan journals a plan (last record per ID wins).
	SavePlan(rec PlanRecord) error
	// SaveDataset writes the dataset's rows to durable storage and journals
	// its metadata (last record per name wins). rec.File is assigned by the
	// store.
	SaveDataset(rec DatasetRecord, t *relation.Table) error
	// SaveRate journals the committed store-wide sampling rate.
	SaveRate(rate float64) error
	// Flush forces buffered appends to durable storage.
	Flush() error
	// Close flushes and releases the store.
	Close() error
}

// journalRecord is the typed envelope of one journal line.
type journalRecord struct {
	T       string         `json:"t"` // "ledger", "plan", "dataset", "rate"
	Rate    *float64       `json:"rate,omitempty"`
	Ledger  *LedgerRecord  `json:"ledger,omitempty"`
	Plan    *PlanRecord    `json:"plan,omitempty"`
	Dataset *DatasetRecord `json:"dataset,omitempty"`
}

// FileStore is the file-backed Store described in the package comment.
type FileStore struct {
	dir  string
	sync bool

	mu      sync.Mutex // lockorder: leaf
	journal *os.File   // guarded by mu
	closed  bool       // guarded by mu
}

var _ Store = (*FileStore)(nil)

// Options tune a FileStore.
type Options struct {
	// NoSync skips the per-append fsync. Appends then reach the OS on every
	// call but the disk only at Flush/Close — faster, with a crash window.
	NoSync bool
}

// Open creates (or reopens) a file store rooted at dir. A torn final
// journal line — the signature a crash mid-append leaves, since records
// contain no raw newlines and a partial write persists as a prefix — is
// truncated away first, so the next append starts a fresh, parseable line
// instead of gluing onto the partial record.
func Open(dir string, opts Options) (*FileStore, error) {
	if err := os.MkdirAll(filepath.Join(dir, "datasets"), 0o755); err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	path := filepath.Join(dir, "journal.jsonl")
	if err := repairTail(path); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	return &FileStore{dir: dir, sync: !opts.NoSync, journal: f}, nil
}

// repairTail truncates a journal that does not end in a newline back to its
// last complete line.
func repairTail(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil
		}
		return fmt.Errorf("persist: %w", err)
	}
	if len(data) == 0 || data[len(data)-1] == '\n' {
		return nil
	}
	keep := int64(bytes.LastIndexByte(data, '\n') + 1)
	if err := os.Truncate(path, keep); err != nil {
		return fmt.Errorf("persist: dropping torn journal tail: %w", err)
	}
	return nil
}

// Dir returns the store root.
func (s *FileStore) Dir() string { return s.dir }

func (s *FileStore) append(rec journalRecord) error {
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("persist: encoding %s record: %w", rec.T, err)
	}
	data = append(data, '\n')
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("persist: store is closed")
	}
	if _, err := s.journal.Write(data); err != nil {
		return fmt.Errorf("persist: journal append: %w", err)
	}
	if s.sync {
		if err := s.journal.Sync(); err != nil {
			return fmt.Errorf("persist: journal sync: %w", err)
		}
	}
	return nil
}

// AppendLedger implements Store.
func (s *FileStore) AppendLedger(rec LedgerRecord) error {
	return s.append(journalRecord{T: "ledger", Ledger: &rec})
}

// SavePlan implements Store.
func (s *FileStore) SavePlan(rec PlanRecord) error {
	if rec.ID == "" {
		return fmt.Errorf("persist: plan record without an ID")
	}
	return s.append(journalRecord{T: "plan", Plan: &rec})
}

// SaveRate implements Store.
func (s *FileStore) SaveRate(rate float64) error {
	return s.append(journalRecord{T: "rate", Rate: &rate})
}

// datasetFile names a dataset's CSV side file. Hashing keeps
// marketplace-controlled listing names out of the filesystem namespace
// entirely (no traversal, no case-folding collisions, no length limits).
func datasetFile(name string) string {
	sum := sha256.Sum256([]byte(name))
	return filepath.Join("datasets", hex.EncodeToString(sum[:12])+".csv")
}

// SaveDataset implements Store: rows first (atomic temp-and-rename, so a
// crash can never leave a torn CSV), then the journal record referencing
// them. A record in the journal therefore always points at complete rows.
func (s *FileStore) SaveDataset(rec DatasetRecord, t *relation.Table) error {
	rec.File = datasetFile(rec.Name)
	abs := filepath.Join(s.dir, rec.File)
	tmp, err := os.CreateTemp(filepath.Dir(abs), "tmp-*.csv")
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after the rename
	err = t.WriteCSV(tmp)
	if err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp.Name(), abs)
	}
	if err != nil {
		return fmt.Errorf("persist: writing rows of %q: %w", rec.Name, err)
	}
	return s.append(journalRecord{T: "dataset", Dataset: &rec})
}

// Flush implements Store.
func (s *FileStore) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	if err := s.journal.Sync(); err != nil {
		return fmt.Errorf("persist: journal sync: %w", err)
	}
	return nil
}

// Close implements Store.
func (s *FileStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	err := s.journal.Sync()
	if cerr := s.journal.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("persist: close: %w", err)
	}
	return nil
}

// Load implements Store. The replay tolerates exactly one torn trailing
// line — the crash-mid-append case — and fails loudly on anything else.
func (s *FileStore) Load() (*State, error) {
	data, err := os.ReadFile(filepath.Join(s.dir, "journal.jsonl"))
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("persist: %w", err)
	}
	st := &State{}
	var (
		planOrder []string
		plans     = map[string]PlanRecord{}
		dsOrder   []string
		dss       = map[string]DatasetRecord{}
	)
	line, lineNo := data, 0
	for len(line) > 0 {
		lineNo++
		raw := line
		if i := bytes.IndexByte(line, '\n'); i >= 0 {
			raw, line = line[:i], line[i+1:]
		} else {
			line = nil
		}
		if len(raw) == 0 {
			continue
		}
		var rec journalRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			if len(line) == 0 {
				break // torn final append: the record never completed
			}
			return nil, fmt.Errorf("persist: journal line %d corrupt: %w", lineNo, err)
		}
		switch rec.T {
		case "ledger":
			if rec.Ledger != nil {
				st.Ledger = append(st.Ledger, *rec.Ledger)
			}
		case "plan":
			if rec.Plan != nil {
				if _, ok := plans[rec.Plan.ID]; !ok {
					planOrder = append(planOrder, rec.Plan.ID)
				}
				plans[rec.Plan.ID] = *rec.Plan
			}
		case "dataset":
			if rec.Dataset != nil {
				if _, ok := dss[rec.Dataset.Name]; !ok {
					dsOrder = append(dsOrder, rec.Dataset.Name)
				}
				dss[rec.Dataset.Name] = *rec.Dataset
			}
		case "rate":
			if rec.Rate != nil {
				st.Rate = *rec.Rate
			}
		default:
			return nil, fmt.Errorf("persist: journal line %d: unknown record type %q", lineNo, rec.T)
		}
	}
	for _, id := range planOrder {
		st.Plans = append(st.Plans, plans[id])
	}
	for _, name := range dsOrder {
		rec := dss[name]
		t, err := s.readDataset(rec)
		if err != nil {
			return nil, err
		}
		st.Datasets = append(st.Datasets, Dataset{DatasetRecord: rec, Table: t})
	}
	return st, nil
}

func (s *FileStore) readDataset(rec DatasetRecord) (*relation.Table, error) {
	f, err := os.Open(filepath.Join(s.dir, rec.File))
	if err != nil {
		// The journal record is only written after the rows landed, so a
		// missing side file is real corruption, not a crash artifact.
		return nil, fmt.Errorf("persist: rows of %q: %w", rec.Name, err)
	}
	defer f.Close()
	t, err := relation.ReadCSV(rec.Name, bufio.NewReader(f))
	if err != nil {
		return nil, fmt.Errorf("persist: rows of %q: %w", rec.Name, err)
	}
	return t, nil
}
