package persist

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"github.com/dance-db/dance/internal/fd"
	"github.com/dance-db/dance/internal/relation"
)

func testTable(name string, rows int) *relation.Table {
	t := relation.NewTable(name, relation.NewSchema(
		relation.Cat("k", relation.KindString),
		relation.Num("v", relation.KindFloat),
	))
	for i := 0; i < rows; i++ {
		t.Append([]relation.Value{
			relation.StringValue(strings.Repeat("k", i+1)),
			relation.FloatValue(float64(i) / 3),
		})
	}
	return t
}

func TestFileStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AppendLedger(LedgerRecord{Kind: "sample", ToRate: 0.3, Amount: 12.5}); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendLedger(LedgerRecord{Kind: "purchase", PlanID: "pl_1", Amount: 3.25}); err != nil {
		t.Fatal(err)
	}
	plan := PlanRecord{
		ID:      "pl_1",
		Queries: []QueryRecord{{Instance: "bridge", Attrs: []string{"zip", "y"}}},
		Steps:   []JoinStepRecord{{Table: "own"}, {Table: "bridge", On: []string{"zip"}}},
		Weight:  1.5,
		FDs:     []fd.FD{fd.New("y", "zip")},
		Est:     MetricsRecord{Correlation: 0.9, Price: 3.25},
		Request: RequestRecord{TargetAttrs: []string{"x", "y"}, Budget: 10, Seed: 7},
	}
	if err := s.SavePlan(plan); err != nil {
		t.Fatal(err)
	}
	tab := testTable("bridge", 4)
	rec := DatasetRecord{
		Name: "bridge", JoinAttrs: []string{"zip"}, Seed: 42, Rate: 0.3,
		FullRows: 100, FDs: []fd.FD{fd.New("y", "zip")}, FDsResolved: true,
	}
	if err := s.SaveDataset(rec, tab); err != nil {
		t.Fatal(err)
	}
	if err := s.SaveRate(0.3); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen cold, as a restarted danced would.
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	st, err := s2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if st.Rate != 0.3 {
		t.Errorf("rate = %v, want 0.3", st.Rate)
	}
	if len(st.Ledger) != 2 || st.Ledger[0].Amount != 12.5 || st.Ledger[1].PlanID != "pl_1" {
		t.Errorf("ledger = %+v", st.Ledger)
	}
	if len(st.Plans) != 1 {
		t.Fatalf("plans = %+v", st.Plans)
	}
	if got := st.Plans[0]; !reflect.DeepEqual(got, plan) {
		t.Errorf("plan round trip:\n got %+v\nwant %+v", got, plan)
	}
	if len(st.Datasets) != 1 {
		t.Fatalf("datasets = %+v", st.Datasets)
	}
	ds := st.Datasets[0]
	if ds.Name != "bridge" || ds.Rate != 0.3 || ds.FullRows != 100 || !ds.FDsResolved {
		t.Errorf("dataset meta = %+v", ds.DatasetRecord)
	}
	if ds.Table.NumRows() != 4 {
		t.Errorf("dataset rows = %d, want 4", ds.Table.NumRows())
	}
	if !reflect.DeepEqual(ds.Table.Schema.Columns(), tab.Schema.Columns()) {
		t.Errorf("schema did not round trip: %+v vs %+v", ds.Table.Schema.Columns(), tab.Schema.Columns())
	}
}

// TestFileStoreLastWins: re-saving a dataset or plan replaces the earlier
// record on replay; ledger entries accumulate.
func TestFileStoreLastWins(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rec := DatasetRecord{Name: "d", JoinAttrs: []string{"k"}, Rate: 0.3, FullRows: 10}
	if err := s.SaveDataset(rec, testTable("d", 2)); err != nil {
		t.Fatal(err)
	}
	rec.Rate = 0.6
	if err := s.SaveDataset(rec, testTable("d", 5)); err != nil {
		t.Fatal(err)
	}
	if err := s.SavePlan(PlanRecord{ID: "pl_a", Weight: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.SavePlan(PlanRecord{ID: "pl_a", Weight: 2}); err != nil {
		t.Fatal(err)
	}
	if err := s.SaveRate(0.3); err != nil {
		t.Fatal(err)
	}
	if err := s.SaveRate(0.6); err != nil {
		t.Fatal(err)
	}
	st, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Datasets) != 1 || st.Datasets[0].Rate != 0.6 || st.Datasets[0].Table.NumRows() != 5 {
		t.Errorf("datasets = %+v", st.Datasets)
	}
	if len(st.Plans) != 1 || st.Plans[0].Weight != 2 {
		t.Errorf("plans = %+v", st.Plans)
	}
	if st.Rate != 0.6 {
		t.Errorf("rate = %v", st.Rate)
	}
}

// TestFileStoreTornTail: a crash mid-append leaves a half-written final
// line; replay drops it and keeps everything before it.
func TestFileStoreTornTail(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AppendLedger(LedgerRecord{Kind: "sample", Amount: 5}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "journal.jsonl")
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"t":"ledger","ledger":{"kind":"sam`); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen repairs the tail; the recovered state drops the torn record
	// and the next append starts a fresh, parseable line.
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	st, err := s2.Load()
	if err != nil {
		t.Fatalf("torn tail must be tolerated: %v", err)
	}
	if len(st.Ledger) != 1 || st.Ledger[0].Amount != 5 {
		t.Errorf("ledger = %+v", st.Ledger)
	}
	if err := s2.AppendLedger(LedgerRecord{Kind: "sample", Amount: 2}); err != nil {
		t.Fatal(err)
	}
	st, err = s2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Ledger) != 2 || st.Ledger[1].Amount != 2 {
		t.Errorf("ledger after repaired append = %+v", st.Ledger)
	}
}

// TestFileStoreMidFileCorruption: damage anywhere before the final line is
// an error, never a silent skip.
func TestFileStoreMidFileCorruption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "journal.jsonl")
	content := `{"t":"ledger","ledger":{"kind":"sam` + "\n" +
		`{"t":"ledger","ledger":{"kind":"sample","amount":1}}` + "\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Load(); err == nil {
		t.Fatal("mid-file corruption must be reported, not skipped")
	}
}

func TestFileStoreEmptyAndMissing(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	st, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if st.Rate != 0 || len(st.Ledger) != 0 || len(st.Plans) != 0 || len(st.Datasets) != 0 {
		t.Errorf("fresh store not empty: %+v", st)
	}
}

func TestFileStoreClosedAppend(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendLedger(LedgerRecord{Kind: "sample", Amount: 1}); err == nil {
		t.Fatal("append on a closed store must fail")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestFileStoreMissingSideFile(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.SaveDataset(DatasetRecord{Name: "d", Rate: 0.3}, testTable("d", 1)); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, datasetFile("d"))); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Load(); err == nil {
		t.Fatal("missing dataset side file must be reported")
	}
}
