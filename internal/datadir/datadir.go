// Package datadir writes datasets in the directory layout marketd serves
// with -dir: one typed CSV per table plus a .fds file declaring each
// table's approximate functional dependencies as "table: A,B -> C" lines.
// cmd/datagen (tpch/tpce and synthetic workloads alike) and
// workload.WriteDir share it, so the layout cannot drift between
// generators.
package datadir

import (
	"os"
	"path/filepath"
	"strings"

	"github.com/dance-db/dance/internal/fd"
	"github.com/dance-db/dance/internal/relation"
)

// WriteTables writes dir/<table>.csv for every table and dir/<fdsName>.fds
// with the declared FDs, creating dir if missing. It returns the number of
// FD lines written.
func WriteTables(dir string, tables []*relation.Table, fds map[string][]fd.FD, fdsName string) (int, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, err
	}
	for _, t := range tables {
		f, err := os.Create(filepath.Join(dir, t.Name+".csv"))
		if err != nil {
			return 0, err
		}
		if err := t.WriteCSV(f); err != nil {
			f.Close()
			return 0, err
		}
		if err := f.Close(); err != nil {
			return 0, err
		}
	}
	var lines []string
	for _, t := range tables {
		for _, f := range fds[t.Name] {
			lines = append(lines, t.Name+": "+strings.Join(f.LHS, ",")+" -> "+f.RHS)
		}
	}
	path := filepath.Join(dir, fdsName+".fds")
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		return 0, err
	}
	return len(lines), nil
}
