// Package pricing implements query-based data pricing for the marketplace
// (the paper's [6], [16]). DANCE buys vertical slices — projection queries
// π_A(D) — so a pricing model assigns a price to an attribute set of an
// instance.
//
// The paper's experiments use "the entropy-based model for the data
// marketplace [16]". The reference gives no closed formula, so we implement
// a model that satisfies the arbitrage-free sufficient conditions the
// related-work section cites (Deep & Koutris: monotone + subadditive):
//
//	price(π_A(D)) = PerAttribute·|A| + RatePerBit · H(A) · scale(|D|)
//
// where H(A) is the joint Shannon entropy of the attribute set in D and
// scale(|D|) = log2(1+|D|) when RowScaling is set. Both terms are monotone
// and subadditive in A (joint entropy is), so decomposing a query into
// pieces can never be cheaper — the arbitrage-free requirement.
package pricing

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"github.com/dance-db/dance/internal/infotheory"
	"github.com/dance-db/dance/internal/relation"
)

// Model prices projection queries against a data instance.
type Model interface {
	// PriceProjection returns the price of π_attrs(t).
	PriceProjection(t *relation.Table, attrs []string) (float64, error)
	// Name identifies the model in experiment output.
	Name() string
}

// EntropyModel is the arbitrage-free entropy-based pricing model.
type EntropyModel struct {
	// RatePerBit is the price of one bit of joint entropy.
	RatePerBit float64
	// PerAttribute is a flat floor added per purchased attribute, so that
	// even zero-entropy (constant) columns are not free.
	PerAttribute float64
	// RowScaling multiplies the entropy term by log2(1+rows): a 6M-row
	// instance is worth more than a 100-row sample of identical
	// distribution.
	RowScaling bool
}

// DefaultEntropyModel mirrors the configuration used by the experiments.
func DefaultEntropyModel() EntropyModel {
	return EntropyModel{RatePerBit: 1.0, PerAttribute: 0.5, RowScaling: true}
}

// Name implements Model.
func (m EntropyModel) Name() string { return "entropy" }

// PriceProjection implements Model.
func (m EntropyModel) PriceProjection(t *relation.Table, attrs []string) (float64, error) {
	if len(attrs) == 0 {
		return 0, nil
	}
	seen := map[string]bool{}
	for _, a := range attrs {
		if seen[a] {
			return 0, fmt.Errorf("pricing: duplicate attribute %q in projection of %s", a, t.Name)
		}
		seen[a] = true
		if !t.Schema.Has(a) {
			return 0, fmt.Errorf("pricing: table %s has no attribute %q", t.Name, a)
		}
	}
	h, err := infotheory.Entropy(t, attrs...)
	if err != nil {
		return 0, err
	}
	scale := 1.0
	if m.RowScaling {
		scale = math.Log2(1 + float64(t.NumRows()))
	}
	return m.PerAttribute*float64(len(attrs)) + m.RatePerBit*h*scale, nil
}

// FlatModel prices every attribute at a fixed amount, ignoring content.
// It is the pricing ablation baseline: simple but content-blind.
type FlatModel struct {
	PerAttribute float64
}

// Name implements Model.
func (m FlatModel) Name() string { return "flat" }

// PriceProjection implements Model.
func (m FlatModel) PriceProjection(t *relation.Table, attrs []string) (float64, error) {
	for _, a := range attrs {
		if !t.Schema.Has(a) {
			return 0, fmt.Errorf("pricing: table %s has no attribute %q", t.Name, a)
		}
	}
	return m.PerAttribute * float64(len(attrs)), nil
}

// SampleDiscount is the fraction of the projection price charged for a
// correlated sample at a given rate: DANCE pays for samples during the
// offline phase (Sec 2.1), proportionally to the sampling rate.
func SampleDiscount(fullPrice, rate float64) float64 {
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	return fullPrice * rate
}

// cached memoizes projection prices. Price lookups happen inside the MCMC
// inner loop (Algorithm 1 checks p(TG') ≤ B every iteration), so repeated
// entropy computations would dominate.
type cached struct {
	inner Model

	mu    sync.Mutex // lockorder: leaf
	cache map[string]float64
}

// Cached wraps m with a concurrency-safe memo keyed by (table, attrs).
// The cache assumes tables are immutable once priced, which holds for
// marketplace instances.
func Cached(m Model) Model {
	return &cached{inner: m, cache: make(map[string]float64)}
}

// Name implements Model.
func (c *cached) Name() string { return c.inner.Name() }

// PriceProjection implements Model.
func (c *cached) PriceProjection(t *relation.Table, attrs []string) (float64, error) {
	sorted := append([]string(nil), attrs...)
	sort.Strings(sorted)
	key := fmt.Sprintf("%s|%d|%s", t.Name, t.NumRows(), strings.Join(sorted, "\x00"))
	c.mu.Lock()
	if p, ok := c.cache[key]; ok {
		c.mu.Unlock()
		return p, nil
	}
	c.mu.Unlock()
	p, err := c.inner.PriceProjection(t, attrs)
	if err != nil {
		return 0, err
	}
	c.mu.Lock()
	c.cache[key] = p
	c.mu.Unlock()
	return p, nil
}

// Query is a priced projection query π_Attrs(Instance), the unit DANCE
// recommends for purchase.
type Query struct {
	Instance string
	Attrs    []string
}

// String renders the query as SQL, e.g. "SELECT a, b FROM t;".
func (q Query) String() string {
	return "SELECT " + strings.Join(q.Attrs, ", ") + " FROM " + q.Instance + ";"
}
