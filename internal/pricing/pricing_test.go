package pricing

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"github.com/dance-db/dance/internal/relation"
)

func priceTable(n int, seed int64) *relation.Table {
	rng := rand.New(rand.NewSource(seed))
	t := relation.NewTable("t", relation.NewSchema(
		relation.Cat("a", relation.KindInt),
		relation.Cat("b", relation.KindInt),
		relation.Cat("c", relation.KindString),
		relation.Cat("konst", relation.KindString),
	))
	for i := 0; i < n; i++ {
		t.AppendValues(
			relation.IntValue(int64(rng.Intn(16))),
			relation.IntValue(int64(rng.Intn(4))),
			relation.StringValue(string(rune('a'+rng.Intn(8)))),
			relation.StringValue("same"),
		)
	}
	return t
}

func TestEntropyModelBasics(t *testing.T) {
	m := DefaultEntropyModel()
	tab := priceTable(200, 1)
	p, err := m.PriceProjection(tab, []string{"a"})
	if err != nil {
		t.Fatal(err)
	}
	if p <= 0 {
		t.Fatalf("price = %v, want > 0", p)
	}
	zero, err := m.PriceProjection(tab, nil)
	if err != nil || zero != 0 {
		t.Fatalf("empty projection price = %v, %v", zero, err)
	}
	if _, err := m.PriceProjection(tab, []string{"nope"}); err == nil {
		t.Fatal("unknown attribute should error")
	}
	if _, err := m.PriceProjection(tab, []string{"a", "a"}); err == nil {
		t.Fatal("duplicate attribute should error")
	}
}

func TestEntropyModelConstantColumnCostsFloor(t *testing.T) {
	m := EntropyModel{RatePerBit: 1, PerAttribute: 0.5, RowScaling: false}
	tab := priceTable(100, 2)
	p, err := m.PriceProjection(tab, []string{"konst"})
	if err != nil {
		t.Fatal(err)
	}
	if p != 0.5 {
		t.Fatalf("constant column price = %v, want exactly the floor 0.5", p)
	}
}

func TestEntropyModelRowScaling(t *testing.T) {
	small := priceTable(50, 3)
	big := priceTable(5000, 3)
	m := DefaultEntropyModel()
	ps, _ := m.PriceProjection(small, []string{"a", "b"})
	pb, _ := m.PriceProjection(big, []string{"a", "b"})
	if pb <= ps {
		t.Fatalf("bigger instance should cost more: %v vs %v", pb, ps)
	}
}

// Arbitrage-freeness, part 1: monotonicity. Adding attributes never
// decreases the price.
func TestEntropyModelMonotone(t *testing.T) {
	m := DefaultEntropyModel()
	tab := priceTable(300, 4)
	p1, _ := m.PriceProjection(tab, []string{"a"})
	p2, _ := m.PriceProjection(tab, []string{"a", "b"})
	p3, _ := m.PriceProjection(tab, []string{"a", "b", "c"})
	if !(p1 <= p2 && p2 <= p3) {
		t.Fatalf("prices not monotone: %v, %v, %v", p1, p2, p3)
	}
}

// Arbitrage-freeness, part 2: subadditivity. Splitting a query into two
// cannot be cheaper (property test over random attribute splits and data).
func TestQuickEntropyModelSubadditive(t *testing.T) {
	m := DefaultEntropyModel()
	f := func(seed int64, mask uint8) bool {
		tab := priceTable(120, seed)
		all := tab.Schema.Names()
		var left, right []string
		for i, a := range all {
			if mask&(1<<uint(i)) != 0 {
				left = append(left, a)
			} else {
				right = append(right, a)
			}
		}
		if len(left) == 0 || len(right) == 0 {
			return true
		}
		pAll, err := m.PriceProjection(tab, all)
		if err != nil {
			return false
		}
		pL, err := m.PriceProjection(tab, left)
		if err != nil {
			return false
		}
		pR, err := m.PriceProjection(tab, right)
		if err != nil {
			return false
		}
		return pAll <= pL+pR+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestFlatModel(t *testing.T) {
	m := FlatModel{PerAttribute: 2}
	tab := priceTable(100, 5)
	p, err := m.PriceProjection(tab, []string{"a", "b"})
	if err != nil || p != 4 {
		t.Fatalf("flat price = %v, %v; want 4", p, err)
	}
	if _, err := m.PriceProjection(tab, []string{"zz"}); err == nil {
		t.Fatal("unknown attribute should error")
	}
	if m.Name() != "flat" {
		t.Fatal("name")
	}
}

func TestSampleDiscount(t *testing.T) {
	if got := SampleDiscount(100, 0.25); got != 25 {
		t.Fatalf("SampleDiscount = %v", got)
	}
	if got := SampleDiscount(100, -1); got != 0 {
		t.Fatalf("negative rate = %v", got)
	}
	if got := SampleDiscount(100, 2); got != 100 {
		t.Fatalf("rate > 1 = %v", got)
	}
}

func TestCachedModelAgreesAndCaches(t *testing.T) {
	tab := priceTable(400, 6)
	inner := DefaultEntropyModel()
	c := Cached(inner)
	if c.Name() != inner.Name() {
		t.Fatal("cached model must not rename")
	}
	want, _ := inner.PriceProjection(tab, []string{"a", "c"})
	for i := 0; i < 3; i++ {
		got, err := c.PriceProjection(tab, []string{"c", "a"}) // order must not matter
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("cached price = %v, want %v", got, want)
		}
	}
	if _, err := c.PriceProjection(tab, []string{"zz"}); err == nil {
		t.Fatal("cached model must propagate errors")
	}
}

func TestQueryString(t *testing.T) {
	q := Query{Instance: "orders", Attrs: []string{"totalprice", "custkey"}}
	got := q.String()
	if got != "SELECT totalprice, custkey FROM orders;" {
		t.Fatalf("Query.String = %q", got)
	}
	if !strings.HasSuffix(got, ";") {
		t.Fatal("missing terminator")
	}
}
