// Package parallel provides the small bounded-concurrency primitives the
// acquisition engine is built on: a worker pool over an index space with
// first-error cancellation. It has no dependencies beyond the standard
// library and is deliberately deterministic where it can be — output slots
// are indexed, so callers reduce results in input order regardless of
// scheduling.
package parallel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultWorkers resolves a worker-count knob: n > 0 is used as given,
// anything else means "one worker per available CPU".
func DefaultWorkers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// ForEach runs fn(i) for every i in [0, n) on at most workers goroutines
// (workers <= 0 means one per CPU). Items are claimed dynamically, so
// uneven per-item costs balance across the pool.
//
// The first error cancels the pool: items not yet claimed are skipped,
// in-flight items run to completion, and the error reported is the one
// with the smallest index among those that failed — the same error a
// serial loop would have surfaced first among the executed items.
// workers == 1 degenerates to a plain serial loop with early exit.
//
// Cancelling ctx stops the pool the same way: unclaimed items are skipped
// and ctx.Err() is returned, unless some fn had already failed, in which
// case that (smaller-index) error wins. fn itself is responsible for
// honoring ctx inside long-running items.
func ForEach(ctx context.Context, n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	workers = DefaultWorkers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		// Mirror the pooled path: a context cancelled during the final item
		// reports ctx.Err() no matter the worker count.
		return ctx.Err()
	}

	var (
		next    atomic.Int64
		stopped atomic.Bool
		mu      sync.Mutex
		errIdx  = n // smallest failing index seen so far
		firstEr error
		wg      sync.WaitGroup
	)
	next.Store(-1)
	record := func(i int, err error) {
		mu.Lock()
		if i < errIdx {
			errIdx, firstEr = i, err
		}
		mu.Unlock()
		stopped.Store(true)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if stopped.Load() || ctx.Err() != nil {
					return
				}
				i := int(next.Add(1))
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					record(i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if firstEr != nil {
		return firstEr
	}
	return ctx.Err()
}

// Map runs fn over [0, n) like ForEach and collects the results in input
// order. On error the returned slice is nil.
func Map[T any](ctx context.Context, n, workers int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(ctx, n, workers, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
