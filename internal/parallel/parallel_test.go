package parallel

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestForEachRunsEveryItem(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 64} {
		const n = 100
		var hits [n]atomic.Int32
		err := ForEach(context.Background(), n, workers, func(i int) error {
			hits[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: item %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	err := ForEach(context.Background(), 0, 4, func(int) error { t.Fatal("called"); return nil })
	if err != nil {
		t.Fatal(err)
	}
}

func TestForEachReportsSmallestFailingIndex(t *testing.T) {
	boom := func(i int) error { return fmt.Errorf("item %d", i) }
	for _, workers := range []int{1, 4} {
		err := ForEach(context.Background(), 50, workers, func(i int) error {
			if i >= 10 {
				return boom(i)
			}
			return nil
		})
		if err == nil {
			t.Fatalf("workers=%d: expected error", workers)
		}
		// Serial stops exactly at 10; parallel must report the smallest
		// failing index among the items it actually ran — and item 10 is
		// always claimed before the pool can observe a later failure... not
		// guaranteed, so only the serial case pins the exact index.
		if workers == 1 && err.Error() != "item 10" {
			t.Fatalf("serial error = %v, want item 10", err)
		}
	}
}

func TestForEachCancelsRemainingWork(t *testing.T) {
	sentinel := errors.New("stop")
	var ran atomic.Int32
	err := ForEach(context.Background(), 1000, 2, func(i int) error {
		ran.Add(1)
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
	if got := ran.Load(); got > 10 {
		t.Fatalf("ran %d items after first error; cancellation did not bite", got)
	}
}

func TestForEachHonorsContextCancellation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int32
		err := ForEach(ctx, 10000, workers, func(i int) error {
			if ran.Add(1) == 3 {
				cancel()
			}
			return nil
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if got := ran.Load(); got > 100 {
			t.Fatalf("workers=%d: ran %d items after cancellation", workers, got)
		}
	}
}

func TestForEachPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := ForEach(ctx, 5, 2, func(int) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestForEachItemErrorBeatsCancellation(t *testing.T) {
	// When an item fails and the context is cancelled, the item error (the
	// root cause) is the one reported by the serial path.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sentinel := errors.New("boom")
	err := ForEach(ctx, 10, 1, func(i int) error {
		if i == 2 {
			cancel()
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want the item error", err)
	}
}

func TestMapPreservesOrder(t *testing.T) {
	out, err := Map(context.Background(), 20, 4, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestMapError(t *testing.T) {
	out, err := Map(context.Background(), 5, 2, func(i int) (int, error) {
		if i == 3 {
			return 0, errors.New("nope")
		}
		return i, nil
	})
	if err == nil || out != nil {
		t.Fatalf("out=%v err=%v, want nil out and error", out, err)
	}
}
