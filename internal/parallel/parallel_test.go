package parallel

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestForEachRunsEveryItem(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 64} {
		const n = 100
		var hits [n]atomic.Int32
		err := ForEach(n, workers, func(i int) error {
			hits[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: item %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	if err := ForEach(0, 4, func(int) error { t.Fatal("called"); return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestForEachReportsSmallestFailingIndex(t *testing.T) {
	boom := func(i int) error { return fmt.Errorf("item %d", i) }
	for _, workers := range []int{1, 4} {
		err := ForEach(50, workers, func(i int) error {
			if i >= 10 {
				return boom(i)
			}
			return nil
		})
		if err == nil {
			t.Fatalf("workers=%d: expected error", workers)
		}
		// Serial stops exactly at 10; parallel must report the smallest
		// failing index among the items it actually ran — and item 10 is
		// always claimed before the pool can observe a later failure... not
		// guaranteed, so only the serial case pins the exact index.
		if workers == 1 && err.Error() != "item 10" {
			t.Fatalf("serial error = %v, want item 10", err)
		}
	}
}

func TestForEachCancelsRemainingWork(t *testing.T) {
	sentinel := errors.New("stop")
	var ran atomic.Int32
	err := ForEach(1000, 2, func(i int) error {
		ran.Add(1)
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
	if got := ran.Load(); got > 10 {
		t.Fatalf("ran %d items after first error; cancellation did not bite", got)
	}
}

func TestMapPreservesOrder(t *testing.T) {
	out, err := Map(20, 4, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestMapError(t *testing.T) {
	out, err := Map(5, 2, func(i int) (int, error) {
		if i == 3 {
			return 0, errors.New("nope")
		}
		return i, nil
	})
	if err == nil || out != nil {
		t.Fatalf("out=%v err=%v, want nil out and error", out, err)
	}
}
