// Package tpce generates a schema-faithful, scaled-down TPC-E-like dataset
// with 29 tables (Table 5 of the paper: 29 instances, min size 4 (exchange),
// max size watch_item, min 3 attributes (sector), max 28 (customer)).
//
// Substitution note (see DESIGN.md): the official EGen generator produces up
// to 10M rows; this generator reproduces the join topology the experiments
// need — in particular the length-8 join spine
//
//	customer_account — customer — watch_list — watch_item — security —
//	company — industry — sector
//
// and the shorter daily_market — security — company (— industry — sector)
// spines used by Q1/Q2, with planted cross-table correlations and declared
// FDs, at a configurable scale.
package tpce

import (
	"fmt"
	"math/rand"

	"github.com/dance-db/dance/internal/dirty"
	"github.com/dance-db/dance/internal/fd"
	"github.com/dance-db/dance/internal/relation"
)

// Config controls generation.
type Config struct {
	Scale int
	Seed  int64
	// DirtyFraction is applied to the 20 DirtyTables (paper: 20 of 29
	// tables modified, 0.2–0.3 share of rows; we default to 0.2).
	DirtyFraction float64
}

// DefaultConfig mirrors the experiments.
func DefaultConfig() Config { return Config{Scale: 10, Seed: 7, DirtyFraction: 0.2} }

// Dataset is the generated database.
type Dataset struct {
	Tables []*relation.Table
	FDs    map[string][]fd.FD
}

// Table returns the named table or nil.
func (d *Dataset) Table(name string) *relation.Table {
	for _, t := range d.Tables {
		if t.Name == name {
			return t
		}
	}
	return nil
}

// TableNames lists all 29 tables in generation order.
var TableNames = []string{
	"exchange", "sector", "industry", "company", "security",
	"daily_market", "last_trade", "financial", "news_item", "news_xref",
	"address", "zip_code", "status_type", "taxrate", "customer",
	"customer_account", "customer_taxrate", "broker", "charge", "commission_rate",
	"holding", "holding_history", "holding_summary", "settlement", "trade",
	"trade_history", "trade_type", "watch_item", "watch_list",
}

// DirtyTables are the 20 tables dirtied by the experiments; the 9 small
// reference tables stay clean.
var DirtyTables = []string{
	"company", "security", "daily_market", "last_trade", "financial",
	"news_item", "news_xref", "address", "customer", "customer_account",
	"customer_taxrate", "broker", "holding", "holding_history", "holding_summary",
	"settlement", "trade", "trade_history", "watch_item", "watch_list",
}

const (
	numSectors    = 12
	numIndustries = 36
	numExchanges  = 4
	numStatuses   = 5
	numTradeTypes = 5
)

// Sizes returns per-table row counts at the given scale.
func Sizes(scale int) map[string]int {
	if scale < 1 {
		scale = 1
	}
	return map[string]int{
		"exchange":         numExchanges,
		"sector":           numSectors,
		"industry":         numIndustries,
		"company":          25 * scale,
		"security":         35 * scale,
		"daily_market":     200 * scale,
		"last_trade":       35 * scale,
		"financial":        50 * scale,
		"news_item":        30 * scale,
		"news_xref":        40 * scale,
		"address":          40 * scale,
		"zip_code":         30 * scale,
		"status_type":      numStatuses,
		"taxrate":          10,
		"customer":         30 * scale,
		"customer_account": 40 * scale,
		"customer_taxrate": 30 * scale,
		"broker":           5 * scale,
		"charge":           15,
		"commission_rate":  20,
		"holding":          100 * scale,
		"holding_history":  100 * scale,
		"holding_summary":  60 * scale,
		"settlement":       80 * scale,
		"trade":            150 * scale,
		"trade_history":    150 * scale,
		"trade_type":       numTradeTypes,
		"watch_item":       400 * scale, // largest table, like the paper's watch_item
		"watch_list":       60 * scale,
	}
}

// Generate builds the dataset.
func Generate(cfg Config) *Dataset {
	if cfg.Scale < 1 {
		cfg.Scale = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	sz := Sizes(cfg.Scale)
	d := &Dataset{FDs: map[string][]fd.FD{}}
	add := func(t *relation.Table, fds ...fd.FD) {
		d.Tables = append(d.Tables, t)
		d.FDs[t.Name] = fds
	}

	// ---- Market reference spine -------------------------------------------

	exchange := relation.NewTable("exchange", relation.NewSchema(
		relation.Cat("exid", relation.KindInt),
		relation.Cat("exname", relation.KindString),
		relation.Cat("excountry", relation.KindString),
		relation.Num("exopen", relation.KindInt),
	))
	exNames := []string{"NYSE", "NASDAQ", "AMEX", "PCX"}
	for i := 0; i < sz["exchange"]; i++ {
		exchange.AppendValues(
			relation.IntValue(int64(i)),
			relation.StringValue(exNames[i%len(exNames)]),
			relation.StringValue("USA"),
			relation.IntValue(int64(930+i)),
		)
	}
	add(exchange, fd.New("exname", "exid"))

	// sector — 3 attributes, the paper's minimum.
	sector := relation.NewTable("sector", relation.NewSchema(
		relation.Cat("sectorid", relation.KindInt),
		relation.Cat("sectorname", relation.KindString),
		relation.Cat("secabbr", relation.KindString),
	))
	secNames := []string{"Energy", "Materials", "Industrials", "Consumer", "Health", "Financials", "Tech", "Telecom", "Utilities", "RealEstate", "Media", "Transport"}
	for i := 0; i < sz["sector"]; i++ {
		sector.AppendValues(
			relation.IntValue(int64(i)),
			relation.StringValue(secNames[i%len(secNames)]),
			relation.StringValue(secNames[i%len(secNames)][:2]),
		)
	}
	add(sector, fd.New("sectorname", "sectorid"))

	industry := relation.NewTable("industry", relation.NewSchema(
		relation.Cat("indid", relation.KindInt),
		relation.Cat("indname", relation.KindString),
		relation.Cat("sectorid", relation.KindInt),
	))
	sectorOfInd := make([]int64, sz["industry"])
	for i := 0; i < sz["industry"]; i++ {
		sectorOfInd[i] = int64(i % numSectors)
		industry.AppendValues(
			relation.IntValue(int64(i)),
			relation.StringValue(fmt.Sprintf("industry-%02d", i)),
			relation.IntValue(sectorOfInd[i]),
		)
	}
	add(industry, fd.New("indname", "indid"), fd.New("sectorid", "indid"))

	company := relation.NewTable("company", relation.NewSchema(
		relation.Cat("companyid", relation.KindInt),
		relation.Cat("compname", relation.KindString),
		relation.Cat("indid", relation.KindInt),
		relation.Cat("ceoname", relation.KindString),
		relation.Cat("compcity", relation.KindString),
	))
	indOfCompany := make([]int64, sz["company"])
	// sectorBase drives the planted price correlation down the spine.
	sectorBase := make([]float64, numSectors)
	for s := range sectorBase {
		sectorBase[s] = 20 + 15*float64(s)
	}
	cities := []string{"NYC", "Boston", "Chicago", "Austin", "Seattle", "Denver"}
	for i := 0; i < sz["company"]; i++ {
		// Cycle industries first for full coverage (keeps the
		// company—industry join matched), then random.
		ind := int64(i % sz["industry"])
		if i >= sz["industry"] {
			ind = int64(rng.Intn(sz["industry"]))
		}
		indOfCompany[i] = ind
		company.AppendValues(
			relation.IntValue(int64(i)),
			relation.StringValue(fmt.Sprintf("Company-%03d", i)),
			relation.IntValue(ind),
			relation.StringValue(fmt.Sprintf("CEO-%03d", rng.Intn(1000))),
			relation.StringValue(cities[rng.Intn(len(cities))]),
		)
	}
	add(company, fd.New("compname", "companyid"), fd.New("indid", "companyid"))

	security := relation.NewTable("security", relation.NewSchema(
		relation.Cat("symbol", relation.KindString),
		relation.Cat("secname", relation.KindString),
		relation.Cat("companyid", relation.KindInt),
		relation.Cat("exid", relation.KindInt),
		relation.Cat("issue", relation.KindString),
	))
	companyOfSymbol := make([]int64, sz["security"])
	exchOfSymbol := make([]int64, sz["security"])
	symbols := make([]string, sz["security"])
	for i := 0; i < sz["security"]; i++ {
		comp := int64(i % sz["company"]) // every company lists a security
		if i >= sz["company"] {
			comp = int64(rng.Intn(sz["company"]))
		}
		companyOfSymbol[i] = comp
		exchOfSymbol[i] = int64(rng.Intn(numExchanges))
		symbols[i] = fmt.Sprintf("SYM%04d", i)
		security.AppendValues(
			relation.StringValue(symbols[i]),
			relation.StringValue(fmt.Sprintf("security %04d", i)),
			relation.IntValue(comp),
			relation.IntValue(exchOfSymbol[i]),
			relation.StringValue([]string{"COMMON", "PREF_A", "PREF_B"}[rng.Intn(3)]),
		)
	}
	add(security, fd.New("companyid", "symbol"), fd.New("exid", "symbol"))

	// sectorOfSymbol resolves the planted signal for daily_market and the
	// watch-list bias.
	sectorOfSymbol := func(si int) int64 {
		return sectorOfInd[indOfCompany[companyOfSymbol[si]]]
	}

	dailyMarket := relation.NewTable("daily_market", relation.NewSchema(
		relation.Cat("dmdate", relation.KindString),
		relation.Cat("symbol", relation.KindString),
		relation.Num("dmclose", relation.KindFloat),
		relation.Num("dmhigh", relation.KindFloat),
		relation.Num("dmlow", relation.KindFloat),
		relation.Num("dmvol", relation.KindInt),
	))
	for i := 0; i < sz["daily_market"]; i++ {
		si := rng.Intn(sz["security"])
		base := sectorBase[sectorOfSymbol(si)] + 3*float64(companyOfSymbol[si]%7)
		close := base + rng.Float64()*8
		dailyMarket.AppendValues(
			relation.StringValue(fmt.Sprintf("2006-%02d-%02d", 1+rng.Intn(12), 1+rng.Intn(28))),
			relation.StringValue(symbols[si]),
			relation.FloatValue(close),
			relation.FloatValue(close+rng.Float64()*2),
			relation.FloatValue(close-rng.Float64()*2),
			relation.IntValue(int64(rng.Intn(1000000))),
		)
	}
	add(dailyMarket)

	lastTrade := relation.NewTable("last_trade", relation.NewSchema(
		relation.Cat("symbol", relation.KindString),
		relation.Num("ltprice", relation.KindFloat),
		relation.Num("ltvol", relation.KindInt),
		relation.Cat("ltdate", relation.KindString),
	))
	for i := 0; i < sz["last_trade"]; i++ {
		si := i % sz["security"]
		lastTrade.AppendValues(
			relation.StringValue(symbols[si]),
			relation.FloatValue(sectorBase[sectorOfSymbol(si)]+rng.Float64()*10),
			relation.IntValue(int64(rng.Intn(500000))),
			relation.StringValue("2006-12-29"),
		)
	}
	add(lastTrade, fd.New("ltprice", "symbol"))

	financial := relation.NewTable("financial", relation.NewSchema(
		relation.Cat("companyid", relation.KindInt),
		relation.Cat("fyear", relation.KindInt),
		relation.Num("frevenue", relation.KindFloat),
		relation.Num("fnetincome", relation.KindFloat),
	))
	for i := 0; i < sz["financial"]; i++ {
		comp := int64(rng.Intn(sz["company"]))
		rev := 1e6 * (1 + float64(sectorOfInd[indOfCompany[comp]])) * (1 + rng.Float64())
		financial.AppendValues(
			relation.IntValue(comp),
			relation.IntValue(int64(2000+i%7)),
			relation.FloatValue(rev),
			relation.FloatValue(rev*(0.05+0.1*rng.Float64())),
		)
	}
	add(financial, fd.New("frevenue", "companyid", "fyear"))

	newsItem := relation.NewTable("news_item", relation.NewSchema(
		relation.Cat("newsid", relation.KindInt),
		relation.Cat("headline", relation.KindString),
		relation.Cat("newsdate", relation.KindString),
		relation.Cat("newsauthor", relation.KindString),
	))
	for i := 0; i < sz["news_item"]; i++ {
		newsItem.AppendValues(
			relation.IntValue(int64(i)),
			relation.StringValue(fmt.Sprintf("headline %04d", i)),
			relation.StringValue(fmt.Sprintf("2006-%02d-%02d", 1+rng.Intn(12), 1+rng.Intn(28))),
			relation.StringValue(fmt.Sprintf("author-%02d", rng.Intn(40))),
		)
	}
	add(newsItem, fd.New("headline", "newsid"))

	// Three attributes everywhere: sector (3 attrs) stays the narrowest
	// table, matching Table 5 of the paper.
	newsXref := relation.NewTable("news_xref", relation.NewSchema(
		relation.Cat("newsid", relation.KindInt),
		relation.Cat("companyid", relation.KindInt),
		relation.Cat("nxsource", relation.KindString),
	))
	for i := 0; i < sz["news_xref"]; i++ {
		newsXref.AppendValues(
			relation.IntValue(int64(rng.Intn(sz["news_item"]))),
			relation.IntValue(int64(rng.Intn(sz["company"]))),
			relation.StringValue([]string{"wire", "filing", "blog"}[rng.Intn(3)]),
		)
	}
	add(newsXref)

	// ---- Customer-side spine ----------------------------------------------

	address := relation.NewTable("address", relation.NewSchema(
		relation.Cat("addrid", relation.KindInt),
		relation.Cat("street", relation.KindString),
		relation.Cat("city", relation.KindString),
		relation.Cat("statecode", relation.KindString),
		relation.Cat("zipcode", relation.KindInt),
	))
	states := []string{"NJ", "NY", "CA", "TX", "MA", "WA"}
	for i := 0; i < sz["address"]; i++ {
		zip := int64(rng.Intn(sz["zip_code"]))
		address.AppendValues(
			relation.IntValue(int64(i)),
			relation.StringValue(fmt.Sprintf("%d Main St", 1+rng.Intn(999))),
			relation.StringValue(cities[rng.Intn(len(cities))]),
			relation.StringValue(states[int(zip)%len(states)]),
			relation.IntValue(zip),
		)
	}
	add(address, fd.New("zipcode", "addrid"), fd.New("statecode", "zipcode"))

	zipCode := relation.NewTable("zip_code", relation.NewSchema(
		relation.Cat("zipcode", relation.KindInt),
		relation.Cat("ziptown", relation.KindString),
		relation.Cat("zipdiv", relation.KindString),
	))
	for i := 0; i < sz["zip_code"]; i++ {
		zipCode.AppendValues(
			relation.IntValue(int64(i)),
			relation.StringValue(fmt.Sprintf("town-%03d", i)),
			relation.StringValue(states[i%len(states)]),
		)
	}
	add(zipCode, fd.New("ziptown", "zipcode"))

	statusType := relation.NewTable("status_type", relation.NewSchema(
		relation.Cat("statusid", relation.KindInt),
		relation.Cat("statusname", relation.KindString),
		relation.Cat("statusdesc", relation.KindString),
	))
	statusNames := []string{"ACTIVE", "COMPLETED", "PENDING", "CANCELED", "SUBMITTED"}
	for i := 0; i < numStatuses; i++ {
		statusType.AppendValues(relation.IntValue(int64(i)), relation.StringValue(statusNames[i]),
			relation.StringValue("trade is "+statusNames[i]))
	}
	add(statusType, fd.New("statusname", "statusid"))

	taxrate := relation.NewTable("taxrate", relation.NewSchema(
		relation.Cat("taxid", relation.KindInt),
		relation.Cat("taxname", relation.KindString),
		relation.Num("traterate", relation.KindFloat),
	))
	for i := 0; i < sz["taxrate"]; i++ {
		taxrate.AppendValues(
			relation.IntValue(int64(i)),
			relation.StringValue(fmt.Sprintf("tax-%02d", i)),
			relation.FloatValue(0.01*float64(1+i)),
		)
	}
	add(taxrate, fd.New("traterate", "taxid"))

	// customer — 28 attributes, the paper's maximum.
	custCols := []relation.Column{
		relation.Cat("custid", relation.KindInt),
		relation.Cat("clname", relation.KindString),
		relation.Cat("cfname", relation.KindString),
		relation.Cat("ctier", relation.KindInt),
		relation.Cat("cdob", relation.KindString),
		relation.Cat("addrid", relation.KindInt),
		relation.Cat("statusid", relation.KindInt),
		relation.Cat("cgender", relation.KindString),
		relation.Cat("cphone", relation.KindString),
		relation.Cat("cemail", relation.KindString),
		relation.Num("cnetworth", relation.KindFloat),
		relation.Num("cincome", relation.KindFloat),
		relation.Num("cassets", relation.KindFloat),
		relation.Cat("crisk", relation.KindString),
		relation.Cat("cexp", relation.KindInt),
		relation.Cat("cbranch", relation.KindInt),
		relation.Cat("cregion", relation.KindString),
		relation.Cat("cjoined", relation.KindString),
		relation.Cat("cactive", relation.KindString),
		relation.Cat("cmstatus", relation.KindString),
		relation.Cat("cnatid", relation.KindInt),
		relation.Cat("carea", relation.KindString),
		relation.Cat("clocal", relation.KindString),
		relation.Cat("cext", relation.KindString),
		relation.Cat("ccountry", relation.KindString),
		relation.Cat("cemail2", relation.KindString),
		relation.Cat("cadcampaign", relation.KindInt),
		relation.Cat("clang", relation.KindString),
	}
	customer := relation.NewTable("customer", relation.NewSchema(custCols...))
	tierOfCust := make([]int64, sz["customer"])
	prefSector := make([]int64, sz["customer"])
	for i := 0; i < sz["customer"]; i++ {
		tier := int64(1 + rng.Intn(3))
		tierOfCust[i] = tier
		// Customers prefer a sector (used to bias watch lists): higher
		// tiers skew toward higher sector ids — the planted Q3 signal.
		prefSector[i] = (tier*4 + int64(rng.Intn(4))) % numSectors
		row := []relation.Value{
			relation.IntValue(int64(i)),
			relation.StringValue(fmt.Sprintf("lname-%03d", rng.Intn(400))),
			relation.StringValue(fmt.Sprintf("fname-%03d", rng.Intn(200))),
			relation.IntValue(tier),
			relation.StringValue(fmt.Sprintf("19%02d-%02d-%02d", 30+rng.Intn(60), 1+rng.Intn(12), 1+rng.Intn(28))),
			relation.IntValue(int64(rng.Intn(sz["address"]))),
			relation.IntValue(int64(rng.Intn(numStatuses))),
			relation.StringValue([]string{"M", "F"}[rng.Intn(2)]),
			relation.StringValue(fmt.Sprintf("%03d-%04d", rng.Intn(900), rng.Intn(9999))),
			relation.StringValue(fmt.Sprintf("c%d@mail.com", i)),
			relation.FloatValue(float64(tier) * 1e5 * (1 + rng.Float64())),
			relation.FloatValue(float64(tier) * 4e4 * (1 + rng.Float64())),
			relation.FloatValue(float64(tier) * 2e5 * (1 + rng.Float64())),
			relation.StringValue([]string{"LOW", "MED", "HIGH"}[tier-1]),
			relation.IntValue(int64(rng.Intn(30))),
			relation.IntValue(int64(rng.Intn(20))),
			relation.StringValue(states[rng.Intn(len(states))]),
			relation.StringValue(fmt.Sprintf("20%02d-01-01", rng.Intn(7))),
			relation.StringValue([]string{"Y", "N"}[rng.Intn(2)]),
			relation.StringValue([]string{"S", "M", "D"}[rng.Intn(3)]),
			relation.IntValue(int64(rng.Intn(1000000))),
			relation.StringValue(fmt.Sprintf("%03d", rng.Intn(900))),
			relation.StringValue(fmt.Sprintf("%07d", rng.Intn(9999999))),
			relation.StringValue(fmt.Sprintf("%03d", rng.Intn(999))),
			relation.StringValue("USA"),
			relation.StringValue(fmt.Sprintf("c%d@alt.com", i)),
			relation.IntValue(int64(rng.Intn(8))),
			relation.StringValue([]string{"EN", "ES", "FR"}[rng.Intn(3)]),
		}
		customer.Append(row)
	}
	add(customer,
		fd.New("ctier", "custid"), fd.New("addrid", "custid"), fd.New("crisk", "ctier"))

	// catier denormalizes the owner's tier: custid → catier is a
	// duplicate-LHS FD (customers own several accounts) that dirt can
	// degrade, like the paper's Zipcode → State example.
	customerAccount := relation.NewTable("customer_account", relation.NewSchema(
		relation.Cat("acctid", relation.KindInt),
		relation.Cat("custid", relation.KindInt),
		relation.Cat("brokerid", relation.KindInt),
		relation.Cat("catier", relation.KindInt),
		relation.Num("cabalance", relation.KindFloat),
		relation.Cat("caname", relation.KindString),
		relation.Cat("cataxst", relation.KindInt),
	))
	custOfAcct := make([]int64, sz["customer_account"])
	for i := 0; i < sz["customer_account"]; i++ {
		cust := int64(i % sz["customer"]) // every customer has an account
		if i >= sz["customer"] {
			cust = int64(rng.Intn(sz["customer"]))
		}
		custOfAcct[i] = cust
		// Balance tracks the customer tier — the Q3 source signal.
		bal := float64(tierOfCust[cust])*5e4 + rng.Float64()*2e4
		customerAccount.AppendValues(
			relation.IntValue(int64(i)),
			relation.IntValue(cust),
			relation.IntValue(int64(rng.Intn(sz["broker"]))),
			relation.IntValue(tierOfCust[cust]),
			relation.FloatValue(bal),
			relation.StringValue(fmt.Sprintf("acct-%04d", i)),
			relation.IntValue(int64(rng.Intn(3))),
		)
	}
	add(customerAccount, fd.New("custid", "acctid"), fd.New("catier", "custid"))

	customerTaxrate := relation.NewTable("customer_taxrate", relation.NewSchema(
		relation.Cat("taxid", relation.KindInt),
		relation.Cat("custid", relation.KindInt),
		relation.Cat("ctyear", relation.KindInt),
	))
	for i := 0; i < sz["customer_taxrate"]; i++ {
		customerTaxrate.AppendValues(
			relation.IntValue(int64(rng.Intn(sz["taxrate"]))),
			relation.IntValue(int64(i%sz["customer"])),
			relation.IntValue(int64(2000+rng.Intn(7))),
		)
	}
	add(customerTaxrate)

	broker := relation.NewTable("broker", relation.NewSchema(
		relation.Cat("brokerid", relation.KindInt),
		relation.Cat("bname", relation.KindString),
		relation.Num("bnumtrades", relation.KindInt),
		relation.Num("bcomm", relation.KindFloat),
	))
	for i := 0; i < sz["broker"]; i++ {
		broker.AppendValues(
			relation.IntValue(int64(i)),
			relation.StringValue(fmt.Sprintf("Broker-%03d", i)),
			relation.IntValue(int64(rng.Intn(10000))),
			relation.FloatValue(rng.Float64()*1e5),
		)
	}
	add(broker, fd.New("bname", "brokerid"))

	charge := relation.NewTable("charge", relation.NewSchema(
		relation.Cat("tradetypeid", relation.KindInt),
		relation.Cat("cttier", relation.KindInt),
		relation.Num("chargeamt", relation.KindFloat),
	))
	for i := 0; i < sz["charge"]; i++ {
		charge.AppendValues(
			relation.IntValue(int64(i%numTradeTypes)),
			relation.IntValue(int64(1+i/numTradeTypes)),
			relation.FloatValue(float64(1+i)),
		)
	}
	add(charge, fd.New("chargeamt", "cttier", "tradetypeid"))

	commissionRate := relation.NewTable("commission_rate", relation.NewSchema(
		relation.Cat("tradetypeid", relation.KindInt),
		relation.Cat("exid", relation.KindInt),
		relation.Num("crrate", relation.KindFloat),
		relation.Num("crfromqty", relation.KindInt),
	))
	for i := 0; i < sz["commission_rate"]; i++ {
		commissionRate.AppendValues(
			relation.IntValue(int64(i%numTradeTypes)),
			relation.IntValue(int64(i%numExchanges)),
			relation.FloatValue(0.001*float64(1+i)),
			relation.IntValue(int64(100*i)),
		)
	}
	add(commissionRate)

	// ---- Trading tables -----------------------------------------------------

	// texch denormalizes the traded security's exchange: symbol → texch is
	// a duplicate-LHS FD (symbols recur across trades).
	trade := relation.NewTable("trade", relation.NewSchema(
		relation.Cat("tradeid", relation.KindInt),
		relation.Cat("acctid", relation.KindInt),
		relation.Cat("symbol", relation.KindString),
		relation.Cat("texch", relation.KindInt),
		relation.Num("tqty", relation.KindInt),
		relation.Num("tprice", relation.KindFloat),
		relation.Cat("tdate", relation.KindString),
		relation.Cat("statusid", relation.KindInt),
		relation.Cat("tradetypeid", relation.KindInt),
	))
	acctOfTrade := make([]int64, sz["trade"])
	for i := 0; i < sz["trade"]; i++ {
		acct := int64(rng.Intn(sz["customer_account"]))
		acctOfTrade[i] = acct
		si := rng.Intn(sz["security"])
		trade.AppendValues(
			relation.IntValue(int64(i)),
			relation.IntValue(acct),
			relation.StringValue(symbols[si]),
			relation.IntValue(exchOfSymbol[si]),
			relation.IntValue(int64(10*(1+rng.Intn(100)))),
			relation.FloatValue(sectorBase[sectorOfSymbol(si)]+rng.Float64()*10),
			relation.StringValue(fmt.Sprintf("2006-%02d-%02d", 1+rng.Intn(12), 1+rng.Intn(28))),
			relation.IntValue(int64(rng.Intn(numStatuses))),
			relation.IntValue(int64(rng.Intn(numTradeTypes))),
		)
	}
	add(trade, fd.New("acctid", "tradeid"), fd.New("texch", "symbol"))

	tradeHistory := relation.NewTable("trade_history", relation.NewSchema(
		relation.Cat("tradeid", relation.KindInt),
		relation.Cat("thdate", relation.KindString),
		relation.Cat("thstatusid", relation.KindInt),
	))
	for i := 0; i < sz["trade_history"]; i++ {
		tradeHistory.AppendValues(
			relation.IntValue(int64(i%sz["trade"])),
			relation.StringValue(fmt.Sprintf("2006-%02d-%02d", 1+rng.Intn(12), 1+rng.Intn(28))),
			relation.IntValue(int64(rng.Intn(numStatuses))),
		)
	}
	add(tradeHistory)

	tradeType := relation.NewTable("trade_type", relation.NewSchema(
		relation.Cat("tradetypeid", relation.KindInt),
		relation.Cat("ttname", relation.KindString),
		relation.Cat("ttmarket", relation.KindString),
	))
	ttNames := []string{"MARKET-BUY", "MARKET-SELL", "LIMIT-BUY", "LIMIT-SELL", "STOP-LOSS"}
	for i := 0; i < numTradeTypes; i++ {
		tradeType.AppendValues(
			relation.IntValue(int64(i)),
			relation.StringValue(ttNames[i]),
			relation.StringValue([]string{"Y", "N"}[i%2]),
		)
	}
	add(tradeType, fd.New("ttname", "tradetypeid"))

	// hsector denormalizes the held security's sector: symbol → hsector is
	// a duplicate-LHS FD.
	holding := relation.NewTable("holding", relation.NewSchema(
		relation.Cat("tradeid", relation.KindInt),
		relation.Cat("acctid", relation.KindInt),
		relation.Cat("symbol", relation.KindString),
		relation.Cat("hsector", relation.KindInt),
		relation.Num("hqty", relation.KindInt),
		relation.Num("hprice", relation.KindFloat),
	))
	for i := 0; i < sz["holding"]; i++ {
		ti := rng.Intn(sz["trade"])
		si := rng.Intn(sz["security"])
		holding.AppendValues(
			relation.IntValue(int64(ti)),
			relation.IntValue(acctOfTrade[ti]),
			relation.StringValue(symbols[si]),
			relation.IntValue(sectorOfSymbol(si)),
			relation.IntValue(int64(10*(1+rng.Intn(50)))),
			relation.FloatValue(sectorBase[sectorOfSymbol(si)]+rng.Float64()*10),
		)
	}
	add(holding, fd.New("acctid", "tradeid"), fd.New("hsector", "symbol"))

	holdingHistory := relation.NewTable("holding_history", relation.NewSchema(
		relation.Cat("tradeid", relation.KindInt),
		relation.Num("hhbefore", relation.KindInt),
		relation.Num("hhafter", relation.KindInt),
	))
	for i := 0; i < sz["holding_history"]; i++ {
		before := rng.Intn(1000)
		holdingHistory.AppendValues(
			relation.IntValue(int64(rng.Intn(sz["trade"]))),
			relation.IntValue(int64(before)),
			relation.IntValue(int64(before+10*(1+rng.Intn(20)))),
		)
	}
	add(holdingHistory)

	holdingSummary := relation.NewTable("holding_summary", relation.NewSchema(
		relation.Cat("acctid", relation.KindInt),
		relation.Cat("symbol", relation.KindString),
		relation.Num("hsqty", relation.KindInt),
	))
	for i := 0; i < sz["holding_summary"]; i++ {
		holdingSummary.AppendValues(
			relation.IntValue(int64(rng.Intn(sz["customer_account"]))),
			relation.StringValue(symbols[rng.Intn(sz["security"])]),
			relation.IntValue(int64(10*(1+rng.Intn(100)))),
		)
	}
	add(holdingSummary)

	settlement := relation.NewTable("settlement", relation.NewSchema(
		relation.Cat("tradeid", relation.KindInt),
		relation.Cat("scashtype", relation.KindString),
		relation.Num("samt", relation.KindFloat),
	))
	for i := 0; i < sz["settlement"]; i++ {
		settlement.AppendValues(
			relation.IntValue(int64(i%sz["trade"])),
			relation.StringValue([]string{"CASH", "MARGIN"}[rng.Intn(2)]),
			relation.FloatValue(rng.Float64()*1e5),
		)
	}
	add(settlement, fd.New("scashtype", "tradeid"))

	// ---- Watch lists (the Q3 bridge) ---------------------------------------

	watchList := relation.NewTable("watch_list", relation.NewSchema(
		relation.Cat("wlid", relation.KindInt),
		relation.Cat("custid", relation.KindInt),
		relation.Cat("wlname", relation.KindString),
	))
	custOfWl := make([]int64, sz["watch_list"])
	for i := 0; i < sz["watch_list"]; i++ {
		cust := int64(i % sz["customer"])
		custOfWl[i] = cust
		watchList.AppendValues(relation.IntValue(int64(i)), relation.IntValue(cust),
			relation.StringValue(fmt.Sprintf("list-%03d", i)))
	}
	add(watchList, fd.New("custid", "wlid"))

	// Symbols grouped by sector for biased watch-item selection.
	bySector := make([][]int, numSectors)
	for si := 0; si < sz["security"]; si++ {
		s := sectorOfSymbol(si)
		bySector[s] = append(bySector[s], si)
	}
	watchItem := relation.NewTable("watch_item", relation.NewSchema(
		relation.Cat("wlid", relation.KindInt),
		relation.Cat("symbol", relation.KindString),
		relation.Cat("wiactive", relation.KindString),
	))
	for i := 0; i < sz["watch_item"]; i++ {
		wl := rng.Intn(sz["watch_list"])
		var si int
		pref := prefSector[custOfWl[wl]]
		if rng.Float64() < 0.7 && len(bySector[pref]) > 0 {
			si = bySector[pref][rng.Intn(len(bySector[pref]))]
		} else {
			si = rng.Intn(sz["security"])
		}
		watchItem.AppendValues(relation.IntValue(int64(wl)), relation.StringValue(symbols[si]),
			relation.StringValue([]string{"Y", "N"}[rng.Intn(2)]))
	}
	add(watchItem)

	if cfg.DirtyFraction > 0 {
		tm := map[string]*relation.Table{}
		for _, t := range d.Tables {
			tm[t.Name] = t
		}
		dirty.InjectTables(tm, d.FDs, DirtyTables, cfg.DirtyFraction, rng)
	}
	return d
}
