package tpce

import (
	"testing"

	"github.com/dance-db/dance/internal/fd"
	"github.com/dance-db/dance/internal/infotheory"
	"github.com/dance-db/dance/internal/relation"
)

func TestGenerateShapeMatchesTable5(t *testing.T) {
	d := Generate(Config{Scale: 2, Seed: 1, DirtyFraction: 0.2})
	if len(d.Tables) != 29 {
		t.Fatalf("tables = %d, want 29 (Table 5)", len(d.Tables))
	}
	for _, name := range TableNames {
		if d.Table(name) == nil {
			t.Fatalf("missing table %s", name)
		}
	}
	// Min instance: exchange with 4 rows.
	if got := d.Table("exchange").NumRows(); got != 4 {
		t.Errorf("exchange rows = %d, want 4", got)
	}
	// Max instance: watch_item.
	maxRows, maxName := 0, ""
	for _, tab := range d.Tables {
		if tab.NumRows() > maxRows {
			maxRows, maxName = tab.NumRows(), tab.Name
		}
	}
	if maxName != "watch_item" {
		t.Errorf("largest table = %s, want watch_item", maxName)
	}
	// Min attributes: sector with 3; max: customer with 28.
	if got := d.Table("sector").NumCols(); got != 3 {
		t.Errorf("sector cols = %d, want 3", got)
	}
	if got := d.Table("customer").NumCols(); got != 28 {
		t.Errorf("customer cols = %d, want 28", got)
	}
}

func TestQ3SpineJoins(t *testing.T) {
	// The length-8 spine must join end to end with nonzero rows:
	// customer_account—customer—watch_list—watch_item—security—company—
	// industry—sector.
	d := Generate(Config{Scale: 2, Seed: 2, DirtyFraction: 0.2})
	steps := []relation.PathStep{
		{Table: d.Table("customer_account")},
		{Table: d.Table("customer"), On: []string{"custid"}},
		{Table: d.Table("watch_list"), On: []string{"custid"}},
		{Table: d.Table("watch_item"), On: []string{"wlid"}},
		{Table: d.Table("security"), On: []string{"symbol"}},
		{Table: d.Table("company"), On: []string{"companyid"}},
		{Table: d.Table("industry"), On: []string{"indid"}},
		{Table: d.Table("sector"), On: []string{"sectorid"}},
	}
	j, err := relation.JoinPath(steps)
	if err != nil {
		t.Fatal(err)
	}
	if j.NumRows() == 0 {
		t.Fatal("Q3 spine join is empty")
	}
	if !j.Schema.Has("cabalance") || !j.Schema.Has("sectorname") {
		t.Fatal("spine join missing source/target attributes")
	}
}

func TestPlantedSpineCorrelation(t *testing.T) {
	d := Generate(Config{Scale: 3, Seed: 3, DirtyFraction: 0})
	// Short spine: dmclose is driven by the security's sector.
	steps := []relation.PathStep{
		{Table: d.Table("daily_market")},
		{Table: d.Table("security"), On: []string{"symbol"}},
		{Table: d.Table("company"), On: []string{"companyid"}},
		{Table: d.Table("industry"), On: []string{"indid"}},
		{Table: d.Table("sector"), On: []string{"sectorid"}},
	}
	j, err := relation.JoinPath(steps)
	if err != nil {
		t.Fatal(err)
	}
	corr, err := infotheory.Correlation(j, []string{"dmclose"}, []string{"sectorname"})
	if err != nil {
		t.Fatal(err)
	}
	if corr <= 0 {
		t.Fatalf("planted sector→price correlation missing: %v", corr)
	}
	noise, err := infotheory.Correlation(j, []string{"dmclose"}, []string{"issue"})
	if err != nil {
		t.Fatal(err)
	}
	if corr <= noise {
		t.Fatalf("CORR(dmclose; sectorname)=%v not above CORR(dmclose; issue)=%v", corr, noise)
	}
}

func TestDirtySplit(t *testing.T) {
	if len(DirtyTables) != 20 {
		t.Fatalf("dirty tables = %d, want 20 (paper: 20 of 29)", len(DirtyTables))
	}
	d := Generate(Config{Scale: 2, Seed: 4, DirtyFraction: 0.2})
	// Clean reference tables keep perfect declared-FD quality.
	for _, name := range []string{"sector", "industry", "status_type", "trade_type"} {
		for _, f := range d.FDs[name] {
			q, _ := fd.Quality(d.Table(name), f)
			if q != 1 {
				t.Errorf("clean table %s FD %s quality = %v", name, f, q)
			}
		}
	}
	// At least several dirty tables actually have degraded FDs.
	degraded := 0
	for _, name := range DirtyTables {
		for _, f := range d.FDs[name] {
			q, _ := fd.Quality(d.Table(name), f)
			if q < 1 {
				degraded++
			}
		}
	}
	if degraded < 5 {
		t.Fatalf("only %d degraded FDs across dirty tables", degraded)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{Scale: 1, Seed: 11, DirtyFraction: 0.2})
	b := Generate(Config{Scale: 1, Seed: 11, DirtyFraction: 0.2})
	for i := range a.Tables {
		ta, tb := a.Tables[i], b.Tables[i]
		for r := range ta.Rows {
			for c := range ta.Rows[r] {
				if ta.Rows[r][c] != tb.Rows[r][c] {
					t.Fatalf("%s cell (%d,%d) differs", ta.Name, r, c)
				}
			}
		}
	}
}

func TestForeignKeysResolve(t *testing.T) {
	d := Generate(Config{Scale: 2, Seed: 5})
	pairs := []struct{ child, attr, parent string }{
		{"industry", "sectorid", "sector"},
		{"company", "indid", "industry"},
		{"security", "companyid", "company"},
		{"customer_account", "custid", "customer"},
		{"watch_list", "custid", "customer"},
		{"watch_item", "wlid", "watch_list"},
		{"trade", "acctid", "customer_account"},
	}
	for _, p := range pairs {
		parentVals, err := d.Table(p.parent).Column(p.attr)
		if err != nil {
			t.Fatalf("%s.%s: %v", p.parent, p.attr, err)
		}
		valid := map[relation.Value]bool{}
		for _, v := range parentVals {
			valid[v] = true
		}
		childVals, err := d.Table(p.child).Column(p.attr)
		if err != nil {
			t.Fatalf("%s.%s: %v", p.child, p.attr, err)
		}
		for _, v := range childVals {
			if !valid[v] {
				t.Fatalf("%s.%s = %v dangling", p.child, p.attr, v)
			}
		}
	}
}
