package infotheory

import (
	"math/rand"
	"testing"

	"github.com/dance-db/dance/internal/relation"
)

// randomMetricTable builds a mixed-kind table with NULL dirt for the
// columnar-vs-row equivalence properties. Column m mixes IntValue(x) and
// FloatValue(x) so the IntValue(3) == FloatValue(3.0) grouping rule is
// exercised through dictionary encoding.
func randomMetricTable(rng *rand.Rand, nRows int, nullFrac float64) *relation.Table {
	tab := relation.NewTable("q", relation.NewSchema(
		relation.Cat("k", relation.KindInt),
		relation.Cat("s", relation.KindString),
		relation.Num("v", relation.KindFloat),
		relation.Num("w", relation.KindInt),
		relation.Cat("m", relation.KindFloat),
	))
	for i := 0; i < nRows; i++ {
		row := make([]relation.Value, 5)
		if rng.Float64() >= nullFrac {
			row[0] = relation.IntValue(int64(rng.Intn(5)))
		}
		if rng.Float64() >= nullFrac {
			row[1] = relation.StringValue(string(rune('a' + rng.Intn(3))))
		}
		if rng.Float64() >= nullFrac {
			row[2] = relation.FloatValue(rng.Float64() * 100)
		}
		if rng.Float64() >= nullFrac {
			row[3] = relation.IntValue(int64(rng.Intn(40)))
		}
		x := rng.Intn(4)
		if rng.Float64() >= nullFrac {
			if rng.Intn(2) == 0 {
				row[4] = relation.IntValue(int64(x))
			} else {
				row[4] = relation.FloatValue(float64(x))
			}
		}
		tab.Append(row)
	}
	return tab
}

func TestEntropyColumnarBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		tab := randomMetricTable(rng, 30+rng.Intn(200), []float64{0.05, 0.3, 0.6}[trial%3])
		c := relation.ToColumnar(tab)
		for _, cols := range [][]string{{"k"}, {"m"}, {"k", "s"}, {"k", "s", "m"}} {
			want, err := Entropy(tab, cols...)
			if err != nil {
				t.Fatal(err)
			}
			got, err := EntropyColumnar(c, cols...)
			if err != nil {
				t.Fatal(err)
			}
			if want != got {
				t.Fatalf("H%v: columnar %v != row %v (must be bit-identical)", cols, got, want)
			}
		}
		wantC, err := ConditionalEntropy(tab, []string{"k"}, []string{"s", "m"})
		if err != nil {
			t.Fatal(err)
		}
		gotC, err := ConditionalEntropyColumnar(c, []string{"k"}, []string{"s", "m"})
		if err != nil {
			t.Fatal(err)
		}
		if wantC != gotC {
			t.Fatalf("H(k|s,m): columnar %v != row %v", gotC, wantC)
		}
	}
}

func TestCorrelationColumnarBitIdenticalToRows(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	cases := [][2][]string{
		{{"v"}, {"k"}},
		{{"v", "w"}, {"k", "s"}},
		{{"k"}, {"s"}},
		{{"k", "v"}, {"m"}},
		{{"m"}, {"k"}},
		{{"v"}, {"m"}},
	}
	for trial := 0; trial < 25; trial++ {
		tab := randomMetricTable(rng, 30+rng.Intn(200), []float64{0.05, 0.3, 0.6}[trial%3])
		for _, xy := range cases {
			want, err := CorrelationOnRows(tab, xy[0], xy[1])
			if err != nil {
				t.Fatal(err)
			}
			got, err := Correlation(tab, xy[0], xy[1])
			if err != nil {
				t.Fatal(err)
			}
			if want != got {
				t.Fatalf("CORR(%v, %v): columnar %v != row %v (must be bit-identical)", xy[0], xy[1], got, want)
			}
			// And the fully coded columnar (the search path's shape) must
			// agree too.
			got2, err := CorrelationColumnar(relation.ToColumnar(tab), xy[0], xy[1])
			if err != nil {
				t.Fatal(err)
			}
			if want != got2 {
				t.Fatalf("CORR(%v, %v): full-columnar %v != row %v", xy[0], xy[1], got2, want)
			}
		}
	}
}

func TestCorrelationDeterministicAcrossCalls(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	tab := randomMetricTable(rng, 300, 0.25)
	first, err := Correlation(tab, []string{"v", "k"}, []string{"s", "m"})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := CorrelationOnRows(tab, []string{"v", "k"}, []string{"s", "m"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		again, err := Correlation(tab, []string{"v", "k"}, []string{"s", "m"})
		if err != nil {
			t.Fatal(err)
		}
		if again != first {
			t.Fatalf("Correlation nondeterministic: %v then %v", first, again)
		}
		againRef, err := CorrelationOnRows(tab, []string{"v", "k"}, []string{"s", "m"})
		if err != nil {
			t.Fatal(err)
		}
		if againRef != ref {
			t.Fatalf("CorrelationOnRows nondeterministic: %v then %v", ref, againRef)
		}
	}
}

func TestCorrelationColumnarErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	tab := randomMetricTable(rng, 20, 0.2)
	if _, err := Correlation(tab, []string{"missing"}, []string{"k"}); err == nil {
		t.Fatal("missing X column should error")
	}
	if _, err := Correlation(tab, []string{"v"}, []string{"missing"}); err == nil {
		t.Fatal("missing Y column should error")
	}
	if c, err := Correlation(tab, nil, []string{"k"}); err != nil || c != 0 {
		t.Fatalf("empty X: got %v, %v", c, err)
	}
}

func TestJIFromPairCountsDeterministic(t *testing.T) {
	// EntropyFromCounts no longer sorts, so JI must collect counts in a
	// deterministic order itself.
	rng := rand.New(rand.NewSource(15))
	joint := map[[2]string]int64{}
	for i := 0; i < 200; i++ {
		joint[[2]string{string(rune('a' + rng.Intn(20))), string(rune('A' + rng.Intn(20)))}] += int64(rng.Intn(5) + 1)
	}
	first := JIFromPairCounts(joint)
	for i := 0; i < 50; i++ {
		if got := JIFromPairCounts(joint); got != first {
			t.Fatalf("JIFromPairCounts nondeterministic: %v then %v", first, got)
		}
	}
}
