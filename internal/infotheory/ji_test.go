package infotheory

import (
	"testing"
	"testing/quick"

	"github.com/dance-db/dance/internal/relation"
)

func kv(name string, keys []int64) *relation.Table {
	t := relation.NewTable(name, relation.NewSchema(
		relation.Cat("k", relation.KindInt),
		relation.Cat("payload_"+name, relation.KindInt),
	))
	for i, k := range keys {
		t.AppendValues(relation.IntValue(k), relation.IntValue(int64(i)))
	}
	return t
}

func TestJIPerfectMatch(t *testing.T) {
	// Identical key multisets, one-to-one: every pair matches, D.J == D'.J
	// always, so I = H and JI = 0 (most informative).
	a := kv("a", []int64{1, 2, 3, 4})
	b := kv("b", []int64{1, 2, 3, 4})
	ji, err := JoinInformativeness(a, b, []string{"k"})
	if err != nil {
		t.Fatal(err)
	}
	if ji > 1e-12 {
		t.Fatalf("JI = %v, want 0 for perfect join", ji)
	}
}

func TestJICompletelyDisjoint(t *testing.T) {
	// No key matches: all pairs are (v, NULL) or (NULL, v). Knowing the
	// left value fully determines the pair, so I = H(joint) - H(right|left)
	// ... in fact here I(L;R) = H(L) + H(R) - H(L,R) where each marginal
	// equals the joint support split; JI must be far from 0.
	a := kv("a", []int64{1, 2, 3, 4})
	b := kv("b", []int64{5, 6, 7, 8})
	ji, err := JoinInformativeness(a, b, []string{"k"})
	if err != nil {
		t.Fatal(err)
	}
	if ji <= 0.3 {
		t.Fatalf("JI = %v, want clearly positive for disjoint join", ji)
	}
}

func TestJIOrderingMatchesIntuition(t *testing.T) {
	// A join where most keys match should be more informative (lower JI)
	// than one where few keys match.
	mostly := kv("b1", []int64{1, 2, 3, 9})
	barely := kv("b2", []int64{1, 9, 8, 7})
	a := kv("a", []int64{1, 2, 3, 4})
	jiMostly, err := JoinInformativeness(a, mostly, []string{"k"})
	if err != nil {
		t.Fatal(err)
	}
	jiBarely, err := JoinInformativeness(a, barely, []string{"k"})
	if err != nil {
		t.Fatal(err)
	}
	if jiMostly >= jiBarely {
		t.Fatalf("JI(mostly matched)=%v should be < JI(barely matched)=%v", jiMostly, jiBarely)
	}
}

func TestJIDegenerate(t *testing.T) {
	// Single shared constant key: H(joint) = 0 → JI defined as 0.
	a := kv("a", []int64{7, 7})
	b := kv("b", []int64{7})
	ji, err := JoinInformativeness(a, b, []string{"k"})
	if err != nil {
		t.Fatal(err)
	}
	if ji != 0 {
		t.Fatalf("degenerate JI = %v, want 0", ji)
	}
	if _, err := JoinInformativeness(a, b, nil); err == nil {
		t.Fatal("no join attributes should error")
	}
}

func TestJIFromPairCountsEmpty(t *testing.T) {
	if got := JIFromPairCounts(nil); got != 0 {
		t.Fatalf("JI(nil) = %v", got)
	}
}

func TestJISymmetric(t *testing.T) {
	a := kv("a", []int64{1, 1, 2, 3, 5})
	b := kv("b", []int64{1, 2, 2, 8})
	j1, err := JoinInformativeness(a, b, []string{"k"})
	if err != nil {
		t.Fatal(err)
	}
	j2, err := JoinInformativeness(b, a, []string{"k"})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(j1, j2, 1e-12) {
		t.Fatalf("JI not symmetric: %v vs %v", j1, j2)
	}
}

// Property: JI always lies in [0, 1].
func TestQuickJIRange(t *testing.T) {
	f := func(aKeys, bKeys []uint8) bool {
		if len(aKeys) == 0 || len(bKeys) == 0 {
			return true
		}
		ak := make([]int64, len(aKeys))
		for i, k := range aKeys {
			ak[i] = int64(k % 16)
		}
		bk := make([]int64, len(bKeys))
		for i, k := range bKeys {
			bk[i] = int64(k % 16)
		}
		ji, err := JoinInformativeness(kv("a", ak), kv("b", bk), []string{"k"})
		return err == nil && ji >= 0 && ji <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property 4.1 of the paper: JI depends only on the join-attribute values,
// not on the other attributes of either table. We verify by permuting the
// payload column.
func TestQuickJIIgnoresPayload(t *testing.T) {
	f := func(keys []uint8, seed int64) bool {
		if len(keys) < 2 {
			return true
		}
		ak := make([]int64, len(keys))
		for i, k := range keys {
			ak[i] = int64(k % 8)
		}
		a := kv("a", ak)
		b1 := kv("b", ak[:len(ak)/2])
		b2 := kv("b", ak[:len(ak)/2])
		// Scramble payload of b2.
		pi := b2.Schema.Index("payload_b")
		for i := range b2.Rows {
			b2.Rows[i][pi] = relation.IntValue(int64(i) * 1337)
		}
		j1, err1 := JoinInformativeness(a, b1, []string{"k"})
		j2, err2 := JoinInformativeness(a, b2, []string{"k"})
		return err1 == nil && err2 == nil && almost(j1, j2, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
