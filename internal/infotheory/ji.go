package infotheory

import (
	"fmt"
	"sort"

	"github.com/dance-db/dance/internal/relation"
)

// JoinInformativeness computes JI(D, D') of Def 2.4 for tables a and b over
// join attributes on:
//
//	JI = (H(a.J, b.J) − I(a.J; b.J)) / H(a.J, b.J)
//
// where the joint distribution of (a.J, b.J) is taken over the full outer
// join of a and b, so unmatched values appear as (v, NULL) / (NULL, v)
// pairs and are penalized. The value lies in [0, 1]; smaller is a more
// informative join. A degenerate outer join with a single distinct pair
// (H = 0) returns 0, the most informative value, since the join loses
// nothing.
func JoinInformativeness(a, b *relation.Table, on []string) (float64, error) {
	if len(on) == 0 {
		return 0, fmt.Errorf("infotheory: join informativeness of %s/%s with no join attributes", a.Name, b.Name)
	}
	joint, err := relation.OuterJoinPairCounts(a, b, on)
	if err != nil {
		return 0, err
	}
	return JIFromPairCounts(joint), nil
}

// JIFromPairCounts computes JI from a precomputed joint pair distribution
// (as produced by relation.OuterJoinPairCounts). Exposed so the sampling
// estimators can reuse it. Pair keys are sorted before the counts are
// collected: EntropyFromCounts sums in input order, so iterating the map
// directly would make JI nondeterministic in the last ulps.
func JIFromPairCounts(joint map[[2]string]int64) float64 {
	if len(joint) == 0 {
		return 0
	}
	keys := make([][2]string, 0, len(joint))
	for k := range joint {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	var total int64
	left := make(map[string]int64)
	right := make(map[string]int64)
	var leftOrder, rightOrder []string
	jointCounts := make([]int64, 0, len(joint))
	for _, k := range keys {
		c := joint[k]
		total += c
		if _, ok := left[k[0]]; !ok {
			leftOrder = append(leftOrder, k[0])
		}
		left[k[0]] += c
		if _, ok := right[k[1]]; !ok {
			rightOrder = append(rightOrder, k[1])
		}
		right[k[1]] += c
		jointCounts = append(jointCounts, c)
	}
	if total == 0 {
		return 0
	}
	hJoint := EntropyFromCounts(jointCounts)
	if hJoint == 0 {
		return 0
	}
	lc := make([]int64, 0, len(left))
	for _, k := range leftOrder {
		lc = append(lc, left[k])
	}
	rc := make([]int64, 0, len(right))
	for _, k := range rightOrder {
		rc = append(rc, right[k])
	}
	mi := EntropyFromCounts(lc) + EntropyFromCounts(rc) - hJoint
	ji := (hJoint - mi) / hJoint
	// Clamp numeric noise into [0, 1].
	if ji < 0 {
		ji = 0
	}
	if ji > 1 {
		ji = 1
	}
	return ji
}
