// Package infotheory implements the information-theoretic measures the paper
// builds on: Shannon entropy, conditional entropy, mutual information,
// cumulative entropy for numeric attributes (Nguyen et al., used by Def 2.5),
// the mixed-type correlation measure CORR (Def 2.5), and join
// informativeness JI (Def 2.4), all in log base 2.
package infotheory

import (
	"fmt"
	"math"
	"sort"

	"github.com/dance-db/dance/internal/relation"
)

// log2 guards against log(0); callers never pass p <= 0.
func log2(p float64) float64 { return math.Log2(p) }

// EntropyFromCounts returns the Shannon entropy (bits) of the empirical
// distribution given by non-negative counts. Zero counts are skipped.
// Terms are accumulated with Neumaier-compensated summation — O(n) instead
// of the O(n log n) sort the seed used for float stability — so callers must
// pass counts in a deterministic order (first-appearance order everywhere in
// this repo) for reproducible results; the compensation then keeps the sum
// accurate to the last ulp.
func EntropyFromCounts[N int | int64](counts []N) float64 {
	var total float64
	for _, c := range counts {
		if c < 0 {
			panic(fmt.Sprintf("infotheory: negative count %v", c))
		}
		total += float64(c)
	}
	if total == 0 {
		return 0
	}
	var sum, comp float64
	for _, c := range counts {
		if c <= 0 {
			continue
		}
		p := float64(c) / total
		term := -p * log2(p)
		t := sum + term
		if math.Abs(sum) >= math.Abs(term) {
			comp += (sum - t) + term
		} else {
			comp += (term - t) + sum
		}
		sum = t
	}
	return sum + comp
}

// groupCounts returns the multiplicity of each distinct tuple of the named
// columns, in first-appearance order (the deterministic order entropy terms
// are summed in).
func groupCounts(t *relation.Table, cols []string) ([]int64, error) {
	idx, err := t.Schema.Indexes(cols...)
	if err != nil {
		return nil, err
	}
	ids := make(map[string]int, len(t.Rows)/4+1)
	counts := make([]int64, 0, 16)
	var buf []byte
	for _, r := range t.Rows {
		buf = relation.EncodeKey(buf[:0], r, idx)
		id, ok := ids[string(buf)]
		if !ok {
			id = len(counts)
			ids[string(buf)] = id
			counts = append(counts, 0)
		}
		counts[id]++
	}
	return counts, nil
}

// Entropy returns the joint Shannon entropy H(X) of the named attribute set
// X in t.
func Entropy(t *relation.Table, cols ...string) (float64, error) {
	if len(cols) == 0 || t.NumRows() == 0 {
		return 0, nil
	}
	counts, err := groupCounts(t, cols)
	if err != nil {
		return 0, fmt.Errorf("entropy of %s%v: %w", t.Name, cols, err)
	}
	return EntropyFromCounts(counts), nil
}

// ConditionalEntropy returns H(X | Y) = H(X ∪ Y) − H(Y) for attribute sets
// X and Y of t.
func ConditionalEntropy(t *relation.Table, x, y []string) (float64, error) {
	hy, err := Entropy(t, y...)
	if err != nil {
		return 0, err
	}
	hxy, err := Entropy(t, append(append([]string{}, x...), y...)...)
	if err != nil {
		return 0, err
	}
	return hxy - hy, nil
}

// MutualInformation returns I(X; Y) = H(X) + H(Y) − H(X, Y).
func MutualInformation(t *relation.Table, x, y []string) (float64, error) {
	hx, err := Entropy(t, x...)
	if err != nil {
		return 0, err
	}
	hy, err := Entropy(t, y...)
	if err != nil {
		return 0, err
	}
	hxy, err := Entropy(t, append(append([]string{}, x...), y...)...)
	if err != nil {
		return 0, err
	}
	return hx + hy - hxy, nil
}

// CumulativeEntropy returns the empirical cumulative entropy
// h(X) = −Σ_{i<n} (x_{i+1} − x_i) · F(x_i) · log2 F(x_i)
// of the sample xs, where F is the empirical CDF. NULLs must be filtered by
// the caller. The result is non-negative and 0 for constant or empty input.
func CumulativeEntropy(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return cumulativeEntropySorted(sorted, log2Table(make([]float64, 0, len(sorted)+1), len(sorted)))
}

// log2Table extends tab so that tab[k] = log2(k) for k in [0, n] (entry 0 is
// unused). The empirical CDF steps of cumulative entropy are all of the form
// k/n, so one table shared across every conditioning group replaces the
// per-step log calls that dominate the numeric correlation profile:
// log2(k/n) is evaluated as tab[k] − tab[n].
func log2Table(tab []float64, n int) []float64 {
	for k := len(tab); k <= n; k++ {
		tab = append(tab, log2(float64(k)))
	}
	return tab
}

// cumulativeEntropySorted is CumulativeEntropy for callers that own xs (and
// may therefore sort it in place, skipping the defensive copy) and hold a
// log2Table covering len(xs). The columnar hot path calls it once per
// conditioning group with one shared table.
func cumulativeEntropySorted(sorted []float64, logTab []float64) float64 {
	n := len(sorted)
	if n < 2 {
		return 0
	}
	ln := logTab[n]
	h := 0.0
	for i := 0; i < n-1; i++ {
		dx := sorted[i+1] - sorted[i]
		if dx == 0 {
			continue
		}
		f := float64(i+1) / float64(n)
		if f >= 1 {
			continue // log2(1) = 0
		}
		h -= dx * f * (logTab[i+1] - ln)
	}
	return h
}

// numericColumn extracts the non-NULL numeric values of column name for the
// given row indices (nil = all rows).
func numericColumn(t *relation.Table, name string, rows []int) ([]float64, error) {
	ci := t.Schema.Index(name)
	if ci < 0 {
		return nil, fmt.Errorf("infotheory: table %s has no column %q", t.Name, name)
	}
	var out []float64
	take := func(r []relation.Value) {
		if !r[ci].IsNull() {
			out = append(out, r[ci].Num())
		}
	}
	if rows == nil {
		for _, r := range t.Rows {
			take(r)
		}
	} else {
		for _, i := range rows {
			take(t.Rows[i])
		}
	}
	return out, nil
}

// ConditionalCumulativeEntropy returns h(X | Y) = Σ_y p(y) · h(X | Y = y)
// where X is a numeric attribute and Y an attribute set treated as discrete
// conditioning groups.
func ConditionalCumulativeEntropy(t *relation.Table, x string, y []string) (float64, error) {
	if t.NumRows() == 0 {
		return 0, nil
	}
	groups, err := t.GroupRowLists(y...)
	if err != nil {
		return 0, fmt.Errorf("conditional cumulative entropy %s|%v: %w", x, y, err)
	}
	total := float64(t.NumRows())
	h := 0.0
	for _, rows := range groups {
		vals, err := numericColumn(t, x, rows)
		if err != nil {
			return 0, err
		}
		h += float64(len(rows)) / total * CumulativeEntropy(vals)
	}
	return h, nil
}
