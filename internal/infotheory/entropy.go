// Package infotheory implements the information-theoretic measures the paper
// builds on: Shannon entropy, conditional entropy, mutual information,
// cumulative entropy for numeric attributes (Nguyen et al., used by Def 2.5),
// the mixed-type correlation measure CORR (Def 2.5), and join
// informativeness JI (Def 2.4), all in log base 2.
package infotheory

import (
	"fmt"
	"math"
	"sort"

	"github.com/dance-db/dance/internal/relation"
)

// log2 guards against log(0); callers never pass p <= 0.
func log2(p float64) float64 { return math.Log2(p) }

// EntropyFromCounts returns the Shannon entropy (bits) of the empirical
// distribution given by non-negative counts. Zero counts are skipped.
// Counts are summed in sorted order so the result is deterministic even
// when the caller collected them from map iteration (float addition is not
// associative).
func EntropyFromCounts[N int | int64](counts []N) float64 {
	sorted := make([]int64, 0, len(counts))
	var total float64
	for _, c := range counts {
		if c < 0 {
			panic(fmt.Sprintf("infotheory: negative count %v", c))
		}
		if c > 0 {
			sorted = append(sorted, int64(c))
			total += float64(c)
		}
	}
	if total == 0 {
		return 0
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	h := 0.0
	for _, c := range sorted {
		p := float64(c) / total
		h -= p * log2(p)
	}
	return h
}

// groupCounts returns the multiplicity of each distinct tuple of the named
// columns.
func groupCounts(t *relation.Table, cols []string) (map[string]int64, error) {
	idx, err := t.Schema.Indexes(cols...)
	if err != nil {
		return nil, err
	}
	counts := make(map[string]int64)
	var buf []byte
	for _, r := range t.Rows {
		buf = relation.EncodeKey(buf[:0], r, idx)
		counts[string(buf)]++
	}
	return counts, nil
}

// Entropy returns the joint Shannon entropy H(X) of the named attribute set
// X in t.
func Entropy(t *relation.Table, cols ...string) (float64, error) {
	if len(cols) == 0 || t.NumRows() == 0 {
		return 0, nil
	}
	counts, err := groupCounts(t, cols)
	if err != nil {
		return 0, fmt.Errorf("entropy of %s%v: %w", t.Name, cols, err)
	}
	vals := make([]int64, 0, len(counts))
	for _, c := range counts {
		vals = append(vals, c)
	}
	return EntropyFromCounts(vals), nil
}

// ConditionalEntropy returns H(X | Y) = H(X ∪ Y) − H(Y) for attribute sets
// X and Y of t.
func ConditionalEntropy(t *relation.Table, x, y []string) (float64, error) {
	hy, err := Entropy(t, y...)
	if err != nil {
		return 0, err
	}
	hxy, err := Entropy(t, append(append([]string{}, x...), y...)...)
	if err != nil {
		return 0, err
	}
	return hxy - hy, nil
}

// MutualInformation returns I(X; Y) = H(X) + H(Y) − H(X, Y).
func MutualInformation(t *relation.Table, x, y []string) (float64, error) {
	hx, err := Entropy(t, x...)
	if err != nil {
		return 0, err
	}
	hy, err := Entropy(t, y...)
	if err != nil {
		return 0, err
	}
	hxy, err := Entropy(t, append(append([]string{}, x...), y...)...)
	if err != nil {
		return 0, err
	}
	return hx + hy - hxy, nil
}

// CumulativeEntropy returns the empirical cumulative entropy
// h(X) = −Σ_{i<n} (x_{i+1} − x_i) · F(x_i) · log2 F(x_i)
// of the sample xs, where F is the empirical CDF. NULLs must be filtered by
// the caller. The result is non-negative and 0 for constant or empty input.
func CumulativeEntropy(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	h := 0.0
	for i := 0; i < n-1; i++ {
		dx := sorted[i+1] - sorted[i]
		if dx == 0 {
			continue
		}
		f := float64(i+1) / float64(n)
		if f >= 1 {
			continue // log2(1) = 0
		}
		h -= dx * f * log2(f)
	}
	return h
}

// numericColumn extracts the non-NULL numeric values of column name for the
// given row indices (nil = all rows).
func numericColumn(t *relation.Table, name string, rows []int) ([]float64, error) {
	ci := t.Schema.Index(name)
	if ci < 0 {
		return nil, fmt.Errorf("infotheory: table %s has no column %q", t.Name, name)
	}
	var out []float64
	take := func(r []relation.Value) {
		if !r[ci].IsNull() {
			out = append(out, r[ci].Num())
		}
	}
	if rows == nil {
		for _, r := range t.Rows {
			take(r)
		}
	} else {
		for _, i := range rows {
			take(t.Rows[i])
		}
	}
	return out, nil
}

// ConditionalCumulativeEntropy returns h(X | Y) = Σ_y p(y) · h(X | Y = y)
// where X is a numeric attribute and Y an attribute set treated as discrete
// conditioning groups.
func ConditionalCumulativeEntropy(t *relation.Table, x string, y []string) (float64, error) {
	if t.NumRows() == 0 {
		return 0, nil
	}
	groups, err := t.GroupIndices(y...)
	if err != nil {
		return 0, fmt.Errorf("conditional cumulative entropy %s|%v: %w", x, y, err)
	}
	total := float64(t.NumRows())
	h := 0.0
	for _, rows := range groups {
		vals, err := numericColumn(t, x, rows)
		if err != nil {
			return 0, err
		}
		h += float64(len(rows)) / total * CumulativeEntropy(vals)
	}
	return h, nil
}
