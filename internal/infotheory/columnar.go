package infotheory

import (
	"fmt"
	"sort"

	"github.com/dance-db/dance/internal/relation"
)

// Columnar fast paths for the information-theoretic measures: groupings are
// fused integer-code counts (relation.Columnar.GroupBy) instead of injective
// byte-string map keys, and group terms are summed in first-appearance order
// — the same order the row-store implementations use — so every function in
// this file is bit-identical to its row counterpart.

// EntropyColumnar returns the joint Shannon entropy H(X) of the named
// attribute set X in c. Bit-identical to Entropy on the decoded table.
func EntropyColumnar(c *relation.Columnar, cols ...string) (float64, error) {
	if len(cols) == 0 || c.NumRows() == 0 {
		return 0, nil
	}
	counts, err := c.GroupCounts(cols...)
	if err != nil {
		return 0, fmt.Errorf("entropy of %s%v: %w", c.Name, cols, err)
	}
	return EntropyFromCounts(counts), nil
}

// ConditionalEntropyColumnar returns H(X | Y) = H(X ∪ Y) − H(Y).
func ConditionalEntropyColumnar(c *relation.Columnar, x, y []string) (float64, error) {
	hy, err := EntropyColumnar(c, y...)
	if err != nil {
		return 0, err
	}
	hxy, err := EntropyColumnar(c, append(append([]string{}, x...), y...)...)
	if err != nil {
		return 0, err
	}
	return hxy - hy, nil
}

// CorrelationColumnar computes CORR(X, Y) of Def 2.5 on the columnar
// relation c — the evaluator's hot path. See Correlation for the measure's
// definition; results are bit-identical to CorrelationOnRows on the decoded
// table.
func CorrelationColumnar(c *relation.Columnar, x, y []string) (float64, error) {
	if len(x) == 0 || len(y) == 0 || c.NumRows() == 0 {
		return 0, nil
	}
	xc, xn, err := splitCorrAttrs(c.Schema(), c.Name, x, y)
	if err != nil {
		return 0, err
	}

	corr := 0.0
	if len(xc) > 0 {
		hx, err := EntropyColumnar(c, xc...)
		if err != nil {
			return 0, err
		}
		hxy, err := ConditionalEntropyColumnar(c, xc, y)
		if err != nil {
			return 0, err
		}
		corr += hx - hxy
	}
	if len(xn) > 0 {
		yIdx, err := c.Schema().Indexes(y...)
		if err != nil {
			return 0, err
		}
		g, err := c.GroupBy(yIdx)
		if err != nil {
			return 0, err
		}
		starts, rows := g.RowLists()
		total := float64(c.NumRows())
		logTab := log2Table(make([]float64, 0, c.NumRows()+1), c.NumRows())
		var vals, gbuf []float64
		for _, a := range xn {
			ai := c.Schema().Index(a)
			vals = c.AppendNumeric(vals[:0], ai, nil)
			lo, hi := rangeOf(vals)
			if hi <= lo {
				continue // constant column: zero information either way
			}
			scale := 1 / (hi - lo)
			// Normalization is applied element-wise exactly as the row
			// path's normalize closure does, so the floats agree bitwise;
			// the buffers are owned here, so they are sorted in place
			// (normalization is monotone and equal floats interchangeable,
			// so sort-after-normalize yields the same sequence the row
			// path's copy-and-sort produces).
			for i := range vals {
				vals[i] = (vals[i] - lo) * scale
			}
			sort.Float64s(vals)
			h := cumulativeEntropySorted(vals, logTab)
			hc := 0.0
			for gid := 0; gid < g.N(); gid++ {
				grows := rows[starts[gid]:starts[gid+1]]
				gbuf = c.AppendNumeric(gbuf[:0], ai, grows)
				for i := range gbuf {
					gbuf[i] = (gbuf[i] - lo) * scale
				}
				sort.Float64s(gbuf)
				hc += float64(len(grows)) / total * cumulativeEntropySorted(gbuf, logTab)
			}
			corr += h - hc
		}
	}
	return clampCorr(corr), nil
}
