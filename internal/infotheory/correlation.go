package infotheory

import (
	"fmt"
	"sort"

	"github.com/dance-db/dance/internal/relation"
)

// Correlation computes CORR(X, Y) of Def 2.5 on table t.
//
// The paper defines CORR for a categorical X as H(X) − H(X|Y) and for a
// numerical X as h(X) − h(X|Y) (cumulative entropy). For attribute *sets*
// mixing both kinds we follow the same spirit (cf. Nguyen et al., the
// paper's reference [20]): the categorical attributes of X are treated
// jointly with Shannon entropy and each numerical attribute contributes its
// cumulative-entropy term; Y always conditions jointly:
//
//	CORR(X, Y) = [H(Xc) − H(Xc|Y)] + Σ_{A ∈ Xn} [h(A) − h(A|Y)]
//
// where Xc are the categorical and Xn the numerical attributes of X.
// Numerical attributes are normalized to [0, 1] by their observed range
// before the cumulative-entropy terms are computed — raw cumulative entropy
// carries the unit of the attribute, which would let a dollar-valued column
// dominate bit-valued Shannon terms (Nguyen et al. normalize the same way).
// The result is ≥ 0 up to floating-point error; larger means more
// correlated. Columns of X missing in t are an error.
func Correlation(t *relation.Table, x, y []string) (float64, error) {
	if len(x) == 0 || len(y) == 0 || t.NumRows() == 0 {
		return 0, nil
	}
	var xc []string
	var xn []string
	for _, name := range x {
		ci := t.Schema.Index(name)
		if ci < 0 {
			return 0, fmt.Errorf("infotheory: correlation: table %s has no column %q", t.Name, name)
		}
		if t.Schema.Column(ci).IsCategorical() {
			xc = append(xc, name)
		} else {
			xn = append(xn, name)
		}
	}
	for _, name := range y {
		if !t.Schema.Has(name) {
			return 0, fmt.Errorf("infotheory: correlation: table %s has no column %q", t.Name, name)
		}
	}

	corr := 0.0
	if len(xc) > 0 {
		hx, err := Entropy(t, xc...)
		if err != nil {
			return 0, err
		}
		hxy, err := ConditionalEntropy(t, xc, y)
		if err != nil {
			return 0, err
		}
		corr += hx - hxy
	}
	for _, a := range xn {
		vals, err := numericColumn(t, a, nil)
		if err != nil {
			return 0, err
		}
		lo, hi := rangeOf(vals)
		if hi <= lo {
			continue // constant column: zero information either way
		}
		scale := 1 / (hi - lo)
		normalize := func(xs []float64) []float64 {
			out := make([]float64, len(xs))
			for i, x := range xs {
				out[i] = (x - lo) * scale
			}
			return out
		}
		h := CumulativeEntropy(normalize(vals))
		groups, err := t.GroupIndices(y...)
		if err != nil {
			return 0, err
		}
		// Sum group terms in sorted key order: float addition is not
		// associative, and map-order summation made CORR differ in the
		// last ulps between otherwise identical calls (the same guard
		// EntropyFromCounts applies on the categorical path).
		keys := make([]string, 0, len(groups))
		for k := range groups {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		total := float64(t.NumRows())
		hc := 0.0
		for _, k := range keys {
			rows := groups[k]
			gv, err := numericColumn(t, a, rows)
			if err != nil {
				return 0, err
			}
			hc += float64(len(rows)) / total * CumulativeEntropy(normalize(gv))
		}
		corr += h - hc
	}
	if corr < 0 && corr > -1e-9 {
		corr = 0 // clamp floating point noise
	}
	return corr, nil
}

func rangeOf(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}
