package infotheory

import (
	"fmt"

	"github.com/dance-db/dance/internal/relation"
)

// Correlation computes CORR(X, Y) of Def 2.5 on table t.
//
// The paper defines CORR for a categorical X as H(X) − H(X|Y) and for a
// numerical X as h(X) − h(X|Y) (cumulative entropy). For attribute *sets*
// mixing both kinds we follow the same spirit (cf. Nguyen et al., the
// paper's reference [20]): the categorical attributes of X are treated
// jointly with Shannon entropy and each numerical attribute contributes its
// cumulative-entropy term; Y always conditions jointly:
//
//	CORR(X, Y) = [H(Xc) − H(Xc|Y)] + Σ_{A ∈ Xn} [h(A) − h(A|Y)]
//
// where Xc are the categorical and Xn the numerical attributes of X.
// Numerical attributes are normalized to [0, 1] by their observed range
// before the cumulative-entropy terms are computed — raw cumulative entropy
// carries the unit of the attribute, which would let a dollar-valued column
// dominate bit-valued Shannon terms (Nguyen et al. normalize the same way).
// The result is ≥ 0 up to floating-point error; larger means more
// correlated. Columns of X missing in t are an error.
//
// The computation runs on the columnar fast path: the grouping columns
// (Xc ∪ Y) are dictionary-encoded once, the numerical attributes extracted
// as raw floats, and all groupings count fused integer codes instead of
// byte-string map keys. The result is bit-identical to CorrelationOnRows.
func Correlation(t *relation.Table, x, y []string) (float64, error) {
	if len(x) == 0 || len(y) == 0 || t.NumRows() == 0 {
		return 0, nil
	}
	xc, xn, err := splitCorrAttrs(t.Schema, t.Name, x, y)
	if err != nil {
		return 0, err
	}
	coded := append(append([]string{}, xc...), y...)
	c, err := relation.ToColumnarSubset(t, coded, xn)
	if err != nil {
		return 0, err
	}
	return CorrelationColumnar(c, x, y)
}

// CorrelationOnRows is the row-store reference implementation of
// Correlation. It groups rows through injective byte-string keys and exists
// so equivalence tests can pin the columnar fast path bit-for-bit against
// the original formulation; use Correlation everywhere else.
func CorrelationOnRows(t *relation.Table, x, y []string) (float64, error) {
	if len(x) == 0 || len(y) == 0 || t.NumRows() == 0 {
		return 0, nil
	}
	xc, xn, err := splitCorrAttrs(t.Schema, t.Name, x, y)
	if err != nil {
		return 0, err
	}

	corr := 0.0
	if len(xc) > 0 {
		hx, err := Entropy(t, xc...)
		if err != nil {
			return 0, err
		}
		hxy, err := ConditionalEntropy(t, xc, y)
		if err != nil {
			return 0, err
		}
		corr += hx - hxy
	}
	for _, a := range xn {
		vals, err := numericColumn(t, a, nil)
		if err != nil {
			return 0, err
		}
		lo, hi := rangeOf(vals)
		if hi <= lo {
			continue // constant column: zero information either way
		}
		scale := 1 / (hi - lo)
		normalize := func(xs []float64) []float64 {
			out := make([]float64, len(xs))
			for i, x := range xs {
				out[i] = (x - lo) * scale
			}
			return out
		}
		h := CumulativeEntropy(normalize(vals))
		// Sum group terms in first-appearance order: float addition is not
		// associative, and map-order summation made CORR differ in the
		// last ulps between otherwise identical calls. First-appearance
		// order is deterministic for a given table and is the order the
		// columnar path uses, so the two stay bit-identical.
		groups, err := t.GroupRowLists(y...)
		if err != nil {
			return 0, err
		}
		total := float64(t.NumRows())
		hc := 0.0
		for _, rows := range groups {
			gv, err := numericColumn(t, a, rows)
			if err != nil {
				return 0, err
			}
			hc += float64(len(rows)) / total * CumulativeEntropy(normalize(gv))
		}
		corr += h - hc
	}
	return clampCorr(corr), nil
}

// splitCorrAttrs partitions X into categorical and numerical attributes and
// validates that every X and Y column exists in the schema.
func splitCorrAttrs(schema *relation.Schema, name string, x, y []string) (xc, xn []string, err error) {
	for _, a := range x {
		ci := schema.Index(a)
		if ci < 0 {
			return nil, nil, fmt.Errorf("infotheory: correlation: table %s has no column %q", name, a)
		}
		if schema.Column(ci).IsCategorical() {
			xc = append(xc, a)
		} else {
			xn = append(xn, a)
		}
	}
	for _, a := range y {
		if !schema.Has(a) {
			return nil, nil, fmt.Errorf("infotheory: correlation: table %s has no column %q", name, a)
		}
	}
	return xc, xn, nil
}

func clampCorr(corr float64) float64 {
	if corr < 0 && corr > -1e-9 {
		return 0 // clamp floating point noise
	}
	return corr
}

func rangeOf(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}
