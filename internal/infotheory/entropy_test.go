package infotheory

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/dance-db/dance/internal/relation"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestEntropyFromCounts(t *testing.T) {
	cases := []struct {
		counts []int64
		want   float64
	}{
		{nil, 0},
		{[]int64{5}, 0},
		{[]int64{1, 1}, 1},
		{[]int64{1, 1, 1, 1}, 2},
		{[]int64{3, 1}, -(0.75*math.Log2(0.75) + 0.25*math.Log2(0.25))},
		{[]int64{2, 0, 2}, 1}, // zero counts skipped
	}
	for _, c := range cases {
		if got := EntropyFromCounts(c.counts); !almost(got, c.want, 1e-12) {
			t.Errorf("EntropyFromCounts(%v) = %v, want %v", c.counts, got, c.want)
		}
	}
}

func TestEntropyFromCountsNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative count should panic")
		}
	}()
	EntropyFromCounts([]int64{1, -1})
}

func uniformPairs() *relation.Table {
	// X uniform over {a,b}, Y = X (perfectly correlated), Z independent coin.
	tab := relation.NewTable("u", relation.NewSchema(
		relation.Cat("X", relation.KindString),
		relation.Cat("Y", relation.KindString),
		relation.Cat("Z", relation.KindString),
	))
	for i := 0; i < 8; i++ {
		x := "a"
		if i%2 == 1 {
			x = "b"
		}
		z := "p"
		if (i/2)%2 == 1 {
			z = "q"
		}
		tab.AppendValues(relation.StringValue(x), relation.StringValue(x), relation.StringValue(z))
	}
	return tab
}

func TestEntropyOnTable(t *testing.T) {
	tab := uniformPairs()
	hx, err := Entropy(tab, "X")
	if err != nil {
		t.Fatal(err)
	}
	if !almost(hx, 1, 1e-12) {
		t.Fatalf("H(X) = %v, want 1", hx)
	}
	hxy, err := Entropy(tab, "X", "Y")
	if err != nil {
		t.Fatal(err)
	}
	if !almost(hxy, 1, 1e-12) { // Y == X so joint has 2 outcomes
		t.Fatalf("H(X,Y) = %v, want 1", hxy)
	}
	hxz, err := Entropy(tab, "X", "Z")
	if err != nil {
		t.Fatal(err)
	}
	if !almost(hxz, 2, 1e-12) {
		t.Fatalf("H(X,Z) = %v, want 2", hxz)
	}
	if _, err := Entropy(tab, "nope"); err == nil {
		t.Fatal("unknown column should error")
	}
}

func TestConditionalEntropyAndMI(t *testing.T) {
	tab := uniformPairs()
	// H(X|Y) = 0 (Y determines X); I(X;Y) = 1.
	hxy, err := ConditionalEntropy(tab, []string{"X"}, []string{"Y"})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(hxy, 0, 1e-12) {
		t.Fatalf("H(X|Y) = %v, want 0", hxy)
	}
	mi, err := MutualInformation(tab, []string{"X"}, []string{"Y"})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(mi, 1, 1e-12) {
		t.Fatalf("I(X;Y) = %v, want 1", mi)
	}
	// X and Z independent: H(X|Z) = H(X) = 1, I = 0.
	hxz, _ := ConditionalEntropy(tab, []string{"X"}, []string{"Z"})
	if !almost(hxz, 1, 1e-12) {
		t.Fatalf("H(X|Z) = %v, want 1", hxz)
	}
	miz, _ := MutualInformation(tab, []string{"X"}, []string{"Z"})
	if !almost(miz, 0, 1e-12) {
		t.Fatalf("I(X;Z) = %v, want 0", miz)
	}
}

func TestCumulativeEntropy(t *testing.T) {
	if got := CumulativeEntropy(nil); got != 0 {
		t.Fatalf("h(empty) = %v", got)
	}
	if got := CumulativeEntropy([]float64{3}); got != 0 {
		t.Fatalf("h(single) = %v", got)
	}
	if got := CumulativeEntropy([]float64{2, 2, 2}); got != 0 {
		t.Fatalf("h(constant) = %v", got)
	}
	// Two points {0, 1}: h = -(1-0) * (1/2) * log2(1/2) = 0.5.
	if got := CumulativeEntropy([]float64{0, 1}); !almost(got, 0.5, 1e-12) {
		t.Fatalf("h({0,1}) = %v, want 0.5", got)
	}
	// Order must not matter.
	a := CumulativeEntropy([]float64{5, 1, 3, 2, 4})
	b := CumulativeEntropy([]float64{1, 2, 3, 4, 5})
	if !almost(a, b, 1e-12) {
		t.Fatalf("cumulative entropy order-dependent: %v vs %v", a, b)
	}
	// Scaling property: h(c·X) = c·h(X) for c > 0.
	xs := []float64{0.5, 1.7, 2.2, 9.1}
	if got, want := CumulativeEntropy(scale(xs, 3)), 3*CumulativeEntropy(xs); !almost(got, want, 1e-9) {
		t.Fatalf("h(3X) = %v, want %v", got, want)
	}
}

func scale(xs []float64, c float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = c * x
	}
	return out
}

func TestConditionalCumulativeEntropy(t *testing.T) {
	// X numeric; Y splits rows into two groups with constant X inside each
	// group → h(X|Y) = 0 while h(X) > 0.
	tab := relation.NewTable("n", relation.NewSchema(
		relation.Num("X", relation.KindFloat),
		relation.Cat("Y", relation.KindString),
	))
	for i := 0; i < 4; i++ {
		tab.AppendValues(relation.FloatValue(1), relation.StringValue("g1"))
		tab.AppendValues(relation.FloatValue(9), relation.StringValue("g2"))
	}
	h, err := ConditionalCumulativeEntropy(tab, "X", []string{"Y"})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(h, 0, 1e-12) {
		t.Fatalf("h(X|Y) = %v, want 0", h)
	}
	vals, _ := tab.Column("X")
	xs := make([]float64, len(vals))
	for i, v := range vals {
		xs[i] = v.Num()
	}
	if CumulativeEntropy(xs) <= 0 {
		t.Fatal("h(X) should be positive")
	}
}

func TestCorrelationCategorical(t *testing.T) {
	tab := uniformPairs()
	// CORR(X, Y) = H(X) - H(X|Y) = 1 (perfect).
	c, err := Correlation(tab, []string{"X"}, []string{"Y"})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(c, 1, 1e-12) {
		t.Fatalf("CORR(X,Y) = %v, want 1", c)
	}
	// CORR(X, Z) = 0 (independent).
	cz, err := Correlation(tab, []string{"X"}, []string{"Z"})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(cz, 0, 1e-12) {
		t.Fatalf("CORR(X,Z) = %v, want 0", cz)
	}
}

func TestCorrelationNumeric(t *testing.T) {
	// X numeric determined by Y → CORR = h(X) - 0 = h(X) > 0.
	tab := relation.NewTable("n", relation.NewSchema(
		relation.Num("X", relation.KindFloat),
		relation.Cat("Y", relation.KindString),
	))
	for i := 0; i < 6; i++ {
		y := []string{"a", "b", "c"}[i%3]
		x := float64(i%3) * 10
		tab.AppendValues(relation.FloatValue(x), relation.StringValue(y))
	}
	c, err := Correlation(tab, []string{"X"}, []string{"Y"})
	if err != nil {
		t.Fatal(err)
	}
	if c <= 0 {
		t.Fatalf("numeric CORR = %v, want > 0", c)
	}
}

func TestCorrelationMixed(t *testing.T) {
	tab := relation.NewTable("m", relation.NewSchema(
		relation.Num("X", relation.KindFloat),
		relation.Cat("C", relation.KindString),
		relation.Cat("Y", relation.KindString),
	))
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 40; i++ {
		y := []string{"a", "b"}[i%2]
		tab.AppendValues(
			relation.FloatValue(float64(i%2)*5+rng.Float64()*0.1),
			relation.StringValue(y),
			relation.StringValue(y),
		)
	}
	c, err := Correlation(tab, []string{"X", "C"}, []string{"Y"})
	if err != nil {
		t.Fatal(err)
	}
	// Categorical part contributes exactly H(C) = 1 bit; numeric part > 0.
	if c <= 1 {
		t.Fatalf("mixed CORR = %v, want > 1", c)
	}
	if _, err := Correlation(tab, []string{"missing"}, []string{"Y"}); err == nil {
		t.Fatal("missing X column should error")
	}
	if _, err := Correlation(tab, []string{"X"}, []string{"missing"}); err == nil {
		t.Fatal("missing Y column should error")
	}
}

func TestCorrelationDegenerate(t *testing.T) {
	tab := uniformPairs()
	if c, _ := Correlation(tab, nil, []string{"Y"}); c != 0 {
		t.Fatal("empty X should give 0")
	}
	if c, _ := Correlation(tab, []string{"X"}, nil); c != 0 {
		t.Fatal("empty Y should give 0")
	}
	empty := relation.NewTable("e", tab.Schema)
	if c, _ := Correlation(empty, []string{"X"}, []string{"Y"}); c != 0 {
		t.Fatal("empty table should give 0")
	}
}

// Property: 0 ≤ H(X|Y) ≤ H(X) and I(X;Y) ≥ 0 for random categorical tables.
func TestQuickEntropyInequalities(t *testing.T) {
	f := func(pairs []uint8) bool {
		if len(pairs) == 0 {
			return true
		}
		tab := relation.NewTable("q", relation.NewSchema(
			relation.Cat("X", relation.KindInt),
			relation.Cat("Y", relation.KindInt),
		))
		for _, p := range pairs {
			tab.AppendValues(relation.IntValue(int64(p%5)), relation.IntValue(int64((p/5)%5)))
		}
		hx, _ := Entropy(tab, "X")
		hxy, _ := ConditionalEntropy(tab, []string{"X"}, []string{"Y"})
		mi, _ := MutualInformation(tab, []string{"X"}, []string{"Y"})
		return hxy >= -1e-9 && hxy <= hx+1e-9 && mi >= -1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: cumulative entropy is non-negative and translation invariant.
func TestQuickCumulativeEntropyInvariance(t *testing.T) {
	f := func(raw []int16, shift int8) bool {
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r) / 16
		}
		h := CumulativeEntropy(xs)
		if h < 0 {
			return false
		}
		shifted := make([]float64, len(xs))
		for i, x := range xs {
			shifted[i] = x + float64(shift)
		}
		return almost(h, CumulativeEntropy(shifted), 1e-6*(1+math.Abs(h)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
