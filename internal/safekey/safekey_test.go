package safekey

import (
	"fmt"
	"testing"
)

func TestJoinAliasPairs(t *testing.T) {
	// Each pair is two different part lists that collide under a naive
	// printable-separator join; Join must keep them apart.
	pairs := [][2][]string{
		{{"a|b", "c"}, {"a", "b|c"}}, // the PR 4 JICache shape
		{{"a", "b"}, {"a|b"}},        // separator absorbed into a part
		{{"1:a"}, {"a"}},             // part mimicking the encoding
		{{"", "a"}, {"a", ""}},       // empty parts on either side
		{{"a", "", "b"}, {"a", "b"}}, // interior empty part
		{{"x\x00y"}, {"x", "y"}},     // embedded NUL
		{{"2:ab"}, {"ab"}},           // full prefix spoof
		{{"a", "11:bbbbbbbbbbb"}, {"a:11", "bbbbbbbbbbb"}},
	}
	for _, p := range pairs {
		if Join(p[0]...) == Join(p[1]...) {
			t.Errorf("Join(%q) == Join(%q) == %q; want distinct keys",
				p[0], p[1], Join(p[0]...))
		}
	}
}

// TestJoinInjectiveExhaustive checks injectivity over every part list of
// length ≤ 3 drawn from an alphabet chosen to stress the encoding:
// empties, digits, the ':' delimiter, and strings that look like
// length prefixes.
func TestJoinInjectiveExhaustive(t *testing.T) {
	alphabet := []string{"", ":", "1", "a", "1:", "1:a", "2:aa", "a:"}
	seen := map[string]string{}
	var lists [][]string
	lists = append(lists, []string{})
	for _, a := range alphabet {
		lists = append(lists, []string{a})
		for _, b := range alphabet {
			lists = append(lists, []string{a, b})
			for _, c := range alphabet {
				lists = append(lists, []string{a, b, c})
			}
		}
	}
	for _, parts := range lists {
		key := Join(parts...)
		repr := fmt.Sprintf("%q", parts)
		if prev, ok := seen[key]; ok && prev != repr {
			t.Fatalf("collision: %q and %q both render to %q", prev, repr, key)
		}
		seen[key] = repr
	}
}

func TestJoinPrefixCompositional(t *testing.T) {
	got := Join("a@1", "b@2") + Join("x", "y")
	want := Join("a@1", "b@2", "x", "y")
	if got != want {
		t.Fatalf("Join(a,b)+Join(x,y) = %q; Join(a,b,x,y) = %q", got, want)
	}
}

func TestJoinEmpty(t *testing.T) {
	if got := Join(); got != "" {
		t.Fatalf("Join() = %q; want empty", got)
	}
	if Join("") == Join() {
		t.Fatal("Join(\"\") must differ from Join()")
	}
}
