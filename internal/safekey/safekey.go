// Package safekey builds injective composite cache keys from
// marketplace-controlled strings.
//
// Dataset and attribute names are seller- and shopper-supplied free
// text, so any key scheme that separates parts with printable text can
// be aliased by a hostile (or merely unlucky) name: "a|b"+"|"+"c" and
// "a"+"|"+"b|c" render identically, and PR 4's JICache bug was exactly
// that — two different (instance pair, join attrs) composites sharing
// one cached join-informativeness estimate. The cachekey analyzer
// (internal/analysis) flags printable-separator joins and points here.
package safekey

import (
	"strconv"
	"strings"
)

// Join renders parts as a single key by length-prefixing each one —
// len(part) in decimal, ':', the part's bytes — so the encoding is
// injective for any part contents whatsoever, including parts that
// contain digits, colons, NUL bytes or the rendered form of other
// parts: Join(a...) == Join(b...) implies the part lists are equal.
//
// The encoding is also prefix-compositional: Join(a, b) + Join(c) ==
// Join(a, b, c), so callers may hoist a shared prefix out of a loop and
// append per-iteration suffixes without losing injectivity.
func Join(parts ...string) string {
	var b strings.Builder
	n := 0
	for _, p := range parts {
		n += len(p) + 4
	}
	b.Grow(n)
	for _, p := range parts {
		b.WriteString(strconv.Itoa(len(p)))
		b.WriteByte(':')
		b.WriteString(p)
	}
	return b.String()
}
