package relation

import (
	"fmt"
	"sort"
)

// Partition is the partition π_X of a table over an attribute set X
// (Def 2.1): a list of equivalence classes, each a sorted slice of row
// indices. Classes are ordered by their smallest row index so partitions are
// deterministic.
type Partition struct {
	Classes [][]int
	N       int // number of rows of the underlying table
}

// PartitionBy computes π_X for the named attribute set.
func (t *Table) PartitionBy(names ...string) (*Partition, error) {
	groups, err := t.GroupIndices(names...)
	if err != nil {
		return nil, fmt.Errorf("partition %s by %v: %w", t.Name, names, err)
	}
	return partitionFromGroups(groups, len(t.Rows)), nil
}

func partitionFromGroups(groups map[string][]int, n int) *Partition {
	classes := make([][]int, 0, len(groups))
	for _, g := range groups {
		classes = append(classes, g)
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i][0] < classes[j][0] })
	return &Partition{Classes: classes, N: n}
}

// NumClasses returns the number of equivalence classes.
func (p *Partition) NumClasses() int { return len(p.Classes) }

// Stripped returns the partition with all singleton classes removed. TANE's
// g3 error and refinement tests only need non-singleton classes.
func (p *Partition) Stripped() *Partition {
	out := &Partition{N: p.N}
	for _, c := range p.Classes {
		if len(c) > 1 {
			out.Classes = append(out.Classes, c)
		}
	}
	return out
}

// Refine intersects p with the grouping of rows by the columns at idx in
// table t, producing π_{X∪Y} from π_X. It is the workhorse of levelwise FD
// discovery: only rows inside existing classes need re-grouping.
func (p *Partition) Refine(t *Table, idx []int) *Partition {
	out := &Partition{N: p.N}
	var buf []byte
	sub := make(map[string][]int)
	for _, class := range p.Classes {
		for k := range sub {
			delete(sub, k)
		}
		for _, ri := range class {
			buf = EncodeKey(buf[:0], t.Rows[ri], idx)
			sub[string(buf)] = append(sub[string(buf)], ri)
		}
		for _, g := range sub {
			out.Classes = append(out.Classes, g)
		}
	}
	sort.Slice(out.Classes, func(i, j int) bool { return out.Classes[i][0] < out.Classes[j][0] })
	return out
}

// Error returns the g3 error of the FD "X -> (X ∪ Y)" style refinement:
// the minimum fraction of rows that must be removed from each class of p so
// that the refined partition q agrees with p. p is π_X, q is π_{X∪Y}.
// This equals 1 - Q(D, X→Y) of Def 2.2.
func (p *Partition) Error(q *Partition) float64 {
	if p.N == 0 {
		return 0
	}
	return 1 - float64(p.CorrectCount(q))/float64(p.N)
}

// CorrectCount returns |C(D, X→Y)| of Def 2.2: for each equivalence class of
// p (π_X), the size of the largest sub-class in q (π_{X∪Y}) contained in it,
// summed over classes. q must refine p.
func (p *Partition) CorrectCount(q *Partition) int {
	// Map each row to its q-class size, then for each p-class take the max
	// sub-class size. Sub-classes of a p-class are exactly the q-classes
	// whose rows fall inside it (q refines p).
	classSize := make([]int, p.N)
	for _, c := range q.Classes {
		for _, ri := range c {
			classSize[ri] = len(c)
		}
	}
	// Identify each row's q-class by a representative: smallest row index.
	rep := make([]int, p.N)
	for _, c := range q.Classes {
		m := c[0]
		for _, ri := range c {
			if ri < m {
				m = ri
			}
		}
		for _, ri := range c {
			rep[ri] = m
		}
	}
	total := 0
	seen := make(map[int]bool)
	for _, c := range p.Classes {
		for k := range seen {
			delete(seen, k)
		}
		best := 0
		for _, ri := range c {
			r := rep[ri]
			if seen[r] {
				continue
			}
			seen[r] = true
			if classSize[ri] > best {
				best = classSize[ri]
			}
		}
		total += best
	}
	return total
}

// ClassOfSizes returns the multiset of class sizes, sorted descending.
// Used by entropy computations and tests.
func (p *Partition) ClassSizes() []int {
	out := make([]int, len(p.Classes))
	for i, c := range p.Classes {
		out[i] = len(c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(out)))
	return out
}
