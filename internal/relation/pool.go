package relation

import "sync"

// Scratch pools for the columnar inner loops. Steady-state MCMC evaluation
// calls EquiJoinColumnar/GroupBy thousands of times per search with
// near-identical sizes; recycling the probe maps, remap tables, fuse tables
// and row-pairing buffers removes almost all per-call garbage.
//
// Pooling rules (see DESIGN.md "Parallel search & the million-row path"):
// only *scratch* — state dead before the function returns — may come from a
// pool. Anything that escapes into a returned Columnar, Grouping or JoinIndex
// (gathered codes, counts, first rows) is freshly allocated, because those
// values are immutable, shared across workers, and retained indefinitely by
// the prefix cache. A pooled buffer is always fully overwritten (or
// explicitly reset) before its first read, so reuse can never leak values
// between calls.

// slicePool recycles []T scratch buffers. get returns a length-n slice with
// arbitrary contents; put recycles a buffer that no caller aliases anymore.
type slicePool[T any] struct{ p sync.Pool }

func (sp *slicePool[T]) get(n int) []T {
	if v := sp.p.Get(); v != nil {
		s := *(v.(*[]T))
		if cap(s) >= n {
			return s[:n]
		}
	}
	return make([]T, n)
}

func (sp *slicePool[T]) put(s []T) {
	if cap(s) == 0 {
		return
	}
	s = s[:0]
	sp.p.Put(&s)
}

var (
	poolInt32  slicePool[int32]
	poolUint32 slicePool[uint32]
	poolBytes  slicePool[byte]
)
