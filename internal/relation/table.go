package relation

import (
	"fmt"
	"sort"
)

// Table is an in-memory relation: a named schema plus rows.
type Table struct {
	Name   string
	Schema *Schema
	Rows   [][]Value
}

// NewTable returns an empty table with the given name and schema.
func NewTable(name string, schema *Schema) *Table {
	return &Table{Name: name, Schema: schema}
}

// NumRows returns the number of rows.
func (t *Table) NumRows() int { return len(t.Rows) }

// NumCols returns the number of columns.
func (t *Table) NumCols() int { return t.Schema.Len() }

// Append adds a row. The row length must match the schema.
func (t *Table) Append(row []Value) {
	if len(row) != t.Schema.Len() {
		panic(fmt.Sprintf("relation: row width %d != schema width %d in %s", len(row), t.Schema.Len(), t.Name))
	}
	t.Rows = append(t.Rows, row)
}

// AppendValues is a variadic convenience wrapper around Append.
func (t *Table) AppendValues(vals ...Value) { t.Append(vals) }

// Clone returns a deep-enough copy: the row slice and each row are copied,
// Values are immutable so they are shared.
func (t *Table) Clone() *Table {
	c := &Table{Name: t.Name, Schema: t.Schema, Rows: make([][]Value, len(t.Rows))}
	for i, r := range t.Rows {
		c.Rows[i] = append([]Value(nil), r...)
	}
	return c
}

// Concat returns a new table with t's rows followed by delta's rows. The
// schemas must be structurally equal (same columns, kinds and categorical
// flags, in order) — tables that crossed the HTTP wire carry equal but
// distinct Schema values. Rows are shared, not copied (Values are
// immutable); neither input's row slice is mutated, so t may keep serving
// readers while the merged table is built — the copy-on-write merge of the
// offline sample store relies on this.
func (t *Table) Concat(delta *Table) (*Table, error) {
	if !t.Schema.Equal(delta.Schema) {
		return nil, fmt.Errorf("relation: concat %s%s with mismatched schema %s%s",
			t.Name, t.Schema, delta.Name, delta.Schema)
	}
	out := NewTable(t.Name, t.Schema)
	out.Rows = make([][]Value, 0, len(t.Rows)+len(delta.Rows))
	out.Rows = append(append(out.Rows, t.Rows...), delta.Rows...)
	return out, nil
}

// Project returns a new table containing only the named columns, in order.
// Row order is preserved; duplicates are kept (bag semantics, matching the
// projection queries DANCE issues against the marketplace).
func (t *Table) Project(names ...string) (*Table, error) {
	idx, err := t.Schema.Indexes(names...)
	if err != nil {
		return nil, fmt.Errorf("project %s: %w", t.Name, err)
	}
	schema, err := t.Schema.Project(names...)
	if err != nil {
		return nil, err
	}
	out := NewTable(t.Name, schema)
	out.Rows = make([][]Value, len(t.Rows))
	for i, r := range t.Rows {
		nr := make([]Value, len(idx))
		for j, c := range idx {
			nr[j] = r[c]
		}
		out.Rows[i] = nr
	}
	return out, nil
}

// MustProject is Project that panics on unknown columns; used in tests and
// generators where schemas are static.
func (t *Table) MustProject(names ...string) *Table {
	out, err := t.Project(names...)
	if err != nil {
		panic(err)
	}
	return out
}

// Select returns a new table with the rows for which keep returns true.
func (t *Table) Select(keep func(row []Value) bool) *Table {
	out := NewTable(t.Name, t.Schema)
	for _, r := range t.Rows {
		if keep(r) {
			out.Rows = append(out.Rows, r)
		}
	}
	return out
}

// SelectIndices returns a new table containing the rows at the given indices.
func (t *Table) SelectIndices(indices []int) *Table {
	out := NewTable(t.Name, t.Schema)
	out.Rows = make([][]Value, 0, len(indices))
	for _, i := range indices {
		out.Rows = append(out.Rows, t.Rows[i])
	}
	return out
}

// Distinct returns a new table with duplicate rows removed (first occurrence
// kept, order preserved).
func (t *Table) Distinct() *Table {
	seen := make(map[string]struct{}, len(t.Rows))
	out := NewTable(t.Name, t.Schema)
	var buf []byte
	all := make([]int, t.Schema.Len())
	for i := range all {
		all[i] = i
	}
	for _, r := range t.Rows {
		buf = EncodeKey(buf[:0], r, all)
		k := string(buf)
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		out.Rows = append(out.Rows, r)
	}
	return out
}

// Column returns all values of the named column.
func (t *Table) Column(name string) ([]Value, error) {
	i := t.Schema.Index(name)
	if i < 0 {
		return nil, fmt.Errorf("relation: table %s has no column %q", t.Name, name)
	}
	out := make([]Value, len(t.Rows))
	for j, r := range t.Rows {
		out[j] = r[i]
	}
	return out, nil
}

// SortBy sorts rows in place by the named columns ascending (stable).
func (t *Table) SortBy(names ...string) error {
	idx, err := t.Schema.Indexes(names...)
	if err != nil {
		return err
	}
	sort.SliceStable(t.Rows, func(a, b int) bool {
		ra, rb := t.Rows[a], t.Rows[b]
		for _, c := range idx {
			if cmp := ra[c].Compare(rb[c]); cmp != 0 {
				return cmp < 0
			}
		}
		return false
	})
	return nil
}

// EncodeKey appends the injective encoding of row[cols...] to buf.
func EncodeKey(buf []byte, row []Value, cols []int) []byte {
	for _, c := range cols {
		buf = row[c].AppendKey(buf)
	}
	return buf
}

// GroupIndices groups row indices by the tuple of values in the named
// columns. The map key is the injective byte encoding of the tuple.
func (t *Table) GroupIndices(names ...string) (map[string][]int, error) {
	idx, err := t.Schema.Indexes(names...)
	if err != nil {
		return nil, err
	}
	groups := make(map[string][]int)
	var buf []byte
	for i, r := range t.Rows {
		buf = EncodeKey(buf[:0], r, idx)
		groups[string(buf)] = append(groups[string(buf)], i)
	}
	return groups, nil
}

// GroupRowLists groups row indices by the tuple of values in the named
// columns, like GroupIndices, but returns the groups in first-appearance
// order of each distinct tuple. Metric code sums floating-point group terms
// in this order — it is deterministic for a given table, unlike iteration
// over GroupIndices' map.
func (t *Table) GroupRowLists(names ...string) ([][]int, error) {
	idx, err := t.Schema.Indexes(names...)
	if err != nil {
		return nil, err
	}
	ids := make(map[string]int)
	var groups [][]int
	var buf []byte
	for i, r := range t.Rows {
		buf = EncodeKey(buf[:0], r, idx)
		id, ok := ids[string(buf)]
		if !ok {
			id = len(groups)
			ids[string(buf)] = id
			groups = append(groups, nil)
		}
		groups[id] = append(groups[id], i)
	}
	return groups, nil
}

// String renders a short description of the table.
func (t *Table) String() string {
	return fmt.Sprintf("%s%s [%d rows]", t.Name, t.Schema, len(t.Rows))
}
