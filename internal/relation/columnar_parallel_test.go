package relation

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// bigTable builds a table wide enough in key domain to keep join fan-out
// bounded, and tall enough (≥ parallelMinRows) that the chunked parallel
// kernels actually engage.
func bigTable(rng *rand.Rand, name string, nRows, keyDomain int) *Table {
	schema := NewSchema(
		Cat("k", KindInt),
		Cat("s", KindString),
		Num("v", KindFloat),
		Cat("m", KindFloat),
	)
	tab := NewTable(name, schema)
	for i := 0; i < nRows; i++ {
		row := make([]Value, 4)
		if rng.Float64() < 0.05 {
			row[0] = Null()
		} else {
			row[0] = IntValue(int64(rng.Intn(keyDomain)))
		}
		row[1] = StringValue(fmt.Sprintf("s%02d", rng.Intn(40)))
		row[2] = FloatValue(rng.Float64() * 10)
		x := rng.Intn(30)
		if rng.Intn(2) == 0 {
			row[3] = IntValue(int64(x))
		} else {
			row[3] = FloatValue(float64(x))
		}
		tab.Append(row)
	}
	return tab
}

func groupingsEqual(t *testing.T, tag string, want, got *Grouping) {
	t.Helper()
	if len(want.Codes) != len(got.Codes) || want.N() != got.N() {
		t.Fatalf("%s: shape mismatch: want %d codes/%d groups, got %d/%d",
			tag, len(want.Codes), want.N(), len(got.Codes), got.N())
	}
	for i := range want.Codes {
		if want.Codes[i] != got.Codes[i] {
			t.Fatalf("%s: codes[%d] = %d, want %d", tag, i, got.Codes[i], want.Codes[i])
		}
	}
	for g := range want.Counts {
		if want.Counts[g] != got.Counts[g] || want.First[g] != got.First[g] {
			t.Fatalf("%s: group %d (count, first) = (%d, %d), want (%d, %d)",
				tag, g, got.Counts[g], got.First[g], want.Counts[g], want.First[g])
		}
	}
}

func columnarsEqual(t *testing.T, tag string, want, got *Columnar) {
	t.Helper()
	if want.NumRows() != got.NumRows() {
		t.Fatalf("%s: rows = %d, want %d", tag, got.NumRows(), want.NumRows())
	}
	if !want.Schema().Equal(got.Schema()) {
		t.Fatalf("%s: schema = %v, want %v", tag, got.Schema(), want.Schema())
	}
	for j := range want.cols {
		w, g := &want.cols[j], &got.cols[j]
		if (w.Codes == nil) != (g.Codes == nil) {
			t.Fatalf("%s: col %d storage mode differs", tag, j)
		}
		if w.Dict != g.Dict {
			t.Fatalf("%s: col %d does not share the source dictionary", tag, j)
		}
		for i := range w.Codes {
			if w.Codes[i] != g.Codes[i] {
				t.Fatalf("%s: col %d row %d code = %d, want %d", tag, j, i, g.Codes[i], w.Codes[i])
			}
		}
		for i := range w.Nums {
			if w.Nums[i] != g.Nums[i] || w.Null[i] != g.Null[i] {
				t.Fatalf("%s: col %d row %d num/null differ", tag, j, i)
			}
		}
	}
}

// TestGroupByWorkersEquivalence pins the determinism contract of the chunked
// parallel grouping: codes, counts, first rows and id order are bit-identical
// to the serial fuse for every worker count.
func TestGroupByWorkersEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	c := ToColumnar(bigTable(rng, "G", parallelMinRows+1500, 2000))
	for _, cols := range [][]int{{0}, {0, 1}, {0, 1, 3}, {1, 3}} {
		want, err := c.GroupBy(cols)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 3, 8} {
			got, err := c.GroupByWorkers(cols, workers)
			if err != nil {
				t.Fatal(err)
			}
			groupingsEqual(t, fmt.Sprintf("cols %v workers %d", cols, workers), want, got)
		}
	}
}

// TestEquiJoinColumnarOptsEquivalence pins the parallel probe/pairing/gather
// sweeps bit-identical to the serial join, with and without a prebuilt index.
func TestEquiJoinColumnarOptsEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := ToColumnar(bigTable(rng, "A", parallelMinRows+2000, 3000))
	b := ToColumnar(bigTable(rng, "B", 20000, 3000))
	for _, on := range [][]string{{"k"}, {"k", "s"}} {
		want, err := EquiJoinColumnar(a, b, on, nil)
		if err != nil {
			t.Fatal(err)
		}
		idx, err := b.BuildJoinIndexWorkers(4, on...)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 4, 8} {
			got, err := EquiJoinColumnarOpts(a, b, on, idx, JoinOptions{Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			columnarsEqual(t, fmt.Sprintf("on %v workers %d", on, workers), want, got)
			got2, err := EquiJoinColumnarOpts(a, b, on, nil, JoinOptions{Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			columnarsEqual(t, fmt.Sprintf("on %v workers %d (inline index)", on, workers), want, got2)
		}
	}
}

// TestEquiJoinColumnarOptsConcurrent hammers the parallel join from several
// goroutines sharing inputs, index and the scratch pools — the -race target
// for the pooled buffers and the chunked sweeps.
func TestEquiJoinColumnarOptsConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := ToColumnar(bigTable(rng, "A", parallelMinRows+1000, 2500))
	b := ToColumnar(bigTable(rng, "B", 15000, 2500))
	idx, err := b.BuildJoinIndexWorkers(4, "k")
	if err != nil {
		t.Fatal(err)
	}
	want, err := EquiJoinColumnar(a, b, []string{"k"}, idx)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 6)
	outs := make([]*Columnar, 6)
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			outs[g], errs[g] = EquiJoinColumnarOpts(a, b, []string{"k"}, idx, JoinOptions{Workers: 1 + g%4})
		}(g)
	}
	wg.Wait()
	for g := range outs {
		if errs[g] != nil {
			t.Fatal(errs[g])
		}
		columnarsEqual(t, fmt.Sprintf("goroutine %d", g), want, outs[g])
	}
}
