package relation

import (
	"fmt"
	"math"
	"sort"
)

// This file implements the columnar, dictionary-encoded fast path for the
// evaluator. The row-store Table stays the compatibility surface (marketplace
// wire format, examples, Execute); Columnar is the representation the MCMC
// inner loop evaluates on:
//
//   - Each column is dictionary-encoded into dense uint32 codes. Code 0 is
//     always NULL. The dictionary identity of a value mirrors AppendKey's
//     injective encoding, so IntValue(3) and FloatValue(3.0) share a code
//     exactly as they share a grouping key on the row path.
//   - Multi-attribute groupings fuse per-column codes into dense group ids
//     assigned in first-appearance row order — the same deterministic order
//     the row path's group-count collection uses — counted in flat slices
//     or small int-keyed maps instead of injective byte-string map keys.
//   - Equi-joins hash-join on code columns and produce row-index pairings;
//     output columns are gathered uint32 codes that share the input
//     dictionaries, so no value is ever re-encoded downstream.
//
// Columnar values are immutable after construction: instances built once per
// sampled table are shared freely across MCMC candidates and workers.

// numKey is the normalized identity of a numeric Value, mirroring AppendKey's
// int/float normalization so IntValue(3) and FloatValue(3.0) share a key.
type numKey struct {
	isInt bool
	bits  uint64
}

func numKeyOf(v Value) numKey {
	if v.Kind == KindInt {
		return numKey{isInt: true, bits: uint64(v.I)}
	}
	if f := v.F; f == math.Trunc(f) && f >= math.MinInt64 && f <= math.MaxInt64 {
		return numKey{isInt: true, bits: uint64(int64(f))}
	}
	return numKey{bits: math.Float64bits(v.F)}
}

// Dict is a per-column dictionary: distinct values get dense uint32 codes in
// first-appearance order, with code 0 permanently reserved for NULL. A code's
// stored value is the first representative seen — an int column later joined
// against FloatValue(3.0) decodes code lookups to the original IntValue(3),
// which is EqualValue-identical.
type Dict struct {
	vals []Value
	str  map[string]uint32
	num  map[numKey]uint32
	// smallInt short-circuits the num map for integer values in [0, 256):
	// key-like columns (TPC ids, category codes) are dominated by small
	// ints, and the map hash is the hot spot of dictionary building.
	// 0 means unassigned (0 is the NULL code, never a value's code).
	smallInt [256]uint32
}

func newDict() *Dict { return &Dict{vals: []Value{Null()}} }

// Len returns the number of codes, including the reserved NULL code 0.
func (d *Dict) Len() int { return len(d.vals) }

// Value decodes a code.
func (d *Dict) Value(code uint32) Value { return d.vals[code] }

// code interns v, assigning dense codes in first-appearance order.
func (d *Dict) code(v Value) uint32 {
	switch v.Kind {
	case KindNull:
		return 0
	case KindString:
		if c, ok := d.str[v.S]; ok {
			return c
		}
		c := uint32(len(d.vals))
		d.vals = append(d.vals, v)
		if d.str == nil {
			d.str = make(map[string]uint32)
		}
		d.str[v.S] = c
		return c
	default:
		k := numKeyOf(v)
		if k.isInt && k.bits < uint64(len(d.smallInt)) {
			// Normalized first, so FloatValue(3.0) hits IntValue(3)'s slot.
			if c := d.smallInt[k.bits]; c != 0 {
				return c
			}
			c := uint32(len(d.vals))
			d.vals = append(d.vals, v)
			d.smallInt[k.bits] = c
			return c
		}
		if c, ok := d.num[k]; ok {
			return c
		}
		c := uint32(len(d.vals))
		d.vals = append(d.vals, v)
		if d.num == nil {
			d.num = make(map[numKey]uint32)
		}
		d.num[k] = c
		return c
	}
}

// clone deep-copies the dictionary so codes can be appended without racing
// readers of the original: Columnar values are immutable after construction
// and shared across snapshots, so a merge must never mutate a published
// Dict in place.
func (d *Dict) clone() *Dict {
	c := &Dict{vals: append([]Value(nil), d.vals...), smallInt: d.smallInt}
	if d.str != nil {
		c.str = make(map[string]uint32, len(d.str))
		for k, v := range d.str {
			c.str[k] = v
		}
	}
	if d.num != nil {
		c.num = make(map[numKey]uint32, len(d.num))
		for k, v := range d.num {
			c.num[k] = v
		}
	}
	return c
}

// CCol is one columnar column. Exactly one storage mode is populated:
// dictionary-coded (Codes+Dict, the general form, required for grouping and
// joins) or raw numeric (Nums+Null, used by metrics-only numeric columns
// where dictionary identity is never needed).
type CCol struct {
	Codes []uint32
	Dict  *Dict
	Nums  []float64
	Null  []bool
}

// Columnar is the dictionary-encoded columnar form of a Table.
type Columnar struct {
	Name   string
	schema *Schema
	cols   []CCol
	n      int
}

// encodeColumn dictionary-encodes column j of t. The small-int fast path is
// inlined: key-like columns are dominated by small non-negative ints, and
// the per-cell call plus kind switch of Dict.code is measurable on the
// per-evaluation subset path.
func encodeColumn(t *Table, j int) CCol {
	d := newDict()
	codes := make([]uint32, len(t.Rows))
	for i, r := range t.Rows {
		v := r[j]
		if v.Kind == KindInt && v.I >= 0 && v.I < int64(len(d.smallInt)) {
			c := d.smallInt[v.I]
			if c == 0 {
				c = uint32(len(d.vals))
				d.vals = append(d.vals, v)
				d.smallInt[v.I] = c
			}
			codes[i] = c
			continue
		}
		codes[i] = d.code(v)
	}
	return CCol{Codes: codes, Dict: d}
}

// ToColumnar dictionary-encodes every column of t. Build cost is one
// dictionary lookup per cell; done once per sampled instance and amortized
// over every candidate evaluation that touches the instance.
func ToColumnar(t *Table) *Columnar {
	c := &Columnar{Name: t.Name, schema: t.Schema, n: len(t.Rows)}
	c.cols = make([]CCol, t.Schema.Len())
	for j := range c.cols {
		c.cols[j] = encodeColumn(t, j)
	}
	return c
}

// ToColumnarSubset encodes only the named columns of t: coded columns get
// dictionaries (groupable/joinable), numeric columns are stored as raw
// float64 + null mask (metrics-only). A name in both lists is coded. The
// result keeps t's full schema but leaves unlisted columns unpopulated —
// callers (the per-call metric fast paths) must only touch the columns they
// asked for; use ToColumnar for a fully materialized encoding.
func ToColumnarSubset(t *Table, coded, numeric []string) (*Columnar, error) {
	c := &Columnar{Name: t.Name, schema: t.Schema, n: len(t.Rows)}
	c.cols = make([]CCol, t.Schema.Len())
	for _, name := range coded {
		j := t.Schema.Index(name)
		if j < 0 {
			return nil, fmt.Errorf("relation: unknown column %q (have %v)", name, t.Schema.Names())
		}
		if c.cols[j].Codes == nil {
			c.cols[j] = encodeColumn(t, j)
		}
	}
	for _, name := range numeric {
		j := t.Schema.Index(name)
		if j < 0 {
			return nil, fmt.Errorf("relation: unknown column %q (have %v)", name, t.Schema.Names())
		}
		if c.cols[j].Codes != nil || c.cols[j].Nums != nil {
			continue
		}
		nums := make([]float64, len(t.Rows))
		null := make([]bool, len(t.Rows))
		for i, r := range t.Rows {
			v := r[j]
			null[i] = v.IsNull()
			nums[i] = v.Num()
		}
		c.cols[j] = CCol{Nums: nums, Null: null}
	}
	return c, nil
}

// AppendTable returns a new Columnar holding c's rows followed by delta's
// rows, preserving every existing dictionary code: row i < c.NumRows() of
// the result carries exactly the codes of row i of c, and delta values
// already present in a dictionary reuse their code. Because codes are
// assigned in first-appearance order, the result is bit-identical to
// ToColumnar of the concatenated row tables — which is what lets a merged
// sample share cache keys with a fresh one. c itself is never mutated
// (copy-on-write: dictionaries are cloned before extension), so published
// snapshots stay valid. Columns that were left unpopulated by
// ToColumnarSubset stay unpopulated.
func (c *Columnar) AppendTable(delta *Table) (*Columnar, error) {
	if !c.schema.Equal(delta.Schema) {
		return nil, fmt.Errorf("relation: append to %s%s with mismatched schema %s%s",
			c.Name, c.schema, delta.Name, delta.Schema)
	}
	out := &Columnar{Name: c.Name, schema: c.schema, n: c.n + len(delta.Rows)}
	out.cols = make([]CCol, len(c.cols))
	for j := range c.cols {
		src := &c.cols[j]
		switch {
		case src.Codes != nil:
			codes := make([]uint32, c.n, out.n)
			copy(codes, src.Codes)
			d := src.Dict.clone()
			for _, r := range delta.Rows {
				codes = append(codes, d.code(r[j]))
			}
			out.cols[j] = CCol{Codes: codes, Dict: d}
		case src.Nums != nil:
			nums := make([]float64, c.n, out.n)
			null := make([]bool, c.n, out.n)
			copy(nums, src.Nums)
			copy(null, src.Null)
			for _, r := range delta.Rows {
				v := r[j]
				nums = append(nums, v.Num())
				null = append(null, v.IsNull())
			}
			out.cols[j] = CCol{Nums: nums, Null: null}
		}
	}
	return out, nil
}

// NumRows returns the number of rows.
func (c *Columnar) NumRows() int { return c.n }

// Schema returns the schema.
func (c *Columnar) Schema() *Schema { return c.schema }

// Codes returns the code column at col, or nil if the column is stored in
// raw-numeric mode.
func (c *Columnar) Codes(col int) []uint32 { return c.cols[col].Codes }

// DictLen returns the dictionary size of a coded column (0 for raw-numeric).
func (c *Columnar) DictLen(col int) int {
	if c.cols[col].Dict == nil {
		return 0
	}
	return c.cols[col].Dict.Len()
}

// IsNullAt reports whether the cell at (row, col) is NULL.
func (c *Columnar) IsNullAt(row, col int) bool {
	cc := &c.cols[col]
	if cc.Codes != nil {
		return cc.Codes[row] == 0
	}
	return cc.Null[row]
}

// ValueAt decodes the cell at (row, col). For raw-numeric columns the value
// is reconstructed as a float (sufficient for metrics; such columns are never
// joined or grouped).
func (c *Columnar) ValueAt(row, col int) Value {
	cc := &c.cols[col]
	if cc.Codes != nil {
		return cc.Dict.vals[cc.Codes[row]]
	}
	if cc.Null[row] {
		return Null()
	}
	return FloatValue(cc.Nums[row])
}

// AppendRowKey appends the injective encoding of the cells (row, cols...) to
// buf — the same bytes EncodeKey produces for the row-store path.
func (c *Columnar) AppendRowKey(buf []byte, row int, cols []int) []byte {
	for _, ci := range cols {
		buf = c.ValueAt(row, ci).AppendKey(buf)
	}
	return buf
}

// AppendNumeric appends the non-NULL numeric values of column col to dst, for
// the given rows (all rows when rows is nil), in order — matching the row
// path's numericColumn.
func (c *Columnar) AppendNumeric(dst []float64, col int, rows []int32) []float64 {
	cc := &c.cols[col]
	if cc.Codes != nil {
		vals := cc.Dict.vals
		if rows == nil {
			for _, code := range cc.Codes {
				if code != 0 {
					dst = append(dst, vals[code].Num())
				}
			}
			return dst
		}
		for _, r := range rows {
			if code := cc.Codes[r]; code != 0 {
				dst = append(dst, vals[code].Num())
			}
		}
		return dst
	}
	if rows == nil {
		for i, v := range cc.Nums {
			if !cc.Null[i] {
				dst = append(dst, v)
			}
		}
		return dst
	}
	for _, r := range rows {
		if !cc.Null[r] {
			dst = append(dst, cc.Nums[r])
		}
	}
	return dst
}

// ToTable decodes the columnar form back into a row-store Table (tests and
// debugging; the hot path never materializes rows).
func (c *Columnar) ToTable() *Table {
	t := NewTable(c.Name, c.schema)
	t.Rows = make([][]Value, c.n)
	for i := 0; i < c.n; i++ {
		row := make([]Value, len(c.cols))
		for j := range c.cols {
			row[j] = c.ValueAt(i, j)
		}
		t.Rows[i] = row
	}
	return t
}

// Grouping is the result of fusing one or more code columns into dense group
// ids: Codes[row] is the group of each row, with ids assigned in
// first-appearance row order (the deterministic order metric summations run
// in), Counts the group sizes and First the first row of each group.
type Grouping struct {
	Cols   []int
	Codes  []uint32
	Counts []int64
	First  []int32
}

// N returns the number of groups.
func (g *Grouping) N() int { return len(g.Counts) }

// RowLists bucketizes rows by group: the rows of group gid are
// rows[starts[gid]:starts[gid+1]], ascending — matching the append order of
// the row path's GroupIndices.
func (g *Grouping) RowLists() (starts, rows []int32) {
	starts = make([]int32, g.N()+1)
	for id, cnt := range g.Counts {
		starts[id+1] = starts[id] + int32(cnt)
	}
	rows = make([]int32, len(g.Codes))
	fill := append([]int32(nil), starts[:g.N()]...)
	for i, gc := range g.Codes {
		rows[fill[gc]] = int32(i)
		fill[gc]++
	}
	return starts, rows
}

// maxFlatFuse bounds the scratch table a single fuse stage may allocate; past
// it the stage falls back to an int-keyed map (still exact, no byte keys).
const maxFlatFuse = 1 << 20

// GroupBy fuses the given columns into a Grouping. All columns must be
// dictionary-coded. An empty column list yields a single group holding every
// row (mirroring the row path's empty grouping key).
func (c *Columnar) GroupBy(cols []int) (*Grouping, error) { return c.groupBy(cols, 1) }

// GroupByWorkers is GroupBy with up to workers goroutines on the fuse passes
// of large relations. The Grouping — codes, counts, first rows, and the
// first-appearance id order — is bit-identical to GroupBy's for every worker
// count (pinned by the parallel-equivalence tests).
func (c *Columnar) GroupByWorkers(cols []int, workers int) (*Grouping, error) {
	return c.groupBy(cols, workers)
}

func (c *Columnar) groupBy(cols []int, workers int) (*Grouping, error) {
	g := &Grouping{Cols: cols}
	if len(cols) == 0 {
		g.Codes = make([]uint32, c.n)
		if c.n > 0 {
			g.Counts = []int64{int64(c.n)}
			g.First = []int32{0}
		}
		return g, nil
	}
	for _, ci := range cols {
		if c.cols[ci].Codes == nil {
			return nil, fmt.Errorf("relation: column %q of %s is not dictionary-coded", c.schema.Column(ci).Name, c.Name)
		}
	}
	// Fuse left to right. Intermediate stages assign dense pair codes; the
	// final stage additionally records counts and first rows. The fused ids
	// of the final stage are in first-appearance row order regardless of
	// fuse order, because the row scan order is fixed. Intermediate code
	// slices and flat fuse tables are scratch and come from the pools; only
	// the final stage's codes (g.Codes) are freshly allocated.
	var cur []uint32
	curN := 1
	for s, ci := range cols {
		col := &c.cols[ci]
		last := s == len(cols)-1
		var next []uint32
		if last {
			next = make([]uint32, c.n) // escapes as g.Codes
		} else {
			next = poolUint32.get(c.n)
		}
		nextN := uint32(0)
		dictN := col.Dict.Len()
		assign := func(row int, id int32) int32 {
			if id < 0 {
				id = int32(nextN)
				nextN++
				if last {
					g.Counts = append(g.Counts, 0)
					g.First = append(g.First, int32(row))
				}
			}
			next[row] = uint32(id)
			if last {
				g.Counts[id]++
			}
			return id
		}
		span := uint64(curN) * uint64(dictN)
		flatOK := span <= maxFlatFuse || span <= uint64(4*c.n+16)
		switch {
		case flatOK && workers > 1 && c.n >= parallelMinRows && span <= 1<<30:
			nextN = c.fuseStageParallel(g, col.Codes, cur, int(span), dictN, next, last, workers)
		case flatOK:
			flat := poolInt32.get(int(span))
			for i := range flat {
				flat[i] = -1
			}
			if cur == nil {
				for row, code := range col.Codes {
					flat[code] = assign(row, flat[code])
				}
			} else {
				for row, code := range col.Codes {
					k := uint64(cur[row])*uint64(dictN) + uint64(code)
					flat[k] = assign(row, flat[k])
				}
			}
			poolInt32.put(flat)
		default:
			m := make(map[uint64]int32, c.n/4+16)
			for row, code := range col.Codes {
				var k uint64
				if cur == nil {
					k = uint64(code)
				} else {
					k = uint64(cur[row])<<32 | uint64(code)
				}
				id, ok := m[k]
				if !ok {
					id = -1
				}
				id = assign(row, id)
				m[k] = id
			}
		}
		if cur != nil {
			poolUint32.put(cur)
		}
		cur = next
		curN = int(nextN)
	}
	g.Codes = cur
	return g, nil
}

// fuseStageParallel runs one flat fuse stage with the chunked two-pass
// scheme: pass 1 records each fused key's minimum row via atomic min — a pure
// minimum, so the result is scheduling-independent — then keys sorted by
// first row reproduce exactly the first-appearance id order the serial scan
// assigns, and pass 2 maps every row to its group id. Counts are summed in a
// final serial sweep. Bit-identical to the serial stage for every worker
// count.
func (c *Columnar) fuseStageParallel(g *Grouping, codes, cur []uint32, span, dictN int, next []uint32, last bool, workers int) uint32 {
	minRow := poolInt32.get(span)
	for i := range minRow {
		minRow[i] = -1
	}
	runChunks(workers, c.n, func(_, lo, hi int) {
		if cur == nil {
			for row := lo; row < hi; row++ {
				atomicMinInt32(&minRow[codes[row]], int32(row))
			}
		} else {
			for row := lo; row < hi; row++ {
				k := uint64(cur[row])*uint64(dictN) + uint64(codes[row])
				atomicMinInt32(&minRow[k], int32(row))
			}
		}
	})
	ks := poolInt32.get(span)
	ng := 0
	for k := 0; k < span; k++ {
		if minRow[k] >= 0 {
			ks[ng] = int32(k)
			ng++
		}
	}
	keys := ks[:ng]
	sort.Slice(keys, func(i, j int) bool { return minRow[keys[i]] < minRow[keys[j]] })
	ids := poolInt32.get(span)
	for rank, k := range keys {
		ids[k] = int32(rank)
	}
	if last {
		g.Counts = make([]int64, ng)
		g.First = make([]int32, ng)
		for rank, k := range keys {
			g.First[rank] = minRow[k]
		}
	}
	runChunks(workers, c.n, func(_, lo, hi int) {
		if cur == nil {
			for row := lo; row < hi; row++ {
				next[row] = uint32(ids[codes[row]])
			}
		} else {
			for row := lo; row < hi; row++ {
				k := uint64(cur[row])*uint64(dictN) + uint64(codes[row])
				next[row] = uint32(ids[k])
			}
		}
	})
	if last {
		for _, id := range next {
			g.Counts[id]++
		}
	}
	poolInt32.put(minRow)
	poolInt32.put(ks)
	poolInt32.put(ids)
	return uint32(ng)
}

// GroupCounts returns the group sizes of the named columns in
// first-appearance order — the code-based replacement for collecting
// byte-string map counts.
func (c *Columnar) GroupCounts(names ...string) ([]int64, error) {
	cols, err := c.schema.Indexes(names...)
	if err != nil {
		return nil, err
	}
	g, err := c.GroupBy(cols)
	if err != nil {
		return nil, err
	}
	return g.Counts, nil
}

// JoinIndex is a precomputed build-side hash index for equi-joins on a fixed
// attribute set: rows bucketed by fused join-attribute group, plus a
// canonical-key map that aligns the groups with any probe side's dictionary
// space. Immutable after construction; shared across candidates and workers.
type JoinIndex struct {
	On     []string
	cols   []int
	g      *Grouping
	starts []int32
	rows   []int32
	byKey  map[string]uint32
}

// BuildJoinIndex indexes c on the named join attributes.
func (c *Columnar) BuildJoinIndex(on ...string) (*JoinIndex, error) {
	return c.BuildJoinIndexWorkers(1, on...)
}

// BuildJoinIndexWorkers indexes c on the named join attributes, using up to
// workers goroutines for the grouping passes when c is large — the build side
// of a million-row join is the expensive half of a cold evaluation. The index
// is bit-identical to BuildJoinIndex's for every worker count.
func (c *Columnar) BuildJoinIndexWorkers(workers int, on ...string) (*JoinIndex, error) {
	if len(on) == 0 {
		return nil, fmt.Errorf("relation: join index on %s with no join attributes", c.Name)
	}
	cols, err := c.schema.Indexes(on...)
	if err != nil {
		return nil, err
	}
	g, err := c.groupBy(cols, workers)
	if err != nil {
		return nil, err
	}
	idx := &JoinIndex{On: append([]string(nil), on...), cols: cols, g: g}
	idx.starts, idx.rows = g.RowLists()
	idx.byKey = make(map[string]uint32, g.N())
	var buf []byte
	for gid := 0; gid < g.N(); gid++ {
		buf = c.AppendRowKey(buf[:0], int(g.First[gid]), cols)
		idx.byKey[string(buf)] = uint32(gid)
	}
	return idx, nil
}

// gatherGroup gathers the source columns srcIdx (nil: all of src, in order)
// at the pick rows into dst. Output codes share the source dictionaries. All
// coded output columns share one backing codes allocation and all numeric
// ones share one nums and one null backing — one allocation per storage mode
// per gather instead of one per column, which is what keeps a steady-state
// join down to a handful of allocations. workers > 1 parallelizes the row
// sweep of each column; gathers are element-wise, so the output is trivially
// identical for every worker count.
func gatherGroup(dst []CCol, src []CCol, srcIdx []int, rows []int32, workers int) {
	n := len(rows)
	nCoded, nNum := 0, 0
	coded := func(j int) bool { return src[j].Codes != nil }
	col := func(k int) int {
		if srcIdx == nil {
			return k
		}
		return srcIdx[k]
	}
	for k := range dst {
		if coded(col(k)) {
			nCoded++
		} else {
			nNum++
		}
	}
	var codesBack []uint32
	var numsBack []float64
	var nullBack []bool
	if nCoded > 0 {
		codesBack = make([]uint32, nCoded*n)
	}
	if nNum > 0 {
		numsBack = make([]float64, nNum*n)
		nullBack = make([]bool, nNum*n)
	}
	ci, ni := 0, 0
	for k := range dst {
		s := &src[col(k)]
		if s.Codes != nil {
			dc := codesBack[ci*n : (ci+1)*n : (ci+1)*n]
			ci++
			sc := s.Codes
			runChunks(workers, n, func(_, lo, hi int) {
				for i := lo; i < hi; i++ {
					dc[i] = sc[rows[i]]
				}
			})
			dst[k] = CCol{Codes: dc, Dict: s.Dict}
		} else {
			dn := numsBack[ni*n : (ni+1)*n : (ni+1)*n]
			du := nullBack[ni*n : (ni+1)*n : (ni+1)*n]
			ni++
			sn, su := s.Nums, s.Null
			runChunks(workers, n, func(_, lo, hi int) {
				for i := lo; i < hi; i++ {
					dn[i] = sn[rows[i]]
					du[i] = su[rows[i]]
				}
			})
			dst[k] = CCol{Nums: dn, Null: du}
		}
	}
}

// FilterRows returns a new Columnar containing the given rows, in order.
// Dictionaries are shared with c.
func (c *Columnar) FilterRows(rows []int32) *Columnar {
	out := &Columnar{Name: c.Name, schema: c.schema, n: len(rows)}
	out.cols = make([]CCol, len(c.cols))
	gatherGroup(out.cols, c.cols, nil, rows, 1)
	return out
}

// JoinOptions tunes EquiJoinColumnarOpts.
type JoinOptions struct {
	// Workers bounds the goroutines used for the probe, pairing and gather
	// sweeps (and the index build when none is supplied) on large probe
	// sides; ≤ 1, or inputs under the parallel threshold, run serially. The
	// output is bit-identical for every worker count: chunk boundaries
	// depend only on the row count, and per-chunk output offsets preserve
	// probe row order exactly.
	Workers int
}

// EquiJoinColumnar computes the inner equi-join of a and b on the named
// shared attributes, matching EquiJoin's semantics, schema and output row
// order exactly (probe a in row order, build b rows ascending per match) —
// but producing gathered code columns instead of materialized rows. idx may
// carry a prebuilt index of b on exactly the same attributes; pass nil to
// build one in place.
func EquiJoinColumnar(a, b *Columnar, on []string, idx *JoinIndex) (*Columnar, error) {
	return EquiJoinColumnarOpts(a, b, on, idx, JoinOptions{})
}

// EquiJoinColumnarOpts is EquiJoinColumnar with tuning options.
func EquiJoinColumnarOpts(a, b *Columnar, on []string, idx *JoinIndex, opt JoinOptions) (*Columnar, error) {
	if len(on) == 0 {
		return nil, fmt.Errorf("relation: equi-join of %s and %s with no join attributes", a.Name, b.Name)
	}
	var err error
	if idx == nil {
		if idx, err = b.BuildJoinIndexWorkers(opt.Workers, on...); err != nil {
			return nil, fmt.Errorf("join %s ⋈ %s: %w", a.Name, b.Name, err)
		}
	}
	schema, rightKeep, err := joinedSchema(a.schema, b.schema, on)
	if err != nil {
		return nil, fmt.Errorf("join %s ⋈ %s: %w", a.Name, b.Name, err)
	}
	aCols, err := a.schema.Indexes(on...)
	if err != nil {
		return nil, fmt.Errorf("join %s ⋈ %s: %w", a.Name, b.Name, err)
	}
	workers := opt.Workers
	if workers < 1 || a.n < parallelMinRows {
		workers = 1
	}

	// Map every probe row to a build-side group (-1: no match). Single-column
	// joins remap the probe dictionary directly — one canonical key per
	// distinct value; multi-column joins group the probe rows first so each
	// distinct tuple is encoded once. The probe-group and remap tables are
	// scratch (pooled).
	pg := poolInt32.get(a.n)
	if len(aCols) == 1 && a.cols[aCols[0]].Codes != nil {
		dict := a.cols[aCols[0]].Dict
		remap := poolInt32.get(dict.Len())
		buf := poolBytes.get(0)
		for code := range remap {
			buf = dict.vals[code].AppendKey(buf[:0])
			if g, ok := idx.byKey[string(buf)]; ok {
				remap[code] = int32(g)
			} else {
				remap[code] = -1
			}
		}
		poolBytes.put(buf)
		codes := a.cols[aCols[0]].Codes
		runChunks(workers, a.n, func(_, lo, hi int) {
			for row := lo; row < hi; row++ {
				pg[row] = remap[codes[row]]
			}
		})
		poolInt32.put(remap)
	} else {
		ag, err := a.groupBy(aCols, workers)
		if err != nil {
			poolInt32.put(pg)
			return nil, fmt.Errorf("join %s ⋈ %s: %w", a.Name, b.Name, err)
		}
		remap := poolInt32.get(ag.N())
		buf := poolBytes.get(0)
		for gid := 0; gid < ag.N(); gid++ {
			buf = a.AppendRowKey(buf[:0], int(ag.First[gid]), aCols)
			if g, ok := idx.byKey[string(buf)]; ok {
				remap[gid] = int32(g)
			} else {
				remap[gid] = -1
			}
		}
		poolBytes.put(buf)
		agCodes := ag.Codes
		runChunks(workers, a.n, func(_, lo, hi int) {
			for row := lo; row < hi; row++ {
				pg[row] = remap[agCodes[row]]
			}
		})
		poolInt32.put(remap)
	}

	// Size the output exactly from the build-side match counts — per chunk,
	// so the pairing sweep can run chunks in parallel while writing every
	// probe row's pairings at the same offsets a serial scan would.
	chunks := (a.n + parallelChunkRows - 1) / parallelChunkRows
	chunkOff := make([]int, chunks+1)
	runChunks(workers, a.n, func(ch, lo, hi int) {
		t := 0
		for row := lo; row < hi; row++ {
			if g := pg[row]; g >= 0 {
				t += int(idx.starts[g+1] - idx.starts[g])
			}
		}
		chunkOff[ch+1] = t
	})
	for ch := 0; ch < chunks; ch++ {
		chunkOff[ch+1] += chunkOff[ch]
	}
	total := chunkOff[chunks]

	left := poolInt32.get(total)
	right := poolInt32.get(total)
	runChunks(workers, a.n, func(ch, lo, hi int) {
		o := chunkOff[ch]
		for row := lo; row < hi; row++ {
			g := pg[row]
			if g < 0 {
				continue
			}
			for _, bi := range idx.rows[idx.starts[g]:idx.starts[g+1]] {
				left[o] = int32(row)
				right[o] = bi
				o++
			}
		}
	})
	poolInt32.put(pg)

	out := &Columnar{Name: a.Name + "⋈" + b.Name, schema: schema, n: total}
	out.cols = make([]CCol, schema.Len())
	gatherGroup(out.cols[:a.schema.Len()], a.cols, nil, left, workers)
	gatherGroup(out.cols[a.schema.Len():], b.cols, rightKeep, right, workers)
	poolInt32.put(left)
	poolInt32.put(right)
	return out, nil
}
