// Package relation implements the in-memory relational substrate that DANCE
// operates on: typed values, schemas, tables, projections, equi-joins, full
// outer joins, and attribute-set partitions (equivalence classes).
//
// Design notes:
//
//   - Values are small tagged structs, comparable with ==, so they can be used
//     directly as map keys. NULL is a first-class kind because join
//     informativeness (Def 2.4 of the paper) is defined on full outer joins.
//   - Multi-attribute grouping keys are encoded into byte strings with
//     AppendKey; the encoding is injective so two distinct tuples never
//     collide.
//   - Tables are row stores ([][]Value). The workloads in the paper are
//     scan/join/group heavy with no point updates, so rows keep the code
//     simple while remaining fast enough for millions of rows.
package relation

import (
	"encoding/binary"
	"fmt"
	"math"
	"strconv"
)

// Kind enumerates the runtime types a Value can take.
type Kind uint8

const (
	// KindNull marks an absent value (introduced by outer joins or dirt).
	KindNull Kind = iota
	// KindString is a categorical string value.
	KindString
	// KindInt is a 64-bit integer value.
	KindInt
	// KindFloat is a 64-bit floating point value.
	KindFloat
)

// String implements fmt.Stringer for Kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindString:
		return "string"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Value is a single relational value. The zero Value is NULL.
// Values are comparable with == (no slice or map fields), which makes them
// usable as map keys; Float values must not be NaN (enforced by Float).
type Value struct {
	Kind Kind
	S    string
	I    int64
	F    float64
}

// Null returns the NULL value.
func Null() Value { return Value{} }

// String returns a string (categorical) value.
func StringValue(s string) Value { return Value{Kind: KindString, S: s} }

// Int returns an integer value.
func IntValue(i int64) Value { return Value{Kind: KindInt, I: i} }

// Float returns a floating point value. NaN is coerced to NULL so that
// Value remains well-behaved under ==.
func FloatValue(f float64) Value {
	if math.IsNaN(f) {
		return Null()
	}
	return Value{Kind: KindFloat, F: f}
}

// IsNull reports whether v is NULL.
func (v Value) IsNull() bool { return v.Kind == KindNull }

// Num returns the numeric interpretation of v (0 for NULL and strings).
func (v Value) Num() float64 {
	switch v.Kind {
	case KindInt:
		return float64(v.I)
	case KindFloat:
		return v.F
	default:
		return 0
	}
}

// String renders v for display and CSV output.
func (v Value) String() string {
	switch v.Kind {
	case KindNull:
		return ""
	case KindString:
		return v.S
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	}
	return fmt.Sprintf("value(kind=%d)", uint8(v.Kind))
}

// Compare orders values: NULL < strings < numbers is avoided by comparing
// kind classes first (null, string, numeric); numerics compare by value, so
// IntValue(3) and FloatValue(3.0) compare equal.
func (v Value) Compare(o Value) int {
	ck, co := v.class(), o.class()
	if ck != co {
		return ck - co
	}
	switch ck {
	case 0: // both null
		return 0
	case 1: // both string
		switch {
		case v.S < o.S:
			return -1
		case v.S > o.S:
			return 1
		}
		return 0
	default: // both numeric
		a, b := v.Num(), o.Num()
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		}
		return 0
	}
}

func (v Value) class() int {
	switch v.Kind {
	case KindNull:
		return 0
	case KindString:
		return 1
	default:
		return 2
	}
}

// EqualValue reports whether v and o are the same value. Unlike ==, an
// IntValue and a FloatValue holding the same number are equal.
func (v Value) EqualValue(o Value) bool { return v.Compare(o) == 0 }

// AppendKey appends an injective byte encoding of v to buf and returns the
// extended slice. Distinct values always produce distinct encodings, and the
// encoding is self-delimiting so multi-value keys are unambiguous.
func (v Value) AppendKey(buf []byte) []byte {
	switch v.Kind {
	case KindNull:
		return append(buf, 0)
	case KindString:
		buf = append(buf, 1)
		buf = binary.AppendUvarint(buf, uint64(len(v.S)))
		return append(buf, v.S...)
	case KindInt:
		buf = append(buf, 2)
		return binary.BigEndian.AppendUint64(buf, uint64(v.I))
	case KindFloat:
		// Normalize integral floats to the int encoding so that
		// IntValue(3) and FloatValue(3) group together, matching
		// EqualValue semantics.
		if f := v.F; f == math.Trunc(f) && f >= math.MinInt64 && f <= math.MaxInt64 {
			buf = append(buf, 2)
			return binary.BigEndian.AppendUint64(buf, uint64(int64(f)))
		}
		buf = append(buf, 3)
		return binary.BigEndian.AppendUint64(buf, math.Float64bits(v.F))
	}
	panic("relation: unknown value kind")
}

// ParseValue parses s into a Value of the given kind. Empty strings parse to
// NULL for every kind.
func ParseValue(s string, kind Kind) (Value, error) {
	if s == "" {
		return Null(), nil
	}
	switch kind {
	case KindString:
		return StringValue(s), nil
	case KindInt:
		i, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return Null(), fmt.Errorf("relation: parse int %q: %w", s, err)
		}
		return IntValue(i), nil
	case KindFloat:
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return Null(), fmt.Errorf("relation: parse float %q: %w", s, err)
		}
		return FloatValue(f), nil
	case KindNull:
		return Null(), nil
	}
	return Null(), fmt.Errorf("relation: unknown kind %v", kind)
}
