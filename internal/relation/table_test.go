package relation

import (
	"bytes"
	"strings"
	"testing"
)

// exampleD builds the instance D of the paper's Example 2.1 / Table 2:
// five rows over (A, B) with FD A → B violated by t3, t4.
func exampleD() *Table {
	t := NewTable("D", NewSchema(Cat("A", KindString), Cat("B", KindString)))
	for _, r := range [][2]string{
		{"a1", "b1"}, {"a1", "b1"}, {"a1", "b2"}, {"a1", "b3"}, {"a2", "b2"},
	} {
		t.AppendValues(StringValue(r[0]), StringValue(r[1]))
	}
	return t
}

func TestAppendAndShape(t *testing.T) {
	d := exampleD()
	if d.NumRows() != 5 || d.NumCols() != 2 {
		t.Fatalf("shape = %dx%d, want 5x2", d.NumRows(), d.NumCols())
	}
}

func TestAppendWidthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on width mismatch")
		}
	}()
	exampleD().AppendValues(StringValue("only-one"))
}

func TestProject(t *testing.T) {
	d := exampleD()
	p, err := d.Project("B")
	if err != nil {
		t.Fatal(err)
	}
	if p.NumCols() != 1 || p.NumRows() != 5 {
		t.Fatalf("projection shape wrong: %v", p)
	}
	if p.Rows[2][0] != StringValue("b2") {
		t.Fatalf("projection value wrong: %v", p.Rows[2][0])
	}
	if _, err := d.Project("Z"); err == nil {
		t.Fatal("projecting unknown column should fail")
	}
}

func TestProjectReorders(t *testing.T) {
	d := exampleD()
	p := d.MustProject("B", "A")
	if p.Schema.Column(0).Name != "B" || p.Schema.Column(1).Name != "A" {
		t.Fatalf("column order not honored: %v", p.Schema.Names())
	}
	if p.Rows[0][0] != StringValue("b1") || p.Rows[0][1] != StringValue("a1") {
		t.Fatalf("row values not reordered: %v", p.Rows[0])
	}
}

func TestSelectAndSelectIndices(t *testing.T) {
	d := exampleD()
	ai := d.Schema.Index("A")
	sel := d.Select(func(row []Value) bool { return row[ai] == StringValue("a1") })
	if sel.NumRows() != 4 {
		t.Fatalf("Select kept %d rows, want 4", sel.NumRows())
	}
	si := d.SelectIndices([]int{4, 0})
	if si.NumRows() != 2 || si.Rows[0][0] != StringValue("a2") {
		t.Fatalf("SelectIndices wrong: %v", si.Rows)
	}
}

func TestDistinct(t *testing.T) {
	d := exampleD()
	u := d.Distinct()
	if u.NumRows() != 4 { // (a1,b1) appears twice
		t.Fatalf("Distinct kept %d rows, want 4", u.NumRows())
	}
}

func TestColumn(t *testing.T) {
	d := exampleD()
	col, err := d.Column("A")
	if err != nil {
		t.Fatal(err)
	}
	if len(col) != 5 || col[4] != StringValue("a2") {
		t.Fatalf("Column wrong: %v", col)
	}
	if _, err := d.Column("missing"); err == nil {
		t.Fatal("unknown column should error")
	}
}

func TestSortBy(t *testing.T) {
	d := exampleD()
	if err := d.SortBy("B", "A"); err != nil {
		t.Fatal(err)
	}
	if d.Rows[0][1] != StringValue("b1") || d.Rows[4][1] != StringValue("b3") {
		t.Fatalf("not sorted: %v", d.Rows)
	}
}

func TestGroupIndices(t *testing.T) {
	d := exampleD()
	groups, err := d.GroupIndices("A")
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 2 {
		t.Fatalf("groups = %d, want 2", len(groups))
	}
	sizes := map[int]bool{}
	for _, g := range groups {
		sizes[len(g)] = true
	}
	if !sizes[4] || !sizes[1] {
		t.Fatalf("group sizes wrong: %v", groups)
	}
}

func TestPartitionExample21(t *testing.T) {
	// Example 2.1 of the paper: π_A has classes {t1..t4}, {t5};
	// π_AB has classes {t1,t2}, {t3}, {t4}, {t5}.
	d := exampleD()
	pa, err := d.PartitionBy("A")
	if err != nil {
		t.Fatal(err)
	}
	if pa.NumClasses() != 2 {
		t.Fatalf("π_A classes = %d, want 2", pa.NumClasses())
	}
	pab, err := d.PartitionBy("A", "B")
	if err != nil {
		t.Fatal(err)
	}
	if pab.NumClasses() != 4 {
		t.Fatalf("π_AB classes = %d, want 4", pab.NumClasses())
	}
	// Correct records C(D, A→B) = {t1, t2, t5} per the paper.
	if got := pa.CorrectCount(pab); got != 3 {
		t.Fatalf("CorrectCount = %d, want 3", got)
	}
	if e := pa.Error(pab); e < 0.399 || e > 0.401 {
		t.Fatalf("g3 error = %v, want 0.4", e)
	}
}

func TestPartitionRefineAgreesWithDirect(t *testing.T) {
	d := exampleD()
	pa, _ := d.PartitionBy("A")
	refined := pa.Refine(d, []int{d.Schema.Index("B")})
	direct, _ := d.PartitionBy("A", "B")
	if refined.NumClasses() != direct.NumClasses() {
		t.Fatalf("refine classes %d != direct %d", refined.NumClasses(), direct.NumClasses())
	}
	rs, ds := refined.ClassSizes(), direct.ClassSizes()
	for i := range rs {
		if rs[i] != ds[i] {
			t.Fatalf("class sizes differ: %v vs %v", rs, ds)
		}
	}
}

func TestStripped(t *testing.T) {
	d := exampleD()
	pab, _ := d.PartitionBy("A", "B")
	st := pab.Stripped()
	if st.NumClasses() != 1 {
		t.Fatalf("stripped classes = %d, want 1 (only {t1,t2})", st.NumClasses())
	}
}

func TestCloneIsIndependent(t *testing.T) {
	d := exampleD()
	c := d.Clone()
	c.Rows[0][0] = StringValue("zzz")
	if d.Rows[0][0] == StringValue("zzz") {
		t.Fatal("Clone shares row storage")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	d := NewTable("mix", NewSchema(
		Cat("s", KindString), Cat("i", KindInt), Num("f", KindFloat),
	))
	d.AppendValues(StringValue("x"), IntValue(4), FloatValue(1.25))
	d.AppendValues(Null(), IntValue(-1), Null())

	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV("mix", strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Schema.Equal(d.Schema) {
		t.Fatalf("schema mismatch: %v vs %v", got.Schema, d.Schema)
	}
	if got.NumRows() != 2 {
		t.Fatalf("rows = %d, want 2", got.NumRows())
	}
	for i := range d.Rows {
		for j := range d.Rows[i] {
			if got.Rows[i][j] != d.Rows[i][j] {
				t.Errorf("cell (%d,%d): %v != %v", i, j, got.Rows[i][j], d.Rows[i][j])
			}
		}
	}
}

func TestSchemaBasics(t *testing.T) {
	s := NewSchema(Cat("a", KindString), Num("b", KindFloat))
	if s.Len() != 2 || !s.Has("a") || s.Has("z") || s.Index("b") != 1 {
		t.Fatal("schema lookup broken")
	}
	if got := s.Names(); got[0] != "a" || got[1] != "b" {
		t.Fatalf("Names = %v", got)
	}
	if !strings.Contains(s.String(), "float") {
		t.Fatalf("schema String() missing kind: %s", s)
	}
}

func TestSharedAttrs(t *testing.T) {
	a := NewSchema(Cat("x", KindString), Cat("y", KindString), Cat("z", KindString))
	b := NewSchema(Cat("y", KindString), Cat("z", KindString), Cat("w", KindString))
	got := SharedAttrs(a, b)
	if len(got) != 2 || got[0] != "y" || got[1] != "z" {
		t.Fatalf("SharedAttrs = %v", got)
	}
}

func TestSchemaDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate column should panic")
		}
	}()
	NewSchema(Cat("a", KindString), Cat("a", KindInt))
}

func TestTableStringAndMustIndexes(t *testing.T) {
	d := exampleD()
	s := d.String()
	if !strings.Contains(s, "D") || !strings.Contains(s, "5 rows") {
		t.Fatalf("Table.String = %q", s)
	}
	idx := d.Schema.MustIndexes("B", "A")
	if len(idx) != 2 || idx[0] != 1 || idx[1] != 0 {
		t.Fatalf("MustIndexes = %v", idx)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustIndexes with unknown column should panic")
		}
	}()
	d.Schema.MustIndexes("nope")
}
