package relation

import "testing"

func TestTableConcat(t *testing.T) {
	a := NewTable("t", NewSchema(Cat("k", KindInt), Cat("s", KindString)))
	a.AppendValues(IntValue(1), StringValue("x"))
	b := NewTable("t", NewSchema(Cat("k", KindInt), Cat("s", KindString)))
	b.AppendValues(IntValue(2), StringValue("y"))
	b.AppendValues(IntValue(3), StringValue("z"))

	c, err := a.Concat(b)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumRows() != 3 || !c.Rows[0][0].EqualValue(IntValue(1)) || !c.Rows[2][1].EqualValue(StringValue("z")) {
		t.Fatalf("concat = %v", c.Rows)
	}
	// Copy-on-write: appending to the result must not disturb the inputs.
	c.AppendValues(IntValue(4), StringValue("w"))
	if a.NumRows() != 1 || b.NumRows() != 2 {
		t.Fatal("concat mutated its inputs")
	}

	bad := NewTable("t", NewSchema(Cat("k", KindInt)))
	if _, err := a.Concat(bad); err == nil {
		t.Fatal("mismatched schema must error")
	}
}

func TestColumnarAppendTable(t *testing.T) {
	base := NewTable("t", NewSchema(Cat("k", KindInt), Cat("s", KindString), Num("v", KindFloat)))
	base.AppendValues(IntValue(300), StringValue("a"), FloatValue(1.5))
	base.AppendValues(IntValue(1), StringValue("b"), Null())
	base.AppendValues(Null(), StringValue("a"), FloatValue(2.5))

	delta := NewTable("t", NewSchema(Cat("k", KindInt), Cat("s", KindString), Num("v", KindFloat)))
	delta.AppendValues(FloatValue(300), StringValue("c"), FloatValue(3.5)) // float 300.0 must reuse int 300's code
	delta.AppendValues(IntValue(7), StringValue("b"), Null())

	bc := ToColumnar(base)
	merged, err := bc.AppendTable(delta)
	if err != nil {
		t.Fatal(err)
	}
	concat, err := base.Concat(delta)
	if err != nil {
		t.Fatal(err)
	}
	fresh := ToColumnar(concat)
	if merged.NumRows() != fresh.NumRows() {
		t.Fatalf("merged rows %d != %d", merged.NumRows(), fresh.NumRows())
	}
	for j := 0; j < 3; j++ {
		mc, fc := merged.Codes(j), fresh.Codes(j)
		if len(mc) != len(fc) {
			t.Fatalf("col %d: %d codes != %d", j, len(mc), len(fc))
		}
		for i := range mc {
			if mc[i] != fc[i] {
				t.Fatalf("col %d row %d: merged code %d != fresh %d", j, i, mc[i], fc[i])
			}
			if !merged.ValueAt(i, j).EqualValue(fresh.ValueAt(i, j)) {
				t.Fatalf("col %d row %d: value %v != %v", j, i, merged.ValueAt(i, j), fresh.ValueAt(i, j))
			}
		}
		if merged.DictLen(j) != fresh.DictLen(j) {
			t.Fatalf("col %d: dict %d != %d", j, merged.DictLen(j), fresh.DictLen(j))
		}
	}
	// The original encoding is untouched (copy-on-write).
	if bc.NumRows() != 3 || bc.DictLen(0) != 3 { // NULL + 300 + 1
		t.Fatalf("AppendTable mutated the base encoding: rows %d dict %d", bc.NumRows(), bc.DictLen(0))
	}

	// Raw-numeric (subset-encoded) columns extend too.
	sub, err := ToColumnarSubset(base, []string{"k"}, []string{"v"})
	if err != nil {
		t.Fatal(err)
	}
	mergedSub, err := sub.AppendTable(delta)
	if err != nil {
		t.Fatal(err)
	}
	if mergedSub.NumRows() != 5 {
		t.Fatalf("subset merge rows = %d", mergedSub.NumRows())
	}
	if mergedSub.IsNullAt(4, 2) != true || mergedSub.ValueAt(3, 2).Num() != 3.5 {
		t.Fatal("numeric column not extended correctly")
	}
	if mergedSub.Codes(1) != nil {
		t.Fatal("unpopulated column must stay unpopulated")
	}

	bad := NewTable("t", NewSchema(Cat("k", KindInt)))
	if _, err := bc.AppendTable(bad); err == nil {
		t.Fatal("mismatched schema must error")
	}
}
