package relation

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndString(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
		str  string
	}{
		{Null(), KindNull, ""},
		{StringValue("abc"), KindString, "abc"},
		{IntValue(-42), KindInt, "-42"},
		{FloatValue(2.5), KindFloat, "2.5"},
	}
	for _, c := range cases {
		if c.v.Kind != c.kind {
			t.Errorf("kind = %v, want %v", c.v.Kind, c.kind)
		}
		if got := c.v.String(); got != c.str {
			t.Errorf("String = %q, want %q", got, c.str)
		}
	}
}

func TestFloatNaNBecomesNull(t *testing.T) {
	if !FloatValue(math.NaN()).IsNull() {
		t.Fatal("NaN should coerce to NULL")
	}
}

func TestCompareOrdering(t *testing.T) {
	ordered := []Value{
		Null(),
		StringValue("a"),
		StringValue("b"),
		IntValue(1),
		FloatValue(1.5),
		IntValue(2),
	}
	for i := 0; i < len(ordered); i++ {
		for j := 0; j < len(ordered); j++ {
			got := ordered[i].Compare(ordered[j])
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if sign(got) != want {
				t.Errorf("Compare(%v, %v) = %d, want sign %d", ordered[i], ordered[j], got, want)
			}
		}
	}
}

func sign(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	}
	return 0
}

func TestIntFloatEquality(t *testing.T) {
	if !IntValue(3).EqualValue(FloatValue(3)) {
		t.Fatal("IntValue(3) should equal FloatValue(3)")
	}
	// And their key encodings must agree so they group together.
	ka := IntValue(3).AppendKey(nil)
	kb := FloatValue(3).AppendKey(nil)
	if string(ka) != string(kb) {
		t.Fatalf("key encodings differ: %x vs %x", ka, kb)
	}
}

func TestAppendKeyInjective(t *testing.T) {
	vals := []Value{
		Null(), StringValue(""), StringValue("a"), StringValue("ab"),
		IntValue(0), IntValue(1), IntValue(-1), FloatValue(0.5), FloatValue(-0.5),
	}
	seen := make(map[string]Value)
	for _, v := range vals {
		k := string(v.AppendKey(nil))
		if prev, dup := seen[k]; dup && !prev.EqualValue(v) {
			t.Errorf("collision: %v and %v encode to %x", prev, v, k)
		}
		seen[k] = v
	}
}

func TestAppendKeySelfDelimiting(t *testing.T) {
	// ("a", "bc") must not collide with ("ab", "c").
	k1 := StringValue("a").AppendKey(nil)
	k1 = StringValue("bc").AppendKey(k1)
	k2 := StringValue("ab").AppendKey(nil)
	k2 = StringValue("c").AppendKey(k2)
	if string(k1) == string(k2) {
		t.Fatal("multi-value keys collide")
	}
}

func TestParseValueRoundTrip(t *testing.T) {
	cases := []struct {
		s    string
		kind Kind
		want Value
	}{
		{"", KindString, Null()},
		{"hello", KindString, StringValue("hello")},
		{"-7", KindInt, IntValue(-7)},
		{"2.25", KindFloat, FloatValue(2.25)},
	}
	for _, c := range cases {
		got, err := ParseValue(c.s, c.kind)
		if err != nil {
			t.Fatalf("ParseValue(%q, %v): %v", c.s, c.kind, err)
		}
		if got != c.want {
			t.Errorf("ParseValue(%q, %v) = %v, want %v", c.s, c.kind, got, c.want)
		}
	}
	if _, err := ParseValue("xyz", KindInt); err == nil {
		t.Error("parsing junk int should fail")
	}
	if _, err := ParseValue("xyz", KindFloat); err == nil {
		t.Error("parsing junk float should fail")
	}
}

// Property: Compare is antisymmetric and EqualValue matches Compare==0.
func TestQuickCompareAntisymmetry(t *testing.T) {
	f := func(a, b int64, fa, fb float64, sa, sb string, pick uint8) bool {
		mk := func(p uint8, i int64, fl float64, s string) Value {
			switch p % 4 {
			case 0:
				return Null()
			case 1:
				return StringValue(s)
			case 2:
				return IntValue(i)
			default:
				return FloatValue(fl)
			}
		}
		va := mk(pick, a, fa, sa)
		vb := mk(pick>>2, b, fb, sb)
		if sign(va.Compare(vb)) != -sign(vb.Compare(va)) {
			return false
		}
		return va.EqualValue(vb) == (va.Compare(vb) == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: equal values produce equal keys; distinct values distinct keys
// (for non-NaN, comparable inputs).
func TestQuickKeyEncodingConsistent(t *testing.T) {
	f := func(a, b int64) bool {
		va, vb := IntValue(a), IntValue(b)
		ka := string(va.AppendKey(nil))
		kb := string(vb.AppendKey(nil))
		return (ka == kb) == va.EqualValue(vb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
