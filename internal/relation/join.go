package relation

import (
	"fmt"
)

// joinedSchema builds the output schema of a join of a and b on the given
// attributes: all columns of a, then the columns of b except the join
// attributes. A non-join column of b whose name collides with a column
// already in the output is renamed with an "_r" suffix (such collisions only
// arise when a join variant uses a strict subset of the shared attributes).
// Taken names are tracked in a set, so the check is O(cols) rather than
// O(cols²) per join.
func joinedSchema(a, b *Schema, on []string) (*Schema, []int, error) {
	onSet := make(map[string]bool, len(on))
	for _, n := range on {
		if !a.Has(n) || !b.Has(n) {
			return nil, nil, fmt.Errorf("relation: join attribute %q not shared", n)
		}
		onSet[n] = true
	}
	cols := a.Columns()
	taken := make(map[string]bool, len(cols)+b.Len())
	for _, c := range cols {
		taken[c.Name] = true
	}
	var rightKeep []int
	for i := 0; i < b.Len(); i++ {
		c := b.Column(i)
		if onSet[c.Name] {
			continue
		}
		if taken[c.Name] {
			base := c.Name
			c.Name = base + "_r"
			for sfx := 2; taken[c.Name]; sfx++ {
				c.Name = fmt.Sprintf("%s_r%d", base, sfx)
			}
		}
		taken[c.Name] = true
		cols = append(cols, c)
		rightKeep = append(rightKeep, i)
	}
	return NewSchema(cols...), rightKeep, nil
}

// EquiJoin computes the inner equi-join of a and b on the named shared
// attributes using a hash join (build side: b). Bag semantics.
func EquiJoin(a, b *Table, on []string) (*Table, error) {
	if len(on) == 0 {
		return nil, fmt.Errorf("relation: equi-join of %s and %s with no join attributes", a.Name, b.Name)
	}
	schema, rightKeep, err := joinedSchema(a.Schema, b.Schema, on)
	if err != nil {
		return nil, fmt.Errorf("join %s ⋈ %s: %w", a.Name, b.Name, err)
	}
	aIdx, err := a.Schema.Indexes(on...)
	if err != nil {
		return nil, fmt.Errorf("join %s ⋈ %s: %w", a.Name, b.Name, err)
	}
	bIdx, err := b.Schema.Indexes(on...)
	if err != nil {
		return nil, fmt.Errorf("join %s ⋈ %s: %w", a.Name, b.Name, err)
	}

	build := make(map[string][]int, len(b.Rows))
	var buf []byte
	for i, r := range b.Rows {
		buf = EncodeKey(buf[:0], r, bIdx)
		build[string(buf)] = append(build[string(buf)], i)
	}

	// Size the output exactly from the build-side match counts so the row
	// slice is allocated once instead of grown through appends (map lookups
	// with string(buf) in place do not allocate).
	total := 0
	for _, ra := range a.Rows {
		buf = EncodeKey(buf[:0], ra, aIdx)
		total += len(build[string(buf)])
	}

	out := NewTable(a.Name+"⋈"+b.Name, schema)
	out.Rows = make([][]Value, 0, total)
	for _, ra := range a.Rows {
		buf = EncodeKey(buf[:0], ra, aIdx)
		matches := build[string(buf)]
		for _, bi := range matches {
			rb := b.Rows[bi]
			row := make([]Value, 0, schema.Len())
			row = append(row, ra...)
			for _, j := range rightKeep {
				row = append(row, rb[j])
			}
			out.Rows = append(out.Rows, row)
		}
	}
	return out, nil
}

// FullOuterJoin computes the full outer join of a and b on the named shared
// attributes. The output schema keeps both sides' join attributes: a's
// columns unchanged, then all of b's columns with colliding names renamed
// with an "_r" suffix, so unmatched rows can carry NULL on the absent side.
func FullOuterJoin(a, b *Table, on []string) (*Table, error) {
	if len(on) == 0 {
		return nil, fmt.Errorf("relation: outer join of %s and %s with no join attributes", a.Name, b.Name)
	}
	cols := a.Schema.Columns()
	taken := make(map[string]bool, len(cols)+b.Schema.Len())
	for _, c := range cols {
		taken[c.Name] = true
	}
	for i := 0; i < b.Schema.Len(); i++ {
		c := b.Schema.Column(i)
		base := c.Name
		if taken[c.Name] {
			c.Name = base + "_r"
		}
		for sfx := 2; taken[c.Name]; sfx++ {
			c.Name = fmt.Sprintf("%s_r%d", base, sfx)
		}
		taken[c.Name] = true
		cols = append(cols, c)
	}
	schema := NewSchema(cols...)

	aIdx, err := a.Schema.Indexes(on...)
	if err != nil {
		return nil, err
	}
	bIdx, err := b.Schema.Indexes(on...)
	if err != nil {
		return nil, err
	}

	build := make(map[string][]int, len(b.Rows))
	var buf []byte
	for i, r := range b.Rows {
		buf = EncodeKey(buf[:0], r, bIdx)
		build[string(buf)] = append(build[string(buf)], i)
	}
	matchedB := make([]bool, len(b.Rows))

	out := NewTable(a.Name+"⟗"+b.Name, schema)
	aw, bw := a.Schema.Len(), b.Schema.Len()
	for _, ra := range a.Rows {
		buf = EncodeKey(buf[:0], ra, aIdx)
		matches := build[string(buf)]
		if len(matches) == 0 {
			row := make([]Value, aw+bw)
			copy(row, ra)
			out.Rows = append(out.Rows, row) // right side all NULL
			continue
		}
		for _, bi := range matches {
			matchedB[bi] = true
			row := make([]Value, 0, aw+bw)
			row = append(row, ra...)
			row = append(row, b.Rows[bi]...)
			out.Rows = append(out.Rows, row)
		}
	}
	for bi, rb := range b.Rows {
		if matchedB[bi] {
			continue
		}
		row := make([]Value, aw+bw)
		copy(row[aw:], rb)
		out.Rows = append(out.Rows, row) // left side all NULL
	}
	return out, nil
}

// OuterJoinPairCounts returns the joint distribution of (a.J, b.J) in the
// full outer join of a and b on attributes J, without materializing the
// join. Keys are the injective tuple encodings of each side's join values;
// the empty string denotes an absent (NULL) side. This is the input to the
// join informativeness measure (Def 2.4).
func OuterJoinPairCounts(a, b *Table, on []string) (map[[2]string]int64, error) {
	aIdx, err := a.Schema.Indexes(on...)
	if err != nil {
		return nil, fmt.Errorf("outer join pair counts %s/%s: %w", a.Name, b.Name, err)
	}
	bIdx, err := b.Schema.Indexes(on...)
	if err != nil {
		return nil, fmt.Errorf("outer join pair counts %s/%s: %w", a.Name, b.Name, err)
	}
	countsA := make(map[string]int64, len(a.Rows))
	countsB := make(map[string]int64, len(b.Rows))
	var buf []byte
	for _, r := range a.Rows {
		buf = EncodeKey(buf[:0], r, aIdx)
		countsA[string(buf)]++
	}
	for _, r := range b.Rows {
		buf = EncodeKey(buf[:0], r, bIdx)
		countsB[string(buf)]++
	}
	joint := make(map[[2]string]int64, len(countsA)+len(countsB))
	for v, ca := range countsA {
		if cb, ok := countsB[v]; ok {
			joint[[2]string{v, v}] = ca * cb
		} else {
			joint[[2]string{v, ""}] = ca
		}
	}
	for v, cb := range countsB {
		if _, ok := countsA[v]; !ok {
			joint[[2]string{"", v}] = cb
		}
	}
	return joint, nil
}

// PathStep is one hop of a multi-way join: join the accumulated result with
// Table on the shared attributes On.
type PathStep struct {
	Table *Table
	On    []string // ignored for the first step
}

// JoinPath joins steps left-to-right: ((T1 ⋈ T2) ⋈ T3) ⋈ ... Each step's On
// lists the attributes shared with the accumulated intermediate result.
func JoinPath(steps []PathStep) (*Table, error) {
	if len(steps) == 0 {
		return nil, fmt.Errorf("relation: empty join path")
	}
	acc := steps[0].Table
	for _, st := range steps[1:] {
		var err error
		acc, err = EquiJoin(acc, st.Table, st.On)
		if err != nil {
			return nil, err
		}
	}
	return acc, nil
}
