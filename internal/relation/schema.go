package relation

import (
	"fmt"
	"sort"
	"strings"
)

// Column describes one attribute of a relation.
type Column struct {
	Name string
	Kind Kind
	// Categorical controls how the correlation measure of Def 2.5 treats
	// the attribute: Shannon entropy when true, cumulative entropy when
	// false. String columns are always categorical regardless of the flag.
	Categorical bool
}

// Categorical reports whether the column is treated as categorical by the
// correlation measure.
func (c Column) IsCategorical() bool { return c.Categorical || c.Kind == KindString }

// Schema is an ordered list of columns with name-based lookup.
type Schema struct {
	cols   []Column
	byName map[string]int
}

// NewSchema builds a schema from cols. Column names must be unique.
func NewSchema(cols ...Column) *Schema {
	s := &Schema{cols: append([]Column(nil), cols...), byName: make(map[string]int, len(cols))}
	for i, c := range s.cols {
		if c.Name == "" {
			panic("relation: empty column name")
		}
		if _, dup := s.byName[c.Name]; dup {
			panic(fmt.Sprintf("relation: duplicate column %q", c.Name))
		}
		s.byName[c.Name] = i
	}
	return s
}

// Cat is shorthand for a categorical column of the given kind.
func Cat(name string, kind Kind) Column { return Column{Name: name, Kind: kind, Categorical: true} }

// Num is shorthand for a numerical (non-categorical) column.
func Num(name string, kind Kind) Column { return Column{Name: name, Kind: kind} }

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.cols) }

// Column returns the i-th column.
func (s *Schema) Column(i int) Column { return s.cols[i] }

// Columns returns a copy of all columns.
func (s *Schema) Columns() []Column { return append([]Column(nil), s.cols...) }

// Names returns all column names in order.
func (s *Schema) Names() []string {
	out := make([]string, len(s.cols))
	for i, c := range s.cols {
		out[i] = c.Name
	}
	return out
}

// Index returns the position of the named column, or -1.
func (s *Schema) Index(name string) int {
	if i, ok := s.byName[name]; ok {
		return i
	}
	return -1
}

// Has reports whether the schema contains the named column.
func (s *Schema) Has(name string) bool { return s.Index(name) >= 0 }

// MustIndexes maps names to column positions, panicking on unknown names.
func (s *Schema) MustIndexes(names ...string) []int {
	out := make([]int, len(names))
	for i, n := range names {
		idx := s.Index(n)
		if idx < 0 {
			panic(fmt.Sprintf("relation: unknown column %q (have %v)", n, s.Names()))
		}
		out[i] = idx
	}
	return out
}

// Indexes maps names to column positions, returning an error on unknown names.
func (s *Schema) Indexes(names ...string) ([]int, error) {
	out := make([]int, len(names))
	for i, n := range names {
		idx := s.Index(n)
		if idx < 0 {
			return nil, fmt.Errorf("relation: unknown column %q (have %v)", n, s.Names())
		}
		out[i] = idx
	}
	return out, nil
}

// Project returns a new schema restricted to names, in the given order.
func (s *Schema) Project(names ...string) (*Schema, error) {
	idx, err := s.Indexes(names...)
	if err != nil {
		return nil, err
	}
	cols := make([]Column, len(idx))
	for i, j := range idx {
		cols[i] = s.cols[j]
	}
	return NewSchema(cols...), nil
}

// SharedAttrs returns the sorted set of column names present in both schemas.
// This defines the candidate join attributes of an I-edge (Def 4.2).
func SharedAttrs(a, b *Schema) []string {
	var shared []string
	for _, c := range a.cols {
		if b.Has(c.Name) {
			shared = append(shared, c.Name)
		}
	}
	sort.Strings(shared)
	return shared
}

// String renders the schema as "name kind[cat], ...".
func (s *Schema) String() string {
	parts := make([]string, len(s.cols))
	for i, c := range s.cols {
		tag := ""
		if c.IsCategorical() {
			tag = " cat"
		}
		parts[i] = fmt.Sprintf("%s %s%s", c.Name, c.Kind, tag)
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Equal reports whether two schemas have identical columns in order.
func (s *Schema) Equal(o *Schema) bool {
	if s.Len() != o.Len() {
		return false
	}
	for i := range s.cols {
		if s.cols[i] != o.cols[i] {
			return false
		}
	}
	return true
}
