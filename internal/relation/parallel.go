package relation

import (
	"sync"
	"sync/atomic"
)

// Chunked parallel execution for the columnar kernels (probe, gather,
// grouping). These helpers deliberately do not take a context: one chunk
// sweep over even a million rows finishes in milliseconds, and the search
// layer already checks cancellation between evaluations.

const (
	// parallelMinRows is the row count below which a kernel stays serial —
	// under it, goroutine hand-off costs more than the scan saves.
	parallelMinRows = 1 << 15
	// parallelChunkRows is the fixed chunk size of every parallel sweep.
	// Chunk boundaries are a function of the row count alone — never of the
	// worker count — so chunk-indexed intermediates (match counts, output
	// offsets) are identical for every worker count, which is what keeps
	// parallel joins bit-identical to serial ones.
	parallelChunkRows = 1 << 14
)

// runChunks runs fn(chunk, lo, hi) for every parallelChunkRows-sized chunk of
// [0, n), on at most workers goroutines. Chunks are claimed dynamically;
// chunk indexes and bounds do not depend on workers. workers ≤ 1 runs the
// chunks serially in order.
func runChunks(workers, n int, fn func(chunk, lo, hi int)) {
	if n <= 0 {
		return
	}
	chunks := (n + parallelChunkRows - 1) / parallelChunkRows
	if workers > chunks {
		workers = chunks
	}
	if workers <= 1 {
		for c := 0; c < chunks; c++ {
			lo := c * parallelChunkRows
			fn(c, lo, min(lo+parallelChunkRows, n))
		}
		return
	}
	var (
		next atomic.Int64
		wg   sync.WaitGroup
	)
	next.Store(-1)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				c := int(next.Add(1))
				if c >= chunks {
					return
				}
				lo := c * parallelChunkRows
				fn(c, lo, min(lo+parallelChunkRows, n))
			}
		}()
	}
	wg.Wait()
}

// atomicMinInt32 lowers *p to v if v is smaller (with -1 meaning "unset").
// The result is a pure minimum, so concurrent callers converge to the same
// value regardless of scheduling — the property the parallel grouping pass
// relies on for determinism.
func atomicMinInt32(p *int32, v int32) {
	for {
		old := atomic.LoadInt32(p)
		if old >= 0 && old <= v {
			return
		}
		if atomic.CompareAndSwapInt32(p, old, v) {
			return
		}
	}
}
