package relation

import (
	"testing"
	"testing/quick"
)

// table3D1 and table3D2 reproduce the paper's Table 3 (shrunk: the paper's
// D1 has 1000 rows of which 996 are (a1,b1,c*); we keep the 5 rows that
// survive the join, plus two of the b1 rows so quality semantics stay
// interesting).
func table3D1() *Table {
	t := NewTable("D1", NewSchema(Cat("A", KindString), Cat("B", KindString), Cat("C", KindString)))
	rows := [][3]string{
		{"a1", "b1", "c4"},
		{"a1", "b1", "c5"},
		{"a1", "b2", "c1"},
		{"a1", "b2", "c2"},
		{"a1", "b3", "c3"},
	}
	for _, r := range rows {
		t.AppendValues(StringValue(r[0]), StringValue(r[1]), StringValue(r[2]))
	}
	return t
}

func table3D2() *Table {
	t := NewTable("D2", NewSchema(Cat("C", KindString), Cat("D", KindString), Cat("E", KindString)))
	rows := [][3]string{
		{"c1", "d1", "e1"},
		{"c1", "d1", "e1"},
		{"c2", "d1", "e2"},
		{"c3", "d1", "e2"},
		{"c4", "d1", "e2"},
	}
	for _, r := range rows {
		t.AppendValues(StringValue(r[0]), StringValue(r[1]), StringValue(r[2]))
	}
	return t
}

func TestEquiJoinTable3(t *testing.T) {
	j, err := EquiJoin(table3D1(), table3D2(), []string{"C"})
	if err != nil {
		t.Fatal(err)
	}
	// c1 matches 1 D1-row × 2 D2-rows = 2, c2 → 1, c3 → 1, c4 → 1; c5 none.
	if j.NumRows() != 5 {
		t.Fatalf("join rows = %d, want 5", j.NumRows())
	}
	want := []string{"A", "B", "C", "D", "E"}
	if got := j.Schema.Names(); len(got) != 5 {
		t.Fatalf("schema = %v, want %v", got, want)
	} else {
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("schema = %v, want %v", got, want)
			}
		}
	}
}

func TestEquiJoinNoSharedErrors(t *testing.T) {
	if _, err := EquiJoin(table3D1(), table3D2(), []string{"Z"}); err == nil {
		t.Fatal("join on unknown attribute should fail")
	}
	if _, err := EquiJoin(table3D1(), table3D2(), nil); err == nil {
		t.Fatal("join with no attributes should fail")
	}
}

func TestEquiJoinRenamesCollidingColumns(t *testing.T) {
	a := NewTable("a", NewSchema(Cat("k", KindString), Cat("x", KindString)))
	b := NewTable("b", NewSchema(Cat("k", KindString), Cat("x", KindString)))
	a.AppendValues(StringValue("1"), StringValue("ax"))
	b.AppendValues(StringValue("1"), StringValue("bx"))
	j, err := EquiJoin(a, b, []string{"k"})
	if err != nil {
		t.Fatal(err)
	}
	names := j.Schema.Names()
	if len(names) != 3 || names[2] != "x_r" {
		t.Fatalf("schema = %v, want [k x x_r]", names)
	}
	if j.Rows[0][2] != StringValue("bx") {
		t.Fatalf("renamed column value = %v", j.Rows[0][2])
	}
}

func TestFullOuterJoin(t *testing.T) {
	j, err := FullOuterJoin(table3D1(), table3D2(), []string{"C"})
	if err != nil {
		t.Fatal(err)
	}
	// Matched: 5 rows (as inner join). Left-unmatched: c5 (1 row).
	// Right-unmatched: none (c1,c2,c3,c4 all matched).
	if j.NumRows() != 6 {
		t.Fatalf("outer join rows = %d, want 6", j.NumRows())
	}
	// The right-side C column must be kept (renamed C_r).
	if !j.Schema.Has("C_r") {
		t.Fatalf("outer join schema missing C_r: %v", j.Schema.Names())
	}
	nulls := 0
	cr := j.Schema.Index("C_r")
	for _, r := range j.Rows {
		if r[cr].IsNull() {
			nulls++
		}
	}
	if nulls != 1 {
		t.Fatalf("unmatched-left rows = %d, want 1", nulls)
	}
}

func TestOuterJoinPairCountsMatchesMaterialized(t *testing.T) {
	a, b := table3D1(), table3D2()
	counts, err := OuterJoinPairCounts(a, b, []string{"C"})
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, c := range counts {
		total += c
	}
	j, err := FullOuterJoin(a, b, []string{"C"})
	if err != nil {
		t.Fatal(err)
	}
	if total != int64(j.NumRows()) {
		t.Fatalf("pair-count total %d != outer join rows %d", total, j.NumRows())
	}
	// (c5, NULL) should be present with count 1; matched c1 pair count 2.
	c5 := string(StringValue("c5").AppendKey(nil))
	c1 := string(StringValue("c1").AppendKey(nil))
	if counts[[2]string{c5, ""}] != 1 {
		t.Errorf("count(c5, NULL) = %d, want 1", counts[[2]string{c5, ""}])
	}
	if counts[[2]string{c1, c1}] != 2 {
		t.Errorf("count(c1, c1) = %d, want 2", counts[[2]string{c1, c1}])
	}
}

func TestJoinPath(t *testing.T) {
	d3 := NewTable("D3", NewSchema(Cat("E", KindString), Cat("F", KindString)))
	d3.AppendValues(StringValue("e1"), StringValue("f1"))
	d3.AppendValues(StringValue("e2"), StringValue("f2"))

	j, err := JoinPath([]PathStep{
		{Table: table3D1()},
		{Table: table3D2(), On: []string{"C"}},
		{Table: d3, On: []string{"E"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if j.NumRows() != 5 {
		t.Fatalf("path join rows = %d, want 5", j.NumRows())
	}
	if !j.Schema.Has("F") {
		t.Fatalf("path join schema missing F: %v", j.Schema.Names())
	}
	if _, err := JoinPath(nil); err == nil {
		t.Fatal("empty path should error")
	}
}

// Property: inner join row count equals sum over shared keys of
// countA(k)*countB(k), and outer join count adds unmatched rows.
func TestQuickJoinCounts(t *testing.T) {
	f := func(aKeys, bKeys []uint8) bool {
		a := NewTable("a", NewSchema(Cat("k", KindInt), Cat("pa", KindInt)))
		b := NewTable("b", NewSchema(Cat("k", KindInt), Cat("pb", KindInt)))
		ca := map[int64]int64{}
		cb := map[int64]int64{}
		for i, k := range aKeys {
			kv := int64(k % 8)
			a.AppendValues(IntValue(kv), IntValue(int64(i)))
			ca[kv]++
		}
		for i, k := range bKeys {
			kv := int64(k % 8)
			b.AppendValues(IntValue(kv), IntValue(int64(i)))
			cb[kv]++
		}
		var wantInner, unmatchedA, unmatchedB int64
		for k, n := range ca {
			if m, ok := cb[k]; ok {
				wantInner += n * m
			} else {
				unmatchedA += n
			}
		}
		for k, m := range cb {
			if _, ok := ca[k]; !ok {
				unmatchedB += m
			}
		}
		inner, err := EquiJoin(a, b, []string{"k"})
		if err != nil {
			return false
		}
		outer, err := FullOuterJoin(a, b, []string{"k"})
		if err != nil {
			return false
		}
		return int64(inner.NumRows()) == wantInner &&
			int64(outer.NumRows()) == wantInner+unmatchedA+unmatchedB
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
